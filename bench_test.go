// Benchmark harness: one benchmark per paper figure (Figs. 3–14), each
// regenerating the figure's data series and reporting its headline
// numbers as custom metrics, plus micro-benchmarks for the core
// algorithms. Run with:
//
//	go test -bench=. -benchmem
//
// The per-figure benches print the same rows/series the paper plots (via
// the experiments package); EXPERIMENTS.md records the paper-vs-measured
// comparison.
package sheriff

import (
	"fmt"
	"math/rand"
	"testing"

	"sheriff/internal/arima"
	"sheriff/internal/experiments"
	"sheriff/internal/kmedian"
	"sheriff/internal/matching"
	"sheriff/internal/narnet"
	"sheriff/internal/sim"
	"sheriff/internal/timeseries"
	"sheriff/internal/traces"
)

const benchSeed = 20150707

// benchFigure runs one figure generator per iteration and keeps its table
// alive so the work is not optimized away.
func benchFigure(b *testing.B, id string) {
	b.Helper()
	gen := experiments.Registry[id]
	if gen == nil {
		b.Fatalf("unknown figure %s", id)
	}
	var rows int
	for i := 0; i < b.N; i++ {
		tab, err := gen(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		rows = len(tab.Rows)
	}
	b.ReportMetric(float64(rows), "rows")
}

func BenchmarkFig03RawCPU(b *testing.B)     { benchFigure(b, "3") }
func BenchmarkFig04RawIO(b *testing.B)      { benchFigure(b, "4") }
func BenchmarkFig05RawTraffic(b *testing.B) { benchFigure(b, "5") }
func BenchmarkFig06ARIMA(b *testing.B)      { benchFigure(b, "6") }
func BenchmarkFig07NARNET(b *testing.B)     { benchFigure(b, "7") }
func BenchmarkFig08Combined(b *testing.B)   { benchFigure(b, "8") }
func BenchmarkFig09FatTreeStd(b *testing.B) { benchFigure(b, "9") }
func BenchmarkFig10BcubeStd(b *testing.B)   { benchFigure(b, "10") }

// The Figs. 11–14 sweeps are heavier; each bench reports the final
// sweep point's headline metric so regressions in the *result*, not just
// the runtime, are visible.

func BenchmarkFig11FatTreeCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Fig11FatTreeCost(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		last := tab.Rows[len(tab.Rows)-1]
		b.ReportMetric(last[1], "sheriff_cost")
		b.ReportMetric(last[2], "optimal_cost")
	}
}

func BenchmarkFig12FatTreeSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Fig12FatTreeSpace(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		last := tab.Rows[len(tab.Rows)-1]
		b.ReportMetric(last[1], "sheriff_space")
		b.ReportMetric(last[2], "central_space")
	}
}

func BenchmarkFig13BcubeCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Fig13BcubeCost(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		last := tab.Rows[len(tab.Rows)-1]
		b.ReportMetric(last[1], "sheriff_cost")
		b.ReportMetric(last[2], "optimal_cost")
	}
}

func BenchmarkFig14BcubeSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Fig14BcubeSpace(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		last := tab.Rows[len(tab.Rows)-1]
		b.ReportMetric(last[1], "sheriff_space")
		b.ReportMetric(last[2], "central_space")
	}
}

// BenchmarkFig11FullSweep runs the paper's complete 8→48-pod x-axis (the
// default figure sweep stops at 24 to keep test time bounded).
func BenchmarkFig11FullSweep(b *testing.B) {
	if testing.Short() {
		b.Skip("full sweep")
	}
	for i := 0; i < b.N; i++ {
		for _, pods := range experiments.FatTreePodsFull {
			res, err := sim.Compare(sim.Config{Kind: sim.FatTree, Size: pods, Seed: benchSeed, VMsPerHost: 6})
			if err != nil {
				b.Fatal(err)
			}
			if pods == 48 {
				b.ReportMetric(res.SheriffCost, "sheriff_cost_48pods")
				b.ReportMetric(float64(res.CentralSpace)/float64(res.SheriffSpace), "space_ratio_48pods")
			}
		}
	}
}

// --- Ablation benches (DESIGN.md §4) ---

func BenchmarkAblationSwapSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationSwapSize(benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationModelSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationModelSelection(benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationRegionSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationRegionSize(benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Core algorithm micro-benches ---

func benchSeries(n int) *timeseries.Series {
	return traces.WeeklyTraffic(traces.TrafficConfig{Days: n/64 + 1, PerDay: 64, Seed: benchSeed}).Slice(0, n)
}

func BenchmarkARIMAFit(b *testing.B) {
	s := benchSeries(448)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := arima.Fit(s, arima.Order{P: 1, D: 1, Q: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkARIMAForecast(b *testing.B) {
	s := benchSeries(448)
	m, err := arima.Fit(s, arima.Order{P: 1, D: 1, Q: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Forecast(10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNARNETTrain(b *testing.B) {
	s := benchSeries(320)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := narnet.Train(s, narnet.Config{Inputs: 16, Hidden: 20, Seed: benchSeed, Epochs: 100}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNARNETForecast(b *testing.B) {
	s := benchSeries(320)
	n, err := narnet.Train(s, narnet.Config{Inputs: 16, Hidden: 20, Seed: benchSeed, Epochs: 100})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.Forecast(10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHungarianMatching(b *testing.B) {
	for _, size := range []int{16, 64, 128} {
		b.Run(fmt.Sprintf("n=%d", size), func(b *testing.B) {
			rng := rand.New(rand.NewSource(benchSeed))
			cost := make([][]float64, size)
			for i := range cost {
				cost[i] = make([]float64, size)
				for j := range cost[i] {
					cost[i][j] = rng.Float64() * 100
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := matching.Solve(cost); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkKMedianLocalSearch(b *testing.B) {
	for _, p := range []int{1, 2} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			rng := rand.New(rand.NewSource(benchSeed))
			n := 40
			xs := make([]float64, n)
			ys := make([]float64, n)
			for i := range xs {
				xs[i], ys[i] = rng.Float64(), rng.Float64()
			}
			cost := make([][]float64, n)
			idx := make([]int, n)
			for i := range cost {
				idx[i] = i
				cost[i] = make([]float64, n)
				for j := range cost[i] {
					dx, dy := xs[i]-xs[j], ys[i]-ys[j]
					cost[i][j] = dx*dx + dy*dy
				}
			}
			inst := &kmedian.Instance{Cost: cost, Clients: idx, Facilities: idx, K: 5}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := kmedian.LocalSearch(inst, kmedian.Options{P: p, Seed: benchSeed}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkShimProcessAlerts(b *testing.B) {
	s, err := sim.Build(sim.Config{Kind: sim.FatTree, Size: 8, Seed: benchSeed})
	if err != nil {
		b.Fatal(err)
	}
	s.PopulateSkewed(0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.BalancingRound(0.05); err != nil {
			b.Fatal(err)
		}
	}
}
