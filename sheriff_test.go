package sheriff

import (
	"math"
	"testing"

	"sheriff/internal/traces"
)

func TestFitARIMAFacade(t *testing.T) {
	data := traces.WeeklyTraffic(traces.TrafficConfig{Days: 7, PerDay: 64, Seed: 1}).Values()
	m, err := FitARIMA(data, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := m.Forecast(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(fc) != 5 {
		t.Fatalf("forecast len = %d", len(fc))
	}
	for _, v := range fc {
		if math.IsNaN(v) {
			t.Fatal("NaN forecast")
		}
	}
}

func TestAutoARIMAFacade(t *testing.T) {
	data := traces.WeeklyTraffic(traces.TrafficConfig{Days: 7, PerDay: 64, Seed: 2}).Values()
	if _, err := AutoARIMA(data); err != nil {
		t.Fatal(err)
	}
}

func TestTrainNARNETFacade(t *testing.T) {
	data := traces.CPU(traces.CPUConfig{Hours: 4, Seed: 3}).Values()
	n, err := TrainNARNET(data, 8, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Forecast(3); err != nil {
		t.Fatal(err)
	}
}

func TestNewPredictorDefaultPoolFacade(t *testing.T) {
	data := traces.WeeklyTraffic(traces.TrafficConfig{Days: 7, PerDay: 64, Seed: 4}).Values()
	sel, err := NewPredictor(data[:300], PredictorOptions{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	p, err := sel.Predict()
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(p) {
		t.Fatal("NaN prediction")
	}
	sel.Observe(data[300])
}

func TestEvaluateAlertFacade(t *testing.T) {
	v, fired := EvaluateAlert(Profile{CPU: 0.95}, DefaultThresholds())
	if !fired || v != 0.95 {
		t.Fatalf("alert = %v fired=%v", v, fired)
	}
}

func TestNewFatTreeClusterFacade(t *testing.T) {
	cluster, model, shims, err := NewFatTreeCluster(4, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(cluster.Racks) != 8 || len(shims) != 8 {
		t.Fatalf("racks=%d shims=%d", len(cluster.Racks), len(shims))
	}
	if model == nil {
		t.Fatal("nil cost model")
	}
	if _, _, _, err := NewFatTreeCluster(3, 2, 100); err == nil {
		t.Fatal("odd pods accepted")
	}
}

func TestNewBCubeClusterFacade(t *testing.T) {
	cluster, _, _, err := NewBCubeCluster(4, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(cluster.Racks) != 16 {
		t.Fatalf("racks = %d, want 16", len(cluster.Racks))
	}
}

func TestBuildSimulationAndCompareFacade(t *testing.T) {
	s, err := BuildSimulation(SimConfig{Kind: FatTree, Size: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s.Populate()
	res, err := Compare(SimConfig{Kind: FatTree, Size: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.SheriffSpace >= res.CentralSpace {
		t.Fatalf("regional space %d not below central %d", res.SheriffSpace, res.CentralSpace)
	}
}

func TestGenerateFigureFacade(t *testing.T) {
	tab, err := GenerateFigure("5", 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("empty figure")
	}
	if _, err := GenerateFigure("99", 6); err == nil {
		t.Fatal("unknown figure accepted")
	}
	if len(Figures()) != 12 {
		t.Fatalf("figure count = %d, want 12", len(Figures()))
	}
}

func TestLocalSearchRatioFacade(t *testing.T) {
	if LocalSearchRatio(1) != 5 || LocalSearchRatio(2) != 4 {
		t.Fatal("ratio wrong")
	}
}
