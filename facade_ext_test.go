package sheriff

import (
	"math"
	"testing"

	"sheriff/internal/alert"
	"sheriff/internal/dcn"
	"sheriff/internal/traces"
)

func TestFitSARIMAFacade(t *testing.T) {
	data := traces.WeeklyTraffic(traces.TrafficConfig{Days: 7, PerDay: 64, Seed: 40}).Values()
	m, err := FitSARIMA(data, SARIMAOrder{Order: ARIMAOrder{P: 1, Q: 1}, SP: 1, SD: 1, Period: 64})
	if err != nil {
		t.Fatal(err)
	}
	fc, err := m.Forecast(10)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range fc {
		if math.IsNaN(v) {
			t.Fatal("NaN forecast")
		}
	}
}

func TestDecomposeFacade(t *testing.T) {
	data := traces.WeeklyTraffic(traces.TrafficConfig{Days: 7, PerDay: 64, Seed: 41}).Values()
	d, err := Decompose(data, 64)
	if err != nil {
		t.Fatal(err)
	}
	if d.SeasonalStrength() < 0.3 {
		t.Fatalf("daily traffic season strength = %v, want substantial", d.SeasonalStrength())
	}
}

func TestDetectPeriodFacade(t *testing.T) {
	data := traces.WeeklyTraffic(traces.TrafficConfig{Days: 7, PerDay: 64, Seed: 42}).Values()
	p := DetectPeriod(data, 8, 128)
	if p < 56 || p > 72 {
		t.Fatalf("DetectPeriod = %d, want ≈ 64 (one day)", p)
	}
}

func TestNewRuntimeFacade(t *testing.T) {
	cluster, model, _, err := NewFatTreeCluster(4, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	cluster.Populate(dcn.PopulateOptions{VMsPerHost: 2, MinCapacity: 5, MaxCapacity: 15, Seed: 43})
	rt, err := NewRuntime(cluster, model, RuntimeOptions{Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Step(); err != nil {
		t.Fatal(err)
	}
}

func TestNewFlowNetworkFacade(t *testing.T) {
	cluster, _, _, err := NewFatTreeCluster(4, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	net := NewFlowNetwork(cluster)
	f, err := net.AddFlow(cluster.Racks[0].NodeID, cluster.Racks[1].NodeID, 0.5, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Path()) < 3 {
		t.Fatalf("path = %v", f.Path())
	}
}

func TestNewCoordinatorFacade(t *testing.T) {
	cluster, model, shims, err := NewFatTreeCluster(4, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	h := cluster.Racks[0].Hosts[0]
	for i := 0; i < 4; i++ {
		if _, err := cluster.AddVM(h, 20, 1, false); err != nil {
			t.Fatal(err)
		}
	}
	co := NewCoordinator(cluster, model, shims)
	alerts := make([][]Alert, len(shims))
	alerts[0] = []Alert{{Kind: alert.FromServer, HostID: h.ID, Value: 0.95}}
	rep, err := co.Round(alerts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Migrations) == 0 {
		t.Fatal("coordinator moved nothing")
	}
}

func TestNewPredictorExtendedPoolFacade(t *testing.T) {
	data := traces.WeeklyTraffic(traces.TrafficConfig{Days: 7, PerDay: 64, Seed: 44}).Values()
	sel, err := NewPredictor(data[:350], PredictorOptions{Pool: PredictorPoolExtended, Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	p, err := sel.Predict()
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(p) {
		t.Fatal("NaN prediction")
	}
	if len(sel.Candidates()) < 5 {
		t.Fatalf("extended pool size = %d", len(sel.Candidates()))
	}
}

func TestFitHoltWintersFacade(t *testing.T) {
	data := traces.WeeklyTraffic(traces.TrafficConfig{Days: 7, PerDay: 64, Seed: 45}).Values()
	m, err := FitHoltWinters(data, 64)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := m.Forecast(5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range fc {
		if math.IsNaN(v) {
			t.Fatal("NaN forecast")
		}
	}
}
