package sheriff

import (
	"fmt"
	"io"

	"sheriff/internal/alert"
	"sheriff/internal/arima"
	"sheriff/internal/cost"
	"sheriff/internal/dcn"
	"sheriff/internal/experiments"
	"sheriff/internal/faults"
	"sheriff/internal/flow"
	"sheriff/internal/kmedian"
	"sheriff/internal/migrate"
	"sheriff/internal/narnet"
	"sheriff/internal/obs"
	"sheriff/internal/placement"
	"sheriff/internal/predictor"
	"sheriff/internal/runtime"
	"sheriff/internal/sim"
	"sheriff/internal/smoothing"
	"sheriff/internal/timeseries"
	"sheriff/internal/topology"
	"sheriff/internal/traces"
)

// Re-exported core types. Aliases keep the internal packages as the
// single source of truth while giving users one import.
type (
	// Series is an equally spaced univariate time series.
	Series = timeseries.Series
	// ARIMAModel is a fitted ARIMA(p,d,q) model.
	ARIMAModel = arima.Model
	// ARIMAOrder selects (p, d, q).
	ARIMAOrder = arima.Order
	// NARNET is a trained nonlinear autoregressive neural network.
	NARNET = narnet.Network
	// NARNETConfig selects the NARNET(ni, nh) architecture.
	NARNETConfig = narnet.Config
	// Selector performs dynamic model selection over forecaster pools.
	Selector = predictor.Selector
	// Candidate is one member of a Selector pool.
	Candidate = predictor.Candidate
	// Forecaster is anything that can predict a series' future.
	Forecaster = predictor.Forecaster

	// Profile is one normalized workload profile W = [CPU, MEM, IO, TRF].
	Profile = traces.Profile
	// Alert is one ALERT message.
	Alert = alert.Alert
	// Thresholds holds the per-component ALERT trigger levels.
	Thresholds = alert.Thresholds

	// Cluster models racks, hosts and VMs over a wired topology.
	Cluster = dcn.Cluster
	// Rack is one basic DCN unit (ToR + hosts + shim).
	Rack = dcn.Rack
	// Host is a physical server.
	Host = dcn.Host
	// VM is a virtual machine.
	VM = dcn.VM
	// CostModel evaluates the Eqn. (1) migration cost.
	CostModel = cost.Model
	// CostParams holds C_r, C_d, δ, η, B_t.
	CostParams = cost.Params
	// Shim is a rack's delegation node running Algs. 1–4.
	Shim = migrate.Shim
	// MigrationReport summarizes one shim management round.
	MigrationReport = migrate.Report

	// SimConfig sizes a simulated DCN.
	SimConfig = sim.Config
	// Simulation is a built simulated DCN.
	Simulation = sim.Sim
	// CompareResult is one Sheriff-vs-centralized data point.
	CompareResult = sim.CompareResult
	// FigureTable is one regenerated paper figure.
	FigureTable = experiments.Table

	// SARIMAModel is a fitted seasonal ARIMA model.
	SARIMAModel = arima.SeasonalModel
	// SARIMAOrder selects (p,d,q)(P,D,Q)[s].
	SARIMAOrder = arima.SeasonalOrder
	// Decomposition is a trend/seasonal/residual split of a series.
	Decomposition = timeseries.Decomposition
	// FlowNetwork models the traffic plane for FLOWREROUTE.
	FlowNetwork = flow.Network
	// Flow is one routed traffic aggregate.
	Flow = flow.Flow
	// Runtime is the assembled predict→alert→manage loop.
	Runtime = runtime.Runtime
	// RuntimeOptions configures a Runtime.
	RuntimeOptions = runtime.Options
	// RuntimeStats summarizes one Runtime step.
	RuntimeStats = runtime.StepStats
	// Coordinator runs concurrent shim rounds with FCFS commits.
	Coordinator = migrate.Coordinator
	// MigrationTimeline is the Fig. 2 six-stage live-migration schedule.
	MigrationTimeline = cost.Timeline
	// CostTimelineParams tunes the pre-copy timeline model.
	CostTimelineParams = cost.TimelineParams

	// Recorder collects structured observability events (see internal/obs).
	// A nil *Recorder is a valid, zero-cost no-op everywhere one is
	// accepted.
	Recorder = obs.Recorder
	// Event is one structured observability event.
	Event = obs.Event
	// EventSink receives recorded events (e.g. the JSONL trace writer).
	EventSink = obs.Sink
	// RequestPolicy decides whether a destination accepts a REQUEST — the
	// injectable admission hook on migrate.Params and migrate.DistOptions,
	// installable per shim after construction via Shim.SetRequestPolicy.
	RequestPolicy = migrate.RequestPolicy
	// PredictorOptions configures NewPredictor (pool family, season
	// period, fitness window, seed). The zero value builds the paper's
	// default ARIMA+NARNET pool.
	PredictorOptions = predictor.Options
	// FaultPlan declares one seeded wire-fault scenario for chaos runs
	// (see internal/faults); compile it with faults.New and hand the
	// injector to comm.Options.
	FaultPlan = faults.Plan

	// PlacementPolicy scores candidate destination hosts — the pluggable
	// destination-selection vocabulary shared by initial placement
	// (internal/placement.Placer) and migration (MigrationOptions,
	// migrate.Params, migrate.DistOptions). Nil always means the paper's
	// Sheriff rule.
	PlacementPolicy = placement.Policy
	// PlacementKind names a built-in placement policy.
	PlacementKind = placement.Kind
	// PolicyOptions selects and tunes a built-in placement policy.
	PolicyOptions = placement.PolicyOptions
	// PreemptOptions enables eviction of lower-severity residents when an
	// alerted VM has no feasible destination.
	PreemptOptions = migrate.PreemptOptions
	// RetryOptions configures the migration fail-queue.
	RetryOptions = migrate.RetryOptions
	// RetryQueue parks VMs no destination would accept for later rounds.
	RetryQueue = migrate.RetryQueue
	// MigrationOptions is the unified per-invocation migration
	// configuration (policy, preemption, fail-queue, tracing).
	MigrationOptions = migrate.MigrationOptions
	// MigrationResult summarizes one Migrate invocation.
	MigrationResult = migrate.MigrationResult
	// Severity is an alert severity tier (watch < urgent < critical) —
	// the preemption priority scale.
	Severity = alert.Severity
	// PolicyGridConfig sizes one cell of the policy × topology × fault
	// evaluation grid (`sheriffsim -mode policy`).
	PolicyGridConfig = sim.PolicyConfig
	// PolicyGridResult is one cell's outcome.
	PolicyGridResult = sim.PolicyResult

	// TraceOptions selects and configures a trace-generator family
	// (kind, seed, hours, surge parameters) behind NewTraceGenerator —
	// the unified entry point that subsumed the per-family constructors.
	TraceOptions = traces.Options
	// TraceKind names a trace-generator family (diurnal, lite, surge,
	// surge-lite).
	TraceKind = traces.Kind
	// TraceGenerator mints per-VM profile streams for one family.
	TraceGenerator = traces.Generator
	// TraceSource is one VM's replayable profile stream.
	TraceSource = traces.Source
	// TraceRegime is a surge generator's regime label at one step.
	TraceRegime = traces.Regime
	// SurgeParams tunes the regime-switching surge model (dwell time,
	// regime mix, rack correlation, intensity).
	SurgeParams = traces.SurgeParams
	// BurstModel is the change-point-gated Holt forecaster: Page–Hinkley
	// detection on one-step residuals re-anchors a fast-adapting trend
	// when the workload jumps regimes.
	BurstModel = predictor.Burst
	// BurstConfig tunes the burst forecaster's detector and smoothing.
	BurstConfig = predictor.BurstConfig
	// EarlyWarnScore grades a forecast as an operator would: overload
	// episodes detected, pre-alert precision, and lead time.
	EarlyWarnScore = experiments.EarlyWarnScore
	// EarlyWarnPoint is one alert threshold's operating point on the
	// lead-time vs false-alarm curve.
	EarlyWarnPoint = experiments.EarlyWarnPoint
	// SurgeGridConfig sizes the regime × predictor surge evaluation
	// (`sheriffsim -mode surge`).
	SurgeGridConfig = experiments.SurgeConfig
	// SurgeGridResult is the full surge grid plus the cluster pass.
	SurgeGridResult = experiments.SurgeResult
	// SurgeGridCell is one (regime, candidate) cell of the surge grid.
	SurgeGridCell = experiments.SurgeCell
)

// Built-in placement policy kinds for PolicyOptions.Kind.
const (
	// PlacementSheriff is the paper's rule: hard capacity check, pure
	// Eqn. (1) migration cost. The zero value, bit-exact with the
	// pre-policy code path.
	PlacementSheriff = placement.Sheriff
	// PlacementFirstFit takes the first feasible host.
	PlacementFirstFit = placement.FirstFit
	// PlacementBestFit packs: least free capacity remaining wins.
	PlacementBestFit = placement.BestFit
	// PlacementWorstFit spreads: most free capacity remaining wins.
	PlacementWorstFit = placement.WorstFit
	// PlacementOversub admits up to OversubFactor × host capacity.
	PlacementOversub = placement.Oversub
	// PlacementRandom picks uniformly among feasible hosts (seeded).
	PlacementRandom = placement.Random
)

// Predictor pool kinds for PredictorOptions.Pool.
const (
	// PredictorPoolDefault is the paper's ARIMA+NARNET pool.
	PredictorPoolDefault = predictor.PoolDefault
	// PredictorPoolExtended adds Holt and Holt–Winters candidates.
	PredictorPoolExtended = predictor.PoolExtended
)

// Topology kinds for SimConfig.Kind.
const (
	FatTree = sim.FatTree
	BCube   = sim.BCube
)

// Trace-generator families for TraceOptions.Kind.
const (
	// TraceDiurnal is the paper's diurnal workload model (the default).
	TraceDiurnal = traces.Diurnal
	// TraceLite is the memory-lean counter-based generator.
	TraceLite = traces.Lite
	// TraceSurge layers regime-switching surges (training-job waves,
	// flash crowds, correlated rack bursts) over the diurnal base.
	TraceSurge = traces.Surge
	// TraceSurgeLite layers the same surges over the lite base, with
	// O(1) random access.
	TraceSurgeLite = traces.SurgeLite
)

// NewSeries wraps raw observations in a Series.
func NewSeries(data []float64) *Series { return timeseries.New(data) }

// FitARIMA fits an ARIMA(p,d,q) to the data by Hannan–Rissanen.
func FitARIMA(data []float64, p, d, q int) (*ARIMAModel, error) {
	return arima.Fit(timeseries.New(data), arima.Order{P: p, D: d, Q: q})
}

// AutoARIMA selects the order with minimal AIC over a small Box–Jenkins
// grid and fits it.
func AutoARIMA(data []float64) (*ARIMAModel, error) {
	return arima.AutoFit(timeseries.New(data), arima.DefaultSearchSpace)
}

// TrainNARNET trains a NARNET(inputs, hidden) on the data.
func TrainNARNET(data []float64, inputs, hidden int, seed int64) (*NARNET, error) {
	return narnet.Train(timeseries.New(data), narnet.Config{Inputs: inputs, Hidden: hidden, Seed: seed})
}

// FitSARIMA fits a seasonal ARIMA(p,d,q)(P,D,Q)[period] to the data.
func FitSARIMA(data []float64, order SARIMAOrder) (*SARIMAModel, error) {
	return arima.FitSeasonal(timeseries.New(data), order)
}

// Decompose splits a seasonal series into trend + seasonal + residual
// (classical additive decomposition).
func Decompose(data []float64, period int) (*Decomposition, error) {
	return timeseries.Decompose(timeseries.New(data), period)
}

// DetectPeriod estimates the dominant season length of the data via the
// ACF, or 0 when none stands out.
func DetectPeriod(data []float64, minP, maxP int) int {
	return timeseries.DetectPeriod(timeseries.New(data), minP, maxP)
}

// NewRuntime assembles the full predict→alert→manage loop over a
// populated cluster.
func NewRuntime(cluster *Cluster, model *CostModel, opts RuntimeOptions) (*Runtime, error) {
	return runtime.New(cluster, model, opts)
}

// NewFlowNetwork wraps a cluster's topology for flow routing and
// FLOWREROUTE.
func NewFlowNetwork(cluster *Cluster) *FlowNetwork {
	return flow.NewNetwork(cluster.Graph)
}

// NewCoordinator builds a parallel shim coordinator over the cluster.
func NewCoordinator(cluster *Cluster, model *CostModel, shims []*Shim) *Coordinator {
	return migrate.NewCoordinator(cluster, model, shims)
}

// NewPredictor builds the paper's dynamic-selection predictor on the
// training data: the candidate pool the options select, ranked each step
// by the sliding-window MSE of Eqn. (14). The zero PredictorOptions give
// the default two-ARIMA + two-NARNET pool.
func NewPredictor(data []float64, opts PredictorOptions) (*Selector, error) {
	return predictor.New(timeseries.New(data), opts)
}

// HoltWintersModel is a fitted exponential-smoothing model.
type HoltWintersModel = smoothing.Model

// FitHoltWinters fits additive Holt–Winters with the given season length
// (smoothing constants optimized by grid search).
func FitHoltWinters(data []float64, period int) (*HoltWintersModel, error) {
	return smoothing.Fit(timeseries.New(data), smoothing.Config{Method: smoothing.HoltWinters, Period: period})
}

// DefaultThresholds returns 0.9 per profile component.
func DefaultThresholds() Thresholds { return alert.DefaultThresholds() }

// EvaluateAlert applies the ALERT rule of Sec. IV.C to a predicted
// profile.
func EvaluateAlert(p Profile, th Thresholds) (value float64, fired bool) {
	return alert.Evaluate(p, th)
}

// NewFatTreeCluster builds a k-pod Fat-Tree cluster with the given host
// shape and returns it with its cost model and one shim per rack.
func NewFatTreeCluster(pods, hostsPerRack int, hostCapacity float64) (*Cluster, *CostModel, []*Shim, error) {
	ft, err := topology.NewFatTree(topology.FatTreeConfig{Pods: pods})
	if err != nil {
		return nil, nil, nil, err
	}
	return assemble(ft.Graph, hostsPerRack, hostCapacity)
}

// NewBCubeCluster builds a BCube(n,1) cluster (n² server nodes).
func NewBCubeCluster(switchesPerLevel, hostsPerRack int, hostCapacity float64) (*Cluster, *CostModel, []*Shim, error) {
	b, err := topology.NewBCube(topology.BCubeConfig{SwitchesPerLevel: switchesPerLevel})
	if err != nil {
		return nil, nil, nil, err
	}
	return assemble(b.Graph, hostsPerRack, hostCapacity)
}

func assemble(g *topology.Graph, hostsPerRack int, hostCapacity float64) (*Cluster, *CostModel, []*Shim, error) {
	cluster, err := dcn.NewCluster(g, dcn.Config{
		HostsPerRack: hostsPerRack,
		HostCapacity: hostCapacity,
		ToRCapacity:  hostCapacity * float64(hostsPerRack),
	})
	if err != nil {
		return nil, nil, nil, err
	}
	model, err := cost.New(cluster, cost.PaperParams())
	if err != nil {
		return nil, nil, nil, err
	}
	shims := make([]*Shim, 0, len(cluster.Racks))
	params := migrate.DefaultParams()
	for _, r := range cluster.Racks {
		s, err := migrate.NewShim(cluster, model, r, params)
		if err != nil {
			return nil, nil, nil, err
		}
		shims = append(shims, s)
	}
	return cluster, model, shims, nil
}

// BuildSimulation constructs a full simulated DCN.
func BuildSimulation(cfg SimConfig) (*Simulation, error) { return sim.Build(cfg) }

// Compare runs one Sheriff-vs-centralized comparison (one data point of
// the paper's Figs. 11–14).
func Compare(cfg SimConfig) (*CompareResult, error) { return sim.Compare(cfg) }

// GenerateFigure regenerates one paper figure ("3" through "14") with the
// given seed.
func GenerateFigure(id string, seed int64) (*FigureTable, error) {
	gen, ok := experiments.Registry[id]
	if !ok {
		return nil, fmt.Errorf("sheriff: unknown figure %q (want one of %v)", id, experiments.FigureIDs())
	}
	return gen(seed)
}

// Figures lists the regenerable figure identifiers in paper order.
func Figures() []string { return experiments.FigureIDs() }

// LocalSearchRatio returns the VMMIGRATION approximation guarantee 3+2/p.
func LocalSearchRatio(p int) float64 { return kmedian.ApproximationRatio(p) }

// Migrate relocates the candidate VMs into the destination hosts with the
// Alg. 3 min-cost matching under the options' placement policy,
// preemption, and fail-queue settings — the unified entry point that
// subsumed the VMMigration / VMMigrationOpts / VMMigrationWith trio. The
// zero MigrationOptions reproduce Alg. 3 exactly.
func Migrate(cluster *Cluster, model *CostModel, candidates []*VM, hosts []*Host, o MigrationOptions) (*MigrationResult, error) {
	return migrate.Migrate(cluster, model, candidates, hosts, o)
}

// NewPlacementPolicy builds one of the built-in placement policies.
func NewPlacementPolicy(o PolicyOptions) (PlacementPolicy, error) { return o.New() }

// ParsePlacementKind resolves a policy name ("sheriff", "best-fit",
// "worst-fit", "oversub", ...) to its kind; "" is PlacementSheriff.
func ParsePlacementKind(name string) (PlacementKind, error) { return placement.ParseKind(name) }

// NewRetryQueue builds a migration fail-queue; hand it to
// MigrationOptions.Queue, migrate.Params.Retry-enabled shims, or
// migrate.DistOptions.Queue.
func NewRetryQueue(o RetryOptions) (*RetryQueue, error) { return migrate.NewRetryQueue(o) }

// ClassifySeverity maps an alert value to its severity tier — the scale
// preemption uses to decide who may evict whom.
func ClassifySeverity(alertValue float64) Severity { return alert.ClassifySeverity(alertValue) }

// RunPolicyGrid runs one cell of the policy × topology × fault grid.
func RunPolicyGrid(cfg PolicyGridConfig) (*PolicyGridResult, error) { return sim.RunPolicy(cfg) }

// NewRecorder builds an event recorder with the default in-memory ring
// and the given sinks. Pass the result to RuntimeOptions.Recorder,
// migrate.Params.Recorder, comm.Options.Recorder, or kmedian
// Options.Recorder — or leave those nil for a zero-cost no-op.
func NewRecorder(sinks ...EventSink) (*Recorder, error) {
	return obs.New(obs.Options{Sinks: sinks})
}

// TraceTo builds a recorder that streams every event to w as JSON Lines
// (one Event object per line, in sequence order). Check Recorder.Err
// after the run for deferred write failures.
func TraceTo(w io.Writer) (*Recorder, error) {
	return NewRecorder(obs.NewJSONL(w))
}

// NewTraceGenerator builds a trace generator for the options' family —
// the unified API behind RuntimeOptions.Traces, tracegen -kind, and
// sheriffd -traces. The zero TraceOptions give the paper's diurnal model.
func NewTraceGenerator(o TraceOptions) (TraceGenerator, error) { return traces.New(o) }

// ParseTraceKind resolves a family name ("diurnal", "lite", "surge",
// "surge-lite") to its kind; "" is TraceDiurnal.
func ParseTraceKind(name string) (TraceKind, error) { return traces.ParseKind(name) }

// TraceKinds lists the built-in trace-generator families.
func TraceKinds() []TraceKind { return traces.Kinds() }

// FitBurst fits the change-point-gated Holt forecaster to the data; add
// it to a selection pool via PredictorOptions.Burst to let it compete
// under surge workloads.
func FitBurst(data []float64, cfg BurstConfig) (*BurstModel, error) {
	return predictor.FitBurst(timeseries.New(data), cfg)
}

// ScoreEarlyWarning grades predicted against actual as an operator
// would: episodes detected, pre-alert precision, and mean lead time at
// the overload threshold within the maxLead horizon.
func ScoreEarlyWarning(actual, predicted []float64, threshold float64, maxLead int) (EarlyWarnScore, error) {
	return experiments.ScoreEarlyWarning(actual, predicted, threshold, maxLead)
}

// EarlyWarnTradeoff sweeps the alert threshold to trace the lead-time vs
// false-alarm curve; the truth threshold (the overload definition) stays
// fixed.
func EarlyWarnTradeoff(actual, predicted []float64, truthThreshold float64, alertThresholds []float64, maxLead int) ([]EarlyWarnPoint, error) {
	return experiments.EarlyWarnCurve(actual, predicted, truthThreshold, alertThresholds, maxLead)
}

// RunSurgeGrid evaluates the burst-extended predictor pool over the
// surge regime grid and drives correlated rack bursts through the
// sharded step engine (`sheriffsim -mode surge`).
func RunSurgeGrid(cfg SurgeGridConfig) (*SurgeGridResult, error) { return experiments.RunSurge(cfg) }
