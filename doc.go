// Package sheriff is a Go implementation of "Sheriff: A Regional
// Pre-Alert Management Scheme in Data Center Networks" (Gao, Xu, Wu,
// Chen — ICPP 2015).
//
// Sheriff manages a data center network with per-rack delegation nodes
// (shims) instead of one centralized controller. Each shim runs two
// phases:
//
//   - Prediction: every VM's workload profile W = [CPU, MEM, IO, TRF] is
//     forecast one collection period ahead using dynamic selection between
//     ARIMA (Box–Jenkins) and NARNET (nonlinear autoregressive neural
//     network) models; a predicted component above THRESHOLD raises an
//     ALERT before the overload materializes.
//   - Management: collected alerts drive the PRIORITY knapsack selection
//     of VMs, minimum-weight matching of VMs to destination slots
//     (VMMIGRATION with the REQUEST/ACK handshake), and FLOWREROUTE for
//     outer-switch congestion. The centralized view reduces to k-median,
//     solved by p-swap local search with a 3+2/p guarantee.
//
// This root package is the stable facade: it re-exports the library's
// main types as aliases and offers one-call helpers for the common
// workflows (forecasting a series, building a simulated DCN, running the
// Sheriff-vs-centralized comparison, regenerating the paper's figures).
//
// # Option structs
//
// Every configurable surface follows one convention: an options struct
// whose zero value works, a Validate method rejecting nonsensical values
// (negative probabilities, windows, budgets), and a WithDefaults method
// filling zero fields. RuntimeOptions, PredictorOptions, migrate.Params,
// migrate.DistOptions, comm.Options, and faults.Plan all behave this way.
//
// # Injection hooks
//
// Cross-cutting concerns are injected, never global: observability via
// *Recorder (nil = zero-cost no-op), REQUEST admission via RequestPolicy
// on migrate.Params / migrate.DistOptions (or after construction with
// Shim.SetRequestPolicy), and wire faults via faults.Plan compiled into
// a comm.Options.Injector. The process-wide SetRequestGate hook has been
// removed in favor of these scoped hooks.
package sheriff
