package migrate

// This file is the frozen pre-policy Alg. 3 implementation, kept verbatim
// as the bit-exactness oracle for the policy-carrying Migrate entry point:
// TestMigrateMatchesReference asserts that Migrate with default options
// (no placement policy, no preemption, no retry queue) produces migration
// sets, costs, and search-space counts identical to this code on every
// seed. Fix behavior bugs in migrate.go AND here, or the equivalence test
// will tell on you; do not "improve" this copy.

import (
	"fmt"

	"sheriff/internal/cost"
	"sheriff/internal/dcn"
	"sheriff/internal/matching"
	"sheriff/internal/obs"
)

// referenceVMMigration is the pre-policy VMMigrationWith, byte for byte.
func referenceVMMigration(c *dcn.Cluster, m *cost.Model, f []*dcn.VM, candidates []*dcn.Host, o MigrationOptions) (*MigrationResult, error) {
	if len(candidates) == 0 {
		return nil, ErrNoCandidates
	}
	res := &MigrationResult{}
	rec := o.Recorder
	remaining := append([]*dcn.VM(nil), f...)
	// Destinations that rejected a VM are excluded from its later rounds
	// ("v_i should recalculate possible migration destinations"). The
	// exclusion set only grows, so the loop terminates.
	excluded := make(map[int]map[int]bool)

	round := 0
	for len(remaining) > 0 {
		round++
		costs := make([][]float64, len(remaining))
		feasible := false
		for i, vm := range remaining {
			costs[i] = make([]float64, len(candidates))
			for j, h := range candidates {
				if excluded[vm.ID][j] {
					costs[i][j] = matching.Forbidden
					continue
				}
				if o.ForbidSameRack && vm.Host() != nil && h.Rack() == vm.Host().Rack() {
					costs[i][j] = matching.Forbidden
					continue
				}
				costs[i][j] = refPairCost(c, m, vm, h)
				if costs[i][j] != matching.Forbidden {
					feasible = true
				}
			}
		}
		res.SearchSpace += len(remaining) * len(candidates)
		if !feasible {
			res.Unplaced = append(res.Unplaced, remaining...)
			break
		}
		sol, err := matching.Solve(costs)
		if err != nil {
			return nil, fmt.Errorf("migrate: matching: %w", err)
		}
		exclude := func(vmID, j int) {
			if excluded[vmID] == nil {
				excluded[vmID] = make(map[int]bool)
			}
			excluded[vmID][j] = true
		}
		var next []*dcn.VM
		anyMatched := false
		for i, vm := range remaining {
			j := sol.Assign[i]
			if j < 0 {
				next = append(next, vm)
				continue
			}
			anyMatched = true
			dst := candidates[j]
			moveCost := costs[i][j]
			rec.Record(obs.Event{Kind: obs.KindRequest, Round: round, Shim: o.Shim, VM: vm.ID, Host: dst.ID, Value: moveCost})
			// Alg. 4 REQUEST: the destination's delegation node re-checks
			// capacity (FCFS) and replies ACK or REJECT.
			ok, cause := o.decide(vm, dst)
			if ok {
				from := vm.Host()
				if err := c.Move(vm, dst); err != nil {
					// The handshake said yes but placement failed (e.g. a
					// dependency raced in): treat as a rejection.
					ok, cause = false, "race"
				} else {
					res.Migrations = append(res.Migrations, Migration{VM: vm, From: from, To: dst, Cost: moveCost})
					res.TotalCost += moveCost
					rec.Record(obs.Event{Kind: obs.KindAck, Round: round, Shim: o.Shim, VM: vm.ID, Host: dst.ID, Value: moveCost})
				}
			}
			if !ok {
				res.Rejected++
				exclude(vm.ID, j)
				next = append(next, vm)
				if rec.Enabled() {
					rec.Record(obs.Event{Kind: obs.KindReject, Round: round, Shim: o.Shim, VM: vm.ID, Host: dst.ID,
						Value: moveCost, Attrs: map[string]string{"cause": cause}})
				}
			}
		}
		if !anyMatched {
			res.Unplaced = append(res.Unplaced, next...)
			break
		}
		remaining = next
	}
	if rec.Enabled() {
		for _, vm := range res.Unplaced {
			rec.Record(obs.Event{Kind: obs.KindUnplaced, Round: round, Shim: o.Shim, VM: vm.ID, Host: ShimUnknown})
		}
	}
	return res, nil
}

// refPairCost is the pre-policy pairCost, byte for byte.
func refPairCost(c *dcn.Cluster, m *cost.Model, vm *dcn.VM, h *dcn.Host) float64 {
	if h == vm.Host() {
		return matching.Forbidden // must actually move
	}
	if h.Free() < vm.Capacity {
		return matching.Forbidden
	}
	for _, resident := range h.VMs() {
		if c.Deps.Dependent(vm.ID, resident.ID) {
			return matching.Forbidden
		}
	}
	mc, err := m.Migration(vm, h)
	if err != nil {
		return matching.Forbidden
	}
	return mc
}
