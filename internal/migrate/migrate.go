// Package migrate implements the distributed Alert-Migration algorithm of
// the paper's Sec. V.B: each rack's shim (delegation node v_i) runs
// Alg. 1 (the framework that turns collected alerts into candidate VM
// sets via the PRIORITY function), Alg. 3 (VMMIGRATION: minimum-weight
// matching of candidate VMs to destination slots, applied round by round),
// and Alg. 4 (the REQUEST handshake granting destination capacity FCFS).
// Outer-switch alerts trigger FLOWREROUTE instead of migration, since
// rerouting is cheaper than a live migration (Sec. III.B).
package migrate

import (
	"errors"
	"fmt"
	"sort"

	"sheriff/internal/alert"
	"sheriff/internal/cost"
	"sheriff/internal/dcn"
	"sheriff/internal/knapsack"
	"sheriff/internal/matching"
	"sheriff/internal/obs"
	"sheriff/internal/placement"
)

// Migration records one applied VM move.
type Migration struct {
	VM   *dcn.VM
	From *dcn.Host
	To   *dcn.Host
	Cost float64
}

// Report summarizes one shim management round (one Alg. 1 execution).
type Report struct {
	Migrations  []Migration
	TotalCost   float64
	SearchSpace int // candidate (VM, destination) pairs examined
	Rerouted    []*dcn.VM
	Rejected    int // REQUEST handshakes answered with REJECT
	Preemptions int // resident VMs evicted to admit higher-severity ones
	Retried     int // fail-queued VMs re-entering this round
	Requeued    int // VMs parked in the fail-queue for a later round
}

// RequestPolicy decides whether a REQUEST handshake may be granted,
// before the Alg. 4 capacity check. It is the injectable admission /
// failure-injection point: per-call (MigrationOptions, DistOptions) or
// per-shim (Params), so concurrent coordinators never share mutable
// global state. A nil policy always allows.
type RequestPolicy func(vm *dcn.VM, dst *dcn.Host) bool

// Params tunes the shim protocol. Alpha and Beta are the capacity
// portions of Alg. 1/2 ("we present α, β as different portion of capacity
// for migration since it is not necessary to migrate all VMs").
//
// Zero numeric fields mean "use the default" (applied by WithDefaults at
// construction); negative values are a Validate error.
type Params struct {
	Alpha float64 // portion of server capacity to unload on a host alert
	Beta  float64 // portion of ToR capacity to unload on a ToR alert
	// NeighborSwitchHops bounds the shim's dominating region: destination
	// racks reachable through at most this many switches (1 = the paper's
	// one-hop wired neighbors).
	NeighborSwitchHops int
	// RequestPolicy, when non-nil, is consulted on every handshake the
	// shim answers or commits (ProcessAlerts, Coordinator commits,
	// DistributedVMMigration destinations).
	RequestPolicy RequestPolicy
	// Recorder, when non-nil, receives request/ack/reject/unplaced events
	// from the shim's migration rounds.
	Recorder *obs.Recorder
	// Placement selects the destination-scoring policy for the shim's
	// migration rounds. The zero value is the Sheriff rule (hard capacity
	// check, pure Eqn. (1) cost), bit-exact with the pre-policy code.
	Placement placement.PolicyOptions
	// Preempt enables preemption-aware migration: evict a strictly
	// lower-severity resident to admit a high-alert VM.
	Preempt PreemptOptions
	// Retry enables the shim's fail-queue: VMs unplaced in one management
	// round retry in later rounds instead of being abandoned.
	Retry RetryOptions
}

// DefaultParams matches the regional scheme: one-hop neighbors,
// α = β = 0.2.
func DefaultParams() Params {
	return Params{Alpha: 0.2, Beta: 0.2, NeighborSwitchHops: 1}
}

// WithDefaults returns p with zero numeric fields replaced by the
// DefaultParams values. Negative fields are left for Validate to reject.
func (p Params) WithDefaults() Params {
	d := DefaultParams()
	if p.Alpha == 0 {
		p.Alpha = d.Alpha
	}
	if p.Beta == 0 {
		p.Beta = d.Beta
	}
	if p.NeighborSwitchHops == 0 {
		p.NeighborSwitchHops = d.NeighborSwitchHops
	}
	p.Placement = p.Placement.WithDefaults()
	p.Preempt = p.Preempt.WithDefaults()
	p.Retry = p.Retry.WithDefaults()
	return p
}

// Validate reports whether the parameters are usable. Zero numeric
// fields are accepted (they mean "use the default"); negative or
// out-of-range values are errors.
func (p Params) Validate() error {
	if p.Alpha < 0 || p.Alpha > 1 {
		return fmt.Errorf("migrate: Alpha must be in [0,1] (0 = default), got %v", p.Alpha)
	}
	if p.Beta < 0 || p.Beta > 1 {
		return fmt.Errorf("migrate: Beta must be in [0,1] (0 = default), got %v", p.Beta)
	}
	if p.NeighborSwitchHops < 0 {
		return fmt.Errorf("migrate: NeighborSwitchHops must be >= 0 (0 = default), got %d", p.NeighborSwitchHops)
	}
	if err := p.Placement.Validate(); err != nil {
		return err
	}
	if err := p.Preempt.Validate(); err != nil {
		return err
	}
	return p.Retry.Validate()
}

// Shim is the delegation node v_i: it monitors one rack and manages its
// dominating region.
type Shim struct {
	Rack    *dcn.Rack
	cluster *dcn.Cluster
	model   *cost.Model
	params  Params

	// policy is the destination-scoring policy (nil = the Sheriff rule,
	// which keeps the pre-policy fast path bit-exact).
	policy placement.Policy
	// queue is the shim's fail-queue (nil when retries are disabled).
	queue *RetryQueue

	neighborRacks []*dcn.Rack // cached one-hop region
}

// NewShim builds the shim for one rack.
func NewShim(c *dcn.Cluster, m *cost.Model, rack *dcn.Rack, p Params) (*Shim, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p = p.WithDefaults()
	s := &Shim{Rack: rack, cluster: c, model: m, params: p}
	if p.Placement.Kind != placement.Sheriff {
		pol, err := p.Placement.New()
		if err != nil {
			return nil, err
		}
		s.policy = pol
	}
	if p.Retry.Enabled {
		q, err := NewRetryQueue(p.Retry)
		if err != nil {
			return nil, err
		}
		s.queue = q
	}
	for _, nodeID := range c.Graph.RackNeighbors(rack.NodeID, p.NeighborSwitchHops) {
		if r := c.RackByNode(nodeID); r != nil {
			s.neighborRacks = append(s.neighborRacks, r)
		}
	}
	sort.Slice(s.neighborRacks, func(i, j int) bool {
		return s.neighborRacks[i].Index < s.neighborRacks[j].Index
	})
	return s, nil
}

// NeighborRacks returns the racks in the shim's dominating region
// (excluding its own).
func (s *Shim) NeighborRacks() []*dcn.Rack { return s.neighborRacks }

// SetRequestPolicy installs (or, when nil, removes) the shim's REQUEST
// admission hook after construction. It replaces the removed process-wide
// sheriff.SetRequestGate: the hook is scoped to this shim and consulted
// on every handshake it decides, including the distributed protocol's
// destination side. Like the rest of the shim it must not race Process-
// Alerts or a protocol run.
func (s *Shim) SetRequestPolicy(p RequestPolicy) { s.params.RequestPolicy = p }

// Policy returns the shim's destination-scoring policy (nil = Sheriff).
func (s *Shim) Policy() placement.Policy { return s.policy }

// Queue returns the shim's fail-queue (nil when retries are disabled).
// Safe on a nil shim, as is QueueLen — the runtime's sharded engine keeps
// nil slots for racks that never alerted.
func (s *Shim) Queue() *RetryQueue {
	if s == nil {
		return nil
	}
	return s.queue
}

// QueueLen returns the number of VMs parked in the shim's fail-queue.
func (s *Shim) QueueLen() int { return s.Queue().Len() }

// ProcessAlerts runs Alg. 1 over one collection period's alert set:
// outer-switch alerts feed FLOWREROUTE; host alerts select VMs with the
// α-knapsack; ToR alerts are pooled and select with the β-knapsack; the
// merged migration set is handed to VMMIGRATION.
func (s *Shim) ProcessAlerts(alerts []alert.Alert) (*Report, error) {
	report := &Report{}
	var hostSet, torSet []*dcn.VM
	inSet := make(map[int]bool)
	torAlerted := false

	add := func(dst *[]*dcn.VM, vms []*dcn.VM) {
		for _, vm := range vms {
			if !inSet[vm.ID] {
				inSet[vm.ID] = true
				*dst = append(*dst, vm)
			}
		}
	}

	for _, a := range alerts {
		switch a.Kind {
		case alert.FromOuterSwitch:
			// Conflict flows through the hot switch: reroute, do not
			// migrate. PRIORITY with ω = 1 picks the highest-alert VM.
			f := s.vmsUsingSwitch(a.SwitchID)
			report.Rerouted = append(report.Rerouted, knapsack.Priority(f, knapsack.One, 0)...)
		case alert.FromLocalToR:
			torAlerted = true
		case alert.FromServer:
			h := s.cluster.Host(a.HostID)
			if h == nil || h.Rack() != s.Rack {
				continue // not ours
			}
			budget := s.params.Alpha * h.Capacity
			add(&hostSet, knapsack.Priority(h.VMs(), knapsack.Alpha, budget))
		}
	}
	if torAlerted {
		budget := s.params.Beta * s.Rack.ToRCapacity
		add(&torSet, knapsack.Priority(s.Rack.VMs(), knapsack.Beta, budget))
	}
	// Host-overload VMs may be relieved anywhere in the region, including
	// other hosts of this rack; ToR-congestion VMs must leave the rack
	// ("release the workload of ToR_i … to neighbor racks"). Fail-queued
	// VMs from earlier rounds re-enter through the host-set migration —
	// the queue is drained inside Migrate — so the round runs even with an
	// empty alert-selected set while retries are pending.
	if len(hostSet) > 0 || s.QueueLen() > 0 {
		if err := report.merge(Migrate(s.cluster, s.model, hostSet, s.regionHosts(true), s.migrationOptions())); err != nil {
			return report, err
		}
	}
	if len(torSet) > 0 {
		if err := report.merge(Migrate(s.cluster, s.model, torSet, s.regionHosts(false), s.migrationOptionsDeferred())); err != nil {
			return report, err
		}
	}
	return report, nil
}

// migrationOptions projects the shim's params onto one VMMIGRATION call.
func (s *Shim) migrationOptions() MigrationOptions {
	return MigrationOptions{
		Policy:    s.params.RequestPolicy,
		Recorder:  s.params.Recorder,
		Shim:      s.Rack.Index,
		Placement: s.policy,
		Preempt:   s.params.Preempt,
		Queue:     s.queue,
	}
}

// migrationOptionsDeferred is migrationOptions with queue draining off:
// the ToR-relief migration runs after the host-set one already drained
// the queue, and must not re-drain VMs parked moments earlier in the
// same round — but its own unplaced VMs still park.
func (s *Shim) migrationOptionsDeferred() MigrationOptions {
	o := s.migrationOptions()
	o.DeferDrain = true
	return o
}

// merge folds a VMMIGRATION result into the round report.
func (r *Report) merge(res *MigrationResult, err error) error {
	if err != nil {
		return err
	}
	r.Migrations = append(r.Migrations, res.Migrations...)
	r.TotalCost += res.TotalCost
	r.SearchSpace += res.SearchSpace
	r.Rejected += res.Rejected
	r.Preemptions += res.Preemptions
	r.Retried += res.Retried
	r.Requeued += res.Requeued
	return nil
}

// vmsUsingSwitch approximates "VMs with flows out through s_j": with no
// per-flow state in the simulator, every VM of the rack whose traffic
// leaves the rack (it has dependent peers in other racks) is a candidate.
func (s *Shim) vmsUsingSwitch(switchID int) []*dcn.VM {
	var out []*dcn.VM
	for _, vm := range s.Rack.VMs() {
		for _, peerRack := range s.cluster.Deps.PeerRacks(s.cluster, vm.ID) {
			if peerRack != s.Rack.Index {
				out = append(out, vm)
				break
			}
		}
	}
	if len(out) == 0 {
		out = s.Rack.VMs()
	}
	return out
}

// regionHosts returns destination hosts in the dominating region. With
// includeOwn, the rack's own hosts are included (host-overload relief may
// stay local); otherwise only neighbor racks qualify (ToR relief).
// Exclusion of a VM's current host happens in the cost matrix.
func (s *Shim) regionHosts(includeOwn bool) []*dcn.Host {
	var out []*dcn.Host
	if includeOwn {
		out = append(out, s.Rack.Hosts...)
	}
	for _, r := range s.neighborRacks {
		out = append(out, r.Hosts...)
	}
	return out
}

// MigrationResult is the outcome of one VMMIGRATION invocation (Alg. 3).
type MigrationResult struct {
	Migrations  []Migration
	TotalCost   float64
	SearchSpace int
	Rejected    int
	Unplaced    []*dcn.VM // VMs no destination would accept (and no queue kept)
	Preemptions int       // victims evicted to admit higher-severity VMs
	Evicted     []*dcn.VM // the victims, in eviction order
	Retried     int       // fail-queued VMs drained into this call
	Requeued    int       // VMs parked in the fail-queue by this call
}

// ErrNoCandidates is returned when the destination set is empty.
var ErrNoCandidates = errors.New("migrate: no candidate destination hosts")

// MigrationOptions configures one VMMIGRATION invocation. It is the
// single policy-carrying entry-point configuration that replaced the
// VMMigration / VMMigrationOpts / VMMigrationWith trio.
type MigrationOptions struct {
	// ForbidSameRack applies the Eqn. (6) constraint: a VM may only land
	// in a rack other than its own (v_p ∈ N(v_i)), the setting of the
	// Figs. 11–14 comparison where alerts mean the whole rack must shed
	// load. Detached (preempted) VMs have no rack and are exempt.
	ForbidSameRack bool
	// Policy, when non-nil, is consulted before the Alg. 4 capacity check
	// on every REQUEST handshake.
	Policy RequestPolicy
	// Recorder, when non-nil, receives request/ack/reject/preempt/requeue/
	// unplaced events with the retry round numbers.
	Recorder *obs.Recorder
	// Shim tags recorded events with the source shim's rack index; leave
	// zero-valued calls at ShimUnknown.
	Shim int
	// Placement scores candidate destinations. Nil is the Sheriff rule —
	// hard capacity check, pure Eqn. (1) cost — bit-exact with the
	// pre-policy implementation.
	Placement placement.Policy
	// Preempt enables eviction of strictly lower-severity residents when a
	// candidate VM has no feasible destination.
	Preempt PreemptOptions
	// Queue, when non-nil, is the fail-queue: parked VMs drain into the
	// candidate set at the start of the call (unless DeferDrain) and VMs
	// left unplaced park for a later round instead of being abandoned.
	Queue *RetryQueue
	// DeferDrain leaves already-parked entries in the queue (a caller
	// running several migrations per round drains only the first); VMs
	// unplaced by this call still park.
	DeferDrain bool
}

// ShimUnknown marks events whose source shim is not identified.
const ShimUnknown = -1

// decide runs one Alg. 4 handshake decision: policy first, then the FCFS
// capacity check (under the placement policy's capacity rule, so an
// oversubscription policy relaxes the handshake). The cause names the
// refusing stage for trace events.
func (o *MigrationOptions) decide(vm *dcn.VM, dst *dcn.Host) (ok bool, cause string) {
	if o.Policy != nil && !o.Policy(vm, dst) {
		return false, "policy"
	}
	if !RequestWith(o.Placement, vm, dst) {
		return false, "capacity"
	}
	return true, ""
}

// VMMigration implements Alg. 3 with default options: while the candidate
// set is non-empty, build the bipartite cost graph between candidate VMs
// and destination slots, compute a minimum-weight matching (Kuhn–
// Munkres), and apply each matched pair through the Alg. 4 REQUEST
// handshake. It is a thin alias for Migrate.
func VMMigration(c *dcn.Cluster, m *cost.Model, f []*dcn.VM, candidates []*dcn.Host) (*MigrationResult, error) {
	return Migrate(c, m, f, candidates, MigrationOptions{Shim: ShimUnknown})
}

// Migrate is the unified Alg. 3 entry point: minimum-weight matching of
// candidate VMs to destination slots under the configured placement
// policy, round by round through the Alg. 4 REQUEST handshake. VMs whose
// request is rejected retry in the next round against the remaining
// slots. When no destination admits a VM, preemption (if enabled) evicts
// a strictly lower-severity, lower-knapsack-value resident to make room;
// VMs still unplaced at the end park in the fail-queue (if attached) for
// a later management round.
func Migrate(c *dcn.Cluster, m *cost.Model, f []*dcn.VM, candidates []*dcn.Host, o MigrationOptions) (*MigrationResult, error) {
	if len(candidates) == 0 {
		return nil, ErrNoCandidates
	}
	if err := o.Preempt.Validate(); err != nil {
		return nil, err
	}
	o.Preempt = o.Preempt.WithDefaults()
	res := &MigrationResult{}
	rec := o.Recorder
	remaining := append([]*dcn.VM(nil), f...)
	// attempts carries prior placement attempts for fail-queued VMs;
	// evictedSet marks detached VMs (exempt from the attempt budget);
	// evictedFrom remembers each victim's original host for rollback.
	attempts := make(map[int]int)
	evictedSet := make(map[int]bool)
	evictedFrom := make(map[int]*dcn.Host)
	if o.Queue != nil && !o.DeferDrain {
		inSet := make(map[int]bool, len(remaining))
		for _, vm := range remaining {
			inSet[vm.ID] = true
		}
		for _, e := range o.Queue.TakeAll() {
			if c.VM(e.VM.ID) != e.VM {
				continue // removed from the cluster while parked
			}
			attempts[e.VM.ID] = e.Attempts
			if e.Evicted {
				evictedSet[e.VM.ID] = true
			}
			if !inSet[e.VM.ID] {
				inSet[e.VM.ID] = true
				remaining = append(remaining, e.VM)
			}
			res.Retried++
			if rec.Enabled() {
				rec.Record(obs.Event{Kind: obs.KindRetry, Shim: o.Shim, VM: e.VM.ID, Host: ShimUnknown,
					Value: float64(e.Attempts), Attrs: map[string]string{"cause": "queue"}})
			}
		}
	}
	// Destinations that rejected a VM are excluded from its later rounds
	// ("v_i should recalculate possible migration destinations"), as is
	// the host a victim was evicted from (no preemption ping-pong). The
	// exclusion set only grows, so the loop terminates.
	excluded := make(map[int]map[int]bool)
	exclude := func(vmID, j int) {
		if excluded[vmID] == nil {
			excluded[vmID] = make(map[int]bool)
		}
		excluded[vmID][j] = true
	}
	evictions := 0
	// preempt frees capacity for the stuck VMs by evicting one strictly
	// lower-severity resident from a candidate host, returning whether an
	// eviction happened (the caller then rebuilds the cost matrix). The
	// victim joins the remaining set and must find a new home itself.
	preempt := func(stuck []*dcn.VM) ([]*dcn.VM, bool) {
		if !o.Preempt.Enabled || evictions >= o.Preempt.MaxEvictions {
			return stuck, false
		}
		inSet := make(map[int]bool, len(stuck))
		for _, vm := range stuck {
			inSet[vm.ID] = true
		}
		// Highest-severity stuck VM first; ID breaks ties for determinism.
		order := append([]*dcn.VM(nil), stuck...)
		sort.SliceStable(order, func(i, j int) bool {
			si, sj := alert.ClassifySeverity(order[i].Alert), alert.ClassifySeverity(order[j].Alert)
			if si != sj {
				return si > sj
			}
			return order[i].ID < order[j].ID
		})
		for _, vm := range order {
			sev := alert.ClassifySeverity(vm.Alert)
			if int(sev) < o.Preempt.MinSeverityGap {
				continue // cannot dominate anyone by the required gap
			}
			for j, h := range candidates {
				if excluded[vm.ID][j] || h == vm.Host() {
					continue
				}
				if o.ForbidSameRack && vm.Host() != nil && h.Rack() == vm.Host().Rack() {
					continue
				}
				victim := preemptVictim(c, vm, h, o.Preempt, inSet)
				if victim == nil {
					continue
				}
				evictedFrom[victim.ID] = h
				c.Evict(victim)
				evictions++
				res.Preemptions++
				res.Evicted = append(res.Evicted, victim)
				evictedSet[victim.ID] = true
				exclude(victim.ID, j) // no ping-pong back onto h
				stuck = append(stuck, victim)
				if rec.Enabled() {
					rec.Record(obs.Event{Kind: obs.KindPreempt, Shim: o.Shim, VM: victim.ID, Host: h.ID,
						Value: victim.Value, Attrs: map[string]string{
							"for":             fmt.Sprintf("%d", vm.ID),
							"severity":        sev.String(),
							"victim-severity": alert.ClassifySeverity(victim.Alert).String(),
						}})
				}
				return stuck, true
			}
		}
		return stuck, false
	}

	pol := o.Placement
	round := 0
	for len(remaining) > 0 {
		round++
		costs := make([][]float64, len(remaining))
		bases := make([][]float64, len(remaining))
		feasible := false
		for i, vm := range remaining {
			costs[i] = make([]float64, len(candidates))
			bases[i] = make([]float64, len(candidates))
			for j, h := range candidates {
				if excluded[vm.ID][j] {
					costs[i][j] = matching.Forbidden
					continue
				}
				if o.ForbidSameRack && vm.Host() != nil && h.Rack() == vm.Host().Rack() {
					costs[i][j] = matching.Forbidden
					continue
				}
				costs[i][j], bases[i][j] = pairCost(c, m, vm, h, pol)
				if costs[i][j] != matching.Forbidden {
					feasible = true
				}
			}
		}
		res.SearchSpace += len(remaining) * len(candidates)
		if !feasible {
			var evicted bool
			if remaining, evicted = preempt(remaining); evicted {
				continue
			}
			break
		}
		sol, err := matching.Solve(costs)
		if err != nil {
			return nil, fmt.Errorf("migrate: matching: %w", err)
		}
		var next []*dcn.VM
		anyMatched := false
		for i, vm := range remaining {
			j := sol.Assign[i]
			if j < 0 {
				next = append(next, vm)
				continue
			}
			anyMatched = true
			dst := candidates[j]
			moveCost := bases[i][j]
			rec.Record(obs.Event{Kind: obs.KindRequest, Round: round, Shim: o.Shim, VM: vm.ID, Host: dst.ID, Value: moveCost})
			// Alg. 4 REQUEST: the destination's delegation node re-checks
			// capacity (FCFS) and replies ACK or REJECT.
			ok, cause := o.decide(vm, dst)
			if ok {
				from := vm.Host()
				if err := commitMove(c, pol, vm, dst); err != nil {
					// The handshake said yes but placement failed (e.g. a
					// dependency raced in): treat as a rejection.
					ok, cause = false, "race"
				} else {
					res.Migrations = append(res.Migrations, Migration{VM: vm, From: from, To: dst, Cost: moveCost})
					res.TotalCost += moveCost
					rec.Record(obs.Event{Kind: obs.KindAck, Round: round, Shim: o.Shim, VM: vm.ID, Host: dst.ID, Value: moveCost})
				}
			}
			if !ok {
				res.Rejected++
				exclude(vm.ID, j)
				next = append(next, vm)
				if rec.Enabled() {
					rec.Record(obs.Event{Kind: obs.KindReject, Round: round, Shim: o.Shim, VM: vm.ID, Host: dst.ID,
						Value: moveCost, Attrs: map[string]string{"cause": cause}})
				}
			}
		}
		if !anyMatched {
			var evicted bool
			if remaining, evicted = preempt(next); evicted {
				continue
			}
			remaining = next
			break
		}
		remaining = next
	}
	// Whatever is left found no home this call: park it in the fail-queue
	// when one is attached and the attempt budget allows, otherwise report
	// it unplaced. A detached victim that cannot park rolls back onto its
	// original host if the slot is still open.
	for _, vm := range remaining {
		att := attempts[vm.ID] + 1
		if o.Queue != nil && o.Queue.Put(RetryEntry{VM: vm, Shim: o.Shim, Attempts: att, Evicted: evictedSet[vm.ID]}) {
			res.Requeued++
			if rec.Enabled() {
				rec.Record(obs.Event{Kind: obs.KindRequeue, Round: round, Shim: o.Shim, VM: vm.ID, Host: ShimUnknown,
					Value: float64(att), Attrs: map[string]string{"attempts": fmt.Sprintf("%d", att)}})
			}
			continue
		}
		if vm.Host() == nil && evictedSet[vm.ID] {
			if home := evictedFrom[vm.ID]; home != nil && c.Move(vm, home) == nil {
				res.Preemptions-- // rolled back: the eviction did not stick
			}
		}
		res.Unplaced = append(res.Unplaced, vm)
		rec.Record(obs.Event{Kind: obs.KindUnplaced, Round: round, Shim: o.Shim, VM: vm.ID, Host: ShimUnknown})
	}
	return res, nil
}

// pairCost evaluates one (VM, destination) edge of Alg. 3's bipartite
// graph G_m under the placement policy: score is the matching weight
// (Forbidden when the destination cannot host the VM), base the Eqn. (1)
// migration cost actually charged on commit. With a nil policy both are
// the raw migration cost — the pre-policy behavior, bit for bit. A
// detached (preempted) VM has no source rack, so its base reduces to the
// fixed restart cost Cr.
func pairCost(c *dcn.Cluster, m *cost.Model, vm *dcn.VM, h *dcn.Host, pol placement.Policy) (score, base float64) {
	if h == vm.Host() {
		return matching.Forbidden, 0 // must actually move
	}
	if pol != nil {
		if !pol.Feasible(vm.Capacity, h) {
			return matching.Forbidden, 0
		}
	} else if h.Free() < vm.Capacity {
		return matching.Forbidden, 0
	}
	for _, resident := range h.VMs() {
		if c.Deps.Dependent(vm.ID, resident.ID) {
			return matching.Forbidden, 0
		}
	}
	if vm.Host() == nil {
		base = m.Params().Cr
	} else {
		mc, err := m.Migration(vm, h)
		if err != nil {
			return matching.Forbidden, 0
		}
		base = mc
	}
	if pol != nil {
		return pol.Score(vm.Capacity, h, base), base
	}
	return base, base
}

// commitMove applies an ACKed migration. An oversubscribing policy (one
// exposing Factor) commits through dcn.MoveOversub so the relaxed
// capacity rule the handshake granted also holds at placement.
func commitMove(c *dcn.Cluster, pol placement.Policy, vm *dcn.VM, dst *dcn.Host) error {
	if oc, ok := pol.(interface{ Factor() float64 }); ok {
		return c.MoveOversub(vm, dst, oc.Factor())
	}
	return c.Move(vm, dst)
}

// Request implements Alg. 4: the receiving delegation node grants the
// migration iff the destination host still has capacity for the VM
// (first come, first served). It does not mutate state; the actual move
// follows on ACK. Admission and failure injection compose in front of
// this check through RequestPolicy — the old package-global gate is gone
// (it was unsafe under the parallel coordinator).
func Request(vm *dcn.VM, dst *dcn.Host) bool {
	return dst.Free() >= vm.Capacity
}

// RequestWith is Request under a placement policy: the destination-side
// capacity rule becomes the policy's Feasible check, so e.g. an
// oversubscription policy also relaxes the Alg. 4 handshake. A nil
// policy is the paper's rule.
func RequestWith(pol placement.Policy, vm *dcn.VM, dst *dcn.Host) bool {
	if pol != nil {
		return pol.Feasible(vm.Capacity, dst)
	}
	return Request(vm, dst)
}
