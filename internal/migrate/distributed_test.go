package migrate

import (
	"testing"

	"sheriff/internal/comm"
	"sheriff/internal/dcn"
)

func distSetup(t *testing.T, lossRate float64, seed int64) (*fixture, []*Shim, *comm.Bus) {
	t.Helper()
	fx := newFixture(t, 4, 2)
	var shims []*Shim
	for _, r := range fx.cluster.Racks {
		s, err := NewShim(fx.cluster, fx.model, r, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		shims = append(shims, s)
	}
	bus, err := comm.NewBus(comm.Options{LossRate: lossRate, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return fx, shims, bus
}

func TestDistributedMigrationReliableBus(t *testing.T) {
	fx, shims, bus := distSetup(t, 0, 1)
	h := fx.cluster.Racks[0].Hosts[0]
	var vms []*dcn.VM
	for i := 0; i < 3; i++ {
		vm, err := fx.cluster.AddVM(h, 25, float64(i+1), false)
		if err != nil {
			t.Fatal(err)
		}
		vms = append(vms, vm)
	}
	sets := make([][]*dcn.VM, len(shims))
	sets[0] = vms
	res, err := DistributedVMMigration(fx.cluster, fx.model, bus, shims, sets, DistOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Migrations) != 3 {
		t.Fatalf("migrations = %d, want 3 (unplaced %d)", len(res.Migrations), len(res.Unplaced))
	}
	if res.TotalCost <= 0 || res.Rounds < 1 {
		t.Fatalf("result = %+v", res)
	}
	for _, vm := range vms {
		if vm.Host() == h {
			t.Fatal("VM did not move")
		}
	}
}

func TestDistributedMigrationSurvivesMessageLoss(t *testing.T) {
	fx, shims, bus := distSetup(t, 0.3, 2)
	h := fx.cluster.Racks[0].Hosts[0]
	var vms []*dcn.VM
	for i := 0; i < 3; i++ {
		vm, err := fx.cluster.AddVM(h, 25, float64(i+1), false)
		if err != nil {
			t.Fatal(err)
		}
		vms = append(vms, vm)
	}
	sets := make([][]*dcn.VM, len(shims))
	sets[0] = vms
	res, err := DistributedVMMigration(fx.cluster, fx.model, bus, shims, sets, DistOptions{MaxRounds: 60})
	if err != nil {
		t.Fatal(err)
	}
	// With 30% loss the protocol must still converge via retransmits.
	if len(res.Migrations) != 3 {
		t.Fatalf("migrations = %d under loss (retransmits %d, unplaced %d)",
			len(res.Migrations), res.Retransmits, len(res.Unplaced))
	}
	if res.Retransmits == 0 {
		t.Log("no retransmits at this seed (possible but unlikely)")
	}
	// No VM may be double-counted or lost.
	seen := map[int]bool{}
	for _, m := range res.Migrations {
		if seen[m.VM.ID] {
			t.Fatalf("VM %d migrated twice in the log", m.VM.ID)
		}
		seen[m.VM.ID] = true
	}
}

func TestDistributedMigrationContention(t *testing.T) {
	fx, shims, bus := distSetup(t, 0, 3)
	// Racks 0 and 1 (same pod) each shed one 60-cap VM; each neighbor
	// host can hold only one.
	a, err := fx.cluster.AddVM(fx.cluster.Racks[0].Hosts[0], 60, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fx.cluster.AddVM(fx.cluster.Racks[1].Hosts[0], 60, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-load the pod's other hosts so destinations are scarce.
	for _, h := range []*dcn.Host{fx.cluster.Racks[0].Hosts[1], fx.cluster.Racks[1].Hosts[1]} {
		if _, err := fx.cluster.AddVM(h, 50, 1, false); err != nil {
			t.Fatal(err)
		}
	}
	sets := make([][]*dcn.VM, len(shims))
	sets[0] = []*dcn.VM{a}
	sets[1] = []*dcn.VM{b}
	res, err := DistributedVMMigration(fx.cluster, fx.model, bus, shims, sets, DistOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Invariants regardless of who won: no oversubscription, no loss.
	for _, h := range fx.cluster.Hosts() {
		if h.Used() > h.Capacity+1e-9 {
			t.Fatalf("host %d oversubscribed", h.ID)
		}
	}
	if a.Host() == nil || b.Host() == nil {
		t.Fatal("VM lost")
	}
	_ = res
}

func TestDistributedMigrationShapeValidation(t *testing.T) {
	fx, shims, bus := distSetup(t, 0, 4)
	_ = fx
	if _, err := DistributedVMMigration(fx.cluster, fx.model, bus, shims, nil, DistOptions{}); err == nil {
		t.Fatal("mismatched set count accepted")
	}
}

func TestDistributedMigrationEmptySets(t *testing.T) {
	fx, shims, bus := distSetup(t, 0, 5)
	sets := make([][]*dcn.VM, len(shims))
	res, err := DistributedVMMigration(fx.cluster, fx.model, bus, shims, sets, DistOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Migrations) != 0 || res.Rounds != 1 {
		t.Fatalf("empty run = %+v", res)
	}
}
