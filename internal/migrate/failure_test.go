package migrate

import (
	"testing"

	"sheriff/internal/dcn"
)

// TestVMMigrationRetriesAfterTransientRejects injects REQUEST failures:
// the first few handshakes are refused (as if the destination shim's
// accept message was lost or it was momentarily saturated); Alg. 3's
// retry loop must still place the VM on a later round.
func TestVMMigrationRetriesAfterTransientRejects(t *testing.T) {
	fx := newFixture(t, 4, 2)
	vm, err := fx.cluster.AddVM(fx.cluster.Racks[0].Hosts[0], 50, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	rejectsLeft := 2
	opts := MigrationOptions{
		ForbidSameRack: true,
		Shim:           ShimUnknown,
		Policy: func(*dcn.VM, *dcn.Host) bool {
			if rejectsLeft > 0 {
				rejectsLeft--
				return false
			}
			return true
		},
	}

	dsts := []*dcn.Host{fx.cluster.Racks[1].Hosts[0], fx.cluster.Racks[1].Hosts[1], fx.cluster.Racks[2].Hosts[0]}
	res, err := Migrate(fx.cluster, fx.model, []*dcn.VM{vm}, dsts, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Migrations) != 1 {
		t.Fatalf("VM not placed after transient rejects: %+v", res)
	}
	if res.Rejected != 2 {
		t.Fatalf("rejected = %d, want 2", res.Rejected)
	}
}

// TestVMMigrationGivesUpUnderPermanentRejection verifies the protocol
// terminates (no livelock) when every destination permanently refuses.
func TestVMMigrationGivesUpUnderPermanentRejection(t *testing.T) {
	fx := newFixture(t, 4, 2)
	vm, err := fx.cluster.AddVM(fx.cluster.Racks[0].Hosts[0], 50, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	opts := MigrationOptions{
		ForbidSameRack: true,
		Shim:           ShimUnknown,
		Policy:         func(*dcn.VM, *dcn.Host) bool { return false },
	}

	res, err := Migrate(fx.cluster, fx.model, []*dcn.VM{vm}, []*dcn.Host{fx.cluster.Racks[1].Hosts[0]}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Migrations) != 0 {
		t.Fatal("migration happened despite permanent rejection")
	}
	if len(res.Unplaced) != 1 || res.Unplaced[0] != vm {
		t.Fatalf("unplaced = %v", res.Unplaced)
	}
	if vm.Host() != fx.cluster.Racks[0].Hosts[0] {
		t.Fatal("VM moved despite rejection")
	}
}

// TestVMMigrationPartialRejection: with two VMs and per-host rejection of
// one specific destination, the other VM still lands there.
func TestVMMigrationPartialRejection(t *testing.T) {
	fx := newFixture(t, 4, 2)
	a, err := fx.cluster.AddVM(fx.cluster.Racks[0].Hosts[0], 40, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fx.cluster.AddVM(fx.cluster.Racks[0].Hosts[1], 40, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	d1 := fx.cluster.Racks[1].Hosts[0]
	d2 := fx.cluster.Racks[1].Hosts[1]
	// d1 refuses VM a specifically (e.g. policy conflict), accepts b.
	opts := MigrationOptions{
		ForbidSameRack: true,
		Shim:           ShimUnknown,
		Policy: func(vm *dcn.VM, dst *dcn.Host) bool {
			return !(vm == a && dst == d1)
		},
	}

	res, err := Migrate(fx.cluster, fx.model, []*dcn.VM{a, b}, []*dcn.Host{d1, d2}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Migrations) != 2 {
		t.Fatalf("migrations = %d, want 2 (a retries onto d2)", len(res.Migrations))
	}
	if a.Host() == d1 {
		t.Fatal("a landed on the refusing host")
	}
	if a.Host() == nil || b.Host() == nil {
		t.Fatal("a VM was lost")
	}
}
