package migrate

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"sheriff/internal/comm"
	"sheriff/internal/dcn"
	"sheriff/internal/faults"
	"sheriff/internal/obs"
)

// chaosScenario builds a two-shim pod with VMs to relocate and a bus
// driven by the given fault plan, sharing one recorder across the wire
// and the protocol.
func chaosScenario(t *testing.T, plan faults.Plan, rec *obs.Recorder) (*fixture, []*Shim, [][]*dcn.VM, *comm.Bus) {
	t.Helper()
	fx := newFixture(t, 4, 2)
	var shims []*Shim
	for _, r := range fx.cluster.Racks[:2] {
		s, err := NewShim(fx.cluster, fx.model, r, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		shims = append(shims, s)
	}
	var sets [][]*dcn.VM
	for ri, r := range fx.cluster.Racks[:2] {
		var set []*dcn.VM
		for k := 0; k < 3; k++ {
			vm, err := fx.cluster.AddVM(r.Hosts[0], 25, float64(2+ri+k), false)
			if err != nil {
				t.Fatal(err)
			}
			set = append(set, vm)
		}
		sets = append(sets, set)
	}
	// Rack 0's spare host is filled so its candidates must cross the
	// fabric — the faults in the plan then stand between them and any
	// destination.
	if _, err := fx.cluster.AddVM(fx.cluster.Racks[0].Hosts[1], 80, 1, false); err != nil {
		t.Fatal(err)
	}
	inj, err := faults.New(plan)
	if err != nil {
		t.Fatal(err)
	}
	bus, err := comm.NewBus(comm.Options{Seed: 3, Recorder: rec, Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	return fx, shims, sets, bus
}

// resiliencePlan is the acceptance scenario: 20% drop, duplication,
// reordering, a dead 0→1 link, and a 3-round partition cutting rack 0
// off from its region. The dead link starves rack 0's cross-rack
// requests until their retry budget exhausts, so the run must descend
// the full degradation ladder.
func resiliencePlan(seed int64) faults.Plan {
	return faults.Plan{
		Seed:        seed,
		Drop:        0.2,
		DupRate:     0.25,
		ReorderRate: 0.3,
		Jitter:      1,
		Links:       []faults.LinkDrop{{From: 0, To: 1, Drop: 1}},
		Partitions:  []faults.Partition{{Name: "pod-cut", Start: 1, Rounds: 3, Nodes: []int{0}}},
	}
}

// TestChaosResilience pins the acceptance criterion: under drop +
// duplication + a partition window, the protocol leaves zero VMs
// permanently unplaced — the fallback ladder engages instead.
func TestChaosResilience(t *testing.T) {
	rec, err := obs.New(obs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fx, shims, sets, bus := chaosScenario(t, resiliencePlan(13), rec)
	res, err := DistributedVMMigration(fx.cluster, fx.model, bus, shims, sets, DistOptions{Recorder: rec, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unplaced) != 0 {
		t.Fatalf("%d VMs permanently unplaced under chaos; fallback did not engage (fallbacks=%d)",
			len(res.Unplaced), res.Fallbacks)
	}
	if res.Fallbacks == 0 {
		t.Fatal("the dead link never forced the degradation ladder to engage")
	}
	want := 0
	for _, set := range sets {
		want += len(set)
	}
	if got := len(res.Migrations); got != want {
		t.Fatalf("placed %d of %d VMs", got, want)
	}
	// Every migrated VM must actually sit on a host with capacity intact.
	for _, mg := range res.Migrations {
		if mg.VM.Host() == nil {
			t.Fatalf("VM %d recorded as migrated but has no host", mg.VM.ID)
		}
	}
	for _, h := range fx.cluster.Hosts() {
		if h.Used() > h.Capacity+1e-9 {
			t.Fatalf("host %d over capacity: %v > %v", h.ID, h.Used(), h.Capacity)
		}
	}
}

// TestChaosDuplicateSuppression checks fabric duplication never
// double-applies a migration: a 60% dup plan still yields one migration
// per VM and a positive suppression count.
func TestChaosDuplicateSuppression(t *testing.T) {
	rec, err := obs.New(obs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fx, shims, sets, bus := chaosScenario(t, faults.Plan{Seed: 7, DupRate: 0.6}, rec)
	res, err := DistributedVMMigration(fx.cluster, fx.model, bus, shims, sets, DistOptions{Recorder: rec, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, mg := range res.Migrations {
		if seen[mg.VM.ID] {
			t.Fatalf("VM %d migrated twice", mg.VM.ID)
		}
		seen[mg.VM.ID] = true
	}
	if res.Suppressed == 0 {
		t.Fatal("60% duplication produced no suppressions")
	}
	if res.Suppressed != int(rec.Count(obs.KindSuppress)) {
		t.Fatalf("suppressed counter %d != %d suppress events", res.Suppressed, rec.Count(obs.KindSuppress))
	}
}

// TestChaosDisableFallback pins the opt-out: with the ladder disabled, a
// total partition leaves the VMs unplaced (the pre-hardening behaviour).
func TestChaosDisableFallback(t *testing.T) {
	plan := faults.Plan{Seed: 1, Partitions: []faults.Partition{{Name: "all", Start: 0, Rounds: 1000, Nodes: []int{0, 1}}}}
	rec, err := obs.New(obs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fx, shims, sets, bus := chaosScenario(t, plan, rec)
	// The partition isolates both shims' racks from the rest of the
	// region but not from each other, and region hosts include the own
	// rack — so to force unplacement the VMs must not fit locally. Fill
	// the local hosts first.
	for _, r := range fx.cluster.Racks[:2] {
		for _, h := range r.Hosts {
			for h.Free() >= 25 {
				if _, err := fx.cluster.AddVM(h, h.Free(), 1, false); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	res, err := DistributedVMMigration(fx.cluster, fx.model, bus, shims, sets,
		DistOptions{Recorder: rec, DisableFallback: true, MaxRounds: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unplaced) == 0 {
		t.Fatal("expected unplaced VMs with fallback disabled under a full partition")
	}
	if res.Fallbacks != 0 {
		t.Fatalf("fallback ran despite DisableFallback: %d", res.Fallbacks)
	}
	if rec.Count(obs.KindUnplaced) == 0 {
		t.Fatal("no unplaced events recorded")
	}
}

// TestChaosTraceGolden pins the exact seeded chaos run: same seed + same
// fault plan must reproduce the JSONL trace bit for bit. Regenerate with:
// go test ./internal/migrate/ -run TestChaosTraceGolden -update
func TestChaosTraceGolden(t *testing.T) {
	run := func() []byte {
		rec, err := obs.New(obs.Options{})
		if err != nil {
			t.Fatal(err)
		}
		fx, shims, sets, bus := chaosScenario(t, resiliencePlan(13), rec)
		if _, err := DistributedVMMigration(fx.cluster, fx.model, bus, shims, sets, DistOptions{Recorder: rec, Seed: 13}); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		for _, e := range rec.Events() {
			line, err := json.Marshal(e)
			if err != nil {
				t.Fatal(err)
			}
			buf.Write(line)
			buf.WriteByte('\n')
		}
		return buf.Bytes()
	}
	got := run()
	if again := run(); !bytes.Equal(got, again) {
		t.Fatal("two identical seeded chaos runs produced different traces")
	}
	// The scenario must exercise the fault taxonomy before the byte
	// comparison means anything.
	for _, want := range []string{`"kind":"dup"`, `"kind":"drop"`, `"cause":"partition:pod-cut"`,
		`"kind":"backoff"`, `"kind":"fallback"`, `"kind":"reorder"`} {
		if !bytes.Contains(got, []byte(want)) {
			t.Fatalf("chaos trace missing %s", want)
		}
	}

	path := filepath.Join("testdata", "chaos_trace.golden.jsonl")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("chaos trace diverges from golden: got %d bytes, want %d\nregenerate with -update if the change is intended",
			len(got), len(want))
	}
}
