package migrate

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"sheriff/internal/alert"
	"sheriff/internal/comm"
	"sheriff/internal/dcn"
	"sheriff/internal/obs"
	"sheriff/internal/placement"
)

// alertEveryNth marks every nth VM (by ID order) as alerted and returns
// them — a deterministic stand-in for the predictor, mirrored exactly
// across identically populated clusters.
func alertEveryNth(c *dcn.Cluster, n int) []*dcn.VM {
	vms := c.VMs()
	sort.Slice(vms, func(i, j int) bool { return vms[i].ID < vms[j].ID })
	var out []*dcn.VM
	for i, vm := range vms {
		if i%n == 0 {
			vm.Alert = 0.9 + 0.01*float64(i%7)
			out = append(out, vm)
		}
	}
	return out
}

// migResultSignature flattens a result into a comparable string: exact
// migration sequence (VM, destination, cost) plus the counters.
func migResultSignature(res *MigrationResult) string {
	var b strings.Builder
	for _, mg := range res.Migrations {
		fmt.Fprintf(&b, "%d->%d@%.9f;", mg.VM.ID, mg.To.ID, mg.Cost)
	}
	fmt.Fprintf(&b, "|cost=%.9f|space=%d|rej=%d|pre=%d|req=%d|ret=%d|unp=",
		res.TotalCost, res.SearchSpace, res.Rejected, res.Preemptions, res.Requeued, res.Retried)
	for _, vm := range res.Unplaced {
		fmt.Fprintf(&b, "%d,", vm.ID)
	}
	return b.String()
}

// TestMigrateMatchesReference pins the tentpole equivalence guarantee:
// Migrate with default options (nil placement policy, no preemption, no
// queue) is bit-exact with the frozen pre-policy implementation in
// reference.go — same migrations in the same order with the same costs,
// same totals, same search space, same unplaced set — on every seed.
func TestMigrateMatchesReference(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 7, 11, 42} {
		for _, forbid := range []bool{false, true} {
			buildOne := func() (*fixture, []*dcn.VM) {
				fx := newFixture(t, 4, 2)
				fx.cluster.Populate(dcn.PopulateOptions{
					VMsPerHost: 3, MinCapacity: 5, MaxCapacity: 30,
					DependencyProb: 0.2, Seed: seed,
				})
				return fx, alertEveryNth(fx.cluster, 5)
			}
			fxA, fA := buildOne()
			fxB, fB := buildOne()
			o := MigrationOptions{ForbidSameRack: forbid, Shim: ShimUnknown}
			got, err := Migrate(fxA.cluster, fxA.model, fA, fxA.cluster.Hosts(), o)
			if err != nil {
				t.Fatalf("seed %d forbid %v: Migrate: %v", seed, forbid, err)
			}
			want, err := referenceVMMigration(fxB.cluster, fxB.model, fB, fxB.cluster.Hosts(), o)
			if err != nil {
				t.Fatalf("seed %d forbid %v: reference: %v", seed, forbid, err)
			}
			if gs, ws := migResultSignature(got), migResultSignature(want); gs != ws {
				t.Errorf("seed %d forbid %v: Migrate diverged from the pre-policy reference\n got: %s\nwant: %s",
					seed, forbid, gs, ws)
			}
		}
	}
}

// TestPolicyDeterminismSequential runs every grid policy twice through the
// sequential entry point on identically built clusters and demands
// bit-identical results — the seeded-reproducibility acceptance criterion.
func TestPolicyDeterminismSequential(t *testing.T) {
	run := func(kind placement.Kind) string {
		fx := newFixture(t, 4, 2)
		fx.cluster.Populate(dcn.PopulateOptions{
			VMsPerHost: 3, MinCapacity: 5, MaxCapacity: 25,
			DependencyProb: 0.1, Seed: 6,
		})
		f := alertEveryNth(fx.cluster, 6)
		pol, err := placement.PolicyOptions{Kind: kind, Seed: 9}.New()
		if err != nil {
			t.Fatal(err)
		}
		q, err := NewRetryQueue(RetryOptions{Enabled: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Migrate(fx.cluster, fx.model, f, fx.cluster.Hosts(), MigrationOptions{
			ForbidSameRack: true, Shim: ShimUnknown,
			Placement: pol, Preempt: PreemptOptions{Enabled: true}, Queue: q,
		})
		if err != nil {
			t.Fatal(err)
		}
		return migResultSignature(res)
	}
	for _, kind := range placement.Kinds() {
		a, b := run(kind), run(kind)
		if a != b {
			t.Errorf("%s: sequential run not reproducible\n a: %s\n b: %s", kind, a, b)
		}
	}
}

// TestPolicyDeterminismCoordinator does the same through concurrent
// coordinated rounds: the FCFS commit order must make the parallel path
// reproducible under every policy.
func TestPolicyDeterminismCoordinator(t *testing.T) {
	run := func(kind placement.Kind) string {
		fx := newFixture(t, 4, 2)
		fx.cluster.Populate(dcn.PopulateOptions{VMsPerHost: 3, MinCapacity: 5, MaxCapacity: 25, Seed: 8})
		params := DefaultParams()
		params.Placement = placement.PolicyOptions{Kind: kind, Seed: 9}
		params.Preempt = PreemptOptions{Enabled: true}
		params.Retry = RetryOptions{Enabled: true}
		var shims []*Shim
		for _, r := range fx.cluster.Racks {
			s, err := NewShim(fx.cluster, fx.model, r, params)
			if err != nil {
				t.Fatal(err)
			}
			shims = append(shims, s)
		}
		co := NewCoordinator(fx.cluster, fx.model, shims)
		sets := makeHotAlerts(shims)
		rep, err := co.Round(sets)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, mg := range rep.Migrations {
			fmt.Fprintf(&b, "%d->%d@%.9f;", mg.VM.ID, mg.To.ID, mg.Cost)
		}
		fmt.Fprintf(&b, "|cost=%.9f|pre=%d|req=%d", rep.TotalCost, rep.Preemptions, rep.Requeued)
		return b.String()
	}
	for _, kind := range placement.Kinds() {
		a, b := run(kind), run(kind)
		if a != b {
			t.Errorf("%s: coordinated round not reproducible\n a: %s\n b: %s", kind, a, b)
		}
	}
}

// TestPolicyDeterminismDistributed runs every grid policy twice through
// the message-passing protocol over a clean seeded bus.
func TestPolicyDeterminismDistributed(t *testing.T) {
	run := func(kind placement.Kind) string {
		fx := newFixture(t, 4, 2)
		fx.cluster.Populate(dcn.PopulateOptions{VMsPerHost: 3, MinCapacity: 5, MaxCapacity: 25, Seed: 12})
		var shims []*Shim
		for _, r := range fx.cluster.Racks {
			s, err := NewShim(fx.cluster, fx.model, r, DefaultParams())
			if err != nil {
				t.Fatal(err)
			}
			shims = append(shims, s)
		}
		f := alertEveryNth(fx.cluster, 7)
		sets := make([][]*dcn.VM, len(shims))
		for _, vm := range f {
			idx := vm.Host().Rack().Index
			sets[idx] = append(sets[idx], vm)
		}
		bus, err := comm.NewBus(comm.Options{Seed: 12})
		if err != nil {
			t.Fatal(err)
		}
		q, err := NewRetryQueue(RetryOptions{Enabled: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := DistributedVMMigration(fx.cluster, fx.model, bus, shims, sets, DistOptions{
			Seed:      12,
			Placement: placement.PolicyOptions{Kind: kind, Seed: 9},
			Preempt:   PreemptOptions{Enabled: true},
			Queue:     q,
		})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, mg := range res.Migrations {
			fmt.Fprintf(&b, "%d->%d@%.9f;", mg.VM.ID, mg.To.ID, mg.Cost)
		}
		fmt.Fprintf(&b, "|cost=%.9f|rej=%d|pre=%d|req=%d|unp=%d",
			res.TotalCost, res.Rejected, res.Preemptions, res.Requeued, len(res.Unplaced))
		return b.String()
	}
	for _, kind := range placement.Kinds() {
		a, b := run(kind), run(kind)
		if a != b {
			t.Errorf("%s: distributed run not reproducible\n a: %s\n b: %s", kind, a, b)
		}
	}
}

// makeHotAlerts raises one server alert per host loaded above 50%.
func makeHotAlerts(shims []*Shim) [][]alert.Alert {
	out := make([][]alert.Alert, len(shims))
	for i, shim := range shims {
		for _, h := range shim.Rack.Hosts {
			if h.Utilization() > 0.5 {
				out[i] = append(out[i], alert.Alert{Kind: alert.FromServer, HostID: h.ID, Value: 0.92})
			}
		}
	}
	return out
}

// TestSequentialPreemptThenRetry is the fail-queue round-trip: a critical
// VM with no feasible destination evicts a low-severity resident (round
// N), the victim parks in the queue, and the next management round (N+1)
// drains and places it — nothing is lost, nothing stays unplaced.
func TestSequentialPreemptThenRetry(t *testing.T) {
	fx := newFixture(t, 4, 1)
	h0 := fx.cluster.Racks[0].Hosts[0]
	h1 := fx.cluster.Racks[1].Hosts[0]
	h2 := fx.cluster.Racks[2].Hosts[0]

	in, err := fx.cluster.AddVM(h0, 40, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	in.Alert = 0.96                              // critical tier
	ds, err := fx.cluster.AddVM(h1, 30, 9, true) // delay-sensitive: not evictable
	if err != nil {
		t.Fatal(err)
	}
	victim, err := fx.cluster.AddVM(h1, 60, 1, false) // h1 free = 10 < 40
	if err != nil {
		t.Fatal(err)
	}

	q, err := NewRetryQueue(RetryOptions{Enabled: true})
	if err != nil {
		t.Fatal(err)
	}
	// Round N: only h1 is offered. The incoming VM does not fit until the
	// victim is evicted; the victim itself (severity none) may not preempt
	// and h1 is excluded for it (no ping-pong), so it parks.
	res1, err := Migrate(fx.cluster, fx.model, []*dcn.VM{in}, []*dcn.Host{h1}, MigrationOptions{
		Shim: 0, Preempt: PreemptOptions{Enabled: true}, Queue: q,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res1.Preemptions != 1 || len(res1.Evicted) != 1 || res1.Evicted[0] != victim {
		t.Fatalf("round N: want 1 eviction of the low-value resident, got %+v", res1)
	}
	if in.Host() != h1 {
		t.Fatalf("round N: critical VM on %v, want h1", in.Host())
	}
	if ds.Host() != h1 {
		t.Fatal("round N: delay-sensitive resident was disturbed")
	}
	if res1.Requeued != 1 || q.Len() != 1 || len(res1.Unplaced) != 0 {
		t.Fatalf("round N: victim should be parked (requeued=1, unplaced=0), got requeued=%d queue=%d unplaced=%d",
			res1.Requeued, q.Len(), len(res1.Unplaced))
	}
	if victim.Host() != nil {
		t.Fatalf("round N: victim should be detached, is on %v", victim.Host())
	}

	// Round N+1: the queue drains into a region with room; the victim
	// lands and the queue empties.
	res2, err := Migrate(fx.cluster, fx.model, nil, []*dcn.Host{h2}, MigrationOptions{
		Shim: 0, Preempt: PreemptOptions{Enabled: true}, Queue: q,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Retried != 1 || len(res2.Migrations) != 1 {
		t.Fatalf("round N+1: want the parked victim retried and placed, got %+v", res2)
	}
	if victim.Host() != h2 {
		t.Fatalf("round N+1: victim on %v, want h2", victim.Host())
	}
	if q.Len() != 0 || len(res2.Unplaced) != 0 {
		t.Fatalf("round N+1: queue=%d unplaced=%d, want 0/0", q.Len(), len(res2.Unplaced))
	}
}

// TestDistributedPreemptThenRetry stages the destination-side version: two
// critical VMs race for one destination host's capacity, FCFS grants the
// first, the second's refusal triggers a preemption, the victim parks in
// the protocol-wide queue tagged with its rack, and the next protocol run
// drains it back through its own shim and places it.
func TestDistributedPreemptThenRetry(t *testing.T) {
	fx := newFixture(t, 6, 1) // pod 0 = racks 0,1,2: shims 0 and 1 share rack 2
	h0 := fx.cluster.Racks[0].Hosts[0]
	h1 := fx.cluster.Racks[1].Hosts[0]
	h2 := fx.cluster.Racks[2].Hosts[0]

	in0, err := fx.cluster.AddVM(h0, 40, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	in0.Alert = 0.96
	if _, err := fx.cluster.AddVM(h0, 55, 9, true); err != nil { // h0 free 5
		t.Fatal(err)
	}
	in1, err := fx.cluster.AddVM(h1, 40, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	in1.Alert = 0.97
	if _, err := fx.cluster.AddVM(h1, 55, 9, true); err != nil { // h1 free 5
		t.Fatal(err)
	}
	ds2, err := fx.cluster.AddVM(h2, 20, 9, true)
	if err != nil {
		t.Fatal(err)
	}
	victim, err := fx.cluster.AddVM(h2, 35, 1, false) // h2 free 45
	if err != nil {
		t.Fatal(err)
	}

	var shims []*Shim
	for _, r := range fx.cluster.Racks[:3] {
		s, err := NewShim(fx.cluster, fx.model, r, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		shims = append(shims, s)
	}
	q, err := NewRetryQueue(RetryOptions{Enabled: true})
	if err != nil {
		t.Fatal(err)
	}
	opts := DistOptions{Seed: 2, Preempt: PreemptOptions{Enabled: true}, Queue: q}

	// Run 1: both alerted VMs can only go to h2 (free 45); the second
	// REQUEST finds free 5 and evicts the 35-cap low-value resident.
	bus1, err := comm.NewBus(comm.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := DistributedVMMigration(fx.cluster, fx.model, bus1, shims,
		[][]*dcn.VM{{in0}, {in1}, nil}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Preemptions != 1 {
		t.Fatalf("run 1: want 1 destination-side preemption, got %d", res1.Preemptions)
	}
	if in0.Host() != h2 || in1.Host() != h2 {
		t.Fatalf("run 1: both critical VMs should land on h2, got %v and %v", in0.Host(), in1.Host())
	}
	if ds2.Host() != h2 {
		t.Fatal("run 1: delay-sensitive resident was disturbed")
	}
	if victim.Host() != nil || q.Len() != 1 {
		t.Fatalf("run 1: victim should be detached and parked, host=%v queue=%d", victim.Host(), q.Len())
	}
	if len(res1.Unplaced) != 0 {
		t.Fatalf("run 1: unplaced = %d, want 0", len(res1.Unplaced))
	}

	// Run 2: no fresh alerts; the queue routes the victim back through
	// shim 2, whose region (racks 0 and 1, each with free 45 now) has room.
	bus2, err := comm.NewBus(comm.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := DistributedVMMigration(fx.cluster, fx.model, bus2, shims,
		make([][]*dcn.VM, 3), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Retried != 1 {
		t.Fatalf("run 2: want the parked victim drained (retried=1), got %d", res2.Retried)
	}
	if victim.Host() == nil {
		t.Fatal("run 2: victim still homeless")
	}
	if q.Len() != 0 || len(res2.Unplaced) != 0 {
		t.Fatalf("run 2: queue=%d unplaced=%d, want 0/0", q.Len(), len(res2.Unplaced))
	}
}

// TestPolicyTraceGolden pins the exact JSONL event sequence of a seeded
// preempt-and-retry scenario — request/reject/preempt/ack/requeue then
// retry/request/ack — so any change to the preemption order, the queue
// protocol, or the new event kinds shows up as a golden diff. Regenerate
// with: go test ./internal/migrate/ -run TestPolicyTraceGolden -update
func TestPolicyTraceGolden(t *testing.T) {
	rec, err := obs.New(obs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fx := newFixture(t, 4, 1)
	hA := fx.cluster.Racks[1].Hosts[0]
	hB := fx.cluster.Racks[2].Hosts[0]
	hC := fx.cluster.Racks[3].Hosts[0]

	in, err := fx.cluster.AddVM(fx.cluster.Racks[0].Hosts[0], 40, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	in.Alert = 0.96
	if _, err := fx.cluster.AddVM(hA, 50, 9, true); err != nil { // hA free 50, resident not evictable
		t.Fatal(err)
	}
	if _, err := fx.cluster.AddVM(hB, 30, 9, true); err != nil { // delay-sensitive
		t.Fatal(err)
	}
	victim, err := fx.cluster.AddVM(hB, 60, 1, false) // hB free 10
	if err != nil {
		t.Fatal(err)
	}

	q, err := NewRetryQueue(RetryOptions{Enabled: true})
	if err != nil {
		t.Fatal(err)
	}
	// Round 1: the admission policy vetoes the feasible hA, forcing a
	// reject; the rebuilt matrix is infeasible, so preemption evicts the
	// hB resident, the critical VM lands, and the victim parks.
	res1, err := Migrate(fx.cluster, fx.model, []*dcn.VM{in}, []*dcn.Host{hA, hB}, MigrationOptions{
		Shim:     0,
		Recorder: rec,
		Policy:   func(vm *dcn.VM, dst *dcn.Host) bool { return !(vm == in && dst == hA) },
		Preempt:  PreemptOptions{Enabled: true},
		Queue:    q,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res1.Preemptions != 1 || res1.Requeued != 1 || in.Host() != hB {
		t.Fatalf("round 1 did not preempt+park as staged: %+v (in on %v)", res1, in.Host())
	}
	// Round 2: the queue drains into an empty host; the victim places.
	res2, err := Migrate(fx.cluster, fx.model, nil, []*dcn.Host{hC}, MigrationOptions{
		Shim: 0, Recorder: rec, Queue: q,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Retried != 1 || victim.Host() != hC {
		t.Fatalf("round 2 did not retry+place as staged: %+v (victim on %v)", res2, victim.Host())
	}

	var buf bytes.Buffer
	kinds := map[obs.Kind]bool{}
	for _, e := range rec.Events() {
		kinds[e.Kind] = true
		line, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	for _, k := range []obs.Kind{obs.KindRequest, obs.KindReject, obs.KindPreempt,
		obs.KindAck, obs.KindRequeue, obs.KindRetry} {
		if !kinds[k] {
			t.Fatalf("trace has no %q event; kinds seen: %v", k, kinds)
		}
	}

	path := filepath.Join("testdata", "policy_trace.golden.jsonl")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d events)", path, rec.Seq())
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("policy trace diverges from golden: got %d bytes, want %d\nregenerate with -update if the change is intended",
			buf.Len(), len(want))
	}
}
