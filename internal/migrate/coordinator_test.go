package migrate

import (
	"testing"

	"sheriff/internal/alert"
	"sheriff/internal/dcn"
)

func buildCoordinator(t *testing.T, fx *fixture) (*Coordinator, []*Shim) {
	t.Helper()
	var shims []*Shim
	for _, r := range fx.cluster.Racks {
		s, err := NewShim(fx.cluster, fx.model, r, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		shims = append(shims, s)
	}
	return NewCoordinator(fx.cluster, fx.model, shims), shims
}

func TestCoordinatorRoundBasic(t *testing.T) {
	fx := newFixture(t, 4, 2)
	co, shims := buildCoordinator(t, fx)
	// Overload one host in rack 0.
	h := fx.cluster.Racks[0].Hosts[0]
	for i := 0; i < 4; i++ {
		if _, err := fx.cluster.AddVM(h, 20, float64(i+1), false); err != nil {
			t.Fatal(err)
		}
	}
	alerts := make([][]alert.Alert, len(shims))
	alerts[0] = []alert.Alert{{Kind: alert.FromServer, HostID: h.ID, Value: 0.95}}
	rep, err := co.Round(alerts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Migrations) == 0 {
		t.Fatal("no migrations")
	}
	if rep.TotalCost <= 0 || rep.SearchSpace <= 0 || rep.Rounds < 1 {
		t.Fatalf("report = %+v", rep)
	}
	if h.Used() >= 80 {
		t.Fatalf("host still at %v", h.Used())
	}
}

func TestCoordinatorShapeValidation(t *testing.T) {
	fx := newFixture(t, 4, 2)
	co, _ := buildCoordinator(t, fx)
	if _, err := co.Round(nil); err == nil {
		t.Fatal("mismatched alert-set count accepted")
	}
}

func TestCoordinatorEmptyRound(t *testing.T) {
	fx := newFixture(t, 4, 2)
	co, shims := buildCoordinator(t, fx)
	rep, err := co.Round(make([][]alert.Alert, len(shims)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Migrations) != 0 || rep.TotalCost != 0 {
		t.Fatalf("empty round produced %+v", rep)
	}
}

// TestCoordinatorCollisionResolution: two shims in the same pod contend
// for the single free slot of their shared neighborhood; FCFS must grant
// one and the loser must either recompute elsewhere or stay unplaced —
// never double-book.
func TestCoordinatorCollisionResolution(t *testing.T) {
	fx := newFixture(t, 4, 1) // one host per rack: scarce destinations
	co, shims := buildCoordinator(t, fx)

	// Racks 0 and 1 are pod 0; their shared one-hop region is each other.
	h0 := fx.cluster.Racks[0].Hosts[0]
	h1 := fx.cluster.Racks[1].Hosts[0]
	// Each overloaded host has a 30-cap VM to shed; each host has 100 cap.
	// Fill both to 90 so each can only accept ~10 — i.e. nothing fits and
	// collisions + unplacement happen; then free h1 a little so exactly
	// one VM fits somewhere.
	a, err := fx.cluster.AddVM(h0, 60, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fx.cluster.AddVM(h0, 30, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	c, err := fx.cluster.AddVM(h1, 60, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	_ = a
	_ = c

	alerts := make([][]alert.Alert, len(shims))
	alerts[0] = []alert.Alert{{Kind: alert.FromServer, HostID: h0.ID, Value: 0.95}}
	alerts[1] = []alert.Alert{{Kind: alert.FromServer, HostID: h1.ID, Value: 0.95}}
	rep, err := co.Round(alerts)
	if err != nil {
		t.Fatal(err)
	}
	// Invariants: nothing oversubscribed, nothing lost.
	for _, h := range fx.cluster.Hosts() {
		if h.Used() > h.Capacity+1e-9 {
			t.Fatalf("host %d oversubscribed after coordination: %v", h.ID, h.Used())
		}
	}
	if b.Host() == nil {
		t.Fatal("VM lost")
	}
	_ = rep
}

// TestCoordinatorMatchesSequentialInvariants: coordinated rounds must
// preserve total capacity, like the sequential path.
func TestCoordinatorConservesCapacity(t *testing.T) {
	fx := newFixture(t, 4, 2)
	fx.cluster.Populate(dcn.PopulateOptions{VMsPerHost: 4, MinCapacity: 5, MaxCapacity: 20, Seed: 77})
	co, shims := buildCoordinator(t, fx)

	before := 0.0
	for _, h := range fx.cluster.Hosts() {
		before += h.Used()
	}
	alerts := make([][]alert.Alert, len(shims))
	for i, shim := range shims {
		for _, h := range shim.Rack.Hosts {
			if h.Utilization() > 0.5 {
				alerts[i] = append(alerts[i], alert.Alert{Kind: alert.FromServer, HostID: h.ID, Value: 0.92})
			}
		}
	}
	if _, err := co.Round(alerts); err != nil {
		t.Fatal(err)
	}
	after := 0.0
	for _, h := range fx.cluster.Hosts() {
		after += h.Used()
	}
	if before != after {
		t.Fatalf("capacity changed: %v -> %v", before, after)
	}
}

// TestCoordinatorParallelSafety runs a larger coordinated round under the
// race detector (the test binary is run with -race in CI).
func TestCoordinatorParallelSafety(t *testing.T) {
	fx := newFixture(t, 8, 2)
	fx.cluster.Populate(dcn.PopulateOptions{VMsPerHost: 4, MinCapacity: 5, MaxCapacity: 20, Seed: 78})
	co, shims := buildCoordinator(t, fx)
	alerts := make([][]alert.Alert, len(shims))
	for i, shim := range shims {
		for _, h := range shim.Rack.Hosts {
			alerts[i] = append(alerts[i], alert.Alert{Kind: alert.FromServer, HostID: h.ID, Value: 0.91})
		}
	}
	rep, err := co.Round(alerts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds < 1 {
		t.Fatal("no rounds ran")
	}
}
