package migrate

import (
	"fmt"
	"sort"
	"strconv"

	"sheriff/internal/alert"
	"sheriff/internal/comm"
	"sheriff/internal/cost"
	"sheriff/internal/dcn"
	"sheriff/internal/matching"
	"sheriff/internal/obs"
	"sheriff/internal/placement"
)

// DistOptions tunes the message-passing migration protocol. Zero fields
// mean "use the default"; negative values are a Validate error.
type DistOptions struct {
	// MaxRounds bounds the protocol (a round = propose, deliver, decide,
	// deliver, collect). Default 30.
	MaxRounds int
	// RequestTimeout is how many rounds a request may stay unanswered
	// before the source assumes it was lost and retries. Default 3.
	RequestTimeout int
	// RetryBudget is how many times one VM's request may time out before
	// the source stops retrying and degrades it to local sequential
	// placement (see DisableFallback). Default 4.
	RetryBudget int
	// BackoffBase is the first backoff after a timeout, in rounds; each
	// further timeout doubles it (exponential backoff with deterministic
	// seeded jitter in [0, current backoff]). Default 1.
	BackoffBase int
	// BackoffMax caps the exponential backoff, in rounds. Default 8.
	BackoffMax int
	// Seed drives the backoff jitter. The jitter is a pure function of
	// (Seed, VM ID, attempt), so it is deterministic regardless of map
	// iteration or timeout order.
	Seed int64
	// DisableFallback leaves budget-exhausted and unreachable VMs
	// unplaced instead of degrading them to local sequential placement
	// (the pre-fault-injection behaviour; also the ablation baseline).
	DisableFallback bool
	// RequestPolicy, when non-nil, is consulted by every destination shim
	// before its capacity check — the protocol-wide admission / failure
	// injection point. Destination shims additionally apply their own
	// Params.RequestPolicy.
	RequestPolicy RequestPolicy
	// Recorder, when non-nil, receives request/ack/reject/retry/backoff/
	// suppress/fallback/unplaced events with protocol round numbers.
	Recorder *obs.Recorder
	// Placement selects the protocol-wide destination-scoring policy for
	// source matchings and destination capacity grants. The zero value is
	// the Sheriff rule, bit-exact with the pre-policy protocol.
	Placement placement.PolicyOptions
	// Preempt enables destination-side preemption: a shim refusing a
	// REQUEST for capacity may evict a strictly lower-severity resident
	// to grant it. Requires Queue (the victim must park somewhere).
	Preempt PreemptOptions
	// Queue, when non-nil, is the cross-invocation fail-queue: parked VMs
	// drain into their owning shim's candidate set at the start of the
	// run, and budget- or rounds-exhausted VMs park for the next run
	// instead of degrading straight to the fallback ladder.
	Queue *RetryQueue
}

// Validate reports whether the options are usable. Negative values are
// errors; zero values mean "use the default".
func (o DistOptions) Validate() error {
	if o.MaxRounds < 0 {
		return fmt.Errorf("migrate: MaxRounds must be >= 0 (0 = default), got %d", o.MaxRounds)
	}
	if o.RequestTimeout < 0 {
		return fmt.Errorf("migrate: RequestTimeout must be >= 0 (0 = default), got %d", o.RequestTimeout)
	}
	if o.RetryBudget < 0 {
		return fmt.Errorf("migrate: RetryBudget must be >= 0 (0 = default), got %d", o.RetryBudget)
	}
	if o.BackoffBase < 0 {
		return fmt.Errorf("migrate: BackoffBase must be >= 0 (0 = default), got %d", o.BackoffBase)
	}
	if o.BackoffMax < 0 {
		return fmt.Errorf("migrate: BackoffMax must be >= 0 (0 = default), got %d", o.BackoffMax)
	}
	if err := o.Placement.Validate(); err != nil {
		return err
	}
	return o.Preempt.Validate()
}

// WithDefaults returns the options with zero fields replaced by their
// defaults (parity with Params.WithDefaults; zero = default, negative =
// Validate error).
func (o DistOptions) WithDefaults() DistOptions {
	if o.MaxRounds == 0 {
		o.MaxRounds = 30
	}
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 3
	}
	if o.RetryBudget == 0 {
		o.RetryBudget = 4
	}
	if o.BackoffBase == 0 {
		o.BackoffBase = 1
	}
	if o.BackoffMax == 0 {
		o.BackoffMax = 8
	}
	o.Placement = o.Placement.WithDefaults()
	o.Preempt = o.Preempt.WithDefaults()
	return o
}

// DistResult summarizes a distributed migration run.
type DistResult struct {
	Migrations  []Migration
	TotalCost   float64
	SearchSpace int
	Rejected    int
	Retransmits int // requests re-sent after a presumed loss
	Suppressed  int // duplicate requests/replies discarded by dedup
	Fallbacks   int // VMs degraded to local sequential placement
	Rounds      int
	Unplaced    []*dcn.VM
	Preemptions int // residents evicted by destination shims
	Retried     int // fail-queued VMs drained into this run
	Requeued    int // VMs parked in the fail-queue for the next run
}

// outstanding tracks one in-flight request at its source shim.
type outstanding struct {
	vm   *dcn.VM
	dst  *dcn.Host
	cost float64
	age  int
}

// backoffJitter derives the deterministic jitter for one (seed, vm,
// attempt) retry in [0, span] via a splitmix64-style hash — independent
// of map iteration and timeout order, so traces replay bit-identically.
func backoffJitter(seed int64, vmID, attempt, span int) int {
	if span <= 0 {
		return 0
	}
	x := uint64(seed)*0x9e3779b97f4a7c15 + uint64(vmID)*0xbf58476d1ce4e5b9 + uint64(attempt)*0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(span+1))
}

// fallbackVM is one VM degraded out of the distributed protocol, with the
// cause for its trace event.
type fallbackVM struct {
	vm    *dcn.VM
	cause string
}

// DistributedVMMigration runs Alg. 3 + Alg. 4 as an actual message
// protocol over the bus: source shims match their candidate VMs against
// their regions and send REQUEST envelopes; destination shims grant
// capacity FCFS in message-arrival order, apply the move themselves, and
// reply ACK or REJECT. The protocol survives an adverse fabric (see
// internal/faults): lost messages are handled by timeout and exponential
// backoff with seeded jitter, fabric-duplicated REQUESTs and replies are
// suppressed by message ID, destinations across an active partition
// window are not proposed to, and when a VM's retry budget exhausts (or
// the rounds run out) it degrades to local sequential placement instead
// of staying unplaced. A lost ACK is detected by observing that the VM
// already sits at the requested destination.
//
// vmSets[i] holds the VMs shims[i] must relocate. Shims are addressed on
// the bus by rack index.
func DistributedVMMigration(c *dcn.Cluster, m *cost.Model, bus *comm.Bus, shims []*Shim, vmSets [][]*dcn.VM, opts DistOptions) (*DistResult, error) {
	if len(vmSets) != len(shims) {
		return nil, fmt.Errorf("migrate: %d VM sets for %d shims", len(vmSets), len(shims))
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.WithDefaults()
	rec := opts.Recorder
	res := &DistResult{}
	var pol placement.Policy
	if opts.Placement.Kind != placement.Sheriff {
		p, err := opts.Placement.New()
		if err != nil {
			return nil, err
		}
		pol = p
	}

	shimByRack := make(map[int]*Shim, len(shims))
	shimIdxByRack := make(map[int]int, len(shims))
	for i, s := range shims {
		shimByRack[s.Rack.Index] = s
		shimIdxByRack[s.Rack.Index] = i
	}
	remaining := make([][]*dcn.VM, len(shims))
	for i, set := range vmSets {
		remaining[i] = append([]*dcn.VM(nil), set...)
	}
	// Drain the cross-invocation fail-queue: parked VMs re-enter their
	// owning shim's candidate set (unattributed entries go to shim 0).
	queueAttempts := make(map[int]int)
	queueEvicted := make(map[int]bool)
	if opts.Queue != nil {
		for _, e := range opts.Queue.TakeAll() {
			if c.VM(e.VM.ID) != e.VM {
				continue // removed from the cluster while parked
			}
			i, ok := shimIdxByRack[e.Shim]
			if !ok {
				i = 0
			}
			queueAttempts[e.VM.ID] = e.Attempts
			if e.Evicted {
				queueEvicted[e.VM.ID] = true
			}
			remaining[i] = append(remaining[i], e.VM)
			res.Retried++
			if rec.Enabled() {
				rec.Record(obs.Event{Kind: obs.KindRetry, Shim: e.Shim, VM: e.VM.ID, Host: ShimUnknown,
					Value: float64(e.Attempts), Attrs: map[string]string{"cause": "queue"}})
			}
		}
	}
	evictions := 0
	// Per-shim excluded (vmID, hostID) pairs after explicit REJECTs.
	excluded := make([]map[int]map[int]bool, len(shims))
	for i := range excluded {
		excluded[i] = make(map[int]map[int]bool)
	}
	pending := make([]map[int]*outstanding, len(shims)) // seq -> request
	for i := range pending {
		pending[i] = make(map[int]*outstanding)
	}
	// Source-side protocol-hardening state, all keyed per shim:
	// resolved seqs (for duplicate-reply suppression), per-VM timeout
	// attempts, and per-VM backoff deadlines (protocol round numbers).
	resolved := make([]map[int]bool, len(shims))
	attempts := make([]map[int]int, len(shims))
	deferUntil := make([]map[int]int, len(shims))
	fallback := make([][]fallbackVM, len(shims))
	for i := range shims {
		resolved[i] = make(map[int]bool)
		attempts[i] = make(map[int]int)
		deferUntil[i] = make(map[int]int)
	}
	// Destination-side dedup: seq -> reply already sent, so a duplicated
	// REQUEST is re-answered identically instead of re-applying the move.
	answered := make(map[int]map[int]comm.Type, len(shims))
	for _, s := range shims {
		answered[s.Rack.Index] = make(map[int]comm.Type)
	}
	seq := 0

	// degrade moves one VM out of the distributed protocol.
	degrade := func(i int, vm *dcn.VM, round int, cause string) {
		fallback[i] = append(fallback[i], fallbackVM{vm: vm, cause: cause})
		if rec.Enabled() {
			rec.Record(obs.Event{Kind: obs.KindFallback, Round: round,
				Shim: shims[i].Rack.Index, VM: vm.ID, Host: ShimUnknown,
				Attrs: map[string]string{"cause": cause}})
		}
	}

	for round := 0; round < opts.MaxRounds; round++ {
		res.Rounds = round + 1
		// Phase A: sources with free candidates propose via matching.
		// VMs inside a backoff window sit this round out; destinations
		// across an active partition are not proposed to.
		for i, shim := range shims {
			if len(remaining[i]) == 0 {
				continue
			}
			var ready, waiting []*dcn.VM
			for _, vm := range remaining[i] {
				if deferUntil[i][vm.ID] > round {
					waiting = append(waiting, vm)
				} else {
					ready = append(ready, vm)
				}
			}
			if len(ready) == 0 {
				remaining[i] = waiting
				continue
			}
			hosts := shim.regionHosts(true)
			if len(hosts) == 0 {
				for _, vm := range ready {
					degrade(i, vm, res.Rounds, "no-destination")
				}
				remaining[i] = waiting
				continue
			}
			costs := make([][]float64, len(ready))
			bases := make([][]float64, len(ready))
			feasible := false
			cut := make(map[int]bool) // host index -> across a partition
			for hi, h := range hosts {
				if _, p := bus.Partitioned(shim.Rack.Index, h.Rack().Index); p {
					cut[hi] = true
				}
			}
			for vi, vm := range ready {
				costs[vi] = make([]float64, len(hosts))
				bases[vi] = make([]float64, len(hosts))
				for hi, h := range hosts {
					if cut[hi] || excluded[i][vm.ID][h.ID] {
						costs[vi][hi] = matching.Forbidden
						continue
					}
					costs[vi][hi], bases[vi][hi] = pairCost(c, m, vm, h, pol)
					if costs[vi][hi] != matching.Forbidden {
						feasible = true
					}
				}
			}
			res.SearchSpace += len(ready) * len(hosts)
			if !feasible {
				cause := "no-destination"
				if len(cut) > 0 {
					cause = "partition"
				}
				for _, vm := range ready {
					degrade(i, vm, res.Rounds, cause)
				}
				remaining[i] = waiting
				continue
			}
			sol, err := matching.Solve(costs)
			if err != nil {
				return nil, fmt.Errorf("migrate: distributed matching: %w", err)
			}
			keep := waiting
			for vi, vm := range ready {
				hi := sol.Assign[vi]
				if hi < 0 {
					keep = append(keep, vm)
					continue
				}
				dst := hosts[hi]
				seq++
				pending[i][seq] = &outstanding{vm: vm, dst: dst, cost: bases[vi][hi]}
				rec.Record(obs.Event{Kind: obs.KindRequest, Round: res.Rounds,
					Shim: shim.Rack.Index, VM: vm.ID, Host: dst.ID, Value: bases[vi][hi]})
				bus.Send(comm.Message{
					Type: comm.MsgRequest,
					From: shim.Rack.Index,
					To:   dst.Rack().Index,
					VMID: vm.ID, HostID: dst.ID, Seq: seq,
				})
			}
			remaining[i] = keep
		}
		bus.Deliver()

		// answerRequest runs one destination-side Alg. 4 decision. A
		// REQUEST seq already answered (a fabric duplicate) is re-answered
		// with the recorded reply instead of re-applying the move.
		answerRequest := func(shim *Shim, msg comm.Message) {
			seen := answered[shim.Rack.Index]
			reply, dup := seen[msg.Seq]
			if dup {
				res.Suppressed++
				if rec.Enabled() {
					rec.Record(obs.Event{Kind: obs.KindSuppress, Round: res.Rounds,
						Shim: shim.Rack.Index, VM: msg.VMID, Host: msg.HostID,
						Attrs: map[string]string{"msg": comm.MsgRequest.String(), "seq": strconv.Itoa(msg.Seq)}})
				}
			} else {
				vm := c.VM(msg.VMID)
				dst := c.Host(msg.HostID)
				reply = comm.MsgReject
				if vm != nil && dst != nil && dst.Rack() == shim.Rack {
					granted := allowRequestWith(pol, opts.RequestPolicy, shim, vm, dst)
					// Destination-side preemption: a capacity refusal may
					// evict one strictly lower-severity resident; the victim
					// parks in the fail-queue and finds a new home later.
					if !granted && opts.Preempt.Enabled && opts.Queue != nil &&
						evictions < opts.Preempt.MaxEvictions &&
						allowRequestPolicies(opts.RequestPolicy, shim, vm, dst) {
						if victim := preemptVictim(c, vm, dst, opts.Preempt, nil); victim != nil {
							c.Evict(victim)
							evictions++
							res.Preemptions++
							opts.Queue.Put(RetryEntry{VM: victim, Shim: shim.Rack.Index, Evicted: true})
							res.Requeued++
							if rec.Enabled() {
								rec.Record(obs.Event{Kind: obs.KindPreempt, Round: res.Rounds,
									Shim: shim.Rack.Index, VM: victim.ID, Host: dst.ID,
									Value: victim.Value, Attrs: map[string]string{
										"for":             strconv.Itoa(vm.ID),
										"severity":        alert.ClassifySeverity(vm.Alert).String(),
										"victim-severity": alert.ClassifySeverity(victim.Alert).String(),
									}})
							}
							granted = allowRequestWith(pol, opts.RequestPolicy, shim, vm, dst)
						}
					}
					if granted {
						if err := commitMove(c, pol, vm, dst); err == nil {
							reply = comm.MsgAck
						}
					}
				}
				seen[msg.Seq] = reply
			}
			bus.Send(comm.Message{
				Type: reply,
				From: shim.Rack.Index,
				To:   msg.From,
				VMID: msg.VMID, HostID: msg.HostID, Seq: msg.Seq,
			})
		}

		// Phase B: destinations grant FCFS in arrival order and apply the
		// move themselves (they own the host), then reply.
		for _, shim := range shims {
			for _, msg := range bus.Receive(shim.Rack.Index) {
				if msg.Type != comm.MsgRequest {
					continue
				}
				answerRequest(shim, msg)
			}
		}
		bus.Deliver()

		// Phase C: sources collect replies and age out lost requests.
		// Delay-faulted REQUESTs landing in this half-round are answered
		// here rather than discarded (the reply reaches its source next
		// round).
		done := true
		for i := range shims {
			for _, msg := range bus.Receive(shims[i].Rack.Index) {
				if msg.Type == comm.MsgRequest {
					answerRequest(shims[i], msg)
					continue
				}
				if msg.Type != comm.MsgAck && msg.Type != comm.MsgReject {
					continue
				}
				req := pending[i][msg.Seq]
				if req == nil {
					// A duplicated or late reply for a seq already settled
					// (or timed out): suppress, never double-count.
					if resolved[i][msg.Seq] {
						res.Suppressed++
						if rec.Enabled() {
							rec.Record(obs.Event{Kind: obs.KindSuppress, Round: res.Rounds,
								Shim: shims[i].Rack.Index, VM: msg.VMID, Host: msg.HostID,
								Attrs: map[string]string{"msg": msg.Type.String(), "seq": strconv.Itoa(msg.Seq)}})
						}
					}
					continue
				}
				delete(pending[i], msg.Seq)
				resolved[i][msg.Seq] = true
				switch msg.Type {
				case comm.MsgAck:
					res.Migrations = append(res.Migrations, Migration{
						VM: req.vm, From: nil, To: req.dst, Cost: req.cost,
					})
					res.TotalCost += req.cost
					rec.Record(obs.Event{Kind: obs.KindAck, Round: res.Rounds,
						Shim: shims[i].Rack.Index, VM: req.vm.ID, Host: req.dst.ID, Value: req.cost})
				case comm.MsgReject:
					res.Rejected++
					excludeDist(excluded[i], req.vm.ID, req.dst.ID)
					remaining[i] = append(remaining[i], req.vm)
					rec.Record(obs.Event{Kind: obs.KindReject, Round: res.Rounds,
						Shim: shims[i].Rack.Index, VM: req.vm.ID, Host: req.dst.ID, Value: req.cost})
				}
			}
			// Timeouts: either the request or its reply was lost.
			var expired []int
			for s, req := range pending[i] {
				req.age++
				if req.age >= opts.RequestTimeout {
					expired = append(expired, s)
				}
			}
			sort.Ints(expired)
			for _, s := range expired {
				req := pending[i][s]
				delete(pending[i], s)
				resolved[i][s] = true
				if req.vm.Host() == req.dst {
					// The move happened; only the ACK was lost.
					res.Migrations = append(res.Migrations, Migration{
						VM: req.vm, From: nil, To: req.dst, Cost: req.cost,
					})
					res.TotalCost += req.cost
					if rec.Enabled() {
						rec.Record(obs.Event{Kind: obs.KindAck, Round: res.Rounds,
							Shim: shims[i].Rack.Index, VM: req.vm.ID, Host: req.dst.ID,
							Value: req.cost, Attrs: map[string]string{"cause": "lost-ack"}})
					}
					continue
				}
				attempts[i][req.vm.ID]++
				attempt := attempts[i][req.vm.ID]
				if attempt > opts.RetryBudget {
					degrade(i, req.vm, res.Rounds, "budget")
					continue
				}
				res.Retransmits++
				// Exponential backoff before the VM proposes again:
				// base·2^(attempt-1) capped at BackoffMax, plus seeded
				// jitter in [0, backoff].
				backoff := opts.BackoffBase << (attempt - 1)
				if backoff > opts.BackoffMax || backoff <= 0 {
					backoff = opts.BackoffMax
				}
				backoff += backoffJitter(opts.Seed, req.vm.ID, attempt, backoff)
				deferUntil[i][req.vm.ID] = round + backoff
				remaining[i] = append(remaining[i], req.vm)
				if rec.Enabled() {
					rec.Record(obs.Event{Kind: obs.KindRetry, Round: res.Rounds,
						Shim: shims[i].Rack.Index, VM: req.vm.ID, Host: req.dst.ID,
						Value: req.cost, Attrs: map[string]string{"cause": "timeout"}})
					rec.Record(obs.Event{Kind: obs.KindBackoff, Round: res.Rounds,
						Shim: shims[i].Rack.Index, VM: req.vm.ID, Host: req.dst.ID,
						Value: float64(backoff), Attrs: map[string]string{"attempt": strconv.Itoa(attempt)}})
				}
			}
			if len(remaining[i]) > 0 || len(pending[i]) > 0 {
				done = false
			}
		}
		if done {
			break
		}
	}
	// Whatever is still waiting after MaxRounds degrades too. Pending maps
	// drain in seq order so the result (and its trace) is deterministic.
	for i := range shims {
		for _, vm := range remaining[i] {
			degrade(i, vm, res.Rounds, "rounds")
		}
		remaining[i] = nil
		var waiting []int
		for s := range pending[i] {
			waiting = append(waiting, s)
		}
		sort.Ints(waiting)
		for _, s := range waiting {
			if req := pending[i][s]; req.vm.Host() != req.dst {
				degrade(i, req.vm, res.Rounds, "rounds")
			}
		}
	}
	// Degradation ladder, last rung: each shim places its degraded VMs
	// with local sequential VMMIGRATION over its own region — no bus, no
	// retries — so a hostile fabric costs optimality, not placement. With
	// a fail-queue attached, VMs inside the attempt budget park for the
	// next protocol run instead of degrading; budget-exhausted ones still
	// take the ladder so in-call unplaced==0 guarantees hold.
	for i, shim := range shims {
		if len(fallback[i]) == 0 {
			continue
		}
		vms := make([]*dcn.VM, 0, len(fallback[i]))
		for _, f := range fallback[i] {
			vm := f.vm
			if opts.Queue != nil {
				att := queueAttempts[vm.ID] + 1
				if opts.Queue.Put(RetryEntry{VM: vm, Shim: shim.Rack.Index, Attempts: att, Evicted: queueEvicted[vm.ID]}) {
					res.Requeued++
					if rec.Enabled() {
						rec.Record(obs.Event{Kind: obs.KindRequeue, Round: res.Rounds,
							Shim: shim.Rack.Index, VM: vm.ID, Host: ShimUnknown,
							Value: float64(att), Attrs: map[string]string{"attempts": strconv.Itoa(att)}})
					}
					continue
				}
			}
			vms = append(vms, vm)
		}
		if len(vms) == 0 {
			continue
		}
		if opts.DisableFallback {
			res.Unplaced = append(res.Unplaced, vms...)
			continue
		}
		res.Fallbacks += len(vms)
		hosts := shim.regionHosts(true)
		if len(hosts) == 0 {
			res.Unplaced = append(res.Unplaced, vms...)
			continue
		}
		lr, err := Migrate(c, m, vms, hosts, MigrationOptions{
			Policy:    composePolicy(opts.RequestPolicy, shim.params.RequestPolicy),
			Recorder:  rec,
			Shim:      shim.Rack.Index,
			Placement: pol,
		})
		if err != nil {
			return nil, fmt.Errorf("migrate: fallback placement shim %d: %w", shim.Rack.Index, err)
		}
		res.Migrations = append(res.Migrations, lr.Migrations...)
		res.TotalCost += lr.TotalCost
		res.SearchSpace += lr.SearchSpace
		res.Rejected += lr.Rejected
		res.Unplaced = append(res.Unplaced, lr.Unplaced...)
	}
	if opts.DisableFallback && rec.Enabled() {
		for _, vm := range res.Unplaced {
			rec.Record(obs.Event{Kind: obs.KindUnplaced, Round: res.Rounds, Shim: ShimUnknown, VM: vm.ID, Host: ShimUnknown})
		}
	}
	return res, nil
}

// composePolicy ANDs two request policies, treating nil as always-allow.
func composePolicy(a, b RequestPolicy) RequestPolicy {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return func(vm *dcn.VM, dst *dcn.Host) bool { return a(vm, dst) && b(vm, dst) }
}

// allowRequestPolicies composes the protocol-wide policy and the
// destination shim's own policy (the admission stages, without the
// capacity check).
func allowRequestPolicies(protocol RequestPolicy, dstShim *Shim, vm *dcn.VM, dst *dcn.Host) bool {
	if protocol != nil && !protocol(vm, dst) {
		return false
	}
	if p := dstShim.params.RequestPolicy; p != nil && !p(vm, dst) {
		return false
	}
	return true
}

// allowRequestWith composes the admission policies and the Alg. 4
// capacity check under the placement policy's capacity rule.
func allowRequestWith(pol placement.Policy, protocol RequestPolicy, dstShim *Shim, vm *dcn.VM, dst *dcn.Host) bool {
	return allowRequestPolicies(protocol, dstShim, vm, dst) && RequestWith(pol, vm, dst)
}

// preemptVictim selects the cheapest evictable resident of dst whose
// severity tier the incoming VM dominates by the configured gap: lowest
// knapsack Value first (the Alg. 2 preference), lowest ID on ties, never
// delay-sensitive VMs or IDs in skip, and only when the eviction
// actually makes room and leaves no dependency conflict. Returns nil
// when no resident qualifies.
func preemptVictim(c *dcn.Cluster, vm *dcn.VM, dst *dcn.Host, po PreemptOptions, skip map[int]bool) *dcn.VM {
	sev := alert.ClassifySeverity(vm.Alert)
	if int(sev) < po.MinSeverityGap {
		return nil
	}
	var victim *dcn.VM
	for _, resident := range dst.VMs() {
		if resident.DelaySensitive || resident.ID == vm.ID || skip[resident.ID] {
			continue
		}
		if int(alert.ClassifySeverity(resident.Alert))+po.MinSeverityGap > int(sev) {
			continue
		}
		if dst.Free()+resident.Capacity < vm.Capacity {
			continue
		}
		conflict := false
		for _, other := range dst.VMs() {
			if other != resident && c.Deps.Dependent(vm.ID, other.ID) {
				conflict = true
				break
			}
		}
		if conflict {
			continue
		}
		if victim == nil || resident.Value < victim.Value {
			victim = resident
		}
	}
	return victim
}

func excludeDist(m map[int]map[int]bool, vmID, hostID int) {
	if m[vmID] == nil {
		m[vmID] = make(map[int]bool)
	}
	m[vmID][hostID] = true
}
