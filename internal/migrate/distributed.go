package migrate

import (
	"fmt"
	"sort"

	"sheriff/internal/comm"
	"sheriff/internal/cost"
	"sheriff/internal/dcn"
	"sheriff/internal/matching"
	"sheriff/internal/obs"
)

// DistOptions tunes the message-passing migration protocol. Zero fields
// mean "use the default"; negative values are a Validate error.
type DistOptions struct {
	// MaxRounds bounds the protocol (a round = propose, deliver, decide,
	// deliver, collect). Default 30.
	MaxRounds int
	// RequestTimeout is how many rounds a request may stay unanswered
	// before the source assumes it was lost and retries. Default 3.
	RequestTimeout int
	// RequestPolicy, when non-nil, is consulted by every destination shim
	// before its capacity check — the protocol-wide admission / failure
	// injection point. Destination shims additionally apply their own
	// Params.RequestPolicy.
	RequestPolicy RequestPolicy
	// Recorder, when non-nil, receives request/ack/reject/retry/unplaced
	// events with protocol round numbers.
	Recorder *obs.Recorder
}

// Validate reports whether the options are usable. Negative values are
// errors; zero values mean "use the default".
func (o DistOptions) Validate() error {
	if o.MaxRounds < 0 {
		return fmt.Errorf("migrate: MaxRounds must be >= 0 (0 = default), got %d", o.MaxRounds)
	}
	if o.RequestTimeout < 0 {
		return fmt.Errorf("migrate: RequestTimeout must be >= 0 (0 = default), got %d", o.RequestTimeout)
	}
	return nil
}

func (o DistOptions) withDefaults() DistOptions {
	if o.MaxRounds == 0 {
		o.MaxRounds = 30
	}
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 3
	}
	return o
}

// DistResult summarizes a distributed migration run.
type DistResult struct {
	Migrations  []Migration
	TotalCost   float64
	SearchSpace int
	Rejected    int
	Retransmits int // requests re-sent after a presumed loss
	Rounds      int
	Unplaced    []*dcn.VM
}

// outstanding tracks one in-flight request at its source shim.
type outstanding struct {
	vm   *dcn.VM
	dst  *dcn.Host
	cost float64
	age  int
}

// DistributedVMMigration runs Alg. 3 + Alg. 4 as an actual message
// protocol over the bus: source shims match their candidate VMs against
// their regions and send REQUEST envelopes; destination shims grant
// capacity FCFS in message-arrival order, apply the move themselves, and
// reply ACK or REJECT. Lost messages (the bus may drop or delay them) are
// handled by timeout and retry; a lost ACK is detected by observing that
// the VM already sits at the requested destination.
//
// vmSets[i] holds the VMs shims[i] must relocate. Shims are addressed on
// the bus by rack index.
func DistributedVMMigration(c *dcn.Cluster, m *cost.Model, bus *comm.Bus, shims []*Shim, vmSets [][]*dcn.VM, opts DistOptions) (*DistResult, error) {
	if len(vmSets) != len(shims) {
		return nil, fmt.Errorf("migrate: %d VM sets for %d shims", len(vmSets), len(shims))
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	rec := opts.Recorder
	res := &DistResult{}

	shimByRack := make(map[int]*Shim, len(shims))
	for _, s := range shims {
		shimByRack[s.Rack.Index] = s
	}
	remaining := make([][]*dcn.VM, len(shims))
	for i, set := range vmSets {
		remaining[i] = append([]*dcn.VM(nil), set...)
	}
	// Per-shim excluded (vmID, hostID) pairs after explicit REJECTs.
	excluded := make([]map[int]map[int]bool, len(shims))
	for i := range excluded {
		excluded[i] = make(map[int]map[int]bool)
	}
	pending := make([]map[int]*outstanding, len(shims)) // seq -> request
	for i := range pending {
		pending[i] = make(map[int]*outstanding)
	}
	seq := 0

	for round := 0; round < opts.MaxRounds; round++ {
		res.Rounds = round + 1
		// Phase A: sources with free candidates propose via matching.
		for i, shim := range shims {
			if len(remaining[i]) == 0 {
				continue
			}
			hosts := shim.regionHosts(true)
			if len(hosts) == 0 {
				continue
			}
			costs := make([][]float64, len(remaining[i]))
			feasible := false
			for vi, vm := range remaining[i] {
				costs[vi] = make([]float64, len(hosts))
				for hi, h := range hosts {
					if excluded[i][vm.ID][h.ID] {
						costs[vi][hi] = matching.Forbidden
						continue
					}
					costs[vi][hi] = pairCost(c, m, vm, h)
					if costs[vi][hi] != matching.Forbidden {
						feasible = true
					}
				}
			}
			res.SearchSpace += len(remaining[i]) * len(hosts)
			if !feasible {
				res.Unplaced = append(res.Unplaced, remaining[i]...)
				remaining[i] = nil
				continue
			}
			sol, err := matching.Solve(costs)
			if err != nil {
				return nil, fmt.Errorf("migrate: distributed matching: %w", err)
			}
			var keep []*dcn.VM
			for vi, vm := range remaining[i] {
				hi := sol.Assign[vi]
				if hi < 0 {
					keep = append(keep, vm)
					continue
				}
				dst := hosts[hi]
				seq++
				pending[i][seq] = &outstanding{vm: vm, dst: dst, cost: costs[vi][hi]}
				rec.Record(obs.Event{Kind: obs.KindRequest, Round: res.Rounds,
					Shim: shim.Rack.Index, VM: vm.ID, Host: dst.ID, Value: costs[vi][hi]})
				bus.Send(comm.Message{
					Type: comm.MsgRequest,
					From: shim.Rack.Index,
					To:   dst.Rack().Index,
					VMID: vm.ID, HostID: dst.ID, Seq: seq,
				})
			}
			remaining[i] = keep
		}
		bus.Deliver()

		// Phase B: destinations grant FCFS in arrival order and apply the
		// move themselves (they own the host), then reply.
		for _, shim := range shims {
			for _, msg := range bus.Receive(shim.Rack.Index) {
				if msg.Type != comm.MsgRequest {
					continue
				}
				vm := c.VM(msg.VMID)
				dst := c.Host(msg.HostID)
				reply := comm.MsgReject
				if vm != nil && dst != nil && dst.Rack() == shim.Rack && allowRequest(opts.RequestPolicy, shim, vm, dst) {
					if err := c.Move(vm, dst); err == nil {
						reply = comm.MsgAck
					}
				}
				bus.Send(comm.Message{
					Type: reply,
					From: shim.Rack.Index,
					To:   msg.From,
					VMID: msg.VMID, HostID: msg.HostID, Seq: msg.Seq,
				})
			}
		}
		bus.Deliver()

		// Phase C: sources collect replies and age out lost requests.
		done := true
		for i := range shims {
			for _, msg := range bus.Receive(shims[i].Rack.Index) {
				req := pending[i][msg.Seq]
				if req == nil {
					continue // stale or duplicate reply
				}
				delete(pending[i], msg.Seq)
				switch msg.Type {
				case comm.MsgAck:
					res.Migrations = append(res.Migrations, Migration{
						VM: req.vm, From: nil, To: req.dst, Cost: req.cost,
					})
					res.TotalCost += req.cost
					rec.Record(obs.Event{Kind: obs.KindAck, Round: res.Rounds,
						Shim: shims[i].Rack.Index, VM: req.vm.ID, Host: req.dst.ID, Value: req.cost})
				case comm.MsgReject:
					res.Rejected++
					excludeDist(excluded[i], req.vm.ID, req.dst.ID)
					remaining[i] = append(remaining[i], req.vm)
					rec.Record(obs.Event{Kind: obs.KindReject, Round: res.Rounds,
						Shim: shims[i].Rack.Index, VM: req.vm.ID, Host: req.dst.ID, Value: req.cost})
				}
			}
			// Timeouts: either the request or its reply was lost.
			var expired []int
			for s, req := range pending[i] {
				req.age++
				if req.age >= opts.RequestTimeout {
					expired = append(expired, s)
				}
			}
			sort.Ints(expired)
			for _, s := range expired {
				req := pending[i][s]
				delete(pending[i], s)
				if req.vm.Host() == req.dst {
					// The move happened; only the ACK was lost.
					res.Migrations = append(res.Migrations, Migration{
						VM: req.vm, From: nil, To: req.dst, Cost: req.cost,
					})
					res.TotalCost += req.cost
					if rec.Enabled() {
						rec.Record(obs.Event{Kind: obs.KindAck, Round: res.Rounds,
							Shim: shims[i].Rack.Index, VM: req.vm.ID, Host: req.dst.ID,
							Value: req.cost, Attrs: map[string]string{"cause": "lost-ack"}})
					}
					continue
				}
				res.Retransmits++
				remaining[i] = append(remaining[i], req.vm)
				if rec.Enabled() {
					rec.Record(obs.Event{Kind: obs.KindRetry, Round: res.Rounds,
						Shim: shims[i].Rack.Index, VM: req.vm.ID, Host: req.dst.ID,
						Value: req.cost, Attrs: map[string]string{"cause": "timeout"}})
				}
			}
			if len(remaining[i]) > 0 || len(pending[i]) > 0 {
				done = false
			}
		}
		if done {
			break
		}
	}
	// Whatever is still waiting after MaxRounds is unplaced. Pending maps
	// drain in seq order so the result (and its trace) is deterministic.
	for i := range shims {
		res.Unplaced = append(res.Unplaced, remaining[i]...)
		var waiting []int
		for s := range pending[i] {
			waiting = append(waiting, s)
		}
		sort.Ints(waiting)
		for _, s := range waiting {
			if req := pending[i][s]; req.vm.Host() != req.dst {
				res.Unplaced = append(res.Unplaced, req.vm)
			}
		}
	}
	if rec.Enabled() {
		for _, vm := range res.Unplaced {
			rec.Record(obs.Event{Kind: obs.KindUnplaced, Round: res.Rounds, Shim: ShimUnknown, VM: vm.ID, Host: ShimUnknown})
		}
	}
	return res, nil
}

// allowRequest composes the protocol-wide policy, the destination shim's
// own policy, and the Alg. 4 capacity check.
func allowRequest(protocol RequestPolicy, dstShim *Shim, vm *dcn.VM, dst *dcn.Host) bool {
	if protocol != nil && !protocol(vm, dst) {
		return false
	}
	if p := dstShim.params.RequestPolicy; p != nil && !p(vm, dst) {
		return false
	}
	return Request(vm, dst)
}

func excludeDist(m map[int]map[int]bool, vmID, hostID int) {
	if m[vmID] == nil {
		m[vmID] = make(map[int]bool)
	}
	m[vmID][hostID] = true
}
