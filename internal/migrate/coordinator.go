package migrate

import (
	"fmt"
	"sort"

	"sheriff/internal/alert"
	"sheriff/internal/cost"
	"sheriff/internal/dcn"
	"sheriff/internal/knapsack"
	"sheriff/internal/matching"
	"sheriff/internal/obs"
	"sheriff/internal/pool"
)

// Coordinator runs many shims' management rounds with distributed
// semantics: every shim computes its candidate matching concurrently
// against a consistent snapshot of destination capacity, then commits go
// through the Alg. 4 REQUEST handshake in FCFS order. Shims whose choices
// collide (two regions picking the same slot) are rejected and recompute
// against the updated state — exactly the conflict-avoidance protocol of
// Sec. V.B ("a node can be migrated to another place only when the
// destination's delegation node accepts the migration request").
type Coordinator struct {
	cluster *dcn.Cluster
	model   *cost.Model
	shims   []*Shim
}

// NewCoordinator wraps a set of shims over one cluster.
func NewCoordinator(c *dcn.Cluster, m *cost.Model, shims []*Shim) *Coordinator {
	return &Coordinator{cluster: c, model: m, shims: shims}
}

// RoundReport aggregates one coordinated round.
type RoundReport struct {
	Migrations  []Migration
	TotalCost   float64
	SearchSpace int
	Collisions  int // commits refused because another shim won the slot
	Rounds      int // recompute iterations until quiescence
	Preemptions int // victims evicted by the leftover pass
	Retried     int // fail-queued VMs drained into this round
	Requeued    int // VMs parked in shim fail-queues for a later round
	Unplaced    []*dcn.VM
}

// proposal is one shim's desired placement for one VM.
type proposal struct {
	vm   *dcn.VM
	dst  *dcn.Host
	cost float64
}

// Round runs one coordinated management round: alertsByShim[i] holds the
// alerts collected by shims[i] during the period. Only server alerts
// participate (outer-switch alerts reroute flows and are handled by the
// traffic plane; ToR alerts use the sequential path in ProcessAlerts).
func (co *Coordinator) Round(alertsByShim [][]alert.Alert) (*RoundReport, error) {
	if len(alertsByShim) != len(co.shims) {
		return nil, fmt.Errorf("migrate: %d alert sets for %d shims", len(alertsByShim), len(co.shims))
	}
	report := &RoundReport{}

	// Per-shim migration sets via PRIORITY (reads only, so the shims fan
	// out over the shared worker pool).
	vmSets := make([][]*dcn.VM, len(co.shims))
	pool.Shared().ForEach(len(co.shims), func(i int) {
		shim := co.shims[i]
		var set []*dcn.VM
		seen := map[int]bool{}
		for _, a := range alertsByShim[i] {
			if a.Kind != alert.FromServer {
				continue
			}
			h := co.cluster.Host(a.HostID)
			if h == nil || h.Rack() != shim.Rack {
				continue
			}
			budget := shim.params.Alpha * h.Capacity
			for _, vm := range knapsack.Priority(h.VMs(), knapsack.Alpha, budget) {
				if !seen[vm.ID] {
					seen[vm.ID] = true
					set = append(set, vm)
				}
			}
		}
		vmSets[i] = set
	})

	shimByRack := make(map[int]*Shim, len(co.shims))
	for _, s := range co.shims {
		shimByRack[s.Rack.Index] = s
	}
	pending := vmSets
	// Iterate: propose in parallel, commit FCFS, recompute losers.
	for {
		report.Rounds++
		proposals := make([][]proposal, len(co.shims))
		spaces := make([]int, len(co.shims))
		pool.Shared().ForEach(len(co.shims), func(i int) {
			if len(pending[i]) == 0 {
				return
			}
			proposals[i], spaces[i] = co.shims[i].propose(pending[i])
		})
		for _, sp := range spaces {
			report.SearchSpace += sp
		}

		// Commit FCFS by shim index, then VM ID — a deterministic stand-in
		// for message arrival order. The destination rack's shim (when the
		// coordinator manages it) applies its own RequestPolicy, mirroring
		// the message protocol's destination-side admission.
		var next [][]*dcn.VM = make([][]*dcn.VM, len(co.shims))
		committed := false
		for i := range co.shims {
			src := co.shims[i]
			rec := src.params.Recorder
			for _, p := range proposals[i] {
				rec.Record(obs.Event{Kind: obs.KindRequest, Round: report.Rounds,
					Shim: src.Rack.Index, VM: p.vm.ID, Host: p.dst.ID, Value: p.cost})
				granted := RequestWith(src.policy, p.vm, p.dst)
				if granted {
					if dstShim := shimByRack[p.dst.Rack().Index]; dstShim != nil {
						if pol := dstShim.params.RequestPolicy; pol != nil && !pol(p.vm, p.dst) {
							granted = false
						}
					}
				}
				if granted {
					from := p.vm.Host()
					if err := commitMove(co.cluster, src.policy, p.vm, p.dst); err != nil {
						report.Collisions++
						next[i] = append(next[i], p.vm)
						rec.Record(obs.Event{Kind: obs.KindReject, Round: report.Rounds,
							Shim: src.Rack.Index, VM: p.vm.ID, Host: p.dst.ID, Value: p.cost})
						continue
					}
					report.Migrations = append(report.Migrations, Migration{VM: p.vm, From: from, To: p.dst, Cost: p.cost})
					report.TotalCost += p.cost
					committed = true
					rec.Record(obs.Event{Kind: obs.KindAck, Round: report.Rounds,
						Shim: src.Rack.Index, VM: p.vm.ID, Host: p.dst.ID, Value: p.cost})
				} else {
					report.Collisions++
					next[i] = append(next[i], p.vm)
					rec.Record(obs.Event{Kind: obs.KindReject, Round: report.Rounds,
						Shim: src.Rack.Index, VM: p.vm.ID, Host: p.dst.ID, Value: p.cost})
				}
			}
		}
		if !committed {
			break
		}
		empty := true
		for _, set := range next {
			if len(set) > 0 {
				empty = false
				break
			}
		}
		pending = next
		if empty {
			break
		}
	}
	// Leftover pass: VMs the FCFS protocol never placed were silently
	// dropped before the fail-queue existed. Shims that opted into
	// preemption or retries now hand their leftovers (and any VMs parked
	// in earlier rounds) to the sequential Alg. 3 path, which evicts,
	// places, or parks them; default shims keep the old drop semantics.
	for i, s := range co.shims {
		if s.queue == nil && !s.params.Preempt.Enabled {
			continue
		}
		if len(pending[i]) == 0 && s.QueueLen() == 0 {
			continue
		}
		res, err := Migrate(co.cluster, co.model, pending[i], s.regionHosts(true), s.migrationOptions())
		if err != nil {
			return report, err
		}
		report.Migrations = append(report.Migrations, res.Migrations...)
		report.TotalCost += res.TotalCost
		report.SearchSpace += res.SearchSpace
		report.Preemptions += res.Preemptions
		report.Retried += res.Retried
		report.Requeued += res.Requeued
		report.Unplaced = append(report.Unplaced, res.Unplaced...)
	}
	return report, nil
}

// propose computes the shim's minimum-weight matching for its VM set
// against its region, without mutating anything. It returns the proposals
// (VM → destination with cost) and the examined pair count.
func (s *Shim) propose(vms []*dcn.VM) ([]proposal, int) {
	hosts := s.regionHosts(true)
	if len(hosts) == 0 || len(vms) == 0 {
		return nil, 0
	}
	costs := make([][]float64, len(vms))
	bases := make([][]float64, len(vms))
	for i, vm := range vms {
		costs[i] = make([]float64, len(hosts))
		bases[i] = make([]float64, len(hosts))
		for j, h := range hosts {
			costs[i][j], bases[i][j] = pairCost(s.cluster, s.model, vm, h, s.policy)
		}
	}
	sol, err := matching.Solve(costs)
	if err != nil {
		return nil, len(vms) * len(hosts)
	}
	var out []proposal
	for i, vm := range vms {
		if j := sol.Assign[i]; j >= 0 {
			out = append(out, proposal{vm: vm, dst: hosts[j], cost: bases[i][j]})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].vm.ID < out[b].vm.ID })
	return out, len(vms) * len(hosts)
}
