package migrate

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"sheriff/internal/comm"
	"sheriff/internal/dcn"
	"sheriff/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace files")

// goldenSeed is the pinned bus seed of the golden run (overridable via
// SHERIFF_GOLDEN_SEED for scenario exploration only — the checked-in
// golden file corresponds to the default).
func goldenSeed() int64 {
	if s := os.Getenv("SHERIFF_GOLDEN_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err == nil {
			return v
		}
	}
	return 11
}

// TestDistributedTraceGolden pins the exact JSONL event sequence of a
// seeded two-shim DistributedVMMigration run — bus send/drop/deliver
// interleaved with protocol request/ack/reject/retry/unplaced — so any
// change to protocol ordering, event taxonomy, or serialization shows up
// as a golden diff. Regenerate with: go test ./internal/migrate/ -run
// TestDistributedTraceGolden -update
func TestDistributedTraceGolden(t *testing.T) {
	rec, err := obs.New(obs.Options{})
	if err != nil {
		t.Fatal(err)
	}

	fx := newFixture(t, 4, 2)
	shims := []*Shim{}
	for _, r := range fx.cluster.Racks[:2] {
		s, err := NewShim(fx.cluster, fx.model, r, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		shims = append(shims, s)
	}
	// Racks 0 and 1 share pod 0, so each shim's region is both racks'
	// hosts. VM a is blocked by the protocol-wide RequestPolicy: every
	// destination answers its capacity-feasible REQUESTs with REJECT until
	// a's exclusion set makes its matching infeasible and it drains as
	// unplaced. VMs a2 and b place normally (ACKs).
	a, err := fx.cluster.AddVM(fx.cluster.Racks[0].Hosts[0], 30, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := fx.cluster.AddVM(fx.cluster.Racks[0].Hosts[0], 30, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fx.cluster.AddVM(fx.cluster.Racks[1].Hosts[0], 30, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	sets := [][]*dcn.VM{{a, a2}, {b}}

	// A lossy bus (seed-deterministic drops) exercises the timeout/retry
	// path; both the bus and the protocol share the recorder so the trace
	// interleaves wire movement with protocol decisions. The seed is
	// chosen so the run also crosses a message drop and a retry.
	bus, err := comm.NewBus(comm.Options{LossRate: 0.25, Seed: goldenSeed(), Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	opts := DistOptions{
		Recorder:      rec,
		RequestPolicy: func(vm *dcn.VM, dst *dcn.Host) bool { return vm != a },
	}
	if _, err := DistributedVMMigration(fx.cluster, fx.model, bus, shims, sets, opts); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	kinds := map[obs.Kind]bool{}
	for _, e := range rec.Events() {
		kinds[e.Kind] = true
		line, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	// The scenario must actually exercise the interesting paths before the
	// byte comparison means anything.
	for _, k := range []obs.Kind{obs.KindRequest, obs.KindAck, obs.KindReject, obs.KindRetry,
		obs.KindUnplaced, obs.KindSend, obs.KindDrop, obs.KindDeliver} {
		if !kinds[k] {
			t.Fatalf("trace has no %q event; kinds seen: %v", k, kinds)
		}
	}

	path := filepath.Join("testdata", "dist_trace.golden.jsonl")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d events)", path, rec.Seq())
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		got := buf.Bytes()
		line := 1
		for i := 0; i < len(got) && i < len(want); i++ {
			if got[i] != want[i] {
				break
			}
			if got[i] == '\n' {
				line++
			}
		}
		t.Fatalf("trace diverges from golden at line %d\ngot %d bytes, want %d\nregenerate with -update if the change is intended",
			line, len(got), len(want))
	}
}
