package migrate

import (
	"fmt"
	"sync"

	"sheriff/internal/dcn"
)

// PreemptOptions enables preemption-aware migration: when a candidate VM
// cannot be placed anywhere in the region, the migration may evict a
// resident VM to make room, provided the incoming VM's alert severity
// tier strictly dominates the victim's (SNIPPETS' rapid-response tiers:
// watch < urgent < critical). Victims are chosen by the knapsack value
// model — lowest Value first, the same "cheapest to move" preference
// Alg. 2 uses — and re-enter placement themselves, through the retry
// queue when one is attached.
//
// Zero numeric fields mean "use the default"; negative values are a
// Validate error. The zero struct disables preemption.
type PreemptOptions struct {
	// Enabled turns preemption on.
	Enabled bool
	// MaxEvictions caps the victims evicted per migration invocation, the
	// termination bound of the preemption loop (0 = default 8).
	MaxEvictions int
	// MinSeverityGap is how many severity tiers the incoming VM must sit
	// above the victim (0 = default 1: any strictly lower tier is fair
	// game; 2 means e.g. only critical may evict watch).
	MinSeverityGap int
}

// DefaultPreemptOptions returns the defaults (disabled; 8 evictions max;
// gap 1).
func DefaultPreemptOptions() PreemptOptions {
	return PreemptOptions{MaxEvictions: 8, MinSeverityGap: 1}
}

// Validate reports whether the options are usable. Zero numeric fields
// are accepted (they mean "use the default"); negative values are errors.
func (o PreemptOptions) Validate() error {
	if o.MaxEvictions < 0 {
		return fmt.Errorf("migrate: MaxEvictions must be >= 0 (0 = default), got %d", o.MaxEvictions)
	}
	if o.MinSeverityGap < 0 {
		return fmt.Errorf("migrate: MinSeverityGap must be >= 0 (0 = default), got %d", o.MinSeverityGap)
	}
	return nil
}

// WithDefaults returns o with zero numeric fields replaced by defaults.
func (o PreemptOptions) WithDefaults() PreemptOptions {
	d := DefaultPreemptOptions()
	if o.MaxEvictions == 0 {
		o.MaxEvictions = d.MaxEvictions
	}
	if o.MinSeverityGap == 0 {
		o.MinSeverityGap = d.MinSeverityGap
	}
	return o
}

// RetryOptions configures the migration fail-queue: VMs no destination
// would accept are parked and retried in later management rounds instead
// of being abandoned (or, in the distributed protocol, degraded to the
// fallback ladder immediately).
//
// Zero numeric fields mean "use the default"; negative values are a
// Validate error. The zero struct disables the queue.
type RetryOptions struct {
	// Enabled turns the fail-queue on.
	Enabled bool
	// MaxAttempts bounds how many rounds a VM may be requeued before it is
	// finally reported unplaced (0 = default 3). Evicted VMs are exempt:
	// a detached VM is never dropped from the queue.
	MaxAttempts int
}

// DefaultRetryOptions returns the defaults (disabled; 3 attempts).
func DefaultRetryOptions() RetryOptions {
	return RetryOptions{MaxAttempts: 3}
}

// Validate reports whether the options are usable. Zero numeric fields
// are accepted (they mean "use the default"); negative values are errors.
func (o RetryOptions) Validate() error {
	if o.MaxAttempts < 0 {
		return fmt.Errorf("migrate: MaxAttempts must be >= 0 (0 = default), got %d", o.MaxAttempts)
	}
	return nil
}

// WithDefaults returns o with zero numeric fields replaced by defaults.
func (o RetryOptions) WithDefaults() RetryOptions {
	if o.MaxAttempts == 0 {
		o.MaxAttempts = DefaultRetryOptions().MaxAttempts
	}
	return o
}

// RetryEntry is one parked VM awaiting a later migration round.
type RetryEntry struct {
	VM *dcn.VM
	// Shim is the rack index of the shim that parked the VM (ShimUnknown
	// when unattributed); the coordinator and distributed rounds use it to
	// route the retry back to the owning shim.
	Shim int
	// Attempts counts placement attempts so far (≥ 1 once parked).
	Attempts int
	// Evicted marks a preemption victim: it is detached (Host() == nil)
	// and exempt from the MaxAttempts budget.
	Evicted bool
}

// RetryQueue is the migration fail-queue. It is safe for concurrent use;
// ordering is FIFO so starvation is bounded by queue length.
type RetryQueue struct {
	mu      sync.Mutex
	opts    RetryOptions
	entries []RetryEntry
}

// NewRetryQueue builds a queue. The Enabled flag is implied — holding a
// queue is opting in; options only tune the attempt budget.
func NewRetryQueue(o RetryOptions) (*RetryQueue, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	return &RetryQueue{opts: o.WithDefaults()}, nil
}

// Len returns the number of parked VMs.
func (q *RetryQueue) Len() int {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.entries)
}

// TakeAll drains the queue, returning the parked entries in FIFO order.
func (q *RetryQueue) TakeAll() []RetryEntry {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	out := q.entries
	q.entries = nil
	return out
}

// Put parks an entry for a later round and reports whether it was
// accepted: entries past the attempt budget are refused (the caller
// reports the VM unplaced), except evicted VMs, which are always kept —
// a detached VM must not be silently dropped.
func (q *RetryQueue) Put(e RetryEntry) bool {
	if q == nil {
		return false
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if !e.Evicted && e.Attempts >= q.opts.MaxAttempts {
		return false
	}
	q.entries = append(q.entries, e)
	return true
}

// MaxAttempts returns the queue's attempt budget.
func (q *RetryQueue) MaxAttempts() int {
	if q == nil {
		return 0
	}
	return q.opts.MaxAttempts
}
