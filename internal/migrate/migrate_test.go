package migrate

import (
	"errors"
	"testing"

	"sheriff/internal/alert"
	"sheriff/internal/cost"
	"sheriff/internal/dcn"
	"sheriff/internal/topology"
)

type fixture struct {
	cluster *dcn.Cluster
	model   *cost.Model
}

func newFixture(t *testing.T, pods, hostsPerRack int) *fixture {
	t.Helper()
	ft, err := topology.NewFatTree(topology.FatTreeConfig{Pods: pods})
	if err != nil {
		t.Fatal(err)
	}
	c, err := dcn.NewCluster(ft.Graph, dcn.Config{HostsPerRack: hostsPerRack, HostCapacity: 100, ToRCapacity: 100 * float64(hostsPerRack)})
	if err != nil {
		t.Fatal(err)
	}
	m, err := cost.New(c, cost.PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{cluster: c, model: m}
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	// Zero fields now mean "use the default" and must validate.
	if err := (Params{}).Validate(); err != nil {
		t.Fatalf("zero params invalid: %v", err)
	}
	bad := []Params{
		{Alpha: -0.1, Beta: 0.2, NeighborSwitchHops: 1},
		{Alpha: 0.2, Beta: 1.5, NeighborSwitchHops: 1},
		{Alpha: 0.2, Beta: 0.2, NeighborSwitchHops: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
	def := (Params{}).WithDefaults()
	if def.Alpha != DefaultParams().Alpha || def.NeighborSwitchHops != DefaultParams().NeighborSwitchHops {
		t.Fatalf("WithDefaults() = %+v, want DefaultParams()", def)
	}
}

func TestNewShimNeighbors(t *testing.T) {
	fx := newFixture(t, 4, 2)
	s, err := NewShim(fx.cluster, fx.model, fx.cluster.Racks[0], DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Fat-Tree(4): one-hop region of a ToR = the other ToR in its pod.
	nb := s.NeighborRacks()
	if len(nb) != 1 || nb[0].Index != 1 {
		t.Fatalf("neighbors = %v", rackIndices(nb))
	}
}

func rackIndices(rs []*dcn.Rack) []int {
	out := make([]int, len(rs))
	for i, r := range rs {
		out[i] = r.Index
	}
	return out
}

func TestRequest(t *testing.T) {
	fx := newFixture(t, 4, 2)
	h := fx.cluster.Hosts()[0]
	vm, err := fx.cluster.AddVM(fx.cluster.Hosts()[1], 60, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if !Request(vm, h) {
		t.Fatal("empty host should ACK")
	}
	if _, err := fx.cluster.AddVM(h, 50, 1, false); err != nil {
		t.Fatal(err)
	}
	if Request(vm, h) {
		t.Fatal("full host should REJECT")
	}
}

func TestVMMigrationMovesOverloadedVM(t *testing.T) {
	fx := newFixture(t, 4, 2)
	src := fx.cluster.Racks[0].Hosts[0]
	vm, err := fx.cluster.AddVM(src, 80, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	dst := fx.cluster.Racks[1].Hosts[0]
	res, err := VMMigration(fx.cluster, fx.model, []*dcn.VM{vm}, []*dcn.Host{dst})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Migrations) != 1 {
		t.Fatalf("migrations = %d, want 1", len(res.Migrations))
	}
	if vm.Host() != dst {
		t.Fatal("VM did not move")
	}
	if res.TotalCost <= 0 {
		t.Fatalf("cost = %v, want > 0", res.TotalCost)
	}
	if res.SearchSpace != 1 {
		t.Fatalf("search space = %d, want 1", res.SearchSpace)
	}
}

func TestVMMigrationPrefersCheaperDestination(t *testing.T) {
	fx := newFixture(t, 4, 2)
	vm, err := fx.cluster.AddVM(fx.cluster.Racks[0].Hosts[0], 50, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	samePod := fx.cluster.Racks[1].Hosts[0]
	crossPod := fx.cluster.Racks[7].Hosts[0]
	res, err := VMMigration(fx.cluster, fx.model, []*dcn.VM{vm}, []*dcn.Host{crossPod, samePod})
	if err != nil {
		t.Fatal(err)
	}
	if vm.Host() != samePod {
		t.Fatalf("VM went to %v, want same-pod host", vm.Host().ID)
	}
	if len(res.Migrations) != 1 || res.Migrations[0].To != samePod {
		t.Fatal("migration record wrong")
	}
}

func TestVMMigrationRespectsCapacity(t *testing.T) {
	fx := newFixture(t, 4, 2)
	vm, err := fx.cluster.AddVM(fx.cluster.Racks[0].Hosts[0], 80, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	dst := fx.cluster.Racks[1].Hosts[0]
	if _, err := fx.cluster.AddVM(dst, 50, 1, false); err != nil {
		t.Fatal(err)
	}
	res, err := VMMigration(fx.cluster, fx.model, []*dcn.VM{vm}, []*dcn.Host{dst})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Migrations) != 0 || len(res.Unplaced) != 1 {
		t.Fatalf("migrations=%d unplaced=%d", len(res.Migrations), len(res.Unplaced))
	}
	if vm.Host() != fx.cluster.Racks[0].Hosts[0] {
		t.Fatal("VM should not have moved")
	}
}

func TestVMMigrationAvoidsDependencyConflicts(t *testing.T) {
	fx := newFixture(t, 4, 2)
	vm, err := fx.cluster.AddVM(fx.cluster.Racks[0].Hosts[0], 30, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	dst := fx.cluster.Racks[1].Hosts[0]
	peer, err := fx.cluster.AddVM(dst, 10, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	fx.cluster.Deps.AddDependency(vm.ID, peer.ID)
	other := fx.cluster.Racks[1].Hosts[1]
	res, err := VMMigration(fx.cluster, fx.model, []*dcn.VM{vm}, []*dcn.Host{dst, other})
	if err != nil {
		t.Fatal(err)
	}
	if vm.Host() != other {
		t.Fatalf("VM should avoid the conflicting host; went to %d", vm.Host().ID)
	}
	if len(res.Migrations) != 1 {
		t.Fatal("expected one migration")
	}
}

func TestVMMigrationTwoVMsOneSlotEach(t *testing.T) {
	fx := newFixture(t, 4, 2)
	a, err := fx.cluster.AddVM(fx.cluster.Racks[0].Hosts[0], 60, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fx.cluster.AddVM(fx.cluster.Racks[0].Hosts[1], 60, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	// Two destinations, each able to hold only one 60-cap VM.
	d1 := fx.cluster.Racks[1].Hosts[0]
	d2 := fx.cluster.Racks[1].Hosts[1]
	res, err := VMMigration(fx.cluster, fx.model, []*dcn.VM{a, b}, []*dcn.Host{d1, d2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Migrations) != 2 {
		t.Fatalf("migrations = %d, want 2", len(res.Migrations))
	}
	if a.Host() == b.Host() {
		t.Fatal("both VMs landed on the same host")
	}
}

func TestVMMigrationNoCandidates(t *testing.T) {
	fx := newFixture(t, 4, 2)
	vm, err := fx.cluster.AddVM(fx.cluster.Racks[0].Hosts[0], 10, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VMMigration(fx.cluster, fx.model, []*dcn.VM{vm}, nil); !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("want ErrNoCandidates, got %v", err)
	}
}

func TestProcessAlertsServerAlert(t *testing.T) {
	fx := newFixture(t, 4, 2)
	rack := fx.cluster.Racks[0]
	h := rack.Hosts[0]
	// Overload the host with several small VMs.
	var last *dcn.VM
	for i := 0; i < 4; i++ {
		vm, err := fx.cluster.AddVM(h, 20, float64(i+1), false)
		if err != nil {
			t.Fatal(err)
		}
		last = vm
	}
	_ = last
	s, err := NewShim(fx.cluster, fx.model, rack, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.ProcessAlerts([]alert.Alert{{
		Kind: alert.FromServer, HostID: h.ID, RackIndex: rack.Index, Value: 0.95,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Migrations) == 0 {
		t.Fatal("server alert should trigger at least one migration")
	}
	// α = 0.2, host capacity 100 → budget 20 → one 20-cap VM moves.
	if h.Used() >= 80 {
		t.Fatalf("host still loaded at %v", h.Used())
	}
	if rep.TotalCost <= 0 || rep.SearchSpace <= 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestProcessAlertsToRAlert(t *testing.T) {
	fx := newFixture(t, 4, 2)
	rack := fx.cluster.Racks[0]
	for _, h := range rack.Hosts {
		for i := 0; i < 3; i++ {
			if _, err := fx.cluster.AddVM(h, 15, 1, false); err != nil {
				t.Fatal(err)
			}
		}
	}
	before := rack.Used()
	s, err := NewShim(fx.cluster, fx.model, rack, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.ProcessAlerts([]alert.Alert{{Kind: alert.FromLocalToR, RackIndex: rack.Index, Value: 0.92}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Migrations) == 0 {
		t.Fatal("ToR alert should migrate VMs out of the rack")
	}
	if rack.Used() >= before {
		t.Fatalf("rack load did not drop: %v -> %v", before, rack.Used())
	}
	// ToR-alerted VMs must leave the rack entirely.
	for _, m := range rep.Migrations {
		if m.To.Rack() == rack {
			t.Fatal("ToR-relief migration stayed inside the rack")
		}
	}
}

func TestProcessAlertsOuterSwitchReroutesOnly(t *testing.T) {
	fx := newFixture(t, 4, 2)
	rack := fx.cluster.Racks[0]
	vm, err := fx.cluster.AddVM(rack.Hosts[0], 10, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	vm.Alert = 0.95
	s, err := NewShim(fx.cluster, fx.model, rack, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	swID := fx.cluster.Graph.Switches()[0]
	rep, err := s.ProcessAlerts([]alert.Alert{{Kind: alert.FromOuterSwitch, SwitchID: swID, Value: 0.95}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Migrations) != 0 {
		t.Fatal("outer-switch alert must not migrate")
	}
	if len(rep.Rerouted) != 1 || rep.Rerouted[0] != vm {
		t.Fatalf("rerouted = %v", rep.Rerouted)
	}
}

func TestProcessAlertsEmptySet(t *testing.T) {
	fx := newFixture(t, 4, 2)
	s, err := NewShim(fx.cluster, fx.model, fx.cluster.Racks[0], DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.ProcessAlerts(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Migrations) != 0 || rep.TotalCost != 0 {
		t.Fatalf("empty alert set produced %+v", rep)
	}
}

func TestProcessAlertsIgnoresForeignHost(t *testing.T) {
	fx := newFixture(t, 4, 2)
	other := fx.cluster.Racks[2].Hosts[0]
	if _, err := fx.cluster.AddVM(other, 50, 1, false); err != nil {
		t.Fatal(err)
	}
	s, err := NewShim(fx.cluster, fx.model, fx.cluster.Racks[0], DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.ProcessAlerts([]alert.Alert{{Kind: alert.FromServer, HostID: other.ID}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Migrations) != 0 {
		t.Fatal("shim migrated a VM outside its rack")
	}
}

func TestVMMigrationDelaySensitiveExcludedUpstream(t *testing.T) {
	// PRIORITY (not VMMIGRATION) excludes delay-sensitive VMs; confirm the
	// shim pipeline as a whole never moves one.
	fx := newFixture(t, 4, 2)
	rack := fx.cluster.Racks[0]
	h := rack.Hosts[0]
	ds, err := fx.cluster.AddVM(h, 30, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fx.cluster.AddVM(h, 30, 2, false); err != nil {
		t.Fatal(err)
	}
	s, err := NewShim(fx.cluster, fx.model, rack, Params{Alpha: 0.4, Beta: 0.4, NeighborSwitchHops: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.ProcessAlerts([]alert.Alert{{Kind: alert.FromServer, HostID: h.ID}})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range rep.Migrations {
		if m.VM == ds {
			t.Fatal("delay-sensitive VM was migrated")
		}
	}
	if ds.Host() != h {
		t.Fatal("delay-sensitive VM moved")
	}
}
