package predictor

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sync"

	"sheriff/internal/timeseries"
)

// BurstConfig tunes the burst/change-point forecaster. Zero values mean
// defaults; the detection scales (Lambda, Delta) are resolved against the
// training series at fit time, so the same relative config works on
// normalized workloads and raw traffic alike.
type BurstConfig struct {
	// Lambda is the Page–Hinkley detection threshold, in units of the
	// training series' one-step-difference standard deviation (default 6).
	Lambda float64
	// Delta is the Page–Hinkley drift tolerance in the same units
	// (default 0.5): residual drifts smaller than this never accumulate.
	Delta float64
	// Hold is how many steps the forecaster stays in the fast-adapting
	// regime after a trigger before relaxing back (default 30).
	Hold int
	// SlowAlpha/SlowBeta are the steady-state Holt constants
	// (default 0.30/0.10); FastAlpha/FastBeta apply during the Hold window
	// after a change point (default 0.80/0.50).
	SlowAlpha, SlowBeta float64
	FastAlpha, FastBeta float64
}

// WithDefaults returns the configuration with zero fields replaced by
// their defaults.
func (c BurstConfig) WithDefaults() BurstConfig {
	if c.Lambda == 0 {
		c.Lambda = 6
	}
	if c.Delta == 0 {
		c.Delta = 0.5
	}
	if c.Hold == 0 {
		c.Hold = 30
	}
	if c.SlowAlpha == 0 {
		c.SlowAlpha = 0.30
	}
	if c.SlowBeta == 0 {
		c.SlowBeta = 0.10
	}
	if c.FastAlpha == 0 {
		c.FastAlpha = 0.80
	}
	if c.FastBeta == 0 {
		c.FastBeta = 0.50
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c BurstConfig) Validate() error {
	if c.Lambda < 0 || c.Delta < 0 {
		return fmt.Errorf("predictor: burst Lambda/Delta must be >= 0, got %v/%v", c.Lambda, c.Delta)
	}
	if c.Hold < 0 {
		return fmt.Errorf("predictor: burst Hold must be >= 0, got %d", c.Hold)
	}
	for _, a := range []struct {
		name string
		v    float64
	}{
		{"SlowAlpha", c.SlowAlpha}, {"SlowBeta", c.SlowBeta},
		{"FastAlpha", c.FastAlpha}, {"FastBeta", c.FastBeta},
	} {
		if a.v < 0 || a.v >= 1 {
			return fmt.Errorf("predictor: burst %s must be in [0, 1) (0 = default), got %v", a.name, a.v)
		}
	}
	return nil
}

// Burst is the change-point forecaster: a two-sided Page–Hinkley test on
// the one-step Holt residuals detects regime shifts (training-job waves,
// flash crowds, rack bursts) and gates the Holt constants from a slow
// steady-state pair to a fast-adapting pair for a Hold window, re-anchoring
// the level on the triggering observation. Between changes it behaves like
// conservative Holt (so it loses the diurnal selection to ARIMA); at a
// burst onset it re-converges within a few samples, which is where it wins
// the sliding-window MSE.
//
// The detection recursion is deterministic in (resolved config, history),
// so serialization carries only the config: a restored model replays the
// history cold and continues bit-identically.
type Burst struct {
	cfg    BurstConfig // resolved: Lambda/Delta are absolute here
	minLen int

	mu sync.Mutex
	st *burstState
}

// burstState is the O(1)-per-observation context cached between
// ForecastFrom calls on the same append-only history, mirroring the
// smoothing package's suffix-aware fast path: appending k observations
// costs O(k), mutated histories trigger a cold re-fold.
type burstState struct {
	src  *timeseries.Series
	n    int     // observations folded into the state
	last float64 // src.At(n-1), to detect non-append mutation

	level, trend float64
	prevX        float64

	// Page–Hinkley accumulators over the residual stream since the last
	// trigger (or the fold start): running mean plus the one-sided
	// cumulative deviations and their extrema.
	count          int
	meanSum        float64
	mUp, mUpMin    float64
	mDn, mDnMax    float64
	fastLeft       int // steps remaining in the fast-adapting regime
	lastTrigger    int // absolute step of the last trigger (-1 = none)
	triggerCounter int // total triggers folded (for diagnostics)
}

// FitBurst resolves the burst config against the training series: the
// relative Lambda/Delta scales become absolute thresholds via the standard
// deviation of the training one-step differences. The training data is not
// otherwise memorized — the model folds whatever history ForecastFrom is
// handed.
func FitBurst(train *timeseries.Series, cfg BurstConfig) (*Burst, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if train.Len() < 4 {
		return nil, fmt.Errorf("predictor: burst fit needs >= 4 points, got %d", train.Len())
	}
	cfg = cfg.WithDefaults()
	diff := make([]float64, train.Len()-1)
	for t := 1; t < train.Len(); t++ {
		diff[t-1] = train.At(t) - train.At(t-1)
	}
	scale := timeseries.New(diff).Std()
	// Near-noiseless training data (e.g. a pure ramp) would collapse the
	// thresholds to zero and fire on numerical dust; floor the scale at a
	// percent of the train's own spread.
	if floor := 0.01 * train.Std(); scale < floor {
		scale = floor
	}
	if scale <= 0 || math.IsNaN(scale) {
		scale = 1e-9 // constant series: any deviation is a change
	}
	cfg.Lambda *= scale
	cfg.Delta *= scale
	return &Burst{cfg: cfg, minLen: 2}, nil
}

// ForecastFrom folds the history through the gated Holt recursion and
// extrapolates h steps from the current level and trend — the
// predictor-pool contract. Append-only growth since the previous call is
// folded incrementally.
func (b *Burst) ForecastFrom(history *timeseries.Series, h int) ([]float64, error) {
	if h <= 0 {
		return nil, errors.New("predictor: burst forecast horizon must be positive")
	}
	if history.Len() < b.minLen {
		return nil, fmt.Errorf("predictor: burst history length %d too short (need >= %d)", history.Len(), b.minLen)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.st
	if st == nil || st.src != history || st.n > history.Len() || st.n < 2 ||
		history.At(st.n-1) != st.last {
		st = &burstState{
			src:         history,
			level:       history.At(1),
			trend:       history.At(1) - history.At(0),
			prevX:       history.At(1),
			n:           2,
			lastTrigger: -1,
		}
		st.last = history.At(1)
		b.st = st
	}
	for t := st.n; t < history.Len(); t++ {
		b.fold(st, t, history.At(t))
	}
	st.n = history.Len()
	st.last = history.At(st.n - 1)

	out := make([]float64, h)
	for i := range out {
		out[i] = st.level + float64(i+1)*st.trend
	}
	return out, nil
}

// fold advances the state by one observation: residual → Page–Hinkley →
// (possibly) trigger and re-anchor → gated Holt update.
func (b *Burst) fold(st *burstState, t int, x float64) {
	cfg := b.cfg
	resid := x - (st.level + st.trend)

	st.count++
	st.meanSum += resid
	mean := st.meanSum / float64(st.count)
	dev := resid - mean
	st.mUp += dev - cfg.Delta
	if st.mUp < st.mUpMin {
		st.mUpMin = st.mUp
	}
	st.mDn += dev + cfg.Delta
	if st.mDn > st.mDnMax {
		st.mDnMax = st.mDn
	}
	if st.mUp-st.mUpMin > cfg.Lambda || st.mDnMax-st.mDn > cfg.Lambda {
		// Change point: re-anchor on the triggering observation with the
		// local slope, reset the detector, and open the fast window.
		st.level = x
		st.trend = x - st.prevX
		st.count, st.meanSum = 0, 0
		st.mUp, st.mUpMin, st.mDn, st.mDnMax = 0, 0, 0, 0
		st.fastLeft = cfg.Hold
		st.lastTrigger = t
		st.triggerCounter++
		st.prevX = x
		return
	}

	alpha, beta := cfg.SlowAlpha, cfg.SlowBeta
	if st.fastLeft > 0 {
		alpha, beta = cfg.FastAlpha, cfg.FastBeta
		st.fastLeft--
	}
	prevLevel := st.level
	st.level = alpha*x + (1-alpha)*(st.level+st.trend)
	st.trend = beta*(st.level-prevLevel) + (1-beta)*st.trend
	st.prevX = x
}

// Triggers reports how many change points the model has folded so far
// (diagnostic; resets with a cold re-fold).
func (b *Burst) Triggers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.st == nil {
		return 0
	}
	return b.st.triggerCounter
}

// burstJSON is the serialized form: the resolved (absolute-scale) config.
// The fold recursion is deterministic in (config, history) and the
// Selector serializes the shared history, so a restored model cold-folds
// back to the identical state.
type burstJSON struct {
	Lambda    float64 `json:"lambda"`
	Delta     float64 `json:"delta"`
	Hold      int     `json:"hold"`
	SlowAlpha float64 `json:"slow_alpha"`
	SlowBeta  float64 `json:"slow_beta"`
	FastAlpha float64 `json:"fast_alpha"`
	FastBeta  float64 `json:"fast_beta"`
}

// MarshalJSON serializes the resolved config (see burstJSON).
func (b *Burst) MarshalJSON() ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return json.Marshal(burstJSON{
		Lambda: b.cfg.Lambda, Delta: b.cfg.Delta, Hold: b.cfg.Hold,
		SlowAlpha: b.cfg.SlowAlpha, SlowBeta: b.cfg.SlowBeta,
		FastAlpha: b.cfg.FastAlpha, FastBeta: b.cfg.FastBeta,
	})
}

// UnmarshalJSON restores a model serialized by MarshalJSON.
func (b *Burst) UnmarshalJSON(data []byte) error {
	var dto burstJSON
	if err := json.Unmarshal(data, &dto); err != nil {
		return fmt.Errorf("predictor: unmarshal burst: %w", err)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.cfg = BurstConfig{
		Lambda: dto.Lambda, Delta: dto.Delta, Hold: dto.Hold,
		SlowAlpha: dto.SlowAlpha, SlowBeta: dto.SlowBeta,
		FastAlpha: dto.FastAlpha, FastBeta: dto.FastBeta,
	}.WithDefaults()
	b.minLen = 2
	b.st = nil
	return nil
}
