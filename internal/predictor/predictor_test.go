package predictor

import (
	"math"
	"math/rand"
	"testing"

	"sheriff/internal/arima"
	"sheriff/internal/narnet"
	"sheriff/internal/timeseries"
)

// constantForecaster always predicts the same value.
type constantForecaster struct{ v float64 }

func (c constantForecaster) ForecastFrom(_ *timeseries.Series, h int) ([]float64, error) {
	out := make([]float64, h)
	for i := range out {
		out[i] = c.v
	}
	return out, nil
}

// failingForecaster always errors.
type failingForecaster struct{}

func (failingForecaster) ForecastFrom(*timeseries.Series, int) ([]float64, error) {
	return nil, errEveryTime
}

var errEveryTime = &forecastErr{}

type forecastErr struct{}

func (*forecastErr) Error() string { return "cannot forecast" }

func TestNewSelectorValidation(t *testing.T) {
	h := timeseries.New([]float64{1, 2, 3})
	if _, err := NewSelector(h, Config{}); err == nil {
		t.Error("empty pool accepted")
	}
	if _, err := NewSelector(h, Config{}, &Candidate{Name: "nil"}); err == nil {
		t.Error("nil forecaster accepted")
	}
}

func TestSelectorPicksLowerMSECandidate(t *testing.T) {
	h := timeseries.New([]float64{5, 5, 5})
	good := NewCandidate("good", constantForecaster{5})
	bad := NewCandidate("bad", constantForecaster{100})
	sel, err := NewSelector(h, Config{Window: 5}, bad, good) // bad listed first
	if err != nil {
		t.Fatal(err)
	}
	// First prediction: no errors observed, tie broken by order -> "bad".
	p, err := sel.Predict()
	if err != nil {
		t.Fatal(err)
	}
	if p != 100 || sel.Selection() != "bad" {
		t.Fatalf("first pick = %v (%s), want bad's 100", p, sel.Selection())
	}
	sel.Observe(5)
	// Now bad has error 95², good has error 0 -> good must win.
	p, err = sel.Predict()
	if err != nil {
		t.Fatal(err)
	}
	if p != 5 || sel.Selection() != "good" {
		t.Fatalf("second pick = %v (%s), want good's 5", p, sel.Selection())
	}
}

func TestSelectorSkipsFailingCandidate(t *testing.T) {
	h := timeseries.New([]float64{1, 2, 3})
	sel, err := NewSelector(h, Config{},
		NewCandidate("fail", failingForecaster{}),
		NewCandidate("ok", constantForecaster{7}))
	if err != nil {
		t.Fatal(err)
	}
	p, err := sel.Predict()
	if err != nil {
		t.Fatal(err)
	}
	if p != 7 {
		t.Fatalf("Predict = %v, want 7", p)
	}
}

func TestSelectorAllFail(t *testing.T) {
	h := timeseries.New([]float64{1})
	sel, err := NewSelector(h, Config{}, NewCandidate("f", failingForecaster{}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sel.Predict(); err == nil {
		t.Fatal("expected error when all candidates fail")
	}
}

func TestObserveExtendsHistory(t *testing.T) {
	h := timeseries.New([]float64{1, 2})
	sel, _ := NewSelector(h, Config{}, NewCandidate("c", constantForecaster{0}))
	sel.Observe(3)
	got := sel.History()
	if got.Len() != 3 || got.Last() != 3 {
		t.Fatalf("history = %v", got.Values())
	}
}

func TestRunWinShares(t *testing.T) {
	h := timeseries.New([]float64{5, 5, 5})
	sel, _ := NewSelector(h, Config{Window: 3},
		NewCandidate("a", constantForecaster{5}),
		NewCandidate("b", constantForecaster{50}))
	test := timeseries.New([]float64{5, 5, 5, 5, 5, 5})
	pred, shares, err := sel.Run(test)
	if err != nil {
		t.Fatal(err)
	}
	if len(pred) != 6 {
		t.Fatalf("pred len = %d", len(pred))
	}
	// "a" should win everything after the first (tie-broken) step.
	if shares["a"] < 0.8 {
		t.Fatalf("winShare[a] = %v, want >= 0.8", shares["a"])
	}
	total := 0.0
	for _, v := range shares {
		total += v
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("win shares sum to %v, want 1", total)
	}
}

// hybridSeries is linear AR(1) in its first half and a nonlinear map in
// its second half, so ARIMA should win early and NARNET late.
func hybridSeries(n int, seed int64) *timeseries.Series {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, n)
	data[0] = 0.3
	for t := 1; t < n/2; t++ {
		data[t] = 0.7*data[t-1] + 0.05*rng.NormFloat64() + 0.15
	}
	for t := n / 2; t < n; t++ {
		data[t] = 3.7 * data[t-1] * (1 - data[t-1])
		if data[t] <= 0 || data[t] >= 1 {
			data[t] = 0.5
		}
	}
	return timeseries.New(data)
}

func TestCombinedBeatsWorstSingleModel(t *testing.T) {
	s := hybridSeries(700, 3)
	train, test := s.Split(0.4) // training covers only the linear regime
	am, err := arima.Fit(train, arima.Order{P: 1, D: 0, Q: 1})
	if err != nil {
		t.Fatal(err)
	}
	nn, err := narnet.Train(train, narnet.Config{Inputs: 4, Hidden: 12, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Individual rolling forecasts.
	ap, err := am.RollingForecast(train, test)
	if err != nil {
		t.Fatal(err)
	}
	np, err := nn.RollingForecast(train, test)
	if err != nil {
		t.Fatal(err)
	}
	aMSE, _ := timeseries.MSE(test.Raw(), ap)
	nMSE, _ := timeseries.MSE(test.Raw(), np)

	sel, err := NewSelector(train, Config{Window: 10},
		NewCandidate("arima", am), NewCandidate("narnet", nn))
	if err != nil {
		t.Fatal(err)
	}
	cp, _, err := sel.Run(test)
	if err != nil {
		t.Fatal(err)
	}
	cMSE, _ := timeseries.MSE(test.Raw(), cp)

	worst := math.Max(aMSE, nMSE)
	if cMSE > worst {
		t.Errorf("combined MSE %.5f worse than worst single model %.5f (arima %.5f, narnet %.5f)",
			cMSE, worst, aMSE, nMSE)
	}
}

func TestDefaultPool(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := timeseries.FromFunc(400, func(t int) float64 {
		return 50 + 20*math.Sin(float64(t)/10) + rng.NormFloat64()
	})
	pool, err := DefaultPool(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pool) < 3 {
		t.Fatalf("DefaultPool size = %d, want >= 3 of 4 candidates", len(pool))
	}
	names := map[string]bool{}
	for _, c := range pool {
		names[c.Name] = true
	}
	if !names["ARIMA(1,1,1)"] {
		t.Errorf("pool missing ARIMA(1,1,1): %v", names)
	}
}

func TestDefaultPoolTooShort(t *testing.T) {
	if _, err := DefaultPool(timeseries.New([]float64{1, 2}), 1); err == nil {
		t.Fatal("expected error on tiny series")
	}
}

func TestCandidateMSEBeforeObservation(t *testing.T) {
	h := timeseries.New([]float64{1, 2, 3})
	c := NewCandidate("c", constantForecaster{1})
	if _, err := NewSelector(h, Config{}, c); err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(c.MSE(), 1) {
		t.Fatalf("unobserved candidate MSE = %v, want +Inf", c.MSE())
	}
	c.Observe(2)
	if c.MSE() != 4 {
		t.Fatalf("MSE = %v, want 4", c.MSE())
	}
}

func TestExtendedPool(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := timeseries.FromFunc(400, func(tt int) float64 {
		return 50 + 20*math.Sin(2*math.Pi*float64(tt)/24) + rng.NormFloat64()
	})
	pool, err := ExtendedPool(s, 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, c := range pool {
		names[c.Name] = true
	}
	if !names["Holt"] || !names["HoltWinters[24]"] {
		t.Fatalf("smoothing candidates missing: %v", names)
	}
	if len(pool) < 5 {
		t.Fatalf("pool size = %d, want >= 5", len(pool))
	}
	// The extended pool must run end-to-end through a selector.
	train, test := s.Split(0.9)
	pool2, err := ExtendedPool(train, 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := NewSelector(train, Config{Window: 10}, pool2...)
	if err != nil {
		t.Fatal(err)
	}
	pred, _, err := sel.Run(test)
	if err != nil {
		t.Fatal(err)
	}
	mse, _ := timeseries.MSE(test.Raw(), pred)
	if mse > 25 {
		t.Fatalf("extended-pool MSE = %.3f, suspiciously bad", mse)
	}
}

func TestExtendedPoolNoSeason(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := timeseries.FromFunc(300, func(int) float64 { return 10 + rng.NormFloat64() })
	pool, err := ExtendedPool(s, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range pool {
		if c.Name == "HoltWinters[0]" {
			t.Fatal("seasonal candidate created without a period")
		}
	}
}

func TestPredictK(t *testing.T) {
	h := timeseries.New([]float64{5, 5, 5})
	sel, err := NewSelector(h, Config{Window: 3},
		NewCandidate("a", constantForecaster{5}),
		NewCandidate("b", constantForecaster{50}))
	if err != nil {
		t.Fatal(err)
	}
	fc, err := sel.PredictK(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(fc) != 4 {
		t.Fatalf("len = %d", len(fc))
	}
	// Ties break to the first candidate before any observation.
	if fc[0] != 5 {
		t.Fatalf("PredictK[0] = %v, want candidate a's 5", fc[0])
	}
	if _, err := sel.PredictK(0); err == nil {
		t.Fatal("zero horizon accepted")
	}
}

func TestPredictKFallsBackOnFailure(t *testing.T) {
	h := timeseries.New([]float64{1, 2, 3})
	sel, err := NewSelector(h, Config{},
		NewCandidate("fail", failingForecaster{}),
		NewCandidate("ok", constantForecaster{7}))
	if err != nil {
		t.Fatal(err)
	}
	fc, err := sel.PredictK(2)
	if err != nil {
		t.Fatal(err)
	}
	if fc[0] != 7 || fc[1] != 7 {
		t.Fatalf("fallback forecast = %v", fc)
	}
}
