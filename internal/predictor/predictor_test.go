package predictor

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"sheriff/internal/arima"
	"sheriff/internal/narnet"
	"sheriff/internal/smoothing"
	"sheriff/internal/timeseries"
)

// constantForecaster always predicts the same value.
type constantForecaster struct{ v float64 }

func (c constantForecaster) ForecastFrom(_ *timeseries.Series, h int) ([]float64, error) {
	out := make([]float64, h)
	for i := range out {
		out[i] = c.v
	}
	return out, nil
}

// failingForecaster always errors.
type failingForecaster struct{}

func (failingForecaster) ForecastFrom(*timeseries.Series, int) ([]float64, error) {
	return nil, errEveryTime
}

var errEveryTime = &forecastErr{}

type forecastErr struct{}

func (*forecastErr) Error() string { return "cannot forecast" }

func TestNewSelectorValidation(t *testing.T) {
	h := timeseries.New([]float64{1, 2, 3})
	if _, err := NewSelector(h, Config{}); err == nil {
		t.Error("empty pool accepted")
	}
	if _, err := NewSelector(h, Config{}, &Candidate{Name: "nil"}); err == nil {
		t.Error("nil forecaster accepted")
	}
}

func TestSelectorPicksLowerMSECandidate(t *testing.T) {
	h := timeseries.New([]float64{5, 5, 5})
	good := NewCandidate("good", constantForecaster{5})
	bad := NewCandidate("bad", constantForecaster{100})
	sel, err := NewSelector(h, Config{Window: 5}, bad, good) // bad listed first
	if err != nil {
		t.Fatal(err)
	}
	// First prediction: no errors observed, tie broken by order -> "bad".
	p, err := sel.Predict()
	if err != nil {
		t.Fatal(err)
	}
	if p != 100 || sel.Selection() != "bad" {
		t.Fatalf("first pick = %v (%s), want bad's 100", p, sel.Selection())
	}
	sel.Observe(5)
	// Now bad has error 95², good has error 0 -> good must win.
	p, err = sel.Predict()
	if err != nil {
		t.Fatal(err)
	}
	if p != 5 || sel.Selection() != "good" {
		t.Fatalf("second pick = %v (%s), want good's 5", p, sel.Selection())
	}
}

func TestSelectorSkipsFailingCandidate(t *testing.T) {
	h := timeseries.New([]float64{1, 2, 3})
	sel, err := NewSelector(h, Config{},
		NewCandidate("fail", failingForecaster{}),
		NewCandidate("ok", constantForecaster{7}))
	if err != nil {
		t.Fatal(err)
	}
	p, err := sel.Predict()
	if err != nil {
		t.Fatal(err)
	}
	if p != 7 {
		t.Fatalf("Predict = %v, want 7", p)
	}
}

func TestSelectorAllFail(t *testing.T) {
	h := timeseries.New([]float64{1})
	sel, err := NewSelector(h, Config{}, NewCandidate("f", failingForecaster{}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sel.Predict(); err == nil {
		t.Fatal("expected error when all candidates fail")
	}
}

func TestObserveExtendsHistory(t *testing.T) {
	h := timeseries.New([]float64{1, 2})
	sel, _ := NewSelector(h, Config{}, NewCandidate("c", constantForecaster{0}))
	sel.Observe(3)
	got := sel.History()
	if got.Len() != 3 || got.Last() != 3 {
		t.Fatalf("history = %v", got.Values())
	}
}

func TestRunWinShares(t *testing.T) {
	h := timeseries.New([]float64{5, 5, 5})
	sel, _ := NewSelector(h, Config{Window: 3},
		NewCandidate("a", constantForecaster{5}),
		NewCandidate("b", constantForecaster{50}))
	test := timeseries.New([]float64{5, 5, 5, 5, 5, 5})
	pred, shares, err := sel.Run(test)
	if err != nil {
		t.Fatal(err)
	}
	if len(pred) != 6 {
		t.Fatalf("pred len = %d", len(pred))
	}
	// "a" should win everything after the first (tie-broken) step.
	if shares["a"] < 0.8 {
		t.Fatalf("winShare[a] = %v, want >= 0.8", shares["a"])
	}
	total := 0.0
	for _, v := range shares {
		total += v
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("win shares sum to %v, want 1", total)
	}
}

// hybridSeries is linear AR(1) in its first half and a nonlinear map in
// its second half, so ARIMA should win early and NARNET late.
func hybridSeries(n int, seed int64) *timeseries.Series {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, n)
	data[0] = 0.3
	for t := 1; t < n/2; t++ {
		data[t] = 0.7*data[t-1] + 0.05*rng.NormFloat64() + 0.15
	}
	for t := n / 2; t < n; t++ {
		data[t] = 3.7 * data[t-1] * (1 - data[t-1])
		if data[t] <= 0 || data[t] >= 1 {
			data[t] = 0.5
		}
	}
	return timeseries.New(data)
}

func TestCombinedBeatsWorstSingleModel(t *testing.T) {
	s := hybridSeries(700, 3)
	train, test := s.Split(0.4) // training covers only the linear regime
	am, err := arima.Fit(train, arima.Order{P: 1, D: 0, Q: 1})
	if err != nil {
		t.Fatal(err)
	}
	nn, err := narnet.Train(train, narnet.Config{Inputs: 4, Hidden: 12, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Individual rolling forecasts.
	ap, err := am.RollingForecast(train, test)
	if err != nil {
		t.Fatal(err)
	}
	np, err := nn.RollingForecast(train, test)
	if err != nil {
		t.Fatal(err)
	}
	aMSE, _ := timeseries.MSE(test.Raw(), ap)
	nMSE, _ := timeseries.MSE(test.Raw(), np)

	sel, err := NewSelector(train, Config{Window: 10},
		NewCandidate("arima", am), NewCandidate("narnet", nn))
	if err != nil {
		t.Fatal(err)
	}
	cp, _, err := sel.Run(test)
	if err != nil {
		t.Fatal(err)
	}
	cMSE, _ := timeseries.MSE(test.Raw(), cp)

	worst := math.Max(aMSE, nMSE)
	if cMSE > worst {
		t.Errorf("combined MSE %.5f worse than worst single model %.5f (arima %.5f, narnet %.5f)",
			cMSE, worst, aMSE, nMSE)
	}
}

func TestDefaultPool(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := timeseries.FromFunc(400, func(t int) float64 {
		return 50 + 20*math.Sin(float64(t)/10) + rng.NormFloat64()
	})
	pool, err := DefaultPool(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pool) < 3 {
		t.Fatalf("DefaultPool size = %d, want >= 3 of 4 candidates", len(pool))
	}
	names := map[string]bool{}
	for _, c := range pool {
		names[c.Name] = true
	}
	if !names["ARIMA(1,1,1)"] {
		t.Errorf("pool missing ARIMA(1,1,1): %v", names)
	}
}

func TestDefaultPoolTooShort(t *testing.T) {
	if _, err := DefaultPool(timeseries.New([]float64{1, 2}), 1); err == nil {
		t.Fatal("expected error on tiny series")
	}
}

func TestCandidateMSEBeforeObservation(t *testing.T) {
	h := timeseries.New([]float64{1, 2, 3})
	c := NewCandidate("c", constantForecaster{1})
	if _, err := NewSelector(h, Config{}, c); err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(c.MSE(), 1) {
		t.Fatalf("unobserved candidate MSE = %v, want +Inf", c.MSE())
	}
	c.Observe(2)
	if c.MSE() != 4 {
		t.Fatalf("MSE = %v, want 4", c.MSE())
	}
}

func TestExtendedPool(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := timeseries.FromFunc(400, func(tt int) float64 {
		return 50 + 20*math.Sin(2*math.Pi*float64(tt)/24) + rng.NormFloat64()
	})
	pool, err := ExtendedPool(s, 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, c := range pool {
		names[c.Name] = true
	}
	if !names["Holt"] || !names["HoltWinters[24]"] {
		t.Fatalf("smoothing candidates missing: %v", names)
	}
	if len(pool) < 5 {
		t.Fatalf("pool size = %d, want >= 5", len(pool))
	}
	// The extended pool must run end-to-end through a selector.
	train, test := s.Split(0.9)
	pool2, err := ExtendedPool(train, 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := NewSelector(train, Config{Window: 10}, pool2...)
	if err != nil {
		t.Fatal(err)
	}
	pred, _, err := sel.Run(test)
	if err != nil {
		t.Fatal(err)
	}
	mse, _ := timeseries.MSE(test.Raw(), pred)
	if mse > 25 {
		t.Fatalf("extended-pool MSE = %.3f, suspiciously bad", mse)
	}
}

func TestExtendedPoolNoSeason(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := timeseries.FromFunc(300, func(int) float64 { return 10 + rng.NormFloat64() })
	pool, err := ExtendedPool(s, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range pool {
		if c.Name == "HoltWinters[0]" {
			t.Fatal("seasonal candidate created without a period")
		}
	}
}

func TestPredictK(t *testing.T) {
	h := timeseries.New([]float64{5, 5, 5})
	sel, err := NewSelector(h, Config{Window: 3},
		NewCandidate("a", constantForecaster{5}),
		NewCandidate("b", constantForecaster{50}))
	if err != nil {
		t.Fatal(err)
	}
	fc, name, err := sel.PredictK(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(fc) != 4 {
		t.Fatalf("len = %d", len(fc))
	}
	// Ties break to the first candidate before any observation.
	if fc[0] != 5 || name != "a" {
		t.Fatalf("PredictK = %v (%s), want candidate a's 5", fc[0], name)
	}
	if _, _, err := sel.PredictK(0); err == nil {
		t.Fatal("zero horizon accepted")
	}
}

func TestPredictKFallsBackOnFailure(t *testing.T) {
	h := timeseries.New([]float64{1, 2, 3})
	sel, err := NewSelector(h, Config{},
		NewCandidate("fail", failingForecaster{}),
		NewCandidate("ok", constantForecaster{7}))
	if err != nil {
		t.Fatal(err)
	}
	fc, name, err := sel.PredictK(2)
	if err != nil {
		t.Fatal(err)
	}
	if fc[0] != 7 || fc[1] != 7 {
		t.Fatalf("fallback forecast = %v", fc)
	}
	if name != "ok" {
		t.Fatalf("PredictK reported %q, want the candidate actually used (ok)", name)
	}
}

func TestPredictKEmptyPool(t *testing.T) {
	var sel Selector // zero value: no candidates
	if _, _, err := sel.PredictK(3); err == nil {
		t.Fatal("empty-pool PredictK succeeded")
	}
}

func TestPredictKOrdersFallbackByMSE(t *testing.T) {
	h := timeseries.New([]float64{5, 5, 5})
	// Pool order: fail, far, near. After observations, "near" has the
	// lower MSE, so the fallback must pick it even though "far" comes
	// first in the pool.
	sel, err := NewSelector(h, Config{Window: 5},
		NewCandidate("fail", failingForecaster{}),
		NewCandidate("far", constantForecaster{50}),
		NewCandidate("near", constantForecaster{6}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := sel.Predict(); err != nil {
			t.Fatal(err)
		}
		sel.Observe(5)
	}
	fc, name, err := sel.PredictK(2)
	if err != nil {
		t.Fatal(err)
	}
	if name != "near" || fc[0] != 6 {
		t.Fatalf("PredictK used %q (%v), want lowest-MSE candidate near", name, fc[0])
	}
}

func TestPredictKAllFailWrapsError(t *testing.T) {
	h := timeseries.New([]float64{1, 2, 3})
	sel, err := NewSelector(h, Config{}, NewCandidate("f", failingForecaster{}))
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = sel.PredictK(2)
	if err == nil {
		t.Fatal("expected error when every candidate fails")
	}
	if !errors.Is(err, errEveryTime) {
		t.Fatalf("error %v does not wrap the underlying forecast error", err)
	}
}

func TestObserveSkipsFailedForecasts(t *testing.T) {
	h := timeseries.New([]float64{1, 2, 3})
	fail := NewCandidate("fail", failingForecaster{})
	ok := NewCandidate("ok", constantForecaster{7})
	sel, err := NewSelector(h, Config{Window: 5}, fail, ok)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sel.Predict(); err != nil {
		t.Fatal(err)
	}
	sel.Observe(7)
	// The failing candidate produced no prediction, so its fitness must
	// stay unobserved (+Inf), not be polluted by a NaN error.
	if !math.IsInf(fail.MSE(), 1) {
		t.Fatalf("failed candidate MSE = %v, want +Inf", fail.MSE())
	}
	if ok.MSE() != 0 {
		t.Fatalf("ok candidate MSE = %v, want 0", ok.MSE())
	}
}

func TestSelectionEmptyUntilSuccess(t *testing.T) {
	h := timeseries.New([]float64{1, 2, 3})
	sel, err := NewSelector(h, Config{},
		NewCandidate("a", constantForecaster{1}),
		NewCandidate("b", constantForecaster{2}))
	if err != nil {
		t.Fatal(err)
	}
	if got := sel.Selection(); got != "" {
		t.Fatalf("Selection before any Predict = %q, want \"\"", got)
	}
	if _, err := sel.Predict(); err != nil {
		t.Fatal(err)
	}
	if got := sel.Selection(); got != "a" {
		t.Fatalf("Selection after Predict = %q, want a", got)
	}
}

func TestSelectionResetAfterFailedPredict(t *testing.T) {
	h := timeseries.New([]float64{1, 2, 3})
	flaky := &switchableForecaster{v: 4}
	sel, err := NewSelector(h, Config{}, NewCandidate("flaky", flaky))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sel.Predict(); err != nil {
		t.Fatal(err)
	}
	if sel.Selection() != "flaky" {
		t.Fatalf("Selection = %q", sel.Selection())
	}
	sel.Observe(4)
	flaky.broken = true
	if _, err := sel.Predict(); err == nil {
		t.Fatal("expected failure")
	}
	if got := sel.Selection(); got != "" {
		t.Fatalf("Selection after failed Predict = %q, want \"\"", got)
	}
}

// switchableForecaster forecasts a constant until broken.
type switchableForecaster struct {
	v      float64
	broken bool
}

func (s *switchableForecaster) ForecastFrom(_ *timeseries.Series, h int) ([]float64, error) {
	if s.broken {
		return nil, errEveryTime
	}
	out := make([]float64, h)
	for i := range out {
		out[i] = s.v
	}
	return out, nil
}

// TestIncrementalForecastMatchesCold drives one fitted model of each
// family incrementally (ForecastFrom after every append to one shared
// Series) and compares against a cold call on a fresh copy of the same
// history. The incremental caches must be bit-exact with recomputation.
func TestIncrementalForecastMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	train := timeseries.FromFunc(300, func(tt int) float64 {
		return 50 + 20*math.Sin(2*math.Pi*float64(tt)/24) + rng.NormFloat64()
	})
	am, err := arima.Fit(train, arima.Order{P: 2, D: 1, Q: 2})
	if err != nil {
		t.Fatal(err)
	}
	nn, err := narnet.Train(train, narnet.Config{Inputs: 8, Hidden: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	hm, err := smoothing.Fit(train, smoothing.Config{Method: smoothing.HoltWinters, Period: 24})
	if err != nil {
		t.Fatal(err)
	}
	models := []struct {
		name string
		f    Forecaster
	}{{"arima", am}, {"narnet", nn}, {"holtwinters", hm}}

	hist := train.Clone()
	for step := 0; step < 40; step++ {
		for _, m := range models {
			warm, err := m.f.ForecastFrom(hist, 3)
			if err != nil {
				t.Fatalf("%s warm step %d: %v", m.name, step, err)
			}
			cold, err := m.f.ForecastFrom(hist.Clone(), 3)
			if err != nil {
				t.Fatalf("%s cold step %d: %v", m.name, step, err)
			}
			for k := range warm {
				if warm[k] != cold[k] {
					t.Fatalf("%s step %d horizon %d: warm %v != cold %v",
						m.name, step, k, warm[k], cold[k])
				}
			}
		}
		next := 50 + 20*math.Sin(2*math.Pi*float64(300+step)/24) + rng.NormFloat64()
		hist.Append(next)
	}
}
