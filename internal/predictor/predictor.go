// Package predictor implements Sheriff's dynamic model selection
// (paper Sec. IV.B, "Dynamic Model Selection"): a pool of candidate
// forecasters — typically two ARIMA orders and two NARNET architectures —
// each tracked by its sliding-window mean squared prediction error
// MSE_f(t, T_p) (Eqn. 14). At every step the candidate with the minimum
// windowed MSE supplies the prediction.
package predictor

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"sheriff/internal/arima"
	"sheriff/internal/narnet"
	"sheriff/internal/pool"
	"sheriff/internal/smoothing"
	"sheriff/internal/timeseries"
)

// Forecaster is the contract shared by ARIMA models and NARNETs: predict h
// steps ahead given the observed history.
type Forecaster interface {
	ForecastFrom(history *timeseries.Series, h int) ([]float64, error)
}

// Candidate pairs a named forecaster with its rolling fitness tracker.
type Candidate struct {
	Name string
	F    Forecaster

	mse *timeseries.RollingMSE
}

// MSE returns the candidate's current windowed MSE (Eqn. 14); +Inf until
// the first error is observed.
func (c *Candidate) MSE() float64 { return c.mse.Value() }

// Selector performs dynamic model selection over a candidate pool.
type Selector struct {
	candidates []*Candidate
	history    *timeseries.Series

	lastPred     []float64 // cached one-step prediction per candidate
	havePred     bool      // lastPred is valid for the current history
	selection    int       // index of last winning candidate
	hasSelection bool      // a Predict has succeeded since the last failure
}

// Config configures a Selector.
type Config struct {
	// Window is T_p, the number of recent one-step errors in the fitness
	// MSE. Default 20.
	Window int
}

// PoolKind selects which candidate family New builds.
type PoolKind int

const (
	// PoolDefault is the paper's pool: two ARIMA orders + two NARNETs.
	PoolDefault PoolKind = iota
	// PoolExtended adds Holt and (when a season is found or given)
	// additive Holt–Winters to the default pool.
	PoolExtended
)

// Options configures New, the consolidated constructor behind the facade's
// NewPredictor. The zero value builds the paper's default pool.
type Options struct {
	// Pool selects the candidate family. Default PoolDefault.
	Pool PoolKind
	// Period is the Holt–Winters season length for PoolExtended; 0
	// auto-detects it from the training data's ACF.
	Period int
	// Window is T_p, the fitness MSE window (Eqn. 14). Zero means the
	// default (20).
	Window int
	// Seed drives NARNET weight initialization.
	Seed int64
	// Burst appends the change-point forecaster (Page–Hinkley gating a
	// fast-adapting Holt — see Burst) to whichever pool Pool selects. It
	// composes with either kind; the default pool stays burst-free so
	// existing scenarios and serialized deep pools are untouched.
	Burst bool
	// BurstConfig tunes the burst candidate; the zero value means the
	// defaults. Ignored unless Burst is set.
	BurstConfig BurstConfig
}

// Validate reports whether the options are usable: negative windows and
// periods and unknown pool kinds are errors; zero values mean defaults.
func (o Options) Validate() error {
	if o.Pool != PoolDefault && o.Pool != PoolExtended {
		return fmt.Errorf("predictor: unknown pool kind %d", o.Pool)
	}
	if o.Period < 0 {
		return fmt.Errorf("predictor: Period must be >= 0 (0 = auto-detect), got %d", o.Period)
	}
	if o.Window < 0 {
		return fmt.Errorf("predictor: Window must be >= 0 (0 = default), got %d", o.Window)
	}
	return o.BurstConfig.Validate()
}

// WithDefaults returns the options with zero fields replaced by their
// defaults. Period stays 0 (auto-detect is the default, resolved against
// the training data inside New).
func (o Options) WithDefaults() Options {
	if o.Window == 0 {
		o.Window = 20
	}
	return o
}

// New builds a dynamic-selection predictor on the training series: it
// fits the candidate pool the options select and primes a Selector with
// the history. It subsumes the former facade pair NewCombinedPredictor /
// NewExtendedPredictor.
func New(train *timeseries.Series, opts Options) (*Selector, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.WithDefaults()
	cands, err := Pool(train, opts)
	if err != nil {
		return nil, err
	}
	return NewSelector(train, Config{Window: opts.Window}, cands...)
}

// Pool builds the candidate pool the options select without wrapping it in
// a Selector — the Options-driven construction surface that subsumed the
// positional DefaultPool / ExtendedPool pair. Opts.Burst appends the
// change-point candidate after the family pool, so it never displaces the
// paper's candidates, only competes with them.
func Pool(train *timeseries.Series, opts Options) ([]*Candidate, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.WithDefaults()
	var (
		cands []*Candidate
		err   error
	)
	switch opts.Pool {
	case PoolExtended:
		period := opts.Period
		if period == 0 {
			period = timeseries.DetectPeriod(train, 4, train.Len()/3)
		}
		cands, err = extendedPool(train, period, opts.Seed)
	default:
		cands, err = defaultPool(train, opts.Seed)
	}
	if err != nil {
		return nil, err
	}
	if opts.Burst {
		bm, berr := FitBurst(train, opts.BurstConfig)
		if berr != nil {
			return nil, berr
		}
		cands = append(cands, NewCandidate("Burst", bm))
	}
	return cands, nil
}

// NewSelector builds a Selector over the given candidates, primed with the
// training history (used as forecasting context for the first step).
func NewSelector(history *timeseries.Series, cfg Config, candidates ...*Candidate) (*Selector, error) {
	if len(candidates) == 0 {
		return nil, errors.New("predictor: need at least one candidate")
	}
	w := cfg.Window
	if w <= 0 {
		w = 20
	}
	for _, c := range candidates {
		if c.F == nil {
			return nil, fmt.Errorf("predictor: candidate %q has nil forecaster", c.Name)
		}
		c.mse = timeseries.NewRollingMSE(w)
	}
	return &Selector{
		candidates: candidates,
		history:    history.Clone(),
		lastPred:   make([]float64, len(candidates)),
	}, nil
}

// NewCandidate wraps a forecaster for use in a Selector.
func NewCandidate(name string, f Forecaster) *Candidate {
	return &Candidate{Name: name, F: f}
}

// Predict returns the one-step-ahead prediction of the currently best
// candidate (minimum windowed MSE; first candidate wins ties, so the pool
// order encodes a preference before any errors are observed).
//
// The per-candidate forecasts are computed once per history state and
// cached until the next Observe: calling Predict repeatedly between
// observations reuses the cached values instead of re-running every
// forecaster (the fitness ranking cannot change without a new error).
func (s *Selector) Predict() (float64, error) {
	if !s.havePred {
		for i, c := range s.candidates {
			fc, err := c.F.ForecastFrom(s.history, 1)
			if err != nil {
				// A candidate that cannot forecast simply does not compete
				// this round; record a non-prediction.
				s.lastPred[i] = math.NaN()
				continue
			}
			s.lastPred[i] = fc[0]
		}
		s.havePred = true
	}
	best := -1
	bestMSE := math.Inf(1)
	var bestVal float64
	for i, c := range s.candidates {
		if math.IsNaN(s.lastPred[i]) {
			continue
		}
		if m := c.MSE(); m < bestMSE || best == -1 {
			best, bestMSE, bestVal = i, m, s.lastPred[i]
		}
	}
	if best == -1 {
		s.hasSelection = false
		return 0, errors.New("predictor: no candidate could forecast")
	}
	s.selection = best
	s.hasSelection = true
	return bestVal, nil
}

// PredictK returns an h-step-ahead forecast — the paper's K-STEP-AHEAD
// mode, where later steps reuse earlier predictions as history inside the
// winning model — together with the name of the candidate that actually
// produced it. Candidates are tried in ascending windowed-MSE order
// (ties keep pool order), so when the best candidate cannot forecast the
// fallback is the next-fittest model, not whichever happens to sit first
// in the pool. The fitness ranking is still based on one-step errors
// (Eqn. 14), so PredictK does not change the selection state.
func (s *Selector) PredictK(h int) ([]float64, string, error) {
	if h <= 0 {
		return nil, "", errors.New("predictor: horizon must be positive")
	}
	if len(s.candidates) == 0 {
		return nil, "", errors.New("predictor: empty pool")
	}
	order := make([]int, len(s.candidates))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return s.candidates[order[a]].MSE() < s.candidates[order[b]].MSE()
	})
	var firstErr error
	for _, i := range order {
		fc, err := s.candidates[i].F.ForecastFrom(s.history, h)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		return fc, s.candidates[i].Name, nil
	}
	return nil, "", fmt.Errorf("predictor: k-step forecast: %w", firstErr)
}

// Observe reveals the true value for the step last predicted, updating
// every candidate's fitness and extending the shared history.
func (s *Selector) Observe(actual float64) {
	if s.havePred {
		for i, c := range s.candidates {
			if !math.IsNaN(s.lastPred[i]) {
				c.Observe(actual - s.lastPred[i])
			}
		}
		s.havePred = false
	}
	s.history.Append(actual)
}

// Observe records a raw prediction error for the candidate.
func (c *Candidate) Observe(err float64) { c.mse.Observe(err) }

// Selection returns the name of the candidate that produced the most
// recent successful prediction. Before the first successful Predict — and
// after a Predict in which no candidate could forecast — it returns ""
// rather than inventing a winner.
func (s *Selector) Selection() string {
	if !s.hasSelection {
		return ""
	}
	return s.candidates[s.selection].Name
}

// Candidates returns the pool (for inspection and reporting).
func (s *Selector) Candidates() []*Candidate { return s.candidates }

// History returns a copy of the accumulated history.
func (s *Selector) History() *timeseries.Series { return s.history.Clone() }

// Run performs the full rolling evaluation over a test series: at each
// step it predicts, then reveals the truth. It returns the combined
// predictions and, per candidate, which fraction of steps it won.
func (s *Selector) Run(test *timeseries.Series) (pred []float64, winShare map[string]float64, err error) {
	pred = make([]float64, test.Len())
	wins := make(map[string]int, len(s.candidates))
	for t := 0; t < test.Len(); t++ {
		p, err := s.Predict()
		if err != nil {
			return nil, nil, fmt.Errorf("predictor: step %d: %w", t, err)
		}
		pred[t] = p
		wins[s.Selection()]++
		s.Observe(test.At(t))
	}
	winShare = make(map[string]float64, len(wins))
	for name, n := range wins {
		winShare[name] = float64(n) / float64(test.Len())
	}
	return pred, winShare, nil
}

// ExtendedPool builds the extended candidate family with positional
// arguments.
//
// Deprecated: use Pool with Options{Pool: PoolExtended, Period: period,
// Seed: seed}. Kept one PR for external callers.
func ExtendedPool(train *timeseries.Series, period int, seed int64) ([]*Candidate, error) {
	return extendedPool(train, period, seed)
}

// extendedPool builds defaultPool plus the exponential-smoothing family:
// Holt's linear method and, when period >= 2, additive Holt–Winters with
// that season length. Pass period = 0 to skip the seasonal candidate.
// The three families fit concurrently on the shared worker pool.
//
// When every candidate fails, the returned error wraps the underlying
// per-family fit errors (errors.Join), so callers see why the whole pool
// died instead of a bare "failed to fit".
func extendedPool(train *timeseries.Series, period int, seed int64) ([]*Candidate, error) {
	var (
		base           []*Candidate
		baseErr        error
		holt, hw       *smoothing.Model
		holtErr, hwErr error
	)
	tasks := []func(){
		func() { base, baseErr = defaultPool(train, seed) },
		func() { holt, holtErr = smoothing.Fit(train, smoothing.Config{Method: smoothing.Holt}) },
	}
	if period >= 2 {
		tasks = append(tasks, func() {
			hw, hwErr = smoothing.Fit(train, smoothing.Config{Method: smoothing.HoltWinters, Period: period})
		})
	}
	pool.Shared().Run(tasks...)

	var out []*Candidate
	if baseErr == nil {
		out = base
	}
	if holtErr == nil {
		out = append(out, NewCandidate("Holt", holt))
	}
	if period >= 2 && hwErr == nil {
		out = append(out, NewCandidate(fmt.Sprintf("HoltWinters[%d]", period), hw))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("predictor: every candidate failed to fit: %w",
			errors.Join(baseErr, holtErr, hwErr))
	}
	return out, nil
}

// DefaultPool builds the paper's four-candidate pool with positional
// arguments.
//
// Deprecated: use Pool with Options{Seed: seed}. Kept one PR for external
// callers.
func DefaultPool(train *timeseries.Series, seed int64) ([]*Candidate, error) {
	return defaultPool(train, seed)
}

// defaultPool builds the paper's four-candidate pool on a training series:
// ARIMA(p1,d1,q1), ARIMA(p2,d2,q2), NARNET(ni1,nh1), NARNET(ni2,nh2),
// fitting the candidates concurrently on the shared worker pool (each fit
// is independent and deterministic, so the pool order is stable). Any
// candidate whose fit fails is dropped; at least one must survive, and
// when none do the returned error wraps every underlying fit error.
func defaultPool(train *timeseries.Series, seed int64) ([]*Candidate, error) {
	type spec struct {
		name string
		fit  func() (Forecaster, error)
	}
	specs := []spec{}
	for _, o := range []arima.Order{{P: 1, D: 1, Q: 1}, {P: 2, D: 1, Q: 2}} {
		o := o
		specs = append(specs, spec{o.String(), func() (Forecaster, error) { return arima.Fit(train, o) }})
	}
	for i, nn := range []struct{ ni, nh int }{{8, 20}, {12, 10}} {
		cfg := narnet.Config{Inputs: nn.ni, Hidden: nn.nh, Seed: seed + int64(i)}
		specs = append(specs, spec{fmt.Sprintf("NARNET(%d,%d)", nn.ni, nn.nh),
			func() (Forecaster, error) { return narnet.Train(train, cfg) }})
	}
	fitted := make([]Forecaster, len(specs))
	errs := make([]error, len(specs))
	pool.Shared().ForEach(len(specs), func(i int) {
		fitted[i], errs[i] = specs[i].fit()
	})
	var out []*Candidate
	for i, sp := range specs {
		if errs[i] == nil {
			out = append(out, NewCandidate(sp.name, fitted[i]))
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("predictor: every candidate failed to fit: %w", errors.Join(errs...))
	}
	return out, nil
}
