// Package predictor implements Sheriff's dynamic model selection
// (paper Sec. IV.B, "Dynamic Model Selection"): a pool of candidate
// forecasters — typically two ARIMA orders and two NARNET architectures —
// each tracked by its sliding-window mean squared prediction error
// MSE_f(t, T_p) (Eqn. 14). At every step the candidate with the minimum
// windowed MSE supplies the prediction.
package predictor

import (
	"errors"
	"fmt"
	"math"

	"sheriff/internal/arima"
	"sheriff/internal/narnet"
	"sheriff/internal/smoothing"
	"sheriff/internal/timeseries"
)

// Forecaster is the contract shared by ARIMA models and NARNETs: predict h
// steps ahead given the observed history.
type Forecaster interface {
	ForecastFrom(history *timeseries.Series, h int) ([]float64, error)
}

// Candidate pairs a named forecaster with its rolling fitness tracker.
type Candidate struct {
	Name string
	F    Forecaster

	mse *timeseries.RollingMSE
}

// MSE returns the candidate's current windowed MSE (Eqn. 14); +Inf until
// the first error is observed.
func (c *Candidate) MSE() float64 { return c.mse.Value() }

// Selector performs dynamic model selection over a candidate pool.
type Selector struct {
	candidates []*Candidate
	history    *timeseries.Series

	lastPred  []float64 // most recent one-step prediction per candidate
	havePred  bool
	selection int // index of last winning candidate
}

// Config configures a Selector.
type Config struct {
	// Window is T_p, the number of recent one-step errors in the fitness
	// MSE. Default 20.
	Window int
}

// NewSelector builds a Selector over the given candidates, primed with the
// training history (used as forecasting context for the first step).
func NewSelector(history *timeseries.Series, cfg Config, candidates ...*Candidate) (*Selector, error) {
	if len(candidates) == 0 {
		return nil, errors.New("predictor: need at least one candidate")
	}
	w := cfg.Window
	if w <= 0 {
		w = 20
	}
	for _, c := range candidates {
		if c.F == nil {
			return nil, fmt.Errorf("predictor: candidate %q has nil forecaster", c.Name)
		}
		c.mse = timeseries.NewRollingMSE(w)
	}
	return &Selector{
		candidates: candidates,
		history:    history.Clone(),
		lastPred:   make([]float64, len(candidates)),
	}, nil
}

// NewCandidate wraps a forecaster for use in a Selector.
func NewCandidate(name string, f Forecaster) *Candidate {
	return &Candidate{Name: name, F: f}
}

// Predict returns the one-step-ahead prediction of the currently best
// candidate (minimum windowed MSE; first candidate wins ties, so the pool
// order encodes a preference before any errors are observed).
func (s *Selector) Predict() (float64, error) {
	best := -1
	bestMSE := math.Inf(1)
	var bestVal float64
	for i, c := range s.candidates {
		fc, err := c.F.ForecastFrom(s.history, 1)
		if err != nil {
			// A candidate that cannot forecast simply does not compete
			// this round; record a non-prediction.
			s.lastPred[i] = math.NaN()
			continue
		}
		s.lastPred[i] = fc[0]
		if m := c.MSE(); m < bestMSE || best == -1 {
			best, bestMSE, bestVal = i, m, fc[0]
		}
	}
	if best == -1 {
		return 0, errors.New("predictor: no candidate could forecast")
	}
	s.havePred = true
	s.selection = best
	return bestVal, nil
}

// PredictK returns an h-step-ahead forecast from the currently best
// candidate — the paper's K-STEP-AHEAD mode, where later steps reuse
// earlier predictions as history inside the winning model. The fitness
// ranking is still based on one-step errors (Eqn. 14), so PredictK does
// not change the selection state.
func (s *Selector) PredictK(h int) ([]float64, error) {
	if h <= 0 {
		return nil, errors.New("predictor: horizon must be positive")
	}
	best := -1
	bestMSE := math.Inf(1)
	for i, c := range s.candidates {
		if m := c.MSE(); m < bestMSE || best == -1 {
			best, bestMSE = i, m
		}
	}
	if best == -1 {
		return nil, errors.New("predictor: empty pool")
	}
	fc, err := s.candidates[best].F.ForecastFrom(s.history, h)
	if err != nil {
		// Fall back to any candidate that can forecast.
		for i, c := range s.candidates {
			if i == best {
				continue
			}
			if fc, err2 := c.F.ForecastFrom(s.history, h); err2 == nil {
				return fc, nil
			}
		}
		return nil, fmt.Errorf("predictor: k-step forecast: %w", err)
	}
	return fc, nil
}

// Observe reveals the true value for the step last predicted, updating
// every candidate's fitness and extending the shared history.
func (s *Selector) Observe(actual float64) {
	if s.havePred {
		for i, c := range s.candidates {
			if !math.IsNaN(s.lastPred[i]) {
				c.Observe(actual - s.lastPred[i])
			}
		}
		s.havePred = false
	}
	s.history.Append(actual)
}

// Observe records a raw prediction error for the candidate.
func (c *Candidate) Observe(err float64) { c.mse.Observe(err) }

// Selection returns the name of the candidate that produced the most
// recent prediction.
func (s *Selector) Selection() string { return s.candidates[s.selection].Name }

// Candidates returns the pool (for inspection and reporting).
func (s *Selector) Candidates() []*Candidate { return s.candidates }

// History returns a copy of the accumulated history.
func (s *Selector) History() *timeseries.Series { return s.history.Clone() }

// Run performs the full rolling evaluation over a test series: at each
// step it predicts, then reveals the truth. It returns the combined
// predictions and, per candidate, which fraction of steps it won.
func (s *Selector) Run(test *timeseries.Series) (pred []float64, winShare map[string]float64, err error) {
	pred = make([]float64, test.Len())
	wins := make(map[string]int, len(s.candidates))
	for t := 0; t < test.Len(); t++ {
		p, err := s.Predict()
		if err != nil {
			return nil, nil, fmt.Errorf("predictor: step %d: %w", t, err)
		}
		pred[t] = p
		wins[s.Selection()]++
		s.Observe(test.At(t))
	}
	winShare = make(map[string]float64, len(wins))
	for name, n := range wins {
		winShare[name] = float64(n) / float64(test.Len())
	}
	return pred, winShare, nil
}

// ExtendedPool builds DefaultPool plus the exponential-smoothing family:
// Holt's linear method and, when period >= 2, additive Holt–Winters with
// that season length. Pass period = 0 to skip the seasonal candidate.
func ExtendedPool(train *timeseries.Series, period int, seed int64) ([]*Candidate, error) {
	pool, err := DefaultPool(train, seed)
	if err != nil {
		pool = nil // smoothing may still succeed below
	}
	if m, err := smoothing.Fit(train, smoothing.Config{Method: smoothing.Holt}); err == nil {
		pool = append(pool, NewCandidate("Holt", m))
	}
	if period >= 2 {
		if m, err := smoothing.Fit(train, smoothing.Config{Method: smoothing.HoltWinters, Period: period}); err == nil {
			pool = append(pool, NewCandidate(fmt.Sprintf("HoltWinters[%d]", period), m))
		}
	}
	if len(pool) == 0 {
		return nil, errors.New("predictor: every candidate failed to fit")
	}
	return pool, nil
}

// DefaultPool builds the paper's four-candidate pool on a training series:
// ARIMA(p1,d1,q1), ARIMA(p2,d2,q2), NARNET(ni1,nh1), NARNET(ni2,nh2).
// Any candidate whose fit fails is dropped; at least one must survive.
func DefaultPool(train *timeseries.Series, seed int64) ([]*Candidate, error) {
	var pool []*Candidate
	type arimaSpec struct{ o arima.Order }
	for _, spec := range []arimaSpec{
		{arima.Order{P: 1, D: 1, Q: 1}},
		{arima.Order{P: 2, D: 1, Q: 2}},
	} {
		if m, err := arima.Fit(train, spec.o); err == nil {
			pool = append(pool, NewCandidate(spec.o.String(), m))
		}
	}
	type nnSpec struct{ ni, nh int }
	for i, spec := range []nnSpec{{8, 20}, {12, 10}} {
		cfg := narnet.Config{Inputs: spec.ni, Hidden: spec.nh, Seed: seed + int64(i)}
		if n, err := narnet.Train(train, cfg); err == nil {
			pool = append(pool, NewCandidate(fmt.Sprintf("NARNET(%d,%d)", spec.ni, spec.nh), n))
		}
	}
	if len(pool) == 0 {
		return nil, errors.New("predictor: every candidate failed to fit")
	}
	return pool, nil
}
