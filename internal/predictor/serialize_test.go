package predictor

import (
	"encoding/json"
	"math"
	"testing"

	"sheriff/internal/arima"
	"sheriff/internal/smoothing"
	"sheriff/internal/timeseries"
)

func trainSeries(n int) *timeseries.Series {
	return timeseries.FromFunc(n, func(t int) float64 {
		return 0.5 + 0.3*math.Sin(2*math.Pi*float64(t)/24) + 0.01*float64(t%7)
	})
}

// TestSelectorJSONRoundTrip drives a selector mid-stream, snapshots it,
// and checks that the restored selector predicts, ranks, and keeps
// evolving bit-identically to the original — the contract behind
// sheriffd's warm restart.
func TestSelectorJSONRoundTrip(t *testing.T) {
	train := trainSeries(240)
	s, err := New(train, Options{Window: 5, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	// Walk a few observe cycles so the rolling MSE rings have wrapped
	// state and a selection exists.
	for i := 0; i < 8; i++ {
		if _, err := s.Predict(); err != nil {
			t.Fatal(err)
		}
		s.Observe(0.5 + 0.05*float64(i))
	}
	// Leave a cached prediction pending so lastPred/havePred roundtrip.
	if _, err := s.Predict(); err != nil {
		t.Fatal(err)
	}

	blob, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var r Selector
	if err := json.Unmarshal(blob, &r); err != nil {
		t.Fatal(err)
	}

	if r.Selection() != s.Selection() {
		t.Fatalf("selection %q != %q", r.Selection(), s.Selection())
	}
	sc, rc := s.Candidates(), r.Candidates()
	if len(sc) != len(rc) {
		t.Fatalf("candidate count %d != %d", len(rc), len(sc))
	}
	for i := range sc {
		if sc[i].Name != rc[i].Name {
			t.Fatalf("candidate %d name %q != %q", i, rc[i].Name, sc[i].Name)
		}
		if sc[i].MSE() != rc[i].MSE() {
			t.Fatalf("candidate %q MSE %v != %v", sc[i].Name, rc[i].MSE(), sc[i].MSE())
		}
	}

	// Continue both in lockstep: predictions and fitness must stay
	// bit-identical, including the ring wrap behavior of the MSE window.
	for i := 0; i < 12; i++ {
		ps, errS := s.Predict()
		pr, errR := r.Predict()
		if (errS == nil) != (errR == nil) {
			t.Fatalf("step %d: error mismatch %v vs %v", i, errS, errR)
		}
		if ps != pr {
			t.Fatalf("step %d: prediction %v != %v", i, pr, ps)
		}
		ks, _, errS := s.PredictK(3)
		kr, _, errR := r.PredictK(3)
		if (errS == nil) != (errR == nil) {
			t.Fatalf("step %d: PredictK error mismatch %v vs %v", i, errS, errR)
		}
		for j := range ks {
			if ks[j] != kr[j] {
				t.Fatalf("step %d: k-step %d: %v != %v", i, j, kr[j], ks[j])
			}
		}
		actual := 0.48 + 0.07*float64(i%3)
		s.Observe(actual)
		r.Observe(actual)
	}
}

// TestSelectorRoundTripSeasonal covers the sarima kind tag.
func TestSelectorRoundTripSeasonal(t *testing.T) {
	train := trainSeries(300)
	sm, err := arima.FitSeasonal(train, arima.SeasonalOrder{
		Order: arima.Order{P: 1, D: 0, Q: 1}, SP: 1, SD: 0, SQ: 0, Period: 24,
	})
	if err != nil {
		t.Skipf("seasonal fit unavailable: %v", err)
	}
	s, err := NewSelector(train, Config{Window: 4}, NewCandidate("SARIMA", sm))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Predict(); err != nil {
		t.Fatal(err)
	}
	s.Observe(0.5)
	blob, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var r Selector
	if err := json.Unmarshal(blob, &r); err != nil {
		t.Fatal(err)
	}
	ps, errS := s.Predict()
	pr, errR := r.Predict()
	if errS != nil || errR != nil {
		t.Fatalf("predict errors: %v, %v", errS, errR)
	}
	if ps != pr {
		t.Fatalf("seasonal prediction %v != %v", pr, ps)
	}
}

// TestSelectorMarshalRejectsUnserializable pins the smoothing-family
// limitation: marshaling must fail loudly, not drop the candidate.
func TestSelectorMarshalRejectsUnserializable(t *testing.T) {
	train := trainSeries(120)
	holt, err := smoothing.Fit(train, smoothing.Config{Method: smoothing.Holt})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSelector(train, Config{}, NewCandidate("Holt", holt))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := json.Marshal(s); err == nil {
		t.Fatal("marshal of smoothing candidate succeeded, want error")
	}
}

// TestSelectorUnmarshalRejectsCorrupt exercises the validation paths.
func TestSelectorUnmarshalRejectsCorrupt(t *testing.T) {
	cases := []string{
		`{not json`,
		`{"candidates":[]}`,
		`{"candidates":[{"name":"x","kind":"mystery","model":{}}]}`,
		`{"candidates":[{"name":"x","kind":"arima","model":{"order":{"P":-1}}}]}`,
	}
	for _, c := range cases {
		var s Selector
		if err := json.Unmarshal([]byte(c), &s); err == nil {
			t.Errorf("corrupt selector %q accepted", c)
		}
	}
}
