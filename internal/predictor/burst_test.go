package predictor

import (
	"encoding/json"
	"math"
	"testing"

	"sheriff/internal/timeseries"
	"sheriff/internal/traces"
)

// stepSeries: calm noiseless baseline, then a sustained jump at t=onset.
func stepSeries(n, onset int, lo, hi float64) *timeseries.Series {
	return timeseries.FromFunc(n, func(t int) float64 {
		v := lo + 0.01*math.Sin(float64(t)/7)
		if t >= onset {
			v += hi - lo
		}
		return v
	})
}

func TestBurstDetectsStep(t *testing.T) {
	s := stepSeries(400, 200, 0.2, 0.7)
	b, err := FitBurst(s.Slice(0, 100), BurstConfig{})
	if err != nil {
		t.Fatal(err)
	}
	hist := s.Slice(0, 100)
	var preds []float64
	for tt := 100; tt < 400; tt++ {
		fc, err := b.ForecastFrom(hist, 1)
		if err != nil {
			t.Fatal(err)
		}
		preds = append(preds, fc[0])
		hist.Append(s.At(tt))
	}
	if b.Triggers() == 0 {
		t.Fatal("step change never triggered the detector")
	}
	// Within a few samples of the onset the forecast must sit near the new
	// level — that fast re-convergence is the whole point.
	idx := 200 - 100 + 5 // forecast for t=205
	if got := preds[idx]; math.Abs(got-0.7) > 0.1 {
		t.Errorf("forecast 5 steps after onset = %.3f, want near 0.7", got)
	}
}

func TestBurstQuietOnRamp(t *testing.T) {
	// A gentle constant-slope ramp is exactly what Holt tracks: the
	// residual stream stays near zero and the detector must stay quiet.
	s := timeseries.FromFunc(400, func(t int) float64 { return 0.2 + 0.0005*float64(t) })
	b, err := FitBurst(s.Slice(0, 100), BurstConfig{})
	if err != nil {
		t.Fatal(err)
	}
	hist := s.Slice(0, 100)
	for tt := 100; tt < 400; tt++ {
		if _, err := b.ForecastFrom(hist, 1); err != nil {
			t.Fatal(err)
		}
		hist.Append(s.At(tt))
	}
	if n := b.Triggers(); n > 1 {
		t.Errorf("ramp caused %d triggers, want <= 1", n)
	}
}

func TestBurstRecoversFromSpike(t *testing.T) {
	// A one-sample spike may trigger, but the forecast must return to the
	// baseline shortly after instead of chasing the outlier.
	s := timeseries.FromFunc(400, func(t int) float64 {
		if t == 250 {
			return 0.95
		}
		return 0.3 + 0.01*math.Sin(float64(t)/5)
	})
	b, err := FitBurst(s.Slice(0, 100), BurstConfig{})
	if err != nil {
		t.Fatal(err)
	}
	hist := s.Slice(0, 100)
	var last float64
	for tt := 100; tt < 400; tt++ {
		fc, err := b.ForecastFrom(hist, 1)
		if err != nil {
			t.Fatal(err)
		}
		last = fc[0]
		hist.Append(s.At(tt))
	}
	if math.Abs(last-0.3) > 0.1 {
		t.Errorf("forecast long after spike = %.3f, want near 0.3", last)
	}
}

func TestBurstIncrementalMatchesCold(t *testing.T) {
	s := stepSeries(300, 150, 0.25, 0.65)
	warm, err := FitBurst(s.Slice(0, 50), BurstConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Warm: fold incrementally, one append at a time.
	hist := s.Slice(0, 50)
	var warmFc []float64
	for tt := 50; tt < 300; tt++ {
		fc, err := warm.ForecastFrom(hist, 3)
		if err != nil {
			t.Fatal(err)
		}
		warmFc = append(warmFc, fc[2])
		hist.Append(s.At(tt))
	}
	// Cold: a fresh model folding each prefix from scratch.
	for i, tt := 0, 50; tt < 300; i, tt = i+1, tt+1 {
		cold, err := FitBurst(s.Slice(0, 50), BurstConfig{})
		if err != nil {
			t.Fatal(err)
		}
		fc, err := cold.ForecastFrom(s.Slice(0, tt), 3)
		if err != nil {
			t.Fatal(err)
		}
		if fc[2] != warmFc[i] {
			t.Fatalf("t=%d: incremental %.9f != cold %.9f", tt, warmFc[i], fc[2])
		}
	}
}

func TestBurstSerializeRoundTrip(t *testing.T) {
	s := stepSeries(300, 150, 0.25, 0.65)
	train, test := s.Split(0.5)
	sel, err := New(train, Options{Burst: true})
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < test.Len()/2; tt++ {
		if _, err := sel.Predict(); err != nil {
			t.Fatal(err)
		}
		sel.Observe(test.At(tt))
	}
	blob, err := json.Marshal(sel)
	if err != nil {
		t.Fatal(err)
	}
	restored := new(Selector)
	if err := json.Unmarshal(blob, restored); err != nil {
		t.Fatal(err)
	}
	for tt := test.Len() / 2; tt < test.Len(); tt++ {
		p1, err1 := sel.Predict()
		p2, err2 := restored.Predict()
		if err1 != nil || err2 != nil {
			t.Fatalf("predict: %v / %v", err1, err2)
		}
		if p1 != p2 || sel.Selection() != restored.Selection() {
			t.Fatalf("t=%d: restored diverged: %.9f/%q vs %.9f/%q",
				tt, p1, sel.Selection(), p2, restored.Selection())
		}
		sel.Observe(test.At(tt))
		restored.Observe(test.At(tt))
	}
}

// aggSeries builds the rack-level stress series a regional pre-alert
// watches: the mean peak utilization across the rack's VMs.
func aggSeries(kind traces.Kind, params traces.SurgeParams, seed int64, vms, n int) *timeseries.Series {
	gen, err := traces.New(traces.Options{Kind: kind, Seed: seed, Hours: (n + traces.SamplesPerHour - 1) / traces.SamplesPerHour, Surge: params})
	if err != nil {
		panic(err)
	}
	srcs := make([]traces.Source, vms)
	for i := range srcs {
		srcs[i] = gen.Source(i, 0)
	}
	return timeseries.FromFunc(n, func(int) float64 {
		sum := 0.0
		for _, s := range srcs {
			sum += s.Next().Max()
		}
		return sum / float64(vms)
	})
}

// TestBurstWinsSelectionUnderSurge is the acceptance-criteria test: under
// a surge regime the burst candidate takes the sliding-window-MSE
// selection, while on the default diurnal trace the classical pool (led
// by ARIMA) keeps it — the selector routes regimes to the right model.
func TestBurstWinsSelectionUnderSurge(t *testing.T) {
	run := func(kind traces.Kind, params traces.SurgeParams) map[string]float64 {
		s := aggSeries(kind, params, 9, 8, 720)
		train, test := s.Split(0.5)
		sel, err := New(train, Options{Burst: true, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		_, winShare, err := sel.Run(test)
		if err != nil {
			t.Fatal(err)
		}
		return winShare
	}

	surge := run(traces.Surge, traces.SurgeParams{FlashWeight: 1, Intensity: 1.5})
	best, bestShare := "", -1.0
	for name, share := range surge {
		if share > bestShare {
			best, bestShare = name, share
		}
	}
	if best != "Burst" {
		t.Errorf("surge winner = %q (%.0f%%), want Burst (shares %v)", best, 100*bestShare, surge)
	}

	diurnal := run(traces.Diurnal, traces.SurgeParams{})
	if share := diurnal["Burst"]; share > 0.5 {
		t.Errorf("Burst won %.0f%% of diurnal steps, want classical pool to lead (shares %v)", 100*share, diurnal)
	}
}
