package predictor

import (
	"encoding/json"
	"fmt"
	"math"

	"sheriff/internal/arima"
	"sheriff/internal/narnet"
	"sheriff/internal/timeseries"
)

// Forecaster kind tags used in the serialized form. Exponential-smoothing
// candidates have no serializer and make MarshalJSON fail with a clear
// error rather than silently dropping a pool member.
const (
	kindARIMA   = "arima"
	kindSARIMA  = "sarima"
	kindNARNET  = "narnet"
	kindBurst   = "burst"
	kindUnknown = ""
)

// candidateJSON is one serialized pool member: the kind tag picks the
// concrete forecaster type on restore, and the rolling MSE ring travels
// whole so fitness ranking resumes exactly where it stopped.
type candidateJSON struct {
	Name  string                 `json:"name"`
	Kind  string                 `json:"kind"`
	Model json.RawMessage        `json:"model"`
	MSE   *timeseries.RollingMSE `json:"mse"`
}

// selectorJSON is the serialized form of a Selector. LastPred uses NaN
// for candidates that failed to forecast; since JSON has no NaN, the
// cached predictions are only carried when valid (HavePred), encoded as
// pointers with nil standing in for NaN.
type selectorJSON struct {
	Candidates   []candidateJSON `json:"candidates"`
	History      []float64       `json:"history"`
	LastPred     []*float64      `json:"last_pred,omitempty"`
	HavePred     bool            `json:"have_pred"`
	Selection    int             `json:"selection"`
	HasSelection bool            `json:"has_selection"`
}

func forecasterKind(f Forecaster) string {
	switch f.(type) {
	case *arima.Model:
		return kindARIMA
	case *arima.SeasonalModel:
		return kindSARIMA
	case *narnet.Network:
		return kindNARNET
	case *Burst:
		return kindBurst
	default:
		return kindUnknown
	}
}

// MarshalJSON serializes the selector: every candidate's model and
// rolling fitness window, the shared history, and the selection state, so
// a restored selector predicts and ranks bit-identically to one that
// never stopped. Candidates whose forecaster type has no serializer
// (the smoothing family) are an error.
func (s *Selector) MarshalJSON() ([]byte, error) {
	dto := selectorJSON{
		Candidates:   make([]candidateJSON, len(s.candidates)),
		History:      s.history.Values(),
		HavePred:     s.havePred,
		Selection:    s.selection,
		HasSelection: s.hasSelection,
	}
	for i, c := range s.candidates {
		kind := forecasterKind(c.F)
		if kind == kindUnknown {
			return nil, fmt.Errorf("predictor: candidate %q: forecaster type %T has no serializer", c.Name, c.F)
		}
		blob, err := json.Marshal(c.F)
		if err != nil {
			return nil, fmt.Errorf("predictor: candidate %q: %w", c.Name, err)
		}
		dto.Candidates[i] = candidateJSON{Name: c.Name, Kind: kind, Model: blob, MSE: c.mse}
	}
	if s.havePred {
		dto.LastPred = make([]*float64, len(s.lastPred))
		for i, p := range s.lastPred {
			if !math.IsNaN(p) {
				v := p
				dto.LastPred[i] = &v
			}
		}
	}
	return json.Marshal(dto)
}

// UnmarshalJSON restores a selector serialized by MarshalJSON.
func (s *Selector) UnmarshalJSON(b []byte) error {
	var dto selectorJSON
	if err := json.Unmarshal(b, &dto); err != nil {
		return fmt.Errorf("predictor: unmarshal: %w", err)
	}
	if len(dto.Candidates) == 0 {
		return fmt.Errorf("predictor: unmarshal: empty candidate pool")
	}
	cands := make([]*Candidate, len(dto.Candidates))
	for i, cj := range dto.Candidates {
		var f Forecaster
		switch cj.Kind {
		case kindARIMA:
			f = new(arima.Model)
		case kindSARIMA:
			f = new(arima.SeasonalModel)
		case kindNARNET:
			f = new(narnet.Network)
		case kindBurst:
			f = new(Burst)
		default:
			return fmt.Errorf("predictor: unmarshal: candidate %q has unknown kind %q", cj.Name, cj.Kind)
		}
		if err := json.Unmarshal(cj.Model, f); err != nil {
			return fmt.Errorf("predictor: unmarshal candidate %q: %w", cj.Name, err)
		}
		if cj.MSE == nil {
			return fmt.Errorf("predictor: unmarshal: candidate %q missing mse state", cj.Name)
		}
		cands[i] = &Candidate{Name: cj.Name, F: f, mse: cj.MSE}
	}
	if dto.Selection < 0 || dto.Selection >= len(cands) {
		return fmt.Errorf("predictor: unmarshal: selection %d out of range", dto.Selection)
	}
	lastPred := make([]float64, len(cands))
	havePred := dto.HavePred
	if havePred {
		if len(dto.LastPred) != len(cands) {
			return fmt.Errorf("predictor: unmarshal: %d cached predictions for %d candidates",
				len(dto.LastPred), len(cands))
		}
		for i, p := range dto.LastPred {
			if p == nil {
				lastPred[i] = math.NaN()
			} else {
				lastPred[i] = *p
			}
		}
	}
	s.candidates = cands
	s.history = timeseries.New(dto.History)
	s.lastPred = lastPred
	s.havePred = havePred
	s.selection = dto.Selection
	s.hasSelection = dto.HasSelection
	return nil
}
