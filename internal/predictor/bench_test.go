package predictor

import (
	"math"
	"testing"

	"sheriff/internal/arima"
	"sheriff/internal/smoothing"
	"sheriff/internal/timeseries"
)

// benchSeries is a deterministic daily-period workload trace.
func benchSeries(n int) *timeseries.Series {
	return timeseries.FromFunc(n, func(t int) float64 {
		return 0.5 + 0.3*math.Sin(2*math.Pi*float64(t)/24) + 0.05*math.Sin(float64(t)*1.7)
	})
}

// BenchmarkSelectorPredict measures one Predict/Observe cycle of the
// dynamic selection loop after a long accumulated history — the per-VM
// per-period cost of the shim prediction phase. Run with a fixed iteration
// count for before/after comparisons (the history keeps growing):
//
//	go test -run - -bench BenchmarkSelectorPredict -benchtime 2000x ./internal/predictor/
func BenchmarkSelectorPredict(b *testing.B) {
	train := benchSeries(200)
	var cands []*Candidate
	for _, o := range []arima.Order{{P: 1, D: 1, Q: 1}, {P: 2, D: 1, Q: 2}} {
		m, err := arima.Fit(train, o)
		if err != nil {
			b.Fatal(err)
		}
		cands = append(cands, NewCandidate(o.String(), m))
	}
	hm, err := smoothing.Fit(train, smoothing.Config{Method: smoothing.Holt})
	if err != nil {
		b.Fatal(err)
	}
	cands = append(cands, NewCandidate("Holt", hm))
	sel, err := NewSelector(train, Config{}, cands...)
	if err != nil {
		b.Fatal(err)
	}
	// Accumulate a long history so the per-call cost reflects a
	// long-running shim, then measure steady-state cycles.
	next := func(t int) float64 {
		return 0.5 + 0.3*math.Sin(2*math.Pi*float64(t)/24) + 0.05*math.Sin(float64(t)*1.7)
	}
	t := train.Len()
	for ; t < 4000; t++ {
		if _, err := sel.Predict(); err != nil {
			b.Fatal(err)
		}
		sel.Observe(next(t))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sel.Predict(); err != nil {
			b.Fatal(err)
		}
		sel.Observe(next(t))
		t++
	}
}
