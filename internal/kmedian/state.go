package kmedian

import "math"

// state is the incrementally maintained search state of LocalSearch: the
// open set plus, per client, the nearest and second-nearest open facility.
// With these caches a trial swap's cost is computed in O(clients) instead
// of the O(clients × K) of a cold evaluate, and an applied swap updates
// the caches in place (an O(K) rescan only for the few clients whose top-2
// contained a closed facility).
//
// Bit-exactness invariant: d1, Cost, and the per-client service distances
// produced by trialSingle/trialMulti are identical — not merely within an
// epsilon — to what a cold evaluate over the same open set returns. Trial
// costs are therefore computed as full per-client sums in client order
// (never as running deltas), so no floating-point drift can accumulate
// across swaps. equiv_test.go pins this.
type state struct {
	in     *Instance
	open   []int  // current open facilities, in swap-stable order
	isOpen []bool // isOpen[f] for every facility/node index

	n1, n2 []int     // per client: nearest / second-nearest open facility (-1 if none)
	d1, d2 []float64 // their distances (d2 = +Inf when K == 1)
	cost   float64   // sum of d1 in client order (== cold evaluate total)
}

func newState(in *Instance, open []int) *state {
	st := &state{
		in:     in,
		open:   append([]int(nil), open...),
		isOpen: make([]bool, len(in.Cost)),
		n1:     make([]int, len(in.Clients)),
		n2:     make([]int, len(in.Clients)),
		d1:     make([]float64, len(in.Clients)),
		d2:     make([]float64, len(in.Clients)),
	}
	for _, f := range st.open {
		st.isOpen[f] = true
	}
	for ci := range in.Clients {
		st.rescanTop2(ci)
	}
	st.recomputeCost()
	return st
}

// rescanTop2 recomputes client ci's nearest and second-nearest open
// facility by a full scan of the open set, with the same strict-< running
// minimum as evaluate (so ties resolve to the earlier facility in open
// order and d1 is bit-equal to evaluate's per-client minimum).
func (st *state) rescanTop2(ci int) {
	c := st.in.Clients[ci]
	row := st.in.Cost[c]
	b1, b2 := math.Inf(1), math.Inf(1)
	f1, f2 := -1, -1
	for _, f := range st.open {
		d := row[f]
		if d < b1 {
			b2, f2 = b1, f1
			b1, f1 = d, f
		} else if d < b2 {
			b2, f2 = d, f
		}
	}
	st.n1[ci], st.d1[ci] = f1, b1
	st.n2[ci], st.d2[ci] = f2, b2
}

// recomputeCost re-sums the per-client service distances in client order —
// the same summation a cold evaluate performs, so st.cost stays bit-equal
// to evaluate(in, open)'s total.
func (st *state) recomputeCost() {
	total := 0.0
	for ci := range st.in.Clients {
		total += st.d1[ci]
	}
	st.cost = total
}

// trialSingle returns the total cost of the solution obtained by closing
// `out` and opening `f`, in O(clients). For each client the new service
// distance is min(candidate, kept) where kept is d1 if the client's
// nearest survives the swap and d2 otherwise — exactly the minimum a cold
// evaluate would find over open \ {out} ∪ {f}.
func (st *state) trialSingle(out, f int) float64 {
	cost := st.in.Cost
	total := 0.0
	for ci, c := range st.in.Clients {
		d := cost[c][f]
		base := st.d1[ci]
		if st.n1[ci] == out {
			base = st.d2[ci]
		}
		if d < base {
			base = d
		}
		total += base
	}
	return total
}

// trialMulti is trialSingle generalized to a p-swap: close every facility
// in outs, open every facility in ins. The surviving-open minimum is d1 if
// the nearest survives, d2 if only the second-nearest does, and an O(K)
// scan in the (rare) case both were closed. outs and ins are small (≤ p).
func (st *state) trialMulti(outs, ins []int) float64 {
	cost := st.in.Cost
	total := 0.0
	for ci, c := range st.in.Clients {
		row := cost[c]
		best := math.Inf(1)
		for _, f := range ins {
			if d := row[f]; d < best {
				best = d
			}
		}
		switch {
		case !containsInt(outs, st.n1[ci]):
			if st.d1[ci] < best {
				best = st.d1[ci]
			}
		case st.n2[ci] >= 0 && !containsInt(outs, st.n2[ci]):
			if st.d2[ci] < best {
				best = st.d2[ci]
			}
		default:
			for _, f := range st.open {
				if containsInt(outs, f) {
					continue
				}
				if d := row[f]; d < best {
					best = d
				}
			}
		}
		total += best
	}
	return total
}

// apply commits a swap: outs leave the open set, ins join it, and the
// per-client caches are updated in place. Clients whose top-2 contained a
// closed facility are rescanned (O(K)); every other client only folds the
// new facilities into its cached pair (O(p)). The total cost is then
// re-summed in client order to stay bit-equal with a cold evaluate.
func (st *state) apply(outs, ins []int) {
	replaceAll(st.open, outs, ins)
	for _, f := range outs {
		st.isOpen[f] = false
	}
	for _, f := range ins {
		st.isOpen[f] = true
	}
	cost := st.in.Cost
	for ci, c := range st.in.Clients {
		if containsInt(outs, st.n1[ci]) || (st.n2[ci] >= 0 && containsInt(outs, st.n2[ci])) {
			st.rescanTop2(ci)
			continue
		}
		row := cost[c]
		for _, f := range ins {
			d := row[f]
			if d < st.d1[ci] {
				st.n2[ci], st.d2[ci] = st.n1[ci], st.d1[ci]
				st.n1[ci], st.d1[ci] = f, d
			} else if d < st.d2[ci] {
				st.n2[ci], st.d2[ci] = f, d
			}
		}
	}
	st.recomputeCost()
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// replaceAll substitutes outs[k] with ins[k] in place, preserving slice
// positions (so the open/closed scan orders stay deterministic).
func replaceAll(sol []int, outs, ins []int) {
	for k, o := range outs {
		for i, f := range sol {
			if f == o {
				sol[i] = ins[k]
				break
			}
		}
	}
}
