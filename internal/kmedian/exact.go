package kmedian

import (
	"math"
	"sort"
)

// Exact solves the instance optimally by branch-and-bound over K-subsets
// of facilities, replacing the seed's full enumeration. The search keeps
// per-client service distances for the partial selection and prunes with
// the lower bound Σ_c min(dS[c], suffMin[i][c]): no completion drawing its
// remaining facilities from positions ≥ i can serve client c cheaper than
// the best of the already-chosen set and the best facility still
// available. The bound is monotone in i (fewer facilities remain), so once
// one loop position prunes, the rest of the level prunes with it.
//
// A p=1 Local Search run seeds the incumbent, which is what gives the
// pruning its teeth: LS typically lands within a few percent of OPT, so
// most of the C(|F|, K) tree falls to the bound. The returned cost equals
// the enumeration optimum exactly (equiv_test.go checks bit-equality);
// only the identity of cost-tied optima may differ.
func Exact(in *Instance) (*Solution, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	nF := len(in.Facilities)
	nC := len(in.Clients)

	// Incumbent upper bound from the (deterministic) local search.
	inc, err := LocalSearch(in, Options{P: 1, Seed: 0})
	if err != nil {
		return nil, err
	}
	best := inc.Cost
	bestOpen := append([]int(nil), inc.Open...)

	// suffMin[i][ci] = min cost from client ci to any facility at position
	// ≥ i in the Facilities order.
	suffMin := make([][]float64, nF+1)
	suffMin[nF] = make([]float64, nC)
	for ci := range suffMin[nF] {
		suffMin[nF][ci] = math.Inf(1)
	}
	for i := nF - 1; i >= 0; i-- {
		f := in.Facilities[i]
		row := make([]float64, nC)
		for ci, c := range in.Clients {
			d := in.Cost[c][f]
			if s := suffMin[i+1][ci]; s < d {
				d = s
			}
			row[ci] = d
		}
		suffMin[i] = row
	}

	// Per-depth scratch for the partial-selection service distances, so the
	// DFS allocates nothing per node.
	dS := make([][]float64, in.K+1)
	for d := range dS {
		dS[d] = make([]float64, nC)
	}
	for ci := range dS[0] {
		dS[0][ci] = math.Inf(1)
	}
	chosen := make([]int, in.K)

	var rec func(start, depth int)
	rec = func(start, depth int) {
		cur := dS[depth]
		if depth == in.K {
			total := 0.0
			for ci := range cur {
				total += cur[ci]
			}
			if total < best {
				best = total
				bestOpen = append(bestOpen[:0], chosen...)
			}
			return
		}
		for i := start; i <= nF-(in.K-depth); i++ {
			lb := 0.0
			for ci := range cur {
				d := cur[ci]
				if s := suffMin[i][ci]; s < d {
					d = s
				}
				lb += d
			}
			if lb >= best {
				// suffMin only grows with i, so every later position at
				// this level is bounded out too.
				return
			}
			f := in.Facilities[i]
			next := dS[depth+1]
			for ci, c := range in.Clients {
				d := cur[ci]
				if w := in.Cost[c][f]; w < d {
					d = w
				}
				next[ci] = d
			}
			chosen[depth] = f
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)

	assign, total := evaluate(in, bestOpen)
	sorted := append([]int(nil), bestOpen...)
	sort.Ints(sorted)
	return &Solution{Open: sorted, Assignment: assign, Cost: total}, nil
}
