package kmedian

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// lineInstance places n points on a line with |i-j| distances.
func lineInstance(n, k int) *Instance {
	cost := make([][]float64, n)
	idx := make([]int, n)
	for i := range cost {
		idx[i] = i
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			cost[i][j] = math.Abs(float64(i - j))
		}
	}
	return &Instance{Cost: cost, Clients: idx, Facilities: idx, K: k}
}

// randomMetricInstance embeds n points uniformly in the unit square and
// uses Euclidean distances (a true metric, as the guarantee requires).
func randomMetricInstance(n, k int, seed int64) *Instance {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i], ys[i] = rng.Float64(), rng.Float64()
	}
	cost := make([][]float64, n)
	idx := make([]int, n)
	for i := range cost {
		idx[i] = i
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			cost[i][j] = math.Hypot(xs[i]-xs[j], ys[i]-ys[j])
		}
	}
	return &Instance{Cost: cost, Clients: idx, Facilities: idx, K: k}
}

func TestValidate(t *testing.T) {
	if err := (&Instance{}).Validate(); err == nil {
		t.Error("empty instance accepted")
	}
	in := lineInstance(5, 2)
	if err := in.Validate(); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
	in.K = 9
	if err := in.Validate(); err == nil {
		t.Error("K > facilities accepted")
	}
	in = lineInstance(5, 2)
	in.Clients = []int{7}
	if err := in.Validate(); err == nil {
		t.Error("out-of-range client accepted")
	}
	in = lineInstance(5, 2)
	in.Cost[1] = in.Cost[1][:2]
	if err := in.Validate(); err == nil {
		t.Error("ragged cost accepted")
	}
}

func TestExactTrivial(t *testing.T) {
	// Two clusters on a line: {0,1,2} and {10,11,12} (as indices scaled).
	in := lineInstance(6, 2)
	// Stretch the gap between index 2 and 3.
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			a, b := float64(i), float64(j)
			if i >= 3 {
				a += 50
			}
			if j >= 3 {
				b += 50
			}
			in.Cost[i][j] = math.Abs(a - b)
		}
	}
	sol, err := Exact(in)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: medians at 1 and 4, cost 2+2 = 4.
	if sol.Cost != 4 {
		t.Fatalf("Exact cost = %v, want 4 (open %v)", sol.Cost, sol.Open)
	}
	if sol.Open[0] != 1 || sol.Open[1] != 4 {
		t.Fatalf("Exact open = %v, want [1 4]", sol.Open)
	}
}

func TestExactKEqualsN(t *testing.T) {
	in := lineInstance(4, 4)
	sol, err := Exact(in)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 0 {
		t.Fatalf("all-open cost = %v, want 0", sol.Cost)
	}
}

func TestLocalSearchMatchesExactOnLine(t *testing.T) {
	in := lineInstance(9, 3)
	ls, err := LocalSearch(in, Options{P: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := Exact(in)
	if err != nil {
		t.Fatal(err)
	}
	if ls.Cost > ex.Cost+1e-9 {
		// Local search may land in a local optimum; but it must stay
		// within the guarantee.
		if ls.Cost > ApproximationRatio(1)*ex.Cost+1e-9 {
			t.Fatalf("LS cost %v violates 5×OPT = %v", ls.Cost, 5*ex.Cost)
		}
	}
}

func TestLocalSearchAssignmentConsistency(t *testing.T) {
	in := randomMetricInstance(20, 4, 3)
	sol, err := LocalSearch(in, Options{P: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Open) != 4 {
		t.Fatalf("open = %v, want 4 facilities", sol.Open)
	}
	openSet := map[int]bool{}
	for _, f := range sol.Open {
		openSet[f] = true
	}
	total := 0.0
	for ci, c := range in.Clients {
		f := sol.Assignment[ci]
		if !openSet[f] {
			t.Fatalf("client %d assigned to closed facility %d", c, f)
		}
		// Must be the nearest open facility.
		for _, g := range sol.Open {
			if in.Cost[c][g] < in.Cost[c][f]-1e-12 {
				t.Fatalf("client %d not assigned to nearest facility", c)
			}
		}
		total += in.Cost[c][f]
	}
	if math.Abs(total-sol.Cost) > 1e-9 {
		t.Fatalf("cost %v does not match assignment total %v", sol.Cost, total)
	}
}

// TestLocalSearchApproximationRatio validates the paper's headline claim:
// Alg. 5 with swap size p yields cost ≤ (3 + 2/p)·OPT on metric instances.
func TestLocalSearchApproximationRatio(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		for _, p := range []int{1, 2} {
			in := randomMetricInstance(14, 3, seed)
			ls, err := LocalSearch(in, Options{P: p, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			ex, err := Exact(in)
			if err != nil {
				t.Fatal(err)
			}
			bound := ApproximationRatio(p)*ex.Cost + 1e-9
			if ls.Cost > bound {
				t.Errorf("seed %d p=%d: LS %.4f > (3+2/%d)·OPT %.4f", seed, p, ls.Cost, p, bound)
			}
		}
	}
}

func TestLocalSearchP2NotWorseThanP1(t *testing.T) {
	worse := 0
	for seed := int64(0); seed < 8; seed++ {
		in := randomMetricInstance(16, 4, seed+100)
		p1, err := LocalSearch(in, Options{P: 1, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		p2, err := LocalSearch(in, Options{P: 2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if p2.Cost > p1.Cost+1e-9 {
			worse++
		}
	}
	// p=2 explores a superset of p=1 swaps from the same start; allow at
	// most occasional randomization noise.
	if worse > 2 {
		t.Errorf("p=2 was worse than p=1 in %d/8 runs", worse)
	}
}

func TestLocalSearchMaxSwapsCap(t *testing.T) {
	in := randomMetricInstance(30, 5, 7)
	sol, err := LocalSearch(in, Options{P: 1, Seed: 7, MaxSwaps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Swaps > 1 {
		t.Fatalf("swaps = %d, cap was 1", sol.Swaps)
	}
}

func TestLocalSearchDeterministicWithSeed(t *testing.T) {
	in := randomMetricInstance(15, 3, 9)
	a, err := LocalSearch(in, Options{P: 1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := LocalSearch(in, Options{P: 1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost {
		t.Fatalf("same seed, different cost: %v vs %v", a.Cost, b.Cost)
	}
}

func TestApproximationRatio(t *testing.T) {
	if ApproximationRatio(1) != 5 {
		t.Errorf("ratio(1) = %v, want 5", ApproximationRatio(1))
	}
	if ApproximationRatio(2) != 4 {
		t.Errorf("ratio(2) = %v, want 4", ApproximationRatio(2))
	}
	if ApproximationRatio(0) != 5 {
		t.Errorf("ratio(0) should clamp to p=1")
	}
}

func TestCombinations(t *testing.T) {
	c := combinations([]int{1, 2, 3}, 2)
	if len(c) != 3 {
		t.Fatalf("C(3,2) = %d, want 3", len(c))
	}
	c = combinations([]int{1, 2, 3, 4}, 1)
	if len(c) != 4 {
		t.Fatalf("C(4,1) = %d, want 4", len(c))
	}
	if got := combinations([]int{1}, 2); len(got) != 0 {
		t.Fatalf("C(1,2) = %d, want 0", len(got))
	}
}

// Property: local search cost is never below the exact optimum and never
// above the guarantee, over random metric instances.
func TestLocalSearchBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		in := randomMetricInstance(10, 2, seed)
		ls, err := LocalSearch(in, Options{P: 1, Seed: seed})
		if err != nil {
			return false
		}
		ex, err := Exact(in)
		if err != nil {
			return false
		}
		return ls.Cost >= ex.Cost-1e-9 && ls.Cost <= 5*ex.Cost+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
