package kmedian

import (
	"math"
	"math/rand"
	"sort"
)

// This file preserves the seed's naive solvers verbatim (modulo the
// sort.Ints cleanup): referenceLocalSearch re-evaluates every trial swap
// from scratch and materializes both combination sets per scan, and
// referenceExact enumerates every K-subset. They are the ground truth for
// the equivalence tests and the "before" side of BENCH_kmedian.json — kept
// unexported so production callers can only reach the fast paths.

// referenceLocalSearch is the seed's Alg. 5: cold evaluate per trial swap,
// materialized combination slices, randomized scan order.
func referenceLocalSearch(in *Instance, opts Options) (*Solution, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))

	perm := rng.Perm(len(in.Facilities))
	open := make([]int, in.K)
	for i := 0; i < in.K; i++ {
		open[i] = in.Facilities[perm[i]]
	}
	openSet := make(map[int]bool, in.K)
	for _, f := range open {
		openSet[f] = true
	}
	_, cur := evaluate(in, open)

	swaps := 0
	for swaps < opts.MaxSwaps {
		improved := false
		for size := 1; size <= opts.P && !improved; size++ {
			if sw := findImprovingSwap(in, open, openSet, cur, size, opts.Epsilon, rng); sw != nil {
				applySwap(open, openSet, sw.out, sw.in)
				_, cur = evaluate(in, open)
				swaps++
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	assign, total := evaluate(in, open)
	sorted := append([]int(nil), open...)
	sort.Ints(sorted)
	return &Solution{Open: sorted, Assignment: assign, Cost: total, Swaps: swaps}, nil
}

type swap struct {
	out, in []int
}

// findImprovingSwap searches for a swap of exactly `size` facilities that
// lowers the cost by more than eps, scanning in randomized order and
// returning the first improvement found.
func findImprovingSwap(in *Instance, open []int, openSet map[int]bool, cur float64, size int, eps float64, rng *rand.Rand) *swap {
	var closed []int
	for _, f := range in.Facilities {
		if !openSet[f] {
			closed = append(closed, f)
		}
	}
	if len(closed) < size || len(open) < size {
		return nil
	}
	outSets := combinations(open, size)
	inSets := combinations(closed, size)
	rng.Shuffle(len(outSets), func(i, j int) { outSets[i], outSets[j] = outSets[j], outSets[i] })
	rng.Shuffle(len(inSets), func(i, j int) { inSets[i], inSets[j] = inSets[j], inSets[i] })

	trial := make([]int, len(open))
	for _, outs := range outSets {
		for _, ins := range inSets {
			copy(trial, open)
			replaceAll(trial, outs, ins)
			if _, c := evaluate(in, trial); c < cur-eps {
				return &swap{out: outs, in: ins}
			}
		}
	}
	return nil
}

// combinations returns all size-element subsets of items, in the
// lexicographic position order that unrankComb addresses.
func combinations(items []int, size int) [][]int {
	var out [][]int
	cur := make([]int, 0, size)
	var rec func(start int)
	rec = func(start int) {
		if len(cur) == size {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := start; i <= len(items)-(size-len(cur)); i++ {
			cur = append(cur, items[i])
			rec(i + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	return out
}

func applySwap(open []int, openSet map[int]bool, outs, ins []int) {
	replaceAll(open, outs, ins)
	for _, o := range outs {
		delete(openSet, o)
	}
	for _, i := range ins {
		openSet[i] = true
	}
}

// referenceExact is the seed's brute force: evaluate every K-subset.
func referenceExact(in *Instance) (*Solution, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	bestCost := math.Inf(1)
	var bestOpen []int
	subsets := combinations(in.Facilities, in.K)
	for _, open := range subsets {
		if _, c := evaluate(in, open); c < bestCost {
			bestCost = c
			bestOpen = open
		}
	}
	assign, total := evaluate(in, bestOpen)
	sorted := append([]int(nil), bestOpen...)
	sort.Ints(sorted)
	return &Solution{Open: sorted, Assignment: assign, Cost: total}, nil
}
