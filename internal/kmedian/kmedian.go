// Package kmedian implements the k-median machinery of the paper's
// Sec. V.A: the VMMIGRATION problem is reduced to k-median over the rack
// cost matrix (C = source ToRs, F = all ToRs), and solved with the p-swap
// Local Search of Alg. 5 (Arya et al., the paper's [29]), which carries
// the 3 + 2/p approximation guarantee. An exact brute-force solver over
// small instances provides the "global optimal" reference.
package kmedian

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Instance is one k-median instance. Cost[i][j] is the cost of connecting
// client i to facility j; Clients and Facilities index into Cost (rack
// indices in the Sheriff reduction).
type Instance struct {
	Cost       [][]float64
	Clients    []int
	Facilities []int
	K          int
}

// Validate reports whether the instance is well formed.
func (in *Instance) Validate() error {
	n := len(in.Cost)
	if n == 0 {
		return errors.New("kmedian: empty cost matrix")
	}
	for i, row := range in.Cost {
		if len(row) != n {
			return fmt.Errorf("kmedian: cost row %d has %d entries, want %d", i, len(row), n)
		}
	}
	if len(in.Clients) == 0 {
		return errors.New("kmedian: no clients")
	}
	if len(in.Facilities) == 0 {
		return errors.New("kmedian: no facilities")
	}
	if in.K < 1 || in.K > len(in.Facilities) {
		return fmt.Errorf("kmedian: K = %d out of range [1, %d]", in.K, len(in.Facilities))
	}
	for _, c := range in.Clients {
		if c < 0 || c >= n {
			return fmt.Errorf("kmedian: client index %d out of range", c)
		}
	}
	for _, f := range in.Facilities {
		if f < 0 || f >= n {
			return fmt.Errorf("kmedian: facility index %d out of range", f)
		}
	}
	return nil
}

// Solution is a set of open facilities with the induced assignment.
type Solution struct {
	Open       []int // open facility indices (subset of Facilities)
	Assignment []int // Assignment[i] = open facility serving Clients[i]
	Cost       float64
	Swaps      int // number of improving swaps applied (LocalSearch only)
}

// evaluate computes the optimal assignment of clients to the open set.
func evaluate(in *Instance, open []int) ([]int, float64) {
	assign := make([]int, len(in.Clients))
	total := 0.0
	for ci, c := range in.Clients {
		best := math.Inf(1)
		bestF := -1
		for _, f := range open {
			if d := in.Cost[c][f]; d < best {
				best, bestF = d, f
			}
		}
		assign[ci] = bestF
		total += best
	}
	return assign, total
}

// Options tunes LocalSearch.
type Options struct {
	P        int   // swap size p of Alg. 5 (ratio 3 + 2/p); default 1
	Seed     int64 // randomization seed for the initial solution and scan order
	MaxSwaps int   // safety cap on improving swaps; default 100000
	Epsilon  float64
}

func (o Options) withDefaults() Options {
	if o.P < 1 {
		o.P = 1
	}
	if o.MaxSwaps <= 0 {
		o.MaxSwaps = 100000
	}
	if o.Epsilon <= 0 {
		o.Epsilon = 1e-9
	}
	return o
}

// LocalSearch runs Alg. 5: start from an arbitrary feasible solution of K
// facilities and keep applying improving swaps of up to P facilities until
// none exists. The result is a (3 + 2/P)-approximation of the optimum.
func LocalSearch(in *Instance, opts Options) (*Solution, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))

	// Arbitrary feasible start: a random K-subset of facilities.
	perm := rng.Perm(len(in.Facilities))
	open := make([]int, in.K)
	for i := 0; i < in.K; i++ {
		open[i] = in.Facilities[perm[i]]
	}
	openSet := make(map[int]bool, in.K)
	for _, f := range open {
		openSet[f] = true
	}
	_, cur := evaluate(in, open)

	swaps := 0
	for swaps < opts.MaxSwaps {
		improved := false
		// p = 1 swaps first (cheap and usually sufficient), then widen to
		// the configured swap size.
		for size := 1; size <= opts.P && !improved; size++ {
			if sw := findImprovingSwap(in, open, openSet, cur, size, opts.Epsilon, rng); sw != nil {
				applySwap(open, openSet, sw.out, sw.in)
				_, cur = evaluate(in, open)
				swaps++
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	assign, total := evaluate(in, open)
	sorted := append([]int(nil), open...)
	sortInts(sorted)
	return &Solution{Open: sorted, Assignment: assign, Cost: total, Swaps: swaps}, nil
}

type swap struct {
	out, in []int
}

// findImprovingSwap searches for a swap of exactly `size` facilities that
// lowers the cost by more than eps, scanning in randomized order and
// returning the first improvement found.
func findImprovingSwap(in *Instance, open []int, openSet map[int]bool, cur float64, size int, eps float64, rng *rand.Rand) *swap {
	// Closed facilities.
	var closed []int
	for _, f := range in.Facilities {
		if !openSet[f] {
			closed = append(closed, f)
		}
	}
	if len(closed) < size || len(open) < size {
		return nil
	}
	outSets := combinations(open, size)
	inSets := combinations(closed, size)
	rng.Shuffle(len(outSets), func(i, j int) { outSets[i], outSets[j] = outSets[j], outSets[i] })
	rng.Shuffle(len(inSets), func(i, j int) { inSets[i], inSets[j] = inSets[j], inSets[i] })

	trial := make([]int, len(open))
	for _, outs := range outSets {
		for _, ins := range inSets {
			copy(trial, open)
			replace(trial, outs, ins)
			if _, c := evaluate(in, trial); c < cur-eps {
				return &swap{out: outs, in: ins}
			}
		}
	}
	return nil
}

// combinations returns all size-element subsets of items. For size 1 this
// is one slice per element; callers keep size ≤ p (small).
func combinations(items []int, size int) [][]int {
	var out [][]int
	cur := make([]int, 0, size)
	var rec func(start int)
	rec = func(start int) {
		if len(cur) == size {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := start; i <= len(items)-(size-len(cur)); i++ {
			cur = append(cur, items[i])
			rec(i + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	return out
}

func replace(sol []int, outs, ins []int) {
	for k, o := range outs {
		for i, f := range sol {
			if f == o {
				sol[i] = ins[k]
				break
			}
		}
	}
}

func applySwap(open []int, openSet map[int]bool, outs, ins []int) {
	replace(open, outs, ins)
	for _, o := range outs {
		delete(openSet, o)
	}
	for _, i := range ins {
		openSet[i] = true
	}
}

// Exact solves the instance optimally by enumerating every K-subset of
// facilities. Exponential; intended for the small "global optimal"
// baselines of Figs. 11/13 and for ratio validation.
func Exact(in *Instance) (*Solution, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	bestCost := math.Inf(1)
	var bestOpen []int
	subsets := combinations(in.Facilities, in.K)
	for _, open := range subsets {
		if _, c := evaluate(in, open); c < bestCost {
			bestCost = c
			bestOpen = open
		}
	}
	assign, total := evaluate(in, bestOpen)
	sorted := append([]int(nil), bestOpen...)
	sortInts(sorted)
	return &Solution{Open: sorted, Assignment: assign, Cost: total}, nil
}

// ApproximationRatio returns the guarantee of Alg. 5 for swap size p.
func ApproximationRatio(p int) float64 {
	if p < 1 {
		p = 1
	}
	return 3 + 2/float64(p)
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
