// Package kmedian implements the k-median machinery of the paper's
// Sec. V.A: the VMMIGRATION problem is reduced to k-median over the rack
// cost matrix (C = source ToRs, F = all ToRs), and solved with the p-swap
// Local Search of Alg. 5 (Arya et al., the paper's [29]), which carries
// the 3 + 2/p approximation guarantee. An exact branch-and-bound solver
// provides the "global optimal" reference.
//
// The solvers are built for the Figs. 11–14 scale: LocalSearch maintains
// per-client nearest/second-nearest caches so a trial swap costs
// O(clients) instead of O(clients × K), generates swap candidates lazily
// by combinadic rank instead of materializing both combination sets, and
// fans the candidate scan out over the shared worker pool with
// deterministic first-improvement semantics. Exact prunes the subset tree
// with per-client suffix minima from a local-search incumbent. DESIGN.md
// §8 documents the invariants.
package kmedian

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"sheriff/internal/obs"
	"sheriff/internal/pool"
)

// obsNone marks the identity fields that have no meaning for k-median
// events (the solver is not tied to a shim, VM, or host).
const obsNone = -1

// Instance is one k-median instance. Cost[i][j] is the cost of connecting
// client i to facility j; Clients and Facilities index into Cost (rack
// indices in the Sheriff reduction).
type Instance struct {
	Cost       [][]float64
	Clients    []int
	Facilities []int
	K          int
}

// Validate reports whether the instance is well formed.
func (in *Instance) Validate() error {
	n := len(in.Cost)
	if n == 0 {
		return errors.New("kmedian: empty cost matrix")
	}
	for i, row := range in.Cost {
		if len(row) != n {
			return fmt.Errorf("kmedian: cost row %d has %d entries, want %d", i, len(row), n)
		}
	}
	if len(in.Clients) == 0 {
		return errors.New("kmedian: no clients")
	}
	if len(in.Facilities) == 0 {
		return errors.New("kmedian: no facilities")
	}
	if in.K < 1 || in.K > len(in.Facilities) {
		return fmt.Errorf("kmedian: K = %d out of range [1, %d]", in.K, len(in.Facilities))
	}
	for _, c := range in.Clients {
		if c < 0 || c >= n {
			return fmt.Errorf("kmedian: client index %d out of range", c)
		}
	}
	for _, f := range in.Facilities {
		if f < 0 || f >= n {
			return fmt.Errorf("kmedian: facility index %d out of range", f)
		}
	}
	return nil
}

// Solution is a set of open facilities with the induced assignment.
type Solution struct {
	Open       []int // open facility indices (subset of Facilities)
	Assignment []int // Assignment[i] = open facility serving Clients[i]
	Cost       float64
	Swaps      int // number of improving swaps applied (LocalSearch only)
}

// evaluate computes the optimal assignment of clients to the open set.
func evaluate(in *Instance, open []int) ([]int, float64) {
	assign := make([]int, len(in.Clients))
	total := 0.0
	for ci, c := range in.Clients {
		best := math.Inf(1)
		bestF := -1
		for _, f := range open {
			if d := in.Cost[c][f]; d < best {
				best, bestF = d, f
			}
		}
		assign[ci] = bestF
		total += best
	}
	return assign, total
}

// Options tunes LocalSearch.
type Options struct {
	P        int   // swap size p of Alg. 5 (ratio 3 + 2/p); default 1
	Seed     int64 // randomization seed for the initial solution
	MaxSwaps int   // safety cap on improving swaps; default 100000
	Epsilon  float64

	// Pool bounds the parallel candidate scan; nil uses pool.Shared().
	// The chosen swap is identical for any pool size (first-improvement
	// in deterministic rank order).
	Pool *pool.Pool
	// ScanChunk is the number of candidates per scan chunk; 0 uses the
	// default. Exposed for the scan-determinism tests.
	ScanChunk int
	// Recorder, when non-nil, receives the cost trajectory: one cost
	// event for the initial solution, a swap event per accepted swap, and
	// a scan event per candidate scan (Value = ranks covered, which is
	// deterministic for any pool size).
	Recorder *obs.Recorder
}

func (o Options) withDefaults() Options {
	if o.P < 1 {
		o.P = 1
	}
	if o.MaxSwaps <= 0 {
		o.MaxSwaps = 100000
	}
	if o.Epsilon <= 0 {
		o.Epsilon = 1e-9
	}
	if o.Pool == nil {
		o.Pool = pool.Shared()
	}
	if o.ScanChunk <= 0 {
		o.ScanChunk = defaultScanChunk
	}
	return o
}

// LocalSearch runs Alg. 5: start from an arbitrary feasible solution of K
// facilities and keep applying improving swaps of up to P facilities until
// none exists. The result is a (3 + 2/P)-approximation of the optimum.
//
// The search state (assignment and cost) is maintained incrementally
// across swaps — no cold re-evaluation after an accepted swap or at loop
// exit — and stays bit-equal to what a from-scratch evaluate would return
// for the same open set.
func LocalSearch(in *Instance, opts Options) (*Solution, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))

	// Arbitrary feasible start: a random K-subset of facilities.
	perm := rng.Perm(len(in.Facilities))
	open := make([]int, in.K)
	for i := 0; i < in.K; i++ {
		open[i] = in.Facilities[perm[i]]
	}
	st := newState(in, open)
	closed := make([]int, 0, len(in.Facilities)-in.K)
	for _, f := range in.Facilities {
		if !st.isOpen[f] {
			closed = append(closed, f)
		}
	}

	rec := opts.Recorder
	rec.Record(obs.Event{Kind: obs.KindCost, Shim: obsNone, VM: obsNone, Host: obsNone, Value: st.cost})

	// Per-swap-size resume offsets: each scan starts one rank past the
	// previously accepted swap of that size (the open/closed cardinalities
	// never change, so the rank space per size is stable).
	resume := make([]int64, opts.P+1)
	swaps := 0
	for swaps < opts.MaxSwaps {
		improved := false
		// p = 1 swaps first (cheap and usually sufficient), then widen to
		// the configured swap size.
		for size := 1; size <= opts.P && !improved; size++ {
			sw := st.findSwap(closed, size, resume[size], opts.Epsilon, opts.Pool, opts.ScanChunk)
			if rec.Enabled() {
				// Ranks covered by the scan in deterministic rank order:
				// up to and including the accepted candidate, or the whole
				// space when the scan proved local optimality for `size`.
				total := satMul(binom(len(st.open), size), binom(len(closed), size))
				covered := total
				if sw != nil {
					covered = (sw.rank-resume[size]%total+total)%total + 1
				}
				rec.Record(obs.Event{Kind: obs.KindScan, Round: swaps, Shim: obsNone, VM: obsNone, Host: obsNone,
					Value: float64(covered), Attrs: map[string]string{"size": fmt.Sprint(size)}})
			}
			if sw != nil {
				st.apply(sw.outs, sw.ins)
				replaceAll(closed, sw.ins, sw.outs)
				resume[size] = sw.rank + 1
				swaps++
				improved = true
				if rec.Enabled() {
					rec.Record(obs.Event{Kind: obs.KindSwap, Round: swaps, Shim: obsNone, VM: obsNone, Host: obsNone,
						Value: st.cost, Attrs: map[string]string{
							"outs": fmt.Sprint(sw.outs), "ins": fmt.Sprint(sw.ins)}})
				}
			}
		}
		if !improved {
			break
		}
	}
	sorted := append([]int(nil), st.open...)
	sort.Ints(sorted)
	return &Solution{
		Open:       sorted,
		Assignment: append([]int(nil), st.n1...),
		Cost:       st.cost,
		Swaps:      swaps,
	}, nil
}

// ApproximationRatio returns the guarantee of Alg. 5 for swap size p.
func ApproximationRatio(p int) float64 {
	if p < 1 {
		p = 1
	}
	return 3 + 2/float64(p)
}
