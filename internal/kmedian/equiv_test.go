package kmedian

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sheriff/internal/pool"
)

// These tests pin the correctness contract of the incremental engine: the
// delta-evaluated trial costs, the in-place cache updates, and the
// branch-and-bound Exact must reproduce the seed's cold-evaluate numbers
// bit-for-bit (==, not within an epsilon).

func TestUnrankCombMatchesEnumeration(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{1, 1}, {4, 1}, {4, 2}, {5, 3}, {7, 4}, {9, 2}} {
		items := make([]int, tc.n)
		for i := range items {
			items[i] = 10 + i // arbitrary, non-identity values
		}
		want := combinations(items, tc.k)
		if int64(len(want)) != binom(tc.n, tc.k) {
			t.Fatalf("C(%d,%d): enumerated %d, binom %d", tc.n, tc.k, len(want), binom(tc.n, tc.k))
		}
		got := make([]int, tc.k)
		for r := range want {
			unrankComb(items, int64(r), got)
			for i := range got {
				if got[i] != want[r][i] {
					t.Fatalf("C(%d,%d) rank %d: unranked %v, want %v", tc.n, tc.k, r, got, want[r])
				}
			}
		}
	}
}

func TestBinomSaturates(t *testing.T) {
	if b := binom(200, 100); b != math.MaxInt64 {
		t.Fatalf("binom(200,100) = %d, want saturation", b)
	}
	if b := binom(5, 7); b != 0 {
		t.Fatalf("binom(5,7) = %d, want 0", b)
	}
	if b := binom(52, 5); b != 2598960 {
		t.Fatalf("binom(52,5) = %d, want 2598960", b)
	}
}

// trialOpen builds the open set that results from applying (outs → ins).
func trialOpen(open, outs, ins []int) []int {
	trial := append([]int(nil), open...)
	replaceAll(trial, outs, ins)
	return trial
}

// TestTrialSingleBitEqualColdEvaluate: every 1-swap trial cost from the
// cached state equals a cold evaluate of the swapped open set, bit-exact.
func TestTrialSingleBitEqualColdEvaluate(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomMetricInstance(12+rng.Intn(10), 2+rng.Intn(4), seed)
		open := randomOpen(in, rng)
		st := newState(in, open)
		closed := closedOf(in, st)
		for _, out := range st.open {
			for _, f := range closed {
				got := st.trialSingle(out, f)
				_, want := evaluate(in, trialOpen(st.open, []int{out}, []int{f}))
				if got != want {
					t.Logf("seed %d: trialSingle(%d,%d) = %v, cold = %v", seed, out, f, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestTrialMultiBitEqualColdEvaluate: the same bit-equality for p ∈ {2, 3}
// swap sets, including the rare path where a client loses both of its
// cached facilities.
func TestTrialMultiBitEqualColdEvaluate(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomMetricInstance(14, 4+rng.Intn(3), seed)
		open := randomOpen(in, rng)
		st := newState(in, open)
		closed := closedOf(in, st)
		for _, size := range []int{2, 3} {
			outSets := combinations(st.open, size)
			inSets := combinations(closed, size)
			for _, outs := range outSets {
				for _, ins := range inSets {
					got := st.trialMulti(outs, ins)
					_, want := evaluate(in, trialOpen(st.open, outs, ins))
					if got != want {
						t.Logf("seed %d: trialMulti(%v,%v) = %v, cold = %v", seed, outs, ins, got, want)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestApplyBitEqualColdEvaluate: after a random sequence of applied swaps
// the cached distances, cost, and nearest/second-nearest structure all
// match a state rebuilt from scratch — no drift accumulates.
func TestApplyBitEqualColdEvaluate(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomMetricInstance(16, 4, seed)
		open := randomOpen(in, rng)
		st := newState(in, open)
		closed := closedOf(in, st)
		for step := 0; step < 12; step++ {
			size := 1 + rng.Intn(2)
			outs := sample(rng, st.open, size)
			ins := sample(rng, closed, size)
			st.apply(outs, ins)
			replaceAll(closed, ins, outs)

			_, coldCost := evaluate(in, st.open)
			if st.cost != coldCost {
				t.Logf("seed %d step %d: cost %v, cold %v", seed, step, st.cost, coldCost)
				return false
			}
			fresh := newState(in, st.open)
			for ci := range in.Clients {
				if st.d1[ci] != fresh.d1[ci] || st.d2[ci] != fresh.d2[ci] {
					t.Logf("seed %d step %d client %d: d1/d2 (%v,%v) vs fresh (%v,%v)",
						seed, step, ci, st.d1[ci], st.d2[ci], fresh.d1[ci], fresh.d2[ci])
					return false
				}
				// Facility identity may differ only under exact distance
				// ties; the served distances must agree regardless.
				c := in.Clients[ci]
				if in.Cost[c][st.n1[ci]] != st.d1[ci] || !st.isOpen[st.n1[ci]] {
					t.Logf("seed %d step %d client %d: n1 %d inconsistent", seed, step, ci, st.n1[ci])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestExactBitEqualEnumerator: branch-and-bound returns exactly the
// enumerated optimum's cost on random metric instances.
func TestExactBitEqualEnumerator(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomMetricInstance(8+rng.Intn(7), 2+rng.Intn(3), seed)
		bnb, err := Exact(in)
		if err != nil {
			return false
		}
		enum, err := referenceExact(in)
		if err != nil {
			return false
		}
		if bnb.Cost != enum.Cost {
			t.Logf("seed %d: bnb %v, enum %v", seed, bnb.Cost, enum.Cost)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestExactMatchesEnumeratorOnLine covers tie-heavy integer instances,
// where distinct optima share a cost.
func TestExactMatchesEnumeratorOnLine(t *testing.T) {
	for n := 4; n <= 10; n++ {
		for k := 1; k <= 3 && k <= n; k++ {
			in := lineInstance(n, k)
			bnb, err := Exact(in)
			if err != nil {
				t.Fatal(err)
			}
			enum, err := referenceExact(in)
			if err != nil {
				t.Fatal(err)
			}
			if bnb.Cost != enum.Cost {
				t.Fatalf("line n=%d k=%d: bnb %v, enum %v", n, k, bnb.Cost, enum.Cost)
			}
		}
	}
}

// TestLocalSearchNotWorseThanReference: from the same seed (hence the same
// start), the incremental engine must end within the guarantee and no
// worse than what the seed implementation converged to — both are local
// optima of the same neighborhood, just reached in different scan orders.
func TestLocalSearchAndReferenceBothLocalOptimal(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		in := randomMetricInstance(18, 4, seed)
		fast, err := LocalSearch(in, Options{P: 1, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		naive, err := referenceLocalSearch(in, Options{P: 1, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		ex, err := Exact(in)
		if err != nil {
			t.Fatal(err)
		}
		bound := ApproximationRatio(1)*ex.Cost + 1e-9
		if fast.Cost > bound || naive.Cost > bound {
			t.Fatalf("seed %d: fast %v / naive %v exceed bound %v", seed, fast.Cost, naive.Cost, bound)
		}
		// The fast engine's end state must itself admit no improving 1-swap.
		st := newState(in, fast.Open)
		if sw := st.findSwap(closedOf(in, st), 1, 0, 1e-9, pool.New(1), 0); sw != nil {
			t.Fatalf("seed %d: fast result not 1-swap optimal (found %v→%v)", seed, sw.outs, sw.ins)
		}
	}
}

// TestParallelScanDeterministic: the chosen swap sequence — and therefore
// the whole solution — is identical for any worker count and chunk size.
func TestParallelScanDeterministic(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		in := randomMetricInstance(40, 6, seed)
		var base *Solution
		for _, cfg := range []struct{ workers, chunk int }{
			{1, 0}, {2, 0}, {4, 3}, {8, 1}, {3, 7},
		} {
			sol, err := LocalSearch(in, Options{
				P: 2, Seed: seed, Pool: pool.New(cfg.workers), ScanChunk: cfg.chunk,
			})
			if err != nil {
				t.Fatal(err)
			}
			if base == nil {
				base = sol
				continue
			}
			if sol.Cost != base.Cost || sol.Swaps != base.Swaps {
				t.Fatalf("seed %d workers=%d chunk=%d: cost/swaps %v/%d, want %v/%d",
					seed, cfg.workers, cfg.chunk, sol.Cost, sol.Swaps, base.Cost, base.Swaps)
			}
			for i := range base.Open {
				if sol.Open[i] != base.Open[i] {
					t.Fatalf("seed %d workers=%d chunk=%d: open %v, want %v",
						seed, cfg.workers, cfg.chunk, sol.Open, base.Open)
				}
			}
			for i := range base.Assignment {
				if sol.Assignment[i] != base.Assignment[i] {
					t.Fatalf("seed %d workers=%d chunk=%d: assignment diverges at client %d",
						seed, cfg.workers, cfg.chunk, i)
				}
			}
		}
	}
}

// TestConcurrentLocalSearchSharedPool drives several searches through one
// pool at once; under -race this asserts the scan's reads of the shared
// caches and the per-chunk result slots are properly synchronized.
func TestConcurrentLocalSearchSharedPool(t *testing.T) {
	pl := pool.New(4)
	in := randomMetricInstance(30, 5, 42)
	want, err := LocalSearch(in, Options{P: 1, Seed: 42, Pool: pl, ScanChunk: 2})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan *Solution, 8)
	for g := 0; g < 8; g++ {
		go func() {
			sol, err := LocalSearch(in, Options{P: 1, Seed: 42, Pool: pl, ScanChunk: 2})
			if err != nil {
				done <- nil
				return
			}
			done <- sol
		}()
	}
	for g := 0; g < 8; g++ {
		sol := <-done
		if sol == nil {
			t.Fatal("concurrent LocalSearch failed")
		}
		if sol.Cost != want.Cost {
			t.Fatalf("concurrent run diverged: %v vs %v", sol.Cost, want.Cost)
		}
	}
}

// randomOpen picks a random feasible K-subset the same way LocalSearch
// seeds its start.
func randomOpen(in *Instance, rng *rand.Rand) []int {
	perm := rng.Perm(len(in.Facilities))
	open := make([]int, in.K)
	for i := range open {
		open[i] = in.Facilities[perm[i]]
	}
	return open
}

func closedOf(in *Instance, st *state) []int {
	var closed []int
	for _, f := range in.Facilities {
		if !st.isOpen[f] {
			closed = append(closed, f)
		}
	}
	return closed
}

// sample picks `size` distinct elements of s in order of a random perm.
func sample(rng *rand.Rand, s []int, size int) []int {
	perm := rng.Perm(len(s))
	out := make([]int, size)
	for i := 0; i < size; i++ {
		out[i] = s[perm[i]]
	}
	return out
}
