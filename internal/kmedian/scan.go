package kmedian

import (
	"math"
	"sync/atomic"

	"sheriff/internal/pool"
)

// The swap-candidate scan. Candidates are pairs (out-set, in-set) of equal
// size drawn from the open and closed facilities. Instead of materializing
// combinations(open, p) × combinations(closed, p) (the seed allocated both
// slices in full before every scan), candidates are addressed by a flat
// rank t ∈ [0, C(K,p)·C(M,p)) and decoded lazily: outRank = t / nIn,
// inRank = t mod nIn, each unranked combinadically. The rank space is cut
// into fixed-size chunks scanned by the shared worker pool; within a chunk
// ranks run in order, and across chunks the accepted candidate is the one
// from the lowest improving chunk, so the chosen swap is the
// first-improvement in deterministic rank order no matter how many workers
// participate or how they interleave.

type swapCand struct {
	outs, ins []int
	newCost   float64 // full trial cost (bit-equal to a cold evaluate)
	rank      int64   // absolute candidate rank, for resuming the next scan
}

// findSwap searches for the first improving swap of exactly `size`
// facilities, scanning ranks in rotated order starting at `start`: ranks
// start, start+1, …, wrapping modulo the rank-space size. LocalSearch
// passes the rank after the previously accepted swap, so successive scans
// pick up where the last one left off instead of re-examining the
// just-rejected prefix — the incremental analogue of the seed's shuffled
// scan, but deterministic. A full wrap with no improvement proves local
// optimality. The scan reads the state's caches but never mutates them, so
// chunks can run concurrently.
func (st *state) findSwap(closed []int, size int, start int64, eps float64, pl *pool.Pool, chunk int) *swapCand {
	nOpen, nClosed := len(st.open), len(closed)
	if nClosed < size || nOpen < size {
		return nil
	}
	nOut := binom(nOpen, size)
	nIn := binom(nClosed, size)
	total := satMul(nOut, nIn)
	start %= total
	if chunk < 1 {
		chunk = defaultScanChunk
	}
	nChunks := int((total + int64(chunk) - 1) / int64(chunk))

	found := make([]*swapCand, nChunks)
	var minChunk atomic.Int64
	minChunk.Store(int64(nChunks))

	pl.ForEach(nChunks, func(k int) {
		// A chunk past an already-found improvement can never win; chunks
		// at or before the current minimum must still be scanned so the
		// lowest improving chunk is always discovered.
		if int64(k) > minChunk.Load() {
			return
		}
		lo := int64(k) * int64(chunk)
		hi := lo + int64(chunk)
		if hi > total {
			hi = total
		}
		outs := make([]int, size)
		ins := make([]int, size)
		for i := lo; i < hi; i++ {
			t := i + start
			if t >= total {
				t -= total
			}
			unrankComb(st.open, t/nIn, outs)
			unrankComb(closed, t%nIn, ins)
			var nc float64
			if size == 1 {
				nc = st.trialSingle(outs[0], ins[0])
			} else {
				nc = st.trialMulti(outs, ins)
			}
			if nc < st.cost-eps {
				found[k] = &swapCand{
					outs:    append([]int(nil), outs...),
					ins:     append([]int(nil), ins...),
					newCost: nc,
					rank:    t,
				}
				for {
					m := minChunk.Load()
					if int64(k) >= m || minChunk.CompareAndSwap(m, int64(k)) {
						break
					}
				}
				return
			}
		}
	})

	if m := minChunk.Load(); m < int64(nChunks) {
		return found[m]
	}
	return nil
}

// defaultScanChunk is the number of candidates per parallel scan chunk.
// Each candidate costs O(clients), so 64 keeps chunks coarse enough to
// amortize scheduling yet fine enough that early improvements cut the scan
// short.
const defaultScanChunk = 64

// binom returns C(n, k), saturating at math.MaxInt64 instead of
// overflowing (a saturated rank space is never enumerable in practice; the
// scan just proceeds in rank order until an improvement is found or
// MaxSwaps intervenes, exactly as the materialized seed would have — had
// it not run out of memory first).
func binom(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := int64(1)
	for i := 1; i <= k; i++ {
		// r·(n-k+i) is always divisible by i, so multiply-then-divide stays
		// exact; guard the product and saturate instead of overflowing.
		if r > math.MaxInt64/int64(n-k+i) {
			return math.MaxInt64
		}
		r = r * int64(n-k+i) / int64(i)
	}
	return r
}

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxInt64/b {
		return math.MaxInt64
	}
	return a * b
}

// unrankComb writes the rank-th (lexicographic by item position) size-k
// combination of items into dst, k = len(dst). Inverse of enumerating
// combinations(items, k) in order.
func unrankComb(items []int, rank int64, dst []int) {
	k := len(dst)
	n := len(items)
	j := 0
	for i := 0; i < k; i++ {
		for {
			c := binom(n-j-1, k-i-1)
			if rank < c {
				dst[i] = items[j]
				j++
				break
			}
			rank -= c
			j++
		}
	}
}
