package kmedian

import (
	"fmt"
	"sync"
	"testing"

	"sheriff/internal/cost"
	"sheriff/internal/dcn"
	"sheriff/internal/topology"
)

// Before/after benchmarks for the migration-planning engine. "delta" is
// the incremental engine (cached nearest/second-nearest, lazy candidate
// ranks, pooled scan); "naive" is the seed implementation preserved in
// reference.go. BENCH_kmedian.json records a pinned run of both sides;
// regenerate with the commands listed there (fixed -benchtime counts so
// iteration counts match across runs).

const benchSeed = 20150707

func benchInstance(kind string, n, k int) *Instance {
	if kind == "line" {
		return lineInstance(n, k)
	}
	return randomMetricInstance(n, k, benchSeed)
}

func BenchmarkLocalSearch(b *testing.B) {
	for _, kind := range []string{"line", "metric"} {
		for _, n := range []int{64, 256, 1024} {
			in := benchInstance(kind, n, 8)
			for _, impl := range []struct {
				name string
				run  func(*Instance, Options) (*Solution, error)
			}{
				{"delta", LocalSearch},
				{"naive", referenceLocalSearch},
			} {
				b.Run(fmt.Sprintf("%s/n=%d/%s", kind, n, impl.name), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, err := impl.run(in, Options{P: 1, Seed: benchSeed}); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

func BenchmarkExact(b *testing.B) {
	// Exact stays exponential, so K shrinks as n grows to keep both sides
	// of the comparison physically runnable: the interesting number is the
	// bnb/enum ratio at each size, not an absolute wall time.
	cases := []struct {
		kind string
		n, k int
		enum bool
	}{
		{"line", 64, 4, true},
		{"metric", 64, 4, true},
		{"line", 256, 3, true},
		{"metric", 256, 3, true},
		{"line", 1024, 2, true},
		{"metric", 1024, 2, true},
	}
	for _, tc := range cases {
		in := benchInstance(tc.kind, tc.n, tc.k)
		b.Run(fmt.Sprintf("%s/n=%d/bnb", tc.kind, tc.n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Exact(in); err != nil {
					b.Fatal(err)
				}
			}
		})
		if !tc.enum {
			continue
		}
		b.Run(fmt.Sprintf("%s/n=%d/enum", tc.kind, tc.n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := referenceExact(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

var planInstance48 = sync.OnceValues(func() (*Instance, error) {
	ft, err := topology.NewFatTree(topology.FatTreeConfig{Pods: 48})
	if err != nil {
		return nil, err
	}
	cluster, err := dcn.NewCluster(ft.Graph, dcn.Config{HostsPerRack: 1, HostCapacity: 100, ToRCapacity: 100})
	if err != nil {
		return nil, err
	}
	model, err := cost.New(cluster, cost.PaperParams())
	if err != nil {
		return nil, err
	}
	n := len(cluster.Racks)
	facilities := make([]int, n)
	for i := range facilities {
		facilities[i] = i
	}
	// Clients: the racks of the hot half of the pods, mirroring the
	// Figs. 11–14 hotspot regime where alerted load must cross pods.
	var clients []int
	for i, r := range cluster.Racks {
		if cluster.Graph.Node(r.NodeID).Pod < 24 {
			clients = append(clients, i)
		}
	}
	return &Instance{Cost: model.RackCostMatrix(), Clients: clients, Facilities: facilities, K: 32}, nil
})

// BenchmarkFatTreePlanning48 is one Sec. V.A destination-planning round at
// the paper's full 48-pod scale: 1152 racks as facilities, the 576 racks
// of the hot pods as clients, K = 32 destination ToRs.
func BenchmarkFatTreePlanning48(b *testing.B) {
	in, err := planInstance48()
	if err != nil {
		b.Fatal(err)
	}
	for _, impl := range []struct {
		name string
		run  func(*Instance, Options) (*Solution, error)
	}{
		{"delta", LocalSearch},
		{"naive", referenceLocalSearch},
	} {
		b.Run(impl.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := impl.run(in, Options{P: 1, Seed: benchSeed}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
