package kmedian

import (
	"testing"

	"sheriff/internal/obs"
)

// TestLocalSearchTrace checks the cost-trajectory events: one initial
// cost event, one swap event per accepted swap ending at the solution
// cost, and at least one scan per swap (plus the final proving scans).
func TestLocalSearchTrace(t *testing.T) {
	in := lineInstance(24, 4)
	rec, err := obs.New(obs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := LocalSearch(in, Options{Seed: 9, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.Count(obs.KindCost); got != 1 {
		t.Fatalf("cost events = %d, want 1", got)
	}
	if got := rec.Count(obs.KindSwap); got != uint64(sol.Swaps) {
		t.Fatalf("swap events = %d, want %d", got, sol.Swaps)
	}
	if got := rec.Count(obs.KindScan); got < uint64(sol.Swaps)+1 {
		t.Fatalf("scan events = %d, want >= %d (one per swap plus the proving scan)", got, sol.Swaps+1)
	}
	var lastSwap *obs.Event
	prev := 0.0
	first := true
	for _, e := range rec.Events() {
		e := e
		switch e.Kind {
		case obs.KindCost:
			prev, first = e.Value, false
		case obs.KindSwap:
			if first {
				t.Fatal("swap before the initial cost event")
			}
			if e.Value >= prev {
				t.Fatalf("swap did not improve: %v -> %v", prev, e.Value)
			}
			prev = e.Value
			lastSwap = &e
		}
	}
	if sol.Swaps > 0 {
		if lastSwap == nil || lastSwap.Value != sol.Cost {
			t.Fatalf("final swap value %+v, want solution cost %v", lastSwap, sol.Cost)
		}
	}
	// The trace must not perturb the search: same seed, no recorder,
	// identical solution.
	plain, err := LocalSearch(in, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cost != sol.Cost || plain.Swaps != sol.Swaps {
		t.Fatalf("recorder changed the search: %v/%d vs %v/%d", sol.Cost, sol.Swaps, plain.Cost, plain.Swaps)
	}
}
