// Package alert implements Sheriff's pre-alert scheme (Sec. III.B, IV.C):
// each VM's workload profile W = [CPU, MEM, IO, TRF] (every component
// normalized to [0,1]) is checked against a THRESHOLD, and
//
//	ALERT = max(W)  if ∃ x ∈ W with x > THRESHOLD,
//	        0       otherwise.
//
// Alerts come in the three kinds of Sec. III.B — from a server, from the
// local ToR (predicted uplink congestion), or from an outer switch
// (congestion feedback) — and are collected by the delegation node every
// T seconds for the management phase.
package alert

import (
	"fmt"

	"sheriff/internal/timeseries"
	"sheriff/internal/traces"
)

// Kind classifies the origin of an alert (Sec. III.B).
type Kind int

const (
	// FromServer: a host predicts it cannot afford its VMs' workload.
	FromServer Kind = iota
	// FromLocalToR: the shim predicts uplink congestion at its own ToR.
	FromLocalToR
	// FromOuterSwitch: congestion feedback from an aggregation/core or
	// remote ToR switch.
	FromOuterSwitch
)

// String names the alert kind.
func (k Kind) String() string {
	switch k {
	case FromServer:
		return "server"
	case FromLocalToR:
		return "local-tor"
	case FromOuterSwitch:
		return "outer-switch"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Alert is one ALERT message delivered to a delegation node.
type Alert struct {
	Kind      Kind
	Value     float64 // the ALERT value (max of the offending profile)
	VMID      int     // offending VM (FromServer)
	HostID    int     // offending host (FromServer)
	RackIndex int     // rack of origin
	SwitchID  int     // offending switch node (FromOuterSwitch / FromLocalToR)
}

// Severity is the tiered urgency of an alert, derived from the ALERT
// value: watch (reported activity, monitor), urgent (developing
// situation), critical (immediate danger). Tiers give preemption a
// principled priority signal — a migration may evict a resident VM only
// when the incoming VM's tier strictly dominates the victim's.
type Severity int

const (
	// SeverityNone: the VM raised no alert (ALERT = 0).
	SeverityNone Severity = iota
	// SeverityWatch: an alert fired but stays below the urgent cut.
	SeverityWatch
	// SeverityUrgent: the predicted overload is developing (ALERT ≥ 0.8).
	SeverityUrgent
	// SeverityCritical: overload is imminent (ALERT ≥ 0.95).
	SeverityCritical
)

// Severity classification cuts. ALERT values are profile maxima in
// [0, 1], so the cuts sit inside the fired range (fired alerts carry the
// offending component's value, > the 0.9 default threshold in the common
// configuration, but lower thresholds can fire watch-tier alerts).
const (
	UrgentAt   = 0.8
	CriticalAt = 0.95
)

// String names the severity tier.
func (s Severity) String() string {
	switch s {
	case SeverityNone:
		return "none"
	case SeverityWatch:
		return "watch"
	case SeverityUrgent:
		return "urgent"
	case SeverityCritical:
		return "critical"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// ClassifySeverity maps an ALERT value onto its tier: none for
// non-positive values, then watch / urgent / critical at the fixed cuts.
func ClassifySeverity(v float64) Severity {
	switch {
	case v <= 0:
		return SeverityNone
	case v >= CriticalAt:
		return SeverityCritical
	case v >= UrgentAt:
		return SeverityUrgent
	default:
		return SeverityWatch
	}
}

// Thresholds holds per-component trigger levels. The paper's motivating
// example is 90% CPU/memory utilization.
type Thresholds struct {
	CPU float64
	Mem float64
	IO  float64
	TRF float64
}

// DefaultThresholds returns 0.9 for every component.
func DefaultThresholds() Thresholds {
	return Thresholds{CPU: 0.9, Mem: 0.9, IO: 0.9, TRF: 0.9}
}

// Evaluate applies the ALERT rule to a (predicted) workload profile:
// the returned value is max(W) when any component exceeds its threshold,
// else 0; fired reports whether the alert triggered.
func Evaluate(p traces.Profile, th Thresholds) (value float64, fired bool) {
	if p.CPU > th.CPU || p.Mem > th.Mem || p.IO > th.IO || p.TRF > th.TRF {
		return p.Max(), true
	}
	return 0, false
}

// ComponentForecaster predicts one workload-profile component from its
// history (both ARIMA models and NARNETs satisfy this).
type ComponentForecaster interface {
	ForecastFrom(history *timeseries.Series, h int) ([]float64, error)
}

// ProfilePredictor forecasts a full workload profile one collection
// period (T seconds) ahead by running one forecaster per component over
// its own history, as Sec. IV.A prescribes ("respectively process each
// feature … with prediction models that can best explain it").
type ProfilePredictor struct {
	cpu, mem, io, trf     ComponentForecaster
	hCPU, hMem, hIO, hTRF *timeseries.Series
}

// NewProfilePredictor builds a predictor from per-component forecasters
// and their shared-length histories.
func NewProfilePredictor(cpu, mem, io, trf ComponentForecaster) *ProfilePredictor {
	return &ProfilePredictor{
		cpu: cpu, mem: mem, io: io, trf: trf,
		hCPU: timeseries.New(nil), hMem: timeseries.New(nil),
		hIO: timeseries.New(nil), hTRF: timeseries.New(nil),
	}
}

// Observe appends one measured profile to the component histories.
func (pp *ProfilePredictor) Observe(p traces.Profile) {
	pp.hCPU.Append(p.CPU)
	pp.hMem.Append(p.Mem)
	pp.hIO.Append(p.IO)
	pp.hTRF.Append(p.TRF)
}

// HistoryLen returns the number of observed profiles.
func (pp *ProfilePredictor) HistoryLen() int { return pp.hCPU.Len() }

// Predict forecasts the profile one step ahead. Components are clamped
// to [0,1] since the profile is normalized by definition.
func (pp *ProfilePredictor) Predict() (traces.Profile, error) {
	get := func(f ComponentForecaster, h *timeseries.Series) (float64, error) {
		fc, err := f.ForecastFrom(h, 1)
		if err != nil {
			return 0, err
		}
		v := fc[0]
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		return v, nil
	}
	var p traces.Profile
	var err error
	if p.CPU, err = get(pp.cpu, pp.hCPU); err != nil {
		return p, fmt.Errorf("alert: CPU forecast: %w", err)
	}
	if p.Mem, err = get(pp.mem, pp.hMem); err != nil {
		return p, fmt.Errorf("alert: MEM forecast: %w", err)
	}
	if p.IO, err = get(pp.io, pp.hIO); err != nil {
		return p, fmt.Errorf("alert: IO forecast: %w", err)
	}
	if p.TRF, err = get(pp.trf, pp.hTRF); err != nil {
		return p, fmt.Errorf("alert: TRF forecast: %w", err)
	}
	return p, nil
}

// Histories returns copies of the four component histories in profile
// order [CPU, MEM, IO, TRF] — the state a snapshot must carry to resume
// prediction without refeeding the whole run.
func (pp *ProfilePredictor) Histories() [4][]float64 {
	return [4][]float64{pp.hCPU.Values(), pp.hMem.Values(), pp.hIO.Values(), pp.hTRF.Values()}
}

// RestoreHistories replaces the component histories, in the same order
// Histories returns them. All four must have equal length.
func (pp *ProfilePredictor) RestoreHistories(h [4][]float64) error {
	n := len(h[0])
	for _, c := range h[1:] {
		if len(c) != n {
			return fmt.Errorf("alert: restore: component history lengths differ (%d vs %d)", len(c), n)
		}
	}
	pp.hCPU = timeseries.New(h[0])
	pp.hMem = timeseries.New(h[1])
	pp.hIO = timeseries.New(h[2])
	pp.hTRF = timeseries.New(h[3])
	return nil
}

// Check predicts one step ahead and applies the ALERT rule, returning the
// alert (zero Value when not fired).
func (pp *ProfilePredictor) Check(th Thresholds) (Alert, bool, error) {
	p, err := pp.Predict()
	if err != nil {
		return Alert{}, false, err
	}
	v, fired := Evaluate(p, th)
	return Alert{Kind: FromServer, Value: v}, fired, nil
}

// QueueMonitor watches a ToR switch queue length (Sec. IV.A: "each v_i
// also monitors the queue length of the associated ToR switch") and fires
// a FromLocalToR alert when the predicted queue occupancy crosses the
// threshold fraction of the queue limit.
type QueueMonitor struct {
	history   *timeseries.Series
	forecast  ComponentForecaster
	limit     float64
	threshold float64 // fraction of limit
}

// NewQueueMonitor builds a queue monitor. threshold is a fraction in
// (0,1]; limit is the queue capacity in the same units as observations.
func NewQueueMonitor(f ComponentForecaster, limit, threshold float64) (*QueueMonitor, error) {
	if limit <= 0 {
		return nil, fmt.Errorf("alert: queue limit must be > 0, got %v", limit)
	}
	if threshold <= 0 || threshold > 1 {
		return nil, fmt.Errorf("alert: queue threshold must be in (0,1], got %v", threshold)
	}
	return &QueueMonitor{
		history:   timeseries.New(nil),
		forecast:  f,
		limit:     limit,
		threshold: threshold,
	}, nil
}

// Observe appends one queue-length sample.
func (q *QueueMonitor) Observe(length float64) { q.history.Append(length) }

// History returns a copy of the observed queue-length samples.
func (q *QueueMonitor) History() []float64 { return q.history.Values() }

// RestoreHistory replaces the observed queue-length samples.
func (q *QueueMonitor) RestoreHistory(h []float64) { q.history = timeseries.New(h) }

// Check predicts the next queue length and fires when it exceeds
// threshold×limit. The alert Value is predicted occupancy in [0,1].
func (q *QueueMonitor) Check() (Alert, bool, error) {
	fc, err := q.forecast.ForecastFrom(q.history, 1)
	if err != nil {
		return Alert{}, false, fmt.Errorf("alert: queue forecast: %w", err)
	}
	occ := fc[0] / q.limit
	if occ < 0 {
		occ = 0
	}
	if occ > 1 {
		occ = 1
	}
	if occ > q.threshold {
		return Alert{Kind: FromLocalToR, Value: occ}, true, nil
	}
	return Alert{}, false, nil
}
