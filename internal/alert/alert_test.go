package alert

import (
	"math"
	"testing"
	"testing/quick"

	"sheriff/internal/timeseries"
	"sheriff/internal/traces"
)

func TestKindString(t *testing.T) {
	if FromServer.String() != "server" || FromLocalToR.String() != "local-tor" ||
		FromOuterSwitch.String() != "outer-switch" {
		t.Fatal("kind strings wrong")
	}
	if Kind(42).String() == "" {
		t.Fatal("unknown kind should render")
	}
}

func TestEvaluateFiresOnAnyComponent(t *testing.T) {
	th := DefaultThresholds()
	cases := []struct {
		p    traces.Profile
		want bool
	}{
		{traces.Profile{CPU: 0.95, Mem: 0.1, IO: 0.1, TRF: 0.1}, true},
		{traces.Profile{CPU: 0.1, Mem: 0.95, IO: 0.1, TRF: 0.1}, true},
		{traces.Profile{CPU: 0.1, Mem: 0.1, IO: 0.95, TRF: 0.1}, true},
		{traces.Profile{CPU: 0.1, Mem: 0.1, IO: 0.1, TRF: 0.95}, true},
		{traces.Profile{CPU: 0.89, Mem: 0.89, IO: 0.89, TRF: 0.89}, false},
		{traces.Profile{}, false},
	}
	for i, c := range cases {
		v, fired := Evaluate(c.p, th)
		if fired != c.want {
			t.Errorf("case %d: fired = %v, want %v", i, fired, c.want)
		}
		if fired && v != c.p.Max() {
			t.Errorf("case %d: value = %v, want max %v", i, v, c.p.Max())
		}
		if !fired && v != 0 {
			t.Errorf("case %d: unfired value = %v, want 0", i, v)
		}
	}
}

func TestEvaluateCustomThresholds(t *testing.T) {
	th := Thresholds{CPU: 0.5, Mem: 1, IO: 1, TRF: 1}
	if _, fired := Evaluate(traces.Profile{CPU: 0.6}, th); !fired {
		t.Fatal("custom CPU threshold not honored")
	}
	if _, fired := Evaluate(traces.Profile{Mem: 0.99}, th); fired {
		t.Fatal("Mem below threshold fired")
	}
}

// Property: the alert value is 0 or the profile max, never in between.
func TestEvaluateValueProperty(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		clamp01 := func(x float64) float64 {
			if math.IsNaN(x) {
				return 0
			}
			x = math.Abs(x)
			return x - math.Floor(x)
		}
		p := traces.Profile{CPU: clamp01(a), Mem: clamp01(b), IO: clamp01(c), TRF: clamp01(d)}
		v, fired := Evaluate(p, DefaultThresholds())
		if fired {
			return v == p.Max()
		}
		return v == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// naiveForecaster predicts the last observed value.
type naiveForecaster struct{}

func (naiveForecaster) ForecastFrom(h *timeseries.Series, n int) ([]float64, error) {
	out := make([]float64, n)
	for i := range out {
		out[i] = h.Last()
	}
	return out, nil
}

// trendForecaster extrapolates the last difference.
type trendForecaster struct{}

func (trendForecaster) ForecastFrom(h *timeseries.Series, n int) ([]float64, error) {
	last := h.Last()
	slope := 0.0
	if h.Len() >= 2 {
		slope = last - h.At(h.Len()-2)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = last + slope*float64(i+1)
	}
	return out, nil
}

func TestProfilePredictorObserveAndPredict(t *testing.T) {
	pp := NewProfilePredictor(naiveForecaster{}, naiveForecaster{}, naiveForecaster{}, naiveForecaster{})
	pp.Observe(traces.Profile{CPU: 0.5, Mem: 0.4, IO: 0.3, TRF: 0.2})
	pp.Observe(traces.Profile{CPU: 0.6, Mem: 0.5, IO: 0.4, TRF: 0.3})
	if pp.HistoryLen() != 2 {
		t.Fatalf("HistoryLen = %d", pp.HistoryLen())
	}
	p, err := pp.Predict()
	if err != nil {
		t.Fatal(err)
	}
	want := traces.Profile{CPU: 0.6, Mem: 0.5, IO: 0.4, TRF: 0.3}
	if p != want {
		t.Fatalf("Predict = %+v, want %+v", p, want)
	}
}

func TestProfilePredictorClampsToUnitRange(t *testing.T) {
	pp := NewProfilePredictor(trendForecaster{}, trendForecaster{}, trendForecaster{}, trendForecaster{})
	pp.Observe(traces.Profile{CPU: 0.5, Mem: 0.9, IO: 0.1, TRF: 0.5})
	pp.Observe(traces.Profile{CPU: 0.9, Mem: 0.99, IO: 0.01, TRF: 0.5})
	p, err := pp.Predict()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range p.Components() {
		if v < 0 || v > 1 {
			t.Fatalf("prediction out of [0,1]: %+v", p)
		}
	}
}

func TestProfilePredictorCheckFires(t *testing.T) {
	pp := NewProfilePredictor(trendForecaster{}, naiveForecaster{}, naiveForecaster{}, naiveForecaster{})
	// CPU rising steeply: the trend forecaster projects past the threshold
	// before the measured value itself crosses it — a pre-alert.
	pp.Observe(traces.Profile{CPU: 0.70, Mem: 0.2, IO: 0.2, TRF: 0.2})
	pp.Observe(traces.Profile{CPU: 0.85, Mem: 0.2, IO: 0.2, TRF: 0.2})
	a, fired, err := pp.Check(DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("pre-alert should fire on predicted CPU = 1.0")
	}
	if a.Kind != FromServer || a.Value <= 0.9 {
		t.Fatalf("alert = %+v", a)
	}
}

func TestQueueMonitorValidation(t *testing.T) {
	if _, err := NewQueueMonitor(naiveForecaster{}, 0, 0.8); err == nil {
		t.Error("zero limit accepted")
	}
	if _, err := NewQueueMonitor(naiveForecaster{}, 100, 0); err == nil {
		t.Error("zero threshold accepted")
	}
	if _, err := NewQueueMonitor(naiveForecaster{}, 100, 1.5); err == nil {
		t.Error("threshold > 1 accepted")
	}
}

func TestQueueMonitorFiresOnPredictedCongestion(t *testing.T) {
	qm, err := NewQueueMonitor(trendForecaster{}, 100, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	qm.Observe(50)
	qm.Observe(70) // trend +20 → predicted 90 > 80
	a, fired, err := qm.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !fired || a.Kind != FromLocalToR {
		t.Fatalf("alert = %+v fired=%v", a, fired)
	}
	if math.Abs(a.Value-0.9) > 1e-9 {
		t.Fatalf("occupancy = %v, want 0.9", a.Value)
	}
}

func TestQueueMonitorQuietWhenStable(t *testing.T) {
	qm, err := NewQueueMonitor(naiveForecaster{}, 100, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	qm.Observe(40)
	qm.Observe(42)
	_, fired, err := qm.Check()
	if err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("stable queue should not alert")
	}
}

// errorForecaster fails on demand to exercise error propagation.
type errorForecaster struct{ fail bool }

func (e errorForecaster) ForecastFrom(h *timeseries.Series, n int) ([]float64, error) {
	if e.fail {
		return nil, errForecast
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = h.Last()
	}
	return out, nil
}

var errForecast = &forecastError{}

type forecastError struct{}

func (*forecastError) Error() string { return "forecast failed" }

func TestProfilePredictorComponentErrors(t *testing.T) {
	// Each failing component must surface its error with context.
	cases := []struct {
		name string
		pp   *ProfilePredictor
	}{
		{"CPU", NewProfilePredictor(errorForecaster{true}, naiveForecaster{}, naiveForecaster{}, naiveForecaster{})},
		{"MEM", NewProfilePredictor(naiveForecaster{}, errorForecaster{true}, naiveForecaster{}, naiveForecaster{})},
		{"IO", NewProfilePredictor(naiveForecaster{}, naiveForecaster{}, errorForecaster{true}, naiveForecaster{})},
		{"TRF", NewProfilePredictor(naiveForecaster{}, naiveForecaster{}, naiveForecaster{}, errorForecaster{true})},
	}
	for _, c := range cases {
		c.pp.Observe(traces.Profile{CPU: 0.5, Mem: 0.5, IO: 0.5, TRF: 0.5})
		if _, err := c.pp.Predict(); err == nil {
			t.Errorf("%s failure not propagated", c.name)
		}
		if _, _, err := c.pp.Check(DefaultThresholds()); err == nil {
			t.Errorf("%s failure not propagated via Check", c.name)
		}
	}
}

func TestQueueMonitorForecastError(t *testing.T) {
	qm, err := NewQueueMonitor(errorForecaster{true}, 100, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	qm.Observe(10)
	if _, _, err := qm.Check(); err == nil {
		t.Fatal("forecast error not propagated")
	}
}

func TestQueueMonitorClampsNegativePrediction(t *testing.T) {
	qm, err := NewQueueMonitor(trendForecaster{}, 100, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	qm.Observe(50)
	qm.Observe(5) // steep fall: prediction would be negative
	a, fired, err := qm.Check()
	if err != nil {
		t.Fatal(err)
	}
	if fired || a.Value != 0 {
		t.Fatalf("negative prediction not clamped: %+v fired=%v", a, fired)
	}
}
