package comm

import (
	"testing"
	"testing/quick"
)

func TestTypeString(t *testing.T) {
	want := map[Type]string{
		MsgAlert: "alert", MsgRequest: "request", MsgAck: "ack",
		MsgReject: "reject", MsgCongestion: "congestion",
	}
	for ty, name := range want {
		if ty.String() != name {
			t.Errorf("%d.String() = %q", ty, ty.String())
		}
	}
	if Type(42).String() == "" {
		t.Error("unknown type should render")
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := (Options{LossRate: 1}).Validate(); err == nil {
		t.Error("LossRate=1 accepted")
	}
	if err := (Options{LossRate: -0.1}).Validate(); err == nil {
		t.Error("negative LossRate accepted")
	}
	if err := (Options{MaxDelay: -1}).Validate(); err == nil {
		t.Error("negative MaxDelay accepted")
	}
}

func TestReliableDeliveryOrder(t *testing.T) {
	bus, err := NewBus(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		bus.Send(Message{Type: MsgAlert, From: 0, To: 1, Seq: i})
	}
	if got := bus.Deliver(); got != 5 {
		t.Fatalf("delivered %d, want 5", got)
	}
	msgs := bus.Receive(1)
	if len(msgs) != 5 {
		t.Fatalf("received %d", len(msgs))
	}
	for i, m := range msgs {
		if m.Seq != i {
			t.Fatalf("out of order: %v", msgs)
		}
	}
	// Inbox drained.
	if len(bus.Receive(1)) != 0 {
		t.Fatal("inbox not drained")
	}
}

func TestLossRateDropsMessages(t *testing.T) {
	bus, err := NewBus(Options{LossRate: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		bus.Send(Message{To: 1})
	}
	bus.Deliver()
	got := len(bus.Receive(1))
	sent, dropped := bus.Stats()
	if sent != 1000 || got+dropped != 1000 {
		t.Fatalf("sent=%d got=%d dropped=%d", sent, got, dropped)
	}
	if dropped < 400 || dropped > 600 {
		t.Fatalf("dropped %d of 1000 at rate 0.5", dropped)
	}
}

func TestDelayHoldsMessages(t *testing.T) {
	bus, err := NewBus(Options{MaxDelay: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		bus.Send(Message{To: 3})
	}
	total := 0
	rounds := 0
	for bus.Pending() > 0 {
		total += bus.Deliver()
		rounds++
		if rounds > 10 {
			t.Fatal("messages stuck in flight")
		}
	}
	total += bus.Deliver()
	if got := len(bus.Receive(3)); got != 50 {
		t.Fatalf("received %d of 50", got)
	}
	if rounds < 2 {
		t.Fatalf("all messages arrived in %d rounds despite MaxDelay=2", rounds)
	}
}

func TestNodesListsQueuedInboxes(t *testing.T) {
	bus, err := NewBus(Options{})
	if err != nil {
		t.Fatal(err)
	}
	bus.Send(Message{To: 5})
	bus.Send(Message{To: 2})
	bus.Deliver()
	nodes := bus.Nodes()
	if len(nodes) != 2 || nodes[0] != 2 || nodes[1] != 5 {
		t.Fatalf("Nodes = %v", nodes)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	run := func() (int, int) {
		bus, err := NewBus(Options{LossRate: 0.3, MaxDelay: 2, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			bus.Send(Message{To: i % 4})
		}
		for bus.Pending() > 0 {
			bus.Deliver()
		}
		got := 0
		for _, n := range bus.Nodes() {
			got += len(bus.Receive(n))
		}
		_, dropped := bus.Stats()
		return got, dropped
	}
	g1, d1 := run()
	g2, d2 := run()
	if g1 != g2 || d1 != d2 {
		t.Fatalf("same seed diverged: (%d,%d) vs (%d,%d)", g1, d1, g2, d2)
	}
}

// Property: with no loss, every sent message is eventually delivered
// exactly once.
func TestConservationProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, delayRaw uint8) bool {
		n := int(nRaw%100) + 1
		bus, err := NewBus(Options{MaxDelay: int(delayRaw % 4), Seed: seed})
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			bus.Send(Message{To: i % 7, Seq: i})
		}
		for i := 0; i < 10 && bus.Pending() > 0; i++ {
			bus.Deliver()
		}
		bus.Deliver()
		got := 0
		seen := map[int]bool{}
		for node := 0; node < 7; node++ {
			for _, m := range bus.Receive(node) {
				if seen[m.ID] {
					return false // duplicate
				}
				seen[m.ID] = true
				got++
			}
		}
		return got == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
