package comm

import (
	"testing"
)

// busRound pumps one synthetic protocol round through the bus: every node
// sends to its successor, one Deliver moves the batch, every node drains
// its inbox. The shape mirrors the distributed migration protocol's
// propose/deliver/collect cadence without any protocol logic on top.
func busRound(b *Bus, nodes, round int) {
	for n := 0; n < nodes; n++ {
		b.Send(Message{Type: MsgRequest, From: n, To: (n + 1) % nodes, VMID: round, HostID: n, Seq: round*nodes + n})
	}
	b.Deliver()
	for n := 0; n < nodes; n++ {
		b.Receive(n)
	}
}

// BenchmarkBusSendDeliver measures the raw send/deliver/receive cycle —
// the path every injected fault rides on. The nil-injector variant is the
// overhead budget for the faults hook (BENCH_faults.json, <= 2% median).
func BenchmarkBusSendDeliver(b *testing.B) {
	const nodes = 64
	bus, err := NewBus(Options{Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		busRound(bus, nodes, i)
	}
}

// passInjector is the cheapest possible Injector: zero verdicts, no
// reordering. It isolates the cost of the hook itself (interface calls on
// every Send plus batch staging in Deliver) from any fault logic.
type passInjector struct{}

func (passInjector) Judge(int, Message) Verdict  { return Verdict{} }
func (passInjector) Reorder(int, []Message) bool { return false }

// BenchmarkBusSendDeliverInjected measures the same cycle with a no-fault
// injector installed — the price of turning the hook on at all.
func BenchmarkBusSendDeliverInjected(b *testing.B) {
	const nodes = 64
	bus, err := NewBus(Options{Seed: 7, Injector: passInjector{}})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		busRound(bus, nodes, i)
	}
}
