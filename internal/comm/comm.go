// Package comm provides the inter-shim message layer of Sec. V.B: local
// managers "need to communicate between each other to avoid conflictions",
// exchanging REQUEST/ACK/REJECT envelopes for VM migration and congestion
// notifications. The bus is an in-memory, deterministic network with
// per-node FIFO inboxes and injectable loss and delay, so the protocols
// built on it can be tested under adverse delivery conditions.
package comm

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"

	"sheriff/internal/obs"
)

// Type tags a message's protocol role.
type Type int

const (
	// MsgAlert carries an ALERT from a server/switch to its shim.
	MsgAlert Type = iota
	// MsgRequest asks a destination shim to accept a VM migration.
	MsgRequest
	// MsgAck grants a request.
	MsgAck
	// MsgReject refuses a request.
	MsgReject
	// MsgCongestion carries QCN-style congestion feedback.
	MsgCongestion
)

// String names the message type.
func (t Type) String() string {
	switch t {
	case MsgAlert:
		return "alert"
	case MsgRequest:
		return "request"
	case MsgAck:
		return "ack"
	case MsgReject:
		return "reject"
	case MsgCongestion:
		return "congestion"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Message is one envelope on the bus.
type Message struct {
	ID       int // bus-assigned, monotone per send
	Type     Type
	From, To int // node addresses (rack indices)
	VMID     int
	HostID   int
	Value    float64
	Seq      int // correlates requests with replies
}

// Options tunes the bus's delivery behaviour.
type Options struct {
	// LossRate drops each message independently with this probability.
	LossRate float64
	// MaxDelay holds a delivered message back up to this many Deliver
	// rounds (uniform); 0 = next round.
	MaxDelay int
	// Seed drives loss and delay draws.
	Seed int64
	// Recorder, when non-nil, receives a send/deliver/drop event per
	// message movement; drop causes are seed-deterministic.
	Recorder *obs.Recorder
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	if o.LossRate < 0 || o.LossRate >= 1 {
		return fmt.Errorf("comm: LossRate must be in [0,1), got %v", o.LossRate)
	}
	if o.MaxDelay < 0 {
		return fmt.Errorf("comm: MaxDelay must be >= 0, got %d", o.MaxDelay)
	}
	return nil
}

// withDefaults completes the option-struct convention (Validate +
// withDefaults). Every zero value is meaningful on the bus — lossless,
// next-round delivery, seed 0 — so nothing is rewritten.
func (o Options) withDefaults() Options { return o }

// Bus is a deterministic in-memory message network. It is not safe for
// concurrent use; protocols drive it round by round.
type Bus struct {
	opts     Options
	rng      *rand.Rand
	nextID   int
	round    int // completed Deliver rounds, stamps event rounds
	inFlight []pending
	inbox    map[int][]Message
	dropped  int
	sent     int
}

type pending struct {
	msg   Message
	delay int
}

// NewBus builds a bus for nodes addressed 0..n-1 (addresses outside the
// range are still accepted; inboxes are created on demand).
func NewBus(opts Options) (*Bus, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	return &Bus{
		opts:  opts,
		rng:   rand.New(rand.NewSource(opts.Seed)),
		inbox: make(map[int][]Message),
	}, nil
}

// event fills the common Event fields for one message: the sender as the
// shim, the VM/host under negotiation, and the message type plus
// destination node as attributes.
func (b *Bus) event(kind obs.Kind, m Message) obs.Event {
	return obs.Event{
		Kind: kind, Round: b.round, Shim: m.From, VM: m.VMID, Host: m.HostID,
		Value: m.Value,
		Attrs: map[string]string{"msg": m.Type.String(), "to": strconv.Itoa(m.To)},
	}
}

// Send enqueues a message for delivery and returns its bus ID. The
// message may be lost (per LossRate) — exactly like a real fabric, the
// sender is not told.
func (b *Bus) Send(m Message) int {
	m.ID = b.nextID
	b.nextID++
	b.sent++
	rec := b.opts.Recorder
	if rec.Enabled() {
		rec.Record(b.event(obs.KindSend, m))
	}
	if b.opts.LossRate > 0 && b.rng.Float64() < b.opts.LossRate {
		b.dropped++
		if rec.Enabled() {
			e := b.event(obs.KindDrop, m)
			e.Attrs["cause"] = "loss"
			rec.Record(e)
		}
		return m.ID
	}
	delay := 0
	if b.opts.MaxDelay > 0 {
		delay = b.rng.Intn(b.opts.MaxDelay + 1)
	}
	b.inFlight = append(b.inFlight, pending{msg: m, delay: delay})
	return m.ID
}

// Deliver advances one round: messages whose delay expired move to their
// destination inboxes in send order. It returns how many were delivered.
func (b *Bus) Deliver() int {
	b.round++
	rec := b.opts.Recorder
	var still []pending
	delivered := 0
	for _, p := range b.inFlight {
		if p.delay > 0 {
			p.delay--
			still = append(still, p)
			continue
		}
		b.inbox[p.msg.To] = append(b.inbox[p.msg.To], p.msg)
		delivered++
		if rec.Enabled() {
			rec.Record(b.event(obs.KindDeliver, p.msg))
		}
	}
	b.inFlight = still
	return delivered
}

// Receive drains and returns the node's inbox in delivery order.
func (b *Bus) Receive(node int) []Message {
	msgs := b.inbox[node]
	delete(b.inbox, node)
	return msgs
}

// Pending returns how many messages are still in flight.
func (b *Bus) Pending() int { return len(b.inFlight) }

// Stats returns (sent, dropped) counters.
func (b *Bus) Stats() (sent, dropped int) { return b.sent, b.dropped }

// Nodes returns the addresses that currently have queued inbox messages,
// in ascending order.
func (b *Bus) Nodes() []int {
	out := make([]int, 0, len(b.inbox))
	for n := range b.inbox {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// ErrTimeout reports a request that never received a reply.
var ErrTimeout = errors.New("comm: request timed out")
