// Package comm provides the inter-shim message layer of Sec. V.B: local
// managers "need to communicate between each other to avoid conflictions",
// exchanging REQUEST/ACK/REJECT envelopes for VM migration and congestion
// notifications. The bus is an in-memory, deterministic network with
// per-node FIFO inboxes and injectable loss and delay, so the protocols
// built on it can be tested under adverse delivery conditions.
package comm

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"

	"sheriff/internal/obs"
)

// Type tags a message's protocol role.
type Type int

const (
	// MsgAlert carries an ALERT from a server/switch to its shim.
	MsgAlert Type = iota
	// MsgRequest asks a destination shim to accept a VM migration.
	MsgRequest
	// MsgAck grants a request.
	MsgAck
	// MsgReject refuses a request.
	MsgReject
	// MsgCongestion carries QCN-style congestion feedback.
	MsgCongestion
)

// String names the message type.
func (t Type) String() string {
	switch t {
	case MsgAlert:
		return "alert"
	case MsgRequest:
		return "request"
	case MsgAck:
		return "ack"
	case MsgReject:
		return "reject"
	case MsgCongestion:
		return "congestion"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Message is one envelope on the bus.
type Message struct {
	ID       int // bus-assigned, monotone per send
	Type     Type
	From, To int // node addresses (rack indices)
	VMID     int
	HostID   int
	Value    float64
	Seq      int // correlates requests with replies
}

// Verdict is an Injector's decision for one message entering the fabric.
// The zero Verdict passes the message through untouched.
type Verdict struct {
	// Drop discards the message; Cause names the fault for trace events.
	Drop  bool
	Cause string
	// ExtraDelay holds the message back this many additional Deliver
	// rounds on top of the bus's own delay draw.
	ExtraDelay int
	// Duplicates enqueues this many extra copies of the message, each one
	// Deliver round later than the previous (fabric duplication).
	Duplicates int
}

// Injector perturbs bus traffic — the fault-injection hook behind
// internal/faults. Judge is consulted once per Send with the current
// round; Reorder may permute one round's delivery batch in place and
// reports whether it did. Implementations must be deterministic functions
// of their seed and call order. A nil Options.Injector means no faults
// and costs nothing on the send/deliver path.
type Injector interface {
	Judge(round int, m Message) Verdict
	Reorder(round int, batch []Message) bool
}

// Options tunes the bus's delivery behaviour.
type Options struct {
	// LossRate drops each message independently with this probability.
	LossRate float64
	// MaxDelay holds a delivered message back up to this many Deliver
	// rounds (uniform); 0 = next round.
	MaxDelay int
	// Seed drives loss and delay draws.
	Seed int64
	// InboxLimit caps each node's queued inbox; messages delivered beyond
	// it are dropped with cause "overflow" (tail drop), bounding memory
	// under duplication storms. Zero means the default (4096); negative is
	// an error.
	InboxLimit int
	// Recorder, when non-nil, receives a send/deliver/drop event per
	// message movement; drop causes are seed-deterministic.
	Recorder *obs.Recorder
	// Injector, when non-nil, may drop, delay, duplicate, or reorder
	// traffic per its fault plan (see internal/faults).
	Injector Injector
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	if o.LossRate < 0 || o.LossRate >= 1 {
		return fmt.Errorf("comm: LossRate must be in [0,1), got %v", o.LossRate)
	}
	if o.MaxDelay < 0 {
		return fmt.Errorf("comm: MaxDelay must be >= 0, got %d", o.MaxDelay)
	}
	if o.InboxLimit < 0 {
		return fmt.Errorf("comm: InboxLimit must be >= 0 (0 = default), got %d", o.InboxLimit)
	}
	return nil
}

// WithDefaults returns the options with zero fields replaced by their
// defaults (the Validate + WithDefaults option convention; zero = default,
// negative = Validate error).
func (o Options) WithDefaults() Options {
	if o.InboxLimit == 0 {
		o.InboxLimit = 4096
	}
	return o
}

// Bus is a deterministic in-memory message network. It is not safe for
// concurrent use; protocols drive it round by round.
type Bus struct {
	opts     Options
	rng      *rand.Rand
	nextID   int
	round    int // completed Deliver rounds, stamps event rounds
	inFlight []pending
	inbox    map[int][]Message
	dropped  int
	sent     int

	duplicated int
	reordered  int

	batch []Message // per-Deliver scratch, reused to keep the hot path allocation-free
}

type pending struct {
	msg   Message
	delay int
}

// NewBus builds a bus for nodes addressed 0..n-1 (addresses outside the
// range are still accepted; inboxes are created on demand).
func NewBus(opts Options) (*Bus, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.WithDefaults()
	return &Bus{
		opts:  opts,
		rng:   rand.New(rand.NewSource(opts.Seed)),
		inbox: make(map[int][]Message),
	}, nil
}

// event fills the common Event fields for one message: the sender as the
// shim, the VM/host under negotiation, and the message type plus
// destination node as attributes.
func (b *Bus) event(kind obs.Kind, m Message) obs.Event {
	return obs.Event{
		Kind: kind, Round: b.round, Shim: m.From, VM: m.VMID, Host: m.HostID,
		Value: m.Value,
		Attrs: map[string]string{"msg": m.Type.String(), "to": strconv.Itoa(m.To)},
	}
}

// Send enqueues a message for delivery and returns its bus ID. The
// message may be lost (per LossRate) — exactly like a real fabric, the
// sender is not told.
func (b *Bus) Send(m Message) int {
	m.ID = b.nextID
	b.nextID++
	b.sent++
	rec := b.opts.Recorder
	if rec.Enabled() {
		rec.Record(b.event(obs.KindSend, m))
	}
	if b.opts.LossRate > 0 && b.rng.Float64() < b.opts.LossRate {
		b.dropped++
		if rec.Enabled() {
			e := b.event(obs.KindDrop, m)
			e.Attrs["cause"] = "loss"
			rec.Record(e)
		}
		return m.ID
	}
	delay := 0
	if b.opts.MaxDelay > 0 {
		delay = b.rng.Intn(b.opts.MaxDelay + 1)
	}
	if inj := b.opts.Injector; inj != nil {
		v := inj.Judge(b.round, m)
		if v.Drop {
			b.dropped++
			if rec.Enabled() {
				e := b.event(obs.KindDrop, m)
				e.Attrs["cause"] = v.Cause
				rec.Record(e)
			}
			return m.ID
		}
		delay += v.ExtraDelay
		for k := 1; k <= v.Duplicates; k++ {
			b.duplicated++
			b.inFlight = append(b.inFlight, pending{msg: m, delay: delay + k})
			if rec.Enabled() {
				rec.Record(b.event(obs.KindDup, m))
			}
		}
	}
	b.inFlight = append(b.inFlight, pending{msg: m, delay: delay})
	return m.ID
}

// Deliver advances one round: messages whose delay expired move to their
// destination inboxes in send order (unless the injector reorders the
// batch). It returns how many were delivered.
func (b *Bus) Deliver() int {
	b.round++
	rec := b.opts.Recorder
	inj := b.opts.Injector
	still := b.inFlight[:0] // in-place filter: writes trail the read index
	delivered := 0
	var batch []Message
	if inj != nil {
		// Due messages are staged so the injector can reorder the whole
		// round; the nil-injector path delivers in one pass instead.
		batch = b.batch[:0]
	}
	for _, p := range b.inFlight {
		if p.delay > 0 {
			p.delay--
			still = append(still, p)
			continue
		}
		if inj != nil {
			batch = append(batch, p.msg)
			continue
		}
		delivered += b.deposit(p.msg, rec)
	}
	b.inFlight = still
	if inj != nil {
		b.batch = batch
		if len(batch) > 1 && inj.Reorder(b.round, batch) {
			b.reordered++
			if rec.Enabled() {
				rec.Record(obs.Event{Kind: obs.KindReorder, Round: b.round,
					Shim: ShimlessNode, VM: ShimlessNode, Host: ShimlessNode,
					Value: float64(len(batch))})
			}
		}
		for _, m := range batch {
			delivered += b.deposit(m, rec)
		}
	}
	return delivered
}

// deposit moves one due message into its destination inbox, enforcing the
// InboxLimit tail drop. It returns 1 when delivered, 0 when dropped.
func (b *Bus) deposit(m Message, rec *obs.Recorder) int {
	q := b.inbox[m.To]
	if len(q) >= b.opts.InboxLimit {
		b.dropped++
		if rec.Enabled() {
			e := b.event(obs.KindDrop, m)
			e.Attrs["cause"] = "overflow"
			rec.Record(e)
		}
		return 0
	}
	b.inbox[m.To] = append(q, m)
	if rec.Enabled() {
		rec.Record(b.event(obs.KindDeliver, m))
	}
	return 1
}

// ShimlessNode marks trace identity fields with no protocol entity (the
// bus-wide reorder event has no single sender, VM, or host).
const ShimlessNode = -1

// Round returns the number of completed Deliver rounds.
func (b *Bus) Round() int { return b.round }

// Partitioned reports whether from→to traffic is currently cut by a named
// partition window of the installed injector. A nil or partition-unaware
// injector reports false. Protocols use this to avoid burning their retry
// budget on destinations the fabric cannot reach.
func (b *Bus) Partitioned(from, to int) (string, bool) {
	type partitioner interface {
		Partitioned(round, from, to int) (string, bool)
	}
	if p, ok := b.opts.Injector.(partitioner); ok {
		return p.Partitioned(b.round, from, to)
	}
	return "", false
}

// FaultStats returns (duplicated, reordered) counters: fabric-duplicated
// copies enqueued and delivery batches shuffled by the injector.
func (b *Bus) FaultStats() (duplicated, reordered int) {
	return b.duplicated, b.reordered
}

// Receive drains and returns the node's inbox in delivery order.
func (b *Bus) Receive(node int) []Message {
	msgs := b.inbox[node]
	delete(b.inbox, node)
	return msgs
}

// Pending returns how many messages are still in flight.
func (b *Bus) Pending() int { return len(b.inFlight) }

// Stats returns (sent, dropped) counters.
func (b *Bus) Stats() (sent, dropped int) { return b.sent, b.dropped }

// Nodes returns the addresses that currently have queued inbox messages,
// in ascending order.
func (b *Bus) Nodes() []int {
	out := make([]int, 0, len(b.inbox))
	for n := range b.inbox {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// ErrTimeout reports a request that never received a reply.
var ErrTimeout = errors.New("comm: request timed out")
