package qcn

import (
	"math"
	"testing"
	"testing/quick"
)

func newCP(t *testing.T, qeq float64) *CongestionPoint {
	t.Helper()
	cp, err := NewCongestionPoint(CPConfig{QEq: qeq})
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

func newRP(t *testing.T, line float64) *ReactionPoint {
	t.Helper()
	rp, err := NewReactionPoint(RPConfig{LineRate: line})
	if err != nil {
		t.Fatal(err)
	}
	return rp
}

func TestCPValidation(t *testing.T) {
	if _, err := NewCongestionPoint(CPConfig{QEq: 0}); err == nil {
		t.Error("QEq=0 accepted")
	}
	if _, err := NewCongestionPoint(CPConfig{QEq: 100, Capacity: 50}); err == nil {
		t.Error("capacity < QEq accepted")
	}
}

func TestCPEnqueueDequeue(t *testing.T) {
	cp := newCP(t, 100) // capacity defaults to 400
	if got := cp.Enqueue(150); got != 150 {
		t.Fatalf("enqueued %v", got)
	}
	if cp.Len() != 150 {
		t.Fatalf("len = %v", cp.Len())
	}
	cp.Dequeue(100)
	if cp.Len() != 50 {
		t.Fatalf("len after dequeue = %v", cp.Len())
	}
	cp.Dequeue(1000)
	if cp.Len() != 0 {
		t.Fatal("queue went negative")
	}
	if cp.Enqueue(-5) != 0 {
		t.Fatal("negative enqueue accepted")
	}
}

func TestCPDropsBeyondCapacity(t *testing.T) {
	cp := newCP(t, 100)
	cp.Enqueue(500) // capacity 400
	if cp.Len() != 400 {
		t.Fatalf("len = %v, want 400", cp.Len())
	}
	if cp.Dropped() != 100 {
		t.Fatalf("dropped = %v, want 100", cp.Dropped())
	}
	if math.Abs(cp.Occupancy()-1) > 1e-12 {
		t.Fatalf("occupancy = %v", cp.Occupancy())
	}
}

func TestCPSampleNoCongestionBelowEquilibrium(t *testing.T) {
	cp := newCP(t, 100)
	cp.Enqueue(50) // below QEq and rising from 0: Fb = -(−50 + 2·50) = -50 < 0!
	// Queue rising fast counts as congestion even below equilibrium —
	// that is the derivative term doing its job.
	if _, congested := cp.Sample(); !congested {
		t.Fatal("fast-rising queue should signal congestion")
	}
	// A stable queue below equilibrium is fine.
	cp2 := newCP(t, 100)
	cp2.Enqueue(50)
	cp2.Sample() // rolls qOld forward
	if fb, congested := cp2.Sample(); congested {
		t.Fatalf("stable sub-equilibrium queue congested: fb=%v", fb)
	}
}

func TestCPSampleCongestionAboveEquilibrium(t *testing.T) {
	cp := newCP(t, 100)
	cp.Enqueue(100)
	cp.Sample()
	cp.Enqueue(100) // q=200, qOld=100: Fb = -(100 + 2·100) = -300 → clamp 64
	fb, congested := cp.Sample()
	if !congested {
		t.Fatal("over-equilibrium queue not congested")
	}
	if fb != FbMax {
		t.Fatalf("fb = %v, want clamped %v", fb, float64(FbMax))
	}
}

func TestCPFeedbackQuantized(t *testing.T) {
	cp := newCP(t, 100)
	cp.Enqueue(110)
	cp.Sample()
	cp.Enqueue(5) // q=115: Fb = -(15 + 2·5) = -25
	fb, congested := cp.Sample()
	if !congested {
		t.Fatal("not congested")
	}
	// Quantization grid: FbMax/63.
	steps := fb / (FbMax / 63.0)
	if math.Abs(steps-math.Round(steps)) > 1e-9 {
		t.Fatalf("fb %v not on the 6-bit grid", fb)
	}
}

func TestRPValidation(t *testing.T) {
	if _, err := NewReactionPoint(RPConfig{}); err == nil {
		t.Error("zero line rate accepted")
	}
}

func TestRPFeedbackDropsRate(t *testing.T) {
	rp := newRP(t, 10)
	rp.Feedback(FbMax) // max feedback halves the rate (Gd·FbMax = 1/2)
	if math.Abs(rp.Rate()-5) > 1e-9 {
		t.Fatalf("rate = %v, want 5", rp.Rate())
	}
	if rp.Target() != 10 {
		t.Fatalf("target = %v, want previous rate 10", rp.Target())
	}
	if !rp.InFastRecovery() {
		t.Fatal("should be in fast recovery")
	}
	rp.Feedback(0) // non-positive ignored
	if math.Abs(rp.Rate()-5) > 1e-9 {
		t.Fatal("zero feedback changed the rate")
	}
}

func TestRPRateFloor(t *testing.T) {
	rp := newRP(t, 10)
	for i := 0; i < 100; i++ {
		rp.Feedback(FbMax)
	}
	if rp.Rate() < 10.0/1000-1e-12 {
		t.Fatalf("rate %v fell below the floor", rp.Rate())
	}
}

func TestRPFastRecoveryConverges(t *testing.T) {
	rp := newRP(t, 10)
	rp.Feedback(FbMax) // rate 5, target 10
	// Five fast-recovery cycles halve the gap each time.
	want := 5.0
	for i := 0; i < 5; i++ {
		rp.Sent(150e3)
		want = (want + 10) / 2
		if math.Abs(rp.Rate()-want) > 1e-9 {
			t.Fatalf("cycle %d: rate %v, want %v", i, rp.Rate(), want)
		}
	}
	if rp.InFastRecovery() {
		t.Fatal("fast recovery should be over after 5 cycles")
	}
}

func TestRPActiveIncreaseProbes(t *testing.T) {
	rp := newRP(t, 10)
	rp.Feedback(FbMax)
	for i := 0; i < 5; i++ {
		rp.Sent(150e3)
	}
	before := rp.Rate()
	rp.Sent(150e3) // first AI cycle: TR += RAI
	if rp.Rate() <= before {
		t.Fatalf("active increase did not raise rate: %v -> %v", before, rp.Rate())
	}
	// Rate can never exceed the line rate.
	for i := 0; i < 1000; i++ {
		rp.Sent(150e3)
	}
	if rp.Rate() > 10+1e-9 {
		t.Fatalf("rate %v exceeded line rate", rp.Rate())
	}
}

func TestTunnelConvergesToServiceRate(t *testing.T) {
	cp := newCP(t, 600)
	rp, err := NewReactionPoint(RPConfig{LineRate: 10, BCLimit: 30})
	if err != nil {
		t.Fatal(err)
	}
	tn, err := NewTunnel(cp, rp, 6) // bottleneck: 6 of 10
	if err != nil {
		t.Fatal(err)
	}
	tn.Run(3000)
	// After convergence the sending rate hovers near the service rate
	// and the queue stays bounded (no standing overload).
	rate := rp.Rate()
	if rate < 3 || rate > 9 {
		t.Fatalf("converged rate %v not near bottleneck 6", rate)
	}
	if cp.Occupancy() > 0.95 {
		t.Fatalf("queue pinned at capacity: occupancy %v", cp.Occupancy())
	}
	if tn.Feedbacks() == 0 {
		t.Fatal("no feedback was ever generated")
	}
}

func TestTunnelNoCongestionAtLowLoad(t *testing.T) {
	cp := newCP(t, 600)
	rp, err := NewReactionPoint(RPConfig{LineRate: 3, BCLimit: 30})
	if err != nil {
		t.Fatal(err)
	}
	tn, err := NewTunnel(cp, rp, 6) // service exceeds line rate
	if err != nil {
		t.Fatal(err)
	}
	tn.Run(500)
	if rp.Rate() < 3-1e-9 {
		t.Fatalf("uncongested sender slowed down to %v", rp.Rate())
	}
	if cp.Dropped() != 0 {
		t.Fatal("drops without congestion")
	}
}

func TestTunnelValidation(t *testing.T) {
	cp := newCP(t, 100)
	rp := newRP(t, 10)
	if _, err := NewTunnel(cp, rp, 0); err == nil {
		t.Fatal("zero service rate accepted")
	}
}

// Property: the RP rate always stays within [MinRate, LineRate] under any
// feedback/send sequence.
func TestRPRateBoundsProperty(t *testing.T) {
	f := func(events []uint8) bool {
		rp, err := NewReactionPoint(RPConfig{LineRate: 10, BCLimit: 100})
		if err != nil {
			return false
		}
		for _, e := range events {
			if e%2 == 0 {
				rp.Feedback(float64(e % 65))
			} else {
				rp.Sent(float64(e) * 10)
			}
			if rp.Rate() < 10.0/1000-1e-12 || rp.Rate() > 10+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
