// Package qcn implements Quantized Congestion Notification (IEEE
// 802.1Qau), the congestion-control machinery the paper relies on for
// switch-side alerts (Sec. III.A–B and refs [21]–[23], [28]): switches
// detect flow congestion from queue state and "return the sender a
// special feedback according to current queue length"; end hosts then
// "modify the rate … to reach the goal of easing the congestion".
//
// Two halves:
//
//   - CongestionPoint (CP): a switch queue sampling its occupancy. The
//     feedback is Fb = −(Q_off + w·Q_delta) with Q_off = Q − Q_eq and
//     Q_delta = Q − Q_old; negative Fb means congestion and its quantized
//     magnitude is sent to the source.
//   - ReactionPoint (RP): the end-host rate limiter. On feedback the rate
//     drops multiplicatively (CR ← CR·(1 − G_d·|Fb|)); recovery proceeds
//     through five Fast-Recovery cycles (CR ← (CR+TR)/2) followed by
//     Active Increase (TR ← TR + R_AI).
package qcn

import (
	"errors"
	"math"
)

// CPConfig parameterizes a congestion point.
type CPConfig struct {
	QEq      float64 // equilibrium queue length (bytes or any unit)
	W        float64 // derivative weight w (default 2, per 802.1Qau)
	Capacity float64 // maximum queue length; arrivals beyond it are dropped
}

func (c CPConfig) withDefaults() CPConfig {
	if c.W == 0 {
		c.W = 2
	}
	if c.Capacity == 0 {
		c.Capacity = 4 * c.QEq
	}
	return c
}

// CongestionPoint is one monitored switch queue.
type CongestionPoint struct {
	cfg     CPConfig
	q       float64 // current occupancy
	qOld    float64 // occupancy at the previous sample
	dropped float64
}

// NewCongestionPoint builds a CP. QEq must be positive.
func NewCongestionPoint(cfg CPConfig) (*CongestionPoint, error) {
	if cfg.QEq <= 0 {
		return nil, errors.New("qcn: QEq must be > 0")
	}
	cfg = cfg.withDefaults()
	if cfg.Capacity < cfg.QEq {
		return nil, errors.New("qcn: capacity below equilibrium")
	}
	return &CongestionPoint{cfg: cfg}, nil
}

// Enqueue adds bytes to the queue, dropping what exceeds capacity. It
// returns the bytes actually queued.
func (cp *CongestionPoint) Enqueue(bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	space := cp.cfg.Capacity - cp.q
	if bytes > space {
		cp.dropped += bytes - space
		bytes = space
	}
	cp.q += bytes
	return bytes
}

// Dequeue drains bytes from the queue.
func (cp *CongestionPoint) Dequeue(bytes float64) {
	cp.q -= bytes
	if cp.q < 0 {
		cp.q = 0
	}
}

// Len returns the current queue occupancy.
func (cp *CongestionPoint) Len() float64 { return cp.q }

// Dropped returns the cumulative dropped bytes.
func (cp *CongestionPoint) Dropped() float64 { return cp.dropped }

// Occupancy returns Len/Capacity in [0,1].
func (cp *CongestionPoint) Occupancy() float64 { return cp.q / cp.cfg.Capacity }

// FbMax is the maximum feedback magnitude; Fb quantizes to 6 bits over
// [0, FbMax] as in 802.1Qau.
const FbMax = 64

// Sample computes the QCN feedback at this instant:
// Fb = −(Q_off + w·Q_delta). congested is true when Fb < 0, and then
// fb holds |Fb| clamped to FbMax (quantized to 6 bits). Sampling also
// rolls the Q_old reference forward.
func (cp *CongestionPoint) Sample() (fb float64, congested bool) {
	qOff := cp.q - cp.cfg.QEq
	qDelta := cp.q - cp.qOld
	cp.qOld = cp.q
	raw := -(qOff + cp.cfg.W*qDelta)
	if raw >= 0 {
		return 0, false
	}
	mag := math.Min(-raw, FbMax)
	// Quantize to 6 bits (64 levels over [0, FbMax]).
	mag = math.Round(mag/FbMax*63) * FbMax / 63
	return mag, true
}

// RPConfig parameterizes a reaction point.
type RPConfig struct {
	LineRate float64 // maximum (line) rate
	MinRate  float64 // floor rate (default LineRate/1000)
	Gd       float64 // decrease gain; Gd·FbMax = 1/2 by default
	RAI      float64 // active-increase step (default LineRate/100)
	FRCycles int     // fast-recovery cycles before AI (default 5)
	BCLimit  float64 // bytes per rate-update cycle (default 150e3, i.e. 100 frames of 1500B)
}

func (c RPConfig) withDefaults() RPConfig {
	if c.MinRate == 0 {
		c.MinRate = c.LineRate / 1000
	}
	if c.Gd == 0 {
		c.Gd = 0.5 / FbMax
	}
	if c.RAI == 0 {
		c.RAI = c.LineRate / 100
	}
	if c.FRCycles == 0 {
		c.FRCycles = 5
	}
	if c.BCLimit == 0 {
		c.BCLimit = 150e3
	}
	return c
}

// ReactionPoint is the end-host rate limiter of one congestion-controlled
// tunnel (the shim "forces all traffic into congestion-controlled
// tunnels", Sec. II.B).
type ReactionPoint struct {
	cfg RPConfig

	rate       float64 // CR: current rate
	target     float64 // TR: target rate
	cycleBytes float64
	frLeft     int // fast-recovery cycles remaining (0 = active increase)
}

// NewReactionPoint builds an RP running at line rate.
func NewReactionPoint(cfg RPConfig) (*ReactionPoint, error) {
	if cfg.LineRate <= 0 {
		return nil, errors.New("qcn: LineRate must be > 0")
	}
	cfg = cfg.withDefaults()
	return &ReactionPoint{cfg: cfg, rate: cfg.LineRate, target: cfg.LineRate}, nil
}

// Rate returns the current sending rate CR.
func (rp *ReactionPoint) Rate() float64 { return rp.rate }

// Target returns the recovery target rate TR.
func (rp *ReactionPoint) Target() float64 { return rp.target }

// InFastRecovery reports whether the RP is still in fast recovery.
func (rp *ReactionPoint) InFastRecovery() bool { return rp.frLeft > 0 }

// Feedback applies one congestion message of magnitude fb (≥0):
// TR ← CR, CR ← CR·(1 − G_d·fb), bounded below by MinRate, and fast
// recovery restarts.
func (rp *ReactionPoint) Feedback(fb float64) {
	if fb <= 0 {
		return
	}
	if fb > FbMax {
		fb = FbMax
	}
	rp.target = rp.rate
	rp.rate *= 1 - rp.cfg.Gd*fb
	if rp.rate < rp.cfg.MinRate {
		rp.rate = rp.cfg.MinRate
	}
	rp.frLeft = rp.cfg.FRCycles
	rp.cycleBytes = 0
}

// Sent accounts bytes transmitted; every BCLimit bytes completes one
// rate-update cycle (fast recovery first, then active increase).
func (rp *ReactionPoint) Sent(bytes float64) {
	rp.cycleBytes += bytes
	for rp.cycleBytes >= rp.cfg.BCLimit {
		rp.cycleBytes -= rp.cfg.BCLimit
		rp.cycle()
	}
}

func (rp *ReactionPoint) cycle() {
	if rp.frLeft > 0 {
		// Fast recovery: move halfway back toward the target.
		rp.rate = (rp.rate + rp.target) / 2
		rp.frLeft--
		return
	}
	// Active increase: probe for bandwidth.
	rp.target += rp.cfg.RAI
	if rp.target > rp.cfg.LineRate {
		rp.target = rp.cfg.LineRate
	}
	rp.rate = (rp.rate + rp.target) / 2
	if rp.rate > rp.cfg.LineRate {
		rp.rate = rp.cfg.LineRate
	}
}

// Tunnel couples a CP and an RP into one closed loop for simulation: each
// Step delivers the RP's traffic into the CP's queue, drains the queue at
// the service rate, samples the CP, and feeds congestion back to the RP.
type Tunnel struct {
	CP *CongestionPoint
	RP *ReactionPoint

	ServiceRate float64 // queue drain per step
	feedbacks   int
}

// NewTunnel builds a closed loop. serviceRate is the bottleneck capacity
// per step.
func NewTunnel(cp *CongestionPoint, rp *ReactionPoint, serviceRate float64) (*Tunnel, error) {
	if serviceRate <= 0 {
		return nil, errors.New("qcn: service rate must be > 0")
	}
	return &Tunnel{CP: cp, RP: rp, ServiceRate: serviceRate}, nil
}

// Step advances the loop by one unit of time: send at CR, drain at the
// service rate, sample, feed back. It returns the queue length after the
// step.
func (t *Tunnel) Step() float64 {
	sent := t.RP.Rate()
	t.CP.Enqueue(sent)
	t.RP.Sent(sent)
	t.CP.Dequeue(t.ServiceRate)
	if fb, congested := t.CP.Sample(); congested {
		t.RP.Feedback(fb)
		t.feedbacks++
	}
	return t.CP.Len()
}

// Feedbacks returns how many congestion messages have been delivered.
func (t *Tunnel) Feedbacks() int { return t.feedbacks }

// Run advances n steps and returns the final queue length.
func (t *Tunnel) Run(n int) float64 {
	var q float64
	for i := 0; i < n; i++ {
		q = t.Step()
	}
	return q
}
