package runtime

import (
	"sync"
	"testing"

	"sheriff/internal/cost"
	"sheriff/internal/dcn"
	"sheriff/internal/obs"
	"sheriff/internal/topology"
)

// TestRecorderSharedAcrossRuntimes hammers one Recorder from several
// concurrently stepping runtimes (each Step additionally fans its predict
// phase out over the shared pool), the deployment shape where one trace
// aggregates a whole fleet. Run under -race; the assertions only check
// the recorder survived with a consistent event stream.
func TestRecorderSharedAcrossRuntimes(t *testing.T) {
	rec, err := obs.New(obs.Options{Ring: 512})
	if err != nil {
		t.Fatal(err)
	}
	const runtimes = 4
	const steps = 6

	var wg sync.WaitGroup
	errs := make([]error, runtimes)
	for i := 0; i < runtimes; i++ {
		ft, err := topology.NewFatTree(topology.FatTreeConfig{Pods: 4})
		if err != nil {
			t.Fatal(err)
		}
		cluster, err := dcn.NewCluster(ft.Graph, dcn.Config{HostsPerRack: 2, HostCapacity: 100, ToRCapacity: 200})
		if err != nil {
			t.Fatal(err)
		}
		cluster.Populate(dcn.PopulateOptions{VMsPerHost: 3, MinCapacity: 5, MaxCapacity: 20, DependencyProb: 0.4, Seed: int64(i)})
		model, err := cost.New(cluster, cost.PaperParams())
		if err != nil {
			t.Fatal(err)
		}
		rt, err := New(cluster, model, Options{Seed: int64(i), Recorder: rec})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, rt *Runtime) {
			defer wg.Done()
			_, errs[i] = rt.Run(steps)
		}(i, rt)
	}
	// A concurrent reader drains snapshots while the writers run.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for j := 0; j < 200; j++ {
			_ = rec.Events()
			_ = rec.Kinds()
			for _, k := range rec.Kinds() {
				_ = rec.Stats(k)
			}
		}
	}()
	wg.Wait()
	<-done

	for i, err := range errs {
		if err != nil {
			t.Fatalf("runtime %d: %v", i, err)
		}
	}
	if err := rec.Err(); err != nil {
		t.Fatalf("recorder error: %v", err)
	}
	// Every step records 4 phase events, so at minimum the recorder saw
	// runtimes × steps × 4 of those.
	if got := rec.Count(obs.KindPhase); got < runtimes*steps*4 {
		t.Fatalf("phase events = %d, want >= %d", got, runtimes*steps*4)
	}
	events := rec.Events()
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatalf("ring order broken at %d: seq %d after %d", i, events[i].Seq, events[i-1].Seq)
		}
	}
}
