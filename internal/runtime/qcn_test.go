package runtime

import (
	"testing"

	"sheriff/internal/cost"
	"sheriff/internal/dcn"
	"sheriff/internal/topology"
)

// buildHotRuntime builds a runtime whose flows saturate the fabric, so
// hot-switch machinery has something to detect: a tiny Fat-Tree with many
// cross-rack dependencies and high flow rates.
func buildHotRuntime(t *testing.T, opts Options) *Runtime {
	t.Helper()
	ft, err := topology.NewFatTree(topology.FatTreeConfig{Pods: 4})
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := dcn.NewCluster(ft.Graph, dcn.Config{HostsPerRack: 2, HostCapacity: 100, ToRCapacity: 200})
	if err != nil {
		t.Fatal(err)
	}
	cluster.Populate(dcn.PopulateOptions{
		VMsPerHost: 3, MinCapacity: 5, MaxCapacity: 15,
		DependencyProb: 0.6, CrossRackDependencyProb: 0.8, Seed: opts.Seed,
	})
	model, err := cost.New(cluster, cost.PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	// Saturating flow rates.
	opts.FlowRate = func(trf float64) float64 { return 0.5 + 0.5*trf }
	r, err := New(cluster, model, opts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestQCNModeDetectsCongestion(t *testing.T) {
	r := buildHotRuntime(t, Options{Seed: 11, UseQCN: true})
	hist, err := r.Run(20)
	if err != nil {
		t.Fatal(err)
	}
	feedbacks := 0
	for _, s := range hist {
		feedbacks += s.QCNFeedbacks
	}
	if feedbacks == 0 {
		t.Fatal("QCN mode never sampled congestion on a saturated fabric")
	}
}

func TestRerouteReducesHotSwitchesVsDisabled(t *testing.T) {
	on := buildHotRuntime(t, Options{Seed: 12})
	off := buildHotRuntime(t, Options{Seed: 12, DisableReroute: true})
	hOn, err := on.Run(20)
	if err != nil {
		t.Fatal(err)
	}
	hOff, err := off.Run(20)
	if err != nil {
		t.Fatal(err)
	}
	hotOn, hotOff, reroutes := 0, 0, 0
	for i := range hOn {
		hotOn += hOn[i].HotSwitches
		hotOff += hOff[i].HotSwitches
		reroutes += hOn[i].Reroutes
	}
	if reroutes == 0 {
		t.Skip("fabric never hot enough to exercise reroute at this seed")
	}
	if hotOn > hotOff {
		t.Fatalf("rerouting increased hot-switch exposure: %d vs %d", hotOn, hotOff)
	}
}

func TestDisableRerouteNeverMovesFlows(t *testing.T) {
	r := buildHotRuntime(t, Options{Seed: 13, DisableReroute: true})
	hist, err := r.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range hist {
		if s.Reroutes != 0 {
			t.Fatalf("reroute happened despite DisableReroute: %+v", s)
		}
	}
}
