// The sharded step engine: the default since the hyperscale rework.
//
// VM state lives in flat struct-of-arrays slices ordered rack-major
// (ascending rack index, ascending VM ID within a rack), partitioned into
// contiguous rack ranges owned by persistent shard workers (pool.Shards).
// Each phase is one batched round: the coordinator wakes every shard, the
// shards work only on the ranges they own, and the coordinator folds the
// per-shard results in shard order — which, because shards are contiguous
// in the global rack-major order, reproduces the reference engine's
// deterministic global fold exactly. Per-VM predictor state is the Holt
// (level, trend) pair per component — bit-exact with re-smoothing the full
// history (see TestTrendStateMatchesEwmaTrend) at 1/500th the memory.
package runtime

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"sheriff/internal/alert"
	"sheriff/internal/dcn"
	"sheriff/internal/migrate"
	"sheriff/internal/obs"
	"sheriff/internal/pool"
	"sheriff/internal/predictor"
	"sheriff/internal/timeseries"
	"sheriff/internal/traces"
)

// queueThreshold is the ToR queue-occupancy alert fraction (of QueueLimit).
const queueThreshold = 0.9

// holtCoeff carries the Holt smoothing coefficients shared by every
// predictor in the system. Both engines route the recursion through the
// same fold method so the arithmetic is expression-identical.
var holtCoeff = ewmaTrend{alpha: 0.5, beta: 0.3}

// fold advances one Holt (level, trend) state by one observation, the
// exact recursion of ewmaTrend.ForecastFrom.
func (e ewmaTrend) fold(level, trend, x float64) (float64, float64) {
	prev := level
	level = e.alpha*x + (1-e.alpha)*(level+trend)
	trend = e.beta*(level-prev) + (1-e.beta)*trend
	return level, trend
}

// holtState is one component's incremental Holt smoothing state.
type holtState struct{ level, trend float64 }

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// flowWant is one shard's vote for a dependency flow, emitted in the
// shard's deterministic iteration order and merged first-encounter-wins by
// the coordinator.
type flowWant struct {
	key      [2]int
	src, dst int
	rate     float64
	ds       bool
}

// shardState is the sharded engine's private state.
type shardState struct {
	workers *pool.Shards
	n       int // shard count

	// Shard partition: shard s owns racks [rackLo[s], rackHi[s]) and the
	// dense VM range [vmLo[s], vmHi[s]).
	rackLo, rackHi []int
	vmLo, vmHi     []int

	// Per-VM SoA state, rack-major then ascending VM ID. Each entry is
	// written only by its owning shard during a phase round.
	vms       []*dcn.VM
	rack      []int32
	cur       []traces.Profile
	pred      [][4]holtState   // per-component Holt state, profile order
	nObs      []int32          // profiles folded per VM
	srcs      []traces.Source  // per-VM streams; nil when Kind == Lite
	lite      []traces.LiteGen // Lite fast path: value slice, no per-VM heap state
	rackStart []int32          // dense VM range of each rack (len racks+1)

	// Per-rack monitor state and reused alert buckets.
	qHolt        []holtState
	qN           []int32
	alertsByRack [][]alert.Alert

	// Deep-forecast scratch: the owning shard stores each rack's predicted
	// value; the coordinator records and counts in rack order, then clears.
	deepVal []float64
	deepOK  []bool

	// External-profile overlay (StepExternal), epoch-stamped so a steady
	// ingest loop never rebuilds a map.
	vmIndex  map[int]int32
	extProf  []traces.Profile
	extMark  []uint64
	extEpoch uint64
	external bool

	// Per-shard fold outputs for the coordinator.
	dur          []time.Duration
	serverAlerts []int
	torAlerts    []int
	maxUtil      []float64

	// Flow-sync scratch, reused across steps.
	wants    [][]flowWant
	desired  map[[2]int]flowWant
	keyBuf   [][2]int
	admitBuf [][2]int

	// Prebuilt phase closures (method values) so Shards.Do never allocates.
	predictFn func(int)
	flowsFn   func(int)
	monitorFn func(int)
}

// initSharded assembles the sharded engine: dense rack-major VM arrays,
// a contiguous-rack shard partition balanced by VM count, and the
// persistent worker group. Shims are built lazily on a rack's first alert
// (their neighbor scans are O(racks) each — eager construction would be
// quadratic on a 5,000-rack leaf-spine).
func (r *Runtime) initSharded() error {
	racks := len(r.Cluster.Racks)
	if racks == 0 {
		return fmt.Errorf("runtime: cluster has no racks")
	}
	vms := r.Cluster.VMs()
	sort.Slice(vms, func(i, j int) bool { return vms[i].ID < vms[j].ID })

	sh := &shardState{}
	// Dense rack-major order: count per rack, prefix-sum, then place VMs
	// in ascending-ID order within each rack's range.
	sh.rackStart = make([]int32, racks+1)
	for _, vm := range vms {
		sh.rackStart[vm.Host().Rack().Index+1]++
	}
	for i := 0; i < racks; i++ {
		sh.rackStart[i+1] += sh.rackStart[i]
	}
	n := len(vms)
	sh.vms = make([]*dcn.VM, n)
	sh.rack = make([]int32, n)
	sh.cur = make([]traces.Profile, n)
	sh.pred = make([][4]holtState, n)
	sh.nObs = make([]int32, n)
	sh.vmIndex = make(map[int]int32, n)
	sh.extProf = make([]traces.Profile, n)
	sh.extMark = make([]uint64, n)
	liteKind := r.gen.Kind() == traces.Lite
	if liteKind {
		sh.lite = make([]traces.LiteGen, n)
	} else {
		sh.srcs = make([]traces.Source, n)
	}
	fill := make([]int32, racks)
	copy(fill, sh.rackStart[:racks])
	for _, vm := range vms {
		rk := vm.Host().Rack().Index
		i := fill[rk]
		fill[rk]++
		sh.vms[i] = vm
		sh.rack[i] = int32(rk)
		sh.vmIndex[vm.ID] = i
		if liteKind {
			// Store the O(1)-state generator by value: a million-VM run
			// carries 3 words per VM instead of a heap object.
			sh.lite[i] = *(r.gen.Source(vm.ID, rk).(*traces.LiteGen))
		} else {
			sh.srcs[i] = r.gen.Source(vm.ID, rk)
		}
	}

	// Shard partition: contiguous rack ranges, balanced by VM count, every
	// shard owning at least one rack.
	ns := r.opts.Shards
	if ns > racks {
		ns = racks
	}
	sh.n = ns
	sh.rackLo = make([]int, ns)
	sh.rackHi = make([]int, ns)
	sh.vmLo = make([]int, ns)
	sh.vmHi = make([]int, ns)
	lo := 0
	for s := 0; s < ns; s++ {
		remaining := ns - s - 1
		hi := lo + 1
		target := int32(int64(n) * int64(s+1) / int64(ns))
		for hi < racks-remaining && sh.rackStart[hi] < target {
			hi++
		}
		if s == ns-1 {
			hi = racks
		}
		sh.rackLo[s], sh.rackHi[s] = lo, hi
		sh.vmLo[s], sh.vmHi[s] = int(sh.rackStart[lo]), int(sh.rackStart[hi])
		lo = hi
	}

	sh.qHolt = make([]holtState, racks)
	sh.qN = make([]int32, racks)
	sh.alertsByRack = make([][]alert.Alert, racks)
	if r.opts.DeepPredict {
		sh.deepVal = make([]float64, racks)
		sh.deepOK = make([]bool, racks)
	}
	sh.dur = make([]time.Duration, ns)
	sh.serverAlerts = make([]int, ns)
	sh.torAlerts = make([]int, ns)
	sh.maxUtil = make([]float64, ns)
	sh.wants = make([][]flowWant, ns)
	sh.desired = make(map[[2]int]flowWant)

	sh.workers = pool.NewShards(ns)
	sh.predictFn = r.predictShard
	sh.flowsFn = r.flowShard
	sh.monitorFn = r.monitorShard

	r.shims = make([]*migrate.Shim, racks)
	r.sh = sh
	return nil
}

// predictShard is phase 1 for one shard: observe (generator, or the
// external overlay), fold the Holt states, and raise server pre-alerts
// into the shard-owned per-rack buckets — ascending VM ID within each
// rack, exactly the reference fold order. Deep-pool aggregation rides in
// the same round (it reads only profiles this shard just wrote).
func (r *Runtime) predictShard(s int) {
	sh := r.sh
	start := time.Now()
	th := r.opts.Thresholds
	alerts := 0
	for i := sh.vmLo[s]; i < sh.vmHi[s]; i++ {
		var p traces.Profile
		switch {
		case sh.external:
			p = sh.cur[i]
			if sh.extMark[i] == sh.extEpoch {
				p = sh.extProf[i]
			}
		case sh.lite != nil:
			p = sh.lite[i].Next()
		default:
			p = sh.srcs[i].Next()
		}
		sh.cur[i] = p
		hp := &sh.pred[i]
		if sh.nObs[i] == 0 {
			hp[0] = holtState{p.CPU, 0}
			hp[1] = holtState{p.Mem, 0}
			hp[2] = holtState{p.IO, 0}
			hp[3] = holtState{p.TRF, 0}
		} else {
			hp[0].level, hp[0].trend = holtCoeff.fold(hp[0].level, hp[0].trend, p.CPU)
			hp[1].level, hp[1].trend = holtCoeff.fold(hp[1].level, hp[1].trend, p.Mem)
			hp[2].level, hp[2].trend = holtCoeff.fold(hp[2].level, hp[2].trend, p.IO)
			hp[3].level, hp[3].trend = holtCoeff.fold(hp[3].level, hp[3].trend, p.TRF)
		}
		sh.nObs[i]++
		if sh.nObs[i] < 3 {
			continue // not enough history to extrapolate
		}
		f0 := clamp01(hp[0].level + hp[0].trend*1)
		f1 := clamp01(hp[1].level + hp[1].trend*1)
		f2 := clamp01(hp[2].level + hp[2].trend*1)
		f3 := clamp01(hp[3].level + hp[3].trend*1)
		if !(f0 > th.CPU || f1 > th.Mem || f2 > th.IO || f3 > th.TRF) {
			continue
		}
		v := f0
		if f1 > v {
			v = f1
		}
		if f2 > v {
			v = f2
		}
		if f3 > v {
			v = f3
		}
		vm := sh.vms[i]
		vm.Alert = v
		a := alert.Alert{Kind: alert.FromServer, Value: v, VMID: vm.ID, RackIndex: int(sh.rack[i])}
		if h := vm.Host(); h != nil {
			a.HostID = h.ID
		}
		rk := sh.rack[i]
		sh.alertsByRack[rk] = append(sh.alertsByRack[rk], a)
		alerts++
	}
	if r.opts.DeepPredict {
		r.deepShard(s)
	}
	sh.serverAlerts[s] = alerts
	sh.dur[s] = time.Since(start)
}

// deepShard advances the deep forecasting pools of the shard's racks; the
// semantics mirror deepStepRef exactly (same aggregation order, same fit
// trigger, same seeds), but the obs events are deferred to the coordinator
// so the trace stays in rack order.
func (r *Runtime) deepShard(s int) {
	sh := r.sh
	for rk := sh.rackLo[s]; rk < sh.rackHi[s]; rk++ {
		lo, hi := sh.rackStart[rk], sh.rackStart[rk+1]
		if lo == hi {
			continue
		}
		agg := 0.0
		for i := lo; i < hi; i++ {
			agg += sh.cur[i].Max()
		}
		agg /= float64(hi - lo)

		sel := r.deep[rk]
		if sel == nil {
			h := r.deepHist[rk]
			h.Append(agg)
			if h.Len() < r.opts.DeepFitAfter {
				continue
			}
			fitted, err := predictor.New(h, predictor.Options{Seed: r.opts.Seed + int64(rk)})
			if err != nil {
				continue // not enough signal yet; retry next step
			}
			r.deep[rk] = fitted
			r.deepHist[rk] = timeseries.New(nil)
			sel = fitted
		} else {
			sel.Observe(agg)
		}
		p, err := sel.Predict()
		if err != nil {
			continue
		}
		sh.deepVal[rk] = p
		sh.deepOK[rk] = true
	}
}

// flowShard is phase 2's scatter: each shard emits its racks' desired
// dependency flows in rack-major, VM-ascending order. Only reads of the
// dependency graph and cluster placement happen here; all flow-network
// mutation is the coordinator's (mergeFlows).
func (r *Runtime) flowShard(s int) {
	sh := r.sh
	start := time.Now()
	wants := sh.wants[s][:0]
	for i := sh.vmLo[s]; i < sh.vmHi[s]; i++ {
		vm := sh.vms[i]
		for _, peerID := range r.Cluster.Deps.Peers(vm.ID) {
			peer := r.Cluster.VM(peerID)
			if peer == nil || peer.Host() == nil || vm.Host() == nil {
				continue
			}
			a, b := vm.ID, peerID
			if a > b {
				a, b = b, a
			}
			srcNode := vm.Host().Rack().NodeID
			dstNode := peer.Host().Rack().NodeID
			if srcNode == dstNode {
				continue // intra-rack traffic never crosses the fabric
			}
			wants = append(wants, flowWant{
				key:  [2]int{a, b},
				src:  srcNode,
				dst:  dstNode,
				rate: r.opts.FlowRate(sh.cur[i].TRF),
				ds:   vm.DelaySensitive || peer.DelaySensitive,
			})
		}
	}
	sh.wants[s] = wants
	sh.dur[s] = time.Since(start)
}

// mergeFlows is phase 2's gather: concatenating the shard want-lists in
// shard order reproduces the reference engine's global iteration order, so
// first-encounter-wins dedup picks the same rate for every pair; the
// reconcile and admission passes are byte-for-byte the reference logic
// over reused scratch.
func (r *Runtime) mergeFlows() {
	sh := r.sh
	clear(sh.desired)
	for s := 0; s < sh.n; s++ {
		for _, w := range sh.wants[s] {
			if _, ok := sh.desired[w.key]; !ok {
				sh.desired[w.key] = w
			}
		}
	}
	existing := sh.keyBuf[:0]
	for key := range r.flowByPair {
		existing = append(existing, key)
	}
	sh.keyBuf = existing
	sortKeys(existing)
	for _, key := range existing {
		id := r.flowByPair[key]
		f := r.Flows.Flow(id)
		w, ok := sh.desired[key]
		if f == nil || !ok || f.Src != w.src || f.Dst != w.dst {
			if f != nil {
				r.Flows.RemoveFlow(id)
			}
			delete(r.flowByPair, key)
			continue
		}
		if f.Rate != w.rate {
			_ = r.Flows.SetRate(f, w.rate)
		}
		delete(sh.desired, key) // handled
	}
	admit := sh.admitBuf[:0]
	for key := range sh.desired {
		admit = append(admit, key)
	}
	sh.admitBuf = admit
	sortKeys(admit)
	for _, key := range admit {
		w := sh.desired[key]
		f, err := r.Flows.AddFlow(w.src, w.dst, w.rate, w.ds)
		if err != nil {
			continue // unroutable pairs are skipped, not fatal
		}
		r.flowByPair[key] = f.ID
	}
}

func sortKeys(keys [][2]int) {
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
}

// monitorShard is phase 3's parallel half: per-rack uplink monitors over
// the (read-only at this point) flow network. ToR alerts append to the
// shard-owned rack buckets; the per-shard max utilization folds to the
// global max afterwards.
func (r *Runtime) monitorShard(s int) {
	sh := r.sh
	start := time.Now()
	maxU := 0.0
	tor := 0
	limit := r.opts.QueueLimit
	for rk := sh.rackLo[s]; rk < sh.rackHi[s]; rk++ {
		util := r.uplinkUtilization(r.Cluster.Racks[rk])
		if util > maxU {
			maxU = util
		}
		q := &sh.qHolt[rk]
		if sh.qN[rk] == 0 {
			q.level, q.trend = util, 0
		} else {
			q.level, q.trend = holtCoeff.fold(q.level, q.trend, util)
		}
		sh.qN[rk]++
		occ := clamp01((q.level + q.trend*1) / limit)
		if occ > queueThreshold {
			sh.alertsByRack[rk] = append(sh.alertsByRack[rk],
				alert.Alert{Kind: alert.FromLocalToR, Value: occ, RackIndex: rk})
			tor++
		}
	}
	sh.maxUtil[s] = maxU
	sh.torAlerts[s] = tor
	sh.dur[s] = time.Since(start)
}

// recordShardedPhase folds the per-shard durations of the round that just
// completed into the phase's skew summary and emits the phase event, with
// fan-out stats attached when tracing is on. Skew is max shard time over
// mean shard time: 1.0 = perfectly balanced, n = one shard did everything.
func (r *Runtime) recordShardedPhase(rec *obs.Recorder, skewIdx int, name string, total time.Duration) {
	sh := r.sh
	var sum, max time.Duration
	for s := 0; s < sh.n; s++ {
		d := sh.dur[s]
		sum += d
		if d > max {
			max = d
		}
	}
	skew := 1.0
	if sum > 0 {
		skew = float64(max) * float64(sh.n) / float64(sum)
	}
	r.skewSummaries[skewIdx].Observe(skew)
	ev := obs.Event{Kind: obs.KindPhase, Phase: name,
		Shim: migrate.ShimUnknown, VM: -1, Host: -1, Value: total.Seconds()}
	if rec.Enabled() {
		ev.Attrs = map[string]string{
			"shards":      strconv.Itoa(sh.n),
			"shard_max_s": strconv.FormatFloat(max.Seconds(), 'g', -1, 64),
			"shard_skew":  strconv.FormatFloat(skew, 'g', -1, 64),
		}
	}
	rec.Record(ev)
}

// shardedPredictPhase is phase 1: one shard round plus the deterministic
// coordinator fold. Factored out so the steady-state allocation gate can
// drive it directly (TestStepSteadyStateAllocs).
func (r *Runtime) shardedPredictPhase(stats *StepStats, rec *obs.Recorder, external bool) {
	sh := r.sh
	for i := range sh.alertsByRack {
		sh.alertsByRack[i] = sh.alertsByRack[i][:0]
	}
	sh.external = external
	sh.workers.Do(sh.predictFn)
	for s := 0; s < sh.n; s++ {
		stats.ServerAlerts += sh.serverAlerts[s]
	}
	if r.opts.DeepPredict {
		for rk := range sh.deepOK {
			if !sh.deepOK[rk] {
				continue
			}
			sh.deepOK[rk] = false
			p := sh.deepVal[rk]
			rec.Record(obs.Event{Kind: obs.KindForecast, Phase: "predict",
				Shim: rk, VM: -1, Host: -1, Value: p})
			if p > r.opts.HotThreshold {
				stats.DeepWarnings++
			}
		}
	}
}

// advanceSharded is the sharded step body.
func (r *Runtime) advanceSharded(external bool) (*StepStats, error) {
	sh := r.sh
	stats := &StepStats{Step: r.step}
	r.step++
	rec := r.opts.Recorder
	rec.SetStep(stats.Step)

	// Phase 1 (shard round): observe, predict, raise alerts.
	phaseStart := time.Now()
	r.shardedPredictPhase(stats, rec, external)
	stats.Timings.Predict = time.Since(phaseStart)
	r.recordShardedPhase(rec, 0, "predict", stats.Timings.Predict)

	// Phase 2 (shard round + serialized merge): traffic plane.
	phaseStart = time.Now()
	sh.workers.Do(sh.flowsFn)
	r.mergeFlows()
	stats.Timings.Flows = time.Since(phaseStart)
	r.recordShardedPhase(rec, 1, "flows", stats.Timings.Flows)

	// Phase 3: hot switches and reroutes are serialized (they mutate the
	// flow network); the per-rack uplink monitors then run as a shard
	// round over the settled network.
	phaseStart = time.Now()
	var hot []int
	if r.opts.UseQCN {
		hot = r.qcnHotSwitches(stats)
	} else {
		hot = r.Flows.HotSwitches(r.opts.HotThreshold)
	}
	stats.HotSwitches = len(hot)
	for _, sw := range hot {
		stats.SwitchAlerts++
		if r.opts.DisableReroute {
			continue
		}
		moved := r.Flows.RerouteAroundHot(sw, r.opts.HotThreshold)
		stats.Reroutes += len(moved)
	}
	sh.workers.Do(sh.monitorFn)
	for s := 0; s < sh.n; s++ {
		if sh.maxUtil[s] > stats.MaxUplinkUtil {
			stats.MaxUplinkUtil = sh.maxUtil[s]
		}
		stats.ToRAlerts += sh.torAlerts[s]
	}
	stats.Timings.Congestion = time.Since(phaseStart)
	r.recordShardedPhase(rec, 2, "congestion", stats.Timings.Congestion)
	if rec.Enabled() {
		for idx := range sh.alertsByRack {
			if n := len(sh.alertsByRack[idx]); n > 0 {
				rec.Record(obs.Event{Kind: obs.KindAlerts, Phase: "manage",
					Shim: idx, VM: -1, Host: -1, Value: float64(n)})
			}
		}
	}

	// Phase 4 (serialized): management, identical to the reference engine
	// except shims materialize on a rack's first alert.
	phaseStart = time.Now()
	r.modelStale = true
	for idx := range sh.alertsByRack {
		// As in the reference engine, a rack participates when it has fresh
		// alerts or fail-queued VMs awaiting retry; a nil (never-alerted)
		// shim cannot hold a queue, so the lazy path stays equivalent.
		if len(sh.alertsByRack[idx]) == 0 && r.shims[idx].QueueLen() == 0 {
			continue
		}
		if r.modelStale {
			r.Flows.UpdateGraphBandwidth()
			r.Model.Refresh()
			r.modelStale = false
		}
		shim := r.shims[idx]
		if shim == nil {
			var err error
			shim, err = migrate.NewShim(r.Cluster, r.Model, r.Cluster.Racks[idx], r.opts.Migrate)
			if err != nil {
				return nil, fmt.Errorf("runtime: shim %d: %w", idx, err)
			}
			r.shims[idx] = shim
		}
		shimStart := time.Now()
		rep, err := shim.ProcessAlerts(sh.alertsByRack[idx])
		if err != nil {
			return nil, fmt.Errorf("runtime: shim %d: %w", idx, err)
		}
		rec.Record(obs.Event{Kind: obs.KindManage, Phase: "manage",
			Shim: idx, VM: -1, Host: -1, Value: time.Since(shimStart).Seconds()})
		stats.Migrations += len(rep.Migrations)
		stats.MigrationCost += rep.TotalCost
		stats.Preemptions += rep.Preemptions
		stats.Requeued += rep.Requeued
	}
	stats.Timings.Manage = time.Since(phaseStart)
	rec.Record(obs.Event{Kind: obs.KindPhase, Phase: "manage",
		Shim: migrate.ShimUnknown, VM: -1, Host: -1, Value: stats.Timings.Manage.Seconds()})

	stats.WorkloadStdDev = r.Cluster.WorkloadStdDev()
	for i, d := range []time.Duration{stats.Timings.Predict, stats.Timings.Flows, stats.Timings.Congestion, stats.Timings.Manage} {
		r.phaseSummaries[i].Observe(d.Seconds())
	}
	r.recordHistory(*stats)
	return stats, nil
}
