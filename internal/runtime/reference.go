package runtime

import (
	"fmt"
	"sort"
	"time"

	"sheriff/internal/alert"
	"sheriff/internal/dcn"
	"sheriff/internal/migrate"
	"sheriff/internal/obs"
	"sheriff/internal/pool"
	"sheriff/internal/predictor"
	"sheriff/internal/timeseries"
	"sheriff/internal/traces"
)

// This file preserves the seed step engine — one data-parallel fan-out
// over a flat []*vmState with per-step fold allocations — selected by
// Options.Reference. It is the ground truth the sharded SoA engine is
// proven bit-exact against (see equiv_test.go), the same convention as
// kmedian/reference.go and topology/reference.go.

// vmState is one VM's monitoring stack in the reference engine: its
// synthetic workload source and the per-component profile predictor.
// alert/fired are per-step scratch written only by the worker that owns
// the state during phase 1.
type vmState struct {
	vm      *dcn.VM
	rack    int
	gen     traces.Source
	pred    *alert.ProfilePredictor
	current traces.Profile
	alert   alert.Alert
	fired   bool
}

// refState is the reference engine's private state.
type refState struct {
	vms      []*vmState   // all vm states, ascending VM ID (phase-1 work items)
	byRack   [][]*vmState // the same states grouped by rack index
	queueMon []*alert.QueueMonitor
	workers  *pool.Pool
}

// initReference assembles the seed engine: eager per-rack shims and queue
// monitors, one vmState per VM.
func (r *Runtime) initReference() error {
	ref := &refState{
		byRack:  make([][]*vmState, len(r.Cluster.Racks)),
		workers: pool.Shared(),
	}
	for _, rack := range r.Cluster.Racks {
		shim, err := migrate.NewShim(r.Cluster, r.Model, rack, r.opts.Migrate)
		if err != nil {
			return err
		}
		r.shims = append(r.shims, shim)
		qm, err := alert.NewQueueMonitor(&trendState{ewmaTrend: holtCoeff}, r.opts.QueueLimit, queueThreshold)
		if err != nil {
			return err
		}
		ref.queueMon = append(ref.queueMon, qm)
	}
	vms := r.Cluster.VMs()
	sort.Slice(vms, func(i, j int) bool { return vms[i].ID < vms[j].ID })
	comp := func() alert.ComponentForecaster {
		return &trendState{ewmaTrend: holtCoeff}
	}
	for _, vm := range vms {
		idx := vm.Host().Rack().Index
		st := &vmState{
			vm:   vm,
			rack: idx,
			gen:  r.gen.Source(vm.ID, idx),
			pred: alert.NewProfilePredictor(comp(), comp(), comp(), comp()),
		}
		ref.vms = append(ref.vms, st)
		ref.byRack[idx] = append(ref.byRack[idx], st)
	}
	r.ref = ref
	return nil
}

// advanceRef is the seed step body. A nil external map means "pull from
// the synthetic generators" (Step); non-nil means profiles come from the
// ingest plane (StepExternal) and the map is read-only under the
// parallel phase.
func (r *Runtime) advanceRef(external map[int]traces.Profile) (*StepStats, error) {
	ref := r.ref
	stats := &StepStats{Step: r.step}
	r.step++
	rec := r.opts.Recorder
	rec.SetStep(stats.Step)

	// Phase 1 (parallel): observe, predict, raise alerts per VM. Each
	// worker touches only the claimed vmState (its generator, predictor,
	// and VM are owned by that state), so no locking is needed; results
	// are folded in deterministic VM order afterwards.
	phaseStart := time.Now()
	ref.workers.ForEach(len(ref.vms), func(i int) {
		st := ref.vms[i]
		st.fired = false
		if external == nil {
			st.current = st.gen.Next()
		} else if p, ok := external[st.vm.ID]; ok {
			st.current = p
		}
		st.pred.Observe(st.current)
		if st.pred.HistoryLen() < 3 {
			return // not enough history to extrapolate
		}
		a, fired, err := st.pred.Check(r.opts.Thresholds)
		if err != nil || !fired {
			return
		}
		a.VMID = st.vm.ID
		if h := st.vm.Host(); h != nil {
			a.HostID = h.ID
		}
		a.RackIndex = st.rack
		st.vm.Alert = a.Value
		st.alert = a
		st.fired = true
	})
	alertsByRack := make([][]alert.Alert, len(ref.byRack))
	for _, st := range ref.vms {
		if st.fired {
			alertsByRack[st.rack] = append(alertsByRack[st.rack], st.alert)
			stats.ServerAlerts++
		}
	}
	if r.opts.DeepPredict {
		r.deepStepRef(stats, rec)
	}
	stats.Timings.Predict = time.Since(phaseStart)
	rec.Record(obs.Event{Kind: obs.KindPhase, Phase: "predict",
		Shim: migrate.ShimUnknown, VM: -1, Host: -1, Value: stats.Timings.Predict.Seconds()})

	// Phase 2: rebuild the traffic plane from the dependency graph.
	phaseStart = time.Now()
	r.syncFlowsRef()
	stats.Timings.Flows = time.Since(phaseStart)
	rec.Record(obs.Event{Kind: obs.KindPhase, Phase: "flows",
		Shim: migrate.ShimUnknown, VM: -1, Host: -1, Value: stats.Timings.Flows.Seconds()})

	// Phase 3: switch-side congestion. Hot outer switches trigger
	// FLOWREROUTE; ToR uplink monitors raise FromLocalToR alerts.
	phaseStart = time.Now()
	var hot []int
	if r.opts.UseQCN {
		hot = r.qcnHotSwitches(stats)
	} else {
		hot = r.Flows.HotSwitches(r.opts.HotThreshold)
	}
	stats.HotSwitches = len(hot)
	for _, sw := range hot {
		stats.SwitchAlerts++
		if r.opts.DisableReroute {
			continue
		}
		moved := r.Flows.RerouteAroundHot(sw, r.opts.HotThreshold)
		stats.Reroutes += len(moved)
	}
	for idx, rack := range r.Cluster.Racks {
		util := r.uplinkUtilization(rack)
		if util > stats.MaxUplinkUtil {
			stats.MaxUplinkUtil = util
		}
		ref.queueMon[idx].Observe(util)
		if a, fired, err := ref.queueMon[idx].Check(); err == nil && fired {
			a.RackIndex = idx
			alertsByRack[idx] = append(alertsByRack[idx], a)
			stats.ToRAlerts++
		}
	}
	stats.Timings.Congestion = time.Since(phaseStart)
	rec.Record(obs.Event{Kind: obs.KindPhase, Phase: "congestion",
		Shim: migrate.ShimUnknown, VM: -1, Host: -1, Value: stats.Timings.Congestion.Seconds()})
	if rec.Enabled() {
		for idx := range alertsByRack {
			if n := len(alertsByRack[idx]); n > 0 {
				rec.Record(obs.Event{Kind: obs.KindAlerts, Phase: "manage",
					Shim: idx, VM: -1, Host: -1, Value: float64(n)})
			}
		}
	}

	// Phase 4 (serialized): management. The cost model's shortest-path
	// tables are refreshed lazily: only a step that actually manages
	// alerts pays for the |racks| Dijkstra sweeps, and a refresh is
	// carried over (modelStale) so the tables reflect the latest traffic
	// plane when the next alert arrives.
	phaseStart = time.Now()
	r.modelStale = true
	for idx, shim := range r.shims {
		// A rack participates when it has fresh alerts or fail-queued VMs
		// from an earlier step awaiting retry (queue disabled = never).
		if len(alertsByRack[idx]) == 0 && shim.QueueLen() == 0 {
			continue
		}
		if r.modelStale {
			r.Flows.UpdateGraphBandwidth()
			r.Model.Refresh()
			r.modelStale = false
		}
		shimStart := time.Now()
		rep, err := shim.ProcessAlerts(alertsByRack[idx])
		if err != nil {
			return nil, fmt.Errorf("runtime: shim %d: %w", idx, err)
		}
		rec.Record(obs.Event{Kind: obs.KindManage, Phase: "manage",
			Shim: idx, VM: -1, Host: -1, Value: time.Since(shimStart).Seconds()})
		stats.Migrations += len(rep.Migrations)
		stats.MigrationCost += rep.TotalCost
		stats.Preemptions += rep.Preemptions
		stats.Requeued += rep.Requeued
	}
	stats.Timings.Manage = time.Since(phaseStart)
	rec.Record(obs.Event{Kind: obs.KindPhase, Phase: "manage",
		Shim: migrate.ShimUnknown, VM: -1, Host: -1, Value: stats.Timings.Manage.Seconds()})

	stats.WorkloadStdDev = r.Cluster.WorkloadStdDev()
	for i, d := range []time.Duration{stats.Timings.Predict, stats.Timings.Flows, stats.Timings.Congestion, stats.Timings.Manage} {
		r.phaseSummaries[i].Observe(d.Seconds())
	}
	r.recordHistory(*stats)
	return stats, nil
}

// deepStepRef advances the per-rack deep forecasting pools: each rack's
// aggregate stress (mean of its VMs' current profile maxima) either
// extends the pre-fit history, triggers the one-time pool fit, or feeds
// the fitted selector, whose next-period prediction is recorded and
// counted as a deep warning when it crosses the hot threshold. Fits and
// predictions are deterministic (seeded NARNETs, fixed pool order), so
// deep state snapshots and restores bit-exactly.
func (r *Runtime) deepStepRef(stats *StepStats, rec *obs.Recorder) {
	for idx := range r.ref.byRack {
		if len(r.ref.byRack[idx]) == 0 {
			continue
		}
		agg := 0.0
		for _, st := range r.ref.byRack[idx] {
			agg += st.current.Max()
		}
		agg /= float64(len(r.ref.byRack[idx]))

		sel := r.deep[idx]
		if sel == nil {
			h := r.deepHist[idx]
			h.Append(agg)
			if h.Len() < r.opts.DeepFitAfter {
				continue
			}
			fitted, err := predictor.New(h, predictor.Options{Seed: r.opts.Seed + int64(idx)})
			if err != nil {
				// Not enough signal yet (e.g. constant history); keep
				// collecting and retry next step.
				continue
			}
			r.deep[idx] = fitted
			r.deepHist[idx] = timeseries.New(nil) // history lives in the selector now
			sel = fitted
		} else {
			sel.Observe(agg)
		}
		p, err := sel.Predict()
		if err != nil {
			continue
		}
		rec.Record(obs.Event{Kind: obs.KindForecast, Phase: "predict",
			Shim: idx, VM: -1, Host: -1, Value: p})
		if p > r.opts.HotThreshold {
			stats.DeepWarnings++
		}
	}
}

// syncFlowsRef reconciles the flow set with the VM dependency graph: one
// flow per dependent pair hosted in different racks, with rate driven by
// the pair's current traffic component. Existing flows keep their routes
// (so reroutes survive across steps); only rate changes are applied in
// place, and flows whose endpoints migrated are re-created.
func (r *Runtime) syncFlowsRef() {
	type want struct {
		src, dst int
		rate     float64
		ds       bool
	}
	desired := make(map[[2]int]want)
	for idx := range r.ref.byRack {
		for _, st := range r.ref.byRack[idx] {
			for _, peerID := range r.Cluster.Deps.Peers(st.vm.ID) {
				peer := r.Cluster.VM(peerID)
				if peer == nil || peer.Host() == nil || st.vm.Host() == nil {
					continue
				}
				a, b := st.vm.ID, peerID
				if a > b {
					a, b = b, a
				}
				key := [2]int{a, b}
				if _, ok := desired[key]; ok {
					continue
				}
				srcNode := st.vm.Host().Rack().NodeID
				dstNode := peer.Host().Rack().NodeID
				if srcNode == dstNode {
					continue // intra-rack traffic never crosses the fabric
				}
				desired[key] = want{
					src:  srcNode,
					dst:  dstNode,
					rate: r.opts.FlowRate(st.current.TRF),
					// Dependencies with delay-sensitive endpoints produce
					// delay-sensitive flows (PRIORITY must not move them).
					ds: st.vm.DelaySensitive || peer.DelaySensitive,
				}
			}
		}
	}
	// Reconcile in deterministic key order: drop stale flows, re-route
	// moved ones, update rates (map iteration order would perturb the
	// floating-point load sums).
	existing := make([][2]int, 0, len(r.flowByPair))
	for key := range r.flowByPair {
		existing = append(existing, key)
	}
	sort.Slice(existing, func(i, j int) bool {
		if existing[i][0] != existing[j][0] {
			return existing[i][0] < existing[j][0]
		}
		return existing[i][1] < existing[j][1]
	})
	for _, key := range existing {
		id := r.flowByPair[key]
		f := r.Flows.Flow(id)
		w, ok := desired[key]
		if f == nil || !ok || f.Src != w.src || f.Dst != w.dst {
			if f != nil {
				r.Flows.RemoveFlow(id)
			}
			delete(r.flowByPair, key)
			continue
		}
		if f.Rate != w.rate {
			// Rate update failure is impossible for positive rates on a
			// live flow; ignore the error to keep the loop total.
			_ = r.Flows.SetRate(f, w.rate)
		}
		delete(desired, key) // handled
	}
	// Admit new pairs in deterministic order.
	keys := make([][2]int, 0, len(desired))
	for key := range desired {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, key := range keys {
		w := desired[key]
		f, err := r.Flows.AddFlow(w.src, w.dst, w.rate, w.ds)
		if err != nil {
			continue // unroutable pairs are skipped, not fatal
		}
		r.flowByPair[key] = f.ID
	}
}
