package runtime

import (
	"encoding/json"
	"testing"

	"sheriff/internal/cost"
	"sheriff/internal/dcn"
	"sheriff/internal/topology"
	"sheriff/internal/traces"
)

// buildParts constructs the cluster/model pair buildRuntime uses, exposed
// separately so restore tests can rebuild an identical empty cluster.
func buildParts(t *testing.T, pods int) (*dcn.Cluster, *cost.Model) {
	t.Helper()
	ft, err := topology.NewFatTree(topology.FatTreeConfig{Pods: pods})
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := dcn.NewCluster(ft.Graph, dcn.Config{HostsPerRack: 2, HostCapacity: 100, ToRCapacity: 200})
	if err != nil {
		t.Fatal(err)
	}
	model, err := cost.New(cluster, cost.PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	return cluster, model
}

func sameStats(t *testing.T, tag string, a, b StepStats) {
	t.Helper()
	// Timings are wall-clock artifacts; blank them before comparing.
	a.Timings, b.Timings = PhaseTimings{}, PhaseTimings{}
	if a != b {
		t.Fatalf("%s: stats diverged:\n original: %+v\n restored: %+v", tag, a, b)
	}
}

// TestSnapshotRestoreContinuesBitExact is the core warm-restart contract:
// run K steps, snapshot through a JSON roundtrip, restore into a freshly
// built cluster, and require the restored runtime's next M steps to be
// bit-identical to the original continuing uninterrupted.
func TestSnapshotRestoreContinuesBitExact(t *testing.T) {
	const pods, seed, before, after = 4, 7, 6, 5
	cluster, model := buildParts(t, pods)
	cluster.Populate(dcn.PopulateOptions{VMsPerHost: 3, MinCapacity: 5, MaxCapacity: 20, DependencyProb: 0.5, CrossRackDependencyProb: 0.4, Seed: seed})
	orig, err := New(cluster, model, Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := orig.Run(before); err != nil {
		t.Fatal(err)
	}

	snap, err := orig.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var loaded Snapshot
	if err := json.Unmarshal(blob, &loaded); err != nil {
		t.Fatal(err)
	}

	freshCluster, freshModel := buildParts(t, pods)
	if err := freshCluster.Restore(loaded.Cluster); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(freshCluster, freshModel, Options{Seed: seed}, &loaded)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < after; i++ {
		so, err := orig.Step()
		if err != nil {
			t.Fatal(err)
		}
		sr, err := restored.Step()
		if err != nil {
			t.Fatal(err)
		}
		sameStats(t, "step", *so, *sr)
	}
}

// TestSnapshotRestoreDeepPoolNoRefit checks the anti-cold-fit guarantee:
// a runtime whose deep pools have fitted snapshots them, and the restored
// runtime is deep-ready immediately and keeps predicting bit-identically.
func TestSnapshotRestoreDeepPoolNoRefit(t *testing.T) {
	const pods, seed, fitAfter = 4, 3, 30
	opts := Options{Seed: seed, DeepPredict: true, DeepFitAfter: fitAfter}
	cluster, model := buildParts(t, pods)
	cluster.Populate(dcn.PopulateOptions{VMsPerHost: 3, MinCapacity: 5, MaxCapacity: 20, DependencyProb: 0.5, CrossRackDependencyProb: 0.4, Seed: seed})
	orig, err := New(cluster, model, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Run past the fit point so at least one rack has a fitted pool.
	if _, err := orig.Run(fitAfter + 4); err != nil {
		t.Fatal(err)
	}
	ready := 0
	for i := range cluster.Racks {
		if orig.DeepReady(i) {
			ready++
		}
	}
	if ready == 0 {
		t.Fatal("no deep pool fitted after running past DeepFitAfter")
	}

	snap, err := orig.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var loaded Snapshot
	if err := json.Unmarshal(blob, &loaded); err != nil {
		t.Fatal(err)
	}

	freshCluster, freshModel := buildParts(t, pods)
	if err := freshCluster.Restore(loaded.Cluster); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(freshCluster, freshModel, opts, &loaded)
	if err != nil {
		t.Fatal(err)
	}
	for i := range freshCluster.Racks {
		if orig.DeepReady(i) != restored.DeepReady(i) {
			t.Fatalf("rack %d: deep readiness not restored (orig %v, restored %v) — restore cold-fits",
				i, orig.DeepReady(i), restored.DeepReady(i))
		}
	}
	for i := 0; i < 4; i++ {
		so, err := orig.Step()
		if err != nil {
			t.Fatal(err)
		}
		sr, err := restored.Step()
		if err != nil {
			t.Fatal(err)
		}
		sameStats(t, "deep step", *so, *sr)
	}
}

// TestStepExternalFeedsProfiles drives the runtime with externally
// supplied profiles and checks the alert path fires from them.
func TestStepExternalFeedsProfiles(t *testing.T) {
	cluster, model := buildParts(t, 4)
	cluster.Populate(dcn.PopulateOptions{VMsPerHost: 2, MinCapacity: 5, MaxCapacity: 20, DependencyProb: 0.3, Seed: 11})
	r, err := New(cluster, model, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	vms := cluster.VMs()
	hot := traces.Profile{CPU: 0.99, Mem: 0.95, IO: 0.5, TRF: 0.5}
	var updates []ExternalUpdate
	for _, vm := range vms {
		updates = append(updates, ExternalUpdate{VM: vm.ID, Profile: hot})
	}
	var alerts int
	for i := 0; i < 5; i++ {
		stats, err := r.StepExternal(updates)
		if err != nil {
			t.Fatal(err)
		}
		alerts += stats.ServerAlerts
	}
	if alerts == 0 {
		t.Fatal("saturated external profiles never raised a server alert")
	}
	// Generators must not have advanced in external mode.
	snap, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, vs := range snap.VMs {
		if vs.GenPos != 0 {
			t.Fatalf("VM %d generator advanced to %d under StepExternal", vs.ID, vs.GenPos)
		}
	}
	if _, err := r.StepExternal([]ExternalUpdate{{VM: 99999}}); err == nil {
		t.Fatal("unknown VM accepted by StepExternal")
	}
}

// TestSnapshotRejectsQCN pins the v1 limitation.
func TestSnapshotRejectsQCN(t *testing.T) {
	cluster, model := buildParts(t, 4)
	cluster.Populate(dcn.PopulateOptions{VMsPerHost: 2, MinCapacity: 5, MaxCapacity: 20, Seed: 1})
	r, err := New(cluster, model, Options{Seed: 1, UseQCN: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Snapshot(); err == nil {
		t.Fatal("snapshot under UseQCN accepted")
	}
	if _, err := Restore(cluster, model, Options{UseQCN: true}, &Snapshot{Version: SnapshotVersion}); err == nil {
		t.Fatal("restore under UseQCN accepted")
	}
	if _, err := Restore(cluster, model, Options{}, &Snapshot{Version: 99}); err == nil {
		t.Fatal("unknown snapshot version accepted")
	}
}
