// Package runtime drives the full Sheriff loop end to end in simulated
// time: every period T each shim collects its VMs' measured workload
// profiles, forecasts the next period, raises pre-alerts, and manages its
// region — VM migration for server/ToR alerts, flow rerouting for hot
// outer switches (Sec. II–V assembled). Prediction is embarrassingly
// parallel and is distributed over individual VM states on the shared
// bounded worker pool (one goroutine per rack would bottleneck on the
// largest rack); management mutates shared cluster state and is
// serialized, mirroring the paper's split between local monitoring and
// coordinated action.
package runtime

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"sheriff/internal/alert"
	"sheriff/internal/cost"
	"sheriff/internal/dcn"
	"sheriff/internal/flow"
	"sheriff/internal/metrics"
	"sheriff/internal/migrate"
	"sheriff/internal/obs"
	"sheriff/internal/pool"
	"sheriff/internal/predictor"
	"sheriff/internal/qcn"
	"sheriff/internal/timeseries"
	"sheriff/internal/traces"
)

// Options configures a Runtime.
type Options struct {
	Thresholds   alert.Thresholds // ALERT trigger levels (default 0.9)
	HotThreshold float64          // switch utilization treated as hot (default 0.9)
	QueueLimit   float64          // ToR uplink queue capacity (default 1.0 = full utilization)
	Seed         int64
	Migrate      migrate.Params
	// FlowRate maps a dependent VM pair's mean TRF to a flow rate in
	// link-capacity units (default 0.05 + 0.4·TRF).
	FlowRate func(trf float64) float64
	// UseQCN detects switch congestion through per-switch QCN congestion
	// points (queue dynamics + Fb sampling) instead of a bare utilization
	// threshold.
	UseQCN bool
	// DisableReroute turns FLOWREROUTE off (hot switches stay hot) — the
	// ablation baseline.
	DisableReroute bool
	// Recorder, when non-nil, receives per-step phase timings, per-rack
	// alert counts, and per-shim manage timings, and is threaded into
	// every shim (unless Migrate.Recorder is already set) so migration
	// protocol events carry the current step number.
	Recorder *obs.Recorder
	// DeepPredict enables the per-rack deep forecasting pool: once a
	// rack has DeepFitAfter observations of aggregate stress, a dynamic
	// model-selection pool (2 ARIMA + 2 NARNET) is fitted over it and
	// supplies next-period early warnings alongside the cheap per-VM
	// triage. Fitted pools are carried by Snapshot so a restart resumes
	// without refitting.
	DeepPredict bool
	// DeepFitAfter is the rack-history length that triggers the deep
	// fit (default 48, minimum large enough for the NARNET delay lines).
	DeepFitAfter int
}

// Validate reports whether the options are usable. Negative values are
// errors; zero values mean "use the default".
func (o Options) Validate() error {
	if o.HotThreshold < 0 {
		return fmt.Errorf("runtime: HotThreshold must be >= 0 (0 = default), got %v", o.HotThreshold)
	}
	if o.QueueLimit < 0 {
		return fmt.Errorf("runtime: QueueLimit must be >= 0 (0 = default), got %v", o.QueueLimit)
	}
	if o.DeepFitAfter < 0 {
		return fmt.Errorf("runtime: DeepFitAfter must be >= 0 (0 = default), got %v", o.DeepFitAfter)
	}
	return o.Migrate.Validate()
}

// WithDefaults returns the options with zero fields replaced by their
// defaults (thresholds 0.9, full queue, Holt-style flow-rate mapping),
// with the recorder threaded into the migrate params unless one is
// already set there.
func (o Options) WithDefaults() Options {
	if o.Thresholds == (alert.Thresholds{}) {
		o.Thresholds = alert.DefaultThresholds()
	}
	if o.HotThreshold == 0 {
		o.HotThreshold = 0.9
	}
	if o.QueueLimit == 0 {
		o.QueueLimit = 1.0
	}
	o.Migrate = o.Migrate.WithDefaults()
	if o.Migrate.Recorder == nil {
		o.Migrate.Recorder = o.Recorder
	}
	if o.FlowRate == nil {
		o.FlowRate = func(trf float64) float64 { return 0.05 + 0.4*trf }
	}
	if o.DeepFitAfter == 0 {
		o.DeepFitAfter = 48
	}
	return o
}

// vmState is one VM's monitoring stack: its synthetic workload source and
// the per-component profile predictor. alert/fired are per-step scratch
// written only by the worker that owns the state during phase 1.
type vmState struct {
	vm      *dcn.VM
	rack    int
	gen     *traces.WorkloadGen
	pred    *alert.ProfilePredictor
	current traces.Profile
	alert   alert.Alert
	fired   bool
}

// ewmaTrend is a cheap ComponentForecaster: exponentially weighted level
// plus trend (Holt's linear method), adequate for per-step pre-alerts
// where fitting a full ARIMA per VM per tick would be wasteful.
type ewmaTrend struct {
	alpha, beta float64
}

// ForecastFrom implements alert.ComponentForecaster.
func (e ewmaTrend) ForecastFrom(h *timeseries.Series, n int) ([]float64, error) {
	if h.Len() == 0 {
		return nil, errors.New("runtime: empty history")
	}
	level := h.At(0)
	trend := 0.0
	for t := 1; t < h.Len(); t++ {
		prev := level
		level = e.alpha*h.At(t) + (1-e.alpha)*(level+trend)
		trend = e.beta*(level-prev) + (1-e.beta)*trend
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = level + trend*float64(i+1)
	}
	return out, nil
}

// trendState is ewmaTrend with suffix-aware incremental state: the level
// and trend fully determine both the forecast and the continuation of the
// recursion, so a bound history that only grows (the per-step collection
// pattern) costs O(new points) per forecast instead of a full O(n)
// re-smoothing. The continuation is bit-exact with ewmaTrend's cold pass.
// Each trendState must be bound to exactly one append-only history; it is
// not safe for concurrent use (each VM component and queue monitor owns
// its own instance).
type trendState struct {
	ewmaTrend
	n            int     // observations folded into level/trend
	last         float64 // history.At(n-1), to detect non-append mutation
	level, trend float64
}

// ForecastFrom implements alert.ComponentForecaster incrementally.
func (ts *trendState) ForecastFrom(h *timeseries.Series, n int) ([]float64, error) {
	if h.Len() == 0 {
		return nil, errors.New("runtime: empty history")
	}
	start := ts.n
	if start < 1 || start > h.Len() || h.At(start-1) != ts.last {
		ts.level, ts.trend = h.At(0), 0
		start = 1
	}
	for t := start; t < h.Len(); t++ {
		prev := ts.level
		ts.level = ts.alpha*h.At(t) + (1-ts.alpha)*(ts.level+ts.trend)
		ts.trend = ts.beta*(ts.level-prev) + (1-ts.beta)*ts.trend
	}
	ts.n = h.Len()
	ts.last = h.At(h.Len() - 1)
	out := make([]float64, n)
	for i := range out {
		out[i] = ts.level + ts.trend*float64(i+1)
	}
	return out, nil
}

// PhaseTimings holds one step's wall-clock phase durations. Timings are
// measurement artifacts: they vary run to run and are excluded from any
// determinism comparison of StepStats.
type PhaseTimings struct {
	Predict    time.Duration // phase 1: observe + forecast + pre-alerts
	Flows      time.Duration // phase 2: traffic-plane reconciliation
	Congestion time.Duration // phase 3: hot switches, reroutes, ToR monitors
	Manage     time.Duration // phase 4: cost refresh + shim management
}

// StepStats summarizes one runtime step.
type StepStats struct {
	Step           int
	ServerAlerts   int
	ToRAlerts      int
	SwitchAlerts   int
	Migrations     int
	MigrationCost  float64
	Reroutes       int
	HotSwitches    int
	WorkloadStdDev float64
	MaxUplinkUtil  float64
	QCNFeedbacks   int // congestion messages sampled (UseQCN only)
	DeepWarnings   int // racks whose deep pool predicted stress above threshold
	Timings        PhaseTimings
}

// Runtime is the assembled system.
type Runtime struct {
	Cluster *dcn.Cluster
	Model   *cost.Model
	Flows   *flow.Network

	opts       Options
	shims      []*migrate.Shim
	vms        []*vmState   // all vm states, ascending VM ID (phase-1 work items)
	byRack     [][]*vmState // the same states grouped by rack index
	queueMon   []*alert.QueueMonitor
	cps        map[int]*qcn.CongestionPoint // per-switch CPs (UseQCN)
	flowByPair map[[2]int]int               // dependency pair -> flow ID
	workers    *pool.Pool
	rng        *rand.Rand
	step       int
	history    []StepStats
	modelStale bool // link bandwidth changed since the last Model.Refresh

	// Deep forecasting pools (DeepPredict): per-rack aggregate stress
	// history and, once fitted, the dynamic-selection pool over it.
	deepHist []*timeseries.Series
	deep     []*predictor.Selector

	phaseSummaries [4]metrics.Summary // per-phase duration stats, seconds
}

// PhaseSummaries returns streaming duration statistics (in seconds) for
// the four Step phases, aggregated over every step so far, keyed
// "predict", "flows", "congestion", "manage".
func (r *Runtime) PhaseSummaries() map[string]*metrics.Summary {
	return map[string]*metrics.Summary{
		"predict":    &r.phaseSummaries[0],
		"flows":      &r.phaseSummaries[1],
		"congestion": &r.phaseSummaries[2],
		"manage":     &r.phaseSummaries[3],
	}
}

// New assembles a runtime over an already populated cluster.
func New(cluster *dcn.Cluster, model *cost.Model, opts Options) (*Runtime, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.WithDefaults()
	r := &Runtime{
		Cluster:    cluster,
		Model:      model,
		Flows:      flow.NewNetwork(cluster.Graph),
		opts:       opts,
		rng:        rand.New(rand.NewSource(opts.Seed)),
		cps:        make(map[int]*qcn.CongestionPoint),
		flowByPair: make(map[[2]int]int),
		byRack:     make([][]*vmState, len(cluster.Racks)),
		workers:    pool.Shared(),
	}
	if opts.DeepPredict {
		r.deepHist = make([]*timeseries.Series, len(cluster.Racks))
		r.deep = make([]*predictor.Selector, len(cluster.Racks))
		for i := range r.deepHist {
			r.deepHist[i] = timeseries.New(nil)
		}
	}
	for _, rack := range cluster.Racks {
		shim, err := migrate.NewShim(cluster, model, rack, opts.Migrate)
		if err != nil {
			return nil, err
		}
		r.shims = append(r.shims, shim)
		qm, err := alert.NewQueueMonitor(&trendState{ewmaTrend: ewmaTrend{alpha: 0.5, beta: 0.3}}, opts.QueueLimit, 0.9)
		if err != nil {
			return nil, err
		}
		r.queueMon = append(r.queueMon, qm)
	}
	vms := cluster.VMs()
	sort.Slice(vms, func(i, j int) bool { return vms[i].ID < vms[j].ID })
	comp := func() alert.ComponentForecaster {
		return &trendState{ewmaTrend: ewmaTrend{alpha: 0.5, beta: 0.3}}
	}
	for _, vm := range vms {
		idx := vm.Host().Rack().Index
		st := &vmState{
			vm:   vm,
			rack: idx,
			gen:  traces.NewWorkloadGen(24, opts.Seed+int64(vm.ID)),
			pred: alert.NewProfilePredictor(comp(), comp(), comp(), comp()),
		}
		r.vms = append(r.vms, st)
		r.byRack[idx] = append(r.byRack[idx], st)
	}
	return r, nil
}

// History returns the per-step statistics recorded so far.
func (r *Runtime) History() []StepStats { return r.history }

// Step advances one collection period T. The prediction phase distributes
// individual VM states over the shared worker pool (dynamic index
// claiming, so skewed rack sizes balance across cores instead of
// serializing behind the largest rack); management is serialized.
func (r *Runtime) Step() (*StepStats, error) { return r.advance(nil) }

// ExternalUpdate is one VM's measured workload profile for the current
// collection period, delivered by an external ingest plane instead of the
// built-in synthetic generators.
type ExternalUpdate struct {
	VM      int
	Profile traces.Profile
}

// StepExternal advances one collection period using externally supplied
// profiles: VMs present in updates take their measured profile, VMs
// absent this period repeat their last observed profile (the shim's
// collect loop treats silence as "unchanged"). Unknown VM IDs are an
// error. The synthetic generators do not advance, so a daemon fed real
// measurements never consumes generator state.
func (r *Runtime) StepExternal(updates []ExternalUpdate) (*StepStats, error) {
	external := make(map[int]traces.Profile, len(updates))
	for _, u := range updates {
		if r.Cluster.VM(u.VM) == nil {
			return nil, fmt.Errorf("runtime: external update for unknown VM %d", u.VM)
		}
		external[u.VM] = u.Profile
	}
	return r.advance(external)
}

// advance is the shared step body. A nil external map means "pull from
// the synthetic generators" (Step); non-nil means profiles come from the
// ingest plane (StepExternal) and the map is read-only under the
// parallel phase.
func (r *Runtime) advance(external map[int]traces.Profile) (*StepStats, error) {
	stats := &StepStats{Step: r.step}
	r.step++
	rec := r.opts.Recorder
	rec.SetStep(stats.Step)

	// Phase 1 (parallel): observe, predict, raise alerts per VM. Each
	// worker touches only the claimed vmState (its generator, predictor,
	// and VM are owned by that state), so no locking is needed; results
	// are folded in deterministic VM order afterwards.
	phaseStart := time.Now()
	r.workers.ForEach(len(r.vms), func(i int) {
		st := r.vms[i]
		st.fired = false
		if external == nil {
			st.current = st.gen.Next()
		} else if p, ok := external[st.vm.ID]; ok {
			st.current = p
		}
		st.pred.Observe(st.current)
		if st.pred.HistoryLen() < 3 {
			return // not enough history to extrapolate
		}
		a, fired, err := st.pred.Check(r.opts.Thresholds)
		if err != nil || !fired {
			return
		}
		a.VMID = st.vm.ID
		if h := st.vm.Host(); h != nil {
			a.HostID = h.ID
		}
		a.RackIndex = st.rack
		st.vm.Alert = a.Value
		st.alert = a
		st.fired = true
	})
	alertsByRack := make([][]alert.Alert, len(r.byRack))
	for _, st := range r.vms {
		if st.fired {
			alertsByRack[st.rack] = append(alertsByRack[st.rack], st.alert)
			stats.ServerAlerts++
		}
	}
	if r.opts.DeepPredict {
		r.deepStep(stats, rec)
	}
	stats.Timings.Predict = time.Since(phaseStart)
	rec.Record(obs.Event{Kind: obs.KindPhase, Phase: "predict",
		Shim: migrate.ShimUnknown, VM: -1, Host: -1, Value: stats.Timings.Predict.Seconds()})

	// Phase 2: rebuild the traffic plane from the dependency graph.
	phaseStart = time.Now()
	r.syncFlows()
	stats.Timings.Flows = time.Since(phaseStart)
	rec.Record(obs.Event{Kind: obs.KindPhase, Phase: "flows",
		Shim: migrate.ShimUnknown, VM: -1, Host: -1, Value: stats.Timings.Flows.Seconds()})

	// Phase 3: switch-side congestion. Hot outer switches trigger
	// FLOWREROUTE; ToR uplink monitors raise FromLocalToR alerts.
	phaseStart = time.Now()
	var hot []int
	if r.opts.UseQCN {
		hot = r.qcnHotSwitches(stats)
	} else {
		hot = r.Flows.HotSwitches(r.opts.HotThreshold)
	}
	stats.HotSwitches = len(hot)
	for _, sw := range hot {
		stats.SwitchAlerts++
		if r.opts.DisableReroute {
			continue
		}
		moved := r.Flows.RerouteAroundHot(sw, r.opts.HotThreshold)
		stats.Reroutes += len(moved)
	}
	for idx, rack := range r.Cluster.Racks {
		util := r.uplinkUtilization(rack)
		if util > stats.MaxUplinkUtil {
			stats.MaxUplinkUtil = util
		}
		r.queueMon[idx].Observe(util)
		if a, fired, err := r.queueMon[idx].Check(); err == nil && fired {
			a.RackIndex = idx
			alertsByRack[idx] = append(alertsByRack[idx], a)
			stats.ToRAlerts++
		}
	}
	stats.Timings.Congestion = time.Since(phaseStart)
	rec.Record(obs.Event{Kind: obs.KindPhase, Phase: "congestion",
		Shim: migrate.ShimUnknown, VM: -1, Host: -1, Value: stats.Timings.Congestion.Seconds()})
	if rec.Enabled() {
		for idx := range alertsByRack {
			if n := len(alertsByRack[idx]); n > 0 {
				rec.Record(obs.Event{Kind: obs.KindAlerts, Phase: "manage",
					Shim: idx, VM: -1, Host: -1, Value: float64(n)})
			}
		}
	}

	// Phase 4 (serialized): management. The cost model's shortest-path
	// tables are refreshed lazily: only a step that actually manages
	// alerts pays for the |racks| Dijkstra sweeps, and a refresh is
	// carried over (modelStale) so the tables reflect the latest traffic
	// plane when the next alert arrives.
	phaseStart = time.Now()
	r.modelStale = true
	for idx, shim := range r.shims {
		if len(alertsByRack[idx]) == 0 {
			continue
		}
		if r.modelStale {
			r.Flows.UpdateGraphBandwidth()
			r.Model.Refresh()
			r.modelStale = false
		}
		shimStart := time.Now()
		rep, err := shim.ProcessAlerts(alertsByRack[idx])
		if err != nil {
			return nil, fmt.Errorf("runtime: shim %d: %w", idx, err)
		}
		rec.Record(obs.Event{Kind: obs.KindManage, Phase: "manage",
			Shim: idx, VM: -1, Host: -1, Value: time.Since(shimStart).Seconds()})
		stats.Migrations += len(rep.Migrations)
		stats.MigrationCost += rep.TotalCost
	}
	stats.Timings.Manage = time.Since(phaseStart)
	rec.Record(obs.Event{Kind: obs.KindPhase, Phase: "manage",
		Shim: migrate.ShimUnknown, VM: -1, Host: -1, Value: stats.Timings.Manage.Seconds()})

	stats.WorkloadStdDev = r.Cluster.WorkloadStdDev()
	for i, d := range []time.Duration{stats.Timings.Predict, stats.Timings.Flows, stats.Timings.Congestion, stats.Timings.Manage} {
		r.phaseSummaries[i].Observe(d.Seconds())
	}
	r.history = append(r.history, *stats)
	return stats, nil
}

// deepStep advances the per-rack deep forecasting pools: each rack's
// aggregate stress (mean of its VMs' current profile maxima) either
// extends the pre-fit history, triggers the one-time pool fit, or feeds
// the fitted selector, whose next-period prediction is recorded and
// counted as a deep warning when it crosses the hot threshold. Fits and
// predictions are deterministic (seeded NARNETs, fixed pool order), so
// deep state snapshots and restores bit-exactly.
func (r *Runtime) deepStep(stats *StepStats, rec *obs.Recorder) {
	for idx := range r.byRack {
		if len(r.byRack[idx]) == 0 {
			continue
		}
		agg := 0.0
		for _, st := range r.byRack[idx] {
			agg += st.current.Max()
		}
		agg /= float64(len(r.byRack[idx]))

		sel := r.deep[idx]
		if sel == nil {
			h := r.deepHist[idx]
			h.Append(agg)
			if h.Len() < r.opts.DeepFitAfter {
				continue
			}
			fitted, err := predictor.New(h, predictor.Options{Seed: r.opts.Seed + int64(idx)})
			if err != nil {
				// Not enough signal yet (e.g. constant history); keep
				// collecting and retry next step.
				continue
			}
			r.deep[idx] = fitted
			r.deepHist[idx] = timeseries.New(nil) // history lives in the selector now
			sel = fitted
		} else {
			sel.Observe(agg)
		}
		p, err := sel.Predict()
		if err != nil {
			continue
		}
		rec.Record(obs.Event{Kind: obs.KindForecast, Phase: "predict",
			Shim: idx, VM: -1, Host: -1, Value: p})
		if p > r.opts.HotThreshold {
			stats.DeepWarnings++
		}
	}
}

// DeepReady reports whether the rack's deep forecasting pool has been
// fitted — after a Restore this is true immediately, without refitting.
func (r *Runtime) DeepReady(rack int) bool {
	return r.deep != nil && rack >= 0 && rack < len(r.deep) && r.deep[rack] != nil
}

// Run advances n steps and returns the collected statistics.
func (r *Runtime) Run(n int) ([]StepStats, error) {
	for i := 0; i < n; i++ {
		if _, err := r.Step(); err != nil {
			return nil, err
		}
	}
	return r.History(), nil
}

// syncFlows reconciles the flow set with the VM dependency graph: one
// flow per dependent pair hosted in different racks, with rate driven by
// the pair's current traffic component. Existing flows keep their routes
// (so reroutes survive across steps); only rate changes are applied in
// place, and flows whose endpoints migrated are re-created.
func (r *Runtime) syncFlows() {
	type want struct {
		src, dst int
		rate     float64
		ds       bool
	}
	desired := make(map[[2]int]want)
	for idx := range r.byRack {
		for _, st := range r.byRack[idx] {
			for _, peerID := range r.Cluster.Deps.Peers(st.vm.ID) {
				peer := r.Cluster.VM(peerID)
				if peer == nil || peer.Host() == nil || st.vm.Host() == nil {
					continue
				}
				a, b := st.vm.ID, peerID
				if a > b {
					a, b = b, a
				}
				key := [2]int{a, b}
				if _, ok := desired[key]; ok {
					continue
				}
				srcNode := st.vm.Host().Rack().NodeID
				dstNode := peer.Host().Rack().NodeID
				if srcNode == dstNode {
					continue // intra-rack traffic never crosses the fabric
				}
				desired[key] = want{
					src:  srcNode,
					dst:  dstNode,
					rate: r.opts.FlowRate(st.current.TRF),
					// Dependencies with delay-sensitive endpoints produce
					// delay-sensitive flows (PRIORITY must not move them).
					ds: st.vm.DelaySensitive || peer.DelaySensitive,
				}
			}
		}
	}
	// Reconcile in deterministic key order: drop stale flows, re-route
	// moved ones, update rates (map iteration order would perturb the
	// floating-point load sums).
	existing := make([][2]int, 0, len(r.flowByPair))
	for key := range r.flowByPair {
		existing = append(existing, key)
	}
	sort.Slice(existing, func(i, j int) bool {
		if existing[i][0] != existing[j][0] {
			return existing[i][0] < existing[j][0]
		}
		return existing[i][1] < existing[j][1]
	})
	for _, key := range existing {
		id := r.flowByPair[key]
		f := r.Flows.Flow(id)
		w, ok := desired[key]
		if f == nil || !ok || f.Src != w.src || f.Dst != w.dst {
			if f != nil {
				r.Flows.RemoveFlow(id)
			}
			delete(r.flowByPair, key)
			continue
		}
		if f.Rate != w.rate {
			// Rate update failure is impossible for positive rates on a
			// live flow; ignore the error to keep the loop total.
			_ = r.Flows.SetRate(f, w.rate)
		}
		delete(desired, key) // handled
	}
	// Admit new pairs in deterministic order.
	keys := make([][2]int, 0, len(desired))
	for key := range desired {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, key := range keys {
		w := desired[key]
		f, err := r.Flows.AddFlow(w.src, w.dst, w.rate, w.ds)
		if err != nil {
			continue // unroutable pairs are skipped, not fatal
		}
		r.flowByPair[key] = f.ID
	}
}

// qcnHotSwitches advances each switch's congestion point by one step and
// returns the switches whose CP signaled congestion. The queue runs in
// normalized units: each step enqueues the switch's worst incident-link
// utilization and drains the hot-threshold's worth, so a link persistently
// above the threshold builds standing queue and triggers the Fb sample —
// QCN's detection dynamics at the granularity this simulator resolves.
func (r *Runtime) qcnHotSwitches(stats *StepStats) []int {
	var hot []int
	for _, sw := range r.Cluster.Graph.Switches() {
		cp := r.cps[sw]
		if cp == nil {
			var err error
			cp, err = qcn.NewCongestionPoint(qcn.CPConfig{QEq: 0.25, Capacity: 2})
			if err != nil {
				continue
			}
			r.cps[sw] = cp
		}
		cp.Enqueue(r.Flows.SwitchUtilization(sw))
		cp.Dequeue(r.opts.HotThreshold)
		if _, congested := cp.Sample(); congested {
			hot = append(hot, sw)
			stats.QCNFeedbacks++
		}
	}
	return hot
}

// uplinkUtilization returns the maximum utilization over the rack's ToR
// uplinks — the quantity the shim's queue monitor watches.
func (r *Runtime) uplinkUtilization(rack *dcn.Rack) float64 {
	max := 0.0
	for _, e := range r.Cluster.Graph.Edges(rack.NodeID) {
		if u := r.Flows.LinkUtilization(e.From, e.To); u > max {
			max = u
		}
	}
	return max
}
