// Package runtime drives the full Sheriff loop end to end in simulated
// time: every period T each shim collects its VMs' measured workload
// profiles, forecasts the next period, raises pre-alerts, and manages its
// region — VM migration for server/ToR alerts, flow rerouting for hot
// outer switches (Sec. II–V assembled). Prediction is embarrassingly
// parallel and runs one goroutine per rack; management mutates shared
// cluster state and is serialized, mirroring the paper's split between
// local monitoring and coordinated action.
package runtime

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"sheriff/internal/alert"
	"sheriff/internal/cost"
	"sheriff/internal/dcn"
	"sheriff/internal/flow"
	"sheriff/internal/migrate"
	"sheriff/internal/qcn"
	"sheriff/internal/timeseries"
	"sheriff/internal/traces"
)

// Options configures a Runtime.
type Options struct {
	Thresholds   alert.Thresholds // ALERT trigger levels (default 0.9)
	HotThreshold float64          // switch utilization treated as hot (default 0.9)
	QueueLimit   float64          // ToR uplink queue capacity (default 1.0 = full utilization)
	Seed         int64
	Migrate      migrate.Params
	// FlowRate maps a dependent VM pair's mean TRF to a flow rate in
	// link-capacity units (default 0.05 + 0.4·TRF).
	FlowRate func(trf float64) float64
	// UseQCN detects switch congestion through per-switch QCN congestion
	// points (queue dynamics + Fb sampling) instead of a bare utilization
	// threshold.
	UseQCN bool
	// DisableReroute turns FLOWREROUTE off (hot switches stay hot) — the
	// ablation baseline.
	DisableReroute bool
}

func (o Options) withDefaults() Options {
	if o.Thresholds == (alert.Thresholds{}) {
		o.Thresholds = alert.DefaultThresholds()
	}
	if o.HotThreshold == 0 {
		o.HotThreshold = 0.9
	}
	if o.QueueLimit == 0 {
		o.QueueLimit = 1.0
	}
	if o.Migrate == (migrate.Params{}) {
		o.Migrate = migrate.DefaultParams()
	}
	if o.FlowRate == nil {
		o.FlowRate = func(trf float64) float64 { return 0.05 + 0.4*trf }
	}
	return o
}

// vmState is one VM's monitoring stack: its synthetic workload source and
// the per-component profile predictor.
type vmState struct {
	vm      *dcn.VM
	gen     *traces.WorkloadGen
	pred    *alert.ProfilePredictor
	current traces.Profile
}

// ewmaTrend is a cheap ComponentForecaster: exponentially weighted level
// plus trend (Holt's linear method), adequate for per-step pre-alerts
// where fitting a full ARIMA per VM per tick would be wasteful.
type ewmaTrend struct {
	alpha, beta float64
}

// ForecastFrom implements alert.ComponentForecaster.
func (e ewmaTrend) ForecastFrom(h *timeseries.Series, n int) ([]float64, error) {
	if h.Len() == 0 {
		return nil, errors.New("runtime: empty history")
	}
	level := h.At(0)
	trend := 0.0
	for t := 1; t < h.Len(); t++ {
		prev := level
		level = e.alpha*h.At(t) + (1-e.alpha)*(level+trend)
		trend = e.beta*(level-prev) + (1-e.beta)*trend
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = level + trend*float64(i+1)
	}
	return out, nil
}

// StepStats summarizes one runtime step.
type StepStats struct {
	Step           int
	ServerAlerts   int
	ToRAlerts      int
	SwitchAlerts   int
	Migrations     int
	MigrationCost  float64
	Reroutes       int
	HotSwitches    int
	WorkloadStdDev float64
	MaxUplinkUtil  float64
	QCNFeedbacks   int // congestion messages sampled (UseQCN only)
}

// Runtime is the assembled system.
type Runtime struct {
	Cluster *dcn.Cluster
	Model   *cost.Model
	Flows   *flow.Network

	opts       Options
	shims      []*migrate.Shim
	byRack     [][]*vmState // vm states grouped by rack index
	queueMon   []*alert.QueueMonitor
	cps        map[int]*qcn.CongestionPoint // per-switch CPs (UseQCN)
	flowByPair map[[2]int]int               // dependency pair -> flow ID
	rng        *rand.Rand
	step       int
	history    []StepStats
}

// New assembles a runtime over an already populated cluster.
func New(cluster *dcn.Cluster, model *cost.Model, opts Options) (*Runtime, error) {
	opts = opts.withDefaults()
	if err := opts.Migrate.Validate(); err != nil {
		return nil, err
	}
	r := &Runtime{
		Cluster:    cluster,
		Model:      model,
		Flows:      flow.NewNetwork(cluster.Graph),
		opts:       opts,
		rng:        rand.New(rand.NewSource(opts.Seed)),
		cps:        make(map[int]*qcn.CongestionPoint),
		flowByPair: make(map[[2]int]int),
		byRack:     make([][]*vmState, len(cluster.Racks)),
	}
	for _, rack := range cluster.Racks {
		shim, err := migrate.NewShim(cluster, model, rack, opts.Migrate)
		if err != nil {
			return nil, err
		}
		r.shims = append(r.shims, shim)
		qm, err := alert.NewQueueMonitor(ewmaTrend{alpha: 0.5, beta: 0.3}, opts.QueueLimit, 0.9)
		if err != nil {
			return nil, err
		}
		r.queueMon = append(r.queueMon, qm)
	}
	vms := cluster.VMs()
	sort.Slice(vms, func(i, j int) bool { return vms[i].ID < vms[j].ID })
	for _, vm := range vms {
		f := ewmaTrend{alpha: 0.5, beta: 0.3}
		st := &vmState{
			vm:   vm,
			gen:  traces.NewWorkloadGen(24, opts.Seed+int64(vm.ID)),
			pred: alert.NewProfilePredictor(f, f, f, f),
		}
		idx := vm.Host().Rack().Index
		r.byRack[idx] = append(r.byRack[idx], st)
	}
	return r, nil
}

// History returns the per-step statistics recorded so far.
func (r *Runtime) History() []StepStats { return r.history }

// Step advances one collection period T. The prediction phase runs one
// goroutine per rack; management is serialized.
func (r *Runtime) Step() (*StepStats, error) {
	stats := &StepStats{Step: r.step}
	r.step++

	// Phase 1 (parallel): observe, predict, raise alerts per rack.
	alertsByRack := make([][]alert.Alert, len(r.byRack))
	var wg sync.WaitGroup
	for idx := range r.byRack {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			var out []alert.Alert
			for _, st := range r.byRack[idx] {
				st.current = st.gen.Next()
				st.pred.Observe(st.current)
				if st.pred.HistoryLen() < 3 {
					continue // not enough history to extrapolate
				}
				a, fired, err := st.pred.Check(r.opts.Thresholds)
				if err != nil || !fired {
					continue
				}
				a.VMID = st.vm.ID
				if h := st.vm.Host(); h != nil {
					a.HostID = h.ID
				}
				a.RackIndex = idx
				st.vm.Alert = a.Value
				out = append(out, a)
			}
			alertsByRack[idx] = out
		}(idx)
	}
	wg.Wait()
	for _, as := range alertsByRack {
		stats.ServerAlerts += len(as)
	}

	// Phase 2: rebuild the traffic plane from the dependency graph.
	r.syncFlows()

	// Phase 3: switch-side congestion. Hot outer switches trigger
	// FLOWREROUTE; ToR uplink monitors raise FromLocalToR alerts.
	var hot []int
	if r.opts.UseQCN {
		hot = r.qcnHotSwitches(stats)
	} else {
		hot = r.Flows.HotSwitches(r.opts.HotThreshold)
	}
	stats.HotSwitches = len(hot)
	for _, sw := range hot {
		stats.SwitchAlerts++
		if r.opts.DisableReroute {
			continue
		}
		moved := r.Flows.RerouteAroundHot(sw, r.opts.HotThreshold)
		stats.Reroutes += len(moved)
	}
	for idx, rack := range r.Cluster.Racks {
		util := r.uplinkUtilization(rack)
		if util > stats.MaxUplinkUtil {
			stats.MaxUplinkUtil = util
		}
		r.queueMon[idx].Observe(util)
		if a, fired, err := r.queueMon[idx].Check(); err == nil && fired {
			a.RackIndex = idx
			alertsByRack[idx] = append(alertsByRack[idx], a)
			stats.ToRAlerts++
		}
	}

	// Phase 4 (serialized): management. The traffic plane's residual
	// bandwidth feeds the cost model first.
	r.Flows.UpdateGraphBandwidth()
	r.Model.Refresh()
	for idx, shim := range r.shims {
		if len(alertsByRack[idx]) == 0 {
			continue
		}
		rep, err := shim.ProcessAlerts(alertsByRack[idx])
		if err != nil {
			return nil, fmt.Errorf("runtime: shim %d: %w", idx, err)
		}
		stats.Migrations += len(rep.Migrations)
		stats.MigrationCost += rep.TotalCost
	}

	stats.WorkloadStdDev = r.Cluster.WorkloadStdDev()
	r.history = append(r.history, *stats)
	return stats, nil
}

// Run advances n steps and returns the collected statistics.
func (r *Runtime) Run(n int) ([]StepStats, error) {
	for i := 0; i < n; i++ {
		if _, err := r.Step(); err != nil {
			return nil, err
		}
	}
	return r.History(), nil
}

// syncFlows reconciles the flow set with the VM dependency graph: one
// flow per dependent pair hosted in different racks, with rate driven by
// the pair's current traffic component. Existing flows keep their routes
// (so reroutes survive across steps); only rate changes are applied in
// place, and flows whose endpoints migrated are re-created.
func (r *Runtime) syncFlows() {
	type want struct {
		src, dst int
		rate     float64
		ds       bool
	}
	desired := make(map[[2]int]want)
	for idx := range r.byRack {
		for _, st := range r.byRack[idx] {
			for _, peerID := range r.Cluster.Deps.Peers(st.vm.ID) {
				peer := r.Cluster.VM(peerID)
				if peer == nil || peer.Host() == nil || st.vm.Host() == nil {
					continue
				}
				a, b := st.vm.ID, peerID
				if a > b {
					a, b = b, a
				}
				key := [2]int{a, b}
				if _, ok := desired[key]; ok {
					continue
				}
				srcNode := st.vm.Host().Rack().NodeID
				dstNode := peer.Host().Rack().NodeID
				if srcNode == dstNode {
					continue // intra-rack traffic never crosses the fabric
				}
				desired[key] = want{
					src:  srcNode,
					dst:  dstNode,
					rate: r.opts.FlowRate(st.current.TRF),
					// Dependencies with delay-sensitive endpoints produce
					// delay-sensitive flows (PRIORITY must not move them).
					ds: st.vm.DelaySensitive || peer.DelaySensitive,
				}
			}
		}
	}
	// Reconcile in deterministic key order: drop stale flows, re-route
	// moved ones, update rates (map iteration order would perturb the
	// floating-point load sums).
	existing := make([][2]int, 0, len(r.flowByPair))
	for key := range r.flowByPair {
		existing = append(existing, key)
	}
	sort.Slice(existing, func(i, j int) bool {
		if existing[i][0] != existing[j][0] {
			return existing[i][0] < existing[j][0]
		}
		return existing[i][1] < existing[j][1]
	})
	for _, key := range existing {
		id := r.flowByPair[key]
		f := r.Flows.Flow(id)
		w, ok := desired[key]
		if f == nil || !ok || f.Src != w.src || f.Dst != w.dst {
			if f != nil {
				r.Flows.RemoveFlow(id)
			}
			delete(r.flowByPair, key)
			continue
		}
		if f.Rate != w.rate {
			// Rate update failure is impossible for positive rates on a
			// live flow; ignore the error to keep the loop total.
			_ = r.Flows.SetRate(f, w.rate)
		}
		delete(desired, key) // handled
	}
	// Admit new pairs in deterministic order.
	keys := make([][2]int, 0, len(desired))
	for key := range desired {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, key := range keys {
		w := desired[key]
		f, err := r.Flows.AddFlow(w.src, w.dst, w.rate, w.ds)
		if err != nil {
			continue // unroutable pairs are skipped, not fatal
		}
		r.flowByPair[key] = f.ID
	}
}

// qcnHotSwitches advances each switch's congestion point by one step and
// returns the switches whose CP signaled congestion. The queue runs in
// normalized units: each step enqueues the switch's worst incident-link
// utilization and drains the hot-threshold's worth, so a link persistently
// above the threshold builds standing queue and triggers the Fb sample —
// QCN's detection dynamics at the granularity this simulator resolves.
func (r *Runtime) qcnHotSwitches(stats *StepStats) []int {
	var hot []int
	for _, sw := range r.Cluster.Graph.Switches() {
		cp := r.cps[sw]
		if cp == nil {
			var err error
			cp, err = qcn.NewCongestionPoint(qcn.CPConfig{QEq: 0.25, Capacity: 2})
			if err != nil {
				continue
			}
			r.cps[sw] = cp
		}
		cp.Enqueue(r.Flows.SwitchUtilization(sw))
		cp.Dequeue(r.opts.HotThreshold)
		if _, congested := cp.Sample(); congested {
			hot = append(hot, sw)
			stats.QCNFeedbacks++
		}
	}
	return hot
}

// uplinkUtilization returns the maximum utilization over the rack's ToR
// uplinks — the quantity the shim's queue monitor watches.
func (r *Runtime) uplinkUtilization(rack *dcn.Rack) float64 {
	max := 0.0
	for _, e := range r.Cluster.Graph.Edges(rack.NodeID) {
		if u := r.Flows.LinkUtilization(e.From, e.To); u > max {
			max = u
		}
	}
	return max
}
