// Package runtime drives the full Sheriff loop end to end in simulated
// time: every period T each shim collects its VMs' measured workload
// profiles, forecasts the next period, raises pre-alerts, and manages its
// region — VM migration for server/ToR alerts, flow rerouting for hot
// outer switches (Sec. II–V assembled).
//
// Two step engines share this API. The default is the sharded SoA engine
// (sharded.go): VM state in flat arrays partitioned into contiguous
// rack-range shards owned by persistent workers, sized for 5,000-rack /
// million-VM fabrics. Options.Reference selects the seed engine
// (reference.go) — per-VM heap states fanned out over the shared pool —
// kept as the ground truth the sharded engine is proven bit-exact against.
package runtime

import (
	"errors"
	"fmt"
	"math/rand"
	stdruntime "runtime"
	"time"

	"sheriff/internal/alert"
	"sheriff/internal/cost"
	"sheriff/internal/dcn"
	"sheriff/internal/flow"
	"sheriff/internal/metrics"
	"sheriff/internal/migrate"
	"sheriff/internal/obs"
	"sheriff/internal/predictor"
	"sheriff/internal/qcn"
	"sheriff/internal/timeseries"
	"sheriff/internal/traces"
)

// Options configures a Runtime.
type Options struct {
	Thresholds   alert.Thresholds // ALERT trigger levels (default 0.9)
	HotThreshold float64          // switch utilization treated as hot (default 0.9)
	QueueLimit   float64          // ToR uplink queue capacity (default 1.0 = full utilization)
	Seed         int64
	Migrate      migrate.Params
	// FlowRate maps a dependent VM pair's mean TRF to a flow rate in
	// link-capacity units (default 0.05 + 0.4·TRF).
	FlowRate func(trf float64) float64
	// UseQCN detects switch congestion through per-switch QCN congestion
	// points (queue dynamics + Fb sampling) instead of a bare utilization
	// threshold.
	UseQCN bool
	// DisableReroute turns FLOWREROUTE off (hot switches stay hot) — the
	// ablation baseline.
	DisableReroute bool
	// Recorder, when non-nil, receives per-step phase timings, per-rack
	// alert counts, and per-shim manage timings, and is threaded into
	// every shim (unless Migrate.Recorder is already set) so migration
	// protocol events carry the current step number.
	Recorder *obs.Recorder
	// DeepPredict enables the per-rack deep forecasting pool: once a
	// rack has DeepFitAfter observations of aggregate stress, a dynamic
	// model-selection pool (2 ARIMA + 2 NARNET) is fitted over it and
	// supplies next-period early warnings alongside the cheap per-VM
	// triage. Fitted pools are carried by Snapshot so a restart resumes
	// without refitting.
	DeepPredict bool
	// DeepFitAfter is the rack-history length that triggers the deep
	// fit (default 48, minimum large enough for the NARNET delay lines).
	DeepFitAfter int
	// Shards is the number of persistent shard workers in the sharded
	// engine (0 = number of CPUs, clamped to the rack count). Step
	// results are bit-identical for every shard count.
	Shards int
	// HistoryLimit bounds the in-memory per-step stats kept by History():
	// at most the last HistoryLimit steps are retained in a ring. 0 keeps
	// every step (the seed behavior); streaming consumers should set a
	// small limit and drain the Recorder instead.
	HistoryLimit int
	// Traces selects and tunes the trace-generator family feeding the
	// synthetic engines (traces.New): Diurnal (default), Lite, Surge, or
	// SurgeLite, plus the surge regime parameters. Traces.Seed inherits
	// Seed when zero, so the default configuration stays bit-exact with
	// the pre-Options engines.
	Traces traces.Options
	// Reference selects the seed step engine instead of the sharded one.
	// Slower and memory-hungry at scale; used as the equivalence oracle.
	Reference bool
}

// Validate reports whether the options are usable. Negative values are
// errors; zero values mean "use the default".
func (o Options) Validate() error {
	if o.HotThreshold < 0 {
		return fmt.Errorf("runtime: HotThreshold must be >= 0 (0 = default), got %v", o.HotThreshold)
	}
	if o.QueueLimit < 0 {
		return fmt.Errorf("runtime: QueueLimit must be >= 0 (0 = default), got %v", o.QueueLimit)
	}
	if o.DeepFitAfter < 0 {
		return fmt.Errorf("runtime: DeepFitAfter must be >= 0 (0 = default), got %v", o.DeepFitAfter)
	}
	if o.Shards < 0 {
		return fmt.Errorf("runtime: Shards must be >= 0 (0 = default), got %v", o.Shards)
	}
	if o.HistoryLimit < 0 {
		return fmt.Errorf("runtime: HistoryLimit must be >= 0 (0 = unbounded), got %v", o.HistoryLimit)
	}
	if err := o.Traces.Validate(); err != nil {
		return err
	}
	return o.Migrate.Validate()
}

// WithDefaults returns the options with zero fields replaced by their
// defaults (thresholds 0.9, full queue, Holt-style flow-rate mapping),
// with the recorder threaded into the migrate params unless one is
// already set there.
func (o Options) WithDefaults() Options {
	if o.Thresholds == (alert.Thresholds{}) {
		o.Thresholds = alert.DefaultThresholds()
	}
	if o.HotThreshold == 0 {
		o.HotThreshold = 0.9
	}
	if o.QueueLimit == 0 {
		o.QueueLimit = 1.0
	}
	o.Migrate = o.Migrate.WithDefaults()
	if o.Migrate.Recorder == nil {
		o.Migrate.Recorder = o.Recorder
	}
	if o.FlowRate == nil {
		o.FlowRate = func(trf float64) float64 { return 0.05 + 0.4*trf }
	}
	if o.DeepFitAfter == 0 {
		o.DeepFitAfter = 48
	}
	if o.Shards == 0 {
		o.Shards = stdruntime.NumCPU()
	}
	// The trace seed defaults to the runtime seed so pre-Options
	// configurations replay bit-exactly.
	if o.Traces.Seed == 0 {
		o.Traces.Seed = o.Seed
	}
	o.Traces = o.Traces.WithDefaults()
	return o
}

// ewmaTrend is a cheap ComponentForecaster: exponentially weighted level
// plus trend (Holt's linear method), adequate for per-step pre-alerts
// where fitting a full ARIMA per VM per tick would be wasteful.
type ewmaTrend struct {
	alpha, beta float64
}

// ForecastFrom implements alert.ComponentForecaster.
func (e ewmaTrend) ForecastFrom(h *timeseries.Series, n int) ([]float64, error) {
	if h.Len() == 0 {
		return nil, errors.New("runtime: empty history")
	}
	level := h.At(0)
	trend := 0.0
	for t := 1; t < h.Len(); t++ {
		level, trend = e.fold(level, trend, h.At(t))
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = level + trend*float64(i+1)
	}
	return out, nil
}

// trendState is ewmaTrend with suffix-aware incremental state: the level
// and trend fully determine both the forecast and the continuation of the
// recursion, so a bound history that only grows (the per-step collection
// pattern) costs O(new points) per forecast instead of a full O(n)
// re-smoothing. The continuation is bit-exact with ewmaTrend's cold pass.
// Each trendState must be bound to exactly one append-only history; it is
// not safe for concurrent use (each VM component and queue monitor owns
// its own instance).
type trendState struct {
	ewmaTrend
	n            int     // observations folded into level/trend
	last         float64 // history.At(n-1), to detect non-append mutation
	level, trend float64
}

// ForecastFrom implements alert.ComponentForecaster incrementally.
func (ts *trendState) ForecastFrom(h *timeseries.Series, n int) ([]float64, error) {
	if h.Len() == 0 {
		return nil, errors.New("runtime: empty history")
	}
	start := ts.n
	if start < 1 || start > h.Len() || h.At(start-1) != ts.last {
		ts.level, ts.trend = h.At(0), 0
		start = 1
	}
	for t := start; t < h.Len(); t++ {
		ts.level, ts.trend = ts.fold(ts.level, ts.trend, h.At(t))
	}
	ts.n = h.Len()
	ts.last = h.At(h.Len() - 1)
	out := make([]float64, n)
	for i := range out {
		out[i] = ts.level + ts.trend*float64(i+1)
	}
	return out, nil
}

// PhaseTimings holds one step's wall-clock phase durations. Timings are
// measurement artifacts: they vary run to run and are excluded from any
// determinism comparison of StepStats.
type PhaseTimings struct {
	Predict    time.Duration // phase 1: observe + forecast + pre-alerts
	Flows      time.Duration // phase 2: traffic-plane reconciliation
	Congestion time.Duration // phase 3: hot switches, reroutes, ToR monitors
	Manage     time.Duration // phase 4: cost refresh + shim management
}

// StepStats summarizes one runtime step.
type StepStats struct {
	Step           int
	ServerAlerts   int
	ToRAlerts      int
	SwitchAlerts   int
	Migrations     int
	MigrationCost  float64
	Preemptions    int // victims evicted by preemption-aware shims
	Requeued       int // VMs parked in shim fail-queues this step
	Reroutes       int
	HotSwitches    int
	WorkloadStdDev float64
	MaxUplinkUtil  float64
	QCNFeedbacks   int // congestion messages sampled (UseQCN only)
	DeepWarnings   int // racks whose deep pool predicted stress above threshold
	Timings        PhaseTimings
}

// Runtime is the assembled system.
type Runtime struct {
	Cluster *dcn.Cluster
	Model   *cost.Model
	Flows   *flow.Network

	opts       Options
	gen        traces.Generator             // trace family (opts.Traces), built once
	shims      []*migrate.Shim              // indexed by rack; nil until first alert (sharded)
	cps        map[int]*qcn.CongestionPoint // per-switch CPs (UseQCN)
	flowByPair map[[2]int]int               // dependency pair -> flow ID
	rng        *rand.Rand
	step       int
	history    []StepStats
	histStart  int  // ring head once history is full (HistoryLimit > 0)
	modelStale bool // link bandwidth changed since the last Model.Refresh

	ref *refState   // seed engine (Options.Reference)
	sh  *shardState // sharded engine (default)

	// Deep forecasting pools (DeepPredict): per-rack aggregate stress
	// history and, once fitted, the dynamic-selection pool over it.
	deepHist []*timeseries.Series
	deep     []*predictor.Selector

	phaseSummaries [4]metrics.Summary // per-phase duration stats, seconds
	skewSummaries  [3]metrics.Summary // shard-round load skew (sharded engine)
}

// PhaseSummaries returns streaming duration statistics (in seconds) for
// the four Step phases, aggregated over every step so far, keyed
// "predict", "flows", "congestion", "manage". Under the sharded engine it
// additionally exposes the shard-round load skew of the fanned-out phases
// ("predict_skew", "flows_skew", "congestion_skew": max shard time over
// mean shard time per round, 1.0 = perfectly balanced).
func (r *Runtime) PhaseSummaries() map[string]*metrics.Summary {
	out := map[string]*metrics.Summary{
		"predict":    &r.phaseSummaries[0],
		"flows":      &r.phaseSummaries[1],
		"congestion": &r.phaseSummaries[2],
		"manage":     &r.phaseSummaries[3],
	}
	if r.sh != nil {
		out["predict_skew"] = &r.skewSummaries[0]
		out["flows_skew"] = &r.skewSummaries[1]
		out["congestion_skew"] = &r.skewSummaries[2]
	}
	return out
}

// New assembles a runtime over an already populated cluster.
func New(cluster *dcn.Cluster, model *cost.Model, opts Options) (*Runtime, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.WithDefaults()
	gen, err := traces.New(opts.Traces)
	if err != nil {
		return nil, fmt.Errorf("runtime: %w", err)
	}
	r := &Runtime{
		Cluster:    cluster,
		Model:      model,
		Flows:      flow.NewNetwork(cluster.Graph),
		opts:       opts,
		gen:        gen,
		rng:        rand.New(rand.NewSource(opts.Seed)),
		cps:        make(map[int]*qcn.CongestionPoint),
		flowByPair: make(map[[2]int]int),
	}
	if opts.DeepPredict {
		r.deepHist = make([]*timeseries.Series, len(cluster.Racks))
		r.deep = make([]*predictor.Selector, len(cluster.Racks))
		for i := range r.deepHist {
			r.deepHist[i] = timeseries.New(nil)
		}
	}
	if opts.Reference {
		err = r.initReference()
	} else {
		err = r.initSharded()
	}
	if err != nil {
		return nil, err
	}
	return r, nil
}

// TraceGen returns the trace generator the synthetic engines draw from —
// the same streams an external reporter should replay when labeling the
// runtime's predictions against ground truth.
func (r *Runtime) TraceGen() traces.Generator { return r.gen }

// Close releases the engine's persistent shard workers. Safe to call more
// than once; the reference engine has nothing to release.
func (r *Runtime) Close() {
	if r.sh != nil {
		r.sh.workers.Close()
	}
}

// History returns the per-step statistics retained so far, oldest first.
// With HistoryLimit set this is at most the last HistoryLimit steps.
func (r *Runtime) History() []StepStats {
	if r.histStart == 0 {
		return r.history
	}
	out := make([]StepStats, len(r.history))
	n := copy(out, r.history[r.histStart:])
	copy(out[n:], r.history[:r.histStart])
	return out
}

// recordHistory appends one step's stats, evicting the oldest entry once
// the configured limit is reached.
func (r *Runtime) recordHistory(s StepStats) {
	lim := r.opts.HistoryLimit
	if lim <= 0 || len(r.history) < lim {
		r.history = append(r.history, s)
		return
	}
	r.history[r.histStart] = s
	r.histStart = (r.histStart + 1) % lim
}

// Step advances one collection period T. Prediction and monitoring fan
// out over the engine's shard workers (or the shared pool under
// Options.Reference); management is serialized.
func (r *Runtime) Step() (*StepStats, error) {
	if r.ref != nil {
		return r.advanceRef(nil)
	}
	return r.advanceSharded(false)
}

// ExternalUpdate is one VM's measured workload profile for the current
// collection period, delivered by an external ingest plane instead of the
// built-in synthetic generators.
type ExternalUpdate struct {
	VM      int
	Profile traces.Profile
}

// StepExternal advances one collection period using externally supplied
// profiles: VMs present in updates take their measured profile, VMs
// absent this period repeat their last observed profile (the shim's
// collect loop treats silence as "unchanged"). Unknown VM IDs are an
// error. The synthetic generators do not advance, so a daemon fed real
// measurements never consumes generator state.
func (r *Runtime) StepExternal(updates []ExternalUpdate) (*StepStats, error) {
	if r.ref != nil {
		external := make(map[int]traces.Profile, len(updates))
		for _, u := range updates {
			if r.Cluster.VM(u.VM) == nil {
				return nil, fmt.Errorf("runtime: external update for unknown VM %d", u.VM)
			}
			external[u.VM] = u.Profile
		}
		return r.advanceRef(external)
	}
	// The sharded path stamps profiles into a persistent overlay keyed by
	// dense VM index; bumping the epoch invalidates the previous step's
	// stamps, so a steady ingest loop allocates nothing.
	sh := r.sh
	sh.extEpoch++
	for _, u := range updates {
		i, ok := sh.vmIndex[u.VM]
		if !ok {
			return nil, fmt.Errorf("runtime: external update for unknown VM %d", u.VM)
		}
		sh.extProf[i] = u.Profile
		sh.extMark[i] = sh.extEpoch
	}
	return r.advanceSharded(true)
}

// DeepReady reports whether the rack's deep forecasting pool has been
// fitted — after a Restore this is true immediately, without refitting.
func (r *Runtime) DeepReady(rack int) bool {
	return r.deep != nil && rack >= 0 && rack < len(r.deep) && r.deep[rack] != nil
}

// Run advances n steps and returns the retained statistics.
func (r *Runtime) Run(n int) ([]StepStats, error) {
	for i := 0; i < n; i++ {
		if _, err := r.Step(); err != nil {
			return nil, err
		}
	}
	return r.History(), nil
}

// qcnHotSwitches advances each switch's congestion point by one step and
// returns the switches whose CP signaled congestion. The queue runs in
// normalized units: each step enqueues the switch's worst incident-link
// utilization and drains the hot-threshold's worth, so a link persistently
// above the threshold builds standing queue and triggers the Fb sample —
// QCN's detection dynamics at the granularity this simulator resolves.
func (r *Runtime) qcnHotSwitches(stats *StepStats) []int {
	var hot []int
	for _, sw := range r.Cluster.Graph.Switches() {
		cp := r.cps[sw]
		if cp == nil {
			var err error
			cp, err = qcn.NewCongestionPoint(qcn.CPConfig{QEq: 0.25, Capacity: 2})
			if err != nil {
				continue
			}
			r.cps[sw] = cp
		}
		cp.Enqueue(r.Flows.SwitchUtilization(sw))
		cp.Dequeue(r.opts.HotThreshold)
		if _, congested := cp.Sample(); congested {
			hot = append(hot, sw)
			stats.QCNFeedbacks++
		}
	}
	return hot
}

// uplinkUtilization returns the maximum utilization over the rack's ToR
// uplinks — the quantity the shim's queue monitor watches.
func (r *Runtime) uplinkUtilization(rack *dcn.Rack) float64 {
	max := 0.0
	for _, e := range r.Cluster.Graph.Edges(rack.NodeID) {
		if u := r.Flows.EdgeUtilization(e); u > max {
			max = u
		}
	}
	return max
}
