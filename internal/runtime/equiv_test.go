package runtime

import (
	"encoding/json"
	"testing"

	"sheriff/internal/dcn"
	"sheriff/internal/traces"
)

// equivScenario is one regime the sharded engine must reproduce
// bit-exactly against the reference engine.
type equivScenario struct {
	name     string
	steps    int
	external bool // drive via StepExternal instead of Step
	mutate   func(*Options)
}

func equivScenarios() []equivScenario {
	return []equivScenario{
		{name: "default", steps: 12},
		{name: "deep", steps: 14, mutate: func(o *Options) {
			o.DeepPredict = true
			o.DeepFitAfter = 6
		}},
		{name: "qcn", steps: 10, mutate: func(o *Options) {
			o.UseQCN = true
			o.FlowRate = func(trf float64) float64 { return 0.5 + 0.5*trf }
		}},
		{name: "no-reroute", steps: 10, mutate: func(o *Options) {
			o.DisableReroute = true
			o.FlowRate = func(trf float64) float64 { return 0.5 + 0.5*trf }
		}},
		{name: "external", steps: 10, external: true},
		{name: "lite", steps: 12, mutate: func(o *Options) {
			o.Traces = traces.Options{Kind: traces.Lite}
		}},
		{name: "surge", steps: 12, mutate: func(o *Options) {
			o.Traces = traces.Options{Kind: traces.Surge,
				Surge: traces.SurgeParams{MeanDwell: 4, Intensity: 1.5}}
		}},
		{name: "surge-lite", steps: 12, mutate: func(o *Options) {
			o.Traces = traces.Options{Kind: traces.SurgeLite,
				Surge: traces.SurgeParams{MeanDwell: 4, BurstWeight: 1, RackFraction: 0.5}}
		}},
	}
}

// externalProfile is a deterministic pseudo-measurement for the external
// scenario, a pure function of (step, vmID).
func externalProfile(step, vmID int) traces.Profile {
	f := func(k int) float64 {
		x := float64((step*31+vmID*17+k*7)%100) / 100
		return x
	}
	return traces.Profile{CPU: f(0), Mem: f(1), IO: f(2), TRF: f(3)}
}

func buildEquivRuntime(t *testing.T, seed int64, opts Options) *Runtime {
	t.Helper()
	cluster, model := buildParts(t, 4)
	cluster.Populate(dcn.PopulateOptions{VMsPerHost: 3, MinCapacity: 5, MaxCapacity: 20, DependencyProb: 0.5, CrossRackDependencyProb: 0.4, Seed: seed})
	opts.Seed = seed
	r, err := New(cluster, model, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

func driveEquiv(t *testing.T, r *Runtime, sc equivScenario) []StepStats {
	t.Helper()
	for step := 0; step < sc.steps; step++ {
		var err error
		if sc.external {
			var updates []ExternalUpdate
			for _, vm := range r.Cluster.VMs() {
				// Every third VM is silent each step, exercising the
				// repeat-last-profile path.
				if (vm.ID+step)%3 == 0 {
					continue
				}
				updates = append(updates, ExternalUpdate{VM: vm.ID, Profile: externalProfile(step, vm.ID)})
			}
			_, err = r.StepExternal(updates)
		} else {
			_, err = r.Step()
		}
		if err != nil {
			t.Fatalf("%s step %d: %v", sc.name, step, err)
		}
	}
	return r.History()
}

// TestShardedMatchesReference is the engine-equivalence contract: for
// every scenario and shard count, the sharded engine's StepStats, final
// placement, and snapshot are bit-identical to the reference engine's.
func TestShardedMatchesReference(t *testing.T) {
	for _, sc := range equivScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			refOpts := Options{Reference: true}
			if sc.mutate != nil {
				sc.mutate(&refOpts)
			}
			ref := buildEquivRuntime(t, 11, refOpts)
			refHist := driveEquiv(t, ref, sc)

			var refSnap []byte
			if !refOpts.UseQCN {
				snap, err := ref.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				refSnap, err = json.Marshal(snap)
				if err != nil {
					t.Fatal(err)
				}
			}

			for _, shards := range []int{1, 2, 5} {
				shOpts := Options{Shards: shards}
				if sc.mutate != nil {
					sc.mutate(&shOpts)
				}
				sh := buildEquivRuntime(t, 11, shOpts)
				shHist := driveEquiv(t, sh, sc)
				if len(shHist) != len(refHist) {
					t.Fatalf("shards=%d: %d steps, reference has %d", shards, len(shHist), len(refHist))
				}
				for i := range refHist {
					sameStats(t, sc.name, refHist[i], shHist[i])
				}
				if refSnap != nil {
					snap, err := sh.Snapshot()
					if err != nil {
						t.Fatal(err)
					}
					got, err := json.Marshal(snap)
					if err != nil {
						t.Fatal(err)
					}
					if string(got) != string(refSnap) {
						t.Fatalf("shards=%d: snapshot diverged from reference engine", shards)
					}
				}
			}
		})
	}
}

// TestShardedDeterministicAcrossShardCounts pins the determinism argument
// directly: the shard count is a pure performance knob, invisible in
// results.
func TestShardedDeterministicAcrossShardCounts(t *testing.T) {
	base := driveEquiv(t, buildEquivRuntime(t, 3, Options{Shards: 1}), equivScenario{name: "base", steps: 10})
	for _, shards := range []int{2, 3, 8} {
		got := driveEquiv(t, buildEquivRuntime(t, 3, Options{Shards: shards}), equivScenario{name: "base", steps: 10})
		for i := range base {
			sameStats(t, "shard-count", base[i], got[i])
		}
	}
}

// TestHistoryRing verifies the bounded-history contract: with
// HistoryLimit set, History() returns exactly the last N steps oldest
// first; without it, every step is retained.
func TestHistoryRing(t *testing.T) {
	r := buildEquivRuntime(t, 5, Options{HistoryLimit: 4})
	if _, err := r.Run(10); err != nil {
		t.Fatal(err)
	}
	h := r.History()
	if len(h) != 4 {
		t.Fatalf("history length = %d, want 4", len(h))
	}
	for i, s := range h {
		if s.Step != 6+i {
			t.Fatalf("history[%d].Step = %d, want %d", i, s.Step, 6+i)
		}
	}

	unbounded := buildEquivRuntime(t, 5, Options{})
	if _, err := unbounded.Run(10); err != nil {
		t.Fatal(err)
	}
	if got := len(unbounded.History()); got != 10 {
		t.Fatalf("unbounded history length = %d, want 10", got)
	}
}

// TestSnapshotRestoreShardCountChange runs 6 steps on a 3-shard runtime,
// snapshots, restores onto a 7-shard runtime, runs 4 more, and requires
// the concatenated trajectory to be bit-identical to a straight 10-step
// run — the shard partition is orthogonal to snapshot state.
func TestSnapshotRestoreShardCountChange(t *testing.T) {
	const seed, before, after = 13, 6, 4

	straight := buildEquivRuntime(t, seed, Options{Shards: 2})
	wantHist := driveEquiv(t, straight, equivScenario{name: "straight", steps: before + after})

	part := buildEquivRuntime(t, seed, Options{Shards: 3})
	gotHist := append([]StepStats(nil), driveEquiv(t, part, equivScenario{name: "part1", steps: before})...)

	snap, err := part.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var loaded Snapshot
	if err := json.Unmarshal(blob, &loaded); err != nil {
		t.Fatal(err)
	}
	freshCluster, freshModel := buildParts(t, 4)
	if err := freshCluster.Restore(loaded.Cluster); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(freshCluster, freshModel, Options{Seed: seed, Shards: 7}, &loaded)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	for i := 0; i < after; i++ {
		s, err := restored.Step()
		if err != nil {
			t.Fatal(err)
		}
		gotHist = append(gotHist, *s)
	}

	if len(gotHist) != len(wantHist) {
		t.Fatalf("trajectory lengths: got %d, want %d", len(gotHist), len(wantHist))
	}
	for i := range wantHist {
		sameStats(t, "restart", wantHist[i], gotHist[i])
	}
}

// TestSnapshotRestoreSurgeRegime: a surge-kind runtime snapshots its trace
// options whole, a restore replays the same regime schedule (and the same
// correlated rack bursts) bit-exactly, and a restore that asks for a
// different family is refused.
func TestSnapshotRestoreSurgeRegime(t *testing.T) {
	const seed, before, after = 21, 5, 5
	trOpts := traces.Options{Kind: traces.Surge,
		Surge: traces.SurgeParams{MeanDwell: 4, BurstWeight: 1, RackFraction: 0.5, Intensity: 1.5}}

	straight := buildEquivRuntime(t, seed, Options{Traces: trOpts})
	wantHist := driveEquiv(t, straight, equivScenario{name: "straight", steps: before + after})

	part := buildEquivRuntime(t, seed, Options{Traces: trOpts})
	gotHist := append([]StepStats(nil), driveEquiv(t, part, equivScenario{name: "part1", steps: before})...)

	snap, err := part.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var loaded Snapshot
	if err := json.Unmarshal(blob, &loaded); err != nil {
		t.Fatal(err)
	}
	freshCluster, freshModel := buildParts(t, 4)
	if err := freshCluster.Restore(loaded.Cluster); err != nil {
		t.Fatal(err)
	}
	// The restore does not need the surge params re-specified: they ride
	// in the snapshot.
	restored, err := Restore(freshCluster, freshModel, Options{Seed: seed}, &loaded)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	for i := 0; i < after; i++ {
		s, err := restored.Step()
		if err != nil {
			t.Fatal(err)
		}
		gotHist = append(gotHist, *s)
	}
	for i := range wantHist {
		sameStats(t, "surge-restart", wantHist[i], gotHist[i])
	}

	// Conflicting regime requests must be refused, not silently adopted.
	otherCluster, otherModel := buildParts(t, 4)
	if err := otherCluster.Restore(loaded.Cluster); err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(otherCluster, otherModel,
		Options{Traces: traces.Options{Kind: traces.Lite}}, &loaded); err == nil {
		t.Fatal("restore accepted a conflicting trace kind")
	}
}
