package runtime

import (
	"testing"

	"sheriff/internal/alert"
	"sheriff/internal/dcn"
)

// TestStepSteadyStateAllocs gates the sharded predict phase at zero heap
// allocations per step once warm: the per-rack alert buckets, the shard
// round-trip, and the Holt folds all reuse state. Thresholds are set so
// low that every VM alerts every step, keeping the bucket high-water
// marks constant across runs.
func TestStepSteadyStateAllocs(t *testing.T) {
	cluster, model := buildParts(t, 4)
	cluster.Populate(dcn.PopulateOptions{VMsPerHost: 3, MinCapacity: 5, MaxCapacity: 20, DependencyProb: 0.5, CrossRackDependencyProb: 0.4, Seed: 9})
	tiny := alert.Thresholds{CPU: 1e-12, Mem: 1e-12, IO: 1e-12, TRF: 1e-12}
	r, err := New(cluster, model, Options{Seed: 9, Shards: 4, Thresholds: tiny})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// Warm until every append capacity has reached its steady state.
	for i := 0; i < 10; i++ {
		if _, err := r.Step(); err != nil {
			t.Fatal(err)
		}
	}

	var stats StepStats
	allocs := testing.AllocsPerRun(50, func() {
		stats = StepStats{}
		r.shardedPredictPhase(&stats, r.opts.Recorder, false)
	})
	if allocs != 0 {
		t.Fatalf("sharded predict phase allocates %.1f objects/step in steady state, want 0", allocs)
	}
	if stats.ServerAlerts == 0 {
		t.Fatal("gate ran without raising any alerts — thresholds did not bite")
	}
}
