package runtime

import (
	"math"
	"testing"

	"sheriff/internal/cost"
	"sheriff/internal/dcn"
	"sheriff/internal/timeseries"
	"sheriff/internal/topology"
)

func buildRuntime(t *testing.T, pods int, seed int64) *Runtime {
	t.Helper()
	ft, err := topology.NewFatTree(topology.FatTreeConfig{Pods: pods})
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := dcn.NewCluster(ft.Graph, dcn.Config{HostsPerRack: 2, HostCapacity: 100, ToRCapacity: 200})
	if err != nil {
		t.Fatal(err)
	}
	cluster.Populate(dcn.PopulateOptions{VMsPerHost: 3, MinCapacity: 5, MaxCapacity: 20, DependencyProb: 0.5, CrossRackDependencyProb: 0.4, Seed: seed})
	model, err := cost.New(cluster, cost.PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(cluster, model, Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestEwmaTrendForecast(t *testing.T) {
	f := ewmaTrend{alpha: 0.5, beta: 0.3}
	// A perfect linear ramp should be extrapolated upward.
	h := timeseries.FromFunc(20, func(t int) float64 { return float64(t) })
	out, err := f.ForecastFrom(h, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] <= h.Last() {
		t.Fatalf("trend forecast %v should exceed last value %v", out[0], h.Last())
	}
	if out[1] <= out[0] {
		t.Fatal("multi-step trend should keep rising")
	}
	if _, err := f.ForecastFrom(timeseries.New(nil), 1); err == nil {
		t.Fatal("empty history accepted")
	}
}

func TestRuntimeStepProducesStats(t *testing.T) {
	r := buildRuntime(t, 4, 1)
	stats, err := r.Step()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Step != 0 {
		t.Fatalf("first step index = %d", stats.Step)
	}
	if stats.WorkloadStdDev < 0 {
		t.Fatal("negative stddev")
	}
	if len(r.History()) != 1 {
		t.Fatalf("history length = %d", len(r.History()))
	}
}

func TestRuntimeRunMultipleSteps(t *testing.T) {
	r := buildRuntime(t, 4, 2)
	hist, err := r.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 10 {
		t.Fatalf("history = %d steps", len(hist))
	}
	for i, s := range hist {
		if s.Step != i {
			t.Fatalf("step %d has index %d", i, s.Step)
		}
	}
}

func TestRuntimeEventuallyAlertsAndMigrates(t *testing.T) {
	r := buildRuntime(t, 4, 3)
	hist, err := r.Run(60)
	if err != nil {
		t.Fatal(err)
	}
	totalAlerts, totalMigrations := 0, 0
	for _, s := range hist {
		totalAlerts += s.ServerAlerts + s.ToRAlerts + s.SwitchAlerts
		totalMigrations += s.Migrations
	}
	if totalAlerts == 0 {
		t.Fatal("60 steps produced no alerts at all")
	}
	if totalMigrations == 0 {
		t.Fatal("alerts never led to a migration")
	}
}

func TestRuntimeFlowsFollowDependencies(t *testing.T) {
	r := buildRuntime(t, 4, 4)
	if _, err := r.Step(); err != nil {
		t.Fatal(err)
	}
	// Every flow must connect racks that actually host a dependent pair.
	for _, f := range r.Flows.Flows() {
		if f.Src == f.Dst {
			t.Fatal("intra-rack flow created")
		}
		if f.Rate <= 0 {
			t.Fatal("non-positive flow rate")
		}
	}
	// Cross-rack dependencies exist in this populated cluster, so some
	// flows must exist.
	crossRack := 0
	for _, vm := range r.Cluster.VMs() {
		for _, p := range r.Cluster.Deps.Peers(vm.ID) {
			peer := r.Cluster.VM(p)
			if peer != nil && peer.Host().Rack() != vm.Host().Rack() {
				crossRack++
			}
		}
	}
	if crossRack > 0 && len(r.Flows.Flows()) == 0 {
		t.Fatal("cross-rack dependencies produced no flows")
	}
}

func TestRuntimeDeterministicWithSeed(t *testing.T) {
	a := buildRuntime(t, 4, 5)
	b := buildRuntime(t, 4, 5)
	ha, err := a.Run(15)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := b.Run(15)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ha {
		// Wall-clock phase timings are not deterministic; everything else
		// must match bit-for-bit.
		ha[i].Timings, hb[i].Timings = PhaseTimings{}, PhaseTimings{}
		if ha[i] != hb[i] {
			t.Fatalf("step %d diverged: %+v vs %+v", i, ha[i], hb[i])
		}
	}
}

func TestRuntimeConservesVMs(t *testing.T) {
	r := buildRuntime(t, 4, 6)
	before := len(r.Cluster.VMs())
	total := 0.0
	for _, vm := range r.Cluster.VMs() {
		total += vm.Capacity
	}
	if _, err := r.Run(30); err != nil {
		t.Fatal(err)
	}
	if len(r.Cluster.VMs()) != before {
		t.Fatal("VMs appeared or vanished")
	}
	after := 0.0
	for _, h := range r.Cluster.Hosts() {
		after += h.Used()
	}
	if math.Abs(after-total) > 1e-6 {
		t.Fatalf("capacity not conserved: %v -> %v", total, after)
	}
}

func TestRuntimeHostsNeverOversubscribed(t *testing.T) {
	r := buildRuntime(t, 4, 7)
	if _, err := r.Run(30); err != nil {
		t.Fatal(err)
	}
	for _, h := range r.Cluster.Hosts() {
		if h.Used() > h.Capacity+1e-9 {
			t.Fatalf("host %d oversubscribed: %v/%v", h.ID, h.Used(), h.Capacity)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.WithDefaults()
	if o.Thresholds.CPU != 0.9 || o.HotThreshold != 0.9 || o.QueueLimit != 1.0 {
		t.Fatalf("defaults wrong: %+v", o)
	}
	if o.FlowRate(0.5) <= 0 {
		t.Fatal("default flow rate non-positive")
	}
}

// TestRuntimeStepConcurrencyManyRacks drives the parallel phase-1 fan-out
// across a fabric with many racks for enough steps to cross the alert
// thresholds, so `go test -race` exercises the worker-pool distribution,
// the shared Dijkstra sweeps, and the coordinator fan-outs together.
func TestRuntimeStepConcurrencyManyRacks(t *testing.T) {
	r := buildRuntime(t, 4, 9) // 4-pod Fat-Tree: 8 racks
	if len(r.Cluster.Racks) < 3 {
		t.Fatalf("topology has %d racks, want >= 3", len(r.Cluster.Racks))
	}
	if _, err := r.Run(25); err != nil {
		t.Fatal(err)
	}
	sums := r.PhaseSummaries()
	for _, phase := range []string{"predict", "flows", "congestion", "manage"} {
		s, ok := sums[phase]
		if !ok || s.Count() != 25 {
			t.Fatalf("phase %q timing summary missing or incomplete: %+v", phase, sums)
		}
	}
}

// TestTrendStateMatchesEwmaTrend pins the incremental per-component
// forecaster to the cold ewmaTrend recursion: continuing from cached
// (level, trend) over an appended suffix must be bit-exact with a full
// recompute at every step.
func TestTrendStateMatchesEwmaTrend(t *testing.T) {
	cold := ewmaTrend{alpha: 0.5, beta: 0.3}
	warm := &trendState{ewmaTrend: cold}
	h := timeseries.New([]float64{3})
	for step := 0; step < 50; step++ {
		w, err := warm.ForecastFrom(h, 2)
		if err != nil {
			t.Fatal(err)
		}
		c, err := cold.ForecastFrom(h, 2)
		if err != nil {
			t.Fatal(err)
		}
		if w[0] != c[0] || w[1] != c[1] {
			t.Fatalf("step %d: warm %v != cold %v", step, w, c)
		}
		h.Append(3 + 0.5*float64(step) + math.Sin(float64(step)))
	}
	// A rewritten history (different last value at the cached position)
	// must reset the cache rather than continue from stale state.
	h2 := timeseries.New([]float64{100, 90, 80})
	w, err := warm.ForecastFrom(h2, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cold.ForecastFrom(h2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w[0] != c[0] {
		t.Fatalf("after history swap: warm %v != cold %v", w[0], c[0])
	}
}
