package runtime

import (
	"encoding/json"
	"fmt"
	"sort"

	"sheriff/internal/cost"
	"sheriff/internal/dcn"
	"sheriff/internal/flow"
	"sheriff/internal/predictor"
	"sheriff/internal/traces"
)

// SnapshotVersion is the current snapshot format version. Restore rejects
// other versions rather than guessing at field semantics.
//
// Version 2 replaced the per-VM component histories of version 1 with the
// Holt (level, trend) states that fully determine the forecast
// continuation: a million-VM snapshot carries 8 floats per VM instead of
// 4 unbounded series. Queue monitors are carried the same way. Because
// the state is global (not per shard), the shard count is free to change
// between save and restore.
const SnapshotVersion = 2

// VMSnap is one VM's forecasting state: the generator replay position,
// the last observed profile, the observation count, and the per-component
// Holt (level, trend) pairs in profile order (CPU, Mem, IO, TRF).
type VMSnap struct {
	ID      int            `json:"id"`
	GenPos  int            `json:"gen_pos"`
	Current traces.Profile `json:"current"`
	Hist    int            `json:"hist"`
	Trend   [4][2]float64  `json:"trend"`
}

// Snapshot is the serializable state of a Runtime: everything needed so
// that a restored runtime's subsequent StepStats are bit-identical
// (timings aside) to the original continuing. Step history is reporting
// state, not simulation state, and is not carried. Both engines emit the
// same snapshot for the same trajectory (VMs in ascending ID order).
type Snapshot struct {
	Version    int               `json:"version"`
	Step       int               `json:"step"`
	Seed       int64             `json:"seed"`
	Lite       bool              `json:"lite,omitempty"`   // legacy traces regime flag (Kind == Lite)
	Traces     *traces.Options   `json:"traces,omitempty"` // resolved trace options; replay requires them verbatim
	CostParams cost.Params       `json:"cost_params"`
	Cluster    *dcn.Snapshot     `json:"cluster"`
	Flows      *flow.Snapshot    `json:"flows"`
	FlowPairs  [][3]int          `json:"flow_pairs,omitempty"` // [vmA, vmB, flowID]
	VMs        []VMSnap          `json:"vms"`
	Queues     [][3]float64      `json:"queues"` // per-rack monitor (level, trend, count)
	ModelStale bool              `json:"model_stale"`
	Deep       []json.RawMessage `json:"deep,omitempty"`      // per-rack fitted selector (null = unfit)
	DeepHist   [][]float64       `json:"deep_hist,omitempty"` // per-rack pre-fit history
}

// foldHolt cold-smooths a full history into its Holt state — how the
// reference engine (which keeps histories, not states) emits version-2
// snapshots. Bit-exact with the sharded engine's incremental fold.
func foldHolt(h []float64) [2]float64 {
	if len(h) == 0 {
		return [2]float64{}
	}
	level, trend := h[0], 0.0
	for t := 1; t < len(h); t++ {
		level, trend = holtCoeff.fold(level, trend, h[t])
	}
	return [2]float64{level, trend}
}

// Snapshot captures the runtime's full resumable state. It fails under
// UseQCN (congestion-point dynamics are not serialized) and when a fitted
// deep pool contains an unserializable candidate.
func (r *Runtime) Snapshot() (*Snapshot, error) {
	if r.opts.UseQCN {
		return nil, fmt.Errorf("runtime: snapshot under UseQCN is not supported (congestion-point state is not serialized)")
	}
	trOpts := r.opts.Traces
	snap := &Snapshot{
		Version:    SnapshotVersion,
		Step:       r.step,
		Seed:       r.opts.Seed,
		Lite:       trOpts.Kind == traces.Lite,
		Traces:     &trOpts,
		CostParams: r.Model.Params(),
		Cluster:    r.Cluster.Snapshot(),
		Flows:      r.Flows.Snapshot(),
		ModelStale: r.modelStale,
	}
	if r.ref != nil {
		for _, st := range r.ref.vms {
			h := st.pred.Histories()
			vs := VMSnap{ID: st.vm.ID, GenPos: st.gen.Pos(), Current: st.current, Hist: len(h[0])}
			for c := 0; c < 4; c++ {
				vs.Trend[c] = foldHolt(h[c])
			}
			snap.VMs = append(snap.VMs, vs)
		}
		for _, qm := range r.ref.queueMon {
			h := qm.History()
			lt := foldHolt(h)
			snap.Queues = append(snap.Queues, [3]float64{lt[0], lt[1], float64(len(h))})
		}
	} else {
		sh := r.sh
		order := make([]int, len(sh.vms))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return sh.vms[order[a]].ID < sh.vms[order[b]].ID })
		for _, i := range order {
			pos := 0
			if sh.lite != nil {
				pos = sh.lite[i].Pos()
			} else {
				pos = sh.srcs[i].Pos()
			}
			vs := VMSnap{ID: sh.vms[i].ID, GenPos: pos, Current: sh.cur[i], Hist: int(sh.nObs[i])}
			for c := 0; c < 4; c++ {
				vs.Trend[c] = [2]float64{sh.pred[i][c].level, sh.pred[i][c].trend}
			}
			snap.VMs = append(snap.VMs, vs)
		}
		for rk := range sh.qHolt {
			snap.Queues = append(snap.Queues, [3]float64{sh.qHolt[rk].level, sh.qHolt[rk].trend, float64(sh.qN[rk])})
		}
	}
	for pair, id := range r.flowByPair {
		snap.FlowPairs = append(snap.FlowPairs, [3]int{pair[0], pair[1], id})
	}
	sortPairs(snap.FlowPairs)
	if r.opts.DeepPredict {
		snap.Deep = make([]json.RawMessage, len(r.deep))
		snap.DeepHist = make([][]float64, len(r.deepHist))
		for i, sel := range r.deep {
			if sel == nil {
				snap.Deep[i] = json.RawMessage("null")
				continue
			}
			blob, err := json.Marshal(sel)
			if err != nil {
				return nil, fmt.Errorf("runtime: snapshot deep pool %d: %w", i, err)
			}
			snap.Deep[i] = blob
		}
		for i, h := range r.deepHist {
			snap.DeepHist[i] = h.Values()
		}
	}
	return snap, nil
}

func sortPairs(p [][3]int) {
	for i := 1; i < len(p); i++ {
		for j := i; j > 0 && less3(p[j], p[j-1]); j-- {
			p[j], p[j-1] = p[j-1], p[j]
		}
	}
}

func less3(a, b [3]int) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}

// Restore rebuilds a runtime from a snapshot over a cluster that has
// already been restored from snap.Cluster (same topology construction,
// then dcn.Cluster.Restore) and a cost model built over that cluster.
// opts must describe the same regime as the original run — in particular
// Seed is taken from the snapshot (the generators replay from it),
// Traces must match the snapshot's regime, and UseQCN must be off.
// The restored runtime always uses the sharded engine; the shard count
// may differ from the run that produced the snapshot (the state is
// global, so the partition is free to change). A restored runtime
// resumes forecasting incrementally: per-VM Holt states, queue monitors,
// flow routes, and any fitted deep pools continue bit-exactly without
// cold-fitting.
func Restore(cluster *dcn.Cluster, model *cost.Model, opts Options, snap *Snapshot) (*Runtime, error) {
	if snap == nil {
		return nil, fmt.Errorf("runtime: restore from nil snapshot")
	}
	if snap.Version != SnapshotVersion {
		return nil, fmt.Errorf("runtime: snapshot version %d not supported (want %d)", snap.Version, SnapshotVersion)
	}
	if opts.UseQCN {
		return nil, fmt.Errorf("runtime: restore under UseQCN is not supported")
	}
	if opts.Reference {
		return nil, fmt.Errorf("runtime: restore into the reference engine is not supported")
	}
	if snap.Traces != nil {
		// Modern snapshot: the resolved trace options travel whole — adopt
		// them verbatim (the generators must replay the exact streams), but
		// refuse a caller who explicitly asked for a different family.
		if opts.Traces.Kind != traces.Diurnal && opts.Traces.Kind != snap.Traces.Kind {
			return nil, fmt.Errorf("runtime: snapshot traces kind %v does not match options kind %v",
				snap.Traces.Kind, opts.Traces.Kind)
		}
		opts.Traces = *snap.Traces
	} else {
		// Legacy snapshot: only the lite flag survives.
		wantLite := opts.Traces.Kind == traces.Lite
		if snap.Lite != wantLite {
			return nil, fmt.Errorf("runtime: snapshot traces regime (lite=%v) does not match options (lite=%v)", snap.Lite, wantLite)
		}
	}
	opts.Seed = snap.Seed
	r, err := New(cluster, model, opts)
	if err != nil {
		return nil, err
	}
	r.step = snap.Step
	r.modelStale = snap.ModelStale

	sh := r.sh
	if len(snap.VMs) != len(sh.vms) {
		return nil, fmt.Errorf("runtime: snapshot has %d VMs, cluster has %d", len(snap.VMs), len(sh.vms))
	}
	for _, vs := range snap.VMs {
		i, ok := sh.vmIndex[vs.ID]
		if !ok {
			return nil, fmt.Errorf("runtime: snapshot VM %d not present in cluster", vs.ID)
		}
		if vs.GenPos < 0 {
			return nil, fmt.Errorf("runtime: snapshot VM %d has negative generator position", vs.ID)
		}
		if vs.Hist < 0 {
			return nil, fmt.Errorf("runtime: snapshot VM %d has negative history length", vs.ID)
		}
		if sh.lite != nil {
			sh.lite[i].Skip(vs.GenPos)
		} else {
			sh.srcs[i].Skip(vs.GenPos)
		}
		sh.cur[i] = vs.Current
		sh.nObs[i] = int32(vs.Hist)
		for c := 0; c < 4; c++ {
			sh.pred[i][c] = holtState{level: vs.Trend[c][0], trend: vs.Trend[c][1]}
		}
	}

	if len(snap.Queues) != len(sh.qHolt) {
		return nil, fmt.Errorf("runtime: snapshot has %d queue monitors, cluster has %d racks", len(snap.Queues), len(sh.qHolt))
	}
	for rk, q := range snap.Queues {
		sh.qHolt[rk] = holtState{level: q[0], trend: q[1]}
		sh.qN[rk] = int32(q[2])
	}

	if err := r.Flows.Restore(snap.Flows); err != nil {
		return nil, fmt.Errorf("runtime: %w", err)
	}
	for _, p := range snap.FlowPairs {
		if r.Flows.Flow(p[2]) == nil {
			return nil, fmt.Errorf("runtime: snapshot pair (%d,%d) references missing flow %d", p[0], p[1], p[2])
		}
		r.flowByPair[[2]int{p[0], p[1]}] = p[2]
	}

	if opts.DeepPredict && snap.Deep != nil {
		if len(snap.Deep) != len(r.deep) || len(snap.DeepHist) != len(r.deepHist) {
			return nil, fmt.Errorf("runtime: snapshot deep state covers %d racks, cluster has %d", len(snap.Deep), len(r.deep))
		}
		for i, blob := range snap.Deep {
			if string(blob) == "null" {
				continue
			}
			sel := new(predictor.Selector)
			if err := json.Unmarshal(blob, sel); err != nil {
				return nil, fmt.Errorf("runtime: restore deep pool %d: %w", i, err)
			}
			r.deep[i] = sel
		}
		for i, h := range snap.DeepHist {
			r.deepHist[i].Append(h...)
		}
	}
	return r, nil
}
