package runtime

import (
	"encoding/json"
	"fmt"

	"sheriff/internal/cost"
	"sheriff/internal/dcn"
	"sheriff/internal/flow"
	"sheriff/internal/predictor"
	"sheriff/internal/traces"
)

// SnapshotVersion is the current snapshot format version. Restore rejects
// other versions rather than guessing at field semantics.
const SnapshotVersion = 1

// VMSnap is one VM's forecasting state: the generator replay position,
// the last observed profile, and the four component histories. The cheap
// Holt trend states are NOT serialized — their continuation is bit-exact
// with a cold re-smoothing of the restored history, so restore recomputes
// them on first forecast instead of carrying redundant state.
type VMSnap struct {
	ID        int            `json:"id"`
	GenPos    int            `json:"gen_pos"`
	Current   traces.Profile `json:"current"`
	Histories [4][]float64   `json:"histories"`
}

// Snapshot is the serializable state of a Runtime: everything needed so
// that a restored runtime's subsequent StepStats are bit-identical
// (timings aside) to the original continuing. Step history is reporting
// state, not simulation state, and is not carried.
type Snapshot struct {
	Version    int               `json:"version"`
	Step       int               `json:"step"`
	Seed       int64             `json:"seed"`
	CostParams cost.Params       `json:"cost_params"`
	Cluster    *dcn.Snapshot     `json:"cluster"`
	Flows      *flow.Snapshot    `json:"flows"`
	FlowPairs  [][3]int          `json:"flow_pairs,omitempty"` // [vmA, vmB, flowID]
	VMs        []VMSnap          `json:"vms"`
	Queues     [][]float64       `json:"queues"`
	ModelStale bool              `json:"model_stale"`
	Deep       []json.RawMessage `json:"deep,omitempty"`      // per-rack fitted selector (null = unfit)
	DeepHist   [][]float64       `json:"deep_hist,omitempty"` // per-rack pre-fit history
}

// Snapshot captures the runtime's full resumable state. It fails under
// UseQCN (congestion-point dynamics are not serialized in version 1) and
// when a fitted deep pool contains an unserializable candidate.
func (r *Runtime) Snapshot() (*Snapshot, error) {
	if r.opts.UseQCN {
		return nil, fmt.Errorf("runtime: snapshot under UseQCN is not supported (congestion-point state is not serialized)")
	}
	snap := &Snapshot{
		Version:    SnapshotVersion,
		Step:       r.step,
		Seed:       r.opts.Seed,
		CostParams: r.Model.Params(),
		Cluster:    r.Cluster.Snapshot(),
		Flows:      r.Flows.Snapshot(),
		ModelStale: r.modelStale,
	}
	for _, st := range r.vms {
		snap.VMs = append(snap.VMs, VMSnap{
			ID:        st.vm.ID,
			GenPos:    st.gen.Pos(),
			Current:   st.current,
			Histories: st.pred.Histories(),
		})
	}
	for _, qm := range r.queueMon {
		snap.Queues = append(snap.Queues, qm.History())
	}
	for pair, id := range r.flowByPair {
		snap.FlowPairs = append(snap.FlowPairs, [3]int{pair[0], pair[1], id})
	}
	sortPairs(snap.FlowPairs)
	if r.opts.DeepPredict {
		snap.Deep = make([]json.RawMessage, len(r.deep))
		snap.DeepHist = make([][]float64, len(r.deepHist))
		for i, sel := range r.deep {
			if sel == nil {
				snap.Deep[i] = json.RawMessage("null")
				continue
			}
			blob, err := json.Marshal(sel)
			if err != nil {
				return nil, fmt.Errorf("runtime: snapshot deep pool %d: %w", i, err)
			}
			snap.Deep[i] = blob
		}
		for i, h := range r.deepHist {
			snap.DeepHist[i] = h.Values()
		}
	}
	return snap, nil
}

func sortPairs(p [][3]int) {
	for i := 1; i < len(p); i++ {
		for j := i; j > 0 && less3(p[j], p[j-1]); j-- {
			p[j], p[j-1] = p[j-1], p[j]
		}
	}
}

func less3(a, b [3]int) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}

// Restore rebuilds a runtime from a snapshot over a cluster that has
// already been restored from snap.Cluster (same topology construction,
// then dcn.Cluster.Restore) and a cost model built over that cluster.
// opts must describe the same regime as the original run — in particular
// Seed is taken from the snapshot (the generators replay from it) and
// UseQCN must be off. A restored runtime resumes forecasting
// incrementally: per-VM histories, queue monitors, flow routes, and any
// fitted deep pools continue bit-exactly without cold-fitting.
func Restore(cluster *dcn.Cluster, model *cost.Model, opts Options, snap *Snapshot) (*Runtime, error) {
	if snap == nil {
		return nil, fmt.Errorf("runtime: restore from nil snapshot")
	}
	if snap.Version != SnapshotVersion {
		return nil, fmt.Errorf("runtime: snapshot version %d not supported (want %d)", snap.Version, SnapshotVersion)
	}
	if opts.UseQCN {
		return nil, fmt.Errorf("runtime: restore under UseQCN is not supported")
	}
	opts.Seed = snap.Seed
	r, err := New(cluster, model, opts)
	if err != nil {
		return nil, err
	}
	r.step = snap.Step
	r.modelStale = snap.ModelStale

	byID := make(map[int]*vmState, len(r.vms))
	for _, st := range r.vms {
		byID[st.vm.ID] = st
	}
	if len(snap.VMs) != len(r.vms) {
		return nil, fmt.Errorf("runtime: snapshot has %d VMs, cluster has %d", len(snap.VMs), len(r.vms))
	}
	for _, vs := range snap.VMs {
		st := byID[vs.ID]
		if st == nil {
			return nil, fmt.Errorf("runtime: snapshot VM %d not present in cluster", vs.ID)
		}
		if vs.GenPos < 0 {
			return nil, fmt.Errorf("runtime: snapshot VM %d has negative generator position", vs.ID)
		}
		st.gen.Skip(vs.GenPos)
		st.current = vs.Current
		if err := st.pred.RestoreHistories(vs.Histories); err != nil {
			return nil, fmt.Errorf("runtime: snapshot VM %d: %w", vs.ID, err)
		}
	}

	if len(snap.Queues) != len(r.queueMon) {
		return nil, fmt.Errorf("runtime: snapshot has %d queue monitors, cluster has %d racks", len(snap.Queues), len(r.queueMon))
	}
	for i, h := range snap.Queues {
		r.queueMon[i].RestoreHistory(h)
	}

	if err := r.Flows.Restore(snap.Flows); err != nil {
		return nil, fmt.Errorf("runtime: %w", err)
	}
	for _, p := range snap.FlowPairs {
		if r.Flows.Flow(p[2]) == nil {
			return nil, fmt.Errorf("runtime: snapshot pair (%d,%d) references missing flow %d", p[0], p[1], p[2])
		}
		r.flowByPair[[2]int{p[0], p[1]}] = p[2]
	}

	if opts.DeepPredict && snap.Deep != nil {
		if len(snap.Deep) != len(r.deep) || len(snap.DeepHist) != len(r.deepHist) {
			return nil, fmt.Errorf("runtime: snapshot deep state covers %d racks, cluster has %d", len(snap.Deep), len(r.deep))
		}
		for i, blob := range snap.Deep {
			if string(blob) == "null" {
				continue
			}
			sel := new(predictor.Selector)
			if err := json.Unmarshal(blob, sel); err != nil {
				return nil, fmt.Errorf("runtime: restore deep pool %d: %w", i, err)
			}
			r.deep[i] = sel
		}
		for i, h := range snap.DeepHist {
			r.deepHist[i].Append(h...)
		}
	}
	return r, nil
}
