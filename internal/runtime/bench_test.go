package runtime

import (
	"strconv"
	"testing"

	"sheriff/internal/cost"
	"sheriff/internal/dcn"
	"sheriff/internal/obs"
	"sheriff/internal/topology"
)

// buildBenchRuntime assembles the 48-pod Fat-Tree runtime used by
// BenchmarkRuntimeStep: 1152 racks, 2304 hosts, 6912 VMs. Thresholds are
// set above the normalized profile range so the benchmark isolates the
// per-step prediction hot path (phase 1 plus the per-rack queue monitors);
// management is exercised by the figure benches at the repo root.
func buildBenchRuntime(b *testing.B, pods int) *Runtime {
	return buildBenchRuntimeOpts(b, pods, Options{})
}

func buildBenchRuntimeOpts(b *testing.B, pods int, opts Options) *Runtime {
	b.Helper()
	ft, err := topology.NewFatTree(topology.FatTreeConfig{Pods: pods})
	if err != nil {
		b.Fatal(err)
	}
	cluster, err := dcn.NewCluster(ft.Graph, dcn.Config{HostsPerRack: 2, HostCapacity: 100, ToRCapacity: 200})
	if err != nil {
		b.Fatal(err)
	}
	cluster.Populate(dcn.PopulateOptions{VMsPerHost: 3, MinCapacity: 5, MaxCapacity: 20, DependencyProb: 0.5, CrossRackDependencyProb: 0.4, Seed: 42})
	model, err := cost.New(cluster, cost.PaperParams())
	if err != nil {
		b.Fatal(err)
	}
	opts.Seed = 42
	opts.Thresholds.CPU, opts.Thresholds.Mem, opts.Thresholds.IO, opts.Thresholds.TRF = 2, 2, 2, 2
	r, err := New(cluster, model, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(r.Close)
	return r
}

// BenchmarkRuntimeStep measures one collection period T on a 48-pod
// Fat-Tree. Run with a fixed iteration count for before/after comparisons
// (history length affects per-step cost):
//
//	go test -run - -bench BenchmarkRuntimeStep -benchtime 10x ./internal/runtime/
func BenchmarkRuntimeStep(b *testing.B) {
	r := buildBenchRuntime(b, 48)
	// Prime past the cold-start window: flow routes are established and
	// every VM has enough history to extrapolate.
	for i := 0; i < 15; i++ {
		if _, err := r.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRuntimeStepReference is BenchmarkRuntimeStep on the seed
// reference engine — the "before" side of the sharded-engine speedup and
// allocation comparison (BENCH_scale.json).
func BenchmarkRuntimeStepReference(b *testing.B) {
	r := buildBenchRuntimeOpts(b, 48, Options{Reference: true})
	for i := 0; i < 15; i++ {
		if _, err := r.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRuntimeStepShards pins the shard-count scaling of the default
// engine on the same 48-pod fabric.
func BenchmarkRuntimeStepShards(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run("shards-"+strconv.Itoa(shards), func(b *testing.B) {
			r := buildBenchRuntimeOpts(b, 48, Options{Shards: shards})
			for i := 0; i < 15; i++ {
				if _, err := r.Step(); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.Step(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRuntimeStepRecorded is BenchmarkRuntimeStep with an active
// event recorder (in-memory ring, no sinks) — the enabled-path cost, to
// compare against the nil-recorder fast path above.
func BenchmarkRuntimeStepRecorded(b *testing.B) {
	r := buildBenchRuntime(b, 48)
	rec, err := obs.New(obs.Options{})
	if err != nil {
		b.Fatal(err)
	}
	r.opts.Recorder = rec
	for i := 0; i < 15; i++ {
		if _, err := r.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Step(); err != nil {
			b.Fatal(err)
		}
	}
}
