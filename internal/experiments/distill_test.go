package experiments

import (
	"encoding/json"
	"testing"

	"sheriff/internal/quant"
)

func TestDistillQuantFitsPool(t *testing.T) {
	cfg := DistillConfig{Seed: 3, Hours: 4, VMs: 2}
	res, err := DistillQuant(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regimes) != 4 {
		t.Fatalf("regimes: %d, want 4 (diurnal + 3 surge families)", len(res.Regimes))
	}
	if err := res.Coeffs.Validate(); err != nil {
		t.Fatalf("distilled coefficients invalid: %v", err)
	}
	if res.Coeffs.Lead < 1 || int(res.Coeffs.Lead) > res.Config.MaxLead {
		t.Fatalf("distilled lead %d outside [1, %d]", res.Coeffs.Lead, res.Config.MaxLead)
	}
	for _, reg := range res.Regimes {
		if reg.Precision < 0 || reg.Precision > 1 || reg.Recall < 0 || reg.Recall > 1 {
			t.Fatalf("regime %s: precision/recall out of range: %+v", reg.Regime, reg)
		}
		off, ok := res.Offsets[reg.Regime]
		if !ok {
			t.Fatalf("regime %s missing fitted offset", reg.Regime)
		}
		if got := reg.Threshold + off; got != reg.AlertAt {
			t.Fatalf("regime %s: AlertAt %v != Threshold %v + offset %v", reg.Regime, reg.AlertAt, reg.Threshold, off)
		}
	}
	// The fit is a pure function of its config.
	again, err := DistillQuant(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(res)
	b, _ := json.Marshal(again)
	if string(a) != string(b) {
		t.Fatal("distillation is not deterministic")
	}
}

func TestDistillQuantValidation(t *testing.T) {
	if _, err := DistillQuant(DistillConfig{Hours: 1}); err == nil {
		t.Error("Hours=1 accepted")
	}
	if _, err := DistillQuant(DistillConfig{Tolerance: -1}); err == nil {
		t.Error("negative tolerance accepted")
	}
}

func TestMatchAlerts(t *testing.T) {
	pool := []bool{false, true, false, false, false, false, false, true, false, false}
	student := []bool{false, false, true, false, false, false, false, false, false, true}
	prec, rec, matched := matchAlerts(pool, student, 1)
	// Student alert at 2 matches pool at 1; student at 9 misses pool at 7.
	if matched != 1 || prec != 0.5 || rec != 0.5 {
		t.Fatalf("prec %v rec %v matched %d, want 0.5/0.5/1", prec, rec, matched)
	}
	prec, rec, _ = matchAlerts(pool, student, 2)
	if prec != 1 || rec != 1 {
		t.Fatalf("tol=2: prec %v rec %v, want 1/1", prec, rec)
	}
	// No alerts on either side: silence is perfect agreement.
	prec, rec, _ = matchAlerts(make([]bool, 5), make([]bool, 5), 1)
	if prec != 1 || rec != 1 {
		t.Fatalf("empty masks: prec %v rec %v, want 1/1", prec, rec)
	}
}

func TestRunIngestGrades(t *testing.T) {
	if testing.Short() {
		t.Skip("ingest grading benchmark in -short mode")
	}
	cfg := IngestConfig{
		DistillConfig: DistillConfig{Seed: 3, Hours: 4, VMs: 2},
		BenchRacks:    4, BenchVMs: 8, BenchRounds: 50,
	}
	res, err := RunIngest(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Float.UpdatesPerSec <= 0 || res.Quant.UpdatesPerSec <= 0 {
		t.Fatalf("non-positive throughput: %+v %+v", res.Float, res.Quant)
	}
	if res.Quant.Mode != "quantized" || res.Float.Mode != "float" {
		t.Fatalf("mode labels: %q %q", res.Float.Mode, res.Quant.Mode)
	}
	if res.Speedup <= 0 {
		t.Fatalf("speedup %v", res.Speedup)
	}
	if res.Distill == nil || res.Distill.Coeffs == (quant.Coeffs{}) {
		t.Fatal("missing distillation result")
	}
}
