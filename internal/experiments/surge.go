// The regime × predictor grid behind `sheriffsim -mode surge`: each surge
// regime (plus the diurnal control) generates a rack-level stress series,
// every candidate in the burst-extended pool forecasts it rolling, and
// each (regime, candidate) cell reports both the statistician's score
// (one-step MSE, sliding-window win share) and the operator's score
// (lead time, precision, recall at the overload threshold — see
// ScoreEarlyWarning). A final cluster pass drives correlated
// multi-rack bursts through the sharded step engine so the regional
// pre-alert plane is exercised end to end, not just per-series.
package experiments

import (
	"fmt"
	"math"
	"sort"

	"sheriff/internal/alert"
	"sheriff/internal/predictor"
	"sheriff/internal/runtime"
	"sheriff/internal/sim"
	"sheriff/internal/timeseries"
	"sheriff/internal/traces"
)

// SurgeConfig sizes one surge-evaluation run. Zero fields take defaults.
type SurgeConfig struct {
	Seed int64 `json:"seed"`
	// Hours is the generated trace length per regime (default 12; the
	// first half trains the pool, the second half is scored rolling).
	Hours int `json:"hours"`
	// VMs is how many VM streams are averaged into the rack-level stress
	// series (default 8).
	VMs int `json:"vms"`
	// Window is the selector's sliding MSE window T_p (default 20).
	Window int `json:"window"`
	// MaxLead is the operator's alert horizon in steps: alerts count only
	// within MaxLead steps of an overload onset (default 10). It is also
	// the forecast path length used to raise alerts.
	MaxLead int `json:"max_lead"`
	// Threshold is the overload level; 0 picks the 95th percentile of
	// each regime's training half, so every regime has a meaningful line
	// to cross.
	Threshold float64 `json:"threshold"`
	// Intensity scales the surge amplitudes (default 1.5).
	Intensity float64 `json:"intensity"`
	// ClusterRacks / ClusterSteps size the sharded-engine pass driving
	// correlated rack bursts through the full pre-alert plane
	// (defaults 8 racks, 120 steps). SkipCluster omits the pass.
	ClusterRacks int  `json:"cluster_racks"`
	ClusterSteps int  `json:"cluster_steps"`
	SkipCluster  bool `json:"skip_cluster,omitempty"`
}

func (c SurgeConfig) withDefaults() SurgeConfig {
	if c.Hours == 0 {
		c.Hours = 12
	}
	if c.VMs == 0 {
		c.VMs = 8
	}
	if c.MaxLead == 0 {
		c.MaxLead = 10
	}
	if c.Intensity == 0 {
		c.Intensity = 1.5
	}
	if c.ClusterRacks == 0 {
		c.ClusterRacks = 8
	}
	if c.ClusterSteps == 0 {
		c.ClusterSteps = 120
	}
	return c
}

// SurgeCell is one (regime, candidate) grid cell.
type SurgeCell struct {
	Regime    string  `json:"regime"`
	Candidate string  `json:"candidate"`
	MSE       float64 `json:"mse"`
	WinShare  float64 `json:"win_share"`
	Winner    bool    `json:"winner"` // won the sliding-window-MSE selection
	Threshold float64 `json:"threshold"`
	LeadTime  float64 `json:"lead_time"` // mean steps of warning, detected episodes
	EarlyWarnScore
}

// SurgeClusterStats summarizes the sharded-engine pass under correlated
// rack bursts.
type SurgeClusterStats struct {
	Racks        int     `json:"racks"`
	VMs          int     `json:"vms"`
	Steps        int     `json:"steps"`
	SurgeSteps   int     `json:"surge_steps"` // steps inside a surge regime
	ServerAlerts int     `json:"server_alerts"`
	ToRAlerts    int     `json:"tor_alerts"`
	Migrations   int     `json:"migrations"`
	SurgeAlerts  int     `json:"surge_alerts"` // server alerts raised during surge windows
	Alignment    float64 `json:"alignment"`    // surge_alerts / server_alerts
	SurgeShare   float64 `json:"surge_share"`  // surge_steps / steps
	AlertLift    float64 `json:"alert_lift"`   // alert rate in surge windows over calm windows
	CalmAlerts   int     `json:"calm_alerts"`  // = server_alerts - surge_alerts
}

// SurgeResult is the full grid plus the cluster pass.
type SurgeResult struct {
	Config  SurgeConfig        `json:"config"`
	Cells   []SurgeCell        `json:"cells"`
	Winners map[string]string  `json:"winners"` // regime -> winning candidate
	Cluster *SurgeClusterStats `json:"cluster,omitempty"`
}

// surgeRegimes is the grid's regime axis: the diurnal control plus one
// single-regime surge trace per surge family, in report order.
func surgeRegimes(intensity float64) []struct {
	name string
	opts func(seed int64, hours int) traces.Options
} {
	single := func(p traces.SurgeParams) func(int64, int) traces.Options {
		return func(seed int64, hours int) traces.Options {
			p := p
			p.Intensity = intensity
			return traces.Options{Kind: traces.Surge, Seed: seed, Hours: hours, Surge: p}
		}
	}
	return []struct {
		name string
		opts func(seed int64, hours int) traces.Options
	}{
		{"diurnal", func(seed int64, hours int) traces.Options {
			return traces.Options{Kind: traces.Diurnal, Seed: seed, Hours: hours}
		}},
		{"train-wave", single(traces.SurgeParams{TrainWeight: 1})},
		{"flash-crowd", single(traces.SurgeParams{FlashWeight: 1})},
		{"rack-burst", single(traces.SurgeParams{BurstWeight: 1})},
	}
}

// rackStress materializes the rack-level stress series: the mean peak
// utilization over the rack's VM streams, the quantity the deep pool and
// the regional pre-alert watch.
func rackStress(o traces.Options, vms, n int) (*timeseries.Series, error) {
	gen, err := traces.New(o)
	if err != nil {
		return nil, err
	}
	srcs := make([]traces.Source, vms)
	for i := range srcs {
		srcs[i] = gen.Source(i, 0)
	}
	return timeseries.FromFunc(n, func(int) float64 {
		sum := 0.0
		for _, s := range srcs {
			sum += s.Next().Max()
		}
		return sum / float64(vms)
	}), nil
}

// quantile returns the q-quantile of the series (nearest-rank).
func quantile(s *timeseries.Series, q float64) float64 {
	vals := s.Values()
	sort.Float64s(vals)
	i := int(q * float64(len(vals)-1))
	return vals[i]
}

// RunSurge evaluates the burst-extended predictor pool over the regime
// grid and, unless disabled, drives the sharded engine through a
// correlated rack-burst scenario.
func RunSurge(cfg SurgeConfig) (*SurgeResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Hours < 2 {
		return nil, fmt.Errorf("experiments: surge run needs Hours >= 2, got %d", cfg.Hours)
	}
	res := &SurgeResult{Config: cfg, Winners: make(map[string]string)}
	n := cfg.Hours * traces.SamplesPerHour

	for _, reg := range surgeRegimes(cfg.Intensity) {
		stress, err := rackStress(reg.opts(cfg.Seed, cfg.Hours), cfg.VMs, n)
		if err != nil {
			return nil, fmt.Errorf("experiments: surge regime %s: %w", reg.name, err)
		}
		train, test := stress.Split(0.5)
		threshold := cfg.Threshold
		if threshold == 0 {
			threshold = quantile(train, 0.95)
		}

		popts := predictor.Options{Burst: true, Seed: cfg.Seed + 1, Window: cfg.Window}
		cands, err := predictor.Pool(train, popts)
		if err != nil {
			return nil, fmt.Errorf("experiments: surge regime %s: %w", reg.name, err)
		}

		// Pass 1, candidate-major: each candidate forecasts the test half
		// rolling on its own append-only history (suffix-aware fast paths
		// stay warm). fc[0] scores the MSE; the max over the MaxLead-step
		// path raises the operator's pre-alert.
		actual := test.Values()
		pred1 := make([][]float64, len(cands))
		alertPath := make([][]float64, len(cands))
		for ci, c := range cands {
			pred1[ci] = make([]float64, test.Len())
			alertPath[ci] = make([]float64, test.Len())
			hist := train.Clone()
			for t := 0; t < test.Len(); t++ {
				fc, err := c.F.ForecastFrom(hist, cfg.MaxLead)
				if err != nil {
					// A candidate that cannot forecast predicts "no change".
					fc = []float64{hist.Last()}
				}
				pred1[ci][t] = fc[0]
				path := fc[0]
				for _, v := range fc {
					if v > path {
						path = v
					}
				}
				alertPath[ci][t] = path
				hist.Append(actual[t])
			}
		}

		// Pass 2: the dynamic selection itself — which candidate holds the
		// sliding-window-MSE crown, step by step.
		sel, err := predictor.NewSelector(train, predictor.Config{Window: cfg.Window}, cands...)
		if err != nil {
			return nil, fmt.Errorf("experiments: surge regime %s: %w", reg.name, err)
		}
		_, winShare, err := sel.Run(test)
		if err != nil {
			return nil, fmt.Errorf("experiments: surge regime %s: %w", reg.name, err)
		}
		winner, best := "", -1.0
		for name, share := range winShare {
			if share > best || (share == best && name < winner) {
				winner, best = name, share
			}
		}
		res.Winners[reg.name] = winner

		for ci, c := range cands {
			mse := 0.0
			for t, p := range pred1[ci] {
				d := p - actual[t]
				mse += d * d
			}
			mse /= float64(len(actual))
			score, err := ScoreEarlyWarning(actual, alertPath[ci], threshold, cfg.MaxLead)
			if err != nil {
				return nil, fmt.Errorf("experiments: surge regime %s: %w", reg.name, err)
			}
			res.Cells = append(res.Cells, SurgeCell{
				Regime:         reg.name,
				Candidate:      c.Name,
				MSE:            mse,
				WinShare:       winShare[c.Name],
				Winner:         c.Name == winner,
				Threshold:      threshold,
				LeadTime:       score.MeanLead,
				EarlyWarnScore: score,
			})
		}
	}

	if !cfg.SkipCluster {
		cl, err := runSurgeCluster(cfg)
		if err != nil {
			return nil, err
		}
		res.Cluster = cl
	}
	return res, nil
}

// runSurgeCluster drives correlated multi-rack bursts through the sharded
// step engine and measures how the pre-alert volume aligns with the surge
// windows — the regional property the per-series grid cannot see.
func runSurgeCluster(cfg SurgeConfig) (*SurgeClusterStats, error) {
	trOpts := traces.Options{
		Kind: traces.Surge,
		Seed: cfg.Seed,
		Surge: traces.SurgeParams{
			MeanDwell:    10,
			BurstWeight:  1,
			RackFraction: 0.5,
			Intensity:    cfg.Intensity,
		},
	}
	th := 0.85
	rt, err := sim.BuildRuntime(sim.RuntimeConfig{Kind: sim.LeafSpine, Size: cfg.ClusterRacks, Seed: cfg.Seed},
		runtime.Options{
			Traces:       trOpts,
			Thresholds:   alert.Thresholds{CPU: th, Mem: th, IO: th, TRF: th},
			HistoryLimit: 16,
		})
	if err != nil {
		return nil, fmt.Errorf("experiments: surge cluster: %w", err)
	}
	defer rt.Close()

	// Reconstruct the generator to read the shared regime schedule: the
	// runtime's streams come from identical options, so RegimeAt matches
	// step for step.
	gen, err := traces.New(trOpts)
	if err != nil {
		return nil, err
	}
	rep, _ := gen.(traces.RegimeReporter)

	st := &SurgeClusterStats{Racks: cfg.ClusterRacks, VMs: len(rt.Cluster.VMs()), Steps: cfg.ClusterSteps}
	for i := 0; i < cfg.ClusterSteps; i++ {
		stats, err := rt.Step()
		if err != nil {
			return nil, fmt.Errorf("experiments: surge cluster step %d: %w", i, err)
		}
		inSurge := rep != nil && rep.RegimeAt(i) != traces.RegimeCalm
		if inSurge {
			st.SurgeSteps++
			st.SurgeAlerts += stats.ServerAlerts
		}
		st.ServerAlerts += stats.ServerAlerts
		st.ToRAlerts += stats.ToRAlerts
		st.Migrations += stats.Migrations
	}
	st.CalmAlerts = st.ServerAlerts - st.SurgeAlerts
	if st.ServerAlerts > 0 {
		st.Alignment = float64(st.SurgeAlerts) / float64(st.ServerAlerts)
	}
	if st.Steps > 0 {
		st.SurgeShare = float64(st.SurgeSteps) / float64(st.Steps)
	}
	calmSteps := st.Steps - st.SurgeSteps
	if st.SurgeSteps > 0 && calmSteps > 0 && st.CalmAlerts > 0 {
		surgeRate := float64(st.SurgeAlerts) / float64(st.SurgeSteps)
		calmRate := float64(st.CalmAlerts) / float64(calmSteps)
		st.AlertLift = surgeRate / calmRate
	} else if st.SurgeAlerts > 0 {
		st.AlertLift = math.Inf(1)
	}
	return st, nil
}
