// Early-warning scoring: the operator's view of prediction quality.
// MSE says how close the forecast tracked the signal; an operator asks a
// different question — when stress actually crossed the line, how many
// steps of warning did the alert give, and how many alerts cried wolf?
// ScoreEarlyWarning answers with precision/recall-at-lead-time over
// overload episodes, and EarlyWarnCurve sweeps the alert threshold to
// trace the lead-time vs false-alarm trade-off.
package experiments

import (
	"fmt"
)

// EarlyWarnScore grades one predicted series against the truth.
type EarlyWarnScore struct {
	// Episodes is the number of overload episodes in the actual series:
	// maximal runs of consecutive steps with actual >= threshold.
	Episodes int `json:"episodes"`
	// Detected is how many episodes had at least one alert raised within
	// MaxLead steps before their onset.
	Detected int `json:"detected"`
	// Alerts is the number of pre-alerts raised: steps where the forecast
	// crossed the threshold while the actual value was still below it
	// (in-episode steps don't count — warning during the fire is not a
	// pre-alert).
	Alerts int `json:"alerts"`
	// TruePositives is how many of those alerts were followed by an
	// episode onset within MaxLead steps.
	TruePositives int `json:"true_positives"`
	// Precision = TruePositives/Alerts (1 when no alerts were raised —
	// silence tells no lies); Recall = Detected/Episodes (1 when the trace
	// had no episodes).
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	// MeanLead is the mean warning margin over detected episodes: steps
	// between the earliest in-window alert and the onset.
	MeanLead float64 `json:"mean_lead"`
}

// ScoreEarlyWarning grades predicted against actual, step-aligned:
// predicted[t] is the forecast for step t (made before actual[t] was
// observed). threshold defines overload; maxLead is the alert horizon an
// operator would act on — alerts earlier than maxLead steps before an
// onset count as false positives, not foresight.
func ScoreEarlyWarning(actual, predicted []float64, threshold float64, maxLead int) (EarlyWarnScore, error) {
	if len(actual) != len(predicted) {
		return EarlyWarnScore{}, fmt.Errorf("experiments: early-warning series lengths differ: %d vs %d", len(actual), len(predicted))
	}
	if maxLead < 1 {
		return EarlyWarnScore{}, fmt.Errorf("experiments: maxLead must be >= 1, got %d", maxLead)
	}
	n := len(actual)
	var sc EarlyWarnScore

	// Episode onsets: below-threshold step followed by at-or-above.
	onset := make([]bool, n)
	for t := 0; t < n; t++ {
		if actual[t] >= threshold && (t == 0 || actual[t-1] < threshold) {
			onset[t] = true
			sc.Episodes++
		}
	}
	// nextOnset[t] = index of the first onset at or after t (n = none).
	nextOnset := make([]int, n+1)
	nextOnset[n] = n
	for t := n - 1; t >= 0; t-- {
		if onset[t] {
			nextOnset[t] = t
		} else {
			nextOnset[t] = nextOnset[t+1]
		}
	}

	earliest := make(map[int]int) // onset step -> earliest alerting step
	for t := 0; t < n; t++ {
		if predicted[t] < threshold || actual[t] >= threshold {
			continue
		}
		sc.Alerts++
		if o := nextOnset[t]; o < n && o-t <= maxLead {
			sc.TruePositives++
			if e, ok := earliest[o]; !ok || t < e {
				earliest[o] = t
			}
		}
	}
	sc.Detected = len(earliest)
	leadSum := 0
	for o, t := range earliest {
		leadSum += o - t
	}
	sc.Precision = 1
	if sc.Alerts > 0 {
		sc.Precision = float64(sc.TruePositives) / float64(sc.Alerts)
	}
	sc.Recall = 1
	if sc.Episodes > 0 {
		sc.Recall = float64(sc.Detected) / float64(sc.Episodes)
	}
	if sc.Detected > 0 {
		sc.MeanLead = float64(leadSum) / float64(sc.Detected)
	}
	return sc, nil
}

// EarlyWarnPoint is one threshold's operating point on the lead-time vs
// false-alarm curve.
type EarlyWarnPoint struct {
	Threshold float64 `json:"threshold"`
	EarlyWarnScore
}

// EarlyWarnCurve scores the prediction at each alert threshold — the
// operator's ROC-style trade-off: lowering the threshold buys lead time
// and recall at the cost of precision. The overload definition (the truth
// threshold) stays fixed; only the alert trigger sweeps.
func EarlyWarnCurve(actual, predicted []float64, truthThreshold float64, alertThresholds []float64, maxLead int) ([]EarlyWarnPoint, error) {
	out := make([]EarlyWarnPoint, 0, len(alertThresholds))
	for _, th := range alertThresholds {
		// Alerts fire on the swept threshold; episodes stay defined by the
		// truth threshold. Scale the predictions so one Score call handles
		// both: alert iff predicted >= th  <=>  shifted >= truth.
		shifted := make([]float64, len(predicted))
		delta := truthThreshold - th
		for i, p := range predicted {
			shifted[i] = p + delta
		}
		sc, err := ScoreEarlyWarning(actual, shifted, truthThreshold, maxLead)
		if err != nil {
			return nil, err
		}
		out = append(out, EarlyWarnPoint{Threshold: th, EarlyWarnScore: sc})
	}
	return out, nil
}
