// Distillation of the deep predictor pool into the fixed-point triage
// filter (`sheriffsim -mode ingest`). The teacher is the burst-extended
// ARIMA/NARNET pool behind the surge grid: per regime it rolls over the
// test half and raises a pre-alert wherever the MaxLead-step forecast
// path crosses the overload threshold. The student is the quantized Holt
// smoother from internal/quant — two int32 words and a handful of dyadic
// multiplies per update. DistillQuant grid-searches the student's
// coefficient space (α, β numerators, lead horizon, per-regime alert
// threshold offset) for the configuration whose alert stream best
// reproduces the teacher's, scored as tolerance-window precision/recall
// per regime. RunIngest then grades the distilled filter inside the real
// ingest service — throughput and p99 per mode, fidelity per regime —
// producing the numbers in BENCH_ingest.json.
package experiments

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"time"

	"sheriff/internal/ingest"
	"sheriff/internal/predictor"
	"sheriff/internal/quant"
	"sheriff/internal/traces"
)

// DistillConfig sizes one distillation run. Zero fields take defaults.
type DistillConfig struct {
	Seed int64 `json:"seed"`
	// Hours is the trace length per regime (default 12; first half warms
	// the teacher pool and the student state, second half is labeled).
	Hours int `json:"hours"`
	// VMs is how many VM streams average into the rack stress series
	// (default 8).
	VMs int `json:"vms"`
	// Window is the teacher selector's sliding MSE window (default 20).
	Window int `json:"window"`
	// MaxLead is the teacher's forecast-path alert horizon in steps
	// (default 10); the student's distilled Lead is capped by it.
	MaxLead int `json:"max_lead"`
	// Intensity scales surge amplitudes (default 1.5).
	Intensity float64 `json:"intensity"`
	// Tolerance is the alert-matching window in steps: a student alert
	// within ±Tolerance of a teacher alert counts as the same alert
	// (default 3).
	Tolerance int `json:"tolerance"`
	// Shift is the dyadic coefficient resolution (default quant.DefaultShift).
	Shift uint32 `json:"shift"`
}

func (c DistillConfig) withDefaults() DistillConfig {
	if c.Hours == 0 {
		c.Hours = 12
	}
	if c.VMs == 0 {
		c.VMs = 8
	}
	if c.MaxLead == 0 {
		c.MaxLead = 10
	}
	if c.Intensity == 0 {
		c.Intensity = 1.5
	}
	if c.Tolerance == 0 {
		c.Tolerance = 3
	}
	if c.Shift == 0 {
		c.Shift = quant.DefaultShift
	}
	return c
}

// DistillRegime is the fidelity report for one regime: how faithfully the
// distilled fixed-point filter reproduces the deep pool's alert stream.
type DistillRegime struct {
	Regime string `json:"regime"`
	// Threshold is the regime's overload level (train p95); AlertAt is the
	// student's fitted trigger, Threshold + the distilled offset.
	Threshold float64 `json:"threshold"`
	AlertAt   float64 `json:"alert_at"`
	// PoolAlerts / QuantAlerts count teacher and student pre-alert steps
	// over the labeled half; Matched is how many student alerts fall
	// within ±Tolerance of a teacher alert.
	PoolAlerts  int `json:"pool_alerts"`
	QuantAlerts int `json:"quant_alerts"`
	Matched     int `json:"matched"`
	// Precision/Recall grade the student's alert stream against the
	// teacher's: precision = matched student alerts / student alerts,
	// recall = teacher alerts with a student alert within ±Tolerance /
	// teacher alerts (each 1 when the denominator is empty).
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	// MeanLead is the student's mean early-warning margin against the
	// actual overload episodes (ScoreEarlyWarning), in steps; PoolLead is
	// the teacher's own margin on the same series, for reference.
	MeanLead float64 `json:"mean_lead"`
	PoolLead float64 `json:"pool_lead"`
}

// DistillResult is the fitted student plus its per-regime fidelity.
type DistillResult struct {
	Config DistillConfig `json:"config"`
	// Coeffs is the distilled fixed-point configuration shared across
	// regimes; Offsets holds the per-regime alert-threshold offset
	// (AlertAt - Threshold) the fit selected.
	Coeffs  quant.Coeffs       `json:"coeffs"`
	Offsets map[string]float64 `json:"offsets"`
	// Score is the fit objective: Σ over regimes of min(precision, recall).
	Score   float64         `json:"score"`
	Regimes []DistillRegime `json:"regimes"`
}

// regimeLabels is one regime's frozen teaching material: the labeled half,
// the teacher's alert mask over it, and the quantized warm-up stream.
type regimeLabels struct {
	name      string
	threshold float64
	actual    []float64
	train     []quant.Q
	test      []quant.Q
	poolAlert []bool
	poolLead  float64
}

// buildLabels rolls the teacher pool over one regime and freezes its
// alert stream: poolAlert[t] is true where the MaxLead-step forecast path
// crosses the threshold while the actual value is still below it — the
// same pre-alert definition ScoreEarlyWarning counts.
func buildLabels(cfg DistillConfig, name string, topts traces.Options) (*regimeLabels, error) {
	n := cfg.Hours * traces.SamplesPerHour
	stress, err := rackStress(topts, cfg.VMs, n)
	if err != nil {
		return nil, fmt.Errorf("experiments: distill regime %s: %w", name, err)
	}
	train, test := stress.Split(0.5)
	lb := &regimeLabels{
		name:      name,
		threshold: quantile(train, 0.95),
		actual:    test.Values(),
		train:     quantize(train.Values()),
		test:      quantize(test.Values()),
		poolAlert: make([]bool, test.Len()),
	}

	cands, err := predictor.Pool(train, predictor.Options{Burst: true, Seed: cfg.Seed + 1, Window: cfg.Window})
	if err != nil {
		return nil, fmt.Errorf("experiments: distill regime %s: %w", name, err)
	}
	sel, err := predictor.NewSelector(train, predictor.Config{Window: cfg.Window}, cands...)
	if err != nil {
		return nil, fmt.Errorf("experiments: distill regime %s: %w", name, err)
	}
	poolSignal := make([]float64, len(lb.actual))
	last := train.Last()
	for t := range lb.actual {
		sig := last
		if path, _, err := sel.PredictK(cfg.MaxLead); err == nil {
			for _, v := range path {
				if v > sig {
					sig = v
				}
			}
		}
		poolSignal[t] = sig
		lb.poolAlert[t] = sig >= lb.threshold && lb.actual[t] < lb.threshold
		sel.Observe(lb.actual[t])
		last = lb.actual[t]
	}
	sc, err := ScoreEarlyWarning(lb.actual, poolSignal, lb.threshold, cfg.MaxLead)
	if err != nil {
		return nil, fmt.Errorf("experiments: distill regime %s: %w", name, err)
	}
	lb.poolLead = sc.MeanLead
	return lb, nil
}

func quantize(vals []float64) []quant.Q {
	out := make([]quant.Q, len(vals))
	for i, v := range vals {
		out[i] = quant.FromFloat(v)
	}
	return out
}

// studentSignal rolls the quantized smoother over the regime — warm on
// the training half, then record the pre-observe signal for each labeled
// step, exactly the quantity the ingest drain compares to its threshold.
func studentSignal(lb *regimeLabels, c quant.Coeffs) []quant.Q {
	var h quant.Holt
	for _, v := range lb.train {
		h.Observe(v, c)
	}
	sig := make([]quant.Q, len(lb.test))
	for t, v := range lb.test {
		sig[t] = h.Signal(c)
		h.Observe(v, c)
	}
	return sig
}

// matchAlerts computes tolerance-window precision/recall of the student
// alert mask against the teacher's.
func matchAlerts(pool, student []bool, tol int) (prec, rec float64, matched int) {
	within := func(mask []bool, t int) bool {
		lo, hi := t-tol, t+tol
		if lo < 0 {
			lo = 0
		}
		if hi > len(mask)-1 {
			hi = len(mask) - 1
		}
		for i := lo; i <= hi; i++ {
			if mask[i] {
				return true
			}
		}
		return false
	}
	var nStudent, nPool, hitPool int
	for t, on := range student {
		if !on {
			continue
		}
		nStudent++
		if within(pool, t) {
			matched++
		}
	}
	for t, on := range pool {
		if !on {
			continue
		}
		nPool++
		if within(student, t) {
			hitPool++
		}
	}
	prec, rec = 1, 1
	if nStudent > 0 {
		prec = float64(matched) / float64(nStudent)
	}
	if nPool > 0 {
		rec = float64(hitPool) / float64(nPool)
	}
	return prec, rec, matched
}

// distillOffsets is the per-regime alert-threshold offset grid: negative
// offsets trade precision for sensitivity (the student fires earlier than
// the overload line), mirroring how far below the threshold the teacher's
// forecast path typically crosses.
var distillOffsets = []float64{-0.12, -0.10, -0.08, -0.06, -0.04, -0.02, 0, 0.02, 0.04}

// DistillQuant fits the fixed-point filter to the deep pool's alerts: a
// grid search over dyadic (α, β), the lead horizon, and per-regime
// threshold offsets, maximizing Σ min(precision, recall) against the
// teacher's alert stream (ties break toward higher Σ(precision+recall),
// then smaller lead — the cheaper extrapolation).
func DistillQuant(cfg DistillConfig) (*DistillResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Hours < 2 {
		return nil, fmt.Errorf("experiments: distill needs Hours >= 2, got %d", cfg.Hours)
	}
	if cfg.Tolerance < 0 {
		return nil, fmt.Errorf("experiments: distill Tolerance must be >= 0, got %d", cfg.Tolerance)
	}
	var labels []*regimeLabels
	for _, reg := range surgeRegimes(cfg.Intensity) {
		lb, err := buildLabels(cfg, reg.name, reg.opts(cfg.Seed, cfg.Hours))
		if err != nil {
			return nil, err
		}
		labels = append(labels, lb)
	}

	alphas := []float64{0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875}
	betas := []float64{0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5}
	leads := []int32{1, 2, 3, 4, 5, 6, 8, 10}

	type fit struct {
		score, tie float64
		offsets    []float64
		regimes    []DistillRegime
	}
	best := fit{score: -1}
	var bestC quant.Coeffs
	student := make([]bool, 0)
	for _, a := range alphas {
		for _, b := range betas {
			for _, lead := range leads {
				if int(lead) > cfg.MaxLead {
					continue
				}
				c := quant.Snap(a, b, cfg.Shift)
				c.Lead = lead
				cur := fit{offsets: make([]float64, len(labels)), regimes: make([]DistillRegime, len(labels))}
				for li, lb := range labels {
					sig := studentSignal(lb, c)
					bestMin, bestTie := -1.0, -1.0
					for _, off := range distillOffsets {
						trigger := quant.FromFloat(lb.threshold + off)
						student = student[:0]
						for t, s := range sig {
							student = append(student, s >= trigger && lb.actual[t] < lb.threshold)
						}
						prec, rec, matched := matchAlerts(lb.poolAlert, student, cfg.Tolerance)
						mn, tie := prec, prec+rec
						if rec < mn {
							mn = rec
						}
						if mn > bestMin || (mn == bestMin && tie > bestTie) {
							bestMin, bestTie = mn, tie
							nAlerts, nPool := 0, 0
							for t := range student {
								if student[t] {
									nAlerts++
								}
								if lb.poolAlert[t] {
									nPool++
								}
							}
							cur.offsets[li] = off
							cur.regimes[li] = DistillRegime{
								Regime: lb.name, Threshold: lb.threshold, AlertAt: lb.threshold + off,
								PoolAlerts: nPool, QuantAlerts: nAlerts, Matched: matched,
								Precision: prec, Recall: rec, PoolLead: lb.poolLead,
							}
						}
					}
					cur.score += bestMin
					cur.tie += bestTie
				}
				if cur.score > best.score ||
					(cur.score == best.score && cur.tie > best.tie) ||
					(cur.score == best.score && cur.tie == best.tie && lead < bestC.Lead) {
					best, bestC = cur, c
				}
			}
		}
	}

	res := &DistillResult{Config: cfg, Coeffs: bestC, Offsets: make(map[string]float64), Score: best.score}
	for li, lb := range labels {
		reg := best.regimes[li]
		// Lead time against the actual overload episodes, at the fitted
		// trigger (the EarlyWarnCurve shift trick: alert iff signal >=
		// trigger <=> signal - offset >= threshold).
		sig := studentSignal(lb, bestC)
		shifted := make([]float64, len(sig))
		for t, s := range sig {
			shifted[t] = s.Float() - best.offsets[li]
		}
		sc, err := ScoreEarlyWarning(lb.actual, shifted, lb.threshold, cfg.MaxLead)
		if err != nil {
			return nil, err
		}
		reg.MeanLead = sc.MeanLead
		res.Offsets[lb.name] = best.offsets[li]
		res.Regimes = append(res.Regimes, reg)
	}
	return res, nil
}

// IngestConfig sizes a full `sheriffsim -mode ingest` grading run:
// distillation plus the two-mode service benchmark.
type IngestConfig struct {
	DistillConfig
	// BenchRacks × BenchVMs size the benchmarked service (defaults 32×32);
	// BenchRounds is how many full-fleet offer+drain sweeps each mode is
	// timed over (default 2000).
	BenchRacks  int `json:"bench_racks"`
	BenchVMs    int `json:"bench_vms"`
	BenchRounds int `json:"bench_rounds"`
}

func (c IngestConfig) withDefaults() IngestConfig {
	c.DistillConfig = c.DistillConfig.withDefaults()
	if c.BenchRacks == 0 {
		c.BenchRacks = 32
	}
	if c.BenchVMs == 0 {
		c.BenchVMs = 32
	}
	if c.BenchRounds == 0 {
		c.BenchRounds = 2000
	}
	return c
}

// IngestModePerf is one triage mode's measured service performance.
type IngestModePerf struct {
	Mode            string  `json:"mode"`
	UpdatesPerSec   float64 `json:"updates_per_sec"`
	P99Micros       float64 `json:"p99_us"`
	AllocsPerUpdate float64 `json:"allocs_per_update"`
	Alerts          uint64  `json:"alerts"`
}

// IngestResult is the `sheriffsim -mode ingest` report: the distilled
// filter's fidelity per regime plus the float-vs-quantized service
// benchmark.
type IngestResult struct {
	Config  IngestConfig   `json:"config"`
	Distill *DistillResult `json:"distill"`
	Float   IngestModePerf `json:"float"`
	Quant   IngestModePerf `json:"quantized"`
	// Speedup is quantized updates/s over float updates/s.
	Speedup float64 `json:"speedup"`
}

// benchRig is one triage mode's service under measurement plus its
// per-block timed nanoseconds and steady-state allocation rate.
type benchRig struct {
	mode    ingest.TriageMode
	svc     *ingest.Service
	blocks  []time.Duration
	elapsed time.Duration // current block's accumulator
	allocs  float64
}

// benchModes drives a float and a quantized service through BenchRounds
// full-fleet sweeps each, interleaved round by round (and alternating
// which mode goes first within a round). Host clock drift, thermal
// throttling, and background load change on timescales of seconds, so
// timing the modes in whole passes lets that drift masquerade as a mode
// difference; at per-round (~100µs) interleaving both modes sample the
// same machine conditions. The rounds are split into benchBlocks blocks
// and each mode reports its best block — the usual min-cost estimator,
// filtering the GC cycles and scheduler preemptions that land in one
// block but not another. Allocation rates are taken over the warm-up
// sweeps — the same steady-state code path — so the timed region carries
// no ReadMemStats stops.
const benchBlocks = 4

func benchModes(cfg IngestConfig, coeffs quant.Coeffs) (flt, qnt IngestModePerf, err error) {
	vmsByRack := make([][]int, cfg.BenchRacks)
	id := 0
	for r := range vmsByRack {
		for v := 0; v < cfg.BenchVMs; v++ {
			vmsByRack[r] = append(vmsByRack[r], id)
			id++
		}
	}
	gen := traces.NewWorkloadGen(24, cfg.Seed+2)
	updates := make([]ingest.Update, id)
	for i := range updates {
		updates[i] = ingest.Update{VM: i, Profile: gen.Next()}
	}
	rigs := [2]*benchRig{{mode: ingest.TriageFloat}, {mode: ingest.TriageQuant}}
	for _, rig := range rigs {
		rig.svc, err = ingest.New(vmsByRack, ingest.Options{
			Mode:       rig.mode,
			Quant:      coeffs,
			QueueLimit: cfg.BenchRacks * cfg.BenchVMs,
		})
		if err != nil {
			return flt, qnt, err
		}
	}
	sweep := func(s *ingest.Service) error {
		if _, err := s.OfferBatch(updates); err != nil {
			return err
		}
		s.ProcessPending()
		s.Poll()
		return nil
	}
	warm := cfg.BenchRounds / 10
	if warm < 8 {
		warm = 8
	}
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	prev := m.Mallocs
	for _, rig := range rigs {
		for i := 0; i < warm; i++ {
			if err := sweep(rig.svc); err != nil {
				return flt, qnt, err
			}
		}
		runtime.ReadMemStats(&m)
		rig.allocs = float64(m.Mallocs-prev) / float64(warm*len(updates))
		prev = m.Mallocs
	}
	perBlock := cfg.BenchRounds / benchBlocks
	if perBlock < 1 {
		perBlock = 1
	}
	// Steady state is allocation-free (reported separately as
	// allocs/update), so GC cycles landing inside the timed region are
	// pure noise; park the collector for the measurement.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	for i := 0; i < cfg.BenchRounds; i++ {
		first, second := rigs[i%2], rigs[1-i%2]
		for _, rig := range [2]*benchRig{first, second} {
			start := time.Now()
			if err := sweep(rig.svc); err != nil {
				return flt, qnt, err
			}
			rig.elapsed += time.Since(start)
			if (i+1)%perBlock == 0 || i == cfg.BenchRounds-1 {
				rig.blocks = append(rig.blocks, rig.elapsed)
				rig.elapsed = 0
			}
		}
	}
	perf := func(rig *benchRig) IngestModePerf {
		st := rig.svc.Stats()
		best, rounds := rig.blocks[0], perBlock
		for i, b := range rig.blocks {
			// The tail block can be short; scale by its actual round count.
			r := perBlock
			if i == len(rig.blocks)-1 {
				r = cfg.BenchRounds - perBlock*(len(rig.blocks)-1)
			}
			if b.Seconds()/float64(r) < best.Seconds()/float64(rounds) {
				best, rounds = b, r
			}
		}
		return IngestModePerf{
			Mode:            rig.mode.String(),
			UpdatesPerSec:   float64(rounds*len(updates)) / best.Seconds(),
			P99Micros:       st.LatencyP99 * 1e6,
			AllocsPerUpdate: rig.allocs,
			Alerts:          st.Alerts,
		}
	}
	return perf(rigs[0]), perf(rigs[1]), nil
}

// RunIngest distills the fixed-point triage filter from the deep pool and
// grades it: alert fidelity per regime (from the distillation) and the
// float-vs-quantized ingest service benchmark, with the two modes timed
// round-robin under identical machine conditions (see benchModes).
func RunIngest(cfg IngestConfig) (*IngestResult, error) {
	cfg = cfg.withDefaults()
	dist, err := DistillQuant(cfg.DistillConfig)
	if err != nil {
		return nil, err
	}
	res := &IngestResult{Config: cfg, Distill: dist}
	res.Float, res.Quant, err = benchModes(cfg, dist.Coeffs)
	if err != nil {
		return nil, err
	}
	if res.Float.UpdatesPerSec > 0 {
		res.Speedup = res.Quant.UpdatesPerSec / res.Float.UpdatesPerSec
	}
	return res, nil
}
