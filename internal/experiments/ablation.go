package experiments

import (
	"fmt"
	"math/rand"

	"sort"

	"sheriff/internal/arima"
	"sheriff/internal/centralized"
	"sheriff/internal/cost"
	"sheriff/internal/dcn"
	"sheriff/internal/kmedian"
	"sheriff/internal/knapsack"
	"sheriff/internal/migrate"
	"sheriff/internal/placement"
	"sheriff/internal/runtime"
	"sheriff/internal/sim"
	"sheriff/internal/timeseries"
	"sheriff/internal/topology"
)

// AblationSwapSize compares the Alg. 5 local-search quality and swap count
// across swap sizes p = 1..3 on a rack-cost k-median instance, exposing
// the 3+2/p quality/effort trade-off called out in DESIGN.md §4.
func AblationSwapSize(seed int64) (*Table, error) {
	ft, err := topology.NewFatTree(topology.FatTreeConfig{Pods: 8})
	if err != nil {
		return nil, err
	}
	cluster, err := dcn.NewCluster(ft.Graph, dcn.Config{HostsPerRack: 2, HostCapacity: 100, ToRCapacity: 200})
	if err != nil {
		return nil, err
	}
	model, err := cost.New(cluster, cost.PaperParams())
	if err != nil {
		return nil, err
	}
	n := len(cluster.Racks)
	clients := make([]int, 0, n/2)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.5 {
			clients = append(clients, i)
		}
	}
	if len(clients) == 0 {
		clients = []int{0}
	}
	facilities := make([]int, n)
	for i := range facilities {
		facilities[i] = i
	}
	inst := &kmedian.Instance{Cost: model.RackCostMatrix(), Clients: clients, Facilities: facilities, K: 4}

	t := &Table{
		Name:    "Ablation A1",
		Title:   "Local-search swap size p: solution cost, guarantee, swaps applied",
		Columns: []string{"p", "cost", "guarantee_ratio", "swaps"},
	}
	for p := 1; p <= 3; p++ {
		sol, err := kmedian.LocalSearch(inst, kmedian.Options{P: p, Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("experiments: swap ablation p=%d: %w", p, err)
		}
		t.AddRow(float64(p), sol.Cost, kmedian.ApproximationRatio(p), float64(sol.Swaps))
	}
	return t, nil
}

// AblationModelSelection reports the Fig. 8 decomposition as a compact
// three-row table: dynamic selection vs ARIMA-only vs NARNET-only MSE.
func AblationModelSelection(seed int64) (*Table, error) {
	combined, arimaMSE, narnetMSE, err := PredictionMSEs(seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name:    "Ablation A2",
		Title:   "Prediction MSE: dynamic model selection vs single models",
		Columns: []string{"model", "mse"},
		Notes:   []string{"model: 0 = combined, 1 = ARIMA(1,1,1), 2 = NARNET(16,20)"},
	}
	t.AddRow(0, combined)
	t.AddRow(1, arimaMSE)
	t.AddRow(2, narnetMSE)
	return t, nil
}

// AblationPrioritySelection compares PRIORITY's knapsack selection with a
// naive highest-alert-first selection under the same migration budget,
// measuring the migration cost incurred to shed the same load.
func AblationPrioritySelection(seed int64) (*Table, error) {
	run := func(useKnapsack bool) (shed, costTotal float64, err error) {
		s, err := sim.Build(sim.Config{Kind: sim.FatTree, Size: 4, Seed: seed})
		if err != nil {
			return 0, 0, err
		}
		s.PopulateSkewed(0.5)
		rack := s.Cluster.Racks[0]
		h := rack.Hosts[0]
		budget := 0.3 * h.Capacity
		var chosen []*dcn.VM
		if useKnapsack {
			chosen = knapsack.SelectByBudget(h.VMs(), budget)
		} else {
			// Naive: order by Value descending until the budget fills.
			vms := h.VMs()
			sort.Slice(vms, func(i, j int) bool { return vms[i].Value > vms[j].Value })
			used := 0.0
			for _, vm := range vms {
				if used+vm.Capacity > budget {
					continue
				}
				used += vm.Capacity
				chosen = append(chosen, vm)
			}
		}
		if len(chosen) == 0 {
			return 0, 0, nil
		}
		for _, vm := range chosen {
			shed += vm.Capacity
		}
		var hosts []*dcn.Host
		shim, err := migrate.NewShim(s.Cluster, s.Model, rack, migrate.DefaultParams())
		if err != nil {
			return 0, 0, err
		}
		for _, r := range shim.NeighborRacks() {
			hosts = append(hosts, r.Hosts...)
		}
		res, err := migrate.VMMigration(s.Cluster, s.Model, chosen, hosts)
		if err != nil {
			return 0, 0, err
		}
		return shed, res.TotalCost, nil
	}
	kShed, kCost, err := run(true)
	if err != nil {
		return nil, err
	}
	nShed, nCost, err := run(false)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name:    "Ablation A3",
		Title:   "PRIORITY knapsack vs naive top-value selection under one budget",
		Columns: []string{"policy", "capacity_shed", "migration_cost"},
		Notes:   []string{"policy: 0 = knapsack (Alg. 2), 1 = naive greedy"},
	}
	t.AddRow(0, kShed, kCost)
	t.AddRow(1, nShed, nCost)
	return t, nil
}

// AblationRegionSize sweeps the shim's dominating-region radius
// (NeighborSwitchHops) to show the regional/global trade-off between
// search space and migration cost.
func AblationRegionSize(seed int64) (*Table, error) {
	t := &Table{
		Name:    "Ablation A4",
		Title:   "Region radius (switch hops): search space vs migration cost",
		Columns: []string{"hops", "search_space", "migration_cost", "migrations"},
	}
	for hops := 1; hops <= 3; hops++ {
		s, err := sim.Build(sim.Config{
			Kind: sim.FatTree, Size: 8, Seed: seed,
			Migrate: migrate.Params{Alpha: 0.2, Beta: 0.2, NeighborSwitchHops: hops},
		})
		if err != nil {
			return nil, err
		}
		s.Populate()
		alerts := s.SeedAlerts()
		space, costTotal, count := 0, 0.0, 0
		for _, shim := range s.Shims {
			vms := alerts[shim.Rack.Index]
			if len(vms) == 0 {
				continue
			}
			var hosts []*dcn.Host
			hosts = append(hosts, shim.Rack.Hosts...)
			for _, r := range shim.NeighborRacks() {
				hosts = append(hosts, r.Hosts...)
			}
			res, err := migrate.VMMigration(s.Cluster, s.Model, vms, hosts)
			if err != nil {
				return nil, err
			}
			space += res.SearchSpace
			costTotal += res.TotalCost
			count += len(res.Migrations)
		}
		t.AddRow(float64(hops), float64(space), costTotal, float64(count))
	}
	return t, nil
}

// AblationSeasonal compares plain ARIMA(1,1,1) against a seasonal
// SARIMA(1,0,1)(1,1,0)[64] on the daily-periodic traffic trace — the
// natural extension for Fig. 5's data, where the season length (64
// samples/day) is known.
func AblationSeasonal(seed int64) (*Table, error) {
	s := trafficTrace(seed)
	train, test := s.Split(0.7)

	plain, err := arima.Fit(train, arima.Order{P: 1, D: 1, Q: 1})
	if err != nil {
		return nil, err
	}
	seasonal, err := arima.FitSeasonal(train, arima.SeasonalOrder{
		Order: arima.Order{P: 1, D: 0, Q: 1}, SP: 1, SD: 1, Period: 64,
	})
	if err != nil {
		return nil, err
	}
	pPred, err := plain.RollingForecast(train, test)
	if err != nil {
		return nil, err
	}
	sPred, err := seasonal.RollingForecast(train, test)
	if err != nil {
		return nil, err
	}
	pMSE, err := timeseries.MSE(test.Raw(), pPred)
	if err != nil {
		return nil, err
	}
	sMSE, err := timeseries.MSE(test.Raw(), sPred)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name:    "Ablation A5",
		Title:   "Seasonal SARIMA vs plain ARIMA on the weekly traffic",
		Columns: []string{"model", "mse", "aic"},
		Notes: []string{
			"model: 0 = ARIMA(1,1,1), 1 = SARIMA(1,0,1)(1,1,0)[64]",
			"one-step MSE favors plain ARIMA on this trace (the nonlinear",
			"amplitude envelope breaks exact daily seasonality); AIC favors",
			"the seasonal fit — SARIMA shines at multi-step horizons, see",
			"TestSeasonalMultiStepForecastKeepsPhase",
		},
	}
	t.AddRow(0, pMSE, plain.AIC())
	t.AddRow(1, sMSE, seasonal.AIC())
	return t, nil
}

// AblationReroute runs the assembled runtime with FLOWREROUTE on and off
// over a congested fabric, comparing hot-switch exposure — the value of
// the paper's "reroute first, migrate second" ordering.
func AblationReroute(seed int64) (*Table, error) {
	run := func(disable bool) (hotSteps, reroutes int, err error) {
		ft, err := topology.NewFatTree(topology.FatTreeConfig{Pods: 4})
		if err != nil {
			return 0, 0, err
		}
		cluster, err := dcn.NewCluster(ft.Graph, dcn.Config{HostsPerRack: 2, HostCapacity: 100, ToRCapacity: 200})
		if err != nil {
			return 0, 0, err
		}
		cluster.Populate(dcn.PopulateOptions{
			VMsPerHost: 3, MinCapacity: 5, MaxCapacity: 15,
			DependencyProb: 0.6, CrossRackDependencyProb: 0.8, Seed: seed,
		})
		model, err := cost.New(cluster, cost.PaperParams())
		if err != nil {
			return 0, 0, err
		}
		rt, err := runtime.New(cluster, model, runtime.Options{
			Seed:           seed,
			DisableReroute: disable,
			FlowRate:       func(trf float64) float64 { return 0.5 + 0.5*trf },
		})
		if err != nil {
			return 0, 0, err
		}
		hist, err := rt.Run(20)
		if err != nil {
			return 0, 0, err
		}
		for _, s := range hist {
			hotSteps += s.HotSwitches
			reroutes += s.Reroutes
		}
		return hotSteps, reroutes, nil
	}
	onHot, onMoves, err := run(false)
	if err != nil {
		return nil, err
	}
	offHot, _, err := run(true)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name:    "Ablation A6",
		Title:   "FLOWREROUTE on vs off: hot-switch exposure over 20 runtime steps",
		Columns: []string{"reroute", "hot_switch_steps", "flows_moved"},
		Notes:   []string{"reroute: 1 = enabled, 0 = disabled"},
	}
	t.AddRow(1, float64(onHot), float64(onMoves))
	t.AddRow(0, float64(offHot), 0)
	return t, nil
}

// AblationPlacement compares initial placement policies by the imbalance
// they create and the migration effort Sheriff then spends erasing it:
// best-fit packs tightly (worst start), worst-fit spreads (best start).
func AblationPlacement(seed int64) (*Table, error) {
	t := &Table{
		Name:    "Ablation A7",
		Title:   "Initial placement policy: starting imbalance and balancing effort",
		Columns: []string{"policy", "initial_stddev", "final_stddev", "migrations"},
		Notes:   []string{"policy: 0 = first-fit, 1 = best-fit, 2 = worst-fit, 3 = random"},
	}
	for row, kind := range []placement.Kind{placement.FirstFit, placement.BestFit, placement.WorstFit, placement.Random} {
		s, err := sim.Build(sim.Config{Kind: sim.FatTree, Size: 4, Seed: seed})
		if err != nil {
			return nil, err
		}
		placer := placement.New(s.Cluster, kind, seed)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 60; i++ {
			if _, err := placer.Place(5+rng.Float64()*15, 1+rng.Float64()*9, false); err != nil {
				break
			}
		}
		initial := s.Cluster.WorkloadStdDev()
		migrations := 0
		for round := 0; round < 12; round++ {
			_, reps, err := s.BalancingRound(0.05)
			if err != nil {
				return nil, err
			}
			for _, r := range reps {
				migrations += len(r.Migrations)
			}
		}
		t.AddRow(float64(row), initial, s.Cluster.WorkloadStdDev(), float64(migrations))
	}
	return t, nil
}

// AblationPolicy runs the placement-policy grid sequentially on a 4-pod
// Fat-Tree: every matching-capable policy relocates the same 5% alerted
// VMs with preemption and the fail-queue enabled, exposing the
// stddev-decay vs migration-cost trade-off each policy buys (best-fit
// packs and pays in imbalance, worst-fit spreads and pays in cost,
// oversubscription absorbs overflow in place).
func AblationPolicy(seed int64) (*Table, error) {
	t := &Table{
		Name:    "Ablation A10",
		Title:   "Migration placement policy: stddev decay vs migration cost",
		Columns: []string{"policy", "initial_stddev", "final_stddev", "decay", "migration_cost", "migrations", "preemptions", "requeued", "unplaced"},
		Notes:   []string{"policy: 0 = sheriff, 1 = best-fit, 2 = worst-fit, 3 = oversub(2x)"},
	}
	for row, kind := range placement.Kinds() {
		res, err := sim.RunPolicy(sim.PolicyConfig{
			Sim:     sim.Config{Kind: sim.FatTree, Size: 4, Seed: seed},
			Policy:  placement.PolicyOptions{Kind: kind, Seed: seed},
			Preempt: migrate.PreemptOptions{Enabled: true},
			Retry:   migrate.RetryOptions{Enabled: true},
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: policy ablation %s: %w", kind, err)
		}
		t.AddRow(float64(row), res.InitialStdDev, res.FinalStdDev, res.StdDevDecay,
			res.MigrationCost, float64(res.Migrations), float64(res.Preemptions),
			float64(res.Requeued), float64(res.Unplaced))
	}
	return t, nil
}

// AblationKMedianPlanning compares two ways to place alerted VMs:
// (a) pure per-rack matching over the one-hop region (the distributed
// Alg. 3 path), and (b) the Sec. V.A reduction — first pick k destination
// ToRs by Local Search k-median over the collapsed rack costs, then match
// each rack's VMs into its assigned median's hosts. Planning concentrates
// migrations on few destination racks (easier to provision) at some cost
// premium over free-form matching.
func AblationKMedianPlanning(seed int64) (*Table, error) {
	build := func() (*sim.Sim, map[int][]*dcn.VM, error) {
		s, err := sim.Build(sim.Config{Kind: sim.FatTree, Size: 8, Seed: seed})
		if err != nil {
			return nil, nil, err
		}
		s.Populate()
		return s, s.SeedAlerts(), nil
	}

	// Strategy (a): regional matching.
	sA, alertsA, err := build()
	if err != nil {
		return nil, err
	}
	costA, spaceA, destsA := 0.0, 0, map[int]bool{}
	for _, shim := range sA.Shims {
		vms := alertsA[shim.Rack.Index]
		if len(vms) == 0 {
			continue
		}
		var hosts []*dcn.Host
		for _, r := range shim.NeighborRacks() {
			hosts = append(hosts, r.Hosts...)
		}
		res, err := migrate.Migrate(sA.Cluster, sA.Model, vms, hosts, migrate.MigrationOptions{ForbidSameRack: true, Shim: migrate.ShimUnknown})
		if err != nil {
			return nil, err
		}
		costA += res.TotalCost
		spaceA += res.SearchSpace
		for _, mg := range res.Migrations {
			destsA[mg.To.Rack().Index] = true
		}
	}

	// Strategy (b): k-median planning, then matching into the medians.
	sB, alertsB, err := build()
	if err != nil {
		return nil, err
	}
	var sources []int
	for idx, vms := range alertsB {
		if len(vms) > 0 {
			sources = append(sources, idx)
		}
	}
	sort.Ints(sources)
	k := len(sources) / 3
	if k < 1 {
		k = 1
	}
	mgr := centralized.New(sB.Cluster, sB.Model)
	plan, err := mgr.PlanDestinations(sources, k, 2, false, seed)
	if err != nil {
		return nil, err
	}
	costB, spaceB, destsB := 0.0, 0, map[int]bool{}
	for i, srcIdx := range sources {
		vms := alertsB[srcIdx]
		dstRack := sB.Cluster.Racks[plan.Assignment[i]]
		if dstRack.Index == srcIdx {
			// Source assigned to itself as median: spill to the cheapest
			// other open facility.
			for _, open := range plan.Open {
				if open != srcIdx {
					dstRack = sB.Cluster.Racks[open]
					break
				}
			}
		}
		res, err := migrate.Migrate(sB.Cluster, sB.Model, vms, dstRack.Hosts, migrate.MigrationOptions{ForbidSameRack: true, Shim: migrate.ShimUnknown})
		if err != nil {
			return nil, err
		}
		costB += res.TotalCost
		spaceB += res.SearchSpace
		for _, mg := range res.Migrations {
			destsB[mg.To.Rack().Index] = true
		}
	}

	t := &Table{
		Name:    "Ablation A8",
		Title:   "Destination selection: regional matching vs k-median planning (Sec. V.A)",
		Columns: []string{"strategy", "cost", "search_space", "distinct_dest_racks"},
		Notes:   []string{"strategy: 0 = per-rack matching, 1 = k-median plan + matching"},
	}
	t.AddRow(0, costA, float64(spaceA), float64(len(destsA)))
	t.AddRow(1, costB, float64(spaceB), float64(len(destsB)))
	return t, nil
}

// AblationPlanningScale sweeps Fat-Tree pod counts through the Sec. V.A
// destination-planning engine: Local Search cost and wall time at every
// size, and the branch-and-bound optimum where it is feasible — the
// planning-side view of the Figs. 11–12 APP-vs-OPT comparison at scales
// the seed's enumerator (full C(|F|, K) scan) could never reach.
func AblationPlanningScale(seed int64) (*Table, error) {
	t := &Table{
		Name:    "Ablation A9",
		Title:   "k-median planning at scale: Local Search vs branch-and-bound optimum",
		Columns: []string{"pods", "racks", "clients", "k", "ls_cost", "ls_ms", "opt_cost", "opt_ms", "ratio"},
		Notes: []string{
			"5% alerts per rack; k = clients/4; opt columns are 0 where the",
			"exact reference is skipped (branch-and-bound stays exponential)",
		},
	}
	for _, pods := range []int{4, 8, 16} {
		exact := pods <= 8
		res, err := sim.ComparePlanning(sim.Config{Kind: sim.FatTree, Size: pods, Seed: seed}, 0, 1, exact)
		if err != nil {
			return nil, fmt.Errorf("experiments: planning scale pods=%d: %w", pods, err)
		}
		optCost, optMs, ratio := 0.0, 0.0, 0.0
		if res.HasExact {
			optCost = res.ExactCost
			optMs = float64(res.ExactTime.Milliseconds())
			ratio = res.Ratio()
		}
		t.AddRow(float64(pods), float64(res.Racks), float64(res.Clients), float64(res.K),
			res.LocalCost, float64(res.LocalTime.Milliseconds()), optCost, optMs, ratio)
	}
	return t, nil
}

// Ablations lists every ablation generator for the CLI.
var Ablations = map[string]func(seed int64) (*Table, error){
	"swap-size":       AblationSwapSize,
	"model-selection": AblationModelSelection,
	"priority":        AblationPrioritySelection,
	"region-size":     AblationRegionSize,
	"seasonal":        AblationSeasonal,
	"reroute":         AblationReroute,
	"placement":       AblationPlacement,
	"policy":          AblationPolicy,
	"kmedian":         AblationKMedianPlanning,
	"planning-scale":  AblationPlanningScale,
}
