package experiments

import (
	"fmt"

	"sheriff/internal/arima"
	"sheriff/internal/narnet"
	"sheriff/internal/predictor"
	"sheriff/internal/timeseries"
	"sheriff/internal/traces"
)

// trafficTrace is the shared Fig. 5/6/7/8 series: 7 days × 64 samples,
// matching the ~450 time units of the paper's plots.
func trafficTrace(seed int64) *timeseries.Series {
	return traces.WeeklyTraffic(traces.TrafficConfig{Days: 7, PerDay: 64, Seed: seed})
}

// Fig3RawCPU regenerates Fig. 3 (raw CPU utilization, 24 h): one row per
// sample with the hour and utilization percent.
func Fig3RawCPU(seed int64) (*Table, error) {
	s := traces.CPU(traces.CPUConfig{Hours: 24, Seed: seed})
	t := &Table{
		Name:    "Fig. 3",
		Title:   "Raw data of CPU utility (synthetic diurnal trace, percent)",
		Columns: []string{"hour", "cpu_pct"},
		Notes:   []string{traces.Describe("cpu", s), "substitute for the ZopleCloud VM CPU trace (DESIGN.md §5)"},
	}
	// Downsample to one row per 10 minutes to keep the table readable.
	for i := 0; i < s.Len(); i += 10 {
		t.AddRow(float64(i)/float64(traces.SamplesPerHour), s.At(i))
	}
	return t, nil
}

// Fig4RawIO regenerates Fig. 4 (raw disk I/O rate, MB).
func Fig4RawIO(seed int64) (*Table, error) {
	s := traces.DiskIO(traces.DiskIOConfig{Hours: 24, Seed: seed})
	t := &Table{
		Name:    "Fig. 4",
		Title:   "Raw data of disk I/O rate (synthetic bursty trace, MB)",
		Columns: []string{"hour", "io_mb"},
		Notes:   []string{traces.Describe("io", s)},
	}
	for i := 0; i < s.Len(); i += 10 {
		t.AddRow(float64(i)/float64(traces.SamplesPerHour), s.At(i))
	}
	return t, nil
}

// Fig5RawTraffic regenerates Fig. 5 (weekly switch traffic, MB): the
// regular peaks and troughs the Box–Jenkins identification relies on.
func Fig5RawTraffic(seed int64) (*Table, error) {
	s := trafficTrace(seed)
	t := &Table{
		Name:    "Fig. 5",
		Title:   "Raw data of weekly traffic (synthetic, MB)",
		Columns: []string{"day", "traffic_mb"},
		Notes:   []string{traces.Describe("traffic", s)},
	}
	for i := 0; i < s.Len(); i++ {
		t.AddRow(float64(i)/64.0, s.At(i))
	}
	return t, nil
}

// Fig6ARIMA regenerates Fig. 6: ARIMA(1,1,1) trained on the first half of
// the weekly traffic, one-step predictions over the second half, with the
// prediction error series.
func Fig6ARIMA(seed int64) (*Table, error) {
	s := trafficTrace(seed)
	train, test := s.Split(0.5)
	model, err := arima.Fit(train, arima.Order{P: 1, D: 1, Q: 1})
	if err != nil {
		return nil, fmt.Errorf("experiments: Fig 6 fit: %w", err)
	}
	pred, err := model.RollingForecast(train, test)
	if err != nil {
		return nil, fmt.Errorf("experiments: Fig 6 forecast: %w", err)
	}
	t := &Table{
		Name:    "Fig. 6",
		Title:   "Performance of ARIMA(1,1,1) in predicting the traffic of switch",
		Columns: []string{"time_unit", "original", "predicted", "error"},
	}
	for i := 0; i < test.Len(); i++ {
		t.AddRow(float64(train.Len()+i), test.At(i), pred[i], test.At(i)-pred[i])
	}
	mse, err := timeseries.MSE(test.Raw(), pred)
	if err != nil {
		return nil, err
	}
	mape, err := timeseries.MAPE(test.Raw(), pred)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("test MSE = %.4f, MAPE = %.2f%%", mse, mape),
		"50%% train / 50%% test split, as in the paper")
	return t, nil
}

// Fig7NARNET regenerates Fig. 7: NARNET with 20 hidden units, 70/30
// split, one-step open-loop predictions.
func Fig7NARNET(seed int64) (*Table, error) {
	s := trafficTrace(seed)
	train, test := s.Split(0.7)
	net, err := narnet.Train(train, narnet.Config{Inputs: 16, Hidden: 20, Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("experiments: Fig 7 train: %w", err)
	}
	pred, err := net.RollingForecast(train, test)
	if err != nil {
		return nil, fmt.Errorf("experiments: Fig 7 forecast: %w", err)
	}
	t := &Table{
		Name:    "Fig. 7",
		Title:   "Performance of neural network model (NARNET, 20 hidden units)",
		Columns: []string{"time_unit", "original", "predicted", "error"},
	}
	for i := 0; i < test.Len(); i++ {
		t.AddRow(float64(train.Len()+i), test.At(i), pred[i], test.At(i)-pred[i])
	}
	mse, err := timeseries.MSE(test.Raw(), pred)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("test MSE = %.4f", mse),
		"70%% train / 30%% test split, as in the paper")
	return t, nil
}

// Fig8Combined regenerates Fig. 8: the dynamic-selection combined model
// over the same test region as Fig. 7, reporting its MSE against the
// individual models' (the paper: "a smaller minimum square error").
func Fig8Combined(seed int64) (*Table, error) {
	s := trafficTrace(seed)
	train, test := s.Split(0.7)

	am, err := arima.Fit(train, arima.Order{P: 1, D: 1, Q: 1})
	if err != nil {
		return nil, fmt.Errorf("experiments: Fig 8 ARIMA fit: %w", err)
	}
	nn, err := narnet.Train(train, narnet.Config{Inputs: 16, Hidden: 20, Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("experiments: Fig 8 NARNET train: %w", err)
	}
	sel, err := predictor.NewSelector(train, predictor.Config{Window: 15},
		predictor.NewCandidate("ARIMA(1,1,1)", am),
		predictor.NewCandidate("NARNET(16,20)", nn))
	if err != nil {
		return nil, err
	}
	combined, winShare, err := sel.Run(test)
	if err != nil {
		return nil, fmt.Errorf("experiments: Fig 8 selector: %w", err)
	}

	aPred, err := am.RollingForecast(train, test)
	if err != nil {
		return nil, err
	}
	nPred, err := nn.RollingForecast(train, test)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name:    "Fig. 8",
		Title:   "Performance of combined model in predicting the traffic of switch",
		Columns: []string{"time_unit", "original", "combined", "arima", "narnet", "error"},
	}
	for i := 0; i < test.Len(); i++ {
		t.AddRow(float64(train.Len()+i), test.At(i), combined[i], aPred[i], nPred[i], test.At(i)-combined[i])
	}
	cMSE, err := timeseries.MSE(test.Raw(), combined)
	if err != nil {
		return nil, err
	}
	aMSE, err := timeseries.MSE(test.Raw(), aPred)
	if err != nil {
		return nil, err
	}
	nMSE, err := timeseries.MSE(test.Raw(), nPred)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("MSE: combined = %.4f, ARIMA = %.4f, NARNET = %.4f", cMSE, aMSE, nMSE),
		fmt.Sprintf("selection shares: %v", winShare))
	return t, nil
}

// PredictionMSEs runs the Fig. 8 protocol and returns just the three MSE
// numbers (combined, arima, narnet) for EXPERIMENTS.md and tests.
func PredictionMSEs(seed int64) (combined, arimaMSE, narnetMSE float64, err error) {
	tab, err := Fig8Combined(seed)
	if err != nil {
		return 0, 0, 0, err
	}
	n := len(tab.Rows)
	actual := make([]float64, n)
	comb := make([]float64, n)
	ap := make([]float64, n)
	np := make([]float64, n)
	for i, row := range tab.Rows {
		actual[i], comb[i], ap[i], np[i] = row[1], row[2], row[3], row[4]
	}
	if combined, err = timeseries.MSE(actual, comb); err != nil {
		return 0, 0, 0, err
	}
	if arimaMSE, err = timeseries.MSE(actual, ap); err != nil {
		return 0, 0, 0, err
	}
	if narnetMSE, err = timeseries.MSE(actual, np); err != nil {
		return 0, 0, 0, err
	}
	return combined, arimaMSE, narnetMSE, nil
}
