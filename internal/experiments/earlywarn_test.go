package experiments

import (
	"math"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

// TestEarlyWarnBasic walks a hand-checked trace: two episodes, both
// alerted in time, with a known lead on each.
func TestEarlyWarnBasic(t *testing.T) {
	actual := []float64{0, 0, 0, 1, 1, 0, 0, 0, 0, 1}
	predicted := []float64{0, 1, 0, 0, 0, 0, 0, 1, 0, 0}
	sc, err := ScoreEarlyWarning(actual, predicted, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Episodes != 2 || sc.Detected != 2 {
		t.Fatalf("episodes/detected = %d/%d, want 2/2", sc.Episodes, sc.Detected)
	}
	if sc.Alerts != 2 || sc.TruePositives != 2 {
		t.Fatalf("alerts/TP = %d/%d, want 2/2", sc.Alerts, sc.TruePositives)
	}
	if !approx(sc.Precision, 1) || !approx(sc.Recall, 1) {
		t.Fatalf("precision/recall = %v/%v, want 1/1", sc.Precision, sc.Recall)
	}
	// Leads: onset 3 alerted at 1 (lead 2), onset 9 alerted at 7 (lead 2).
	if !approx(sc.MeanLead, 2) {
		t.Fatalf("mean lead = %v, want 2", sc.MeanLead)
	}
}

// TestEarlyWarnTooEarlyIsFalseAlarm: an alert farther than maxLead ahead
// of the onset is a false positive — foresight an operator cannot hold.
func TestEarlyWarnTooEarlyIsFalseAlarm(t *testing.T) {
	actual := []float64{0, 0, 0, 0, 1}
	predicted := []float64{1, 0, 0, 0, 0}
	sc, err := ScoreEarlyWarning(actual, predicted, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Alerts != 1 || sc.TruePositives != 0 {
		t.Fatalf("alerts/TP = %d/%d, want 1/0", sc.Alerts, sc.TruePositives)
	}
	if !approx(sc.Precision, 0) {
		t.Fatalf("precision = %v, want 0", sc.Precision)
	}
	if sc.Detected != 0 || !approx(sc.Recall, 0) {
		t.Fatalf("detected/recall = %d/%v, want 0/0", sc.Detected, sc.Recall)
	}
}

// TestEarlyWarnInEpisodeNotAlert: a threshold-crossing forecast made
// while the actual value is already over the line is not a pre-alert.
func TestEarlyWarnInEpisodeNotAlert(t *testing.T) {
	actual := []float64{0, 1, 1, 1, 0}
	predicted := []float64{0, 2, 2, 2, 0}
	sc, err := ScoreEarlyWarning(actual, predicted, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Alerts != 0 {
		t.Fatalf("alerts = %d, want 0 (all crossings were in-episode)", sc.Alerts)
	}
	if sc.Episodes != 1 || sc.Detected != 0 {
		t.Fatalf("episodes/detected = %d/%d, want 1/0", sc.Episodes, sc.Detected)
	}
}

// TestEarlyWarnSilenceAndCalm pin the degenerate conventions: no alerts
// means precision 1, no episodes means recall 1.
func TestEarlyWarnSilenceAndCalm(t *testing.T) {
	calm := []float64{0, 0, 0, 0}
	sc, err := ScoreEarlyWarning(calm, calm, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sc.Precision, 1) || !approx(sc.Recall, 1) {
		t.Fatalf("precision/recall = %v/%v, want 1/1", sc.Precision, sc.Recall)
	}
	if sc.Episodes != 0 || sc.Alerts != 0 {
		t.Fatalf("episodes/alerts = %d/%d, want 0/0", sc.Episodes, sc.Alerts)
	}
}

// TestEarlyWarnEarliestLead: multiple in-window alerts for one onset use
// the earliest for the lead, and all count as true positives.
func TestEarlyWarnEarliestLead(t *testing.T) {
	actual := []float64{0, 0, 0, 0, 1}
	predicted := []float64{0, 1, 0, 1, 0}
	sc, err := ScoreEarlyWarning(actual, predicted, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Alerts != 2 || sc.TruePositives != 2 {
		t.Fatalf("alerts/TP = %d/%d, want 2/2", sc.Alerts, sc.TruePositives)
	}
	if !approx(sc.MeanLead, 3) { // onset 4, earliest alert 1
		t.Fatalf("mean lead = %v, want 3", sc.MeanLead)
	}
}

// TestEarlyWarnErrors: mismatched lengths and a non-positive horizon are
// rejected.
func TestEarlyWarnErrors(t *testing.T) {
	if _, err := ScoreEarlyWarning([]float64{1}, []float64{1, 2}, 1, 2); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := ScoreEarlyWarning([]float64{1}, []float64{1}, 1, 0); err == nil {
		t.Fatal("maxLead 0 accepted")
	}
}

// TestEarlyWarnCurve: sweeping the alert threshold down trades precision
// for alerts — the curve must hold the truth threshold fixed while only
// the trigger moves.
func TestEarlyWarnCurve(t *testing.T) {
	actual := []float64{0, 0, 0, 0, 1, 0, 0, 0}
	predicted := []float64{0, 0.6, 0, 0.6, 0, 0, 0.6, 0}
	pts, err := EarlyWarnCurve(actual, predicted, 1, []float64{0.5, 1.0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d, want 2", len(pts))
	}
	// At alert threshold 0.5 the 0.6 forecasts fire: three alerts, two in
	// window of the onset at t=4 (t=1 and t=3), one late false alarm at t=6.
	lo := pts[0]
	if lo.Alerts != 3 || lo.TruePositives != 2 || lo.Detected != 1 {
		t.Fatalf("low threshold: alerts/TP/detected = %d/%d/%d, want 3/2/1", lo.Alerts, lo.TruePositives, lo.Detected)
	}
	if !approx(lo.Precision, 2.0/3.0) {
		t.Fatalf("low threshold precision = %v, want 2/3", lo.Precision)
	}
	// At alert threshold 1.0 nothing fires: silent, precise, blind.
	hi := pts[1]
	if hi.Alerts != 0 || !approx(hi.Precision, 1) || !approx(hi.Recall, 0) {
		t.Fatalf("high threshold: alerts/precision/recall = %d/%v/%v, want 0/1/0", hi.Alerts, hi.Precision, hi.Recall)
	}
}
