package experiments

import (
	"testing"
)

// TestRunSurgeSmoke drives a reduced surge grid end to end: every regime
// gets a full candidate column, exactly one winner per regime, sane
// operator scores, and a populated cluster pass.
func TestRunSurgeSmoke(t *testing.T) {
	res, err := RunSurge(SurgeConfig{
		Seed:         3,
		Hours:        4,
		VMs:          4,
		ClusterRacks: 2,
		ClusterSteps: 24,
	})
	if err != nil {
		t.Fatal(err)
	}
	regimes := []string{"diurnal", "train-wave", "flash-crowd", "rack-burst"}
	if len(res.Winners) != len(regimes) {
		t.Fatalf("winners for %d regimes, want %d", len(res.Winners), len(regimes))
	}
	perRegime := make(map[string]int)
	winners := make(map[string]int)
	for _, c := range res.Cells {
		perRegime[c.Regime]++
		if c.Winner {
			winners[c.Regime]++
			if res.Winners[c.Regime] != c.Candidate {
				t.Fatalf("%s: winner cell %s disagrees with Winners map %s", c.Regime, c.Candidate, res.Winners[c.Regime])
			}
		}
		if c.Precision < 0 || c.Precision > 1 || c.Recall < 0 || c.Recall > 1 {
			t.Fatalf("%s/%s: precision %v recall %v out of [0,1]", c.Regime, c.Candidate, c.Precision, c.Recall)
		}
		if c.MSE < 0 || c.Threshold <= 0 {
			t.Fatalf("%s/%s: mse %v threshold %v", c.Regime, c.Candidate, c.MSE, c.Threshold)
		}
	}
	// The burst-extended pool: 2 ARIMA + 2 NARNET + Burst.
	for _, reg := range regimes {
		if perRegime[reg] != 5 {
			t.Fatalf("%s: %d cells, want 5", reg, perRegime[reg])
		}
		if winners[reg] != 1 {
			t.Fatalf("%s: %d winner cells, want exactly 1", reg, winners[reg])
		}
	}
	if res.Cluster == nil {
		t.Fatal("cluster pass missing")
	}
	cl := res.Cluster
	if cl.Racks != 2 || cl.Steps != 24 || cl.VMs == 0 {
		t.Fatalf("cluster shape = %d racks / %d steps / %d VMs", cl.Racks, cl.Steps, cl.VMs)
	}
	if cl.SurgeSteps <= 0 || cl.SurgeSteps > cl.Steps {
		t.Fatalf("cluster surge steps = %d of %d", cl.SurgeSteps, cl.Steps)
	}
	if cl.SurgeAlerts+cl.CalmAlerts != cl.ServerAlerts {
		t.Fatalf("alert split %d+%d != %d", cl.SurgeAlerts, cl.CalmAlerts, cl.ServerAlerts)
	}
}

// TestRunSurgeDeterministic: the grid is a pure function of its config.
func TestRunSurgeDeterministic(t *testing.T) {
	cfg := SurgeConfig{Seed: 5, Hours: 2, VMs: 2, SkipCluster: true}
	a, err := RunSurge(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSurge(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cells) != len(b.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(a.Cells), len(b.Cells))
	}
	for i := range a.Cells {
		if a.Cells[i] != b.Cells[i] {
			t.Fatalf("cell %d differs:\n%+v\n%+v", i, a.Cells[i], b.Cells[i])
		}
	}
}
