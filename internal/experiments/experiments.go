// Package experiments regenerates every figure of the paper's evaluation
// (Sec. VI): each FigNN function reproduces the corresponding plot's data
// series as a printable Table. EXPERIMENTS.md records how each measured
// shape compares to the published one.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is one figure's regenerated data: named columns and numeric rows.
type Table struct {
	Name    string // e.g. "Fig. 9"
	Title   string
	Columns []string
	Rows    [][]float64
	Notes   []string
}

// AddRow appends one data row. It panics on column-count mismatch to catch
// harness bugs early.
func (t *Table) AddRow(values ...float64) {
	if len(values) != len(t.Columns) {
		panic(fmt.Sprintf("experiments: row has %d values, table %q has %d columns",
			len(values), t.Name, len(t.Columns)))
	}
	t.Rows = append(t.Rows, values)
}

// WriteTo renders the table as aligned text.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.Name, t.Title)
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%18s", c)
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for _, v := range row {
			fmt.Fprintf(&b, "%18.4f", v)
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table as text.
func (t *Table) String() string {
	var sb strings.Builder
	if _, err := t.WriteTo(&sb); err != nil {
		return fmt.Sprintf("experiments: render %s: %v", t.Name, err)
	}
	return sb.String()
}

// Registry maps figure identifiers to their generators, for the benchfig
// CLI. Generators take a seed so runs are reproducible.
var Registry = map[string]func(seed int64) (*Table, error){
	"3":  Fig3RawCPU,
	"4":  Fig4RawIO,
	"5":  Fig5RawTraffic,
	"6":  Fig6ARIMA,
	"7":  Fig7NARNET,
	"8":  Fig8Combined,
	"9":  Fig9FatTreeBalancing,
	"10": Fig10BcubeBalancing,
	"11": Fig11FatTreeCost,
	"12": Fig12FatTreeSpace,
	"13": Fig13BcubeCost,
	"14": Fig14BcubeSpace,
}

// FigureIDs returns the registry keys in figure order.
func FigureIDs() []string {
	return []string{"3", "4", "5", "6", "7", "8", "9", "10", "11", "12", "13", "14"}
}
