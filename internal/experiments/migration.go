package experiments

import (
	"fmt"

	"sheriff/internal/sim"
)

// balancingSeries runs the Figs. 9/10 experiment: skewed initial load,
// 24 migration rounds, workload standard deviation per round.
func balancingSeries(kind sim.Kind, size int, seed int64) ([]float64, error) {
	s, err := sim.Build(sim.Config{Kind: kind, Size: size, Seed: seed})
	if err != nil {
		return nil, err
	}
	s.PopulateSkewed(0.5)
	return s.RunBalancing(24, 0.05)
}

// Fig9FatTreeBalancing regenerates Fig. 9: workload percentage standard
// deviation over 24 VM migration rounds on a Fat-Tree.
func Fig9FatTreeBalancing(seed int64) (*Table, error) {
	series, err := balancingSeries(sim.FatTree, 8, seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: Fig 9: %w", err)
	}
	t := &Table{
		Name:    "Fig. 9",
		Title:   "Sheriff on Fat-Tree: workload percentage std dev per migration round",
		Columns: []string{"round", "stddev_pct"},
		Notes:   []string{"Fat-Tree with 8 pods, skewed initial placement, 24 rounds"},
	}
	for i, sd := range series {
		t.AddRow(float64(i), sd)
	}
	return t, nil
}

// Fig10BcubeBalancing regenerates Fig. 10: the same decay on BCube.
func Fig10BcubeBalancing(seed int64) (*Table, error) {
	series, err := balancingSeries(sim.BCube, 8, seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: Fig 10: %w", err)
	}
	t := &Table{
		Name:    "Fig. 10",
		Title:   "Sheriff on BCube: workload percentage std dev per migration round",
		Columns: []string{"round", "stddev_pct"},
		Notes:   []string{"BCube(8,1): 64 server nodes, skewed initial placement, 24 rounds"},
	}
	for i, sd := range series {
		t.AddRow(float64(i), sd)
	}
	return t, nil
}

// FatTreePods is the Figs. 11–12 x-axis sweep (the paper plots 8→48; the
// default here stops at 24 to keep `go test` quick — the benchfig CLI and
// benches run the full sweep).
var FatTreePods = []int{8, 12, 16, 20, 24}

// FatTreePodsFull is the paper's full sweep for Figs. 11–12.
var FatTreePodsFull = []int{8, 16, 24, 32, 40, 48}

// BcubeSizes is the Figs. 13–14 x-axis sweep (switches per level; the
// paper's axis runs 2→20).
var BcubeSizes = []int{4, 8, 12, 16, 20}

// sweepCompare runs sim.Compare over a size sweep. VMsPerHost is raised
// above the default so regional pools experience mild contention — the
// regime where a centralized manager's wider view can undercut Sheriff.
func sweepCompare(kind sim.Kind, sizes []int, seed int64) ([]*sim.CompareResult, error) {
	out := make([]*sim.CompareResult, 0, len(sizes))
	for _, size := range sizes {
		r, err := sim.Compare(sim.Config{Kind: kind, Size: size, Seed: seed, VMsPerHost: 6})
		if err != nil {
			return nil, fmt.Errorf("experiments: compare %v size %d: %w", kind, size, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// Fig11FatTreeCost regenerates Fig. 11: total migration cost of Sheriff
// (APP) vs the global optimal centralized manager (OPT) on Fat-Tree.
func Fig11FatTreeCost(seed int64) (*Table, error) {
	results, err := sweepCompare(sim.FatTree, FatTreePods, seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name:    "Fig. 11",
		Title:   "Output: APP (Sheriff) vs OPT (global optimal) migration cost, Fat-Tree",
		Columns: []string{"pods", "sheriff_cost", "optimal_cost"},
		Notes:   []string{"5% of VMs per rack raise alerts; C_r=100, delta=eta=1, C_d=1"},
	}
	for i, r := range results {
		t.AddRow(float64(FatTreePods[i]), r.SheriffCost, r.CentralCost)
	}
	return t, nil
}

// Fig12FatTreeSpace regenerates Fig. 12: search space (candidate pairs
// examined) of Sheriff vs the centralized manager on Fat-Tree.
func Fig12FatTreeSpace(seed int64) (*Table, error) {
	results, err := sweepCompare(sim.FatTree, FatTreePods, seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name:    "Fig. 12",
		Title:   "Search space compare: Sheriff vs centralized manager, Fat-Tree",
		Columns: []string{"pods", "sheriff_space", "central_space"},
	}
	for i, r := range results {
		t.AddRow(float64(FatTreePods[i]), float64(r.SheriffSpace), float64(r.CentralSpace))
	}
	return t, nil
}

// Fig13BcubeCost regenerates Fig. 13: APP vs OPT migration cost on BCube.
func Fig13BcubeCost(seed int64) (*Table, error) {
	results, err := sweepCompare(sim.BCube, BcubeSizes, seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name:    "Fig. 13",
		Title:   "Output: APP (Sheriff) vs OPT (global optimal) migration cost, BCube",
		Columns: []string{"switches_per_level", "sheriff_cost", "optimal_cost"},
	}
	for i, r := range results {
		t.AddRow(float64(BcubeSizes[i]), r.SheriffCost, r.CentralCost)
	}
	return t, nil
}

// Fig14BcubeSpace regenerates Fig. 14: search space on BCube.
func Fig14BcubeSpace(seed int64) (*Table, error) {
	results, err := sweepCompare(sim.BCube, BcubeSizes, seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name:    "Fig. 14",
		Title:   "Search space compare: Sheriff vs centralized manager, BCube",
		Columns: []string{"switches_per_level", "sheriff_space", "central_space"},
	}
	for i, r := range results {
		t.AddRow(float64(BcubeSizes[i]), float64(r.SheriffSpace), float64(r.CentralSpace))
	}
	return t, nil
}
