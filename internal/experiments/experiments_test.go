package experiments

import (
	"strings"
	"testing"
)

const testSeed = 20150707 // deterministic seed used across figure tests

func TestTableAddRowPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tab := &Table{Name: "x", Columns: []string{"a", "b"}}
	tab.AddRow(1)
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Name: "Fig. 0", Title: "demo", Columns: []string{"x", "y"}}
	tab.AddRow(1, 2)
	tab.Notes = append(tab.Notes, "note")
	out := tab.String()
	if !strings.Contains(out, "Fig. 0") || !strings.Contains(out, "demo") ||
		!strings.Contains(out, "# note") {
		t.Fatalf("render = %q", out)
	}
}

func TestRegistryComplete(t *testing.T) {
	for _, id := range FigureIDs() {
		if Registry[id] == nil {
			t.Errorf("figure %s missing from registry", id)
		}
	}
	if len(Registry) != len(FigureIDs()) {
		t.Errorf("registry has %d entries, FigureIDs %d", len(Registry), len(FigureIDs()))
	}
}

func TestFig3RawCPU(t *testing.T) {
	tab, err := Fig3RawCPU(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range tab.Rows {
		if row[1] < 0 || row[1] > 100 {
			t.Fatalf("CPU out of range: %v", row)
		}
	}
}

func TestFig4RawIO(t *testing.T) {
	tab, err := Fig4RawIO(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[1] < 0 {
			t.Fatalf("negative I/O: %v", row)
		}
	}
}

func TestFig5RawTraffic(t *testing.T) {
	tab, err := Fig5RawTraffic(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7*64 {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), 7*64)
	}
}

func TestFig6ARIMAPredictsWell(t *testing.T) {
	tab, err := Fig6ARIMA(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	// Compute relative error magnitude: predictions should track the
	// signal (paper: "the model performs well").
	var sumAbsErr, sumAbs float64
	for _, row := range tab.Rows {
		actual, errv := row[1], row[3]
		sumAbsErr += abs(errv)
		sumAbs += abs(actual)
	}
	if sumAbsErr/sumAbs > 0.25 {
		t.Fatalf("ARIMA mean relative error %.2f%% too large", 100*sumAbsErr/sumAbs)
	}
}

func TestFig7NARNETPredictsWell(t *testing.T) {
	tab, err := Fig7NARNET(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	var sumAbsErr, sumAbs float64
	for _, row := range tab.Rows {
		sumAbsErr += abs(row[3])
		sumAbs += abs(row[1])
	}
	if sumAbsErr/sumAbs > 0.25 {
		t.Fatalf("NARNET mean relative error %.2f%% too large", 100*sumAbsErr/sumAbs)
	}
}

func TestFig8CombinedNotWorseThanWorstModel(t *testing.T) {
	combined, arimaMSE, narnetMSE, err := PredictionMSEs(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	worst := arimaMSE
	if narnetMSE > worst {
		worst = narnetMSE
	}
	if combined > worst+1e-9 {
		t.Fatalf("combined MSE %.4f worse than worst single %.4f", combined, worst)
	}
	// The paper's claim: the combination achieves a smaller error. Allow
	// it to tie the best model within 25% (selection lag costs a little).
	best := arimaMSE
	if narnetMSE < best {
		best = narnetMSE
	}
	if combined > 1.25*best {
		t.Fatalf("combined MSE %.4f much worse than best single %.4f", combined, best)
	}
}

func TestFig9StdDevDecreases(t *testing.T) {
	tab, err := Fig9FatTreeBalancing(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 25 {
		t.Fatalf("rows = %d, want 25", len(tab.Rows))
	}
	first, last := tab.Rows[0][1], tab.Rows[len(tab.Rows)-1][1]
	if last >= first {
		t.Fatalf("stddev did not fall: %.2f -> %.2f", first, last)
	}
}

func TestFig10StdDevDecreases(t *testing.T) {
	tab, err := Fig10BcubeBalancing(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	first, last := tab.Rows[0][1], tab.Rows[len(tab.Rows)-1][1]
	if last >= first {
		t.Fatalf("stddev did not fall: %.2f -> %.2f", first, last)
	}
}

func TestFig11And12Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep experiment")
	}
	tab, err := Fig11FatTreeCost(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	// Cost grows with pod count; Sheriff and the optimal manager stay
	// within a few percent of each other (the near-coincident curves of
	// the paper's Fig. 11).
	for i, row := range tab.Rows {
		sheriff, opt := row[1], row[2]
		if sheriff > 1.10*opt || opt > 1.10*sheriff {
			t.Errorf("row %d: Sheriff %.1f and optimal %.1f diverge beyond 10%%", i, sheriff, opt)
		}
	}
	firstOpt, lastOpt := tab.Rows[0][2], tab.Rows[len(tab.Rows)-1][2]
	if lastOpt <= firstOpt {
		t.Errorf("optimal cost should grow with pods: %.1f -> %.1f", firstOpt, lastOpt)
	}

	tab12, err := Fig12FatTreeSpace(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range tab12.Rows {
		if row[1] >= row[2] {
			t.Errorf("row %d: Sheriff space %.0f not below central %.0f", i, row[1], row[2])
		}
	}
	// The regional/global gap must widen with scale.
	firstGap := tab12.Rows[0][2] / tab12.Rows[0][1]
	lastGap := tab12.Rows[len(tab12.Rows)-1][2] / tab12.Rows[len(tab12.Rows)-1][1]
	if lastGap <= firstGap {
		t.Errorf("search-space ratio should widen: %.1f -> %.1f", firstGap, lastGap)
	}
}

func TestFig13And14Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep experiment")
	}
	tab, err := Fig13BcubeCost(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range tab.Rows {
		sheriff, opt := row[1], row[2]
		if sheriff > 1.10*opt || opt > 1.10*sheriff {
			t.Errorf("row %d: Sheriff %.1f and optimal %.1f diverge beyond 10%%", i, sheriff, opt)
		}
	}
	tab14, err := Fig14BcubeSpace(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range tab14.Rows {
		if row[1] >= row[2] {
			t.Errorf("row %d: Sheriff space %.0f not below central %.0f", i, row[1], row[2])
		}
	}
}

func TestAblationSwapSize(t *testing.T) {
	tab, err := AblationSwapSize(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Guarantee column must be 5, 4, 3.67 and cost non-increasing in p is
	// not guaranteed pointwise, but cost must stay within the p=1 bound.
	if tab.Rows[0][2] != 5 || tab.Rows[1][2] != 4 {
		t.Fatalf("guarantee ratios wrong: %v", tab.Rows)
	}
}

func TestAblationModelSelection(t *testing.T) {
	tab, err := AblationModelSelection(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestAblationPrioritySelection(t *testing.T) {
	tab, err := AblationPrioritySelection(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Knapsack must shed at least as much capacity as the naive policy.
	if tab.Rows[0][1] < tab.Rows[1][1]-1e-9 {
		t.Errorf("knapsack shed %.1f < naive %.1f", tab.Rows[0][1], tab.Rows[1][1])
	}
}

func TestAblationRegionSize(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep experiment")
	}
	tab, err := AblationRegionSize(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Search space is non-decreasing in region radius, and strictly larger
	// once the region crosses pods (1 hop = pod peers, 3 hops = all racks;
	// 2 hops equals 1 in a Fat-Tree because cores sit between pods).
	if tab.Rows[0][1] > tab.Rows[1][1] || tab.Rows[1][1] > tab.Rows[2][1] {
		t.Errorf("search space decreased with hops: %v", tab.Rows)
	}
	if tab.Rows[2][1] <= tab.Rows[0][1] {
		t.Errorf("3-hop region should exceed 1-hop: %v", tab.Rows)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestAblationSeasonal(t *testing.T) {
	tab, err := AblationSeasonal(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// AIC must favor the seasonal fit on this strongly periodic series.
	if tab.Rows[1][2] >= tab.Rows[0][2] {
		t.Errorf("SARIMA AIC %.1f not below ARIMA %.1f", tab.Rows[1][2], tab.Rows[0][2])
	}
}

func TestAblationReroute(t *testing.T) {
	if testing.Short() {
		t.Skip("runtime experiment")
	}
	tab, err := AblationReroute(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	on, off := tab.Rows[0][1], tab.Rows[1][1]
	if on > off {
		t.Errorf("reroute increased hot exposure: %v vs %v", on, off)
	}
}

func TestAblationPlacement(t *testing.T) {
	if testing.Short() {
		t.Skip("runtime experiment")
	}
	tab, err := AblationPlacement(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Worst-fit (row 2) must start far more balanced than best-fit (row 1).
	if tab.Rows[2][1] >= tab.Rows[1][1] {
		t.Errorf("worst-fit initial stddev %.1f not below best-fit %.1f",
			tab.Rows[2][1], tab.Rows[1][1])
	}
}

func TestAblationKMedianPlanning(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep experiment")
	}
	tab, err := AblationKMedianPlanning(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	matching, planned := tab.Rows[0], tab.Rows[1]
	// Planning must concentrate destinations on fewer racks.
	if planned[3] >= matching[3] {
		t.Errorf("planned dest racks %.0f not below matching's %.0f", planned[3], matching[3])
	}
	// And its cost premium over free-form matching stays moderate.
	if planned[1] > 1.5*matching[1] {
		t.Errorf("planning cost %.1f far above matching %.1f", planned[1], matching[1])
	}
}
