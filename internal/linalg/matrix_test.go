package linalg

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(2, 3)
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != 0 {
				t.Fatal("new matrix not zeroed")
			}
		}
	}
}

func TestNewMatrixPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(-1, 2)
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatal("FromRows layout wrong")
	}
	if _, err := FromRows([][]float64{{1}, {2, 3}}); err == nil {
		t.Error("ragged rows should error")
	}
	empty, err := FromRows(nil)
	if err != nil || empty.Rows != 0 {
		t.Error("empty FromRows should return 0x0")
	}
}

func TestSetAtClone(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(1, 1, 7)
	c := m.Clone()
	c.Set(1, 1, 9)
	if m.At(1, 1) != 7 {
		t.Fatal("Clone shares storage")
	}
}

func TestTranspose(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Fatal("Transpose wrong")
	}
}

func TestMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
	if _, err := a.Mul(NewMatrix(3, 3)); err == nil {
		t.Error("dimension mismatch should error")
	}
}

func TestMulVec(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	v, err := a.MulVec([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 3 || v[1] != 7 {
		t.Fatalf("MulVec = %v", v)
	}
	if _, err := a.MulVec([]float64{1}); err == nil {
		t.Error("dimension mismatch should error")
	}
}

func TestSolveKnownSystem(t *testing.T) {
	a, _ := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := Solve(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-10 || math.Abs(x[1]-3) > 1e-10 {
		t.Fatalf("Solve = %v, want [1 3]", x)
	}
}

func TestSolveRequiresPivoting(t *testing.T) {
	// Leading zero forces a row swap.
	a, _ := FromRows([][]float64{{0, 1}, {1, 0}})
	x, err := Solve(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 3 || x[1] != 2 {
		t.Fatalf("Solve = %v, want [3 2]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func TestSolveShapeErrors(t *testing.T) {
	if _, err := Solve(NewMatrix(2, 3), []float64{1, 2}); err == nil {
		t.Error("non-square should error")
	}
	if _, err := Solve(NewMatrix(2, 2), []float64{1}); err == nil {
		t.Error("bad rhs length should error")
	}
}

func TestLeastSquaresExactFit(t *testing.T) {
	// y = 2 + 3x, fit with design [1, x].
	x, _ := FromRows([][]float64{{1, 0}, {1, 1}, {1, 2}, {1, 3}})
	y := []float64{2, 5, 8, 11}
	beta, err := LeastSquares(x, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(beta[0]-2) > 1e-8 || math.Abs(beta[1]-3) > 1e-8 {
		t.Fatalf("beta = %v, want [2 3]", beta)
	}
}

func TestLeastSquaresNoisyFit(t *testing.T) {
	x, _ := FromRows([][]float64{{1, 0}, {1, 1}, {1, 2}, {1, 3}, {1, 4}})
	y := []float64{1.1, 2.9, 5.2, 6.8, 9.1}
	beta, err := LeastSquares(x, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(beta[1]-2) > 0.2 {
		t.Fatalf("slope = %v, want ≈ 2", beta[1])
	}
}

func TestLeastSquaresUnderdetermined(t *testing.T) {
	if _, err := LeastSquares(NewMatrix(1, 2), []float64{1}, 0); err == nil {
		t.Fatal("underdetermined should error")
	}
}

func TestLeastSquaresCollinearFallsBackToRidge(t *testing.T) {
	// Perfectly collinear columns: pure OLS is singular; the automatic
	// ridge retry should still return a finite solution.
	x, _ := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	beta, err := LeastSquares(x, []float64{2, 4, 6}, 0)
	if err != nil {
		t.Fatalf("ridge fallback failed: %v", err)
	}
	for _, b := range beta {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			t.Fatalf("non-finite beta %v", beta)
		}
	}
}

func TestDotAndNorm(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Error("Dot wrong")
	}
	if Norm2([]float64{3, 4}) != 5 {
		t.Error("Norm2 wrong")
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

// Property: Solve(A, A·x) returns x for random well-conditioned A.
func TestSolveRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := int(seed%4+2) % 6
		if n < 2 {
			n = 2
		}
		a := NewMatrix(n, n)
		s := seed
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(s%1000)/100 - 5
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, next())
			}
			a.Set(i, i, a.At(i, i)+10) // diagonal dominance => well-conditioned
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = next()
		}
		b, err := a.MulVec(x)
		if err != nil {
			return false
		}
		got, err := Solve(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: (Aᵀ)ᵀ = A.
func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(rows, cols uint8, vals []float64) bool {
		r, c := int(rows%5)+1, int(cols%5)+1
		m := NewMatrix(r, c)
		for i := range m.Data {
			if i < len(vals) {
				m.Data[i] = vals[i]
			}
		}
		tt := m.Transpose().Transpose()
		if tt.Rows != m.Rows || tt.Cols != m.Cols {
			return false
		}
		for i := range m.Data {
			v1, v2 := m.Data[i], tt.Data[i]
			if v1 != v2 && !(math.IsNaN(v1) && math.IsNaN(v2)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
