// Package linalg provides the small dense linear-algebra kernel used by the
// ARIMA estimators (ordinary least squares via normal equations) and by the
// NARNET trainer. It is deliberately minimal: row-major dense matrices,
// Gaussian elimination with partial pivoting, and least-squares solving.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix allocates a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("linalg: ragged rows: row %d has %d cols, want %d", i, len(r), cols)
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns m·other.
func (m *Matrix) Mul(other *Matrix) (*Matrix, error) {
	if m.Cols != other.Rows {
		return nil, fmt.Errorf("linalg: dimension mismatch %dx%d · %dx%d", m.Rows, m.Cols, other.Rows, other.Cols)
	}
	out := NewMatrix(m.Rows, other.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			rowOut := out.Data[i*out.Cols : (i+1)*out.Cols]
			rowB := other.Data[k*other.Cols : (k+1)*other.Cols]
			for j := range rowB {
				rowOut[j] += a * rowB[j]
			}
		}
	}
	return out, nil
}

// MulVec returns m·v.
func (m *Matrix) MulVec(v []float64) ([]float64, error) {
	if m.Cols != len(v) {
		return nil, fmt.Errorf("linalg: dimension mismatch %dx%d · vec(%d)", m.Rows, m.Cols, len(v))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		sum := 0.0
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, x := range v {
			sum += row[j] * x
		}
		out[i] = sum
	}
	return out, nil
}

// ErrSingular indicates the coefficient matrix is (numerically) singular.
var ErrSingular = errors.New("linalg: singular matrix")

// Solve solves the square system A·x = b by Gaussian elimination with
// partial pivoting. A and b are not modified.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("linalg: Solve needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("linalg: rhs length %d, want %d", len(b), n)
	}
	// Augmented working copy.
	aug := make([][]float64, n)
	for i := 0; i < n; i++ {
		aug[i] = make([]float64, n+1)
		copy(aug[i], a.Data[i*n:(i+1)*n])
		aug[i][n] = b[i]
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(aug[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(aug[r][col]); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		aug[col], aug[pivot] = aug[pivot], aug[col]
		pv := aug[col][col]
		for r := col + 1; r < n; r++ {
			f := aug[r][col] / pv
			if f == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				aug[r][c] -= f * aug[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := aug[i][n]
		for j := i + 1; j < n; j++ {
			sum -= aug[i][j] * x[j]
		}
		x[i] = sum / aug[i][i]
	}
	return x, nil
}

// LeastSquares solves min ‖X·β − y‖² via the regularized normal equations
// (XᵀX + ridge·I)β = Xᵀy. A tiny default ridge keeps near-collinear ARIMA
// design matrices solvable; pass ridge = 0 for pure OLS.
func LeastSquares(x *Matrix, y []float64, ridge float64) ([]float64, error) {
	if x.Rows != len(y) {
		return nil, fmt.Errorf("linalg: design has %d rows, response has %d", x.Rows, len(y))
	}
	if x.Rows < x.Cols {
		return nil, fmt.Errorf("linalg: underdetermined system (%d rows, %d cols)", x.Rows, x.Cols)
	}
	xt := x.Transpose()
	xtx, err := xt.Mul(x)
	if err != nil {
		return nil, err
	}
	if ridge > 0 {
		for i := 0; i < xtx.Rows; i++ {
			xtx.Set(i, i, xtx.At(i, i)+ridge)
		}
	}
	xty, err := xt.MulVec(y)
	if err != nil {
		return nil, err
	}
	beta, err := Solve(xtx, xty)
	if err != nil && errors.Is(err, ErrSingular) && ridge == 0 {
		// Retry once with a small ridge before giving up.
		return LeastSquares(x, y, 1e-8)
	}
	return beta, err
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	sum := 0.0
	for i := range a {
		sum += a[i] * b[i]
	}
	return sum
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	return math.Sqrt(Dot(v, v))
}
