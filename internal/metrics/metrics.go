// Package metrics provides streaming summaries for simulation and runtime
// reporting: constant-memory mean/variance (Welford), min/max, and the P²
// algorithm for quantile estimation without storing observations. The
// long-running shim daemons report tail latencies and load percentiles
// from these.
package metrics

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Summary accumulates count, mean, variance (Welford's online algorithm),
// min and max. The zero value is ready to use.
type Summary struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Observe adds one observation.
func (s *Summary) Observe(v float64) {
	if s.n == 0 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	s.n++
	d := v - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (v - s.mean)
}

// Count returns the number of observations.
func (s *Summary) Count() int { return s.n }

// Mean returns the running mean (0 when empty).
func (s *Summary) Mean() float64 { return s.mean }

// Variance returns the population variance (0 with fewer than 2 points).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n)
}

// Std returns the population standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation (+Inf when empty).
func (s *Summary) Min() float64 {
	if s.n == 0 {
		return math.Inf(1)
	}
	return s.min
}

// Max returns the largest observation (−Inf when empty).
func (s *Summary) Max() float64 {
	if s.n == 0 {
		return math.Inf(-1)
	}
	return s.max
}

// String renders the summary compactly.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g max=%.4g",
		s.n, s.Mean(), s.Std(), s.Min(), s.Max())
}

// Quantile estimates a single quantile in O(1) memory with the P²
// algorithm (Jain & Chlamtac 1985): five markers track the running
// quantile via piecewise-parabolic interpolation.
type Quantile struct {
	p       float64
	count   int
	heights [5]float64 // marker heights
	pos     [5]float64 // actual marker positions (1-based)
	want    [5]float64 // desired marker positions
	inc     [5]float64 // desired-position increments
	initial []float64  // first five observations, before initialization
}

// NewQuantile builds an estimator for the p-quantile, p in (0,1).
func NewQuantile(p float64) (*Quantile, error) {
	if p <= 0 || p >= 1 {
		return nil, errors.New("metrics: quantile must be in (0,1)")
	}
	q := &Quantile{p: p}
	q.want = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
	q.inc = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return q, nil
}

// Observe adds one observation.
func (q *Quantile) Observe(v float64) {
	q.count++
	if len(q.initial) < 5 {
		q.initial = append(q.initial, v)
		if len(q.initial) == 5 {
			sort.Float64s(q.initial)
			for i := 0; i < 5; i++ {
				q.heights[i] = q.initial[i]
				q.pos[i] = float64(i + 1)
			}
		}
		return
	}
	// Find cell k such that heights[k] <= v < heights[k+1].
	var k int
	switch {
	case v < q.heights[0]:
		q.heights[0] = v
		k = 0
	case v >= q.heights[4]:
		q.heights[4] = v
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if v < q.heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		q.pos[i]++
	}
	for i := 0; i < 5; i++ {
		q.want[i] += q.inc[i]
	}
	// Adjust interior markers.
	for i := 1; i <= 3; i++ {
		d := q.want[i] - q.pos[i]
		if (d >= 1 && q.pos[i+1]-q.pos[i] > 1) || (d <= -1 && q.pos[i-1]-q.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			h := q.parabolic(i, sign)
			if q.heights[i-1] < h && h < q.heights[i+1] {
				q.heights[i] = h
			} else {
				q.heights[i] = q.linear(i, sign)
			}
			q.pos[i] += sign
		}
	}
}

func (q *Quantile) parabolic(i int, d float64) float64 {
	return q.heights[i] + d/(q.pos[i+1]-q.pos[i-1])*
		((q.pos[i]-q.pos[i-1]+d)*(q.heights[i+1]-q.heights[i])/(q.pos[i+1]-q.pos[i])+
			(q.pos[i+1]-q.pos[i]-d)*(q.heights[i]-q.heights[i-1])/(q.pos[i]-q.pos[i-1]))
}

func (q *Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return q.heights[i] + d*(q.heights[j]-q.heights[i])/(q.pos[j]-q.pos[i])
}

// Value returns the current quantile estimate. With fewer than five
// observations it interpolates the sorted buffer directly.
func (q *Quantile) Value() float64 {
	if q.count == 0 {
		return math.NaN()
	}
	if len(q.initial) < 5 {
		buf := append([]float64(nil), q.initial...)
		sort.Float64s(buf)
		idx := q.p * float64(len(buf)-1)
		lo := int(idx)
		hi := lo + 1
		if hi >= len(buf) {
			return buf[len(buf)-1]
		}
		frac := idx - float64(lo)
		return buf[lo]*(1-frac) + buf[hi]*frac
	}
	return q.heights[2]
}

// Count returns the number of observations.
func (q *Quantile) Count() int { return q.count }

// Histogram is a fixed-bucket histogram over [Lo, Hi); out-of-range
// observations land in the under/overflow counters.
type Histogram struct {
	Lo, Hi    float64
	buckets   []int
	underflow int
	overflow  int
	total     int
}

// NewHistogram builds a histogram with n equal buckets over [lo, hi).
func NewHistogram(lo, hi float64, n int) (*Histogram, error) {
	if n < 1 {
		return nil, errors.New("metrics: need at least 1 bucket")
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("metrics: invalid range [%v, %v)", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, buckets: make([]int, n)}, nil
}

// Observe adds one observation.
func (h *Histogram) Observe(v float64) {
	h.total++
	switch {
	case v < h.Lo:
		h.underflow++
	case v >= h.Hi:
		h.overflow++
	default:
		idx := int((v - h.Lo) / (h.Hi - h.Lo) * float64(len(h.buckets)))
		if idx >= len(h.buckets) {
			idx = len(h.buckets) - 1
		}
		h.buckets[idx]++
	}
}

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) int { return h.buckets[i] }

// NumBuckets returns the bucket count.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// Total returns the total observations (including out-of-range).
func (h *Histogram) Total() int { return h.total }

// OutOfRange returns the underflow and overflow counts.
func (h *Histogram) OutOfRange() (under, over int) { return h.underflow, h.overflow }
