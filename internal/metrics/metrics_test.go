package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Count() != 0 || s.Mean() != 0 || s.Variance() != 0 {
		t.Fatal("zero value not empty")
	}
	if !math.IsInf(s.Min(), 1) || !math.IsInf(s.Max(), -1) {
		t.Fatal("empty min/max wrong")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Observe(v)
	}
	if s.Count() != 8 {
		t.Fatalf("Count = %d", s.Count())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if math.Abs(s.Variance()-4) > 1e-12 {
		t.Fatalf("Variance = %v", s.Variance())
	}
	if math.Abs(s.Std()-2) > 1e-12 {
		t.Fatalf("Std = %v", s.Std())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if !strings.Contains(s.String(), "n=8") {
		t.Fatalf("String = %q", s.String())
	}
}

// Property: Welford matches the two-pass computation.
func TestSummaryMatchesTwoPassProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var vals []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e9 {
				vals = append(vals, v)
			}
		}
		if len(vals) < 2 {
			return true
		}
		var s Summary
		mean := 0.0
		for _, v := range vals {
			s.Observe(v)
			mean += v
		}
		mean /= float64(len(vals))
		variance := 0.0
		for _, v := range vals {
			d := v - mean
			variance += d * d
		}
		variance /= float64(len(vals))
		scale := math.Max(1, math.Abs(mean))
		return math.Abs(s.Mean()-mean) < 1e-6*scale &&
			math.Abs(s.Variance()-variance) < 1e-4*math.Max(1, variance)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNewQuantileValidation(t *testing.T) {
	for _, p := range []float64{0, 1, -0.1, 1.5} {
		if _, err := NewQuantile(p); err == nil {
			t.Errorf("p=%v accepted", p)
		}
	}
}

func TestQuantileEmpty(t *testing.T) {
	q, err := NewQuantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(q.Value()) {
		t.Fatal("empty estimator should be NaN")
	}
}

func TestQuantileSmallSampleExact(t *testing.T) {
	q, err := NewQuantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	q.Observe(3)
	q.Observe(1)
	q.Observe(2)
	if math.Abs(q.Value()-2) > 1e-12 {
		t.Fatalf("median of {1,2,3} = %v", q.Value())
	}
}

func TestQuantileMedianUniform(t *testing.T) {
	q, err := NewQuantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		q.Observe(rng.Float64())
	}
	if math.Abs(q.Value()-0.5) > 0.02 {
		t.Fatalf("uniform median estimate = %v", q.Value())
	}
	if q.Count() != 20000 {
		t.Fatalf("Count = %d", q.Count())
	}
}

func TestQuantileP95Normal(t *testing.T) {
	q, err := NewQuantile(0.95)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	var all []float64
	for i := 0; i < 20000; i++ {
		v := rng.NormFloat64()
		q.Observe(v)
		all = append(all, v)
	}
	sort.Float64s(all)
	exact := all[int(0.95*float64(len(all)))]
	if math.Abs(q.Value()-exact) > 0.08 {
		t.Fatalf("p95 estimate %v vs exact %v", q.Value(), exact)
	}
}

func TestQuantileExponentialTail(t *testing.T) {
	q, err := NewQuantile(0.99)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	var all []float64
	for i := 0; i < 30000; i++ {
		v := rng.ExpFloat64()
		q.Observe(v)
		all = append(all, v)
	}
	sort.Float64s(all)
	exact := all[int(0.99*float64(len(all)))]
	if math.Abs(q.Value()-exact)/exact > 0.1 {
		t.Fatalf("p99 estimate %v vs exact %v", q.Value(), exact)
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("0 buckets accepted")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("empty range accepted")
	}
}

func TestHistogramBucketing(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0, 1.9, 2, 5, 9.99, -1, 10, 42} {
		h.Observe(v)
	}
	if h.NumBuckets() != 5 {
		t.Fatalf("buckets = %d", h.NumBuckets())
	}
	if h.Bucket(0) != 2 { // 0 and 1.9
		t.Fatalf("bucket 0 = %d", h.Bucket(0))
	}
	if h.Bucket(1) != 1 { // 2
		t.Fatalf("bucket 1 = %d", h.Bucket(1))
	}
	if h.Bucket(2) != 1 { // 5
		t.Fatalf("bucket 2 = %d", h.Bucket(2))
	}
	if h.Bucket(4) != 1 { // 9.99
		t.Fatalf("bucket 4 = %d", h.Bucket(4))
	}
	under, over := h.OutOfRange()
	if under != 1 || over != 2 {
		t.Fatalf("under/over = %d/%d", under, over)
	}
	if h.Total() != 8 {
		t.Fatalf("total = %d", h.Total())
	}
}

// Property: histogram counts always sum to Total.
func TestHistogramConservationProperty(t *testing.T) {
	f := func(raw []float64) bool {
		h, err := NewHistogram(-10, 10, 7)
		if err != nil {
			return false
		}
		for _, v := range raw {
			if math.IsNaN(v) {
				continue
			}
			h.Observe(v)
		}
		sum := 0
		for i := 0; i < h.NumBuckets(); i++ {
			sum += h.Bucket(i)
		}
		u, o := h.OutOfRange()
		return sum+u+o == h.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
