// Package placement provides initial VM placement policies for a cluster:
// first-fit, best-fit, worst-fit, and random. Initial placement sets the
// starting imbalance that Sheriff's migration phase then corrects — the
// Figs. 9–10 experiments start from a deliberately bad placement; these
// policies give the library a principled way to create (or avoid) such
// states, and a baseline to compare the migration machinery against.
package placement

import (
	"errors"
	"fmt"
	"math/rand"

	"sheriff/internal/dcn"
)

// Policy selects a host for each incoming VM.
type Policy int

const (
	// FirstFit: the lowest-ID host with room.
	FirstFit Policy = iota
	// BestFit: the host with the least free capacity that still fits
	// (packs tightly; maximizes imbalance).
	BestFit
	// WorstFit: the host with the most free capacity (spreads load;
	// minimizes imbalance).
	WorstFit
	// Random: a uniformly random host with room.
	Random
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case FirstFit:
		return "first-fit"
	case BestFit:
		return "best-fit"
	case WorstFit:
		return "worst-fit"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ErrNoHost is returned when no host can take the VM.
var ErrNoHost = errors.New("placement: no host fits the VM")

// Placer assigns VMs to hosts under one policy.
type Placer struct {
	cluster *dcn.Cluster
	policy  Policy
	rng     *rand.Rand
}

// New builds a placer. The seed matters only for the Random policy.
func New(c *dcn.Cluster, policy Policy, seed int64) *Placer {
	return &Placer{cluster: c, policy: policy, rng: rand.New(rand.NewSource(seed))}
}

// Pick returns the host the policy selects for a VM of the given capacity
// (respecting dependency conflicts against the peer VM IDs), without
// placing anything.
func (p *Placer) Pick(capacity float64, peerIDs []int) (*dcn.Host, error) {
	fits := func(h *dcn.Host) bool {
		if h.Free() < capacity {
			return false
		}
		for _, resident := range h.VMs() {
			for _, peer := range peerIDs {
				if resident.ID == peer {
					return false
				}
			}
		}
		return true
	}
	hosts := p.cluster.Hosts()
	switch p.policy {
	case FirstFit:
		for _, h := range hosts {
			if fits(h) {
				return h, nil
			}
		}
	case BestFit:
		var best *dcn.Host
		for _, h := range hosts {
			if !fits(h) {
				continue
			}
			if best == nil || h.Free() < best.Free() {
				best = h
			}
		}
		if best != nil {
			return best, nil
		}
	case WorstFit:
		var best *dcn.Host
		for _, h := range hosts {
			if !fits(h) {
				continue
			}
			if best == nil || h.Free() > best.Free() {
				best = h
			}
		}
		if best != nil {
			return best, nil
		}
	case Random:
		var cands []*dcn.Host
		for _, h := range hosts {
			if fits(h) {
				cands = append(cands, h)
			}
		}
		if len(cands) > 0 {
			return cands[p.rng.Intn(len(cands))], nil
		}
	default:
		return nil, fmt.Errorf("placement: unknown policy %v", p.policy)
	}
	return nil, ErrNoHost
}

// Place creates and places one VM under the policy.
func (p *Placer) Place(capacity, value float64, delaySensitive bool) (*dcn.VM, error) {
	h, err := p.Pick(capacity, nil)
	if err != nil {
		return nil, err
	}
	return p.cluster.AddVM(h, capacity, value, delaySensitive)
}

// PlaceAll places a batch of VM capacities, returning the created VMs.
// It stops at the first failure, returning what was placed and the error.
func (p *Placer) PlaceAll(capacities []float64) ([]*dcn.VM, error) {
	out := make([]*dcn.VM, 0, len(capacities))
	for _, capy := range capacities {
		vm, err := p.Place(capy, 1, false)
		if err != nil {
			return out, fmt.Errorf("placement: after %d of %d: %w", len(out), len(capacities), err)
		}
		out = append(out, vm)
	}
	return out, nil
}
