// Package placement defines the pluggable destination-selection policies
// shared by initial VM placement and Sheriff's migration phase: one
// Policy vocabulary scores candidate hosts whether a VM is first entering
// the cluster (Placer) or being relocated by Alg. 3 (migrate.Migrate).
//
// The Sheriff policy reproduces the paper's behavior bit-exactly: pure
// Eqn. (1) migration cost under a hard capacity check. Best-fit packs
// tightly, worst-fit spreads load, and oversubscription relaxes the
// capacity check by a configurable factor — the policy spectrum the
// k8s-cluster-simulator exemplar compares (bestfit / worstfit / oversub /
// proposed) brought onto Sheriff's migration machinery.
package placement

import (
	"errors"
	"fmt"
	"math/rand"

	"sheriff/internal/dcn"
)

// Policy scores candidate destination hosts for one VM. Feasible gates
// the capacity rule (the Alg. 4 REQUEST check is routed through it, so an
// oversubscription policy relaxes the handshake too); Score ranks
// feasible candidates — lower wins. base is the context cost: the
// Eqn. (1) migration cost during migration, 0 at initial placement.
type Policy interface {
	// Name is the short stable identifier ("sheriff", "best-fit", ...).
	Name() string
	// Feasible reports whether the host can accept a VM of the given
	// capacity under this policy. Dependency conflicts are checked by the
	// caller; Feasible only owns the capacity rule.
	Feasible(capacity float64, h *dcn.Host) bool
	// Score ranks a feasible candidate; lower is better. Scores from one
	// policy are mutually comparable but carry no meaning across policies.
	Score(capacity float64, h *dcn.Host, base float64) float64
}

// Kind enumerates the built-in policies.
type Kind int

const (
	// Sheriff: the paper's rule — hard capacity check, pure migration
	// cost. The default; bit-exact with the pre-policy implementation.
	Sheriff Kind = iota
	// FirstFit: the lowest-ID host with room (score 0 everywhere; order
	// breaks ties). An initial-placement policy; degenerate for matching.
	FirstFit
	// BestFit: the host left with the least free capacity (packs tightly;
	// maximizes imbalance). Migration cost breaks ties.
	BestFit
	// WorstFit: the host left with the most free capacity (spreads load;
	// minimizes imbalance). Migration cost breaks ties.
	WorstFit
	// Oversub: Sheriff's scoring with the capacity check relaxed to
	// OversubFactor × host capacity (the exemplar's oversubscription
	// scheduler).
	Oversub
	// Random: a uniformly random host with room (initial placement only;
	// the Placer keeps its seeded selection).
	Random
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Sheriff:
		return "sheriff"
	case FirstFit:
		return "first-fit"
	case BestFit:
		return "best-fit"
	case WorstFit:
		return "worst-fit"
	case Oversub:
		return "oversub"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind resolves a policy name ("sheriff", "best-fit"/"bestfit", ...)
// to its Kind.
func ParseKind(name string) (Kind, error) {
	switch name {
	case "sheriff", "":
		return Sheriff, nil
	case "first-fit", "firstfit":
		return FirstFit, nil
	case "best-fit", "bestfit":
		return BestFit, nil
	case "worst-fit", "worstfit":
		return WorstFit, nil
	case "oversub", "oversubscription":
		return Oversub, nil
	case "random":
		return Random, nil
	default:
		return 0, fmt.Errorf("placement: unknown policy %q", name)
	}
}

// Kinds lists the matching-capable policies in grid order (Random is
// excluded: it is an initial-placement policy only).
func Kinds() []Kind { return []Kind{Sheriff, BestFit, WorstFit, Oversub} }

// DefaultOversubFactor is the capacity multiplier of the Oversub policy:
// a host may be committed to twice its nominal capacity, the exemplar
// scheduler's oversubscription setting.
const DefaultOversubFactor = 2.0

// PolicyOptions selects and tunes a policy. Zero fields mean "use the
// default" (the Sheriff policy; factor DefaultOversubFactor); negative or
// out-of-range values are Validate errors.
type PolicyOptions struct {
	Kind Kind
	// OversubFactor is the Oversub capacity multiplier (≥ 1; 0 = default).
	// Ignored by the other kinds.
	OversubFactor float64
	// Seed drives the Random policy's host choice; ignored otherwise.
	Seed int64
}

// Validate reports whether the options are usable. Zero values are
// accepted (they mean "use the default").
func (o PolicyOptions) Validate() error {
	if o.Kind < Sheriff || o.Kind > Random {
		return fmt.Errorf("placement: unknown policy kind %d", int(o.Kind))
	}
	if o.OversubFactor != 0 && o.OversubFactor < 1 {
		return fmt.Errorf("placement: OversubFactor must be >= 1 (0 = default), got %v", o.OversubFactor)
	}
	return nil
}

// WithDefaults returns o with zero fields replaced by their defaults.
func (o PolicyOptions) WithDefaults() PolicyOptions {
	if o.OversubFactor == 0 {
		o.OversubFactor = DefaultOversubFactor
	}
	return o
}

// New builds the policy the options select.
func (o PolicyOptions) New() (Policy, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	o = o.WithDefaults()
	switch o.Kind {
	case Sheriff:
		return sheriffPolicy{}, nil
	case FirstFit:
		return firstFitPolicy{}, nil
	case BestFit:
		return bestFitPolicy{}, nil
	case WorstFit:
		return worstFitPolicy{}, nil
	case Oversub:
		return oversubPolicy{factor: o.OversubFactor}, nil
	case Random:
		return &randomPolicy{rng: rand.New(rand.NewSource(o.Seed))}, nil
	default:
		return nil, fmt.Errorf("placement: unknown policy kind %d", int(o.Kind))
	}
}

// fits is the hard capacity rule shared by every non-oversubscribing
// policy — identical to the pre-policy check, so the Sheriff policy stays
// bit-exact.
func fits(capacity float64, h *dcn.Host) bool { return h.Free() >= capacity }

// costTiebreak folds the base cost into a capacity-driven score without
// letting it reorder the capacity ranking (free capacities are O(host
// capacity); costs can be orders of magnitude larger).
const costTiebreak = 1e-6

type sheriffPolicy struct{}

func (sheriffPolicy) Name() string                                       { return "sheriff" }
func (sheriffPolicy) Feasible(c float64, h *dcn.Host) bool               { return fits(c, h) }
func (sheriffPolicy) Score(_ float64, _ *dcn.Host, base float64) float64 { return base }

type firstFitPolicy struct{}

func (firstFitPolicy) Name() string                              { return "first-fit" }
func (firstFitPolicy) Feasible(c float64, h *dcn.Host) bool      { return fits(c, h) }
func (firstFitPolicy) Score(float64, *dcn.Host, float64) float64 { return 0 }

type bestFitPolicy struct{}

func (bestFitPolicy) Name() string                         { return "best-fit" }
func (bestFitPolicy) Feasible(c float64, h *dcn.Host) bool { return fits(c, h) }
func (bestFitPolicy) Score(c float64, h *dcn.Host, base float64) float64 {
	return (h.Free() - c) + costTiebreak*base
}

type worstFitPolicy struct{}

func (worstFitPolicy) Name() string                         { return "worst-fit" }
func (worstFitPolicy) Feasible(c float64, h *dcn.Host) bool { return fits(c, h) }
func (worstFitPolicy) Score(c float64, h *dcn.Host, base float64) float64 {
	return -(h.Free() - c) + costTiebreak*base
}

type oversubPolicy struct{ factor float64 }

func (oversubPolicy) Name() string { return "oversub" }
func (p oversubPolicy) Feasible(c float64, h *dcn.Host) bool {
	return h.Used()+c <= p.factor*h.Capacity
}

// Factor exposes the capacity multiplier so commit paths (dcn.MoveOversub)
// can relax the placement constraint to match Feasible.
func (p oversubPolicy) Factor() float64                                  { return p.factor }
func (oversubPolicy) Score(_ float64, _ *dcn.Host, base float64) float64 { return base }

type randomPolicy struct{ rng *rand.Rand }

func (*randomPolicy) Name() string                                { return "random" }
func (*randomPolicy) Feasible(c float64, h *dcn.Host) bool        { return fits(c, h) }
func (p *randomPolicy) Score(float64, *dcn.Host, float64) float64 { return p.rng.Float64() }

// ErrNoHost is returned when no host can take the VM.
var ErrNoHost = errors.New("placement: no host fits the VM")

// Placer assigns incoming VMs to hosts under one policy. Initial
// placement sets the starting imbalance that Sheriff's migration phase
// then corrects — the Figs. 9–10 experiments start from a deliberately
// bad placement; these policies give the library a principled way to
// create (or avoid) such states.
type Placer struct {
	cluster *dcn.Cluster
	kind    Kind
	policy  Policy
	err     error
	rng     *rand.Rand
}

// New builds a placer. The seed matters only for the Random policy. An
// unknown kind is reported by the first Pick/Place call.
func New(c *dcn.Cluster, kind Kind, seed int64) *Placer {
	pol, err := PolicyOptions{Kind: kind, Seed: seed}.New()
	return &Placer{cluster: c, kind: kind, policy: pol, err: err, rng: rand.New(rand.NewSource(seed))}
}

// Policy returns the scoring policy the placer selects with.
func (p *Placer) Policy() Policy { return p.policy }

// Pick returns the host the policy selects for a VM of the given capacity
// (respecting dependency conflicts against the peer VM IDs), without
// placing anything. Hosts are scanned in ID order; the lowest-scoring
// feasible host wins, first host on ties — which reproduces the classic
// first-fit / best-fit / worst-fit selection rules exactly.
func (p *Placer) Pick(capacity float64, peerIDs []int) (*dcn.Host, error) {
	if p.err != nil {
		return nil, p.err
	}
	ok := func(h *dcn.Host) bool {
		if !p.policy.Feasible(capacity, h) {
			return false
		}
		for _, resident := range h.VMs() {
			for _, peer := range peerIDs {
				if resident.ID == peer {
					return false
				}
			}
		}
		return true
	}
	hosts := p.cluster.Hosts()
	if p.kind == Random {
		// Seeded uniform choice over the feasible set (not score-driven,
		// so the distribution is exactly uniform).
		var cands []*dcn.Host
		for _, h := range hosts {
			if ok(h) {
				cands = append(cands, h)
			}
		}
		if len(cands) == 0 {
			return nil, ErrNoHost
		}
		return cands[p.rng.Intn(len(cands))], nil
	}
	var best *dcn.Host
	bestScore := 0.0
	for _, h := range hosts {
		if !ok(h) {
			continue
		}
		if s := p.policy.Score(capacity, h, 0); best == nil || s < bestScore {
			best, bestScore = h, s
		}
	}
	if best == nil {
		return nil, ErrNoHost
	}
	return best, nil
}

// Place creates and places one VM under the policy.
func (p *Placer) Place(capacity, value float64, delaySensitive bool) (*dcn.VM, error) {
	h, err := p.Pick(capacity, nil)
	if err != nil {
		return nil, err
	}
	return p.cluster.AddVM(h, capacity, value, delaySensitive)
}

// PlaceAll places a batch of VM capacities, returning the created VMs.
// It stops at the first failure, returning what was placed and the error.
func (p *Placer) PlaceAll(capacities []float64) ([]*dcn.VM, error) {
	out := make([]*dcn.VM, 0, len(capacities))
	for _, capy := range capacities {
		vm, err := p.Place(capy, 1, false)
		if err != nil {
			return out, fmt.Errorf("placement: after %d of %d: %w", len(out), len(capacities), err)
		}
		out = append(out, vm)
	}
	return out, nil
}
