package placement

import (
	"errors"
	"testing"

	"sheriff/internal/dcn"
	"sheriff/internal/topology"
)

func testCluster(t *testing.T) *dcn.Cluster {
	t.Helper()
	ft, err := topology.NewFatTree(topology.FatTreeConfig{Pods: 4})
	if err != nil {
		t.Fatal(err)
	}
	c, err := dcn.NewCluster(ft.Graph, dcn.Config{HostsPerRack: 2, HostCapacity: 100, ToRCapacity: 200})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		Sheriff: "sheriff", FirstFit: "first-fit", BestFit: "best-fit",
		WorstFit: "worst-fit", Oversub: "oversub", Random: "random",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind should render")
	}
	for k, s := range want {
		got, err := ParseKind(s)
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind accepted bogus name")
	}
}

func TestPolicyScoring(t *testing.T) {
	c := testCluster(t)
	h := c.Hosts()[0]
	if _, err := c.AddVM(h, 60, 1, false); err != nil {
		t.Fatal(err)
	}
	for _, kind := range Kinds() {
		pol, err := PolicyOptions{Kind: kind}.New()
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if pol.Name() != kind.String() {
			t.Errorf("%v policy Name() = %q", kind, pol.Name())
		}
		if !pol.Feasible(40, h) {
			t.Errorf("%v: 40 should fit a 40-free host", kind)
		}
	}
	// The hard-capacity policies refuse 41 on the 40-free host; oversub
	// accepts up to factor×capacity.
	sheriff, _ := PolicyOptions{Kind: Sheriff}.New()
	if sheriff.Feasible(41, h) {
		t.Error("sheriff accepted an over-capacity VM")
	}
	over, _ := PolicyOptions{Kind: Oversub, OversubFactor: 1.5}.New()
	if !over.Feasible(41, h) || over.Feasible(100, h) {
		t.Error("oversub factor 1.5 should accept 41 but not 100 on a 60-used host")
	}
	// Sheriff scores are the raw base cost; best/worst-fit rank by free
	// capacity with the base as a tiebreak.
	if sheriff.Score(10, h, 7.5) != 7.5 {
		t.Error("sheriff score should be the base cost")
	}
	best, _ := PolicyOptions{Kind: BestFit}.New()
	worst, _ := PolicyOptions{Kind: WorstFit}.New()
	h2 := c.Hosts()[1] // 100 free
	if best.Score(10, h, 0) >= best.Score(10, h2, 0) {
		t.Error("best-fit should prefer the tighter host")
	}
	if worst.Score(10, h2, 0) >= worst.Score(10, h, 0) {
		t.Error("worst-fit should prefer the emptier host")
	}
}

func TestPolicyOptionsContract(t *testing.T) {
	if err := (PolicyOptions{}).Validate(); err != nil {
		t.Errorf("zero options should validate: %v", err)
	}
	if err := (PolicyOptions{Kind: Kind(99)}).Validate(); err == nil {
		t.Error("unknown kind should fail validation")
	}
	if err := (PolicyOptions{Kind: Oversub, OversubFactor: 0.5}).Validate(); err == nil {
		t.Error("OversubFactor < 1 should fail validation")
	}
	d := (PolicyOptions{Kind: Oversub}).WithDefaults()
	if d.OversubFactor != DefaultOversubFactor {
		t.Errorf("default OversubFactor = %v", d.OversubFactor)
	}
}

func TestFirstFitUsesLowestHost(t *testing.T) {
	c := testCluster(t)
	p := New(c, FirstFit, 0)
	vm, err := p.Place(30, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if vm.Host().ID != 0 {
		t.Fatalf("first-fit placed on host %d", vm.Host().ID)
	}
	// Second VM that fits host 0 also goes there.
	vm2, err := p.Place(30, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if vm2.Host().ID != 0 {
		t.Fatalf("first-fit second VM on host %d", vm2.Host().ID)
	}
}

func TestBestFitPacksTightly(t *testing.T) {
	c := testCluster(t)
	// Pre-load host 1 to 70 used (30 free) and host 2 to 40 used (60 free).
	if _, err := c.AddVM(c.Hosts()[1], 70, 1, false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddVM(c.Hosts()[2], 40, 1, false); err != nil {
		t.Fatal(err)
	}
	p := New(c, BestFit, 0)
	vm, err := p.Place(25, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if vm.Host().ID != 1 {
		t.Fatalf("best-fit placed on host %d, want the 30-free host 1", vm.Host().ID)
	}
}

func TestWorstFitSpreads(t *testing.T) {
	c := testCluster(t)
	if _, err := c.AddVM(c.Hosts()[0], 20, 1, false); err != nil {
		t.Fatal(err)
	}
	p := New(c, WorstFit, 0)
	vm, err := p.Place(25, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if vm.Host().ID == 0 {
		t.Fatal("worst-fit chose the partially loaded host")
	}
	// Placing many VMs worst-fit keeps the cluster balanced.
	for i := 0; i < 20; i++ {
		if _, err := p.Place(10, 1, false); err != nil {
			t.Fatal(err)
		}
	}
	if sd := c.WorkloadStdDev(); sd > 8 {
		t.Fatalf("worst-fit stddev = %.2f, want low", sd)
	}
}

func TestBestFitVsWorstFitImbalance(t *testing.T) {
	caps := make([]float64, 24)
	for i := range caps {
		caps[i] = 10
	}
	cBest := testCluster(t)
	if _, err := New(cBest, BestFit, 0).PlaceAll(caps); err != nil {
		t.Fatal(err)
	}
	cWorst := testCluster(t)
	if _, err := New(cWorst, WorstFit, 0).PlaceAll(caps); err != nil {
		t.Fatal(err)
	}
	if cBest.WorkloadStdDev() <= cWorst.WorkloadStdDev() {
		t.Fatalf("best-fit stddev %.2f should exceed worst-fit %.2f",
			cBest.WorkloadStdDev(), cWorst.WorkloadStdDev())
	}
}

func TestRandomPolicyDeterministicSeed(t *testing.T) {
	c1 := testCluster(t)
	c2 := testCluster(t)
	v1, err := New(c1, Random, 9).Place(10, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := New(c2, Random, 9).Place(10, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if v1.Host().ID != v2.Host().ID {
		t.Fatal("same-seed random placement diverged")
	}
}

func TestPickRespectsDependencyPeers(t *testing.T) {
	c := testCluster(t)
	peer, err := c.AddVM(c.Hosts()[0], 10, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	p := New(c, FirstFit, 0)
	h, err := p.Pick(10, []int{peer.ID})
	if err != nil {
		t.Fatal(err)
	}
	if h.ID == 0 {
		t.Fatal("Pick ignored the dependency peer on host 0")
	}
}

func TestNoHostFits(t *testing.T) {
	c := testCluster(t)
	p := New(c, FirstFit, 0)
	if _, err := p.Place(150, 1, false); !errors.Is(err, ErrNoHost) {
		t.Fatalf("want ErrNoHost, got %v", err)
	}
	if _, err := New(c, Kind(42), 0).Pick(10, nil); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestPlaceAllStopsAtFailure(t *testing.T) {
	c := testCluster(t)
	// 16 hosts × 100 = 1600 capacity; 17 VMs of 100 cannot all fit.
	caps := make([]float64, 17)
	for i := range caps {
		caps[i] = 100
	}
	placed, err := New(c, FirstFit, 0).PlaceAll(caps)
	if err == nil {
		t.Fatal("over-capacity batch accepted")
	}
	if len(placed) != 16 {
		t.Fatalf("placed %d, want 16", len(placed))
	}
}
