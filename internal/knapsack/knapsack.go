// Package knapsack implements the PRIORITY function of the paper's Alg. 2:
// given a candidate VM set F and a priority factor ω, select the VMs to
// migrate.
//
//   - ω = α or β: after eliminating delay-sensitive VMs, run a 0/1 knapsack
//     DP with the allowed capacity (α·s.capacity or β·ToR.capacity) as the
//     knapsack size, "picking up as many VMs with lowest value as possible"
//     — i.e. prefer large, low-value VMs. Capacity is discretized to unit
//     granularity (the paper sets Mbps as the minimum capacity unit).
//   - ω = 1: pick the single VM with the highest ALERT, "to ensure load
//     balancing at the end host side".
package knapsack

import (
	"fmt"
	"math"
	"sort"

	"sheriff/internal/dcn"
)

// SelectByBudget runs the Alg. 2 knapsack branch: it returns the subset of
// non-delay-sensitive VMs whose total capacity is maximal without
// exceeding budget; among subsets of that capacity, total Value is
// minimized. The returned slice is ordered by VM ID for determinism.
func SelectByBudget(vms []*dcn.VM, budget float64) []*dcn.VM {
	if budget <= 0 {
		return nil
	}
	cands := eliminateDelaySensitive(vms)
	if len(cands) == 0 {
		return nil
	}
	c := int(math.Floor(budget))
	if c <= 0 {
		return nil
	}
	// Integer sizes: round up so the budget is never exceeded.
	sizes := make([]int, len(cands))
	for i, vm := range cands {
		sizes[i] = int(math.Ceil(vm.Capacity))
		if sizes[i] <= 0 {
			sizes[i] = 1
		}
	}
	const inf = math.MaxFloat64
	// d[j]: minimal total value of a subset with total size exactly j.
	d := make([]float64, c+1)
	choice := make([][]int32, c+1) // chosen VM indices per cell
	for j := 1; j <= c; j++ {
		d[j] = inf
	}
	for i, vm := range cands {
		sz := sizes[i]
		for j := c; j >= sz; j-- {
			if d[j-sz] == inf {
				continue
			}
			if nv := d[j-sz] + vm.Value; nv < d[j] {
				d[j] = nv
				sel := make([]int32, len(choice[j-sz])+1)
				copy(sel, choice[j-sz])
				sel[len(sel)-1] = int32(i)
				choice[j] = sel
			}
		}
	}
	// Largest reachable size wins; d already holds the min value there.
	for j := c; j >= 1; j-- {
		if d[j] != inf {
			out := make([]*dcn.VM, len(choice[j]))
			for k, idx := range choice[j] {
				out[k] = cands[idx]
			}
			sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
			return out
		}
	}
	return nil
}

// SelectMaxAlert runs the Alg. 2 ω = 1 branch: the single
// non-delay-sensitive VM with the highest ALERT value (ties broken by
// lowest VM ID). It returns nil when no candidate remains.
func SelectMaxAlert(vms []*dcn.VM) []*dcn.VM {
	cands := eliminateDelaySensitive(vms)
	var best *dcn.VM
	for _, vm := range cands {
		if best == nil || vm.Alert > best.Alert || (vm.Alert == best.Alert && vm.ID < best.ID) {
			best = vm
		}
	}
	if best == nil {
		return nil
	}
	return []*dcn.VM{best}
}

// eliminateDelaySensitive implements the first line of Alg. 2.
func eliminateDelaySensitive(vms []*dcn.VM) []*dcn.VM {
	out := make([]*dcn.VM, 0, len(vms))
	for _, vm := range vms {
		if !vm.DelaySensitive {
			out = append(out, vm)
		}
	}
	return out
}

// Factor identifies which Alg. 2 branch to run.
type Factor int

const (
	// Alpha selects by α·(server capacity) — server overload alerts.
	Alpha Factor = iota
	// Beta selects by β·(ToR capacity) — local ToR congestion alerts.
	Beta
	// One selects the single highest-alert VM.
	One
)

// String names the factor.
func (f Factor) String() string {
	switch f {
	case Alpha:
		return "alpha"
	case Beta:
		return "beta"
	case One:
		return "1"
	default:
		return fmt.Sprintf("Factor(%d)", int(f))
	}
}

// Priority dispatches Alg. 2: for Alpha/Beta, budget must be
// ω × the relevant capacity; for One, budget is ignored.
func Priority(vms []*dcn.VM, f Factor, budget float64) []*dcn.VM {
	switch f {
	case Alpha, Beta:
		return SelectByBudget(vms, budget)
	case One:
		return SelectMaxAlert(vms)
	default:
		return nil
	}
}
