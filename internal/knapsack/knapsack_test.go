package knapsack

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sheriff/internal/dcn"
)

func vm(id int, capacity, value float64, ds bool) *dcn.VM {
	return &dcn.VM{ID: id, Capacity: capacity, Value: value, DelaySensitive: ds}
}

func totalCapacity(vms []*dcn.VM) float64 {
	s := 0.0
	for _, v := range vms {
		s += v.Capacity
	}
	return s
}

func totalValue(vms []*dcn.VM) float64 {
	s := 0.0
	for _, v := range vms {
		s += v.Value
	}
	return s
}

func TestSelectByBudgetBasic(t *testing.T) {
	vms := []*dcn.VM{
		vm(0, 5, 3, false),
		vm(1, 5, 1, false),
		vm(2, 5, 2, false),
	}
	// Budget 10: two VMs fit; the lowest-value pair is {1, 2}.
	sel := SelectByBudget(vms, 10)
	if len(sel) != 2 {
		t.Fatalf("selected %d VMs, want 2", len(sel))
	}
	if totalValue(sel) != 3 {
		t.Fatalf("total value = %v, want 3 (VMs 1 and 2)", totalValue(sel))
	}
}

func TestSelectByBudgetPrefersLargerSize(t *testing.T) {
	// One big cheap VM vs one small cheap VM: budget allows either alone;
	// the DP must prefer filling more capacity.
	vms := []*dcn.VM{
		vm(0, 9, 5, false),
		vm(1, 2, 1, false),
	}
	sel := SelectByBudget(vms, 9)
	if len(sel) != 1 || sel[0].ID != 0 {
		t.Fatalf("selected %v, want the size-9 VM", ids(sel))
	}
}

func TestSelectByBudgetEliminatesDelaySensitive(t *testing.T) {
	vms := []*dcn.VM{
		vm(0, 5, 1, true), // delay-sensitive: excluded
		vm(1, 5, 9, false),
	}
	sel := SelectByBudget(vms, 10)
	if len(sel) != 1 || sel[0].ID != 1 {
		t.Fatalf("selected %v, want only VM 1", ids(sel))
	}
}

func TestSelectByBudgetNeverExceedsBudget(t *testing.T) {
	vms := []*dcn.VM{
		vm(0, 7.4, 1, false),
		vm(1, 3.9, 1, false),
		vm(2, 2.2, 1, false),
	}
	sel := SelectByBudget(vms, 10)
	if totalCapacity(sel) > 10 {
		t.Fatalf("selection capacity %v exceeds budget 10", totalCapacity(sel))
	}
}

func TestSelectByBudgetEdgeCases(t *testing.T) {
	if SelectByBudget(nil, 10) != nil {
		t.Error("empty input should return nil")
	}
	if SelectByBudget([]*dcn.VM{vm(0, 5, 1, false)}, 0) != nil {
		t.Error("zero budget should return nil")
	}
	if SelectByBudget([]*dcn.VM{vm(0, 5, 1, false)}, -3) != nil {
		t.Error("negative budget should return nil")
	}
	if got := SelectByBudget([]*dcn.VM{vm(0, 50, 1, false)}, 10); got != nil {
		t.Errorf("oversized VM should not be selected: %v", ids(got))
	}
}

func TestSelectByBudgetTinyCapacityRoundsUp(t *testing.T) {
	sel := SelectByBudget([]*dcn.VM{vm(0, 0.2, 1, false)}, 1)
	if len(sel) != 1 {
		t.Fatal("sub-unit VM should round up to 1 unit and fit budget 1")
	}
}

func TestSelectMaxAlert(t *testing.T) {
	vms := []*dcn.VM{
		vm(0, 5, 1, false),
		vm(1, 5, 1, false),
		vm(2, 5, 1, false),
	}
	vms[0].Alert = 0.91
	vms[1].Alert = 0.97
	vms[2].Alert = 0.93
	sel := SelectMaxAlert(vms)
	if len(sel) != 1 || sel[0].ID != 1 {
		t.Fatalf("selected %v, want VM 1", ids(sel))
	}
}

func TestSelectMaxAlertSkipsDelaySensitive(t *testing.T) {
	vms := []*dcn.VM{vm(0, 5, 1, true), vm(1, 5, 1, false)}
	vms[0].Alert = 0.99
	vms[1].Alert = 0.91
	sel := SelectMaxAlert(vms)
	if len(sel) != 1 || sel[0].ID != 1 {
		t.Fatalf("selected %v, want VM 1", ids(sel))
	}
}

func TestSelectMaxAlertTieBreaksByID(t *testing.T) {
	vms := []*dcn.VM{vm(3, 5, 1, false), vm(1, 5, 1, false)}
	vms[0].Alert = 0.95
	vms[1].Alert = 0.95
	sel := SelectMaxAlert(vms)
	if sel[0].ID != 1 {
		t.Fatalf("tie should break to lower ID, got %d", sel[0].ID)
	}
}

func TestSelectMaxAlertEmpty(t *testing.T) {
	if SelectMaxAlert(nil) != nil {
		t.Error("empty input should return nil")
	}
	if SelectMaxAlert([]*dcn.VM{vm(0, 1, 1, true)}) != nil {
		t.Error("all delay-sensitive should return nil")
	}
}

func TestPriorityDispatch(t *testing.T) {
	vms := []*dcn.VM{vm(0, 5, 1, false), vm(1, 5, 2, false)}
	vms[1].Alert = 0.95
	if got := Priority(vms, Alpha, 5); len(got) != 1 {
		t.Errorf("Alpha selected %v", ids(got))
	}
	if got := Priority(vms, Beta, 10); len(got) != 2 {
		t.Errorf("Beta selected %v", ids(got))
	}
	if got := Priority(vms, One, 0); len(got) != 1 || got[0].ID != 1 {
		t.Errorf("One selected %v", ids(got))
	}
	if got := Priority(vms, Factor(99), 5); got != nil {
		t.Errorf("unknown factor selected %v", ids(got))
	}
}

func TestFactorString(t *testing.T) {
	if Alpha.String() != "alpha" || Beta.String() != "beta" || One.String() != "1" {
		t.Fatal("factor strings wrong")
	}
	if Factor(7).String() == "" {
		t.Fatal("unknown factor should render")
	}
}

// bruteBest finds, by exhaustive subset search, the maximal total integer
// size within budget, and among those the minimal value.
func bruteBest(vms []*dcn.VM, budget int) (bestSize int, bestValue float64) {
	n := len(vms)
	bestValue = math.Inf(1)
	for mask := 0; mask < 1<<n; mask++ {
		size := 0
		value := 0.0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				size += int(math.Ceil(vms[i].Capacity))
				value += vms[i].Value
			}
		}
		if size > budget {
			continue
		}
		if size > bestSize || (size == bestSize && value < bestValue) {
			bestSize, bestValue = size, value
		}
	}
	return bestSize, bestValue
}

// Property: the DP matches exhaustive search on small instances.
func TestSelectByBudgetOptimalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(8) + 1
		vms := make([]*dcn.VM, n)
		for i := range vms {
			vms[i] = vm(i, float64(rng.Intn(9)+1), float64(rng.Intn(10)+1), false)
		}
		budget := rng.Intn(20) + 1
		sel := SelectByBudget(vms, float64(budget))
		gotSize := 0
		for _, v := range sel {
			gotSize += int(math.Ceil(v.Capacity))
		}
		wantSize, wantValue := bruteBest(vms, budget)
		if gotSize != wantSize {
			return false
		}
		if wantSize == 0 {
			return len(sel) == 0
		}
		return math.Abs(totalValue(sel)-wantValue) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func ids(vms []*dcn.VM) []int {
	out := make([]int, len(vms))
	for i, v := range vms {
		out[i] = v.ID
	}
	return out
}
