package arima

import (
	"encoding/json"
	"testing"
)

// TestUnmarshalResetsForecastContext is the regression test for the
// serializer/suffix-state interaction: UnmarshalJSON replaces the model
// coefficients in place, so the incremental forecast context — whose
// cached innovations were computed under the old coefficients — must be
// dropped. Before the fix, forecasting from the same *Series pointer
// after a reload advanced the stale context and diverged from a freshly
// restored model.
func TestUnmarshalResetsForecastContext(t *testing.T) {
	sA := simulateARMA(600, []float64{0.6}, []float64{0.2}, 0.5, 21)
	sB := simulateARMA(600, []float64{-0.4}, []float64{0.5}, 0.8, 99)
	mA, err := Fit(sA, Order{P: 1, D: 0, Q: 1})
	if err != nil {
		t.Fatal(err)
	}
	mB, err := Fit(sB, Order{P: 1, D: 0, Q: 1})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(mB)
	if err != nil {
		t.Fatal(err)
	}

	// Warm mA's incremental context on a live history pointer.
	hist := sA.Clone()
	if _, err := mA.ForecastFrom(hist, 1); err != nil {
		t.Fatal(err)
	}

	// Reload mB's parameters into mA in place, then grow the history:
	// the suffix fast path would otherwise advance innovations computed
	// under mA's old coefficients.
	if err := json.Unmarshal(blob, mA); err != nil {
		t.Fatal(err)
	}
	hist.Append(0.31, -0.12, 0.47)

	got, err := mA.ForecastFrom(hist, 3)
	if err != nil {
		t.Fatal(err)
	}
	var fresh Model
	if err := json.Unmarshal(blob, &fresh); err != nil {
		t.Fatal(err)
	}
	want, err := fresh.ForecastFrom(hist, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("forecast %d after in-place reload differs from fresh restore: %v vs %v (stale suffix state survived UnmarshalJSON)", i, got[i], want[i])
		}
	}
}
