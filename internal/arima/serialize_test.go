package arima

import (
	"encoding/json"
	"math"
	"testing"
)

func TestModelJSONRoundTrip(t *testing.T) {
	s := simulateARMA(1000, []float64{0.6}, []float64{0.2}, 0.5, 21)
	orig, err := Fit(s, Order{P: 1, D: 0, Q: 1})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var restored Model
	if err := json.Unmarshal(blob, &restored); err != nil {
		t.Fatal(err)
	}
	if restored.Order != orig.Order || restored.Phi[0] != orig.Phi[0] ||
		restored.Theta[0] != orig.Theta[0] || restored.Sigma2 != orig.Sigma2 {
		t.Fatal("parameters not preserved")
	}
	// Forecasts from the restored model must match exactly.
	fo, err := orig.Forecast(5)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := restored.Forecast(5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fo {
		if fo[i] != fr[i] {
			t.Fatalf("forecast %d differs: %v vs %v", i, fo[i], fr[i])
		}
	}
}

func TestModelUnmarshalRejectsCorrupt(t *testing.T) {
	var m Model
	if err := json.Unmarshal([]byte(`{"order":{"P":-1,"D":0,"Q":1}}`), &m); err == nil {
		t.Error("invalid order accepted")
	}
	if err := json.Unmarshal([]byte(`{"order":{"P":2,"D":0,"Q":0},"phi":[0.5]}`), &m); err == nil {
		t.Error("coefficient count mismatch accepted")
	}
	if err := json.Unmarshal([]byte(`{not json`), &m); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestSeasonalModelJSONRoundTrip(t *testing.T) {
	s := seasonalSeries(500, 12, 22)
	orig, err := FitSeasonal(s, SeasonalOrder{Order: Order{P: 1, Q: 1}, SP: 1, SD: 1, Period: 12})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var restored SeasonalModel
	if err := json.Unmarshal(blob, &restored); err != nil {
		t.Fatal(err)
	}
	fo, err := orig.Forecast(12)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := restored.Forecast(12)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fo {
		if math.Abs(fo[i]-fr[i]) > 1e-12 {
			t.Fatalf("seasonal forecast %d differs", i)
		}
	}
}

func TestSeasonalUnmarshalRejectsCorrupt(t *testing.T) {
	var m SeasonalModel
	if err := json.Unmarshal([]byte(`{"order":{"P":1,"SP":2,"Period":12},"phi":[0.1],"sphi":[0.1]}`), &m); err == nil {
		t.Error("seasonal coefficient mismatch accepted")
	}
}
