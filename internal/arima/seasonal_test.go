package arima

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"sheriff/internal/timeseries"
)

// seasonalSeries: period-s sinusoid + trend + AR(1) noise.
func seasonalSeries(n, period int, seed int64) *timeseries.Series {
	rng := rand.New(rand.NewSource(seed))
	ar := 0.0
	return timeseries.FromFunc(n, func(t int) float64 {
		ar = 0.5*ar + rng.NormFloat64()
		return 50 + 0.02*float64(t) + 20*math.Sin(2*math.Pi*float64(t)/float64(period)) + ar
	})
}

func TestSeasonalOrderValidate(t *testing.T) {
	ok := SeasonalOrder{Order: Order{P: 1, D: 0, Q: 0}, SP: 1, SD: 1, SQ: 0, Period: 12}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid order rejected: %v", err)
	}
	bad := SeasonalOrder{Order: Order{P: 1}, SP: 1, Period: 1}
	if err := bad.Validate(); err == nil {
		t.Error("Period=1 with seasonal terms accepted")
	}
	if err := (SeasonalOrder{Period: 12}).Validate(); err == nil {
		t.Error("no ARMA terms accepted")
	}
	neg := SeasonalOrder{Order: Order{P: 1}, SP: -1, Period: 12}
	if err := neg.Validate(); err == nil {
		t.Error("negative SP accepted")
	}
}

func TestSeasonalOrderString(t *testing.T) {
	o := SeasonalOrder{Order: Order{1, 1, 1}, SP: 1, SD: 1, SQ: 1, Period: 7}
	if !strings.Contains(o.String(), "SARIMA(1,1,1)(1,1,1)[7]") {
		t.Fatalf("String = %q", o.String())
	}
}

func TestFitSeasonalTooShort(t *testing.T) {
	s := seasonalSeries(30, 12, 1)
	o := SeasonalOrder{Order: Order{P: 1, D: 1, Q: 1}, SP: 1, SD: 1, SQ: 1, Period: 12}
	if _, err := FitSeasonal(s, o); err == nil {
		t.Fatal("short series accepted")
	}
}

func TestSeasonalForecastTracksSeason(t *testing.T) {
	period := 24
	s := seasonalSeries(600, period, 2)
	train, test := s.Split(0.85)
	o := SeasonalOrder{Order: Order{P: 1, D: 0, Q: 1}, SP: 1, SD: 1, SQ: 0, Period: period}
	m, err := FitSeasonal(train, o)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := m.RollingForecast(train, test)
	if err != nil {
		t.Fatal(err)
	}
	mse, _ := timeseries.MSE(test.Raw(), pred)
	// The seasonal amplitude is 20 (variance 200); residual noise variance
	// is ~1.33. A model that captures the season must land near the noise
	// floor, far below the seasonal variance.
	if mse > 20 {
		t.Fatalf("seasonal model MSE = %.2f, want near the noise floor", mse)
	}
}

func TestSeasonalBeatsPlainARIMAOnSeasonalData(t *testing.T) {
	period := 24
	s := seasonalSeries(600, period, 3)
	train, test := s.Split(0.85)

	sm, err := FitSeasonal(train, SeasonalOrder{Order: Order{P: 1, D: 0, Q: 1}, SP: 1, SD: 1, Period: period})
	if err != nil {
		t.Fatal(err)
	}
	pm, err := Fit(train, Order{P: 1, D: 1, Q: 1})
	if err != nil {
		t.Fatal(err)
	}
	sPred, err := sm.RollingForecast(train, test)
	if err != nil {
		t.Fatal(err)
	}
	pPred, err := pm.RollingForecast(train, test)
	if err != nil {
		t.Fatal(err)
	}
	sMSE, _ := timeseries.MSE(test.Raw(), sPred)
	pMSE, _ := timeseries.MSE(test.Raw(), pPred)
	if sMSE >= pMSE {
		t.Fatalf("SARIMA MSE %.3f should beat plain ARIMA %.3f on seasonal data", sMSE, pMSE)
	}
}

func TestSeasonalMultiStepForecastKeepsPhase(t *testing.T) {
	period := 12
	// Noiseless seasonal signal: multi-step forecasts should continue the
	// cycle in phase.
	s := timeseries.FromFunc(400, func(t int) float64 {
		return 10 + 5*math.Sin(2*math.Pi*float64(t)/float64(period))
	})
	m, err := FitSeasonal(s, SeasonalOrder{Order: Order{P: 1, D: 0, Q: 0}, SP: 1, SD: 1, Period: period})
	if err != nil {
		t.Fatal(err)
	}
	fc, err := m.Forecast(period)
	if err != nil {
		t.Fatal(err)
	}
	for k, f := range fc {
		want := 10 + 5*math.Sin(2*math.Pi*float64(400+k)/float64(period))
		if math.Abs(f-want) > 0.8 {
			t.Fatalf("step %d: forecast %.3f, want %.3f", k, f, want)
		}
	}
}

func TestSeasonalForecastValidation(t *testing.T) {
	s := seasonalSeries(400, 12, 5)
	m, err := FitSeasonal(s, SeasonalOrder{Order: Order{P: 1}, SP: 1, SD: 1, Period: 12})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Forecast(0); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := m.ForecastFrom(timeseries.New([]float64{1, 2, 3}), 1); err == nil {
		t.Error("short history accepted")
	}
}

func TestSeasonalAICFinite(t *testing.T) {
	s := seasonalSeries(400, 12, 6)
	m, err := FitSeasonal(s, SeasonalOrder{Order: Order{P: 1, Q: 1}, SP: 1, SD: 1, Period: 12})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(m.AIC()) || math.IsInf(m.AIC(), 0) {
		t.Fatalf("AIC = %v", m.AIC())
	}
}

func TestSeasonalDegeneratesToPlainWhenNoSeasonalTerms(t *testing.T) {
	// SARIMA(1,1,1)(0,0,0) must behave like ARIMA(1,1,1).
	s := simulateARMA(2000, []float64{0.5}, []float64{0.3}, 0, 7)
	sm, err := FitSeasonal(s, SeasonalOrder{Order: Order{P: 1, D: 0, Q: 1}})
	if err != nil {
		t.Fatal(err)
	}
	pm, err := Fit(s, Order{P: 1, D: 0, Q: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sm.Phi[0]-pm.Phi[0]) > 0.05 {
		t.Fatalf("phi mismatch: seasonal %.3f vs plain %.3f", sm.Phi[0], pm.Phi[0])
	}
	sf, err := sm.Forecast(3)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := pm.Forecast(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sf {
		if math.Abs(sf[i]-pf[i]) > 0.3 {
			t.Fatalf("forecast %d diverges: %.3f vs %.3f", i, sf[i], pf[i])
		}
	}
}
