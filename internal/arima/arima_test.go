package arima

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"sheriff/internal/timeseries"
)

// simulateARMA generates an ARMA(p,q) series with the given coefficients.
func simulateARMA(n int, phi, theta []float64, c float64, seed int64) *timeseries.Series {
	rng := rand.New(rand.NewSource(seed))
	burn := 200
	total := n + burn
	w := make([]float64, total)
	e := make([]float64, total)
	for t := 0; t < total; t++ {
		e[t] = rng.NormFloat64()
		v := c + e[t]
		for i, p := range phi {
			if t-i-1 >= 0 {
				v += p * w[t-i-1]
			}
		}
		for j, q := range theta {
			if t-j-1 >= 0 {
				v += q * e[t-j-1]
			}
		}
		w[t] = v
	}
	return timeseries.New(w[burn:])
}

// integrate turns an ARMA series into an ARIMA(.,1,.) series.
func integrate(s *timeseries.Series) *timeseries.Series {
	out := make([]float64, s.Len()+1)
	out[0] = 100
	for t := 0; t < s.Len(); t++ {
		out[t+1] = out[t] + s.At(t)
	}
	return timeseries.New(out)
}

func TestOrderValidate(t *testing.T) {
	if err := (Order{P: 1, D: 0, Q: 1}).Validate(); err != nil {
		t.Errorf("valid order rejected: %v", err)
	}
	if err := (Order{P: -1, D: 0, Q: 1}).Validate(); err == nil {
		t.Error("negative P accepted")
	}
	if err := (Order{P: 0, D: 1, Q: 0}).Validate(); err == nil {
		t.Error("pure differencing accepted")
	}
}

func TestOrderString(t *testing.T) {
	if s := (Order{1, 1, 1}).String(); !strings.Contains(s, "ARIMA(1,1,1)") {
		t.Errorf("String = %q", s)
	}
}

func TestFitRecoversAR1Coefficient(t *testing.T) {
	phi := 0.6
	s := simulateARMA(4000, []float64{phi}, nil, 0, 1)
	m, err := Fit(s, Order{P: 1, D: 0, Q: 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Phi[0]-phi) > 0.07 {
		t.Errorf("estimated phi = %.3f, want ≈ %.2f", m.Phi[0], phi)
	}
	if m.Sigma2 < 0.7 || m.Sigma2 > 1.4 {
		t.Errorf("sigma2 = %.3f, want ≈ 1", m.Sigma2)
	}
}

func TestFitRecoversMA1Coefficient(t *testing.T) {
	theta := 0.5
	s := simulateARMA(6000, nil, []float64{theta}, 0, 2)
	m, err := Fit(s, Order{P: 0, D: 0, Q: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Theta[0]-theta) > 0.1 {
		t.Errorf("estimated theta = %.3f, want ≈ %.2f", m.Theta[0], theta)
	}
}

func TestFitARMA11(t *testing.T) {
	s := simulateARMA(8000, []float64{0.5}, []float64{0.3}, 0, 3)
	m, err := Fit(s, Order{P: 1, D: 0, Q: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Phi[0]-0.5) > 0.12 {
		t.Errorf("phi = %.3f, want ≈ 0.5", m.Phi[0])
	}
	if math.Abs(m.Theta[0]-0.3) > 0.15 {
		t.Errorf("theta = %.3f, want ≈ 0.3", m.Theta[0])
	}
}

func TestFitTooShort(t *testing.T) {
	if _, err := Fit(timeseries.New([]float64{1, 2, 3}), Order{P: 1, D: 1, Q: 1}); err == nil {
		t.Fatal("expected error on short series")
	}
}

func TestFitInvalidOrder(t *testing.T) {
	if _, err := Fit(timeseries.New(make([]float64, 100)), Order{P: 0, D: 0, Q: 0}); err == nil {
		t.Fatal("expected error for empty ARMA")
	}
}

func TestForecastHorizonValidation(t *testing.T) {
	s := simulateARMA(500, []float64{0.5}, nil, 0, 4)
	m, err := Fit(s, Order{P: 1, D: 0, Q: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Forecast(0); err == nil {
		t.Error("zero horizon should error")
	}
	if _, err := m.Forecast(-2); err == nil {
		t.Error("negative horizon should error")
	}
}

func TestForecastAR1ConvergesToMean(t *testing.T) {
	// AR(1) with intercept c: long-run mean = c / (1 - phi).
	c, phi := 2.0, 0.5
	s := simulateARMA(6000, []float64{phi}, nil, c, 5)
	m, err := Fit(s, Order{P: 1, D: 0, Q: 0})
	if err != nil {
		t.Fatal(err)
	}
	fc, err := m.Forecast(200)
	if err != nil {
		t.Fatal(err)
	}
	wantMean := c / (1 - phi)
	if math.Abs(fc[199]-wantMean) > 0.5 {
		t.Errorf("long-horizon forecast %.3f, want ≈ %.3f", fc[199], wantMean)
	}
}

func TestForecastARIMA111TracksLinearTrend(t *testing.T) {
	// A noiseless linear trend: ARIMA(1,1,1) forecasts should continue it.
	s := timeseries.FromFunc(200, func(t int) float64 { return 3*float64(t) + 10 })
	m, err := Fit(s, Order{P: 1, D: 1, Q: 1})
	if err != nil {
		t.Fatal(err)
	}
	fc, err := m.Forecast(5)
	if err != nil {
		t.Fatal(err)
	}
	for k, f := range fc {
		want := 3*float64(200+k) + 10
		if math.Abs(f-want) > 1.5 {
			t.Errorf("forecast[%d] = %.2f, want ≈ %.2f", k, f, want)
		}
	}
}

func TestOneStepBeatsNaiveOnAR1(t *testing.T) {
	s := simulateARMA(3000, []float64{0.8}, nil, 0, 6)
	train, test := s.Split(0.8)
	m, err := Fit(train, Order{P: 1, D: 0, Q: 0})
	if err != nil {
		t.Fatal(err)
	}
	pred, err := m.RollingForecast(train, test)
	if err != nil {
		t.Fatal(err)
	}
	mseModel, _ := timeseries.MSE(test.Raw(), pred)
	// Naive forecast: previous value.
	naive := make([]float64, test.Len())
	prev := train.Last()
	for i := 0; i < test.Len(); i++ {
		naive[i] = prev
		prev = test.At(i)
	}
	mseNaive, _ := timeseries.MSE(test.Raw(), naive)
	if mseModel >= mseNaive {
		t.Errorf("AR(1) one-step MSE %.4f should beat naive %.4f", mseModel, mseNaive)
	}
}

func TestForecastFromShortHistory(t *testing.T) {
	s := simulateARMA(500, []float64{0.5}, nil, 0, 7)
	m, err := Fit(s, Order{P: 1, D: 0, Q: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.ForecastFrom(timeseries.New([]float64{1, 2}), 1); err == nil {
		t.Error("short history should error")
	}
}

func TestForecastInterval(t *testing.T) {
	s := simulateARMA(2000, []float64{0.5}, nil, 0, 8)
	m, err := Fit(s, Order{P: 1, D: 0, Q: 0})
	if err != nil {
		t.Fatal(err)
	}
	point, lo, hi, err := m.ForecastInterval(10)
	if err != nil {
		t.Fatal(err)
	}
	for k := range point {
		if !(lo[k] < point[k] && point[k] < hi[k]) {
			t.Fatalf("interval not bracketing at %d: %v %v %v", k, lo[k], point[k], hi[k])
		}
	}
	// Interval width must be non-decreasing in horizon for a stationary model.
	for k := 1; k < len(point); k++ {
		if (hi[k] - lo[k]) < (hi[k-1]-lo[k-1])-1e-9 {
			t.Fatalf("interval width shrank at horizon %d", k)
		}
	}
}

func TestPsiWeightsAR1(t *testing.T) {
	m := &Model{Order: Order{P: 1}, Phi: []float64{0.5}}
	psi := m.psiWeights(4)
	want := []float64{1, 0.5, 0.25, 0.125}
	for i, w := range want {
		if math.Abs(psi[i]-w) > 1e-12 {
			t.Fatalf("psi[%d] = %v, want %v", i, psi[i], w)
		}
	}
}

func TestAICPrefersTrueOrder(t *testing.T) {
	s := simulateARMA(4000, []float64{0.7}, nil, 0, 9)
	m1, err := Fit(s, Order{P: 1, D: 0, Q: 0})
	if err != nil {
		t.Fatal(err)
	}
	m3, err := Fit(s, Order{P: 3, D: 0, Q: 3})
	if err != nil {
		t.Fatal(err)
	}
	if m1.AIC() >= m3.AIC()+10 {
		t.Errorf("AIC(AR1)=%.1f should not be much worse than AIC(ARMA33)=%.1f", m1.AIC(), m3.AIC())
	}
}

func TestAutoFitFindsReasonableModelOnAR2(t *testing.T) {
	s := simulateARMA(3000, []float64{0.5, 0.3}, nil, 0, 10)
	m, err := AutoFit(s, DefaultSearchSpace)
	if err != nil {
		t.Fatal(err)
	}
	if m.Order.D != 0 {
		t.Errorf("AutoFit chose d=%d for a stationary series", m.Order.D)
	}
	// It should forecast decently.
	train, test := s.Split(0.9)
	pred, err := m.RollingForecast(train, test)
	if err != nil {
		t.Fatal(err)
	}
	mse, _ := timeseries.MSE(test.Raw(), pred)
	if mse > 2.0 {
		t.Errorf("AutoFit model MSE = %.3f, want near sigma² = 1", mse)
	}
}

func TestAutoFitChoosesDifferencingForRandomWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rw := make([]float64, 1500)
	for t := 1; t < len(rw); t++ {
		rw[t] = rw[t-1] + rng.NormFloat64()
	}
	m, err := AutoFit(timeseries.New(rw), DefaultSearchSpace)
	if err != nil {
		t.Fatal(err)
	}
	if m.Order.D < 1 {
		t.Errorf("AutoFit chose d=%d for a random walk, want >= 1", m.Order.D)
	}
}

func TestAutoFitInvalidSpace(t *testing.T) {
	if _, err := AutoFit(timeseries.New(make([]float64, 100)), SearchSpace{MaxP: -1}); err == nil {
		t.Fatal("negative space should error")
	}
}

func TestStabilizeShrinksExplosiveCoefficients(t *testing.T) {
	c := []float64{0.9, 0.9}
	stabilize(c)
	sum := math.Abs(c[0]) + math.Abs(c[1])
	if sum > 0.991 {
		t.Fatalf("stabilize left |sum| = %v", sum)
	}
	c2 := []float64{0.3, 0.2}
	stabilize(c2)
	if c2[0] != 0.3 || c2[1] != 0.2 {
		t.Fatal("stabilize modified a stable vector")
	}
}

// Property: forecasts of a fitted model are always finite.
func TestForecastFiniteProperty(t *testing.T) {
	f := func(seed int64, pRaw, qRaw uint8) bool {
		p := int(pRaw%3) + 1
		q := int(qRaw % 3)
		s := simulateARMA(600, []float64{0.4}, []float64{0.2}, 0.1, seed)
		m, err := Fit(s, Order{P: p, D: 0, Q: q})
		if err != nil {
			return true // fit may legitimately fail; only test fitted models
		}
		fc, err := m.Forecast(20)
		if err != nil {
			return false
		}
		for _, v := range fc {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the first forecast of ForecastFrom(history, h) equals the
// single forecast of ForecastFrom(history, 1) — recursion consistency.
func TestKStepConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		s := simulateARMA(800, []float64{0.6}, []float64{0.2}, 0, seed)
		m, err := Fit(s, Order{P: 1, D: 0, Q: 1})
		if err != nil {
			return true
		}
		one, err := m.Forecast(1)
		if err != nil {
			return false
		}
		many, err := m.Forecast(7)
		if err != nil {
			return false
		}
		return math.Abs(one[0]-many[0]) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFitIntegratedSeries(t *testing.T) {
	arma := simulateARMA(3000, []float64{0.5}, nil, 0, 13)
	s := integrate(arma)
	m, err := Fit(s, Order{P: 1, D: 1, Q: 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Phi[0]-0.5) > 0.1 {
		t.Errorf("phi on integrated series = %.3f, want ≈ 0.5", m.Phi[0])
	}
}
