package arima

import (
	"fmt"

	"sheriff/internal/timeseries"
)

// SearchSpace bounds the order grid explored by AutoFit.
type SearchSpace struct {
	MaxP int
	MaxD int
	MaxQ int
}

// DefaultSearchSpace is a small Box–Jenkins grid adequate for the workload
// series in the paper (which settles on ARIMA(1,1,1) for the weekly traffic).
var DefaultSearchSpace = SearchSpace{MaxP: 3, MaxD: 2, MaxQ: 3}

// AutoFit selects the ARIMA order with minimal AIC over the search space,
// automating the Box–Jenkins identification step: the differencing order d
// is raised until the differenced series looks stationary, then (p,q) are
// chosen by information criterion.
func AutoFit(s *timeseries.Series, space SearchSpace) (*Model, error) {
	if space.MaxP < 0 || space.MaxD < 0 || space.MaxQ < 0 {
		return nil, fmt.Errorf("arima: invalid search space %+v", space)
	}
	// Identify the smallest d that yields a stationary-looking series.
	dMin := 0
	cur := s
	for dMin < space.MaxD {
		if timeseries.IsStationaryHint(cur) {
			break
		}
		next, err := timeseries.Diff(cur)
		if err != nil {
			break
		}
		cur = next
		dMin++
	}
	var best *Model
	var firstErr error
	for d := dMin; d <= space.MaxD; d++ {
		for p := 0; p <= space.MaxP; p++ {
			for q := 0; q <= space.MaxQ; q++ {
				if p == 0 && q == 0 {
					continue
				}
				m, err := Fit(s, Order{P: p, D: d, Q: q})
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					continue
				}
				if best == nil || m.AIC() < best.AIC() {
					best = m
				}
			}
		}
		if best != nil && d > dMin {
			// Higher differencing rarely wins once a stationary d fits;
			// stop after the first extra level to bound the search.
			break
		}
	}
	if best == nil {
		if firstErr != nil {
			return nil, fmt.Errorf("arima: AutoFit found no viable model: %w", firstErr)
		}
		return nil, fmt.Errorf("arima: AutoFit found no viable model in %+v", space)
	}
	return best, nil
}

// RollingForecast produces one-step-ahead out-of-sample predictions over
// the test series, refitting nothing: at each step the model forecasts one
// step from the accumulated history (train + revealed test prefix), then
// the true value is revealed. This is exactly the evaluation protocol of
// the paper's Figs. 6–8.
func (m *Model) RollingForecast(train, test *timeseries.Series) ([]float64, error) {
	history := train.Clone()
	out := make([]float64, test.Len())
	for t := 0; t < test.Len(); t++ {
		fc, err := m.ForecastFrom(history, 1)
		if err != nil {
			return nil, fmt.Errorf("arima: rolling forecast at step %d: %w", t, err)
		}
		out[t] = fc[0]
		history.Append(test.At(t))
	}
	return out, nil
}
