package arima

import (
	"errors"
	"fmt"
	"math"

	"sheriff/internal/linalg"
	"sheriff/internal/timeseries"
)

// SeasonalOrder extends Order with the multiplicative seasonal part of a
// SARIMA(p,d,q)(P,D,Q)_s model: φ(L)Φ(Lˢ)∇ᵈ∇ˢᴰY_t = c + θ(L)Θ(Lˢ)Z_t.
// The weekly traffic of Fig. 5 has a strong daily season, which a plain
// ARIMA(1,1,1) can only chase; the seasonal terms model it directly.
type SeasonalOrder struct {
	Order
	SP     int // seasonal AR order P
	SD     int // seasonal differencing order D
	SQ     int // seasonal MA order Q
	Period int // season length s (e.g. samples per day)
}

// String renders the order in SARIMA notation.
func (o SeasonalOrder) String() string {
	return fmt.Sprintf("SARIMA(%d,%d,%d)(%d,%d,%d)[%d]",
		o.P, o.D, o.Q, o.SP, o.SD, o.SQ, o.Period)
}

// Validate reports whether the seasonal order is well formed.
func (o SeasonalOrder) Validate() error {
	if o.P < 0 || o.D < 0 || o.Q < 0 || o.SP < 0 || o.SD < 0 || o.SQ < 0 {
		return fmt.Errorf("arima: negative component in %s", o)
	}
	if o.SP > 0 || o.SD > 0 || o.SQ > 0 {
		if o.Period < 2 {
			return fmt.Errorf("arima: seasonal terms require Period >= 2 in %s", o)
		}
	}
	if o.P == 0 && o.Q == 0 && o.SP == 0 && o.SQ == 0 {
		return fmt.Errorf("arima: %s has no ARMA terms", o)
	}
	return nil
}

// SeasonalModel is a fitted SARIMA model.
type SeasonalModel struct {
	Order     SeasonalOrder
	Phi       []float64 // non-seasonal AR φ₁..φ_p
	Theta     []float64 // non-seasonal MA θ₁..θ_q
	SPhi      []float64 // seasonal AR Φ₁..Φ_P (at lags s, 2s, …)
	STheta    []float64 // seasonal MA Θ₁..Θ_Q
	Intercept float64
	Sigma2    float64
	N         int

	history *timeseries.Series
}

func (o SeasonalOrder) maxARLag() int {
	lag := o.P
	if s := o.SP * o.Period; s > lag {
		lag = s
	}
	return lag
}

func (o SeasonalOrder) maxMALag() int {
	lag := o.Q
	if s := o.SQ * o.Period; s > lag {
		lag = s
	}
	return lag
}

func (o SeasonalOrder) minObservations() int {
	need := o.D + o.SD*o.Period + 3*(o.maxARLag()+o.maxMALag()+2) + 8
	return need
}

// seasonalDifference applies ∇ᵈ∇ˢᴰ.
func seasonalDifference(s *timeseries.Series, o SeasonalOrder) (*timeseries.Series, error) {
	cur := s
	for i := 0; i < o.SD; i++ {
		next, err := timeseries.SeasonalDiff(cur, o.Period)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return timeseries.DiffN(cur, o.D)
}

// FitSeasonal estimates a SARIMA model by the same two-stage
// Hannan–Rissanen regression as Fit, with seasonal lag and innovation
// regressors added.
func FitSeasonal(s *timeseries.Series, order SeasonalOrder) (*SeasonalModel, error) {
	if err := order.Validate(); err != nil {
		return nil, err
	}
	if s.Len() < order.minObservations() {
		return nil, fmt.Errorf("arima: series length %d too short for %s (need >= %d)",
			s.Len(), order, order.minObservations())
	}
	w, err := seasonalDifference(s, order)
	if err != nil {
		return nil, err
	}
	wr := w.Raw()
	n := len(wr)

	// Stage 1: long AR for innovations, spanning at least one season.
	longAR := order.maxARLag() + order.maxMALag() + 2
	if cap := n / 3; longAR > cap {
		longAR = cap
	}
	if longAR < 1 {
		longAR = 1
	}
	innov := make([]float64, n)
	needInnov := order.Q > 0 || order.SQ > 0
	if needInnov {
		coef, c, ferr := fitAR(wr, longAR)
		if ferr != nil {
			return nil, fmt.Errorf("arima: seasonal stage-1: %w", ferr)
		}
		for t := longAR; t < n; t++ {
			pred := c
			for i := 1; i <= longAR; i++ {
				pred += coef[i-1] * wr[t-i]
			}
			innov[t] = wr[t] - pred
		}
	}

	// Stage 2: regression with seasonal columns.
	start := order.maxARLag()
	if m := order.maxMALag(); m > start {
		start = m
	}
	if needInnov && longAR > start {
		start = longAR
	}
	cols := 1 + order.P + order.SP + order.Q + order.SQ
	rows := n - start
	if rows < cols+2 {
		return nil, fmt.Errorf("arima: only %d usable rows for %d parameters in %s", rows, cols, order)
	}
	x := linalg.NewMatrix(rows, cols)
	y := make([]float64, rows)
	for r := 0; r < rows; r++ {
		t := start + r
		y[r] = wr[t]
		col := 0
		x.Set(r, col, 1)
		col++
		for i := 1; i <= order.P; i++ {
			x.Set(r, col, wr[t-i])
			col++
		}
		for i := 1; i <= order.SP; i++ {
			x.Set(r, col, wr[t-i*order.Period])
			col++
		}
		for j := 1; j <= order.Q; j++ {
			x.Set(r, col, innov[t-j])
			col++
		}
		for j := 1; j <= order.SQ; j++ {
			x.Set(r, col, innov[t-j*order.Period])
			col++
		}
	}
	beta, err := linalg.LeastSquares(x, y, 1e-9)
	if err != nil {
		return nil, fmt.Errorf("arima: seasonal stage-2: %w", err)
	}
	m := &SeasonalModel{Order: order, N: s.Len(), history: s.Clone()}
	col := 0
	m.Intercept = beta[col]
	col++
	m.Phi = append([]float64(nil), beta[col:col+order.P]...)
	col += order.P
	m.SPhi = append([]float64(nil), beta[col:col+order.SP]...)
	col += order.SP
	m.Theta = append([]float64(nil), beta[col:col+order.Q]...)
	col += order.Q
	m.STheta = append([]float64(nil), beta[col:col+order.SQ]...)
	stabilize(m.Phi)
	stabilize(m.SPhi)
	stabilize(m.Theta)
	stabilize(m.STheta)

	res := m.residuals(wr)
	m.Sigma2 = variance(res)
	if math.IsNaN(m.Sigma2) || math.IsInf(m.Sigma2, 0) {
		return nil, errors.New("arima: seasonal estimation produced non-finite variance")
	}
	return m, nil
}

// predictOne evaluates the SARMA equation at position t over the extended
// arrays (values w and innovations e); out-of-range history reads as 0.
func (m *SeasonalModel) predictOne(w, e []float64, t int) float64 {
	o := m.Order
	pred := m.Intercept
	for i := 1; i <= o.P; i++ {
		if t-i >= 0 {
			pred += m.Phi[i-1] * w[t-i]
		}
	}
	for i := 1; i <= o.SP; i++ {
		if t-i*o.Period >= 0 {
			pred += m.SPhi[i-1] * w[t-i*o.Period]
		}
	}
	for j := 1; j <= o.Q; j++ {
		if t-j >= 0 {
			pred += m.Theta[j-1] * e[t-j]
		}
	}
	for j := 1; j <= o.SQ; j++ {
		if t-j*o.Period >= 0 {
			pred += m.STheta[j-1] * e[t-j*o.Period]
		}
	}
	return pred
}

func (m *SeasonalModel) residuals(w []float64) []float64 {
	res := make([]float64, len(w))
	for t := range w {
		res[t] = w[t] - m.predictOne(w, res, t)
	}
	return res
}

// Forecast returns h-step-ahead forecasts from the training series.
func (m *SeasonalModel) Forecast(h int) ([]float64, error) {
	return m.ForecastFrom(m.history, h)
}

// ForecastFrom returns h-step-ahead MMSE forecasts on the original scale:
// the SARMA recursion on the doubly differenced series, then inversion of
// ∇ᵈ and ∇ˢᴰ.
func (m *SeasonalModel) ForecastFrom(history *timeseries.Series, h int) ([]float64, error) {
	if h <= 0 {
		return nil, errors.New("arima: forecast horizon must be positive")
	}
	o := m.Order
	if history.Len() < o.minObservations() {
		return nil, fmt.Errorf("arima: history length %d too short for %s", history.Len(), o)
	}
	w, err := seasonalDifference(history, o)
	if err != nil {
		return nil, err
	}
	wr := w.Raw()
	n := len(wr)
	ext := make([]float64, n+h)
	copy(ext, wr)
	extRes := make([]float64, n+h)
	copy(extRes, m.residuals(wr))
	for k := 0; k < h; k++ {
		t := n + k
		ext[t] = m.predictOne(ext, extRes, t)
	}
	fc := ext[n:]

	// Invert ∇ᵈ first (innermost), anchored on the seasonal-differenced
	// history.
	if o.D > 0 {
		seasonalHist := history
		for i := 0; i < o.SD; i++ {
			next, err := timeseries.SeasonalDiff(seasonalHist, o.Period)
			if err != nil {
				return nil, err
			}
			seasonalHist = next
		}
		tails, err := timeseries.DiffTails(seasonalHist, o.D)
		if err != nil {
			return nil, err
		}
		fc = timeseries.IntegrateForecast(fc, tails)
	}
	// Invert ∇ˢᴰ: Y_{t+k} = x_{t+k} + Y_{t+k−s}, recursively per level.
	for level := 0; level < o.SD; level++ {
		// Reconstruct the (SD−level−1)-times seasonally differenced
		// history to read the seasonal anchors from.
		anchor := history
		for i := 0; i < o.SD-level-1; i++ {
			next, err := timeseries.SeasonalDiff(anchor, o.Period)
			if err != nil {
				return nil, err
			}
			anchor = next
		}
		ar := anchor.Raw()
		out := make([]float64, len(fc))
		for k := range fc {
			back := k - o.Period
			var prev float64
			if back >= 0 {
				prev = out[back]
			} else {
				prev = ar[len(ar)+back]
			}
			out[k] = fc[k] + prev
		}
		fc = out
	}
	return fc, nil
}

// RollingForecast mirrors Model.RollingForecast for seasonal models.
func (m *SeasonalModel) RollingForecast(train, test *timeseries.Series) ([]float64, error) {
	history := train.Clone()
	out := make([]float64, test.Len())
	for t := 0; t < test.Len(); t++ {
		fc, err := m.ForecastFrom(history, 1)
		if err != nil {
			return nil, fmt.Errorf("arima: seasonal rolling forecast at step %d: %w", t, err)
		}
		out[t] = fc[0]
		history.Append(test.At(t))
	}
	return out, nil
}

// AIC returns the Akaike information criterion for the seasonal model.
func (m *SeasonalModel) AIC() float64 {
	o := m.Order
	k := float64(o.P + o.Q + o.SP + o.SQ + 1)
	n := float64(m.N - o.D - o.SD*o.Period)
	s2 := m.Sigma2
	if s2 <= 0 {
		s2 = 1e-12
	}
	return n*math.Log(s2) + 2*k
}
