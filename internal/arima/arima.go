// Package arima implements the autoregressive integrated moving average
// model family used by Sheriff's prediction phase (paper Sec. IV.B).
//
// An ARIMA(p,d,q) process satisfies φ(L)∇ᵈY_t = c + θ(L)Z_t with
// φ(L) = 1 − φ₁L − … − φ_pLᵖ and θ(L) = 1 + θ₁L + … + θ_qL^q, where {Z_t}
// is white noise. Parameters are estimated by the Hannan–Rissanen two-stage
// regression (a standard realization of the Box–Jenkins methodology), and
// forecasts are minimum mean-square-error (MMSE) predictions: one-step-ahead
// directly, k-step-ahead by the recursion of the paper's Eqn. (12).
package arima

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"sheriff/internal/linalg"
	"sheriff/internal/timeseries"
)

// Order identifies an ARIMA(p,d,q) specification.
type Order struct {
	P int // autoregressive order
	D int // differencing order
	Q int // moving-average order
}

// String renders the order in the paper's ARIMA(p,d,q) notation.
func (o Order) String() string { return fmt.Sprintf("ARIMA(%d,%d,%d)", o.P, o.D, o.Q) }

// Validate reports whether the order is well formed.
func (o Order) Validate() error {
	if o.P < 0 || o.D < 0 || o.Q < 0 {
		return fmt.Errorf("arima: negative order component in %s", o)
	}
	if o.P == 0 && o.Q == 0 {
		return fmt.Errorf("arima: %s has no ARMA terms", o)
	}
	return nil
}

// Model is a fitted ARIMA model. Create one with Fit or AutoFit.
type Model struct {
	Order     Order
	Phi       []float64 // AR coefficients φ₁..φ_p
	Theta     []float64 // MA coefficients θ₁..θ_q
	Intercept float64   // constant c of the ARMA equation on ∇ᵈY
	Sigma2    float64   // residual variance estimate
	N         int       // number of observations used in fitting

	history *timeseries.Series // original-scale training series

	mu sync.Mutex
	fc *suffixState // incremental forecast context (see ForecastFrom)
}

// suffixState is the O(max(p,q)) forecasting context cached between
// ForecastFrom calls on the same append-only history: the last p values of
// the differenced series and the last q innovations, which fully determine
// the MMSE forecast recursion. Advancing it over k freshly appended
// observations costs O(k) instead of the O(n) full re-derivation, and the
// continuation is bit-exact with a cold recompute (the residual recursion
// is Markov in exactly this state).
type suffixState struct {
	src   *timeseries.Series
	yLen  int       // observations folded into the state
	yLast float64   // src.At(yLen-1), to detect non-append mutation
	wTail []float64 // last p differenced values, most recent first
	rTail []float64 // last q innovations, most recent first
}

// minObservations returns the minimum series length required to fit o.
func minObservations(o Order) int {
	m := o.P
	if o.Q > m {
		m = o.Q
	}
	// Stage-one long AR plus enough rows for the stage-two regression.
	return o.D + 4*(m+1) + 8
}

// Fit estimates an ARIMA model of the given order on s using the
// Hannan–Rissanen procedure.
func Fit(s *timeseries.Series, order Order) (*Model, error) {
	if err := order.Validate(); err != nil {
		return nil, err
	}
	if s.Len() < minObservations(order) {
		return nil, fmt.Errorf("arima: series length %d too short for %s (need >= %d)",
			s.Len(), order, minObservations(order))
	}
	w, err := timeseries.DiffN(s, order.D)
	if err != nil {
		return nil, fmt.Errorf("arima: differencing: %w", err)
	}
	phi, theta, intercept, err := hannanRissanen(w.Raw(), order.P, order.Q)
	if err != nil {
		return nil, err
	}
	m := &Model{
		Order:     order,
		Phi:       phi,
		Theta:     theta,
		Intercept: intercept,
		N:         s.Len(),
		history:   s.Clone(),
	}
	res := m.residuals(w.Raw())
	m.Sigma2 = variance(res)
	if math.IsNaN(m.Sigma2) || math.IsInf(m.Sigma2, 0) {
		return nil, errors.New("arima: estimation produced non-finite residual variance")
	}
	return m, nil
}

// hannanRissanen runs the two-stage regression on the (already
// differenced) series w and returns (phi, theta, intercept).
func hannanRissanen(w []float64, p, q int) (phi, theta []float64, intercept float64, err error) {
	n := len(w)
	// Stage 1: long autoregression to obtain preliminary innovations.
	longAR := p + q + 3
	if cap := n / 4; longAR > cap {
		longAR = cap
	}
	if longAR < 1 {
		longAR = 1
	}
	innov := make([]float64, n)
	if q > 0 {
		arCoef, c, ferr := fitAR(w, longAR)
		if ferr != nil {
			return nil, nil, 0, fmt.Errorf("arima: stage-1 long AR: %w", ferr)
		}
		for t := longAR; t < n; t++ {
			pred := c
			for i := 1; i <= longAR; i++ {
				pred += arCoef[i-1] * w[t-i]
			}
			innov[t] = w[t] - pred
		}
	}
	// Stage 2: regress w_t on 1, lagged w, lagged innovations.
	start := p
	if q > start {
		start = q
	}
	if longAR > start && q > 0 {
		start = longAR
	}
	rows := n - start
	cols := 1 + p + q
	if rows < cols+2 {
		return nil, nil, 0, fmt.Errorf("arima: only %d usable rows for %d parameters", rows, cols)
	}
	x := linalg.NewMatrix(rows, cols)
	y := make([]float64, rows)
	for r := 0; r < rows; r++ {
		t := start + r
		y[r] = w[t]
		x.Set(r, 0, 1)
		for i := 1; i <= p; i++ {
			x.Set(r, i, w[t-i])
		}
		for j := 1; j <= q; j++ {
			x.Set(r, p+j, innov[t-j])
		}
	}
	beta, err := linalg.LeastSquares(x, y, 1e-9)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("arima: stage-2 regression: %w", err)
	}
	intercept = beta[0]
	phi = append([]float64(nil), beta[1:1+p]...)
	theta = append([]float64(nil), beta[1+p:]...)
	stabilize(phi)
	stabilize(theta)
	return phi, theta, intercept, nil
}

// fitAR fits an AR(k) model with intercept by least squares.
func fitAR(w []float64, k int) (coef []float64, intercept float64, err error) {
	n := len(w)
	rows := n - k
	if rows < k+2 {
		return nil, 0, fmt.Errorf("arima: AR(%d) needs more data (have %d rows)", k, rows)
	}
	x := linalg.NewMatrix(rows, k+1)
	y := make([]float64, rows)
	for r := 0; r < rows; r++ {
		t := k + r
		y[r] = w[t]
		x.Set(r, 0, 1)
		for i := 1; i <= k; i++ {
			x.Set(r, i, w[t-i])
		}
	}
	beta, err := linalg.LeastSquares(x, y, 1e-9)
	if err != nil {
		return nil, 0, err
	}
	return beta[1:], beta[0], nil
}

// stabilize shrinks a coefficient vector whose absolute sum is explosive.
// The Hannan–Rissanen regression occasionally returns a (numerically)
// non-stationary polynomial on short or degenerate inputs; shrinking toward
// zero keeps recursive forecasts bounded while preserving the direction of
// the fit.
func stabilize(coef []float64) {
	const maxAbsSum = 0.99
	sum := 0.0
	for _, c := range coef {
		sum += math.Abs(c)
	}
	if sum <= maxAbsSum || sum == 0 {
		return
	}
	f := maxAbsSum / sum
	for i := range coef {
		coef[i] *= f
	}
}

// residuals computes the one-step in-sample innovations of the fitted ARMA
// equation on the differenced series w.
func (m *Model) residuals(w []float64) []float64 {
	p, q := m.Order.P, m.Order.Q
	res := make([]float64, len(w))
	for t := 0; t < len(w); t++ {
		pred := m.Intercept
		for i := 1; i <= p; i++ {
			if t-i >= 0 {
				pred += m.Phi[i-1] * w[t-i]
			}
		}
		for j := 1; j <= q; j++ {
			if t-j >= 0 {
				pred += m.Theta[j-1] * res[t-j]
			}
		}
		res[t] = w[t] - pred
	}
	return res
}

func variance(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	mean := 0.0
	for _, x := range v {
		mean += x
	}
	mean /= float64(len(v))
	sum := 0.0
	for _, x := range v {
		d := x - mean
		sum += d * d
	}
	return sum / float64(len(v))
}

// Forecast returns the h-step-ahead MMSE forecasts from the end of the
// training series, on the original (undifferenced) scale.
func (m *Model) Forecast(h int) ([]float64, error) {
	return m.ForecastFrom(m.history, h)
}

// ForecastFrom returns h-step-ahead MMSE forecasts treating history as the
// observed past. One-step-ahead is the direct conditional mean; k-step uses
// the recursion in which earlier forecasts stand in for unobserved values
// and future innovations are replaced by their zero mean (paper Sec. IV.B,
// ONE-STEP-AHEAD / K-STEP-AHEAD).
//
// Repeated calls with the same *Series value hit a suffix-aware fast path:
// when the history has only grown since the previous call (the shim
// collection loop's append-only pattern), the cached forecast context is
// advanced over the new suffix in O(new points) instead of re-deriving the
// full innovation sequence in O(n). Histories that shrank or were mutated
// in place fall back to the full recompute.
func (m *Model) ForecastFrom(history *timeseries.Series, h int) ([]float64, error) {
	if h <= 0 {
		return nil, errors.New("arima: forecast horizon must be positive")
	}
	if history.Len() < minObservations(m.Order) {
		return nil, fmt.Errorf("arima: history length %d too short for %s", history.Len(), m.Order)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.fc
	if st == nil || st.src != history || st.yLen > history.Len() ||
		history.At(st.yLen-1) != st.yLast {
		var err error
		if st, err = m.rebuildState(history); err != nil {
			return nil, err
		}
		m.fc = st
	} else if st.yLen < history.Len() {
		if err := m.advanceState(st, history); err != nil {
			return nil, err
		}
	}
	return m.forecastFromState(st, history, h)
}

// rebuildState derives the forecast context from scratch — the original
// full O(n) pass over the differenced series and its innovations.
func (m *Model) rebuildState(history *timeseries.Series) (*suffixState, error) {
	w, err := timeseries.DiffN(history, m.Order.D)
	if err != nil {
		return nil, err
	}
	wraw := w.Raw()
	res := m.residuals(wraw)
	p, q := m.Order.P, m.Order.Q
	if len(wraw) < p || len(res) < q {
		return nil, fmt.Errorf("arima: differenced history too short for %s", m.Order)
	}
	st := &suffixState{
		src:   history,
		yLen:  history.Len(),
		yLast: history.Last(),
		wTail: make([]float64, p),
		rTail: make([]float64, q),
	}
	for i := 0; i < p; i++ {
		st.wTail[i] = wraw[len(wraw)-1-i]
	}
	for j := 0; j < q; j++ {
		st.rTail[j] = res[len(res)-1-j]
	}
	return st, nil
}

// advanceState folds the freshly appended observations into the cached
// context. New differenced values come from a local window (differencing
// is a local operator, so the window result is bit-exact with the global
// pass), and the innovation recursion continues from the cached tails.
func (m *Model) advanceState(st *suffixState, history *timeseries.Series) error {
	p, q, d := m.Order.P, m.Order.Q, m.Order.D
	window, err := timeseries.DiffN(history.Slice(st.yLen-d, history.Len()), d)
	if err != nil {
		return err
	}
	for _, v := range window.Raw() {
		pred := m.Intercept
		for i := 1; i <= p; i++ {
			pred += m.Phi[i-1] * st.wTail[i-1]
		}
		for j := 1; j <= q; j++ {
			pred += m.Theta[j-1] * st.rTail[j-1]
		}
		r := v - pred
		if p > 0 {
			copy(st.wTail[1:], st.wTail[:p-1])
			st.wTail[0] = v
		}
		if q > 0 {
			copy(st.rTail[1:], st.rTail[:q-1])
			st.rTail[0] = r
		}
	}
	st.yLen = history.Len()
	st.yLast = history.Last()
	return nil
}

// forecastFromState runs the MMSE forecast recursion off the cached tails
// and re-integrates when the model differences.
func (m *Model) forecastFromState(st *suffixState, history *timeseries.Series, h int) ([]float64, error) {
	p, q, d := m.Order.P, m.Order.Q, m.Order.D
	// Extended arrays: the p (resp. q) tail values, oldest first, then the
	// forecast horizon. Future innovations stay at their zero mean.
	ext := make([]float64, p+h)
	for i := 0; i < p; i++ {
		ext[p-1-i] = st.wTail[i]
	}
	extRes := make([]float64, q+h)
	for j := 0; j < q; j++ {
		extRes[q-1-j] = st.rTail[j]
	}
	for k := 0; k < h; k++ {
		pred := m.Intercept
		for i := 1; i <= p; i++ {
			pred += m.Phi[i-1] * ext[p+k-i]
		}
		for j := 1; j <= q; j++ {
			pred += m.Theta[j-1] * extRes[q+k-j]
		}
		ext[p+k] = pred
	}
	fc := ext[p:]
	if d == 0 {
		return fc, nil
	}
	// Difference tails only need the last d observations (each ∇^i tail is
	// a function of the final i+1 values), so a window keeps this O(d²).
	tails, err := timeseries.DiffTails(history.Slice(history.Len()-d-1, history.Len()), d)
	if err != nil {
		return nil, err
	}
	return timeseries.IntegrateForecast(fc, tails), nil
}

// ForecastInterval returns the h-step forecasts plus symmetric prediction
// intervals at roughly 95% coverage (±1.96·σ·√ψ, using the cumulative
// psi-weight approximation for the forecast-error variance).
func (m *Model) ForecastInterval(h int) (point, lower, upper []float64, err error) {
	point, err = m.Forecast(h)
	if err != nil {
		return nil, nil, nil, err
	}
	psi := m.psiWeights(h)
	lower = make([]float64, h)
	upper = make([]float64, h)
	cum := 0.0
	sigma := math.Sqrt(m.Sigma2)
	for k := 0; k < h; k++ {
		cum += psi[k] * psi[k]
		half := 1.96 * sigma * math.Sqrt(cum)
		lower[k] = point[k] - half
		upper[k] = point[k] + half
	}
	return point, lower, upper, nil
}

// psiWeights returns the first h MA(∞) psi weights of the ARMA part
// (ψ₀ = 1), obtained by the standard recursion ψ_k = θ_k + Σ φ_i ψ_{k−i}.
func (m *Model) psiWeights(h int) []float64 {
	psi := make([]float64, h)
	if h == 0 {
		return psi
	}
	psi[0] = 1
	for k := 1; k < h; k++ {
		v := 0.0
		if k <= m.Order.Q {
			v = m.Theta[k-1]
		}
		for i := 1; i <= m.Order.P && i <= k; i++ {
			v += m.Phi[i-1] * psi[k-i]
		}
		psi[k] = v
	}
	return psi
}

// AIC returns the Akaike information criterion of the fitted model;
// lower is better. Used by AutoFit's Box–Jenkins style order search.
func (m *Model) AIC() float64 {
	k := float64(m.Order.P + m.Order.Q + 1)
	n := float64(m.N - m.Order.D)
	s2 := m.Sigma2
	if s2 <= 0 {
		s2 = 1e-12
	}
	return n*math.Log(s2) + 2*k
}
