package arima

import (
	"encoding/json"
	"fmt"

	"sheriff/internal/timeseries"
)

// modelJSON is the serialized form of a fitted Model: parameters plus the
// training history needed to forecast from the model's own end point.
type modelJSON struct {
	Order     Order     `json:"order"`
	Phi       []float64 `json:"phi,omitempty"`
	Theta     []float64 `json:"theta,omitempty"`
	Intercept float64   `json:"intercept"`
	Sigma2    float64   `json:"sigma2"`
	N         int       `json:"n"`
	History   []float64 `json:"history"`
}

// MarshalJSON serializes the fitted model, history included, so a shim
// can persist trained predictors across restarts.
func (m *Model) MarshalJSON() ([]byte, error) {
	return json.Marshal(modelJSON{
		Order:     m.Order,
		Phi:       m.Phi,
		Theta:     m.Theta,
		Intercept: m.Intercept,
		Sigma2:    m.Sigma2,
		N:         m.N,
		History:   m.history.Values(),
	})
}

// UnmarshalJSON restores a model serialized by MarshalJSON.
func (m *Model) UnmarshalJSON(b []byte) error {
	var dto modelJSON
	if err := json.Unmarshal(b, &dto); err != nil {
		return fmt.Errorf("arima: unmarshal: %w", err)
	}
	if err := dto.Order.Validate(); err != nil {
		return fmt.Errorf("arima: unmarshal: %w", err)
	}
	if len(dto.Phi) != dto.Order.P || len(dto.Theta) != dto.Order.Q {
		return fmt.Errorf("arima: unmarshal: coefficient counts (%d,%d) do not match %s",
			len(dto.Phi), len(dto.Theta), dto.Order)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.Order = dto.Order
	m.Phi = dto.Phi
	m.Theta = dto.Theta
	m.Intercept = dto.Intercept
	m.Sigma2 = dto.Sigma2
	m.N = dto.N
	m.history = timeseries.New(dto.History)
	// Drop the incremental forecast context: it caches innovations
	// computed under the previous coefficients, and a source series
	// pointer from before the unmarshal could otherwise revalidate it.
	m.fc = nil
	return nil
}

// seasonalModelJSON is the serialized form of a SeasonalModel.
type seasonalModelJSON struct {
	Order     SeasonalOrder `json:"order"`
	Phi       []float64     `json:"phi,omitempty"`
	Theta     []float64     `json:"theta,omitempty"`
	SPhi      []float64     `json:"sphi,omitempty"`
	STheta    []float64     `json:"stheta,omitempty"`
	Intercept float64       `json:"intercept"`
	Sigma2    float64       `json:"sigma2"`
	N         int           `json:"n"`
	History   []float64     `json:"history"`
}

// MarshalJSON serializes the fitted seasonal model.
func (m *SeasonalModel) MarshalJSON() ([]byte, error) {
	return json.Marshal(seasonalModelJSON{
		Order:     m.Order,
		Phi:       m.Phi,
		Theta:     m.Theta,
		SPhi:      m.SPhi,
		STheta:    m.STheta,
		Intercept: m.Intercept,
		Sigma2:    m.Sigma2,
		N:         m.N,
		History:   m.history.Values(),
	})
}

// UnmarshalJSON restores a seasonal model serialized by MarshalJSON.
func (m *SeasonalModel) UnmarshalJSON(b []byte) error {
	var dto seasonalModelJSON
	if err := json.Unmarshal(b, &dto); err != nil {
		return fmt.Errorf("arima: unmarshal seasonal: %w", err)
	}
	if err := dto.Order.Validate(); err != nil {
		return fmt.Errorf("arima: unmarshal seasonal: %w", err)
	}
	if len(dto.Phi) != dto.Order.P || len(dto.Theta) != dto.Order.Q ||
		len(dto.SPhi) != dto.Order.SP || len(dto.STheta) != dto.Order.SQ {
		return fmt.Errorf("arima: unmarshal seasonal: coefficient counts do not match %s", dto.Order)
	}
	m.Order = dto.Order
	m.Phi = dto.Phi
	m.Theta = dto.Theta
	m.SPhi = dto.SPhi
	m.STheta = dto.STheta
	m.Intercept = dto.Intercept
	m.Sigma2 = dto.Sigma2
	m.N = dto.N
	m.history = timeseries.New(dto.History)
	return nil
}
