package pool

import (
	"sync/atomic"
	"testing"
)

func TestShardsRunsEveryShardOnce(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8} {
		s := NewShards(n)
		counts := make([]atomic.Int64, n)
		for round := 0; round < 5; round++ {
			s.Do(func(shard int) { counts[shard].Add(1) })
		}
		for i := range counts {
			if got := counts[i].Load(); got != 5 {
				t.Fatalf("n=%d shard %d ran %d times, want 5", n, i, got)
			}
		}
		s.Close()
	}
}

func TestShardsStableBinding(t *testing.T) {
	// The same shard index must always run on the same goroutine-resident
	// worker, so shard-owned state never needs synchronization. We can't
	// observe goroutine identity directly; instead mutate per-shard state
	// without atomics under -race — a binding violation races.
	s := NewShards(4)
	defer s.Close()
	state := make([][]int, 4)
	for round := 0; round < 50; round++ {
		s.Do(func(shard int) { state[shard] = append(state[shard], round) })
	}
	for i := range state {
		if len(state[i]) != 50 {
			t.Fatalf("shard %d saw %d rounds, want 50", i, len(state[i]))
		}
	}
}

func TestShardsCloseIdempotent(t *testing.T) {
	s := NewShards(3)
	s.Do(func(int) {})
	s.Close()
	s.Close()

	// Close before first Do (workers never started) must also be safe.
	s2 := NewShards(3)
	s2.Close()
}

func TestShardsClampsToOne(t *testing.T) {
	s := NewShards(0)
	if s.N() != 1 {
		t.Fatalf("N() = %d, want 1", s.N())
	}
	ran := false
	s.Do(func(shard int) {
		if shard != 0 {
			t.Fatalf("shard = %d, want 0", shard)
		}
		ran = true
	})
	if !ran {
		t.Fatal("Do never ran the body")
	}
	s.Close()
}

func TestShardsSteadyStateAllocs(t *testing.T) {
	s := NewShards(4)
	defer s.Close()
	var sink atomic.Int64
	fn := func(shard int) { sink.Add(int64(shard)) }
	s.Do(fn) // warm: lazy worker start
	allocs := testing.AllocsPerRun(100, func() { s.Do(fn) })
	if allocs != 0 {
		t.Fatalf("steady-state Do allocates %.1f/op, want 0", allocs)
	}
}
