package pool

import "sync"

// Shards is a persistent worker group for shard-resident loops: n workers,
// each permanently bound to one shard index, woken together once per round.
// Unlike Pool.ForEach — which spawns fresh goroutines per call and claims
// indices dynamically — a Shards round hands the SAME shard index to the
// same worker every time, so shard-owned state (per-VM arrays, per-rack
// monitors) stays resident with its goroutine for the whole run and a
// steady-state round allocates nothing.
//
// The caller participates as shard 0, so n == 1 runs fully inline with no
// goroutines at all, and nested use of the shared Pool from inside a shard
// body cannot deadlock. Workers are started lazily on the first Do and
// parked on their channels between rounds.
//
// A Shards is NOT safe for concurrent Do calls: it is a phase barrier for
// a single coordinator (the runtime step loop), not a general pool.
type Shards struct {
	n      int
	work   []chan func(int) // one per worker shard 1..n-1
	done   chan struct{}
	wg     sync.WaitGroup
	closed bool
}

// NewShards returns a shard group of n workers. Non-positive n clamps to 1.
func NewShards(n int) *Shards {
	if n < 1 {
		n = 1
	}
	return &Shards{n: n}
}

// N returns the number of shards.
func (s *Shards) N() int { return s.n }

func (s *Shards) start() {
	s.work = make([]chan func(int), s.n-1)
	s.done = make(chan struct{}, s.n-1)
	for k := range s.work {
		ch := make(chan func(int))
		s.work[k] = ch
		shard := k + 1
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for fn := range ch {
				fn(shard)
				s.done <- struct{}{}
			}
		}()
	}
}

// Do runs fn(shard) once for every shard in [0, n) — shard 0 on the
// calling goroutine, the rest on their resident workers — and returns when
// all have completed. fn must be safe to call concurrently with itself for
// distinct shards. Passing the same prebuilt fn every round keeps the
// steady state allocation-free.
func (s *Shards) Do(fn func(shard int)) {
	if s.n == 1 {
		fn(0)
		return
	}
	if s.work == nil {
		s.start()
	}
	for _, ch := range s.work {
		ch <- fn
	}
	fn(0)
	for range s.work {
		<-s.done
	}
}

// Close releases the resident workers. Do must not be called after Close.
// Close is idempotent.
func (s *Shards) Close() {
	if s.closed {
		return
	}
	s.closed = true
	for _, ch := range s.work {
		close(ch)
	}
	s.wg.Wait()
}
