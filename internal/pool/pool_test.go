package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestNewClampsWorkers(t *testing.T) {
	for _, w := range []int{-3, 0} {
		if got := New(w).Workers(); got != 1 {
			t.Fatalf("New(%d).Workers() = %d, want 1", w, got)
		}
	}
	if got := New(7).Workers(); got != 7 {
		t.Fatalf("Workers() = %d, want 7", got)
	}
}

func TestSharedSizedToGOMAXPROCS(t *testing.T) {
	if got, want := Shared().Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("Shared().Workers() = %d, want %d", got, want)
	}
	if Shared() != Shared() {
		t.Fatal("Shared() is not a singleton")
	}
}

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		p := New(workers)
		const n = 1000
		counts := make([]int32, n)
		p.ForEach(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachZeroAndNegative(t *testing.T) {
	called := false
	New(4).ForEach(0, func(int) { called = true })
	New(4).ForEach(-5, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	p := New(workers)
	var cur, peak int32
	var mu sync.Mutex
	p.ForEach(200, func(int) {
		c := atomic.AddInt32(&cur, 1)
		mu.Lock()
		if c > peak {
			peak = c
		}
		mu.Unlock()
		atomic.AddInt32(&cur, -1)
	})
	if peak > workers {
		t.Fatalf("observed %d concurrent tasks, bound is %d", peak, workers)
	}
}

func TestNestedForEachDoesNotDeadlock(t *testing.T) {
	p := New(2)
	var total atomic.Int64
	p.ForEach(4, func(int) {
		p.ForEach(4, func(int) { total.Add(1) })
	})
	if total.Load() != 16 {
		t.Fatalf("nested total = %d, want 16", total.Load())
	}
}

func TestRunExecutesAllTasks(t *testing.T) {
	var a, b, c atomic.Bool
	New(2).Run(
		func() { a.Store(true) },
		func() { b.Store(true) },
		func() { c.Store(true) },
	)
	if !a.Load() || !b.Load() || !c.Load() {
		t.Fatal("not every task ran")
	}
	New(2).Run() // no tasks is a no-op
}

func TestCacheRecyclesValues(t *testing.T) {
	built := 0
	c := NewCache(func() *[]int { built++; s := make([]int, 0, 8); return &s })
	v := c.Get()
	if built != 1 {
		t.Fatalf("constructor ran %d times, want 1", built)
	}
	*v = append(*v, 1, 2, 3)
	c.Put(v)
	got := c.Get()
	// sync.Pool may drop values under GC pressure, but in a quiet test the
	// put value comes straight back with its capacity intact.
	if got == v && cap(*got) != 8 {
		t.Fatalf("recycled value lost its storage: cap %d", cap(*got))
	}
	c.Put(got)
}
