// Package pool provides the shared bounded worker pool behind Sheriff's
// parallel phases: the runtime's per-VM prediction fan-out, candidate
// fitting in the predictor pools, the migrate coordinator's per-shim
// rounds, and the cost model's per-source shortest-path refresh.
//
// The pool is deliberately minimal: work is distributed over item indices
// through an atomic counter, the calling goroutine participates as one of
// the workers (so nested use never deadlocks and single-core runs pay no
// scheduling detour), and at most Workers goroutines run per call. There
// is no persistent goroutine state, so a Pool is safe for concurrent use
// from any number of callers.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool bounds the concurrency of ForEach/Run calls.
type Pool struct {
	workers int
}

// New returns a pool that runs at most workers tasks concurrently.
// Non-positive values clamp to 1 (fully serial).
func New(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{workers: workers}
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

var (
	sharedOnce sync.Once
	shared     *Pool
)

// Shared returns the process-wide pool, sized to GOMAXPROCS at first use.
// All of Sheriff's internal parallel phases draw from this pool so the
// total goroutine fan-out tracks the hardware rather than the topology
// size (one goroutine per rack on a 1152-rack Fat-Tree is not a plan).
func Shared() *Pool {
	sharedOnce.Do(func() {
		shared = New(runtime.GOMAXPROCS(0))
	})
	return shared
}

// ForEach invokes fn(i) for every i in [0, n), distributing indices over
// at most Workers goroutines (the caller included) and returning when all
// calls have completed. Indices are claimed dynamically, so skewed item
// costs — one rack with 10× the VMs of the rest — balance across workers
// instead of serializing behind the largest item. fn must be safe to call
// concurrently with itself for distinct indices.
func (p *Pool) ForEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := p.workers
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	var wg sync.WaitGroup
	wg.Add(w - 1)
	for k := 0; k < w-1; k++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
}

// Run executes the given tasks with the pool's concurrency bound and
// returns when all have completed.
func (p *Pool) Run(tasks ...func()) {
	p.ForEach(len(tasks), func(i int) { tasks[i]() })
}

// Cache is a typed free-list for reusable scratch objects (shortest-path
// sweep state, per-pass route tables). It wraps sync.Pool so steady-state
// hot loops stop allocating after warmup; like sync.Pool, cached items may
// be dropped under memory pressure, so Get must always be usable on a
// fresh value from the constructor.
type Cache[T any] struct {
	p sync.Pool
}

// NewCache returns a cache whose Get falls back to newFn when empty.
func NewCache[T any](newFn func() T) *Cache[T] {
	c := &Cache[T]{}
	c.p.New = func() any { return newFn() }
	return c
}

// Get returns a cached value or a freshly constructed one.
func (c *Cache[T]) Get() T { return c.p.Get().(T) }

// Put returns a value to the cache for reuse.
func (c *Cache[T]) Put(v T) { c.p.Put(v) }
