package faults

import (
	"fmt"
	"math/rand"

	"sheriff/internal/comm"
)

// LinkDrop overrides the plan-wide drop probability for one directed
// node pair (bus addresses, i.e. rack indices).
type LinkDrop struct {
	From, To int
	// Drop is the per-message drop probability on this link, in [0,1].
	// 1 models a dead link.
	Drop float64
}

// Partition is one named partition window: for Rounds delivery rounds
// starting at Start, the Nodes are cut off from every node outside the
// set — messages crossing the cut are dropped with cause
// "partition:<name>".
type Partition struct {
	// Name tags drop events and the migrate degradation ladder; empty
	// names are filled by WithDefaults ("partition-<i>").
	Name string
	// Start is the first bus round the cut applies (0 = from the start).
	Start int
	// Rounds is how long the cut lasts; zero means the default (1).
	Rounds int
	// Nodes is the isolated side of the cut.
	Nodes []int
}

// Plan declares one seeded fault scenario. The zero Plan injects nothing;
// zero numeric fields keep their no-fault meaning except where noted
// (Partition.Rounds), following the Validate()/WithDefaults() option
// convention.
type Plan struct {
	// Seed drives every probabilistic draw (drop, jitter, duplication,
	// reordering). Same seed + same plan + same traffic = same faults.
	Seed int64
	// Drop is the plan-wide per-message drop probability, in [0,1).
	Drop float64
	// Links overrides Drop per directed link.
	Links []LinkDrop
	// Delay is a fixed extra delivery delay in rounds for every message.
	Delay int
	// Jitter adds a uniform extra delay in [0, Jitter] rounds on top.
	Jitter int
	// DupRate duplicates each message once with this probability, in [0,1).
	DupRate float64
	// ReorderRate shuffles each multi-message delivery batch with this
	// probability, in [0,1).
	ReorderRate float64
	// Partitions are the named partition windows.
	Partitions []Partition
}

// Validate reports whether the plan is usable. Probabilities must lie in
// [0,1) ([0,1] for LinkDrop, where 1 is a dead link); delays must be
// non-negative; partition windows must not start before round 0.
func (p Plan) Validate() error {
	if p.Drop < 0 || p.Drop >= 1 {
		return fmt.Errorf("faults: Drop must be in [0,1), got %v", p.Drop)
	}
	if p.DupRate < 0 || p.DupRate >= 1 {
		return fmt.Errorf("faults: DupRate must be in [0,1), got %v", p.DupRate)
	}
	if p.ReorderRate < 0 || p.ReorderRate >= 1 {
		return fmt.Errorf("faults: ReorderRate must be in [0,1), got %v", p.ReorderRate)
	}
	if p.Delay < 0 {
		return fmt.Errorf("faults: Delay must be >= 0, got %d", p.Delay)
	}
	if p.Jitter < 0 {
		return fmt.Errorf("faults: Jitter must be >= 0, got %d", p.Jitter)
	}
	for i, l := range p.Links {
		if l.Drop < 0 || l.Drop > 1 {
			return fmt.Errorf("faults: Links[%d].Drop must be in [0,1], got %v", i, l.Drop)
		}
	}
	for i, w := range p.Partitions {
		if w.Start < 0 {
			return fmt.Errorf("faults: Partitions[%d].Start must be >= 0, got %d", i, w.Start)
		}
		if w.Rounds < 0 {
			return fmt.Errorf("faults: Partitions[%d].Rounds must be >= 0 (0 = default), got %d", i, w.Rounds)
		}
		if len(w.Nodes) == 0 {
			return fmt.Errorf("faults: Partitions[%d] isolates no nodes", i)
		}
	}
	return nil
}

// WithDefaults returns the plan with zero fields replaced by their
// defaults: unnamed partitions become "partition-<i>" and zero-length
// windows last 1 round. Probabilistic zero fields keep their meaning (no
// fault of that kind).
func (p Plan) WithDefaults() Plan {
	if len(p.Partitions) > 0 {
		ws := make([]Partition, len(p.Partitions))
		copy(ws, p.Partitions)
		for i := range ws {
			if ws[i].Name == "" {
				ws[i].Name = fmt.Sprintf("partition-%d", i)
			}
			if ws[i].Rounds == 0 {
				ws[i].Rounds = 1
			}
		}
		p.Partitions = ws
	}
	return p
}

// Injector executes a Plan against a comm.Bus. It implements
// comm.Injector plus the optional Partitioned probe the bus forwards to
// protocols. Like the bus it serves, it is not safe for concurrent use.
type Injector struct {
	plan  Plan
	rng   *rand.Rand
	links map[[2]int]float64
	// isolated[i] answers "is node n inside partition window i".
	isolated []map[int]bool
}

var _ comm.Injector = (*Injector)(nil)

// New compiles a validated plan into an injector.
func New(plan Plan) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	plan = plan.WithDefaults()
	inj := &Injector{plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
	if len(plan.Links) > 0 {
		inj.links = make(map[[2]int]float64, len(plan.Links))
		for _, l := range plan.Links {
			inj.links[[2]int{l.From, l.To}] = l.Drop
		}
	}
	inj.isolated = make([]map[int]bool, len(plan.Partitions))
	for i, w := range plan.Partitions {
		inj.isolated[i] = make(map[int]bool, len(w.Nodes))
		for _, n := range w.Nodes {
			inj.isolated[i][n] = true
		}
	}
	return inj, nil
}

// Plan returns the compiled plan (with defaults applied).
func (in *Injector) Plan() Plan { return in.plan }

// Partitioned reports the first partition window cutting from→to traffic
// at the given round. The bus forwards this to protocols via
// comm.Bus.Partitioned.
func (in *Injector) Partitioned(round, from, to int) (string, bool) {
	for i, w := range in.plan.Partitions {
		if round < w.Start || round >= w.Start+w.Rounds {
			continue
		}
		if in.isolated[i][from] != in.isolated[i][to] {
			return w.Name, true
		}
	}
	return "", false
}

// Judge implements comm.Injector: partition cuts apply first (no rng
// draw, so windows do not perturb the drop/delay/duplication streams of
// messages they never see), then the per-link or plan-wide drop draw,
// then delay jitter and duplication.
func (in *Injector) Judge(round int, m comm.Message) comm.Verdict {
	if name, cut := in.Partitioned(round, m.From, m.To); cut {
		return comm.Verdict{Drop: true, Cause: "partition:" + name}
	}
	drop, cause := in.plan.Drop, "fault-loss"
	if d, ok := in.links[[2]int{m.From, m.To}]; ok {
		drop, cause = d, "link-loss"
	}
	if drop > 0 && (drop >= 1 || in.rng.Float64() < drop) {
		return comm.Verdict{Drop: true, Cause: cause}
	}
	v := comm.Verdict{ExtraDelay: in.plan.Delay}
	if in.plan.Jitter > 0 {
		v.ExtraDelay += in.rng.Intn(in.plan.Jitter + 1)
	}
	if in.plan.DupRate > 0 && in.rng.Float64() < in.plan.DupRate {
		v.Duplicates = 1
	}
	return v
}

// Reorder implements comm.Injector: with probability ReorderRate the
// delivery batch is shuffled (seeded Fisher–Yates).
func (in *Injector) Reorder(round int, batch []comm.Message) bool {
	if in.plan.ReorderRate <= 0 || len(batch) < 2 {
		return false
	}
	if in.rng.Float64() >= in.plan.ReorderRate {
		return false
	}
	in.rng.Shuffle(len(batch), func(i, j int) { batch[i], batch[j] = batch[j], batch[i] })
	return true
}
