// Package faults is the deterministic, seeded network-fault injector
// behind the chaos path (`sheriffsim -mode chaos`). A declarative Plan —
// per-link drop probabilities, fixed-plus-jittered delivery delay,
// duplication, delivery-batch reordering, and named partition windows —
// compiles into an Injector that plugs into comm.Bus behind the small
// comm.Injector interface, mirroring the obs.Recorder pattern: a nil
// injector is a zero-cost no-op on the send/deliver hot path.
//
// Every decision the injector makes is a deterministic function of the
// plan, its seed, and the bus's call order, so one (seed, plan) pair
// replays bit-identically — the property the golden chaos trace pins.
// Predictive-management schemes must be validated under injected network
// faults (Bush & Frost's AVNMP line of work); the plan vocabulary here
// covers the failure modes the Sec. V.B REQUEST/ACK/REJECT protocol must
// survive: silent loss, late and duplicated replies, reordered grants,
// and regions that are temporarily unreachable.
package faults
