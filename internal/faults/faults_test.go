package faults

import (
	"reflect"
	"strings"
	"testing"

	"sheriff/internal/comm"
)

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		ok   bool
	}{
		{"zero", Plan{}, true},
		{"full", Plan{Seed: 3, Drop: 0.2, Delay: 1, Jitter: 2, DupRate: 0.1, ReorderRate: 0.3,
			Links:      []LinkDrop{{From: 0, To: 1, Drop: 1}},
			Partitions: []Partition{{Start: 2, Rounds: 3, Nodes: []int{0}}}}, true},
		{"negative drop", Plan{Drop: -0.1}, false},
		{"drop one", Plan{Drop: 1}, false},
		{"negative delay", Plan{Delay: -1}, false},
		{"negative jitter", Plan{Jitter: -2}, false},
		{"dup one", Plan{DupRate: 1}, false},
		{"reorder negative", Plan{ReorderRate: -0.5}, false},
		{"link drop above one", Plan{Links: []LinkDrop{{Drop: 1.5}}}, false},
		{"partition negative start", Plan{Partitions: []Partition{{Start: -1, Nodes: []int{0}}}}, false},
		{"partition no nodes", Plan{Partitions: []Partition{{Start: 0}}}, false},
	}
	for _, tc := range cases {
		err := tc.plan.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected an error", tc.name)
		}
	}
}

func TestPlanWithDefaults(t *testing.T) {
	p := Plan{Partitions: []Partition{
		{Nodes: []int{1, 2}},
		{Name: "core-cut", Start: 4, Rounds: 3, Nodes: []int{0}},
	}}
	d := p.WithDefaults()
	if d.Partitions[0].Name != "partition-0" || d.Partitions[0].Rounds != 1 {
		t.Fatalf("defaults not applied: %+v", d.Partitions[0])
	}
	if d.Partitions[1].Name != "core-cut" || d.Partitions[1].Rounds != 3 {
		t.Fatalf("set fields not preserved: %+v", d.Partitions[1])
	}
	// The receiver's partition slice must not be mutated.
	if p.Partitions[0].Name != "" {
		t.Fatal("WithDefaults mutated its receiver")
	}
}

func TestPartitionWindow(t *testing.T) {
	inj, err := New(Plan{Partitions: []Partition{{Name: "p", Start: 2, Rounds: 3, Nodes: []int{0, 1}}}})
	if err != nil {
		t.Fatal(err)
	}
	for round, want := range map[int]bool{0: false, 1: false, 2: true, 4: true, 5: false} {
		if _, got := inj.Partitioned(round, 0, 7); got != want {
			t.Errorf("round %d: partitioned = %v, want %v", round, got, want)
		}
	}
	// Both endpoints inside the isolated set still talk to each other.
	if _, cut := inj.Partitioned(3, 0, 1); cut {
		t.Error("intra-partition traffic should pass")
	}
	if v := inj.Judge(3, comm.Message{From: 0, To: 7}); !v.Drop || !strings.HasPrefix(v.Cause, "partition:") {
		t.Errorf("cross-cut message not dropped: %+v", v)
	}
}

func TestJudgeDeterminism(t *testing.T) {
	plan := Plan{Seed: 42, Drop: 0.3, Delay: 1, Jitter: 2, DupRate: 0.2}
	a, err := New(plan)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(plan)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		m := comm.Message{From: i % 5, To: (i + 1) % 5, Seq: i}
		va, vb := a.Judge(0, m), b.Judge(0, m)
		if !reflect.DeepEqual(va, vb) {
			t.Fatalf("draw %d diverged: %+v vs %+v", i, va, vb)
		}
	}
}

func TestDeadLinkAndReorder(t *testing.T) {
	inj, err := New(Plan{Seed: 1, Links: []LinkDrop{{From: 2, To: 3, Drop: 1}}, ReorderRate: 0.999})
	if err != nil {
		t.Fatal(err)
	}
	if v := inj.Judge(0, comm.Message{From: 2, To: 3}); !v.Drop || v.Cause != "link-loss" {
		t.Fatalf("dead link not dropped: %+v", v)
	}
	if v := inj.Judge(0, comm.Message{From: 3, To: 2}); v.Drop {
		t.Fatalf("reverse direction dropped: %+v", v)
	}
	batch := []comm.Message{{ID: 0}, {ID: 1}, {ID: 2}, {ID: 3}}
	changed := false
	for i := 0; i < 20 && !changed; i++ {
		if inj.Reorder(i, batch) {
			for j, m := range batch {
				if m.ID != j {
					changed = true
				}
			}
		}
	}
	if !changed {
		t.Fatal("reorder never permuted the batch")
	}
}

// TestBusIntegration drives a real bus under an aggressive plan and
// checks the fault counters move and traffic still flows.
func TestBusIntegration(t *testing.T) {
	inj, err := New(Plan{Seed: 5, Drop: 0.2, DupRate: 0.3, Jitter: 1, ReorderRate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	bus, err := comm.NewBus(comm.Options{Seed: 9, Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	received := 0
	for round := 0; round < 50; round++ {
		for n := 0; n < 8; n++ {
			bus.Send(comm.Message{Type: comm.MsgRequest, From: n, To: (n + 1) % 8, Seq: round})
		}
		bus.Deliver()
		for n := 0; n < 8; n++ {
			received += len(bus.Receive(n))
		}
	}
	for bus.Pending() > 0 {
		bus.Deliver()
	}
	for n := 0; n < 8; n++ {
		received += len(bus.Receive(n))
	}
	sent, dropped := bus.Stats()
	dup, _ := bus.FaultStats()
	if dropped == 0 || dup == 0 {
		t.Fatalf("plan injected nothing: sent=%d dropped=%d dup=%d", sent, dropped, dup)
	}
	if received != sent-dropped+dup {
		t.Fatalf("conservation: received %d, want sent %d - dropped %d + dup %d = %d",
			received, sent, dropped, dup, sent-dropped+dup)
	}
}
