// The policy × topology × fault grid behind `sheriffsim -mode policy`:
// each cell runs one placement policy (Sheriff, best-fit, worst-fit,
// oversubscription) on one topology under one fault plan, with preemption
// and the fail-queue enabled, and reports the workload-stddev decay and
// migration-cost trade-off the policy buys. The grid is the ablation for
// the pluggable-policy redesign: the Sheriff row is the paper's scheme,
// the other rows are the classic scheduler policies run through the same
// Alg. 3/Alg. 4 machinery.
package sim

import (
	"sheriff/internal/comm"
	"sheriff/internal/dcn"
	"sheriff/internal/faults"
	"sheriff/internal/migrate"
	"sheriff/internal/obs"
	"sheriff/internal/placement"
)

// RunDistributedRounds drives the Alg. 4 protocol through up to `rounds`
// invocations sharing one fail-queue: VMs parked in invocation N drain
// into invocation N+1, routed back to their owning shim by the
// RetryEntry.Shim tag. The loop stops early once the queue is empty.
// Whatever is still parked after the last in-budget invocation re-enters
// one final time with the queue detached, so every leftover either places
// or takes the fallback ladder — restoring the protocol's unplaced==0
// guarantee on fabrics where the fallback is enabled. Returns the
// aggregate result and the number of protocol invocations used.
func (s *Sim) RunDistributedRounds(busOpts comm.Options, opts migrate.DistOptions, rounds int) (*migrate.DistResult, int, error) {
	if rounds < 1 {
		rounds = 1
	}
	queue := opts.Queue
	if queue == nil {
		q, err := migrate.NewRetryQueue(migrate.RetryOptions{Enabled: true})
		if err != nil {
			return nil, 0, err
		}
		queue = q
		opts.Queue = queue
	}
	total := &migrate.DistResult{}
	used := 0
	for r := 0; r < rounds; r++ {
		if r > 0 && queue.Len() == 0 {
			break
		}
		var res *migrate.DistResult
		var err error
		if r == 0 {
			res, err = s.RunDistributed(busOpts, opts)
		} else {
			// Later invocations carry no fresh alerts: the drained queue
			// is the only work source.
			res, err = s.runProtocol(busOpts, opts, make([][]*dcn.VM, len(s.Shims)))
		}
		if err != nil {
			return nil, used, err
		}
		used++
		foldDist(total, res)
	}
	if queue.Len() > 0 || len(total.Unplaced) > 0 {
		vmSets := make([][]*dcn.VM, len(s.Shims))
		idxByRack := make(map[int]int, len(s.Shims))
		for i, shim := range s.Shims {
			idxByRack[shim.Rack.Index] = i
		}
		seen := make(map[int]bool)
		add := func(vm *dcn.VM, shimRack int) bool {
			if s.Cluster.VM(vm.ID) != vm || seen[vm.ID] {
				return false // removed from the cluster while parked, or dup
			}
			seen[vm.ID] = true
			i, ok := idxByRack[shimRack]
			if !ok {
				i = 0
			}
			vmSets[i] = append(vmSets[i], vm)
			return true
		}
		drained := 0
		for _, e := range queue.TakeAll() {
			if add(e.VM, e.Shim) {
				drained++
			}
		}
		// Attempt-budget refusals from earlier invocations get one more
		// shot too: they are still attached, so route them through their
		// current rack's shim.
		for _, vm := range total.Unplaced {
			if vm.Host() != nil && add(vm, vm.Host().Rack().Index) {
				drained++
			}
		}
		if drained > 0 {
			total.Unplaced = nil
			opts.Queue = nil
			// The final settle models the coordinator stepping in after
			// the pre-alert window closes: it runs over a quiesced fabric,
			// so chaos-induced losses cannot strand an evicted VM forever.
			clean := busOpts
			clean.Injector = nil
			res, err := s.runProtocol(clean, opts, vmSets)
			if err != nil {
				return nil, used, err
			}
			used++
			total.Retried += drained
			foldDist(total, res)
		}
	}
	return total, used, nil
}

// runProtocol runs one protocol invocation over a fresh bus with explicit
// per-shim candidate sets.
func (s *Sim) runProtocol(busOpts comm.Options, opts migrate.DistOptions, vmSets [][]*dcn.VM) (*migrate.DistResult, error) {
	bus, err := comm.NewBus(busOpts)
	if err != nil {
		return nil, err
	}
	return migrate.DistributedVMMigration(s.Cluster, s.Model, bus, s.Shims, vmSets, opts)
}

// foldDist accumulates one invocation's result into the aggregate.
func foldDist(total, res *migrate.DistResult) {
	total.Migrations = append(total.Migrations, res.Migrations...)
	total.TotalCost += res.TotalCost
	total.SearchSpace += res.SearchSpace
	total.Rejected += res.Rejected
	total.Retransmits += res.Retransmits
	total.Suppressed += res.Suppressed
	total.Fallbacks += res.Fallbacks
	total.Rounds += res.Rounds
	total.Unplaced = append(total.Unplaced, res.Unplaced...)
	total.Preemptions += res.Preemptions
	total.Retried += res.Retried
	total.Requeued += res.Requeued
}

// PolicyConfig sizes one cell of the policy × topology × fault grid.
type PolicyConfig struct {
	Sim Config
	// Policy selects the destination-scoring policy for the cell; the
	// zero value is the Sheriff rule.
	Policy placement.PolicyOptions
	// Preempt and Retry configure preemption and the fail-queue (both
	// normally Enabled for grid runs; zero structs disable them).
	Preempt migrate.PreemptOptions
	Retry   migrate.RetryOptions
	// Rounds caps the queue-sharing management rounds (0 = default 4).
	Rounds int
	// Fault, when non-nil, perturbs the bus with the seeded fault plan
	// (Distributed cells only).
	Fault *faults.Plan
	// FaultName labels the fault column; "" derives "none" or "chaos".
	FaultName string
	// Distributed routes the cell through the Alg. 4 message protocol;
	// otherwise the regional shims migrate sequentially, rack by rack.
	Distributed bool
	// Recorder, when non-nil, receives the full wire+decision trace.
	Recorder *obs.Recorder
}

// PolicyResult is one cell of the grid — one JSON line of
// BENCH_policy.json.
type PolicyResult struct {
	Policy      string `json:"policy"`
	Topology    string `json:"topology"`
	Fault       string `json:"fault"`
	Distributed bool   `json:"distributed"`
	Racks       int    `json:"racks"`
	VMs         int    `json:"vms"`
	Alerted     int    `json:"alerted"`
	Rounds      int    `json:"rounds"` // management rounds actually used

	InitialStdDev float64 `json:"initial_stddev"`
	FinalStdDev   float64 `json:"final_stddev"`
	StdDevDecay   float64 `json:"stddev_decay"` // (initial-final)/initial

	Migrations    int     `json:"migrations"`
	MigrationCost float64 `json:"migration_cost"`
	SearchSpace   int     `json:"search_space"`
	Preemptions   int     `json:"preemptions"`
	Requeued      int     `json:"requeued"`
	Retried       int     `json:"retried"`
	Unplaced      int     `json:"unplaced"`
}

// RunPolicy runs one grid cell: build the topology, create the pod-level
// hotspots of the Figs. 11–14 regime, seed the paper's 5% alerts, and
// relocate them under the cell's placement policy with preemption and the
// fail-queue — sequentially per rack or through the distributed protocol.
func RunPolicy(cfg PolicyConfig) (*PolicyResult, error) {
	if err := cfg.Policy.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Preempt.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Retry.Validate(); err != nil {
		return nil, err
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 4
	}
	if cfg.FaultName == "" {
		cfg.FaultName = "none"
		if cfg.Fault != nil {
			cfg.FaultName = "chaos"
		}
	}
	s, err := Build(cfg.Sim)
	if err != nil {
		return nil, err
	}
	s.PopulateHotPods(0.5, 0.85, 0.35)
	res := &PolicyResult{
		Policy:        cfg.Policy.Kind.String(),
		Topology:      s.Config.Kind.String(),
		Fault:         cfg.FaultName,
		Distributed:   cfg.Distributed,
		Racks:         len(s.Cluster.Racks),
		VMs:           len(s.Cluster.VMs()),
		InitialStdDev: s.Cluster.WorkloadStdDev(),
	}
	if cfg.Distributed {
		if err := s.runPolicyDistributed(cfg, res); err != nil {
			return nil, err
		}
	} else {
		if err := s.runPolicySequential(cfg, res); err != nil {
			return nil, err
		}
	}
	res.FinalStdDev = s.Cluster.WorkloadStdDev()
	if res.InitialStdDev > 0 {
		res.StdDevDecay = (res.InitialStdDev - res.FinalStdDev) / res.InitialStdDev
	}
	return res, nil
}

// runPolicyDistributed runs the cell through RunDistributedRounds.
func (s *Sim) runPolicyDistributed(cfg PolicyConfig, res *PolicyResult) error {
	queue, err := migrate.NewRetryQueue(cfg.Retry)
	if err != nil {
		return err
	}
	busOpts := comm.Options{Seed: s.Config.Seed, Recorder: cfg.Recorder}
	if cfg.Fault != nil {
		inj, err := faults.New(*cfg.Fault)
		if err != nil {
			return err
		}
		busOpts.Injector = inj
	}
	dr, used, err := s.RunDistributedRounds(busOpts, migrate.DistOptions{
		Seed:      s.Config.Seed,
		Recorder:  cfg.Recorder,
		Placement: cfg.Policy,
		Preempt:   cfg.Preempt,
		Queue:     queue,
	}, cfg.Rounds)
	if err != nil {
		return err
	}
	for _, vm := range s.Cluster.VMs() {
		if vm.Alert > 0 {
			res.Alerted++
		}
	}
	res.Rounds = used
	res.Migrations = len(dr.Migrations)
	res.MigrationCost = dr.TotalCost
	res.SearchSpace = dr.SearchSpace
	res.Preemptions = dr.Preemptions
	res.Requeued = dr.Requeued
	res.Retried = dr.Retried
	res.Unplaced = len(dr.Unplaced)
	if res.Unplaced > 0 {
		// The protocol's fallback ladder only sees each shim's one-hop
		// region; when a hot pod is full that is not enough. Mirror the
		// sequential path's escalation: recalculate destinations over the
		// widened region (Alg. 3) with preemption for whatever is left.
		var pol placement.Policy
		if cfg.Policy.Kind != placement.Sheriff {
			p, err := cfg.Policy.New()
			if err != nil {
				return err
			}
			pol = p
		}
		byShim := make(map[int][]*dcn.VM)
		for _, vm := range dr.Unplaced {
			if s.Cluster.VM(vm.ID) != vm {
				continue
			}
			idx := 0
			if vm.Host() != nil {
				idx = vm.Host().Rack().Index
			}
			byShim[idx] = append(byShim[idx], vm)
		}
		res.Unplaced = 0
		for _, shim := range s.Shims {
			vms := byShim[shim.Rack.Index]
			if len(vms) == 0 {
				continue
			}
			res.Retried += len(vms)
			mr, err := migrate.Migrate(s.Cluster, s.Model, vms, regionHosts(s.Cluster, shim.Rack, wideHops), migrate.MigrationOptions{
				ForbidSameRack: true,
				Recorder:       cfg.Recorder,
				Shim:           shim.Rack.Index,
				Placement:      pol,
				Preempt:        cfg.Preempt,
			})
			if err != nil {
				return err
			}
			res.Migrations += len(mr.Migrations)
			res.MigrationCost += mr.TotalCost
			res.SearchSpace += mr.SearchSpace
			res.Preemptions += mr.Preemptions
			res.Unplaced += len(mr.Unplaced)
		}
	}
	return nil
}

// runPolicySequential runs the cell rack by rack: each shim migrates its
// alerted VMs into its one-hop region with its own fail-queue, parked VMs
// retry in later rounds, and whatever survives every round gets one last
// widened-region pass without a queue (the Alg. 3 "recalculate possible
// migration destinations" escalation), so leftovers either place or
// surface honestly as unplaced.
func (s *Sim) runPolicySequential(cfg PolicyConfig, res *PolicyResult) error {
	var pol placement.Policy
	if cfg.Policy.Kind != placement.Sheriff {
		p, err := cfg.Policy.New()
		if err != nil {
			return err
		}
		pol = p
	}
	queues := make([]*migrate.RetryQueue, len(s.Shims))
	for i := range queues {
		q, err := migrate.NewRetryQueue(cfg.Retry)
		if err != nil {
			return err
		}
		queues[i] = q
	}
	alerts := s.SeedAlerts()
	for _, vms := range alerts {
		res.Alerted += len(vms)
	}
	hops := s.Config.Migrate.NeighborSwitchHops
	leftover := make([][]*dcn.VM, len(s.Shims))
	fold := func(mr *migrate.MigrationResult) {
		res.Migrations += len(mr.Migrations)
		res.MigrationCost += mr.TotalCost
		res.SearchSpace += mr.SearchSpace
		res.Preemptions += mr.Preemptions
		res.Requeued += mr.Requeued
		res.Retried += mr.Retried
	}
	for r := 0; r < cfg.Rounds; r++ {
		work := false
		for i, shim := range s.Shims {
			var vms []*dcn.VM
			if r == 0 {
				vms = alerts[shim.Rack.Index]
			}
			if len(vms) == 0 && queues[i].Len() == 0 {
				continue
			}
			work = true
			mr, err := migrate.Migrate(s.Cluster, s.Model, vms, regionHosts(s.Cluster, shim.Rack, hops), migrate.MigrationOptions{
				ForbidSameRack: true,
				Recorder:       cfg.Recorder,
				Shim:           shim.Rack.Index,
				Placement:      pol,
				Preempt:        cfg.Preempt,
				Queue:          queues[i],
			})
			if err != nil {
				return err
			}
			fold(mr)
			// Attempt-budget refusals fall out of the queue here; carry
			// them to the final widened pass instead of dropping them.
			leftover[i] = append(leftover[i], mr.Unplaced...)
		}
		if !work {
			break
		}
		res.Rounds++
	}
	for i, shim := range s.Shims {
		vms := leftover[i]
		for _, e := range queues[i].TakeAll() {
			if s.Cluster.VM(e.VM.ID) != e.VM {
				continue
			}
			vms = append(vms, e.VM)
		}
		if len(vms) == 0 {
			continue
		}
		res.Retried += len(vms)
		mr, err := migrate.Migrate(s.Cluster, s.Model, vms, regionHosts(s.Cluster, shim.Rack, wideHops), migrate.MigrationOptions{
			ForbidSameRack: true,
			Recorder:       cfg.Recorder,
			Shim:           shim.Rack.Index,
			Placement:      pol,
			Preempt:        cfg.Preempt,
		})
		if err != nil {
			return err
		}
		fold(mr)
		res.Unplaced += len(mr.Unplaced)
	}
	return nil
}
