package sim

import "testing"

// TestRunScaleSmoke drives a small leaf-spine scenario through both
// engines and requires identical alert/migration totals — the scale
// harness inherits the engines' bit-exact equivalence.
func TestRunScaleSmoke(t *testing.T) {
	base := ScaleConfig{
		Racks:          50,
		HostsPerRack:   1,
		VMsPerHost:     2,
		Steps:          4,
		Shards:         2,
		Seed:           21,
		DependencyProb: 0.1,
		Threshold:      0.5,
	}
	sharded, err := RunScale(base)
	if err != nil {
		t.Fatal(err)
	}
	if sharded.VMs != 100 || sharded.Racks != 50 {
		t.Fatalf("unexpected shape: %d racks, %d VMs", sharded.Racks, sharded.VMs)
	}
	if sharded.ServerAlerts == 0 {
		t.Fatal("threshold 0.5 raised no server alerts")
	}
	if sharded.MeanStepSeconds <= 0 || sharded.TotalSeconds <= 0 {
		t.Fatal("timing fields not populated")
	}

	ref := base
	ref.Reference = true
	refRes, err := RunScale(ref)
	if err != nil {
		t.Fatal(err)
	}
	if refRes.ServerAlerts != sharded.ServerAlerts ||
		refRes.ToRAlerts != sharded.ToRAlerts ||
		refRes.Migrations != sharded.Migrations {
		t.Fatalf("engines diverged: sharded (%d,%d,%d) vs reference (%d,%d,%d)",
			sharded.ServerAlerts, sharded.ToRAlerts, sharded.Migrations,
			refRes.ServerAlerts, refRes.ToRAlerts, refRes.Migrations)
	}
}

// TestRunScaleLite exercises the lite-traces memory regime end to end.
func TestRunScaleLite(t *testing.T) {
	res, err := RunScale(ScaleConfig{
		Racks:      40,
		VMsPerHost: 2,
		Steps:      3,
		Shards:     3,
		Seed:       5,
		Threshold:  2, // alert-free predict plane
		TraceKind:  "lite",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ServerAlerts != 0 || res.Migrations != 0 {
		t.Fatalf("threshold 2 should be alert-free, got %d alerts %d migrations", res.ServerAlerts, res.Migrations)
	}
	if res.VMs != 160 {
		t.Fatalf("VMs = %d, want 160", res.VMs)
	}
}
