package sim

import (
	"fmt"
	"os"
	goruntime "runtime"
	"strconv"
	"strings"
	"time"

	"sheriff/internal/alert"
	"sheriff/internal/cost"
	"sheriff/internal/dcn"
	"sheriff/internal/runtime"
	"sheriff/internal/topology"
	"sheriff/internal/traces"
)

// ScaleConfig sizes one hyperscale step-engine run: a leaf–spine fabric
// of Racks leaves, HostsPerRack×VMsPerHost VMs per rack, driven Steps
// collection periods through the sharded engine (or the reference engine
// when Reference is set, for before/after curves). Zero fields take
// defaults chosen for the scale harness, not the paper experiments.
type ScaleConfig struct {
	Racks        int   `json:"racks"`
	Spines       int   `json:"spines,omitempty"` // 0 = topology default
	HostsPerRack int   `json:"hosts_per_rack"`   // default 2
	VMsPerHost   int   `json:"vms_per_host"`     // default 4
	Steps        int   `json:"steps"`            // default 10
	Shards       int   `json:"shards"`           // 0 = number of CPUs
	Seed         int64 `json:"seed"`
	// DependencyProb seeds the dependency graph (and with it the flow
	// plane). Default 0: the hyperscale runs exercise the predict plane;
	// set it (with Threshold < 1) to light up flows and migrations too.
	DependencyProb float64 `json:"dependency_prob,omitempty"`
	// Threshold is applied to all four alert components (default 0.9).
	// A value > 1 makes server alerts unreachable — the alert-free regime
	// that isolates pure step-engine throughput.
	Threshold    float64 `json:"threshold"`
	HistoryLimit int     `json:"history_limit"` // default 64
	// TraceKind selects the trace-generator family ("diurnal", "lite",
	// "surge", "surge-lite"; "" = diurnal) — see traces.ParseKind.
	TraceKind string `json:"trace_kind,omitempty"`
	Reference bool   `json:"reference"`
}

func (c ScaleConfig) withDefaults() ScaleConfig {
	if c.HostsPerRack <= 0 {
		c.HostsPerRack = 2
	}
	if c.VMsPerHost <= 0 {
		c.VMsPerHost = 4
	}
	if c.Steps <= 0 {
		c.Steps = 10
	}
	if c.Threshold == 0 {
		c.Threshold = 0.9
	}
	if c.HistoryLimit == 0 {
		c.HistoryLimit = 64
	}
	return c
}

// ScaleResult is one scaling-curve point: wall-clock, allocation, and
// memory footprint of a ScaleConfig run.
type ScaleResult struct {
	Config    ScaleConfig `json:"config"`
	Racks     int         `json:"racks"`
	Hosts     int         `json:"hosts"`
	VMs       int         `json:"vms"`
	Steps     int         `json:"steps"`
	Shards    int         `json:"shards"`
	HostCores int         `json:"host_cores"`

	BuildSeconds    float64 `json:"build_seconds"`
	TotalSeconds    float64 `json:"total_seconds"` // stepping only
	MeanStepSeconds float64 `json:"mean_step_seconds"`
	MaxStepSeconds  float64 `json:"max_step_seconds"`
	AllocsPerStep   float64 `json:"allocs_per_step"` // heap objects
	BytesPerStep    float64 `json:"bytes_per_step"`
	PeakRSSMB       float64 `json:"peak_rss_mb"` // VmHWM; 0 if unreadable

	ServerAlerts int     `json:"server_alerts"`
	ToRAlerts    int     `json:"tor_alerts"`
	Migrations   int     `json:"migrations"`
	PredictSkew  float64 `json:"predict_skew,omitempty"` // mean shard load skew
}

// RunScale builds and drives one scale scenario. The cost model is
// deferred (no eager all-racks Dijkstra tables) so an alert-free run
// never pays for them.
func RunScale(cfg ScaleConfig) (*ScaleResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Racks < 1 {
		return nil, fmt.Errorf("sim: scale run needs at least 1 rack, got %d", cfg.Racks)
	}
	buildStart := time.Now()
	ls, err := topology.NewLeafSpine(topology.LeafSpineConfig{Leaves: cfg.Racks, Spines: cfg.Spines})
	if err != nil {
		return nil, err
	}
	// Host capacity follows the requested VM density: VM capacities are
	// drawn from [5, 20], so 20·VMsPerHost always fits the full quota.
	// The floor of 100 keeps low-density runs on the paper's host size.
	hostCap := 100.0
	if c := 20 * float64(cfg.VMsPerHost); c > hostCap {
		hostCap = c
	}
	cluster, err := dcn.NewCluster(ls.Graph, dcn.Config{
		HostsPerRack: cfg.HostsPerRack,
		HostCapacity: hostCap,
		ToRCapacity:  hostCap * float64(cfg.HostsPerRack),
	})
	if err != nil {
		return nil, err
	}
	cluster.Populate(dcn.PopulateOptions{
		VMsPerHost:              cfg.VMsPerHost,
		MinCapacity:             5,
		MaxCapacity:             20,
		DependencyProb:          cfg.DependencyProb,
		CrossRackDependencyProb: cfg.DependencyProb,
		Seed:                    cfg.Seed,
	})
	model, err := cost.NewDeferred(cluster, cost.PaperParams())
	if err != nil {
		return nil, err
	}
	kind, err := traces.ParseKind(cfg.TraceKind)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	th := cfg.Threshold
	rt, err := runtime.New(cluster, model, runtime.Options{
		Seed:         cfg.Seed,
		Shards:       cfg.Shards,
		HistoryLimit: cfg.HistoryLimit,
		Traces:       traces.Options{Kind: kind},
		Reference:    cfg.Reference,
		Thresholds:   alert.Thresholds{CPU: th, Mem: th, IO: th, TRF: th},
	})
	if err != nil {
		return nil, err
	}
	defer rt.Close()

	res := &ScaleResult{
		Config:       cfg,
		Racks:        cfg.Racks,
		Hosts:        len(cluster.Hosts()),
		VMs:          len(cluster.VMs()),
		Steps:        cfg.Steps,
		Shards:       cfg.Shards,
		HostCores:    goruntime.NumCPU(),
		BuildSeconds: time.Since(buildStart).Seconds(),
	}

	var before, after goruntime.MemStats
	goruntime.ReadMemStats(&before)
	runStart := time.Now()
	for i := 0; i < cfg.Steps; i++ {
		stepStart := time.Now()
		stats, err := rt.Step()
		if err != nil {
			return nil, fmt.Errorf("sim: scale step %d: %w", i, err)
		}
		d := time.Since(stepStart).Seconds()
		if d > res.MaxStepSeconds {
			res.MaxStepSeconds = d
		}
		res.ServerAlerts += stats.ServerAlerts
		res.ToRAlerts += stats.ToRAlerts
		res.Migrations += stats.Migrations
	}
	res.TotalSeconds = time.Since(runStart).Seconds()
	goruntime.ReadMemStats(&after)
	res.MeanStepSeconds = res.TotalSeconds / float64(cfg.Steps)
	res.AllocsPerStep = float64(after.Mallocs-before.Mallocs) / float64(cfg.Steps)
	res.BytesPerStep = float64(after.TotalAlloc-before.TotalAlloc) / float64(cfg.Steps)
	res.PeakRSSMB = peakRSSMB()
	if sum, ok := rt.PhaseSummaries()["predict_skew"]; ok && sum.Count() > 0 {
		res.PredictSkew = sum.Mean()
	}
	return res, nil
}

// peakRSSMB reads the process high-water resident set size from
// /proc/self/status (VmHWM). Returns 0 where procfs is unavailable.
func peakRSSMB() float64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return 0
		}
		return kb / 1024
	}
	return 0
}
