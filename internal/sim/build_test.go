package sim

import (
	"testing"

	"sheriff/internal/runtime"
)

func TestParseKind(t *testing.T) {
	for in, want := range map[string]Kind{"fat-tree": FatTree, "FT": FatTree, "bcube": BCube, "BC": BCube} {
		got, err := ParseKind(in)
		if err != nil || got != want {
			t.Fatalf("ParseKind(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseKind("torus"); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

func TestBuildRuntimeMatchesBuildCluster(t *testing.T) {
	cfg := RuntimeConfig{Kind: FatTree, Size: 4, Seed: 5}
	rt, err := BuildRuntime(cfg, runtime.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.Cluster.VMs()) == 0 {
		t.Fatal("BuildRuntime left the cluster empty")
	}
	if _, err := rt.Step(); err != nil {
		t.Fatal(err)
	}
	// BuildCluster gives the same shape, unpopulated — the restore path.
	cluster, model, err := BuildCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if model == nil || len(cluster.VMs()) != 0 {
		t.Fatalf("BuildCluster should be empty, has %d VMs", len(cluster.VMs()))
	}
	if got, want := len(cluster.Racks), len(rt.Cluster.Racks); got != want {
		t.Fatalf("rack counts differ: %d vs %d", got, want)
	}
	if _, _, err := BuildCluster(RuntimeConfig{Kind: Kind(99), Size: 4}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
