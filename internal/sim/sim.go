// Package sim is the round-based migration simulator behind the paper's
// Sec. VI.B evaluation: it builds a Fat-Tree or BCube cluster, populates
// it with VMs, seeds alerts ("five percent of virtual machines in each pod
// raise alerts for migration"), and drives either the regional Sheriff
// shims or the global centralized manager, recording the workload
// standard deviation per round (Figs. 9–10), total migration cost
// (Figs. 11, 13), and search-space size (Figs. 12, 14).
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"sheriff/internal/alert"
	"sheriff/internal/centralized"
	"sheriff/internal/comm"
	"sheriff/internal/cost"
	"sheriff/internal/dcn"
	"sheriff/internal/faults"
	"sheriff/internal/kmedian"
	"sheriff/internal/migrate"
	"sheriff/internal/topology"
)

// Kind selects the simulated topology.
type Kind int

const (
	// FatTree simulates a k-pod Fat-Tree (Size = pods).
	FatTree Kind = iota
	// BCube simulates a BCube(n,1) (Size = switches per level).
	BCube
	// LeafSpine simulates a two-tier leaf–spine fabric (Size = leaves).
	// Linear in racks, it is the topology of the hyperscale scenarios.
	LeafSpine
)

// String names the topology kind.
func (k Kind) String() string {
	switch k {
	case FatTree:
		return "fat-tree"
	case BCube:
		return "bcube"
	case LeafSpine:
		return "leaf-spine"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Config sizes one simulation. Zero fields take the paper's defaults.
type Config struct {
	Kind Kind
	Size int // pods (FatTree) or switches per level (BCube)

	HostsPerRack   int     // default 4 (scaled down from 40 for speed)
	HostCapacity   float64 // default 100
	VMsPerHost     int     // default 4
	VMMaxCapacity  float64 // default 20 (the paper's cap)
	DependencyProb float64 // default 0.1
	AlertFraction  float64 // default 0.05 (the paper's 5%)
	Seed           int64

	Migrate migrate.Params
	Cost    cost.Params
}

func (c Config) withDefaults() Config {
	if c.HostsPerRack <= 0 {
		c.HostsPerRack = 4
	}
	if c.HostCapacity <= 0 {
		c.HostCapacity = 100
	}
	if c.VMsPerHost <= 0 {
		c.VMsPerHost = 4
	}
	if c.VMMaxCapacity <= 0 {
		c.VMMaxCapacity = 20
	}
	if c.DependencyProb == 0 {
		c.DependencyProb = 0.1
	}
	if c.AlertFraction <= 0 {
		c.AlertFraction = 0.05
	}
	c.Migrate = c.Migrate.WithDefaults()
	if c.Cost == (cost.Params{}) {
		c.Cost = cost.PaperParams()
	}
	return c
}

// Sim is one built simulation instance.
type Sim struct {
	Config  Config
	Cluster *dcn.Cluster
	Model   *cost.Model
	Shims   []*migrate.Shim
	Central *centralized.Manager

	rng *rand.Rand
}

// Build constructs the topology, cluster, cost model and one shim per rack.
// The cluster starts empty; call Populate or PopulateSkewed before running.
func Build(cfg Config) (*Sim, error) {
	cfg = cfg.withDefaults()
	var g *topology.Graph
	switch cfg.Kind {
	case FatTree:
		ft, err := topology.NewFatTree(topology.FatTreeConfig{Pods: cfg.Size})
		if err != nil {
			return nil, err
		}
		g = ft.Graph
	case BCube:
		b, err := topology.NewBCube(topology.BCubeConfig{SwitchesPerLevel: cfg.Size})
		if err != nil {
			return nil, err
		}
		g = b.Graph
	case LeafSpine:
		ls, err := topology.NewLeafSpine(topology.LeafSpineConfig{Leaves: cfg.Size})
		if err != nil {
			return nil, err
		}
		g = ls.Graph
	default:
		return nil, fmt.Errorf("sim: unknown topology kind %d", cfg.Kind)
	}
	cluster, err := dcn.NewCluster(g, dcn.Config{
		HostsPerRack: cfg.HostsPerRack,
		HostCapacity: cfg.HostCapacity,
		ToRCapacity:  cfg.HostCapacity * float64(cfg.HostsPerRack),
	})
	if err != nil {
		return nil, err
	}
	model, err := cost.New(cluster, cfg.Cost)
	if err != nil {
		return nil, err
	}
	s := &Sim{
		Config:  cfg,
		Cluster: cluster,
		Model:   model,
		Central: centralized.New(cluster, model),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
	for _, r := range cluster.Racks {
		shim, err := migrate.NewShim(cluster, model, r, cfg.Migrate)
		if err != nil {
			return nil, err
		}
		s.Shims = append(s.Shims, shim)
	}
	return s, nil
}

// Populate fills the cluster uniformly at random.
func (s *Sim) Populate() int {
	return s.Cluster.Populate(dcn.PopulateOptions{
		VMsPerHost:     s.Config.VMsPerHost,
		MinCapacity:    1,
		MaxCapacity:    s.Config.VMMaxCapacity,
		DependencyProb: s.Config.DependencyProb,
		Seed:           s.Config.Seed,
	})
}

// PopulateHotPods loads the racks of the first `hotFraction` of pods to
// `hotLoad` of capacity and the remaining pods to `coolLoad` — the
// hotspot regime of the Figs. 11–14 comparison, where some alerted VMs
// must cross pods and a centralized manager's joint optimization can
// undercut greedy regional placement.
func (s *Sim) PopulateHotPods(hotFraction, hotLoad, coolLoad float64) int {
	maxPod := 0
	for _, r := range s.Cluster.Racks {
		if p := s.Cluster.Graph.Node(r.NodeID).Pod; p > maxPod {
			maxPod = p
		}
	}
	hotPods := int(float64(maxPod+1) * hotFraction)
	created := 0
	for _, r := range s.Cluster.Racks {
		load := coolLoad
		if s.Cluster.Graph.Node(r.NodeID).Pod < hotPods {
			load = hotLoad
		}
		for _, h := range r.Hosts {
			target := load * h.Capacity
			for h.Used() < target {
				capy := 1 + s.rng.Float64()*(s.Config.VMMaxCapacity-1)
				if capy > h.Free() {
					break
				}
				if _, err := s.Cluster.AddVM(h, capy, 1+s.rng.Float64()*9, false); err != nil {
					break
				}
				created++
			}
		}
	}
	return created
}

// PopulateSkewed loads the first `hotFraction` of each rack's hosts close
// to capacity and leaves the rest lightly loaded — the unbalanced starting
// state whose decay Figs. 9–10 track.
func (s *Sim) PopulateSkewed(hotFraction float64) int {
	if hotFraction <= 0 || hotFraction > 1 {
		hotFraction = 0.5
	}
	created := 0
	for _, r := range s.Cluster.Racks {
		hot := int(float64(len(r.Hosts)) * hotFraction)
		if hot < 1 {
			hot = 1
		}
		for i, h := range r.Hosts {
			target := 0.15 * h.Capacity
			if i < hot {
				target = 0.9 * h.Capacity
			}
			for h.Used() < target {
				capy := 1 + s.rng.Float64()*(s.Config.VMMaxCapacity-1)
				if capy > h.Free() {
					break
				}
				if _, err := s.Cluster.AddVM(h, capy, 1+s.rng.Float64()*9, false); err != nil {
					break
				}
				created++
			}
		}
	}
	return created
}

// BalancingRound fires one management round of the Figs. 9–10 experiment:
// every shim inspects its rack, raises a server alert for each host whose
// utilization exceeds the cluster mean by more than `margin` (as the
// pre-alert predictor would), and processes the alerts. It returns the
// workload standard deviation after the round and the per-round report.
func (s *Sim) BalancingRound(margin float64) (float64, []*migrate.Report, error) {
	mean := 0.0
	hosts := s.Cluster.Hosts()
	for _, h := range hosts {
		mean += h.Utilization()
	}
	mean /= float64(len(hosts))

	var reports []*migrate.Report
	for _, shim := range s.Shims {
		var alerts []alert.Alert
		for _, h := range shim.Rack.Hosts {
			if h.Utilization() > mean+margin {
				alerts = append(alerts, alert.Alert{
					Kind:      alert.FromServer,
					HostID:    h.ID,
					RackIndex: shim.Rack.Index,
					Value:     h.Utilization(),
				})
			}
		}
		if len(alerts) == 0 {
			continue
		}
		rep, err := shim.ProcessAlerts(alerts)
		if err != nil {
			return 0, nil, fmt.Errorf("sim: shim %d: %w", shim.Rack.Index, err)
		}
		reports = append(reports, rep)
	}
	return s.Cluster.WorkloadStdDev(), reports, nil
}

// RunBalancing runs `rounds` balancing rounds and returns the workload
// standard deviation series, starting with the pre-migration value —
// exactly the curves of Figs. 9 (Fat-Tree) and 10 (BCube).
func (s *Sim) RunBalancing(rounds int, margin float64) ([]float64, error) {
	if rounds < 1 {
		return nil, errors.New("sim: rounds must be >= 1")
	}
	out := make([]float64, 0, rounds+1)
	out = append(out, s.Cluster.WorkloadStdDev())
	for i := 0; i < rounds; i++ {
		sd, _, err := s.BalancingRound(margin)
		if err != nil {
			return nil, err
		}
		out = append(out, sd)
	}
	return out, nil
}

// SeedAlerts marks the paper's "5% of VMs in each pod" (here: each rack)
// as raising migration alerts and returns them grouped by rack index.
// Selection is deterministic under the sim seed.
func (s *Sim) SeedAlerts() map[int][]*dcn.VM {
	out := make(map[int][]*dcn.VM)
	for _, r := range s.Cluster.Racks {
		vms := r.VMs()
		sort.Slice(vms, func(i, j int) bool { return vms[i].ID < vms[j].ID })
		n := int(float64(len(vms)) * s.Config.AlertFraction)
		if n < 1 && len(vms) > 0 {
			n = 1
		}
		s.rng.Shuffle(len(vms), func(i, j int) { vms[i], vms[j] = vms[j], vms[i] })
		for _, vm := range vms[:n] {
			vm.Alert = 0.9 + 0.1*s.rng.Float64()
			out[r.Index] = append(out[r.Index], vm)
		}
	}
	return out
}

// RunChaos runs the distributed protocol over a bus perturbed by the
// seeded fault plan — the `sheriffsim -mode chaos` entry point. The bus
// inherits the sim seed and the DistOptions recorder, so one recorder
// captures wire faults and protocol decisions interleaved.
func (s *Sim) RunChaos(plan faults.Plan, opts migrate.DistOptions) (*migrate.DistResult, error) {
	inj, err := faults.New(plan)
	if err != nil {
		return nil, err
	}
	return s.RunDistributed(comm.Options{Seed: s.Config.Seed, Recorder: opts.Recorder, Injector: inj}, opts)
}

// RunDistributed seeds the paper's 5% alerts and relocates them with the
// message-passing REQUEST/ACK/REJECT protocol of Alg. 4 over an in-memory
// bus built from busOpts. Attach the same obs.Recorder to busOpts and
// opts to get a full wire-plus-decision trace of the run.
func (s *Sim) RunDistributed(busOpts comm.Options, opts migrate.DistOptions) (*migrate.DistResult, error) {
	alerts := s.SeedAlerts()
	vmSets := make([][]*dcn.VM, len(s.Shims))
	for i, shim := range s.Shims {
		vmSets[i] = alerts[shim.Rack.Index]
	}
	bus, err := comm.NewBus(busOpts)
	if err != nil {
		return nil, err
	}
	return migrate.DistributedVMMigration(s.Cluster, s.Model, bus, s.Shims, vmSets, opts)
}

// CompareResult holds one Sheriff-vs-centralized comparison (one data
// point of Figs. 11–14).
type CompareResult struct {
	Racks             int
	VMs               int
	Alerted           int
	SheriffCost       float64
	CentralCost       float64
	SheriffSpace      int
	CentralSpace      int
	SheriffMigrations int
	CentralMigrations int
}

// Compare builds two identical clusters from cfg, seeds the same alerts in
// both, then migrates the alerted VMs with regional Sheriff shims in one
// and the centralized manager in the other, returning cost and search
// space for each — one x-axis point of Figs. 11–14.
//
// The clusters are populated with pod-level hotspots: racks in hot pods
// run near capacity, so part of the alerted load must cross pods. The
// regional shim tries its one-hop region first and escalates to a wider
// region only for VMs its neighbors reject (the "recalculate possible
// migration destinations" path of Alg. 3); the centralized manager solves
// the whole placement jointly.
func Compare(cfg Config) (*CompareResult, error) {
	regional, err := Build(cfg)
	if err != nil {
		return nil, err
	}
	regional.PopulateHotPods(0.5, 0.85, 0.35)
	global, err := Build(cfg)
	if err != nil {
		return nil, err
	}
	global.PopulateHotPods(0.5, 0.85, 0.35)

	alertsR := regional.SeedAlerts()
	alertsG := global.SeedAlerts()

	res := &CompareResult{
		Racks: len(regional.Cluster.Racks),
		VMs:   len(regional.Cluster.VMs()),
	}
	for _, vms := range alertsR {
		res.Alerted += len(vms)
	}

	// Regional: each shim migrates its own alerted VMs within its region.
	// Per Eqn. (6) an alerted VM leaves its rack (v_p ∈ N(v_i)), so the
	// candidate pool is the neighbor racks' hosts; leftovers escalate to
	// the widened region.
	for _, shim := range regional.Shims {
		vms := alertsR[shim.Rack.Index]
		if len(vms) == 0 {
			continue
		}
		remaining := vms
		for _, hops := range []int{regional.Config.Migrate.NeighborSwitchHops, wideHops} {
			if len(remaining) == 0 {
				break
			}
			hosts := regionHosts(regional.Cluster, shim.Rack, hops)
			if len(hosts) == 0 {
				continue
			}
			mr, err := migrate.Migrate(regional.Cluster, regional.Model, remaining, hosts, migrate.MigrationOptions{ForbidSameRack: true, Shim: migrate.ShimUnknown})
			if err != nil {
				return nil, fmt.Errorf("sim: regional migration rack %d: %w", shim.Rack.Index, err)
			}
			res.SheriffCost += mr.TotalCost
			res.SheriffSpace += mr.SearchSpace
			res.SheriffMigrations += len(mr.Migrations)
			remaining = mr.Unplaced
		}
	}

	// Centralized: one manager, global candidate pool, all alerted VMs.
	var all []*dcn.VM
	var rackOrder []int
	for idx := range alertsG {
		rackOrder = append(rackOrder, idx)
	}
	sort.Ints(rackOrder)
	for _, idx := range rackOrder {
		all = append(all, alertsG[idx]...)
	}
	mg, err := migrate.Migrate(global.Cluster, global.Model, all, global.Cluster.Hosts(), migrate.MigrationOptions{ForbidSameRack: true, Shim: migrate.ShimUnknown})
	if err != nil {
		return nil, fmt.Errorf("sim: centralized migration: %w", err)
	}
	res.CentralCost = mg.TotalCost
	res.CentralSpace = mg.SearchSpace
	res.CentralMigrations = len(mg.Migrations)
	return res, nil
}

// PlanningResult is one Sec. V.A destination-planning comparison point:
// the Alg. 5 Local Search plan (APP) against the branch-and-bound optimum
// (OPT) over the same alerted-rack clients — the planning view of the
// Figs. 11/13 Sheriff-vs-optimal curves, now feasible at the paper's
// 48-pod scale.
type PlanningResult struct {
	Racks   int // facilities (all ToRs)
	Clients int // alerted source racks
	K       int // destination ToRs planned

	LocalCost  float64
	LocalSwaps int
	LocalTime  time.Duration

	HasExact  bool // false when the exact reference was skipped
	ExactCost float64
	ExactTime time.Duration
}

// Ratio returns LocalCost/ExactCost (1 = optimal), or 0 without an exact
// reference.
func (r *PlanningResult) Ratio() float64 {
	if !r.HasExact || r.ExactCost == 0 {
		return 0
	}
	return r.LocalCost / r.ExactCost
}

// ComparePlanning builds the cluster, seeds the paper's 5% alerts, and
// solves the k-median destination plan for the alerted racks with Local
// Search — and, when exact is set, with the branch-and-bound optimum as
// the OPT reference. k ≤ 0 defaults to one destination per four alerted
// racks.
func ComparePlanning(cfg Config, k, p int, exact bool) (*PlanningResult, error) {
	s, err := Build(cfg)
	if err != nil {
		return nil, err
	}
	s.PopulateHotPods(0.5, 0.85, 0.35)
	alerts := s.SeedAlerts()
	clients := make([]int, 0, len(alerts))
	for idx, vms := range alerts {
		if len(vms) > 0 {
			clients = append(clients, idx)
		}
	}
	sort.Ints(clients)
	if len(clients) == 0 {
		return nil, errors.New("sim: no alerted racks to plan for")
	}
	if k <= 0 {
		k = len(clients) / 4
	}
	if k < 1 {
		k = 1
	}
	if k > len(s.Cluster.Racks) {
		k = len(s.Cluster.Racks)
	}

	res := &PlanningResult{Racks: len(s.Cluster.Racks), Clients: len(clients), K: k}
	start := time.Now()
	ls, err := s.Central.PlanDestinationsOpts(clients, centralized.PlanOptions{K: k, P: p, Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("sim: planning local search: %w", err)
	}
	res.LocalTime = time.Since(start)
	res.LocalCost = ls.Cost
	res.LocalSwaps = ls.Swaps

	if exact {
		start = time.Now()
		ex, err := s.Central.PlanDestinationsOpts(clients, centralized.PlanOptions{K: k, Exact: true})
		if err != nil {
			return nil, fmt.Errorf("sim: planning exact: %w", err)
		}
		res.ExactTime = time.Since(start)
		res.ExactCost = ex.Cost
		res.HasExact = true
		if ls.Cost < ex.Cost-1e-9 {
			return nil, fmt.Errorf("sim: local search %v beat the exact optimum %v", ls.Cost, ex.Cost)
		}
		if bound := kmedian.ApproximationRatio(p)*ex.Cost + 1e-9; ls.Cost > bound {
			return nil, fmt.Errorf("sim: local search %v violates the %v×OPT guarantee (OPT %v)",
				ls.Cost, kmedian.ApproximationRatio(p), ex.Cost)
		}
	}
	return res, nil
}

// wideHops is the escalation radius: enough switch hops to cross the core
// of a Fat-Tree (ToR→agg→core→agg→ToR) or both BCube levels.
const wideHops = 3

// regionHosts collects the hosts of every rack within `hops` switch hops
// of the origin rack (excluding the origin itself).
func regionHosts(c *dcn.Cluster, origin *dcn.Rack, hops int) []*dcn.Host {
	var out []*dcn.Host
	for _, nodeID := range c.Graph.RackNeighbors(origin.NodeID, hops) {
		if r := c.RackByNode(nodeID); r != nil {
			out = append(out, r.Hosts...)
		}
	}
	return out
}
