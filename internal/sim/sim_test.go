package sim

import (
	"testing"

	"sheriff/internal/faults"
	"sheriff/internal/migrate"
)

func TestKindString(t *testing.T) {
	if FatTree.String() != "fat-tree" || BCube.String() != "bcube" {
		t.Fatal("kind strings wrong")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind should render")
	}
}

func TestBuildFatTree(t *testing.T) {
	s, err := Build(Config{Kind: FatTree, Size: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Cluster.Racks) != 8 {
		t.Fatalf("racks = %d", len(s.Cluster.Racks))
	}
	if len(s.Shims) != 8 {
		t.Fatalf("shims = %d", len(s.Shims))
	}
}

func TestBuildBCube(t *testing.T) {
	s, err := Build(Config{Kind: BCube, Size: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Cluster.Racks) != 64 {
		t.Fatalf("racks = %d, want 64 (8² server nodes)", len(s.Cluster.Racks))
	}
}

func TestBuildInvalid(t *testing.T) {
	if _, err := Build(Config{Kind: FatTree, Size: 3}); err == nil {
		t.Error("odd pods accepted")
	}
	if _, err := Build(Config{Kind: Kind(7), Size: 4}); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestPopulate(t *testing.T) {
	s, err := Build(Config{Kind: FatTree, Size: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	n := s.Populate()
	if n == 0 {
		t.Fatal("Populate created nothing")
	}
	if len(s.Cluster.VMs()) != n {
		t.Fatalf("VM count mismatch: %d vs %d", len(s.Cluster.VMs()), n)
	}
}

func TestPopulateSkewedCreatesImbalance(t *testing.T) {
	s, err := Build(Config{Kind: FatTree, Size: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s.PopulateSkewed(0.5)
	sd := s.Cluster.WorkloadStdDev()
	if sd < 10 {
		t.Fatalf("skewed population stddev = %.2f, want clearly unbalanced (>10)", sd)
	}
}

func TestRunBalancingReducesStdDev(t *testing.T) {
	s, err := Build(Config{Kind: FatTree, Size: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	s.PopulateSkewed(0.5)
	series, err := s.RunBalancing(24, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 25 {
		t.Fatalf("series length = %d, want 25", len(series))
	}
	first, last := series[0], series[len(series)-1]
	if last >= first {
		t.Fatalf("stddev did not fall: %.2f -> %.2f", first, last)
	}
	// The paper's Fig. 9 shows roughly a halving over 24 rounds; require
	// at least a 30% reduction to confirm the shape.
	if last > 0.7*first {
		t.Errorf("stddev only fell %.2f -> %.2f (<30%% reduction)", first, last)
	}
}

func TestRunBalancingBCube(t *testing.T) {
	s, err := Build(Config{Kind: BCube, Size: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s.PopulateSkewed(0.5)
	series, err := s.RunBalancing(24, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if series[len(series)-1] >= series[0] {
		t.Fatalf("BCube stddev did not fall: %.2f -> %.2f", series[0], series[len(series)-1])
	}
}

func TestRunBalancingValidation(t *testing.T) {
	s, err := Build(Config{Kind: FatTree, Size: 4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunBalancing(0, 0.05); err == nil {
		t.Fatal("zero rounds accepted")
	}
}

func TestSeedAlertsFraction(t *testing.T) {
	s, err := Build(Config{Kind: FatTree, Size: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	s.Populate()
	alerts := s.SeedAlerts()
	total := 0
	for _, vms := range alerts {
		total += len(vms)
		for _, vm := range vms {
			if vm.Alert < 0.9 {
				t.Fatalf("alerted VM has Alert = %v", vm.Alert)
			}
		}
	}
	nVMs := len(s.Cluster.VMs())
	// Roughly 5%, but at least one per rack.
	if total < nVMs/40 || total > nVMs/5 {
		t.Fatalf("alerted %d of %d VMs, want ≈ 5%%", total, nVMs)
	}
}

func TestSeedAlertsDeterministic(t *testing.T) {
	build := func() map[int][]int {
		s, err := Build(Config{Kind: FatTree, Size: 4, Seed: 8})
		if err != nil {
			t.Fatal(err)
		}
		s.Populate()
		out := map[int][]int{}
		for rack, vms := range s.SeedAlerts() {
			for _, vm := range vms {
				out[rack] = append(out[rack], vm.ID)
			}
		}
		return out
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatal("different rack sets")
	}
	for rack, ids := range a {
		if len(ids) != len(b[rack]) {
			t.Fatalf("rack %d differs", rack)
		}
		for i := range ids {
			if ids[i] != b[rack][i] {
				t.Fatalf("rack %d vm %d differs", rack, i)
			}
		}
	}
}

func TestCompareFatTree(t *testing.T) {
	res, err := Compare(Config{Kind: FatTree, Size: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Alerted == 0 {
		t.Fatal("no VMs alerted")
	}
	// The centralized manager sees every host; Sheriff only regions.
	if res.SheriffSpace >= res.CentralSpace {
		t.Fatalf("Sheriff space %d should be below centralized %d", res.SheriffSpace, res.CentralSpace)
	}
	// Costs should be comparable: Sheriff within 2× of the global optimum
	// (the paper's Fig. 11 shows them close).
	if res.SheriffCost > 2*res.CentralCost {
		t.Fatalf("Sheriff cost %.1f far above centralized %.1f", res.SheriffCost, res.CentralCost)
	}
	if res.CentralCost > res.SheriffCost*1.05+1e-9 {
		t.Fatalf("centralized cost %.1f above Sheriff %.1f: global pool should win", res.CentralCost, res.SheriffCost)
	}
}

func TestCompareBCube(t *testing.T) {
	res, err := Compare(Config{Kind: BCube, Size: 8, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.SheriffSpace >= res.CentralSpace {
		t.Fatalf("Sheriff space %d should be below centralized %d", res.SheriffSpace, res.CentralSpace)
	}
}

func TestCompareScalesWithSize(t *testing.T) {
	small, err := Compare(Config{Kind: FatTree, Size: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Compare(Config{Kind: FatTree, Size: 8, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if big.CentralSpace <= small.CentralSpace {
		t.Fatalf("central search space should grow with size: %d vs %d", small.CentralSpace, big.CentralSpace)
	}
	if big.Racks <= small.Racks {
		t.Fatal("rack count should grow")
	}
}

func TestComparePlanningExactSmall(t *testing.T) {
	res, err := ComparePlanning(Config{Kind: FatTree, Size: 4, Seed: 5}, 2, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 2 || res.Clients < 1 || res.Racks != 8 {
		t.Fatalf("unexpected shape: %+v", res)
	}
	if !res.HasExact {
		t.Fatal("exact reference missing")
	}
	if res.LocalCost < res.ExactCost-1e-9 {
		t.Fatalf("local search %v below optimum %v", res.LocalCost, res.ExactCost)
	}
	if r := res.Ratio(); r < 1-1e-9 || r > 5+1e-9 {
		t.Fatalf("ratio %v outside [1, 5]", r)
	}
}

func TestComparePlanningDefaultK(t *testing.T) {
	res, err := ComparePlanning(Config{Kind: BCube, Size: 4, Seed: 6}, 0, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.K < 1 {
		t.Fatalf("default k = %d", res.K)
	}
	if res.HasExact {
		t.Fatal("exact reference not requested")
	}
	if res.LocalCost <= 0 {
		t.Fatalf("planning cost %v", res.LocalCost)
	}
}

// TestRunChaosSmoke is the CI chaos smoke scenario: a small fat-tree with
// pod hotspots under drop + duplication + a partition window must end with
// every alerted VM placed (the degradation ladder absorbs the faults).
func TestRunChaosSmoke(t *testing.T) {
	s, err := Build(Config{Kind: FatTree, Size: 8, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	s.PopulateHotPods(0.5, 0.85, 0.35)
	plan := faults.Plan{
		Seed:        42,
		Drop:        0.2,
		DupRate:     0.1,
		ReorderRate: 0.2,
		Jitter:      1,
		Partitions:  []faults.Partition{{Name: "pod-cut", Start: 1, Rounds: 3, Nodes: []int{0, 1}}},
	}
	res, err := s.RunChaos(plan, migrate.DistOptions{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unplaced) != 0 {
		t.Fatalf("%d VMs unplaced under the chaos smoke plan", len(res.Unplaced))
	}
	if len(res.Migrations) == 0 {
		t.Fatal("chaos run migrated nothing")
	}
	bad := faults.Plan{Drop: -1}
	if _, err := s.RunChaos(bad, migrate.DistOptions{}); err == nil {
		t.Fatal("invalid plan accepted")
	}
}
