package sim

import (
	"fmt"
	"strings"

	"sheriff/internal/cost"
	"sheriff/internal/dcn"
	"sheriff/internal/runtime"
	"sheriff/internal/topology"
	"sheriff/internal/traces"
)

// ParseKind decodes a topology name ("fat-tree"/"ft" or "bcube"/"bc").
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(s) {
	case "fat-tree", "fattree", "ft":
		return FatTree, nil
	case "bcube", "bc":
		return BCube, nil
	case "leaf-spine", "leafspine", "ls":
		return LeafSpine, nil
	default:
		return 0, fmt.Errorf("sim: unknown topology %q (want fat-tree, bcube, or leaf-spine)", s)
	}
}

// RuntimeConfig sizes the assembled-system build shared by sheriffd and
// its tests: topology, cluster shape, and the deterministic seed. Zero
// fields take the daemon's defaults.
type RuntimeConfig struct {
	Kind           Kind    `json:"kind"`
	Size           int     `json:"size"`
	HostsPerRack   int     `json:"hosts_per_rack"`  // default 2
	VMsPerHost     int     `json:"vms_per_host"`    // default 3
	DependencyProb float64 `json:"dependency_prob"` // default 0.5
	Seed           int64   `json:"seed"`
	// TraceKind selects the trace-generator family ("" = diurnal); it is
	// part of the config identity a daemon snapshot is checked against.
	TraceKind string `json:"trace_kind,omitempty"`
}

func (c RuntimeConfig) withDefaults() RuntimeConfig {
	if c.HostsPerRack <= 0 {
		c.HostsPerRack = 2
	}
	if c.VMsPerHost <= 0 {
		c.VMsPerHost = 3
	}
	if c.DependencyProb == 0 {
		c.DependencyProb = 0.5
	}
	return c
}

// BuildCluster constructs the topology, an empty cluster over it, and a
// paper-parameter cost model — the pieces runtime.Restore needs before
// overlaying a snapshot.
func BuildCluster(cfg RuntimeConfig) (*dcn.Cluster, *cost.Model, error) {
	cfg = cfg.withDefaults()
	var g *topology.Graph
	switch cfg.Kind {
	case FatTree:
		ft, err := topology.NewFatTree(topology.FatTreeConfig{Pods: cfg.Size})
		if err != nil {
			return nil, nil, err
		}
		g = ft.Graph
	case BCube:
		b, err := topology.NewBCube(topology.BCubeConfig{SwitchesPerLevel: cfg.Size})
		if err != nil {
			return nil, nil, err
		}
		g = b.Graph
	case LeafSpine:
		ls, err := topology.NewLeafSpine(topology.LeafSpineConfig{Leaves: cfg.Size})
		if err != nil {
			return nil, nil, err
		}
		g = ls.Graph
	default:
		return nil, nil, fmt.Errorf("sim: unknown topology kind %d", cfg.Kind)
	}
	cluster, err := dcn.NewCluster(g, dcn.Config{
		HostsPerRack: cfg.HostsPerRack,
		HostCapacity: 100,
		ToRCapacity:  100 * float64(cfg.HostsPerRack),
	})
	if err != nil {
		return nil, nil, err
	}
	model, err := cost.New(cluster, cost.PaperParams())
	if err != nil {
		return nil, nil, err
	}
	return cluster, model, nil
}

// BuildRuntime populates a fresh cluster from cfg and assembles the
// runtime around it. Use BuildCluster + runtime.Restore instead when
// resuming from a snapshot.
func BuildRuntime(cfg RuntimeConfig, opts runtime.Options) (*runtime.Runtime, error) {
	cfg = cfg.withDefaults()
	cluster, model, err := BuildCluster(cfg)
	if err != nil {
		return nil, err
	}
	cluster.Populate(dcn.PopulateOptions{
		VMsPerHost:              cfg.VMsPerHost,
		MinCapacity:             5,
		MaxCapacity:             20,
		DependencyProb:          cfg.DependencyProb,
		CrossRackDependencyProb: cfg.DependencyProb,
		Seed:                    cfg.Seed,
	})
	if opts.Seed == 0 {
		opts.Seed = cfg.Seed
	}
	if cfg.TraceKind != "" && opts.Traces.Kind == traces.Diurnal {
		kind, err := traces.ParseKind(cfg.TraceKind)
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		opts.Traces.Kind = kind
	}
	return runtime.New(cluster, model, opts)
}
