package sim

import (
	"testing"

	"sheriff/internal/faults"
	"sheriff/internal/migrate"
	"sheriff/internal/placement"
)

// TestRunPolicyChaosPlacesEverything is the end-to-end fail-queue
// guarantee: even with the bus dropping, duplicating and reordering
// messages, the retry rounds plus the final widened drain leave no VM
// homeless for every policy in the grid.
func TestRunPolicyChaosPlacesEverything(t *testing.T) {
	plan := &faults.Plan{Seed: 5, Drop: 0.15, DupRate: 0.1, ReorderRate: 0.2, Jitter: 1}
	for _, kind := range placement.Kinds() {
		res, err := RunPolicy(PolicyConfig{
			Sim:         Config{Kind: FatTree, Size: 4, Seed: 5},
			Policy:      placement.PolicyOptions{Kind: kind, Seed: 5},
			Preempt:     migrate.PreemptOptions{Enabled: true},
			Retry:       migrate.RetryOptions{Enabled: true},
			Fault:       plan,
			FaultName:   "chaos",
			Distributed: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if res.Unplaced != 0 {
			t.Errorf("%s: %d VMs left unplaced under chaos despite retries", kind, res.Unplaced)
		}
		if res.Migrations == 0 {
			t.Errorf("%s: chaos run migrated nothing", kind)
		}
	}
}

// TestRunPolicyDeterministic pins that the same PolicyConfig yields a
// bit-identical PolicyResult — the property the ablation grid and the
// BENCH_policy.json artifact rely on.
func TestRunPolicyDeterministic(t *testing.T) {
	run := func(distributed bool) *PolicyResult {
		res, err := RunPolicy(PolicyConfig{
			Sim:         Config{Kind: BCube, Size: 4, Seed: 13},
			Policy:      placement.PolicyOptions{Kind: placement.BestFit, Seed: 13},
			Preempt:     migrate.PreemptOptions{Enabled: true},
			Retry:       migrate.RetryOptions{Enabled: true},
			Distributed: distributed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, distributed := range []bool{false, true} {
		a, b := run(distributed), run(distributed)
		if *a != *b {
			t.Errorf("distributed=%v: identical configs produced different results\n a: %+v\n b: %+v",
				distributed, *a, *b)
		}
	}
}

// TestRunPolicySequentialRetries checks the sequential path keeps the
// leftover guarantee too: the widened final pass settles whatever the
// per-round regions could not take.
func TestRunPolicySequentialRetries(t *testing.T) {
	res, err := RunPolicy(PolicyConfig{
		Sim:     Config{Kind: FatTree, Size: 4, Seed: 3},
		Policy:  placement.PolicyOptions{Kind: placement.WorstFit, Seed: 3},
		Preempt: migrate.PreemptOptions{Enabled: true},
		Retry:   migrate.RetryOptions{Enabled: true},
		Rounds:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unplaced != 0 {
		t.Errorf("sequential run left %d VMs unplaced", res.Unplaced)
	}
	if res.FinalStdDev < 0 || res.InitialStdDev <= 0 {
		t.Errorf("implausible stddev pair: %f -> %f", res.InitialStdDev, res.FinalStdDev)
	}
}
