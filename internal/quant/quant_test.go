package quant

import (
	"math"
	"math/rand"
	"testing"
)

func TestFromFloatRoundTrip(t *testing.T) {
	// Every Q value survives the float round trip exactly: Q16.16 has 31
	// significant bits, float64 has 52.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		q := Q(rng.Int31()) - Q(rng.Int31())
		if got := FromFloat(q.Float()); got != q {
			t.Fatalf("FromFloat(%v.Float()) = %v", q, got)
		}
	}
	for _, q := range []Q{0, 1, -1, One, -One, Max, Min, Max - 1, Min + 1} {
		if got := FromFloat(q.Float()); got != q {
			t.Fatalf("FromFloat(%v.Float()) = %v", q, got)
		}
	}
}

func TestFromFloatRoundingAndSaturation(t *testing.T) {
	cases := []struct {
		f    float64
		want Q
	}{
		{0, 0},
		{1, One},
		{0.5, One / 2},
		{1.0 / (1 << 17), 1}, // half a ULP rounds away from zero
		{-1.0 / (1 << 17), -1},
		{1e9, Max},
		{-1e9, Min},
		{math.Inf(1), Max},
		{math.Inf(-1), Min},
		{math.NaN(), 0},
	}
	for _, c := range cases {
		if got := FromFloat(c.f); got != c.want {
			t.Errorf("FromFloat(%v) = %v, want %v", c.f, got, c.want)
		}
	}
}

func TestSaturatingOps(t *testing.T) {
	if got := Add(Max, 1); got != Max {
		t.Errorf("Add(Max, 1) = %v, want saturation at Max", got)
	}
	if got := Add(Min, -1); got != Min {
		t.Errorf("Add(Min, -1) = %v, want saturation at Min", got)
	}
	if got := Sub(Min, 1); got != Min {
		t.Errorf("Sub(Min, 1) = %v, want saturation at Min", got)
	}
	if got := Sub(Max, -1); got != Max {
		t.Errorf("Sub(Max, -1) = %v, want saturation at Max", got)
	}
	if got := MulInt(Max/2, 3); got != Max {
		t.Errorf("MulInt(Max/2, 3) = %v, want saturation at Max", got)
	}
	if got := MulInt(Min/2, 3); got != Min {
		t.Errorf("MulInt(Min/2, 3) = %v, want saturation at Min", got)
	}
	// Saturation, not wraparound: the sign never flips.
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10000; i++ {
		a, b := Q(rng.Int31()), Q(rng.Int31())
		if got, want := Add(a, b), int64(a)+int64(b); (want > 0) != (got > 0) && got != 0 {
			t.Fatalf("Add(%v, %v) = %v flipped sign vs exact %d", a, b, got, want)
		}
	}
}

func TestSnapCoeffs(t *testing.T) {
	c := Snap(0.5, 0.3, 0)
	if c.Shift != DefaultShift || c.Lead != 1 {
		t.Fatalf("Snap defaults: %+v", c)
	}
	if c.AlphaNum != 128 {
		t.Errorf("alpha 0.5 at shift 8 snapped to %d, want 128", c.AlphaNum)
	}
	if c.BetaNum != 77 { // 0.3·256 = 76.8 rounds to 77
		t.Errorf("beta 0.3 at shift 8 snapped to %d, want 77", c.BetaNum)
	}
	if math.Abs(c.Alpha()-0.5) > 1e-12 || math.Abs(c.Beta()-0.3) > 1.0/(1<<DefaultShift) {
		t.Errorf("snapped factors drifted: alpha %v beta %v", c.Alpha(), c.Beta())
	}
	// Clamps: out-of-range factors pin to the rails, alpha floors at one ULP.
	if c := Snap(7, -3, 4); c.AlphaNum != 16 || c.BetaNum != 0 {
		t.Errorf("clamped snap: %+v", c)
	}
	if c := Snap(0.0001, 0.5, 4); c.AlphaNum != 1 {
		t.Errorf("tiny alpha should floor at 1, got %d", c.AlphaNum)
	}
}

func TestCoeffsOptionConvention(t *testing.T) {
	if err := (Coeffs{}).Validate(); err != nil {
		t.Errorf("zero value failed Validate: %v", err)
	}
	if err := (Coeffs{AlphaNum: -1}).Validate(); err == nil {
		t.Error("negative AlphaNum passed Validate")
	}
	if err := (Coeffs{Lead: -1}).Validate(); err == nil {
		t.Error("negative Lead passed Validate")
	}
	if err := (Coeffs{Shift: MaxShift + 1}).Validate(); err == nil {
		t.Error("oversized Shift passed Validate")
	}
	if err := (Coeffs{AlphaNum: 300, Shift: 8}).Validate(); err == nil {
		t.Error("numerator above denominator passed Validate")
	}
	d := Coeffs{}.WithDefaults()
	if d != Snap(0.5, 0.3, DefaultShift) {
		t.Errorf("zero coeffs defaulted to %+v", d)
	}
	set := Coeffs{AlphaNum: 64, BetaNum: 16, Shift: 8, Lead: 4}
	if got := set.WithDefaults(); got != set {
		t.Errorf("WithDefaults overwrote set fields: %+v", got)
	}
}

// floatHolt is the reference recursion the quantized smoother
// approximates — the same α/β fold the float triage path runs.
func floatHolt(vals []float64, alpha, beta float64) (level, trend float64) {
	level, trend = vals[0], 0
	for _, v := range vals[1:] {
		prev := level
		level = alpha*v + (1-alpha)*(level+trend)
		trend = beta*(level-prev) + (1-beta)*trend
	}
	return level, trend
}

// TestHoltTracksFloatReference pins the quantization error: over long
// random [0,1] streams the integer state stays within a few coefficient
// ULPs of the float recursion run at the snapped factors.
func TestHoltTracksFloatReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := Snap(0.5, 0.3, DefaultShift)
	for trial := 0; trial < 20; trial++ {
		n := 50 + rng.Intn(400)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Float64()
		}
		var h Holt
		for _, v := range vals {
			h.Observe(FromFloat(v), c)
		}
		level, trend := floatHolt(vals, c.Alpha(), c.Beta())
		// Each fold contributes at most one rounding step of 2^-17 on the
		// value; the β recursion compounds it geometrically but 1e-3 is a
		// generous ceiling for any contraction α, β in (0,1].
		if d := math.Abs(h.Level.Float() - level); d > 1e-3 {
			t.Fatalf("trial %d: level drifted %v (quant %v float %v)", trial, d, h.Level.Float(), level)
		}
		if d := math.Abs(h.Trend.Float() - trend); d > 1e-3 {
			t.Fatalf("trial %d: trend drifted %v (quant %v float %v)", trial, d, h.Trend.Float(), trend)
		}
	}
}

// TestHoltSaturation drives the smoother with rail values: the state must
// pin at the rails instead of wrapping, and recover once inputs return to
// range.
func TestHoltSaturation(t *testing.T) {
	c := Coeffs{AlphaNum: 255, BetaNum: 255, Shift: 8, Lead: 10}
	var h Holt
	for i := 0; i < 100; i++ {
		sig := h.Observe(Max, c)
		if sig < 0 {
			t.Fatalf("step %d: signal wrapped negative under +Max input: %v", i, sig)
		}
	}
	if h.Level < Max/2 {
		t.Fatalf("level did not chase the rail: %v", h.Level)
	}
	for i := 0; i < 100; i++ {
		sig := h.Observe(Min, c)
		if i > 10 && sig > 0 {
			t.Fatalf("step %d: signal stuck positive under -Min input: %v", i, sig)
		}
	}
	// Recovery: back to in-range inputs, the state re-converges.
	for i := 0; i < 500; i++ {
		h.Observe(One/2, c)
	}
	if d := math.Abs(h.Level.Float() - 0.5); d > 0.01 {
		t.Fatalf("level did not recover after saturation: %v", h.Level.Float())
	}
}

// TestHoltSignalLead pins the extrapolation: with a clean linear ramp the
// Lead-step signal leads the level by Lead·trend.
func TestHoltSignalLead(t *testing.T) {
	c := Coeffs{AlphaNum: 256, BetaNum: 256, Shift: 8, Lead: 5}
	var h Holt
	for i := 0; i < 50; i++ {
		h.Observe(FromFloat(float64(i)*0.01), c)
	}
	// α=β=1 makes level track the input exactly and trend the last delta.
	want := h.Level.Float() + 5*h.Trend.Float()
	if got := h.Signal(c).Float(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("signal %v, want %v", got, want)
	}
	one := c
	one.Lead = 1
	if got, want := h.Signal(one), Add(h.Level, h.Trend); got != want {
		t.Fatalf("lead-1 signal %v != level+trend %v", got, want)
	}
}

// TestObserveDeterminism: the recursion is pure integer state — identical
// inputs give bit-identical states, the property the snapshot codec and
// the cross-engine restore rely on.
func TestObserveDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := Snap(0.625, 0.125, 8)
	c.Lead = 3
	var a, b Holt
	for i := 0; i < 5000; i++ {
		v := FromFloat(rng.Float64()*4 - 2)
		sa, sb := a.Observe(v, c), b.Observe(v, c)
		if sa != sb || a != b {
			t.Fatalf("step %d: states diverged: %+v vs %+v", i, a, b)
		}
	}
}

func BenchmarkHoltObserve(b *testing.B) {
	c := Coeffs{}.WithDefaults()
	var h Holt
	v := FromFloat(0.7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(v, c)
	}
	if h.Seen == 0 {
		b.Fatal("unreachable")
	}
}
