// Package quant provides the integer-only arithmetic behind Sheriff's
// line-rate triage predictor: saturating Q16.16 fixed-point values,
// smoothing coefficients snapped to dyadic rationals (n/2^s, so every
// multiply is a shift-and-add-friendly integer product), and the
// quantized Holt double-exponential smoother built from them.
//
// The design follows the P4 workload-prediction line of work (PAPERS.md):
// a programmable-switch datapath has no floating point, so a predictor
// that should run at line rate must keep all per-update state and
// arithmetic in fixed-width integers. Everything in this package operates
// on int32 state with int64 intermediates, rounds deterministically
// (half-up after the dyadic shift), and saturates instead of wrapping on
// overflow — a stressed counter pins at the rail rather than flipping
// sign mid-incident.
//
// The conversion boundary is explicit: FromFloat/Float cross between the
// float world (trace generators, operator thresholds) and the integer
// world exactly once at ingest and alert-report time; the smoothing
// recursion itself never touches a float.
package quant

import (
	"fmt"
	"math"
)

// FracBits is the number of fractional bits in a Q value (Q16.16).
const FracBits = 16

// One is the fixed-point representation of 1.0.
const One Q = 1 << FracBits

// Q is a Q16.16 fixed-point number: a signed 32-bit integer holding
// value·2^16. The normalized stress signals triage watches live in
// [0, 1], so the ±32767 integer range leaves four decades of headroom
// for saturating trend extrapolation before the rails.
type Q int32

// Max and Min are the saturation rails.
const (
	Max Q = math.MaxInt32
	Min Q = math.MinInt32
)

// FromFloat converts a float64 to fixed point, rounding to nearest
// (half away from zero) and saturating at the rails. NaN maps to 0.
// The round trip FromFloat(q.Float()) == q holds for every Q.
//
// The in-range branches avoid math.Round: adding ±0.5 and truncating is
// the same rounding, and this conversion sits on the ingest accept path
// where every update pays for it.
func FromFloat(f float64) Q {
	v := f * (1 << FracBits)
	if v >= 0 {
		if v < float64(Max) {
			return Q(v + 0.5)
		}
		return Max
	}
	if v > float64(Min) {
		return Q(v - 0.5)
	}
	if math.IsNaN(v) {
		return 0
	}
	return Min
}

// Float converts back to float64. Every Q value is exactly representable
// (31 significant bits), so the conversion is lossless.
func (q Q) Float() float64 { return float64(q) / (1 << FracBits) }

// sat clamps an int64 intermediate to the Q rails. min/max compile to
// branch-free conditional moves, keeping saturation off the hot loop's
// branch budget.
func sat(v int64) Q {
	return Q(min(max(v, int64(Min)), int64(Max)))
}

// Add returns a+b, saturating.
func Add(a, b Q) Q { return sat(int64(a) + int64(b)) }

// Sub returns a-b, saturating.
func Sub(a, b Q) Q { return sat(int64(a) - int64(b)) }

// MulInt returns a·n, saturating — the integer extrapolation step
// (e.g. trend · lead-horizon).
func MulInt(a Q, n int32) Q { return sat(int64(a) * int64(n)) }

// DefaultShift is the default dyadic coefficient resolution: smoothing
// factors are snapped to multiples of 2^-8, fine enough that the snap
// error (≤ 2^-9) is far below the trace noise floor.
const DefaultShift = 8

// MaxShift bounds the coefficient resolution so every intermediate
// product (coefficient ≤ 2^16 times a 32-bit state sum) stays well
// inside int64.
const MaxShift = 16

// Coeffs parameterizes the quantized Holt smoother: smoothing factors
// α = AlphaNum/2^Shift and β = BetaNum/2^Shift snapped to dyadic
// rationals, plus the alert lead horizon. The zero value means "use the
// defaults" (α=0.5, β=0.3 at DefaultShift, Lead 1 — the float triage
// filter's operating point), per the library's option convention.
type Coeffs struct {
	// AlphaNum and BetaNum are the dyadic numerators. After WithDefaults
	// they satisfy 1 <= AlphaNum <= 2^Shift and 0 <= BetaNum <= 2^Shift.
	AlphaNum int32 `json:"alpha_num"`
	BetaNum  int32 `json:"beta_num"`
	// Shift is the shared denominator exponent (coefficients are n/2^Shift).
	// Zero means DefaultShift.
	Shift uint32 `json:"shift"`
	// Lead is the alert horizon in steps: the triage signal extrapolates
	// level + Lead·trend, so a distilled Lead > 1 lets the one-pass filter
	// mimic the deep pool's path-max alerts. Zero means 1.
	Lead int32 `json:"lead"`
}

// Snap returns the coefficients closest to the float smoothing factors at
// the given resolution (0 = DefaultShift). Factors are clamped to [0, 1]
// first; α floors at 1/2^shift because a zero α would freeze the level.
func Snap(alpha, beta float64, shift uint32) Coeffs {
	if shift == 0 {
		shift = DefaultShift
	}
	if shift > MaxShift {
		shift = MaxShift
	}
	scale := int32(1) << shift
	snap := func(f float64) int32 {
		if math.IsNaN(f) || f <= 0 {
			return 0
		}
		if f >= 1 {
			return scale
		}
		return int32(math.Round(f * float64(scale)))
	}
	a := snap(alpha)
	if a == 0 {
		a = 1
	}
	return Coeffs{AlphaNum: a, BetaNum: snap(beta), Shift: shift, Lead: 1}
}

// Validate reports whether the coefficients are usable: negative fields
// are errors, zero fields mean defaults, and numerators must not exceed
// the denominator (factors stay in [0, 1]).
func (c Coeffs) Validate() error {
	if c.AlphaNum < 0 || c.BetaNum < 0 {
		return fmt.Errorf("quant: coefficient numerators must be >= 0, got alpha %d beta %d", c.AlphaNum, c.BetaNum)
	}
	if c.Shift > MaxShift {
		return fmt.Errorf("quant: Shift must be <= %d, got %d", MaxShift, c.Shift)
	}
	if c.Lead < 0 {
		return fmt.Errorf("quant: Lead must be >= 0 (0 = default), got %d", c.Lead)
	}
	shift := c.Shift
	if shift == 0 {
		shift = DefaultShift
	}
	scale := int32(1) << shift
	if c.AlphaNum > scale || c.BetaNum > scale {
		return fmt.Errorf("quant: numerators must be <= 2^%d = %d, got alpha %d beta %d", shift, scale, c.AlphaNum, c.BetaNum)
	}
	return nil
}

// WithDefaults returns the coefficients with zero fields replaced by
// their defaults: an all-zero struct snaps to the float triage filter's
// α=0.5/β=0.3 operating point, and a zero Shift or Lead takes
// DefaultShift or 1.
func (c Coeffs) WithDefaults() Coeffs {
	if c.AlphaNum == 0 && c.BetaNum == 0 {
		d := Snap(0.5, 0.3, c.Shift)
		d.Lead = c.Lead
		c = d
	}
	if c.Shift == 0 {
		c.Shift = DefaultShift
	}
	if c.Lead == 0 {
		c.Lead = 1
	}
	return c
}

// Alpha returns the effective smoothing factor α as a float.
func (c Coeffs) Alpha() float64 {
	c = c.WithDefaults()
	return float64(c.AlphaNum) / float64(int64(1)<<c.Shift)
}

// Beta returns the effective smoothing factor β as a float.
func (c Coeffs) Beta() float64 {
	c = c.WithDefaults()
	return float64(c.BetaNum) / float64(int64(1)<<c.Shift)
}

// dyadicBlend computes (a·x + (2^shift - a)·y) / 2^shift — the
// complementary blend both Holt folds reduce to — with round-half-up and
// saturation, rewritten as a·(x-y) + (y << shift) so it costs a single
// multiply. The forms are identical in exact arithmetic, and int64 holds
// both exactly: callers guarantee shift >= 1 and a <= 2^MaxShift, so
// with x, y bounded by the 33-bit level+trend sum every term stays below
// 2^50.
func dyadicBlend(a, x, y int64, shift uint32) Q {
	return sat((a*(x-y) + y<<shift + int64(1)<<(shift-1)) >> shift)
}

// Holt is the quantized double-exponential smoother: the integer twin of
// the float Holt filter in internal/ingest, one int32 level and trend per
// tracked series. The struct is plain data — it serializes directly and
// copies by value — and Observe is allocation-free.
type Holt struct {
	Level, Trend Q
	Seen         int32
}

// Observe folds one fixed-point observation into the state and returns
// the updated triage signal (see Signal). The recursion is the Holt
// update with dyadic coefficients,
//
//	level' = (αn·v + (2^s-αn)·(level+trend)) >> s
//	trend' = (βn·(level'-level) + (2^s-βn)·trend) >> s
//
// all in integer arithmetic with round-half-up and saturation. c must be
// resolved (WithDefaults) — Service construction and the distiller both
// guarantee it.
// Intermediates stay in full int64 headroom — only the two state words
// and the returned signal saturate. The level+trend base is at most
// 2^32 in magnitude and the numerators at most 2^MaxShift, so every
// product stays below 2^49: clamping mid-pipeline is unnecessary and
// would only add double-rounding at the rails.
func (h *Holt) Observe(v Q, c Coeffs) Q {
	if h.Seen == 0 {
		h.Level, h.Trend = v, 0
	} else {
		prev := int64(h.Level)
		base := prev + int64(h.Trend)
		h.Level = dyadicBlend(int64(c.AlphaNum), int64(v), base, c.Shift)
		h.Trend = dyadicBlend(int64(c.BetaNum), int64(h.Level)-prev, int64(h.Trend), c.Shift)
	}
	if h.Seen < math.MaxInt32 {
		h.Seen++
	}
	return h.Signal(c)
}

// Signal returns the alert signal level + Lead·trend, saturating: the
// Lead-step-ahead linear extrapolation of the smoothed state. With
// Lead 1 it is exactly the one-step-ahead Holt prediction the float
// triage path compares against its threshold. The extrapolation is a
// single int64 expression with one final clamp (Lead and Trend are each
// below 2^31, so the product cannot overflow).
func (h *Holt) Signal(c Coeffs) Q {
	return sat(int64(h.Level) + int64(c.Lead)*int64(h.Trend))
}
