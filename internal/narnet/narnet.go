// Package narnet implements the nonlinear autoregressive neural network
// (NARNET) of the paper's Sec. IV.B: Y_t = F(Y_{t−1}, Y_{t−2}, …, Y_{t−ni}) + ε,
// realized as a single-hidden-layer feed-forward network over a tapped
// delay line — ni inputs, nh tanh hidden units, one linear output.
//
// Training uses full-batch RPROP (resilient backpropagation), which needs
// no learning-rate tuning and converges quickly on the smooth workload
// series Sheriff predicts. Inputs and targets are normalized to [0,1]
// internally (the paper normalizes every workload-profile component to
// [0,1]); predictions are returned on the original scale.
package narnet

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"sheriff/internal/timeseries"
)

// Config specifies a NARNET(ni, nh) and its training regime.
type Config struct {
	Inputs int // ni: tapped-delay inputs
	Hidden int // nh: hidden units (paper uses 20 in Fig. 7)

	Epochs        int     // training epochs (default 400)
	ValidFraction float64 // trailing fraction held out for early stopping (default 0.15)
	Patience      int     // epochs without validation improvement before stop (default 30)
	Seed          int64   // weight-initialization seed (deterministic)
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Epochs <= 0 {
		out.Epochs = 400
	}
	if out.ValidFraction <= 0 || out.ValidFraction >= 0.5 {
		out.ValidFraction = 0.15
	}
	if out.Patience <= 0 {
		out.Patience = 30
	}
	return out
}

// Validate reports whether the architecture is usable.
func (c Config) Validate() error {
	if c.Inputs < 1 {
		return fmt.Errorf("narnet: need at least 1 input, got %d", c.Inputs)
	}
	if c.Hidden < 1 {
		return fmt.Errorf("narnet: need at least 1 hidden unit, got %d", c.Hidden)
	}
	return nil
}

// Network is a trained NARNET. Create one with Train.
type Network struct {
	cfg Config

	// w1[h*(ni+1)+i]: weight from input i (or bias at i=ni) to hidden h.
	w1 []float64
	// w2[h]: weight from hidden h to output; w2[nh] is the output bias.
	w2 []float64

	scale      timeseries.Scale   // normalization used during training
	history    *timeseries.Series // original-scale training series
	trainedMSE float64            // final training MSE (normalized units)

	mu sync.Mutex
	fc *lineState // cached delay line (see ForecastFrom)
}

// lineState caches the normalized tapped-delay line between ForecastFrom
// calls on the same append-only history: appending k observations shifts
// the line by k, so advancing costs O(min(k, ni)) instead of O(ni) per
// call. (The delay line is already O(ni) to rebuild, so unlike the ARIMA
// suffix state this is a constant-factor saving, not an asymptotic one.)
type lineState struct {
	src   *timeseries.Series
	yLen  int
	yLast float64
	line  []float64 // normalized values, most recent first, len = ni
}

// Train fits a NARNET to the series. The series must contain at least
// cfg.Inputs + 10 observations.
func Train(s *timeseries.Series, cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if s.Len() < cfg.Inputs+10 {
		return nil, fmt.Errorf("narnet: series length %d too short for %d inputs", s.Len(), cfg.Inputs)
	}
	norm, scale := s.Normalized()
	x, y := makeDataset(norm, cfg.Inputs)

	nValid := int(float64(len(y)) * cfg.ValidFraction)
	if nValid < 1 {
		nValid = 1
	}
	nTrain := len(y) - nValid
	if nTrain < cfg.Inputs+1 {
		nTrain = len(y)
		nValid = 0
	}

	net := &Network{
		cfg:     cfg,
		w1:      make([]float64, cfg.Hidden*(cfg.Inputs+1)),
		w2:      make([]float64, cfg.Hidden+1),
		scale:   scale,
		history: s.Clone(),
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	initScale := 1.0 / math.Sqrt(float64(cfg.Inputs+1))
	for i := range net.w1 {
		net.w1[i] = (rng.Float64()*2 - 1) * initScale
	}
	for i := range net.w2 {
		net.w2[i] = (rng.Float64()*2 - 1) * 0.5
	}

	trainer := newRPROP(len(net.w1) + len(net.w2))
	bestValid := math.Inf(1)
	bestW1 := append([]float64(nil), net.w1...)
	bestW2 := append([]float64(nil), net.w2...)
	sinceBest := 0

	grad := make([]float64, len(net.w1)+len(net.w2))
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		trainMSE := net.batchGradient(x[:nTrain], y[:nTrain], grad)
		net.trainedMSE = trainMSE
		trainer.step(grad, net.w1, net.w2)

		if nValid > 0 {
			validMSE := net.datasetMSE(x[nTrain:], y[nTrain:])
			if validMSE < bestValid-1e-12 {
				bestValid = validMSE
				copy(bestW1, net.w1)
				copy(bestW2, net.w2)
				sinceBest = 0
			} else {
				sinceBest++
				if sinceBest >= cfg.Patience {
					break
				}
			}
		}
	}
	if nValid > 0 {
		copy(net.w1, bestW1)
		copy(net.w2, bestW2)
	}
	return net, nil
}

// makeDataset builds the tapped-delay regression pairs: row t has inputs
// [Y_{t-1}, …, Y_{t-ni}] and target Y_t.
func makeDataset(s *timeseries.Series, ni int) (x [][]float64, y []float64) {
	n := s.Len() - ni
	x = make([][]float64, n)
	y = make([]float64, n)
	for r := 0; r < n; r++ {
		t := ni + r
		row := make([]float64, ni)
		for i := 0; i < ni; i++ {
			row[i] = s.At(t - 1 - i)
		}
		x[r] = row
		y[r] = s.At(t)
	}
	return x, y
}

// forwardNormalized evaluates the network on a normalized input row,
// optionally capturing hidden activations for backprop.
func (n *Network) forwardNormalized(row []float64, hidden []float64) float64 {
	ni, nh := n.cfg.Inputs, n.cfg.Hidden
	out := n.w2[nh] // output bias
	for h := 0; h < nh; h++ {
		sum := n.w1[h*(ni+1)+ni] // hidden bias
		base := h * (ni + 1)
		for i := 0; i < ni; i++ {
			sum += n.w1[base+i] * row[i]
		}
		a := math.Tanh(sum)
		if hidden != nil {
			hidden[h] = a
		}
		out += n.w2[h] * a
	}
	return out
}

// batchGradient computes the full-batch MSE gradient into grad (layout:
// w1 then w2) and returns the batch MSE.
func (n *Network) batchGradient(x [][]float64, y []float64, grad []float64) float64 {
	ni, nh := n.cfg.Inputs, n.cfg.Hidden
	for i := range grad {
		grad[i] = 0
	}
	hidden := make([]float64, nh)
	sse := 0.0
	for r := range x {
		pred := n.forwardNormalized(x[r], hidden)
		e := pred - y[r]
		sse += e * e
		// Output layer gradient.
		g2 := grad[len(n.w1):]
		for h := 0; h < nh; h++ {
			g2[h] += e * hidden[h]
		}
		g2[nh] += e
		// Hidden layer gradient.
		for h := 0; h < nh; h++ {
			d := e * n.w2[h] * (1 - hidden[h]*hidden[h])
			base := h * (ni + 1)
			for i := 0; i < ni; i++ {
				grad[base+i] += d * x[r][i]
			}
			grad[base+ni] += d
		}
	}
	inv := 1.0 / float64(len(x))
	for i := range grad {
		grad[i] *= inv
	}
	return sse * inv
}

func (n *Network) datasetMSE(x [][]float64, y []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	sse := 0.0
	for r := range x {
		e := n.forwardNormalized(x[r], nil) - y[r]
		sse += e * e
	}
	return sse / float64(len(x))
}

// TrainMSE returns the final training MSE in normalized units.
func (n *Network) TrainMSE() float64 { return n.trainedMSE }

// Config returns the architecture the network was trained with.
func (n *Network) Config() Config { return n.cfg }

// Forecast returns h-step-ahead predictions from the end of the training
// series, feeding each prediction back into the delay line (closed loop).
func (n *Network) Forecast(h int) ([]float64, error) {
	return n.ForecastFrom(n.history, h)
}

// ForecastFrom returns h-step-ahead predictions treating history as the
// observed past. Repeated calls with the same *Series value reuse the
// cached delay line when the history has only grown (append-only);
// anything else rebuilds the line from the last ni observations.
func (n *Network) ForecastFrom(history *timeseries.Series, h int) ([]float64, error) {
	if h <= 0 {
		return nil, errors.New("narnet: forecast horizon must be positive")
	}
	ni := n.cfg.Inputs
	if history.Len() < ni {
		return nil, fmt.Errorf("narnet: history length %d shorter than delay line %d", history.Len(), ni)
	}
	n.mu.Lock()
	st := n.fc
	grown := ni // default: rebuild the whole line
	if st != nil && st.src == history && st.yLen <= history.Len() &&
		history.At(st.yLen-1) == st.yLast {
		grown = history.Len() - st.yLen
	} else {
		st = &lineState{src: history, line: make([]float64, ni)}
		n.fc = st
	}
	if grown > ni {
		grown = ni
	}
	if grown > 0 {
		copy(st.line[grown:], st.line[:ni-grown])
		for i := 0; i < grown; i++ {
			st.line[i] = n.scale.Apply(history.At(history.Len() - 1 - i))
		}
	}
	st.yLen = history.Len()
	st.yLast = history.Last()
	// Work on a copy: the closed-loop recursion feeds predictions back
	// into the line, which must not leak into the cached observed state.
	line := append([]float64(nil), st.line...)
	n.mu.Unlock()

	out := make([]float64, h)
	for k := 0; k < h; k++ {
		p := n.forwardNormalized(line, nil)
		out[k] = n.scale.Invert(p)
		copy(line[1:], line[:ni-1])
		line[0] = p
	}
	return out, nil
}

// RollingForecast produces one-step-ahead out-of-sample predictions over
// test, revealing each true value after predicting it — the open-loop
// protocol of the paper's Fig. 7.
func (n *Network) RollingForecast(train, test *timeseries.Series) ([]float64, error) {
	history := train.Clone()
	out := make([]float64, test.Len())
	for t := 0; t < test.Len(); t++ {
		fc, err := n.ForecastFrom(history, 1)
		if err != nil {
			return nil, fmt.Errorf("narnet: rolling forecast at step %d: %w", t, err)
		}
		out[t] = fc[0]
		history.Append(test.At(t))
	}
	return out, nil
}
