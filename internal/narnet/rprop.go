package narnet

import "math"

// rprop implements iRPROP− (resilient backpropagation without weight
// backtracking): each weight has its own step size, grown when the
// gradient keeps its sign and shrunk when it flips. Only gradient signs
// are used, which makes training insensitive to the error surface scale.
type rprop struct {
	delta    []float64 // per-weight step sizes
	prevGrad []float64
}

const (
	rpropEtaPlus  = 1.2
	rpropEtaMinus = 0.5
	rpropDeltaMin = 1e-8
	rpropDeltaMax = 1.0
	rpropDelta0   = 0.01
)

func newRPROP(n int) *rprop {
	r := &rprop{
		delta:    make([]float64, n),
		prevGrad: make([]float64, n),
	}
	for i := range r.delta {
		r.delta[i] = rpropDelta0
	}
	return r
}

// step applies one RPROP update to the concatenated weight vector
// (w1 followed by w2) given the current gradient.
func (r *rprop) step(grad, w1, w2 []float64) {
	n1 := len(w1)
	for i := range grad {
		g := grad[i]
		sign := g * r.prevGrad[i]
		switch {
		case sign > 0:
			r.delta[i] = math.Min(r.delta[i]*rpropEtaPlus, rpropDeltaMax)
		case sign < 0:
			r.delta[i] = math.Max(r.delta[i]*rpropEtaMinus, rpropDeltaMin)
			// iRPROP−: zero the remembered gradient after a sign flip so
			// the next step is treated as fresh.
			g = 0
		}
		var upd float64
		switch {
		case g > 0:
			upd = -r.delta[i]
		case g < 0:
			upd = r.delta[i]
		}
		if i < n1 {
			w1[i] += upd
		} else {
			w2[i-n1] += upd
		}
		r.prevGrad[i] = g
	}
}
