package narnet

import (
	"encoding/json"
	"testing"
)

// TestUnmarshalResetsDelayLine is the regression test for the
// serializer/delay-line interaction: UnmarshalJSON replaces the weights
// and normalization scale in place, so the cached delay line — whose
// entries were normalized under the old scale — must be dropped. Before
// the fix, forecasting from the same *Series pointer after a reload
// reused line entries in the wrong coordinate system.
func TestUnmarshalResetsDelayLine(t *testing.T) {
	sA := sineSeries(300, 24, 0.5, 30)
	sB := sineSeries(300, 16, 4.0, 77) // different amplitude → different scale
	nA, err := Train(sA, Config{Inputs: 6, Hidden: 8, Seed: 30, Epochs: 40})
	if err != nil {
		t.Fatal(err)
	}
	nB, err := Train(sB, Config{Inputs: 6, Hidden: 8, Seed: 77, Epochs: 40})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(nB)
	if err != nil {
		t.Fatal(err)
	}

	// Warm nA's delay-line cache on a live history pointer.
	hist := sA.Clone()
	if _, err := nA.ForecastFrom(hist, 1); err != nil {
		t.Fatal(err)
	}

	// Reload nB into nA in place, then grow the history by fewer points
	// than the delay line: the append fast path would otherwise keep
	// entries normalized under nA's old scale.
	if err := json.Unmarshal(blob, nA); err != nil {
		t.Fatal(err)
	}
	hist.Append(0.9, 1.4)

	got, err := nA.ForecastFrom(hist, 3)
	if err != nil {
		t.Fatal(err)
	}
	var fresh Network
	if err := json.Unmarshal(blob, &fresh); err != nil {
		t.Fatal(err)
	}
	want, err := fresh.ForecastFrom(hist, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("forecast %d after in-place reload differs from fresh restore: %v vs %v (stale delay line survived UnmarshalJSON)", i, got[i], want[i])
		}
	}
}
