package narnet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sheriff/internal/timeseries"
)

func sineSeries(n int, period float64, noise float64, seed int64) *timeseries.Series {
	rng := rand.New(rand.NewSource(seed))
	return timeseries.FromFunc(n, func(t int) float64 {
		return 50 + 30*math.Sin(2*math.Pi*float64(t)/period) + noise*rng.NormFloat64()
	})
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Inputs: 0, Hidden: 3}).Validate(); err == nil {
		t.Error("zero inputs accepted")
	}
	if err := (Config{Inputs: 3, Hidden: 0}).Validate(); err == nil {
		t.Error("zero hidden accepted")
	}
	if err := (Config{Inputs: 3, Hidden: 5}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestTrainTooShort(t *testing.T) {
	if _, err := Train(timeseries.New([]float64{1, 2, 3}), Config{Inputs: 4, Hidden: 2}); err == nil {
		t.Fatal("expected error on short series")
	}
}

func TestTrainLearnsSine(t *testing.T) {
	s := sineSeries(600, 24, 0.5, 1)
	train, test := s.Split(0.7)
	net, err := Train(train, Config{Inputs: 8, Hidden: 12, Seed: 1, Epochs: 600})
	if err != nil {
		t.Fatal(err)
	}
	pred, err := net.RollingForecast(train, test)
	if err != nil {
		t.Fatal(err)
	}
	rmse, _ := timeseries.RMSE(test.Raw(), pred)
	// Signal amplitude is 30; a trained net should have RMSE well under 5.
	if rmse > 5 {
		t.Errorf("sine RMSE = %.3f, want < 5", rmse)
	}
}

func TestTrainLearnsNonlinearMap(t *testing.T) {
	// Logistic-style map: clearly nonlinear, where a linear AR struggles.
	data := make([]float64, 500)
	data[0] = 0.4
	for t := 1; t < len(data); t++ {
		data[t] = 3.6 * data[t-1] * (1 - data[t-1])
	}
	s := timeseries.New(data)
	train, test := s.Split(0.8)
	net, err := Train(train, Config{Inputs: 3, Hidden: 16, Seed: 2, Epochs: 800})
	if err != nil {
		t.Fatal(err)
	}
	pred, err := net.RollingForecast(train, test)
	if err != nil {
		t.Fatal(err)
	}
	mse, _ := timeseries.MSE(test.Raw(), pred)
	if mse > 0.01 {
		t.Errorf("logistic-map MSE = %.5f, want < 0.01", mse)
	}
}

func TestForecastHorizonValidation(t *testing.T) {
	s := sineSeries(200, 20, 0, 3)
	net, err := Train(s, Config{Inputs: 4, Hidden: 4, Seed: 3, Epochs: 50})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Forecast(0); err == nil {
		t.Error("zero horizon should error")
	}
	if _, err := net.ForecastFrom(timeseries.New([]float64{1}), 1); err == nil {
		t.Error("short history should error")
	}
}

func TestForecastStaysInTrainingRange(t *testing.T) {
	// Closed-loop forecasts of a bounded series should not explode.
	s := sineSeries(400, 30, 1, 4)
	net, err := Train(s, Config{Inputs: 6, Hidden: 10, Seed: 4, Epochs: 300})
	if err != nil {
		t.Fatal(err)
	}
	fc, err := net.Forecast(100)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := s.Min()-30, s.Max()+30
	for k, v := range fc {
		if math.IsNaN(v) || v < lo || v > hi {
			t.Fatalf("closed-loop forecast diverged at step %d: %v", k, v)
		}
	}
}

func TestDeterministicWithSameSeed(t *testing.T) {
	s := sineSeries(300, 24, 0.5, 5)
	cfg := Config{Inputs: 5, Hidden: 8, Seed: 42, Epochs: 100}
	n1, err := Train(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := Train(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f1, _ := n1.Forecast(5)
	f2, _ := n2.Forecast(5)
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatalf("same seed produced different forecasts: %v vs %v", f1, f2)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	s := sineSeries(300, 24, 2, 6)
	n1, err := Train(s, Config{Inputs: 5, Hidden: 8, Seed: 1, Epochs: 30})
	if err != nil {
		t.Fatal(err)
	}
	n2, err := Train(s, Config{Inputs: 5, Hidden: 8, Seed: 2, Epochs: 30})
	if err != nil {
		t.Fatal(err)
	}
	f1, _ := n1.Forecast(1)
	f2, _ := n2.Forecast(1)
	if f1[0] == f2[0] {
		t.Log("different seeds coincided (possible but unlikely)")
	}
}

func TestMakeDataset(t *testing.T) {
	s := timeseries.New([]float64{1, 2, 3, 4, 5})
	x, y := makeDataset(s, 2)
	if len(x) != 3 || len(y) != 3 {
		t.Fatalf("dataset sizes %d/%d, want 3/3", len(x), len(y))
	}
	// Row 0: target Y_2 = 3, inputs [Y_1, Y_0] = [2, 1].
	if y[0] != 3 || x[0][0] != 2 || x[0][1] != 1 {
		t.Fatalf("row 0 = %v -> %v", x[0], y[0])
	}
	if y[2] != 5 || x[2][0] != 4 || x[2][1] != 3 {
		t.Fatalf("row 2 = %v -> %v", x[2], y[2])
	}
}

func TestTrainMSEDecreases(t *testing.T) {
	s := sineSeries(400, 24, 0.5, 7)
	short, err := Train(s, Config{Inputs: 6, Hidden: 10, Seed: 7, Epochs: 5, Patience: 1000})
	if err != nil {
		t.Fatal(err)
	}
	long, err := Train(s, Config{Inputs: 6, Hidden: 10, Seed: 7, Epochs: 400, Patience: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if long.TrainMSE() >= short.TrainMSE() {
		t.Errorf("more epochs did not reduce train MSE: %v -> %v", short.TrainMSE(), long.TrainMSE())
	}
}

func TestConfigAccessor(t *testing.T) {
	s := sineSeries(200, 24, 0, 8)
	net, err := Train(s, Config{Inputs: 4, Hidden: 6, Seed: 8, Epochs: 20})
	if err != nil {
		t.Fatal(err)
	}
	if got := net.Config(); got.Inputs != 4 || got.Hidden != 6 {
		t.Fatalf("Config = %+v", got)
	}
}

// Property: forecasts are finite for any valid seed and small architecture.
func TestForecastFiniteProperty(t *testing.T) {
	s := sineSeries(250, 20, 1, 9)
	f := func(seed int64, niRaw, nhRaw uint8) bool {
		ni := int(niRaw%6) + 1
		nh := int(nhRaw%8) + 1
		net, err := Train(s, Config{Inputs: ni, Hidden: nh, Seed: seed, Epochs: 40})
		if err != nil {
			return false
		}
		fc, err := net.Forecast(10)
		if err != nil {
			return false
		}
		for _, v := range fc {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestRPROPStepSizesAdapt(t *testing.T) {
	r := newRPROP(1)
	w1 := []float64{0}
	w2 := []float64{}
	// Same gradient sign twice: step grows.
	r.step([]float64{1}, w1, w2)
	d1 := r.delta[0]
	r.step([]float64{1}, w1, w2)
	if r.delta[0] <= d1 {
		t.Errorf("delta should grow on same sign: %v -> %v", d1, r.delta[0])
	}
	// Sign flip: step shrinks.
	dBefore := r.delta[0]
	r.step([]float64{-1}, w1, w2)
	if r.delta[0] >= dBefore {
		t.Errorf("delta should shrink on sign flip: %v -> %v", dBefore, r.delta[0])
	}
}

func TestRPROPBoundsRespected(t *testing.T) {
	r := newRPROP(1)
	w1 := []float64{0}
	for i := 0; i < 200; i++ {
		r.step([]float64{1}, w1, nil)
	}
	if r.delta[0] > rpropDeltaMax {
		t.Errorf("delta exceeded max: %v", r.delta[0])
	}
	for i := 0; i < 400; i++ {
		g := 1.0
		if i%2 == 0 {
			g = -1
		}
		r.step([]float64{g}, w1, nil)
	}
	if r.delta[0] < rpropDeltaMin {
		t.Errorf("delta under min: %v", r.delta[0])
	}
}
