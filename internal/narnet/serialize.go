package narnet

import (
	"encoding/json"
	"fmt"

	"sheriff/internal/timeseries"
)

// networkJSON is the serialized form of a trained Network.
type networkJSON struct {
	Config     Config    `json:"config"`
	W1         []float64 `json:"w1"`
	W2         []float64 `json:"w2"`
	Offset     float64   `json:"scale_offset"`
	Factor     float64   `json:"scale_factor"`
	History    []float64 `json:"history"`
	TrainedMSE float64   `json:"trained_mse"`
}

// MarshalJSON serializes the trained network — weights, normalization,
// and the history needed for closed-loop forecasting.
func (n *Network) MarshalJSON() ([]byte, error) {
	return json.Marshal(networkJSON{
		Config:     n.cfg,
		W1:         n.w1,
		W2:         n.w2,
		Offset:     n.scale.Offset,
		Factor:     n.scale.Factor,
		History:    n.history.Values(),
		TrainedMSE: n.trainedMSE,
	})
}

// UnmarshalJSON restores a network serialized by MarshalJSON.
func (n *Network) UnmarshalJSON(b []byte) error {
	var dto networkJSON
	if err := json.Unmarshal(b, &dto); err != nil {
		return fmt.Errorf("narnet: unmarshal: %w", err)
	}
	if err := dto.Config.Validate(); err != nil {
		return fmt.Errorf("narnet: unmarshal: %w", err)
	}
	wantW1 := dto.Config.Hidden * (dto.Config.Inputs + 1)
	wantW2 := dto.Config.Hidden + 1
	if len(dto.W1) != wantW1 || len(dto.W2) != wantW2 {
		return fmt.Errorf("narnet: unmarshal: weight sizes (%d,%d) do not match NARNET(%d,%d)",
			len(dto.W1), len(dto.W2), dto.Config.Inputs, dto.Config.Hidden)
	}
	if dto.Factor == 0 {
		return fmt.Errorf("narnet: unmarshal: zero scale factor")
	}
	n.cfg = dto.Config
	n.w1 = dto.W1
	n.w2 = dto.W2
	n.scale = timeseries.Scale{Offset: dto.Offset, Factor: dto.Factor}
	n.history = timeseries.New(dto.History)
	n.trainedMSE = dto.TrainedMSE
	// Drop the cached delay line: it holds values normalized under the
	// previous scale, and a source series pointer from before the
	// unmarshal could otherwise revalidate it.
	n.fc = nil
	return nil
}
