package narnet

import (
	"encoding/json"
	"testing"
)

func TestNetworkJSONRoundTrip(t *testing.T) {
	s := sineSeries(300, 24, 0.5, 30)
	orig, err := Train(s, Config{Inputs: 6, Hidden: 8, Seed: 30, Epochs: 60})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var restored Network
	if err := json.Unmarshal(blob, &restored); err != nil {
		t.Fatal(err)
	}
	if restored.Config() != orig.Config() {
		t.Fatal("config not preserved")
	}
	if restored.TrainMSE() != orig.TrainMSE() {
		t.Fatal("train MSE not preserved")
	}
	fo, err := orig.Forecast(5)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := restored.Forecast(5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fo {
		if fo[i] != fr[i] {
			t.Fatalf("forecast %d differs: %v vs %v", i, fo[i], fr[i])
		}
	}
}

func TestNetworkUnmarshalRejectsCorrupt(t *testing.T) {
	var n Network
	if err := json.Unmarshal([]byte(`{"config":{"Inputs":0,"Hidden":3}}`), &n); err == nil {
		t.Error("invalid config accepted")
	}
	if err := json.Unmarshal([]byte(`{"config":{"Inputs":2,"Hidden":2},"w1":[1],"w2":[1,2,3],"scale_factor":1}`), &n); err == nil {
		t.Error("weight size mismatch accepted")
	}
	if err := json.Unmarshal([]byte(`{"config":{"Inputs":1,"Hidden":1},"w1":[1,2],"w2":[1,2],"scale_factor":0}`), &n); err == nil {
		t.Error("zero scale factor accepted")
	}
}
