package flow

import (
	"fmt"
	"sort"
)

// FlowSnap is the serialized form of one flow, path included: routes are
// load-sensitive at admission time and persist across reroutes, so they
// cannot be recomputed on restore without diverging from the live
// network.
type FlowSnap struct {
	ID             int     `json:"id"`
	Src            int     `json:"src"`
	Dst            int     `json:"dst"`
	Rate           float64 `json:"rate"`
	DelaySensitive bool    `json:"delay_sensitive,omitempty"`
	Path           []int   `json:"path,omitempty"`
}

// LinkLoad is one directed link's exact offered load. Loads are in
// principle derivable from the flow paths, but the live network updates
// them incrementally (SetRate adds and subtracts rates in place), so the
// accumulated floating-point state differs from a fresh recompute by
// ulps. Carrying the exact values keeps a restored network bit-identical
// to the one that never stopped.
type LinkLoad struct {
	A    int     `json:"a"`
	B    int     `json:"b"`
	Load float64 `json:"load"`
}

// Snapshot captures the network's flow table and exact link loads.
type Snapshot struct {
	Flows  []FlowSnap `json:"flows"`
	Loads  []LinkLoad `json:"loads,omitempty"`
	NextID int        `json:"next_id"`
}

// Snapshot returns a deep copy of the flow table, ordered by flow ID.
func (n *Network) Snapshot() *Snapshot {
	snap := &Snapshot{Flows: make([]FlowSnap, 0, len(n.flows)), NextID: n.nextID}
	for _, f := range n.flows {
		snap.Flows = append(snap.Flows, FlowSnap{
			ID:             f.ID,
			Src:            f.Src,
			Dst:            f.Dst,
			Rate:           f.Rate,
			DelaySensitive: f.DelaySensitive,
			Path:           append([]int(nil), f.path...),
		})
	}
	sort.Slice(snap.Flows, func(i, j int) bool { return snap.Flows[i].ID < snap.Flows[j].ID })
	for key, load := range n.load {
		snap.Loads = append(snap.Loads, LinkLoad{A: key[0], B: key[1], Load: load})
	}
	sort.Slice(snap.Loads, func(i, j int) bool {
		if snap.Loads[i].A != snap.Loads[j].A {
			return snap.Loads[i].A < snap.Loads[j].A
		}
		return snap.Loads[i].B < snap.Loads[j].B
	})
	return snap
}

// Restore rebuilds the flow table from a snapshot. The network must be
// empty (freshly constructed over the same topology graph); every path
// must be a walk over existing links with the flow's endpoints at its
// ends. When the snapshot carries link loads they are installed verbatim
// (preserving the live network's accumulated floating-point state);
// otherwise loads are recomputed from the restored paths.
func (n *Network) Restore(snap *Snapshot) error {
	if snap == nil {
		return fmt.Errorf("flow: restore from nil snapshot")
	}
	if len(n.flows) != 0 {
		return fmt.Errorf("flow: restore into non-empty network (%d flows)", len(n.flows))
	}
	seen := make(map[int]bool, len(snap.Flows))
	for _, fs := range snap.Flows {
		if seen[fs.ID] {
			return fmt.Errorf("flow: snapshot has duplicate flow id %d", fs.ID)
		}
		seen[fs.ID] = true
		if fs.ID >= snap.NextID {
			return fmt.Errorf("flow: snapshot flow id %d not below next_id %d", fs.ID, snap.NextID)
		}
		if err := n.validatePath(fs); err != nil {
			return err
		}
	}
	for _, fs := range snap.Flows {
		f := &Flow{ID: fs.ID, Src: fs.Src, Dst: fs.Dst, Rate: fs.Rate, DelaySensitive: fs.DelaySensitive}
		if len(fs.Path) > 0 {
			n.applyPath(f, append([]int(nil), fs.Path...))
		}
		n.flows[f.ID] = f
	}
	if len(snap.Loads) > 0 {
		load := make(map[[2]int]float64, len(snap.Loads))
		for _, ll := range snap.Loads {
			key := [2]int{ll.A, ll.B}
			if _, dup := load[key]; dup {
				return fmt.Errorf("flow: snapshot has duplicate load entry for link %d→%d", ll.A, ll.B)
			}
			if _, recomputed := n.load[key]; !recomputed {
				return fmt.Errorf("flow: snapshot load entry %d→%d not covered by any flow path", ll.A, ll.B)
			}
			load[key] = ll.Load
		}
		if len(load) != len(n.load) {
			return fmt.Errorf("flow: snapshot carries %d load entries, flow paths cover %d links", len(load), len(n.load))
		}
		n.load = load
	}
	n.nextID = snap.NextID
	return nil
}

func (n *Network) validatePath(fs FlowSnap) error {
	if len(fs.Path) == 0 {
		return nil
	}
	if fs.Path[0] != fs.Src || fs.Path[len(fs.Path)-1] != fs.Dst {
		return fmt.Errorf("flow: snapshot flow %d path endpoints %d→%d do not match flow %d→%d",
			fs.ID, fs.Path[0], fs.Path[len(fs.Path)-1], fs.Src, fs.Dst)
	}
	for i := 1; i < len(fs.Path); i++ {
		a, b := fs.Path[i-1], fs.Path[i]
		if a < 0 || a >= n.g.NumNodes() || b < 0 || b >= n.g.NumNodes() {
			return fmt.Errorf("flow: snapshot flow %d path node out of range (%d→%d)", fs.ID, a, b)
		}
		if _, ok := n.g.EdgeBetween(a, b); !ok {
			return fmt.Errorf("flow: snapshot flow %d path uses missing link %d→%d", fs.ID, a, b)
		}
	}
	return nil
}
