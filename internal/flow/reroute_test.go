package flow

import (
	"math"
	"testing"

	"sheriff/internal/topology"
)

// checkLoadConsistency recomputes the load map from every flow's current
// path and compares it with the network's incremental accounting — the
// invariant the cached-sweep reroute must preserve.
func checkLoadConsistency(t *testing.T, n *Network) {
	t.Helper()
	want := make(map[[2]int]float64)
	for _, f := range n.Flows() {
		p := f.Path()
		for i := 1; i < len(p); i++ {
			want[[2]int{p[i-1], p[i]}] += f.Rate
		}
	}
	for k, v := range want {
		if got := n.load[k]; math.Abs(got-v) > 1e-9 {
			t.Fatalf("load on %v = %v, want %v", k, got, v)
		}
	}
	for k, v := range n.load {
		if _, ok := want[k]; !ok && v > 1e-9 {
			t.Fatalf("phantom load %v on %v", v, k)
		}
	}
}

// TestRerouteAroundHotSharedSource drives many same-source flows through
// one hot switch so the pass exercises the shared-sweep fast path (one
// Dijkstra per distinct source, invalidated only after a move).
func TestRerouteAroundHotSharedSource(t *testing.T) {
	ft := fatTree(t, 8)
	n := NewNetwork(ft.Graph)
	src := ft.RackIDs[0][0]
	// Several flows from one rack to different pods; they share the first
	// hop and pile onto the pod's aggregation layer.
	for pod := 1; pod <= 4; pod++ {
		for i := 0; i < 2; i++ {
			if _, err := n.AddFlow(src, ft.RackIDs[pod][i], 0.2, false); err != nil {
				t.Fatal(err)
			}
		}
	}
	var hot int
	maxU := 0.0
	for _, sw := range ft.Switches() {
		if u := n.SwitchUtilization(sw); u > maxU {
			maxU, hot = u, sw
		}
	}
	moved := n.RerouteAroundHot(hot, 0.1) // low target: move everything movable
	if len(moved) == 0 {
		t.Fatal("no flows moved")
	}
	for _, f := range moved {
		for _, hop := range f.Path() {
			if hop == hot {
				t.Fatalf("moved flow %d still crosses hot switch %d: %v", f.ID, hot, f.Path())
			}
		}
		if f.Path()[0] != f.Src || f.Path()[len(f.Path())-1] != f.Dst {
			t.Fatalf("moved flow %d has bad endpoints: %v", f.ID, f.Path())
		}
	}
	checkLoadConsistency(t, n)
}

// TestRerouteAroundHotNoAlternative: when the hot switch is the only way
// through, the cached-sweep pass must leave the flow (and its load)
// untouched, like the exact Reroute's restore path.
func TestRerouteAroundHotNoAlternative(t *testing.T) {
	g := topology.NewGraph()
	a := g.AddNode(topology.Rack, "a", 0, 0)
	s := g.AddNode(topology.Switch, "s", 0, 1)
	b := g.AddNode(topology.Rack, "b", 0, 0)
	if err := g.AddLink(a, s, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(s, b, 1, 1); err != nil {
		t.Fatal(err)
	}
	n := NewNetwork(g)
	f, err := n.AddFlow(a, b, 0.95, false)
	if err != nil {
		t.Fatal(err)
	}
	if moved := n.RerouteAroundHot(s, 0.5); len(moved) != 0 {
		t.Fatalf("moved %v despite no alternative", moved)
	}
	if len(f.Path()) != 3 || n.LinkLoad(a, s) != 0.95 {
		t.Fatal("failed pass disturbed flow state")
	}
	checkLoadConsistency(t, n)
}

// TestCheapestPathReusesSweep: routing queries must write into one
// network-owned table instead of allocating a fresh MultiSource per flow.
func TestCheapestPathReusesSweep(t *testing.T) {
	ft := fatTree(t, 4)
	n := NewNetwork(ft.Graph)
	if _, err := n.AddFlow(ft.RackIDs[0][0], ft.RackIDs[1][0], 0.1, false); err != nil {
		t.Fatal(err)
	}
	first := n.sweep
	if first == nil {
		t.Fatal("no sweep retained after AddFlow")
	}
	for i := 0; i < 5; i++ {
		if _, err := n.AddFlow(ft.RackIDs[0][0], ft.RackIDs[2][1], 0.1, false); err != nil {
			t.Fatal(err)
		}
	}
	if n.sweep != first {
		t.Fatal("cheapestPath reallocated its sweep table")
	}
	checkLoadConsistency(t, n)
}

// TestRerouteAroundHotEquivalentAvoidance cross-checks the cached pass
// against the exact single-flow primitive: every flow it moves must land
// on a path the exact avoidance query also considers reachable.
func TestRerouteAroundHotEquivalentAvoidance(t *testing.T) {
	ft := fatTree(t, 4)
	n := NewNetwork(ft.Graph)
	src, dst := ft.RackIDs[0][0], ft.RackIDs[0][1]
	for i := 0; i < 3; i++ {
		if _, err := n.AddFlow(src, dst, 0.5, false); err != nil {
			t.Fatal(err)
		}
	}
	var hot int
	maxU := 0.0
	for _, sw := range ft.Switches() {
		if u := n.SwitchUtilization(sw); u > maxU {
			maxU, hot = u, sw
		}
	}
	moved := n.RerouteAroundHot(hot, 0.8)
	for _, f := range moved {
		exact := topology.ShortestPathAvoidingNodes(ft.Graph, f.Src, f.Dst, map[int]bool{hot: true}, topology.DistanceCost)
		if exact == nil {
			t.Fatalf("cached pass moved flow %d but no avoiding path exists", f.ID)
		}
		if len(f.Path()) != len(exact) {
			t.Fatalf("moved flow %d path length %d, exact avoidance %d", f.ID, len(f.Path()), len(exact))
		}
	}
	checkLoadConsistency(t, n)
}
