package flow

import (
	"errors"
	"math"
	"testing"

	"sheriff/internal/topology"
)

func fatTree(t *testing.T, pods int) *topology.FatTree {
	t.Helper()
	ft, err := topology.NewFatTree(topology.FatTreeConfig{Pods: pods})
	if err != nil {
		t.Fatal(err)
	}
	return ft
}

func TestAddFlowRoutesShortest(t *testing.T) {
	ft := fatTree(t, 4)
	n := NewNetwork(ft.Graph)
	src, dst := ft.RackIDs[0][0], ft.RackIDs[0][1]
	f, err := n.AddFlow(src, dst, 0.5, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Path()) != 3 {
		t.Fatalf("same-pod path should be 3 nodes, got %v", f.Path())
	}
	if f.Path()[0] != src || f.Path()[2] != dst {
		t.Fatalf("bad endpoints: %v", f.Path())
	}
}

func TestAddFlowValidation(t *testing.T) {
	ft := fatTree(t, 4)
	n := NewNetwork(ft.Graph)
	if _, err := n.AddFlow(ft.RackIDs[0][0], ft.RackIDs[0][0], 1, false); err == nil {
		t.Error("src==dst accepted")
	}
	if _, err := n.AddFlow(ft.RackIDs[0][0], ft.RackIDs[0][1], 0, false); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestLoadAccounting(t *testing.T) {
	ft := fatTree(t, 4)
	n := NewNetwork(ft.Graph)
	src, dst := ft.RackIDs[0][0], ft.RackIDs[0][1]
	f, err := n.AddFlow(src, dst, 0.4, false)
	if err != nil {
		t.Fatal(err)
	}
	p := f.Path()
	if got := n.LinkLoad(p[0], p[1]); got != 0.4 {
		t.Fatalf("link load = %v, want 0.4", got)
	}
	if got := n.LinkUtilization(p[0], p[1]); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("utilization = %v, want 0.4 (capacity 1)", got)
	}
	n.RemoveFlow(f.ID)
	if got := n.LinkLoad(p[0], p[1]); got != 0 {
		t.Fatalf("load after removal = %v", got)
	}
	if n.Flow(f.ID) != nil {
		t.Fatal("flow still present after removal")
	}
}

func TestEqualCostSpreading(t *testing.T) {
	ft := fatTree(t, 4)
	n := NewNetwork(ft.Graph)
	src, dst := ft.RackIDs[0][0], ft.RackIDs[0][1]
	// Two flows between the same racks: the load-aware tie-break should
	// route them through different aggregation switches.
	f1, err := n.AddFlow(src, dst, 0.6, false)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := n.AddFlow(src, dst, 0.6, false)
	if err != nil {
		t.Fatal(err)
	}
	if f1.Path()[1] == f2.Path()[1] {
		t.Fatalf("both flows chose agg %d; expected spreading", f1.Path()[1])
	}
}

func TestSwitchUtilizationAndHotSwitches(t *testing.T) {
	ft := fatTree(t, 4)
	n := NewNetwork(ft.Graph)
	src, dst := ft.RackIDs[0][0], ft.RackIDs[0][1]
	f, err := n.AddFlow(src, dst, 0.95, false)
	if err != nil {
		t.Fatal(err)
	}
	agg := f.Path()[1]
	if u := n.SwitchUtilization(agg); math.Abs(u-0.95) > 1e-12 {
		t.Fatalf("switch utilization = %v, want 0.95", u)
	}
	hot := n.HotSwitches(0.9)
	if len(hot) != 1 || hot[0] != agg {
		t.Fatalf("hot switches = %v, want [%d]", hot, agg)
	}
	if len(n.HotSwitches(0.99)) != 0 {
		t.Fatal("threshold above utilization should find nothing")
	}
}

func TestFlowsThrough(t *testing.T) {
	ft := fatTree(t, 4)
	n := NewNetwork(ft.Graph)
	f, err := n.AddFlow(ft.RackIDs[0][0], ft.RackIDs[0][1], 0.5, false)
	if err != nil {
		t.Fatal(err)
	}
	agg := f.Path()[1]
	through := n.FlowsThrough(agg)
	if len(through) != 1 || through[0] != f {
		t.Fatalf("FlowsThrough = %v", through)
	}
	if len(n.FlowsThrough(ft.RackIDs[3][1])) != 0 {
		t.Fatal("unrelated node should carry no flows")
	}
}

func TestRerouteAvoidsSwitch(t *testing.T) {
	ft := fatTree(t, 4)
	n := NewNetwork(ft.Graph)
	f, err := n.AddFlow(ft.RackIDs[0][0], ft.RackIDs[0][1], 0.5, false)
	if err != nil {
		t.Fatal(err)
	}
	hot := f.Path()[1]
	if err := n.Reroute(f, map[int]bool{hot: true}); err != nil {
		t.Fatal(err)
	}
	for _, hop := range f.Path() {
		if hop == hot {
			t.Fatalf("rerouted path still crosses %d: %v", hot, f.Path())
		}
	}
	// Load must have moved with the flow.
	if n.LinkLoad(ft.RackIDs[0][0], hot) != 0 {
		t.Fatal("old path load not released")
	}
}

func TestRerouteNoAlternativeRestores(t *testing.T) {
	// Diamond with a single midpoint: no alternative exists.
	g := topology.NewGraph()
	a := g.AddNode(topology.Rack, "a", 0, 0)
	s := g.AddNode(topology.Switch, "s", 0, 1)
	b := g.AddNode(topology.Rack, "b", 0, 0)
	if err := g.AddLink(a, s, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(s, b, 1, 1); err != nil {
		t.Fatal(err)
	}
	n := NewNetwork(g)
	f, err := n.AddFlow(a, b, 0.5, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Reroute(f, map[int]bool{s: true}); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("want ErrNoRoute, got %v", err)
	}
	// Flow must keep its old path and load.
	if len(f.Path()) != 3 || n.LinkLoad(a, s) != 0.5 {
		t.Fatal("failed reroute did not restore state")
	}
}

func TestRerouteUnknownFlow(t *testing.T) {
	ft := fatTree(t, 4)
	n := NewNetwork(ft.Graph)
	if err := n.Reroute(&Flow{ID: 99}, nil); err == nil {
		t.Fatal("unknown flow accepted")
	}
}

func TestRerouteAroundHot(t *testing.T) {
	ft := fatTree(t, 4)
	n := NewNetwork(ft.Graph)
	src, dst := ft.RackIDs[0][0], ft.RackIDs[0][1]
	// Push three flows through the network; force them onto one agg by
	// adding them with tiny rates first (no spreading incentive), then
	// raising... simpler: add flows and find the hottest switch.
	for i := 0; i < 3; i++ {
		if _, err := n.AddFlow(src, dst, 0.5, false); err != nil {
			t.Fatal(err)
		}
	}
	var hot int
	maxU := 0.0
	for _, sw := range ft.Switches() {
		if u := n.SwitchUtilization(sw); u > maxU {
			maxU, hot = u, sw
		}
	}
	if maxU < 0.9 {
		t.Fatalf("setup failed: max utilization %v", maxU)
	}
	moved := n.RerouteAroundHot(hot, 0.8)
	if len(moved) == 0 {
		t.Fatal("no flows moved")
	}
	if u := n.SwitchUtilization(hot); u >= maxU {
		t.Fatalf("utilization did not drop: %v -> %v", maxU, u)
	}
}

func TestRerouteAroundHotSkipsDelaySensitive(t *testing.T) {
	ft := fatTree(t, 4)
	n := NewNetwork(ft.Graph)
	src, dst := ft.RackIDs[0][0], ft.RackIDs[0][1]
	f, err := n.AddFlow(src, dst, 0.95, true) // delay-sensitive
	if err != nil {
		t.Fatal(err)
	}
	hot := f.Path()[1]
	moved := n.RerouteAroundHot(hot, 0.5)
	if len(moved) != 0 {
		t.Fatal("delay-sensitive flow was moved")
	}
}

func TestAlternatePaths(t *testing.T) {
	ft := fatTree(t, 4)
	n := NewNetwork(ft.Graph)
	f, err := n.AddFlow(ft.RackIDs[0][0], ft.RackIDs[0][1], 0.5, false)
	if err != nil {
		t.Fatal(err)
	}
	alts := n.AlternatePaths(f, 3)
	if len(alts) < 2 {
		t.Fatalf("want >= 2 alternates, got %d", len(alts))
	}
}

func TestUpdateGraphBandwidth(t *testing.T) {
	ft := fatTree(t, 4)
	n := NewNetwork(ft.Graph)
	f, err := n.AddFlow(ft.RackIDs[0][0], ft.RackIDs[0][1], 0.6, false)
	if err != nil {
		t.Fatal(err)
	}
	n.UpdateGraphBandwidth()
	p := f.Path()
	e, ok := ft.Graph.EdgeBetween(p[0], p[1])
	if !ok {
		t.Fatal("edge missing")
	}
	if math.Abs(e.Bandwidth-0.4) > 1e-12 {
		t.Fatalf("residual bandwidth = %v, want 0.4", e.Bandwidth)
	}
}

func TestFlowsOrderedByID(t *testing.T) {
	ft := fatTree(t, 4)
	n := NewNetwork(ft.Graph)
	for i := 0; i < 5; i++ {
		if _, err := n.AddFlow(ft.RackIDs[0][0], ft.RackIDs[1][0], 0.1, false); err != nil {
			t.Fatal(err)
		}
	}
	flows := n.Flows()
	for i := 1; i < len(flows); i++ {
		if flows[i].ID <= flows[i-1].ID {
			t.Fatal("flows not ordered")
		}
	}
}

func TestSetRate(t *testing.T) {
	ft := fatTree(t, 4)
	n := NewNetwork(ft.Graph)
	f, err := n.AddFlow(ft.RackIDs[0][0], ft.RackIDs[0][1], 0.3, false)
	if err != nil {
		t.Fatal(err)
	}
	p := f.Path()
	if err := n.SetRate(f, 0.7); err != nil {
		t.Fatal(err)
	}
	if f.Rate != 0.7 {
		t.Fatalf("rate = %v", f.Rate)
	}
	if got := n.LinkLoad(p[0], p[1]); math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("link load = %v, want 0.7", got)
	}
	// Lowering the rate releases load.
	if err := n.SetRate(f, 0.1); err != nil {
		t.Fatal(err)
	}
	if got := n.LinkLoad(p[0], p[1]); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("link load after decrease = %v", got)
	}
	// Errors: unknown flow, bad rate.
	if err := n.SetRate(&Flow{ID: 99}, 0.5); err == nil {
		t.Error("unknown flow accepted")
	}
	if err := n.SetRate(f, 0); err == nil {
		t.Error("zero rate accepted")
	}
	if err := n.SetRate(nil, 0.5); err == nil {
		t.Error("nil flow accepted")
	}
}

func TestLinkUtilizationMissingLink(t *testing.T) {
	ft := fatTree(t, 4)
	n := NewNetwork(ft.Graph)
	if u := n.LinkUtilization(ft.RackIDs[0][0], ft.RackIDs[3][1]); u != 0 {
		t.Fatalf("missing link utilization = %v", u)
	}
}
