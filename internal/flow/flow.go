// Package flow models the traffic plane under Sheriff's management: flows
// between racks routed over the wired graph, per-link load accounting,
// hot-switch detection, and the FLOWREROUTE primitive of Sec. III.B —
// moving conflict flows onto paths that avoid congested switches, which
// the paper prefers over VM migration because rerouting is cheaper than a
// live migration.
package flow

import (
	"errors"
	"fmt"
	"sort"

	"sheriff/internal/topology"
)

// Flow is one unidirectional traffic aggregate between two rack nodes.
type Flow struct {
	ID             int
	Src, Dst       int     // topology node IDs (rack kind)
	Rate           float64 // offered rate in capacity units
	DelaySensitive bool

	path []int // current route, inclusive of endpoints
}

// Path returns the flow's current route (nil if unrouted). The slice is
// owned by the network; treat it as read-only.
func (f *Flow) Path() []int { return f.path }

// Network tracks flows and per-link load over a topology graph.
type Network struct {
	g      *topology.Graph
	flows  map[int]*Flow
	load   map[[2]int]float64 // directed edge → offered load
	nextID int

	// sweep is the reusable shortest-path table behind routing queries:
	// every cheapestPath call re-sweeps (the load-aware cost changes with
	// every admitted flow) but writes into the same dist/parent storage,
	// so steady-state admission and reroute stop allocating tables.
	sweep *topology.MultiSource
}

// NewNetwork wraps a topology graph. Link loads start at zero.
func NewNetwork(g *topology.Graph) *Network {
	return &Network{
		g:     g,
		flows: make(map[int]*Flow),
		load:  make(map[[2]int]float64),
	}
}

// ErrNoRoute is returned when no path (or no admissible path) exists.
var ErrNoRoute = errors.New("flow: no route between endpoints")

// AddFlow admits a flow and routes it on the currently cheapest path
// (shortest by transmission-aware cost: load-sensitive, so successive
// flows naturally spread across equal-cost Fat-Tree paths).
func (n *Network) AddFlow(src, dst int, rate float64, delaySensitive bool) (*Flow, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("flow: rate must be > 0, got %v", rate)
	}
	if src == dst {
		return nil, errors.New("flow: src == dst")
	}
	f := &Flow{ID: n.nextID, Src: src, Dst: dst, Rate: rate, DelaySensitive: delaySensitive}
	path := n.cheapestPath(src, dst, nil)
	if path == nil {
		return nil, ErrNoRoute
	}
	n.nextID++
	n.flows[f.ID] = f
	n.applyPath(f, path)
	return f, nil
}

// cheapestPath picks the least-loaded shortest path, avoiding the given
// switch nodes.
func (n *Network) cheapestPath(src, dst int, avoid map[int]bool) []int {
	cost := func(e topology.Edge) float64 {
		if avoid[e.To] && e.To != dst && e.To != src {
			return topology.Inf
		}
		// Distance-dominant with a load-dependent tie-breaker so
		// equal-length paths spread load.
		u := n.load[[2]int{e.From, e.To}] / e.Capacity
		return e.Distance * (1 + 0.1*u)
	}
	n.sweep = topology.DijkstraFromInto(n.g, []int{src}, cost, n.sweep)
	return n.sweep.Path(src, dst)
}

func (n *Network) applyPath(f *Flow, path []int) {
	for i := 1; i < len(path); i++ {
		n.load[[2]int{path[i-1], path[i]}] += f.Rate
	}
	f.path = path
}

func (n *Network) clearPath(f *Flow) {
	for i := 1; i < len(f.path); i++ {
		key := [2]int{f.path[i-1], f.path[i]}
		n.load[key] -= f.Rate
		if n.load[key] < 1e-12 {
			delete(n.load, key)
		}
	}
	f.path = nil
}

// SetRate changes a flow's offered rate in place, adjusting the load on
// its current path without re-routing it.
func (n *Network) SetRate(f *Flow, rate float64) error {
	if f == nil || n.flows[f.ID] != f {
		return errors.New("flow: unknown flow")
	}
	if rate <= 0 {
		return fmt.Errorf("flow: rate must be > 0, got %v", rate)
	}
	delta := rate - f.Rate
	for i := 1; i < len(f.path); i++ {
		key := [2]int{f.path[i-1], f.path[i]}
		n.load[key] += delta
		if n.load[key] < 1e-12 {
			delete(n.load, key)
		}
	}
	f.Rate = rate
	return nil
}

// RemoveFlow withdraws a flow and releases its load.
func (n *Network) RemoveFlow(id int) {
	f := n.flows[id]
	if f == nil {
		return
	}
	n.clearPath(f)
	delete(n.flows, id)
}

// Flow returns the flow with the given ID, or nil.
func (n *Network) Flow(id int) *Flow { return n.flows[id] }

// Flows returns all flows ordered by ID.
func (n *Network) Flows() []*Flow {
	out := make([]*Flow, 0, len(n.flows))
	for _, f := range n.flows {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// LinkLoad returns the offered load on the directed link a→b.
func (n *Network) LinkLoad(a, b int) float64 { return n.load[[2]int{a, b}] }

// LinkUtilization returns load/capacity on the directed link a→b, or 0
// when the link does not exist.
func (n *Network) LinkUtilization(a, b int) float64 {
	e, ok := n.g.EdgeBetween(a, b)
	if !ok || e.Capacity == 0 {
		return 0
	}
	return n.load[[2]int{a, b}] / e.Capacity
}

// EdgeUtilization returns load/capacity for an already-resolved edge,
// skipping the O(degree) EdgeBetween lookup LinkUtilization pays. Link
// capacity is symmetric (AddLink installs both directions alike), so the
// reverse direction reuses e.Capacity.
func (n *Network) EdgeUtilization(e topology.Edge) float64 {
	if e.Capacity == 0 {
		return 0
	}
	return n.load[[2]int{e.From, e.To}] / e.Capacity
}

// SwitchUtilization returns the maximum utilization over a switch's
// incident directed links — the congestion signal a QCN-style CP reports.
func (n *Network) SwitchUtilization(sw int) float64 {
	max := 0.0
	for _, e := range n.g.Edges(sw) {
		if e.Capacity == 0 {
			continue
		}
		if u := n.load[[2]int{e.From, e.To}] / e.Capacity; u > max {
			max = u
		}
		if u := n.load[[2]int{e.To, e.From}] / e.Capacity; u > max {
			max = u
		}
	}
	return max
}

// HotSwitches returns switch node IDs whose utilization is at or above
// the threshold fraction, in ascending ID order.
func (n *Network) HotSwitches(threshold float64) []int {
	var out []int
	for _, sw := range n.g.Switches() {
		if n.SwitchUtilization(sw) >= threshold {
			out = append(out, sw)
		}
	}
	return out
}

// FlowsThrough returns the flows whose current path crosses the node, in
// ID order.
func (n *Network) FlowsThrough(node int) []*Flow {
	var out []*Flow
	for _, f := range n.Flows() {
		for _, hop := range f.path {
			if hop == node {
				out = append(out, f)
				break
			}
		}
	}
	return out
}

// Reroute moves one flow onto the cheapest path avoiding the given
// switches. It returns ErrNoRoute (leaving the flow untouched) when no
// such path exists.
func (n *Network) Reroute(f *Flow, avoid map[int]bool) error {
	if f == nil || n.flows[f.ID] != f {
		return errors.New("flow: unknown flow")
	}
	old := f.path
	n.clearPath(f)
	path := n.cheapestPath(f.Src, f.Dst, avoid)
	if path == nil {
		n.applyPath(f, old) // restore
		return ErrNoRoute
	}
	n.applyPath(f, path)
	return nil
}

// RerouteAroundHot implements FLOWREROUTE for one hot switch: it moves
// non-delay-sensitive flows crossing the switch onto alternate paths
// until the switch's utilization drops below target (or no flow can
// move). Flows are tried largest-rate first — moving the biggest
// offenders first minimizes the number of touched flows. It returns the
// flows actually rerouted.
// One masked Dijkstra sweep is computed per distinct source per pass and
// shared by every candidate flow from that source, instead of rerunning a
// full single-source search for each congested flow. A successful move
// only changes the load on the moved flow's old and new links, so just
// that source's sweep is dropped (its tree certainly shifted); the other
// sources keep their cached trees. Those stay exact for the distance term
// and drift only in the 0.1·u load tie-break, which the next pass (or the
// next hot-switch report) re-evaluates from fresh state.
func (n *Network) RerouteAroundHot(hot int, target float64) []*Flow {
	avoid := map[int]bool{hot: true}
	cands := n.FlowsThrough(hot)
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].Rate > cands[j].Rate })
	var moved []*Flow
	sweeps := make(map[int]*topology.MultiSource, 4)
	var spare *topology.MultiSource // storage recycled from invalidated sweeps
	for _, f := range cands {
		if n.SwitchUtilization(hot) < target {
			break
		}
		if f.DelaySensitive {
			continue // the PRIORITY rule: delay-sensitive flows stay put
		}
		if f.Src == hot || f.Dst == hot {
			// cheapestPath exempts the endpoints from the avoid mask, so
			// these flows see a flow-specific mask; route them exactly.
			if err := n.Reroute(f, avoid); err == nil {
				moved = append(moved, f)
			}
			continue
		}
		ms := sweeps[f.Src]
		if ms == nil {
			src := f.Src
			cost := func(e topology.Edge) float64 {
				if e.To == hot {
					return topology.Inf
				}
				u := n.load[[2]int{e.From, e.To}] / e.Capacity
				return e.Distance * (1 + 0.1*u)
			}
			ms = topology.DijkstraFromInto(n.g, []int{src}, cost, spare)
			spare = nil
			sweeps[src] = ms
		}
		path := ms.Path(f.Src, f.Dst)
		if path == nil {
			continue // no route around the hot switch; flow stays put
		}
		n.clearPath(f)
		n.applyPath(f, path)
		moved = append(moved, f)
		delete(sweeps, f.Src)
		spare = ms
	}
	return moved
}

// AlternatePaths returns up to k loopless alternatives for a flow,
// cheapest first, for inspection and tests.
func (n *Network) AlternatePaths(f *Flow, k int) [][]int {
	return topology.KShortestPaths(n.g, f.Src, f.Dst, k, topology.DistanceCost)
}

// UpdateGraphBandwidth writes residual bandwidth (capacity − load) back
// into the topology graph so the migration cost model sees the traffic
// plane's state. Negative residuals clamp to zero.
func (n *Network) UpdateGraphBandwidth() {
	for _, id := range append(n.g.Racks(), n.g.Switches()...) {
		for _, e := range n.g.Edges(id) {
			residual := e.Capacity - n.load[[2]int{e.From, e.To}]
			if residual < 0 {
				residual = 0
			}
			// SetBandwidth sets both directions; use the max of the two
			// residuals to stay conservative per undirected link.
			rev := e.Capacity - n.load[[2]int{e.To, e.From}]
			if rev < 0 {
				rev = 0
			}
			if rev < residual {
				residual = rev
			}
			n.g.SetBandwidth(e.From, e.To, residual)
		}
	}
}
