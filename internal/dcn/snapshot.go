package dcn

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Snapshot is a serializable record of a cluster's logical state: VM
// placements and the dependency graph. The topology itself is not
// serialized — a snapshot is applied to a freshly built cluster with the
// same shape (checked by rack/host counts), which keeps experiment
// checkpoints small and topology construction in code.
type Snapshot struct {
	Racks int        `json:"racks"`
	Hosts int        `json:"hosts"`
	VMs   []VMRecord `json:"vms"`
	Deps  [][2]int   `json:"deps"`
}

// VMRecord is one VM's serialized placement.
type VMRecord struct {
	ID             int     `json:"id"`
	Name           string  `json:"name"`
	Capacity       float64 `json:"capacity"`
	Value          float64 `json:"value"`
	DelaySensitive bool    `json:"delay_sensitive,omitempty"`
	Alert          float64 `json:"alert,omitempty"`
	HostID         int     `json:"host"`
}

// Snapshot captures the cluster's current VM placements and dependencies.
func (c *Cluster) Snapshot() *Snapshot {
	s := &Snapshot{Racks: len(c.Racks), Hosts: len(c.hosts)}
	vms := c.VMs()
	for _, vm := range vms {
		hostID := -1
		if vm.Host() != nil {
			hostID = vm.Host().ID
		}
		s.VMs = append(s.VMs, VMRecord{
			ID: vm.ID, Name: vm.Name, Capacity: vm.Capacity, Value: vm.Value,
			DelaySensitive: vm.DelaySensitive, Alert: vm.Alert, HostID: hostID,
		})
	}
	seen := make(map[[2]int]bool)
	for _, vm := range vms {
		for _, peer := range c.Deps.Peers(vm.ID) {
			a, b := vm.ID, peer
			if a > b {
				a, b = b, a
			}
			key := [2]int{a, b}
			if !seen[key] {
				seen[key] = true
				s.Deps = append(s.Deps, key)
			}
		}
	}
	sort.Slice(s.Deps, func(i, j int) bool {
		if s.Deps[i][0] != s.Deps[j][0] {
			return s.Deps[i][0] < s.Deps[j][0]
		}
		return s.Deps[i][1] < s.Deps[j][1]
	})
	return s
}

// Restore applies a snapshot to this cluster. The cluster must be empty
// and shaped identically (same rack and host counts). VM IDs are
// preserved so dependency edges and external references stay valid.
func (c *Cluster) Restore(s *Snapshot) error {
	if len(c.Racks) != s.Racks || len(c.hosts) != s.Hosts {
		return fmt.Errorf("dcn: snapshot shape %d racks/%d hosts does not match cluster %d/%d",
			s.Racks, s.Hosts, len(c.Racks), len(c.hosts))
	}
	if len(c.vms) != 0 {
		return fmt.Errorf("dcn: Restore requires an empty cluster, have %d VMs", len(c.vms))
	}
	// Install dependencies first so placement conflicts are enforced on
	// the way in.
	for _, edge := range s.Deps {
		c.Deps.AddDependency(edge[0], edge[1])
	}
	maxID := -1
	for _, rec := range s.VMs {
		h := c.Host(rec.HostID)
		if h == nil {
			return fmt.Errorf("dcn: snapshot VM %d references missing host %d", rec.ID, rec.HostID)
		}
		vm := &VM{
			ID: rec.ID, Name: rec.Name, Capacity: rec.Capacity, Value: rec.Value,
			DelaySensitive: rec.DelaySensitive, Alert: rec.Alert,
		}
		if err := c.place(vm, h); err != nil {
			return fmt.Errorf("dcn: restoring VM %d: %w", rec.ID, err)
		}
		c.vms[vm.ID] = vm
		if vm.ID > maxID {
			maxID = vm.ID
		}
	}
	c.nextVMID = maxID + 1
	return nil
}

// MarshalJSON serializes the snapshot (Snapshot already has JSON tags;
// this method exists on Cluster for one-call persistence).
func (c *Cluster) MarshalJSON() ([]byte, error) {
	return json.Marshal(c.Snapshot())
}
