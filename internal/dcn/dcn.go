// Package dcn models the data-center entities of the paper's Sec. II–III:
// racks with their delegation (shim) nodes v_i, hosts h_ij, virtual
// machines m^k_ij, the VM dependency graph G_d, and the cluster that ties
// them to a wired topology graph G_r. Table I's notation maps directly to
// the types here.
package dcn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"sheriff/internal/topology"
)

// VM is a virtual machine m^k_ij. Capacity is its resource demand in the
// paper's abstract units (the simulations cap it at 20); Value is the
// knapsack value used by the PRIORITY function (lower-value VMs are
// preferred for migration).
type VM struct {
	ID             int
	Name           string
	Capacity       float64
	Value          float64
	DelaySensitive bool
	Alert          float64 // most recent ALERT^k_ij (0 = no alert)

	host *Host
}

// Host returns the host currently running the VM (nil if unplaced).
func (v *VM) Host() *Host { return v.host }

// Host is a physical server h_ij inside a rack.
type Host struct {
	ID       int
	Index    int // j: position within the rack
	Capacity float64
	rack     *Rack
	vms      map[int]*VM
}

// Rack returns the rack containing the host.
func (h *Host) Rack() *Rack { return h.rack }

// VMs returns the VMs on the host, ordered by VM ID so every consumer —
// knapsack selection, summation, iteration — is deterministic.
func (h *Host) VMs() []*VM {
	out := make([]*VM, 0, len(h.vms))
	for _, v := range h.vms {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Used returns the total capacity consumed by resident VMs. Summation
// follows VM-ID order for bit-level reproducibility.
func (h *Host) Used() float64 {
	sum := 0.0
	for _, v := range h.VMs() {
		sum += v.Capacity
	}
	return sum
}

// Free returns the remaining capacity.
func (h *Host) Free() float64 { return h.Capacity - h.Used() }

// Utilization returns Used/Capacity in [0, …]; >1 means oversubscribed.
func (h *Host) Utilization() float64 {
	if h.Capacity == 0 {
		return 0
	}
	return h.Used() / h.Capacity
}

// Rack is the basic unit of the DCN: the union of hosts behind one ToR
// switch, managed by one shim (delegation node v_i). NodeID is the rack's
// vertex in the wired topology graph.
type Rack struct {
	Index  int // i: rack index in the cluster
	NodeID int // vertex ID in the topology graph
	Hosts  []*Host

	// ToRCapacity is the uplink capacity budget used by the β rule of the
	// PRIORITY function.
	ToRCapacity float64
}

// VMs returns every VM hosted in the rack.
func (r *Rack) VMs() []*VM {
	var out []*VM
	for _, h := range r.Hosts {
		out = append(out, h.VMs()...)
	}
	return out
}

// Used returns the capacity consumed across all hosts of the rack.
func (r *Rack) Used() float64 {
	sum := 0.0
	for _, h := range r.Hosts {
		sum += h.Used()
	}
	return sum
}

// Capacity returns the total host capacity of the rack.
func (r *Rack) Capacity() float64 {
	sum := 0.0
	for _, h := range r.Hosts {
		sum += h.Capacity
	}
	return sum
}

// Config sets cluster-wide sizing.
type Config struct {
	HostsPerRack int     // paper: 40 servers per rack (Sec. II.A)
	HostCapacity float64 // per-host resource capacity
	ToRCapacity  float64 // per-rack uplink budget for the β rule
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.HostsPerRack < 1 {
		return fmt.Errorf("dcn: HostsPerRack must be >= 1, got %d", c.HostsPerRack)
	}
	if c.HostCapacity <= 0 {
		return fmt.Errorf("dcn: HostCapacity must be > 0, got %v", c.HostCapacity)
	}
	if c.ToRCapacity <= 0 {
		return fmt.Errorf("dcn: ToRCapacity must be > 0, got %v", c.ToRCapacity)
	}
	return nil
}

// Cluster binds racks, hosts and VMs to a wired topology.
type Cluster struct {
	Graph  *topology.Graph
	Racks  []*Rack
	Deps   *DependencyGraph
	config Config

	rackByNode map[int]*Rack
	vms        map[int]*VM
	hosts      []*Host
	nextVMID   int
}

// NewCluster builds a cluster with one Rack per rack-kind vertex of the
// topology graph, each populated with cfg.HostsPerRack empty hosts.
func NewCluster(g *topology.Graph, cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{
		Graph:      g,
		config:     cfg,
		rackByNode: make(map[int]*Rack),
		vms:        make(map[int]*VM),
	}
	for i, nodeID := range g.Racks() {
		r := &Rack{Index: i, NodeID: nodeID, ToRCapacity: cfg.ToRCapacity}
		for j := 0; j < cfg.HostsPerRack; j++ {
			h := &Host{
				ID:       len(c.hosts),
				Index:    j,
				Capacity: cfg.HostCapacity,
				rack:     r,
				vms:      make(map[int]*VM),
			}
			r.Hosts = append(r.Hosts, h)
			c.hosts = append(c.hosts, h)
		}
		c.Racks = append(c.Racks, r)
		c.rackByNode[nodeID] = r
	}
	if len(c.Racks) == 0 {
		return nil, errors.New("dcn: topology has no rack nodes")
	}
	c.Deps = NewDependencyGraph()
	return c, nil
}

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.config }

// Hosts returns every host in the cluster, in ID order.
func (c *Cluster) Hosts() []*Host { return c.hosts }

// Host returns the host with the given ID, or nil.
func (c *Cluster) Host(id int) *Host {
	if id < 0 || id >= len(c.hosts) {
		return nil
	}
	return c.hosts[id]
}

// RackByNode returns the rack whose ToR occupies the given topology
// vertex, or nil.
func (c *Cluster) RackByNode(nodeID int) *Rack { return c.rackByNode[nodeID] }

// VM returns the VM with the given ID, or nil.
func (c *Cluster) VM(id int) *VM { return c.vms[id] }

// VMs returns every VM in the cluster, ordered by VM ID.
func (c *Cluster) VMs() []*VM {
	out := make([]*VM, 0, len(c.vms))
	for _, v := range c.vms {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ErrInsufficientCapacity is returned when a host cannot take a VM —
// constraint (8) of the migration formulation.
var ErrInsufficientCapacity = errors.New("dcn: host lacks capacity for VM")

// ErrDependencyConflict is returned when placing the VM would co-host it
// with a dependent VM — the conflict-graph constraint χ = 0 (Eqn. 7,
// after [18]: two dependent VMs cannot share a physical server).
var ErrDependencyConflict = errors.New("dcn: dependent VMs cannot share a host")

// AddVM creates a VM and places it on the host. Capacity and dependency
// constraints are enforced.
func (c *Cluster) AddVM(h *Host, capacity, value float64, delaySensitive bool) (*VM, error) {
	vm := &VM{
		ID:             c.nextVMID,
		Name:           fmt.Sprintf("vm-%d", c.nextVMID),
		Capacity:       capacity,
		Value:          value,
		DelaySensitive: delaySensitive,
	}
	if err := c.place(vm, h); err != nil {
		return nil, err
	}
	c.nextVMID++
	c.vms[vm.ID] = vm
	return vm, nil
}

func (c *Cluster) place(vm *VM, h *Host) error {
	if h.Free() < vm.Capacity {
		return fmt.Errorf("%w: host %d free %.1f < need %.1f", ErrInsufficientCapacity, h.ID, h.Free(), vm.Capacity)
	}
	for _, resident := range h.vms {
		if c.Deps.Dependent(vm.ID, resident.ID) {
			return fmt.Errorf("%w: vm %d conflicts with resident vm %d on host %d", ErrDependencyConflict, vm.ID, resident.ID, h.ID)
		}
	}
	h.vms[vm.ID] = vm
	vm.host = h
	return nil
}

// Move migrates a VM to the destination host, enforcing capacity and
// dependency constraints. On failure the VM stays where it was.
func (c *Cluster) Move(vm *VM, dst *Host) error {
	if vm.host == dst {
		return nil
	}
	src := vm.host
	if src != nil {
		delete(src.vms, vm.ID)
	}
	if err := c.place(vm, dst); err != nil {
		if src != nil {
			src.vms[vm.ID] = vm // restore
			vm.host = src
		}
		return err
	}
	return nil
}

// MoveOversub migrates like Move but relaxes the capacity constraint to
// factor × the destination's nominal capacity (factor ≥ 1) — the commit
// path of oversubscription placement policies. Dependency constraints
// still apply; on failure the VM stays where it was.
func (c *Cluster) MoveOversub(vm *VM, dst *Host, factor float64) error {
	if vm.host == dst {
		return nil
	}
	if factor < 1 {
		factor = 1
	}
	if dst.Used()+vm.Capacity > factor*dst.Capacity {
		return fmt.Errorf("%w: host %d used %.1f + need %.1f exceeds %.2f×%.1f",
			ErrInsufficientCapacity, dst.ID, dst.Used(), vm.Capacity, factor, dst.Capacity)
	}
	for _, resident := range dst.vms {
		if c.Deps.Dependent(vm.ID, resident.ID) {
			return fmt.Errorf("%w: vm %d conflicts with resident vm %d on host %d",
				ErrDependencyConflict, vm.ID, resident.ID, dst.ID)
		}
	}
	if vm.host != nil {
		delete(vm.host.vms, vm.ID)
	}
	dst.vms[vm.ID] = vm
	vm.host = dst
	return nil
}

// Evict detaches a VM from its host without deleting it from the
// cluster: the VM keeps its identity, value, and dependency edges, but
// Host() becomes nil until a later placement (Move) lands it somewhere.
// This is the preemption primitive — an evicted VM is expected to re-enter
// placement through the migration retry queue.
func (c *Cluster) Evict(vm *VM) {
	if vm.host != nil {
		delete(vm.host.vms, vm.ID)
		vm.host = nil
	}
}

// Remove deletes a VM from the cluster.
func (c *Cluster) Remove(vm *VM) {
	if vm.host != nil {
		delete(vm.host.vms, vm.ID)
		vm.host = nil
	}
	delete(c.vms, vm.ID)
	c.Deps.RemoveVM(vm.ID)
}

// PopulateOptions controls random cluster population for simulations.
type PopulateOptions struct {
	VMsPerHost    int     // how many VMs to attempt per host
	MinCapacity   float64 // uniform VM capacity range (paper: up to 20)
	MaxCapacity   float64
	DelayFraction float64 // fraction of delay-sensitive VMs
	// DependencyProb is the probability of a dependency edge between a
	// new VM and the previous VM when both sit in the same rack (on
	// different hosts — dependent VMs may not share a host).
	DependencyProb float64
	// CrossRackDependencyProb links a new VM to a uniformly chosen
	// earlier VM in another rack — the inter-rack edges of G_d that
	// become fabric flows.
	CrossRackDependencyProb float64
	Seed                    int64
}

// Populate fills every host with random VMs and random dependencies. It
// returns the number of VMs created. Oversubscription is avoided: VMs
// that would not fit are skipped.
func (c *Cluster) Populate(opt PopulateOptions) int {
	rng := rand.New(rand.NewSource(opt.Seed))
	if opt.VMsPerHost <= 0 {
		opt.VMsPerHost = 4
	}
	if opt.MaxCapacity <= 0 {
		opt.MaxCapacity = 20
	}
	if opt.MinCapacity <= 0 {
		opt.MinCapacity = 1
	}
	created := 0
	var prev *VM
	var all []*VM
	for _, h := range c.hosts {
		for k := 0; k < opt.VMsPerHost; k++ {
			capy := opt.MinCapacity + rng.Float64()*(opt.MaxCapacity-opt.MinCapacity)
			if capy > h.Free() {
				continue
			}
			value := 1 + rng.Float64()*9
			ds := rng.Float64() < opt.DelayFraction
			vm, err := c.AddVM(h, capy, value, ds)
			if err != nil {
				continue
			}
			created++
			// Dependencies between VMs on *different* hosts of the same
			// rack (dependent VMs may not share a host).
			if prev != nil && prev.host != nil && prev.host != h &&
				prev.host.rack == h.rack && rng.Float64() < opt.DependencyProb {
				c.Deps.AddDependency(vm.ID, prev.ID)
			}
			// Cross-rack edges of G_d: communicating application tiers
			// spread across racks.
			if len(all) > 0 && rng.Float64() < opt.CrossRackDependencyProb {
				other := all[rng.Intn(len(all))]
				if other.host != nil && other.host.rack != h.rack {
					c.Deps.AddDependency(vm.ID, other.ID)
				}
			}
			prev = vm
			all = append(all, vm)
		}
	}
	return created
}

// WorkloadStdDev returns the standard deviation of per-host workload
// percentages (Used/Capacity × 100) across every host — the metric of
// the paper's Figs. 9–10.
func (c *Cluster) WorkloadStdDev() float64 {
	n := len(c.hosts)
	if n == 0 {
		return 0
	}
	mean := 0.0
	for _, h := range c.hosts {
		mean += h.Utilization() * 100
	}
	mean /= float64(n)
	sum := 0.0
	for _, h := range c.hosts {
		d := h.Utilization()*100 - mean
		sum += d * d
	}
	return math.Sqrt(sum / float64(n))
}
