package dcn

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"sheriff/internal/topology"
)

func testCluster(t *testing.T, pods int) *Cluster {
	t.Helper()
	ft, err := topology.NewFatTree(topology.FatTreeConfig{Pods: pods})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(ft.Graph, Config{HostsPerRack: 4, HostCapacity: 100, ToRCapacity: 400})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	cases := []Config{
		{HostsPerRack: 0, HostCapacity: 1, ToRCapacity: 1},
		{HostsPerRack: 1, HostCapacity: 0, ToRCapacity: 1},
		{HostsPerRack: 1, HostCapacity: 1, ToRCapacity: 0},
	}
	for i, cfg := range cases {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if err := (Config{HostsPerRack: 1, HostCapacity: 1, ToRCapacity: 1}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestNewClusterStructure(t *testing.T) {
	c := testCluster(t, 4)
	// Fat-Tree(4): 8 racks.
	if len(c.Racks) != 8 {
		t.Fatalf("racks = %d, want 8", len(c.Racks))
	}
	if len(c.Hosts()) != 32 {
		t.Fatalf("hosts = %d, want 32", len(c.Hosts()))
	}
	for _, r := range c.Racks {
		if len(r.Hosts) != 4 {
			t.Fatalf("rack %d has %d hosts", r.Index, len(r.Hosts))
		}
		if got := c.RackByNode(r.NodeID); got != r {
			t.Fatal("RackByNode lookup broken")
		}
		for _, h := range r.Hosts {
			if h.Rack() != r {
				t.Fatal("host rack backlink broken")
			}
		}
	}
}

func TestNewClusterRejectsNoRacks(t *testing.T) {
	g := topology.NewGraph()
	g.AddNode(topology.Switch, "s", -1, 1)
	if _, err := NewCluster(g, Config{HostsPerRack: 1, HostCapacity: 1, ToRCapacity: 1}); err == nil {
		t.Fatal("cluster with no racks accepted")
	}
}

func TestAddVMAndAccounting(t *testing.T) {
	c := testCluster(t, 4)
	h := c.Hosts()[0]
	vm, err := c.AddVM(h, 30, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	if vm.Host() != h {
		t.Fatal("VM host not set")
	}
	if h.Used() != 30 || h.Free() != 70 {
		t.Fatalf("used/free = %v/%v", h.Used(), h.Free())
	}
	if h.Utilization() != 0.3 {
		t.Fatalf("utilization = %v", h.Utilization())
	}
	if c.VM(vm.ID) != vm {
		t.Fatal("VM lookup broken")
	}
}

func TestAddVMCapacityEnforced(t *testing.T) {
	c := testCluster(t, 4)
	h := c.Hosts()[0]
	if _, err := c.AddVM(h, 150, 1, false); !errors.Is(err, ErrInsufficientCapacity) {
		t.Fatalf("want ErrInsufficientCapacity, got %v", err)
	}
	if _, err := c.AddVM(h, 60, 1, false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddVM(h, 60, 1, false); !errors.Is(err, ErrInsufficientCapacity) {
		t.Fatalf("want ErrInsufficientCapacity on second VM, got %v", err)
	}
}

func TestMove(t *testing.T) {
	c := testCluster(t, 4)
	src, dst := c.Hosts()[0], c.Hosts()[1]
	vm, err := c.AddVM(src, 40, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Move(vm, dst); err != nil {
		t.Fatal(err)
	}
	if vm.Host() != dst || src.Used() != 0 || dst.Used() != 40 {
		t.Fatal("move did not transfer VM")
	}
	// Move to itself is a no-op.
	if err := c.Move(vm, dst); err != nil {
		t.Fatal(err)
	}
}

func TestMoveFailureRestoresVM(t *testing.T) {
	c := testCluster(t, 4)
	src, dst := c.Hosts()[0], c.Hosts()[1]
	vm, err := c.AddVM(src, 40, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddVM(dst, 90, 1, false); err != nil {
		t.Fatal(err)
	}
	if err := c.Move(vm, dst); !errors.Is(err, ErrInsufficientCapacity) {
		t.Fatalf("want capacity error, got %v", err)
	}
	if vm.Host() != src || src.Used() != 40 {
		t.Fatal("failed move did not restore VM")
	}
}

func TestDependencyConflictOnPlacement(t *testing.T) {
	c := testCluster(t, 4)
	h0, h1 := c.Hosts()[0], c.Hosts()[1]
	a, err := c.AddVM(h0, 10, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.AddVM(h1, 10, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	c.Deps.AddDependency(a.ID, b.ID)
	if err := c.Move(b, h0); !errors.Is(err, ErrDependencyConflict) {
		t.Fatalf("want ErrDependencyConflict, got %v", err)
	}
	if b.Host() != h1 {
		t.Fatal("conflicting move should leave VM in place")
	}
}

func TestRemove(t *testing.T) {
	c := testCluster(t, 4)
	h := c.Hosts()[0]
	vm, err := c.AddVM(h, 10, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	c.Remove(vm)
	if h.Used() != 0 || c.VM(vm.ID) != nil || vm.Host() != nil {
		t.Fatal("Remove did not clean up")
	}
}

func TestRackAggregates(t *testing.T) {
	c := testCluster(t, 4)
	r := c.Racks[0]
	if r.Capacity() != 400 {
		t.Fatalf("rack capacity = %v, want 400", r.Capacity())
	}
	if _, err := c.AddVM(r.Hosts[0], 10, 1, false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddVM(r.Hosts[1], 20, 1, false); err != nil {
		t.Fatal(err)
	}
	if r.Used() != 30 {
		t.Fatalf("rack used = %v, want 30", r.Used())
	}
	if len(r.VMs()) != 2 {
		t.Fatalf("rack VMs = %d, want 2", len(r.VMs()))
	}
}

func TestPopulateRespectsCapacity(t *testing.T) {
	c := testCluster(t, 4)
	n := c.Populate(PopulateOptions{VMsPerHost: 6, MinCapacity: 5, MaxCapacity: 20, Seed: 1})
	if n == 0 {
		t.Fatal("Populate created no VMs")
	}
	if len(c.VMs()) != n {
		t.Fatalf("VMs() = %d, want %d", len(c.VMs()), n)
	}
	for _, h := range c.Hosts() {
		if h.Used() > h.Capacity+1e-9 {
			t.Fatalf("host %d oversubscribed: %v > %v", h.ID, h.Used(), h.Capacity)
		}
	}
}

func TestPopulateDeterministic(t *testing.T) {
	c1 := testCluster(t, 4)
	c2 := testCluster(t, 4)
	opt := PopulateOptions{VMsPerHost: 4, MinCapacity: 2, MaxCapacity: 15, Seed: 9, DependencyProb: 0.3}
	if c1.Populate(opt) != c2.Populate(opt) {
		t.Fatal("same-seed Populate created different VM counts")
	}
	if c1.Deps.NumEdges() != c2.Deps.NumEdges() {
		t.Fatal("same-seed Populate created different dependency edges")
	}
}

func TestPopulateDependenciesNeverCoHosted(t *testing.T) {
	c := testCluster(t, 4)
	c.Populate(PopulateOptions{VMsPerHost: 5, MinCapacity: 2, MaxCapacity: 10, Seed: 3, DependencyProb: 0.8})
	for _, vm := range c.VMs() {
		for _, peer := range c.Deps.Peers(vm.ID) {
			p := c.VM(peer)
			if p != nil && p.Host() == vm.Host() {
				t.Fatalf("dependent VMs %d and %d share host %d", vm.ID, peer, vm.Host().ID)
			}
		}
	}
}

func TestWorkloadStdDev(t *testing.T) {
	c := testCluster(t, 4)
	if c.WorkloadStdDev() != 0 {
		t.Fatal("empty cluster stddev should be 0")
	}
	// Load one host fully: stddev becomes positive.
	if _, err := c.AddVM(c.Hosts()[0], 100, 1, false); err != nil {
		t.Fatal(err)
	}
	sd := c.WorkloadStdDev()
	if sd <= 0 {
		t.Fatalf("stddev = %v, want > 0", sd)
	}
	// Balance the load across all hosts: stddev returns to ~0.
	c2 := testCluster(t, 4)
	for _, h := range c2.Hosts() {
		if _, err := c2.AddVM(h, 50, 1, false); err != nil {
			t.Fatal(err)
		}
	}
	if got := c2.WorkloadStdDev(); math.Abs(got) > 1e-9 {
		t.Fatalf("balanced stddev = %v, want 0", got)
	}
}

func TestDependencyGraphBasics(t *testing.T) {
	d := NewDependencyGraph()
	d.AddDependency(1, 2)
	if !d.Dependent(1, 2) || !d.Dependent(2, 1) {
		t.Fatal("dependency not symmetric")
	}
	d.AddDependency(1, 1) // self edge ignored
	if d.Dependent(1, 1) {
		t.Fatal("self dependency stored")
	}
	if d.Degree(1) != 1 || d.NumEdges() != 1 {
		t.Fatalf("degree=%d edges=%d", d.Degree(1), d.NumEdges())
	}
	d.RemoveDependency(1, 2)
	if d.Dependent(1, 2) {
		t.Fatal("RemoveDependency failed")
	}
}

func TestDependencyGraphRemoveVM(t *testing.T) {
	d := NewDependencyGraph()
	d.AddDependency(1, 2)
	d.AddDependency(1, 3)
	d.RemoveVM(1)
	if d.Dependent(2, 1) || d.Dependent(3, 1) || d.Degree(1) != 0 {
		t.Fatal("RemoveVM left stale edges")
	}
	if d.NumEdges() != 0 {
		t.Fatalf("edges = %d, want 0", d.NumEdges())
	}
}

func TestPeerRacks(t *testing.T) {
	c := testCluster(t, 4)
	// Place a in rack 0 and peers in racks 1 and 2.
	a, _ := c.AddVM(c.Racks[0].Hosts[0], 5, 1, false)
	b, _ := c.AddVM(c.Racks[1].Hosts[0], 5, 1, false)
	e, _ := c.AddVM(c.Racks[2].Hosts[0], 5, 1, false)
	f, _ := c.AddVM(c.Racks[2].Hosts[1], 5, 1, false)
	c.Deps.AddDependency(a.ID, b.ID)
	c.Deps.AddDependency(a.ID, e.ID)
	c.Deps.AddDependency(a.ID, f.ID)
	racks := c.Deps.PeerRacks(c, a.ID)
	if len(racks) != 2 {
		t.Fatalf("PeerRacks = %v, want 2 distinct racks", racks)
	}
	got := map[int]bool{}
	for _, r := range racks {
		got[r] = true
	}
	if !got[1] || !got[2] {
		t.Fatalf("PeerRacks = %v, want {1, 2}", racks)
	}
}

// Property: total cluster Used equals the sum of VM capacities, under any
// sequence of adds and moves.
func TestCapacityConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		ft, err := topology.NewFatTree(topology.FatTreeConfig{Pods: 4})
		if err != nil {
			return false
		}
		c, err := NewCluster(ft.Graph, Config{HostsPerRack: 3, HostCapacity: 50, ToRCapacity: 150})
		if err != nil {
			return false
		}
		c.Populate(PopulateOptions{VMsPerHost: 3, MinCapacity: 1, MaxCapacity: 20, Seed: seed})
		wantTotal := 0.0
		for _, vm := range c.VMs() {
			wantTotal += vm.Capacity
		}
		// Random moves.
		hosts := c.Hosts()
		s := seed
		for _, vm := range c.VMs() {
			s = s*2862933555777941757 + 3037000493
			dst := hosts[int(((s>>13)%int64(len(hosts)))+int64(len(hosts)))%len(hosts)]
			_ = c.Move(vm, dst) // failures allowed; they must not lose VMs
		}
		gotTotal := 0.0
		for _, h := range c.Hosts() {
			gotTotal += h.Used()
		}
		return math.Abs(gotTotal-wantTotal) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
