package dcn

import (
	"encoding/json"
	"testing"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	c1 := testCluster(t, 4)
	c1.Populate(PopulateOptions{VMsPerHost: 3, MinCapacity: 5, MaxCapacity: 20,
		DependencyProb: 0.5, CrossRackDependencyProb: 0.3, Seed: 31})
	snap := c1.Snapshot()

	c2 := testCluster(t, 4)
	if err := c2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if len(c2.VMs()) != len(c1.VMs()) {
		t.Fatalf("VM count %d, want %d", len(c2.VMs()), len(c1.VMs()))
	}
	if c2.Deps.NumEdges() != c1.Deps.NumEdges() {
		t.Fatalf("dep edges %d, want %d", c2.Deps.NumEdges(), c1.Deps.NumEdges())
	}
	for _, vm := range c1.VMs() {
		restored := c2.VM(vm.ID)
		if restored == nil {
			t.Fatalf("VM %d missing after restore", vm.ID)
		}
		if restored.Host().ID != vm.Host().ID {
			t.Fatalf("VM %d on host %d, want %d", vm.ID, restored.Host().ID, vm.Host().ID)
		}
		if restored.Capacity != vm.Capacity || restored.Value != vm.Value {
			t.Fatalf("VM %d attributes changed", vm.ID)
		}
	}
	if c1.WorkloadStdDev() != c2.WorkloadStdDev() {
		t.Fatal("workload distribution changed")
	}
	// New VM IDs continue past the snapshot.
	vm, err := c2.AddVM(c2.Hosts()[0], 1, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if c1.VM(vm.ID) != nil {
		t.Fatalf("new VM reused ID %d", vm.ID)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	c1 := testCluster(t, 4)
	c1.Populate(PopulateOptions{VMsPerHost: 2, MinCapacity: 5, MaxCapacity: 15, Seed: 32})
	blob, err := json.Marshal(c1)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(blob, &snap); err != nil {
		t.Fatal(err)
	}
	c2 := testCluster(t, 4)
	if err := c2.Restore(&snap); err != nil {
		t.Fatal(err)
	}
	if len(c2.VMs()) != len(c1.VMs()) {
		t.Fatal("JSON round trip lost VMs")
	}
}

func TestRestoreShapeMismatch(t *testing.T) {
	c1 := testCluster(t, 4)
	snap := c1.Snapshot()
	c2 := testCluster(t, 8)
	if err := c2.Restore(snap); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestRestoreRequiresEmptyCluster(t *testing.T) {
	c1 := testCluster(t, 4)
	snap := c1.Snapshot()
	c2 := testCluster(t, 4)
	if _, err := c2.AddVM(c2.Hosts()[0], 5, 1, false); err != nil {
		t.Fatal(err)
	}
	if err := c2.Restore(snap); err == nil {
		t.Fatal("non-empty cluster accepted")
	}
}

func TestRestoreRejectsBadHost(t *testing.T) {
	c := testCluster(t, 4)
	snap := &Snapshot{Racks: len(c.Racks), Hosts: len(c.Hosts()),
		VMs: []VMRecord{{ID: 0, Capacity: 5, HostID: 9999}}}
	if err := c.Restore(snap); err == nil {
		t.Fatal("bad host reference accepted")
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	c := testCluster(t, 4)
	c.Populate(PopulateOptions{VMsPerHost: 3, MinCapacity: 5, MaxCapacity: 20,
		DependencyProb: 0.5, Seed: 33})
	b1, err := json.Marshal(c.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(c.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatal("snapshot serialization not deterministic")
	}
}
