package dcn

import "sort"

// DependencyGraph is G_d of Sec. II.C: an undirected graph over VM IDs in
// which an edge marks two VMs as interdependent (they communicate and,
// per the conflict-graph reading, must not share a physical host).
type DependencyGraph struct {
	adj map[int]map[int]bool
}

// NewDependencyGraph returns an empty dependency graph.
func NewDependencyGraph() *DependencyGraph {
	return &DependencyGraph{adj: make(map[int]map[int]bool)}
}

// AddDependency records that VMs a and b are interdependent. Self-edges
// are ignored.
func (d *DependencyGraph) AddDependency(a, b int) {
	if a == b {
		return
	}
	d.link(a, b)
	d.link(b, a)
}

func (d *DependencyGraph) link(a, b int) {
	m := d.adj[a]
	if m == nil {
		m = make(map[int]bool)
		d.adj[a] = m
	}
	m[b] = true
}

// RemoveDependency deletes the edge a–b if present.
func (d *DependencyGraph) RemoveDependency(a, b int) {
	delete(d.adj[a], b)
	delete(d.adj[b], a)
}

// RemoveVM deletes a VM and all its edges.
func (d *DependencyGraph) RemoveVM(id int) {
	for peer := range d.adj[id] {
		delete(d.adj[peer], id)
	}
	delete(d.adj, id)
}

// Dependent reports whether VMs a and b are interdependent.
func (d *DependencyGraph) Dependent(a, b int) bool { return d.adj[a][b] }

// Peers returns the VM IDs dependent on id, in ascending order.
func (d *DependencyGraph) Peers(id int) []int {
	m := d.adj[id]
	out := make([]int, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// Degree returns the number of dependencies of the VM.
func (d *DependencyGraph) Degree(id int) int { return len(d.adj[id]) }

// NumEdges returns the number of undirected dependency edges.
func (d *DependencyGraph) NumEdges() int {
	total := 0
	for _, m := range d.adj {
		total += len(m)
	}
	return total / 2
}

// PeerRacks returns the distinct rack indices hosting VMs dependent on
// the given VM — the rack-level neighborhood N_d(v_i) used by the
// dependency-cost term of Eqn. (1).
func (d *DependencyGraph) PeerRacks(c *Cluster, vmID int) []int {
	seen := make(map[int]bool)
	var out []int
	for peer := range d.adj[vmID] {
		vm := c.VM(peer)
		if vm == nil || vm.Host() == nil {
			continue
		}
		idx := vm.Host().Rack().Index
		if !seen[idx] {
			seen[idx] = true
			out = append(out, idx)
		}
	}
	return out
}
