package topology

import (
	"container/heap"
	"sort"

	"sheriff/internal/pool"
)

// This file preserves the seed's routing walkers essentially verbatim:
// pointer-chasing [][]Edge adjacency, an EdgeCost closure call per
// relaxation, container/heap with interface boxing, map-backed result
// tables, and Yen spur searches that rebuild filter closures and maps per
// spur. They are the ground truth for the equivalence tests and the
// "before" side of BENCH_route.json, kept unexported so production
// callers can only reach the CSR paths. The single deviation from the
// seed is the smallest-predecessor tie rule on equal path costs (the
// `nd == dist && u < parent` branch), which both implementations apply so
// shortest-path trees are a pure function of the graph rather than of
// heap pop order — the property the bit-identical equivalence tests rely
// on.

// refMultiSource mirrors the seed's map-backed MultiSource.
type refMultiSource struct {
	n      int
	dist   map[int][]float64
	parent map[int][]int32
}

func referenceDijkstraFrom(g *Graph, sources []int, cost EdgeCost) *refMultiSource {
	ms := &refMultiSource{
		n:      g.NumNodes(),
		dist:   make(map[int][]float64, len(sources)),
		parent: make(map[int][]int32, len(sources)),
	}
	dists := make([][]float64, len(sources))
	parents := make([][]int32, len(sources))
	pool.Shared().ForEach(len(sources), func(i int) {
		dists[i], parents[i] = referenceDijkstra(g, sources[i], cost)
	})
	for i, s := range sources {
		ms.dist[s] = dists[i]
		ms.parent[s] = parents[i]
	}
	return ms
}

type refPQItem struct {
	node int
	dist float64
}

type refPQ []refPQItem

func (q refPQ) Len() int            { return len(q) }
func (q refPQ) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q refPQ) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *refPQ) Push(x interface{}) { *q = append(*q, x.(refPQItem)) }
func (q *refPQ) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

func referenceDijkstra(g *Graph, src int, cost EdgeCost) ([]float64, []int32) {
	n := g.NumNodes()
	dist := make([]float64, n)
	parent := make([]int32, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = Inf
		parent[i] = -1
	}
	dist[src] = 0
	q := &refPQ{{src, 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(refPQItem)
		if done[it.node] {
			continue
		}
		done[it.node] = true
		for _, e := range g.Edges(it.node) {
			c := cost(e)
			if c == Inf {
				continue
			}
			if nd := it.dist + c; nd < dist[e.To] {
				dist[e.To] = nd
				parent[e.To] = int32(it.node)
				heap.Push(q, refPQItem{e.To, nd})
			} else if nd == dist[e.To] && int32(it.node) < parent[e.To] && !done[e.To] {
				// No parent steals after a node is done: a zero-weight
				// edge between equal-distance nodes would otherwise let
				// the pair adopt each other as parents (a cycle). The
				// CSR sweeps apply the identical guard.
				parent[e.To] = int32(it.node)
			}
		}
	}
	return dist, parent
}

func (m *refMultiSource) Dist(src, dst int) float64 {
	d, ok := m.dist[src]
	if !ok || dst < 0 || dst >= m.n {
		return Inf
	}
	return d[dst]
}

func (m *refMultiSource) Path(src, dst int) []int {
	p, ok := m.parent[src]
	if !ok || dst < 0 || dst >= m.n {
		return nil
	}
	if src == dst {
		return []int{src}
	}
	if p[dst] < 0 {
		return nil
	}
	var rev []int
	for cur := dst; cur != -1; cur = int(p[cur]) {
		rev = append(rev, cur)
		if cur == src {
			break
		}
	}
	if rev[len(rev)-1] != src {
		return nil
	}
	out := make([]int, len(rev))
	for i, v := range rev {
		out[len(rev)-1-i] = v
	}
	return out
}

// referenceKShortestPaths is the seed's Yen: per-spur blocked-node and
// blocked-edge maps wrapped in a fresh filter closure, a full map-backed
// Dijkstra per spur, and candidate paths copied before deduplication.
func referenceKShortestPaths(g *Graph, src, dst, k int, cost EdgeCost) [][]int {
	if k <= 0 || src < 0 || dst < 0 || src >= g.NumNodes() || dst >= g.NumNodes() {
		return nil
	}
	first := referenceShortestPathAvoiding(g, src, dst, cost, nil, nil)
	if first == nil {
		return nil
	}
	paths := [][]int{first}
	var candidates []kspCandidate

	for len(paths) < k {
		prev := paths[len(paths)-1]
		for i := 0; i < len(prev)-1; i++ {
			spurNode := prev[i]
			rootPath := prev[:i+1]

			blockedEdges := make(map[[2]int]bool)
			for _, p := range paths {
				if len(p) > i && equalPrefix(p, rootPath) {
					blockedEdges[[2]int{p[i], p[i+1]}] = true
				}
			}
			blockedNodes := make(map[int]bool)
			for _, n := range rootPath[:len(rootPath)-1] {
				blockedNodes[n] = true
			}

			spurPath := referenceShortestPathAvoiding(g, spurNode, dst, cost, blockedNodes, blockedEdges)
			if spurPath == nil {
				continue
			}
			total := append(append([]int(nil), rootPath[:len(rootPath)-1]...), spurPath...)
			if containsPath(paths, total) || containsCandidate(candidates, total) {
				continue
			}
			candidates = append(candidates, kspCandidate{path: total, cost: PathCost(g, total, cost)})
		}
		if len(candidates) == 0 {
			break
		}
		sort.SliceStable(candidates, func(a, b int) bool { return candidates[a].cost < candidates[b].cost })
		paths = append(paths, candidates[0].path)
		candidates = candidates[1:]
	}
	return paths
}

func referenceShortestPathAvoiding(g *Graph, src, dst int, cost EdgeCost, blockedNodes map[int]bool, blockedEdges map[[2]int]bool) []int {
	filtered := func(e Edge) float64 {
		if blockedNodes[e.To] && e.To != dst {
			return Inf
		}
		if blockedEdges[[2]int{e.From, e.To}] {
			return Inf
		}
		return cost(e)
	}
	ms := referenceDijkstraFrom(g, []int{src}, filtered)
	return ms.Path(src, dst)
}

// referenceShortestPathAvoidingNodes is the seed's hot-switch avoidance
// primitive, for equivalence against ShortestPathAvoidingNodes.
func referenceShortestPathAvoidingNodes(g *Graph, src, dst int, avoid map[int]bool, cost EdgeCost) []int {
	if src < 0 || dst < 0 || src >= g.NumNodes() || dst >= g.NumNodes() {
		return nil
	}
	filtered := func(e Edge) float64 {
		if avoid[e.To] && e.To != dst && e.To != src {
			return Inf
		}
		return cost(e)
	}
	ms := referenceDijkstraFrom(g, []int{src}, filtered)
	return ms.Path(src, dst)
}
