package topology

import (
	"math"
	"testing"
)

// diamondGraph: a -> {b, c} -> d with asymmetric costs.
func diamondGraph(t *testing.T) (*Graph, [4]int) {
	t.Helper()
	g := NewGraph()
	a := g.AddNode(Rack, "a", 0, 0)
	b := g.AddNode(Switch, "b", 0, 1)
	c := g.AddNode(Switch, "c", 0, 1)
	d := g.AddNode(Rack, "d", 0, 0)
	mustLink(t, g, a, b, 1)
	mustLink(t, g, b, d, 1)
	mustLink(t, g, a, c, 2)
	mustLink(t, g, c, d, 2)
	return g, [4]int{a, b, c, d}
}

func mustLink(t *testing.T, g *Graph, a, b int, dist float64) {
	t.Helper()
	if err := g.AddLink(a, b, 1, dist); err != nil {
		t.Fatal(err)
	}
}

func TestKShortestDiamond(t *testing.T) {
	g, n := diamondGraph(t)
	paths := KShortestPaths(g, n[0], n[3], 3, DistanceCost)
	if len(paths) != 2 {
		t.Fatalf("paths = %d, want 2 (graph has exactly two loopless routes)", len(paths))
	}
	if PathCost(g, paths[0], DistanceCost) != 2 {
		t.Fatalf("first path cost = %v, want 2", PathCost(g, paths[0], DistanceCost))
	}
	if PathCost(g, paths[1], DistanceCost) != 4 {
		t.Fatalf("second path cost = %v, want 4", PathCost(g, paths[1], DistanceCost))
	}
}

func TestKShortestOrderingAndLooplessness(t *testing.T) {
	ft, err := NewFatTree(FatTreeConfig{Pods: 4})
	if err != nil {
		t.Fatal(err)
	}
	src := ft.RackIDs[0][0]
	dst := ft.RackIDs[1][0]
	paths := KShortestPaths(ft.Graph, src, dst, 6, DistanceCost)
	if len(paths) < 2 {
		t.Fatalf("Fat-Tree should offer multiple routes, got %d", len(paths))
	}
	prev := -1.0
	for _, p := range paths {
		cost := PathCost(ft.Graph, p, DistanceCost)
		if cost < prev {
			t.Fatalf("paths not sorted: %v after %v", cost, prev)
		}
		prev = cost
		seen := map[int]bool{}
		for _, node := range p {
			if seen[node] {
				t.Fatalf("path has a loop: %v", p)
			}
			seen[node] = true
		}
		if p[0] != src || p[len(p)-1] != dst {
			t.Fatalf("bad endpoints: %v", p)
		}
	}
}

func TestKShortestDistinctPaths(t *testing.T) {
	ft, err := NewFatTree(FatTreeConfig{Pods: 4})
	if err != nil {
		t.Fatal(err)
	}
	src, dst := ft.RackIDs[0][0], ft.RackIDs[0][1]
	paths := KShortestPaths(ft.Graph, src, dst, 4, DistanceCost)
	for i := range paths {
		for j := i + 1; j < len(paths); j++ {
			if equalPath(paths[i], paths[j]) {
				t.Fatalf("duplicate paths at %d and %d: %v", i, j, paths[i])
			}
		}
	}
	// Fat-Tree(4): two aggregation switches per pod → exactly 2 two-hop
	// routes between pod ToRs (plus longer detours).
	if len(paths) < 2 {
		t.Fatalf("want >= 2 paths, got %d", len(paths))
	}
	if PathCost(ft.Graph, paths[0], DistanceCost) != 2 || PathCost(ft.Graph, paths[1], DistanceCost) != 2 {
		t.Fatal("both pod-internal routes should cost 2")
	}
}

func TestKShortestInvalidArgs(t *testing.T) {
	g, n := diamondGraph(t)
	if KShortestPaths(g, n[0], n[3], 0, DistanceCost) != nil {
		t.Error("k=0 should return nil")
	}
	if KShortestPaths(g, -1, n[3], 2, DistanceCost) != nil {
		t.Error("bad src should return nil")
	}
	if KShortestPaths(g, n[0], 99, 2, DistanceCost) != nil {
		t.Error("bad dst should return nil")
	}
}

func TestKShortestDisconnected(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(Rack, "a", 0, 0)
	b := g.AddNode(Rack, "b", 1, 0)
	if KShortestPaths(g, a, b, 2, DistanceCost) != nil {
		t.Fatal("disconnected should return nil")
	}
}

func TestPathCostMissingEdge(t *testing.T) {
	g, n := diamondGraph(t)
	if !math.IsInf(PathCost(g, []int{n[0], n[3]}, DistanceCost), 1) {
		t.Fatal("missing hop should cost Inf")
	}
}

func TestShortestPathAvoidingNodes(t *testing.T) {
	g, n := diamondGraph(t)
	// Avoid b: the path must detour through c.
	p := ShortestPathAvoidingNodes(g, n[0], n[3], map[int]bool{n[1]: true}, DistanceCost)
	if p == nil {
		t.Fatal("no path found")
	}
	for _, node := range p {
		if node == n[1] {
			t.Fatalf("path passes avoided node: %v", p)
		}
	}
	if PathCost(g, p, DistanceCost) != 4 {
		t.Fatalf("detour cost = %v, want 4", PathCost(g, p, DistanceCost))
	}
	// Avoid both middles: unreachable.
	if ShortestPathAvoidingNodes(g, n[0], n[3], map[int]bool{n[1]: true, n[2]: true}, DistanceCost) != nil {
		t.Fatal("fully blocked should return nil")
	}
}

func TestKShortestOnFatTreeCrossPod(t *testing.T) {
	ft, err := NewFatTree(FatTreeConfig{Pods: 4})
	if err != nil {
		t.Fatal(err)
	}
	src, dst := ft.RackIDs[0][0], ft.RackIDs[2][0]
	paths := KShortestPaths(ft.Graph, src, dst, 8, DistanceCost)
	// Fat-Tree(4): 2 agg × 2 core per group = 4 distinct 4-hop routes.
	count6 := 0
	for _, p := range paths {
		if PathCost(ft.Graph, p, DistanceCost) == 6 {
			count6++
		}
	}
	if count6 < 4 {
		t.Fatalf("want >= 4 minimal cross-pod routes, got %d of %d", count6, len(paths))
	}
}
