package topology

import (
	"testing"
)

// Routing-core benchmarks: each pair runs the CSR implementation against
// the preserved seed walker on the planning-scale fabric of ISSUE PR 5
// (48-pod Fat-Tree: 2 880 switches, ~110 k directed links). Record with a
// fixed -benchtime so before/after numbers in BENCH_route.json stay
// comparable:
//
//	go test -run=^$ -bench 'DijkstraFrom|MultiSourceSweep' -benchtime=2x -benchmem ./internal/topology/
//	go test -run=^$ -bench KShortest -benchtime=50x -benchmem ./internal/topology/

func benchFatTree(b *testing.B, pods int) *FatTree {
	b.Helper()
	ft, err := NewFatTree(FatTreeConfig{Pods: pods})
	if err != nil {
		b.Fatal(err)
	}
	return ft
}

// benchCost is bandwidth-sensitive like the model's transmission metric,
// so the sweep cannot shortcut to plain distance.
func benchCost(e Edge) float64 {
	if e.Bandwidth <= 0 {
		return Inf
	}
	return 10/e.Bandwidth + e.Bandwidth/e.Capacity
}

// BenchmarkDijkstraFrom measures one steady-state single-source sweep:
// tables and scratch already warm, only bandwidths changed since the last
// call. The CSR side must report 0 B/op, 0 allocs/op (CI asserts this via
// TestDijkstraSteadyStateZeroAlloc).
func BenchmarkDijkstraFrom(b *testing.B) {
	ft := benchFatTree(b, 48)
	src := []int{ft.RackIDs[0][0]}
	b.Run("csr", func(b *testing.B) {
		ms := DijkstraFromInto(ft.Graph, src, benchCost, nil) // warmup
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ms = DijkstraFromInto(ft.Graph, src, benchCost, ms)
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			referenceDijkstraFrom(ft.Graph, src, benchCost)
		}
	})
}

// BenchmarkMultiSourceSweep is the planning-scale workload behind
// cost.Model.Refresh: every ToR is a source (1 152 sweeps per op on the
// 48-pod fabric). The acceptance bar for PR 5 is csr ≥ 3x reference here.
func BenchmarkMultiSourceSweep(b *testing.B) {
	ft := benchFatTree(b, 48)
	racks := ft.Racks()
	b.Run("csr", func(b *testing.B) {
		ms := DijkstraFromInto(ft.Graph, racks, benchCost, nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ms = DijkstraFromInto(ft.Graph, racks, benchCost, ms)
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			referenceDijkstraFrom(ft.Graph, racks, benchCost)
		}
	})
}

// BenchmarkKShortest exercises Yen's spur loop (FLOWREROUTE alternatives)
// between far-apart racks. The fabric is smaller (8 pods) because the
// reference side rebuilds maps and filter closures per spur.
func BenchmarkKShortest(b *testing.B) {
	ft := benchFatTree(b, 8)
	src, dst := ft.RackIDs[0][0], ft.RackIDs[7][3]
	b.Run("csr", func(b *testing.B) {
		KShortestPaths(ft.Graph, src, dst, 8, benchCost) // warmup
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			KShortestPaths(ft.Graph, src, dst, 8, benchCost)
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			referenceKShortestPaths(ft.Graph, src, dst, 8, benchCost)
		}
	})
}
