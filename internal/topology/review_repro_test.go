package topology

import (
	"testing"
	"time"
)

// Repro 1: ensure() resets maskEpoch to 0 when one mask array is
// reallocated while the other keeps stale stamps.
func TestReviewMaskEpochStaleAfterGrow(t *testing.T) {
	s := &sweepScratch{}
	s.ensure(4, 4)
	mep := s.nextMaskEpoch() // epoch 1
	s.nodeMask[2] = mep      // stamp node 2 in epoch 1

	// Grow edge count only: edgeMask reallocated, maskEpoch reset to 0,
	// nodeMask retained with its stale epoch-1 stamp.
	s.ensure(4, 16)
	mep2 := s.nextMaskEpoch()
	if s.nodeMask[2] == mep2 {
		t.Fatalf("stale nodeMask stamp collides with new epoch %d: node 2 spuriously blocked", mep2)
	}
}

// Repro 1b: end-to-end through KShortestPaths + kspCache: run Yen, add a
// link, run the avoidance primitive and compare against the reference.
func TestReviewKSPStaleMaskEndToEnd(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 6; i++ {
		g.AddNode(Switch, "s", 0, 0)
	}
	g.AddLink(0, 1, 10, 1)
	g.AddLink(1, 2, 10, 1)
	g.AddLink(0, 3, 10, 1)
	g.AddLink(3, 2, 10, 1)
	g.AddLink(0, 4, 10, 1)
	g.AddLink(4, 2, 10, 1)

	// First Yen run stamps node masks with low epochs.
	KShortestPaths(g, 0, 2, 3, DistanceCost)

	// Structural change grows m so edgeMask reallocates and maskEpoch
	// resets while nodeMask keeps stale stamps.
	g.AddLink(1, 5, 10, 1)
	g.AddLink(5, 2, 10, 1)

	got := KShortestPaths(g, 0, 2, 3, DistanceCost)
	want := referenceKShortestPaths(g, 0, 2, 3, DistanceCost)
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range got {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("path %d: got %v want %v", i, got, want)
		}
		for j := range got[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("path %d: got %v want %v", i, got, want)
			}
		}
	}
}

// Repro 2: zero-weight edges + smallest-predecessor tie rule can create a
// parent cycle, hanging Path reconstruction.
func TestReviewZeroCostParentCycle(t *testing.T) {
	g := NewGraph()
	g.AddNode(Switch, "a", 0, 0) // 0
	g.AddNode(Switch, "b", 0, 0) // 1
	g.AddNode(Switch, "s", 0, 0) // 2 = source
	g.AddLink(2, 0, 10, 5)
	g.AddLink(2, 1, 10, 5)
	g.AddLink(0, 1, 10, 0) // zero-distance link

	done := make(chan []int, 1)
	go func() {
		ms := DijkstraFrom(g, []int{2}, DistanceCost)
		done <- ms.Path(2, 0)
	}()
	select {
	case p := <-done:
		t.Logf("path = %v", p)
	case <-time.After(2 * time.Second):
		t.Fatal("Path(2,0) hung: parent cycle from zero-cost tie rule")
	}
}
