package topology

import (
	"sync/atomic"

	"sheriff/internal/pool"
)

// MultiSource holds shortest paths from a designated set of source nodes
// to every node, computed by Dijkstra per source over the graph's CSR
// view. For the migration cost model only rack-to-rack paths matter, so
// running |racks| Dijkstras is far cheaper than cubic Floyd–Warshall on
// large Fat-Trees (the Sec. V.A collapse only needs G(v_i, v_p) between
// racks). Tables are dense and source-rank indexed: row i of dist/parent
// belongs to sources[i], and rank maps node ID → row, so lookups never
// touch a map and the storage is reusable across sweeps.
type MultiSource struct {
	n       int
	sources []int32
	rank    []int32    // node ID → row index, -1 when not a source
	tree    []treeNode // len(sources) interleaved (dist, parent) rows of n

	weights []wEdge // interleaved (cost, dst) vector of the last sweep
	scratch []*sweepScratch
}

// DijkstraFrom computes shortest paths from each source under the edge
// cost. Costs must be non-negative; Inf-cost edges are skipped. The cost
// closure is evaluated once per directed edge per sweep (not once per
// relaxation) to fill a flat weight vector; it must be safe for
// concurrent calls only in the trivial sense that fillWeights runs on the
// calling goroutine. The per-source searches are independent and run on
// the shared worker pool with per-worker reusable scratch.
func DijkstraFrom(g *Graph, sources []int, cost EdgeCost) *MultiSource {
	return DijkstraFromInto(g, sources, cost, nil)
}

// DijkstraFromInto is DijkstraFrom reusing a previous result's storage.
// When prev's tables fit the graph and source count, the sweep is
// allocation-free after warmup; prev's contents are overwritten and the
// returned value is prev itself. Pass nil to allocate fresh tables.
func DijkstraFromInto(g *Graph, sources []int, cost EdgeCost, prev *MultiSource) *MultiSource {
	c := g.ensureCSR()
	ms := prev
	if ms == nil {
		ms = &MultiSource{}
	}
	ms.reset(g, sources)
	ms.weights = ensureWEdges(ms.weights, len(c.dstID))
	c.fillWeights(ms.weights, cost)
	ms.runSweeps(c, nil, nil)
	return ms
}

// DijkstraPairInto fuses two sweeps over the same sources — the cost
// model's transmission and distance refresh — into one pass: both weight
// vectors are materialized in a single edge scan, and each source runs
// its two searches back-to-back on the same hot scratch within one pool
// fan-out instead of two. The two metrics keep independent heaps (their
// settle orders differ), so results are bit-identical to two separate
// DijkstraFrom calls. msA/msB are reused like DijkstraFromInto's prev.
func DijkstraPairInto(g *Graph, sources []int, costA, costB EdgeCost, msA, msB *MultiSource) (*MultiSource, *MultiSource) {
	c := g.ensureCSR()
	if msA == nil {
		msA = &MultiSource{}
	}
	if msB == nil {
		msB = &MultiSource{}
	}
	msA.reset(g, sources)
	msB.reset(g, sources)
	m := len(c.dstID)
	msA.weights = ensureWEdges(msA.weights, m)
	msB.weights = ensureWEdges(msB.weights, m)
	wA, wB := msA.weights, msB.weights
	n := len(c.rowStart) - 1
	for u := 0; u < n; u++ {
		for i := c.rowStart[u]; i < c.rowStart[u+1]; i++ {
			e := Edge{
				From:      u,
				To:        int(c.dstID[i]),
				Capacity:  c.capacity[i],
				Distance:  c.distance[i],
				Bandwidth: c.bandwidth[i],
			}
			wA[i] = wEdge{costA(e), c.dstID[i]}
			wB[i] = wEdge{costB(e), c.dstID[i]}
		}
	}
	msA.runSweeps(c, msB, wB)
	return msA, msB
}

// reset points the tables at the new source set, reusing backing arrays.
func (ms *MultiSource) reset(g *Graph, sources []int) {
	n := g.NumNodes()
	if len(ms.rank) >= n {
		// Clear only the previous sources' entries; the rest is still -1.
		for _, s := range ms.sources {
			if int(s) < len(ms.rank) {
				ms.rank[s] = -1
			}
		}
		ms.rank = ms.rank[:n]
	} else {
		ms.rank = make([]int32, n)
		for i := range ms.rank {
			ms.rank[i] = -1
		}
	}
	ms.n = n
	ms.sources = ms.sources[:0]
	for _, s := range sources {
		ms.sources = append(ms.sources, int32(s))
	}
	for i, s := range ms.sources {
		ms.rank[s] = int32(i)
	}
	ms.tree = ensureTreeNodes(ms.tree, len(sources)*n)
}

// runSweeps fans the per-source searches out over the shared worker pool.
// When other is non-nil, each source also runs the second-metric sweep on
// the same scratch (the fused refresh). Single-source sweeps run inline
// so the steady-state path stays allocation-free.
func (ms *MultiSource) runSweeps(c *csr, other *MultiSource, otherW []wEdge) {
	s := len(ms.sources)
	if s == 0 {
		return
	}
	n := ms.n
	m := len(c.dstID)
	if s == 1 {
		sc := ms.scratchFor(0, n, m)
		src := ms.sources[0]
		sc.sweep(c, src, ms.weights, ms.tree[:n])
		if other != nil {
			sc.sweep(c, src, otherW, other.tree[:n])
		}
		return
	}
	w := pool.Shared().Workers()
	if w > s {
		w = s
	}
	for k := 0; k < w; k++ {
		ms.scratchFor(k, n, m)
	}
	var next atomic.Int64
	pool.Shared().ForEach(w, func(worker int) {
		sc := ms.scratch[worker]
		for {
			i := int(next.Add(1)) - 1
			if i >= s {
				return
			}
			src := ms.sources[i]
			sc.sweep(c, src, ms.weights, ms.tree[i*n:(i+1)*n])
			if other != nil {
				sc.sweep(c, src, otherW, other.tree[i*n:(i+1)*n])
			}
		}
	})
}

func (ms *MultiSource) scratchFor(worker, n, m int) *sweepScratch {
	for len(ms.scratch) <= worker {
		ms.scratch = append(ms.scratch, &sweepScratch{})
	}
	sc := ms.scratch[worker]
	sc.ensure(n, m)
	return sc
}

func ensureFloats(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}

func ensureInt32s(s []int32, n int) []int32 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int32, n)
}

func ensureWEdges(s []wEdge, n int) []wEdge {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]wEdge, n)
}

func ensureTreeNodes(s []treeNode, n int) []treeNode {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]treeNode, n)
}

// row returns the shortest-path-tree row for a source node, or nil when
// the node was not in the source set.
func (m *MultiSource) row(src int) []treeNode {
	if src < 0 || src >= len(m.rank) {
		return nil
	}
	r := m.rank[src]
	if r < 0 {
		return nil
	}
	return m.tree[int(r)*m.n : (int(r)+1)*m.n]
}

// Dist returns the minimal cost from a source node to any node. It
// returns Inf if src was not in the source set or dst is unreachable.
func (m *MultiSource) Dist(src, dst int) float64 {
	t := m.row(src)
	if t == nil || dst < 0 || dst >= m.n {
		return Inf
	}
	return t[dst].d
}

// Path reconstructs one minimal path src → … → dst (inclusive), or nil
// when unreachable or src is not a source.
func (m *MultiSource) Path(src, dst int) []int {
	t := m.row(src)
	if t == nil || dst < 0 || dst >= m.n {
		return nil
	}
	if src == dst {
		return []int{src}
	}
	if t[dst].p < 0 {
		return nil
	}
	hops := 0
	cur := dst
	for cur != -1 && cur != src {
		hops++
		cur = int(t[cur].p)
	}
	if cur != src {
		return nil
	}
	out := make([]int, hops+1)
	i := hops
	for cur := dst; ; cur = int(t[cur].p) {
		out[i] = cur
		if cur == src {
			break
		}
		i--
	}
	return out
}
