package topology

import (
	"container/heap"

	"sheriff/internal/pool"
)

// MultiSource holds shortest paths from a designated set of source nodes
// to every node, computed by Dijkstra per source. For the migration cost
// model only rack-to-rack paths matter, so running |racks| Dijkstras is
// far cheaper than cubic Floyd–Warshall on large Fat-Trees (the Sec. V.A
// collapse only needs G(v_i, v_p) between racks).
type MultiSource struct {
	n      int
	dist   map[int][]float64
	parent map[int][]int32
}

// DijkstraFrom computes shortest paths from each source under the edge
// cost. Costs must be non-negative; Inf-cost edges are skipped. The
// per-source searches are independent and run on the shared worker pool
// (the cost model refreshes from every rack of a large fabric at once);
// cost must therefore be safe for concurrent calls — the stateless
// closures used across the tree are. Results are identical to the serial
// sweep: each source's search is self-contained and assembled in order.
func DijkstraFrom(g *Graph, sources []int, cost EdgeCost) *MultiSource {
	ms := &MultiSource{
		n:      g.NumNodes(),
		dist:   make(map[int][]float64, len(sources)),
		parent: make(map[int][]int32, len(sources)),
	}
	dists := make([][]float64, len(sources))
	parents := make([][]int32, len(sources))
	pool.Shared().ForEach(len(sources), func(i int) {
		dists[i], parents[i] = dijkstra(g, sources[i], cost)
	})
	for i, s := range sources {
		ms.dist[s] = dists[i]
		ms.parent[s] = parents[i]
	}
	return ms
}

type pqItem struct {
	node int
	dist float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

func dijkstra(g *Graph, src int, cost EdgeCost) ([]float64, []int32) {
	n := g.NumNodes()
	dist := make([]float64, n)
	parent := make([]int32, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = Inf
		parent[i] = -1
	}
	dist[src] = 0
	q := &pq{{src, 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if done[it.node] {
			continue
		}
		done[it.node] = true
		for _, e := range g.Edges(it.node) {
			c := cost(e)
			if c == Inf {
				continue
			}
			if nd := it.dist + c; nd < dist[e.To] {
				dist[e.To] = nd
				parent[e.To] = int32(it.node)
				heap.Push(q, pqItem{e.To, nd})
			}
		}
	}
	return dist, parent
}

// Dist returns the minimal cost from a source node to any node. It
// returns Inf if src was not in the source set or dst is unreachable.
func (m *MultiSource) Dist(src, dst int) float64 {
	d, ok := m.dist[src]
	if !ok || dst < 0 || dst >= m.n {
		return Inf
	}
	return d[dst]
}

// Path reconstructs one minimal path src → … → dst (inclusive), or nil
// when unreachable or src is not a source.
func (m *MultiSource) Path(src, dst int) []int {
	p, ok := m.parent[src]
	if !ok || dst < 0 || dst >= m.n {
		return nil
	}
	if src == dst {
		return []int{src}
	}
	if p[dst] < 0 {
		return nil
	}
	var rev []int
	for cur := dst; cur != -1; cur = int(p[cur]) {
		rev = append(rev, cur)
		if cur == src {
			break
		}
	}
	if rev[len(rev)-1] != src {
		return nil
	}
	out := make([]int, len(rev))
	for i, v := range rev {
		out[len(rev)-1-i] = v
	}
	return out
}
