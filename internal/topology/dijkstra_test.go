package topology

import (
	"math"
	"testing"
)

func TestDijkstraMatchesFloydOnFatTree(t *testing.T) {
	ft, err := NewFatTree(FatTreeConfig{Pods: 6})
	if err != nil {
		t.Fatal(err)
	}
	fw := FloydWarshall(ft.Graph, DistanceCost)
	racks := ft.Racks()
	ms := DijkstraFrom(ft.Graph, racks, DistanceCost)
	for _, a := range racks {
		for _, b := range racks {
			if math.Abs(ms.Dist(a, b)-fw.Dist(a, b)) > 1e-9 {
				t.Fatalf("Dijkstra %v != Floyd %v for %d->%d", ms.Dist(a, b), fw.Dist(a, b), a, b)
			}
		}
	}
}

func TestDijkstraMatchesFloydOnBCube(t *testing.T) {
	b, err := NewBCube(BCubeConfig{SwitchesPerLevel: 4})
	if err != nil {
		t.Fatal(err)
	}
	fw := FloydWarshall(b.Graph, DistanceCost)
	racks := b.Racks()
	ms := DijkstraFrom(b.Graph, racks, DistanceCost)
	for _, x := range racks {
		for _, y := range racks {
			if math.Abs(ms.Dist(x, y)-fw.Dist(x, y)) > 1e-9 {
				t.Fatalf("mismatch %d->%d: %v vs %v", x, y, ms.Dist(x, y), fw.Dist(x, y))
			}
		}
	}
}

func TestDijkstraPathConsistency(t *testing.T) {
	ft, err := NewFatTree(FatTreeConfig{Pods: 4})
	if err != nil {
		t.Fatal(err)
	}
	racks := ft.Racks()
	ms := DijkstraFrom(ft.Graph, racks, DistanceCost)
	for _, a := range racks {
		for _, b := range racks {
			p := ms.Path(a, b)
			if p == nil {
				t.Fatalf("nil path %d->%d", a, b)
			}
			if p[0] != a || p[len(p)-1] != b {
				t.Fatalf("path endpoints wrong: %v", p)
			}
			sum := 0.0
			for i := 1; i < len(p); i++ {
				e, ok := ft.EdgeBetween(p[i-1], p[i])
				if !ok {
					t.Fatalf("path uses missing edge %d-%d", p[i-1], p[i])
				}
				sum += e.Distance
			}
			if math.Abs(sum-ms.Dist(a, b)) > 1e-9 {
				t.Fatalf("path sum %v != dist %v", sum, ms.Dist(a, b))
			}
		}
	}
}

func TestDijkstraSelfPath(t *testing.T) {
	ft, err := NewFatTree(FatTreeConfig{Pods: 4})
	if err != nil {
		t.Fatal(err)
	}
	r := ft.Racks()[0]
	ms := DijkstraFrom(ft.Graph, []int{r}, DistanceCost)
	if d := ms.Dist(r, r); d != 0 {
		t.Fatalf("self distance = %v", d)
	}
	if p := ms.Path(r, r); len(p) != 1 || p[0] != r {
		t.Fatalf("self path = %v", p)
	}
}

func TestDijkstraNonSourceQueries(t *testing.T) {
	ft, err := NewFatTree(FatTreeConfig{Pods: 4})
	if err != nil {
		t.Fatal(err)
	}
	racks := ft.Racks()
	ms := DijkstraFrom(ft.Graph, racks[:1], DistanceCost)
	other := racks[1]
	if !math.IsInf(ms.Dist(other, racks[0]), 1) {
		t.Fatal("non-source Dist should be Inf")
	}
	if ms.Path(other, racks[0]) != nil {
		t.Fatal("non-source Path should be nil")
	}
	if !math.IsInf(ms.Dist(racks[0], -1), 1) {
		t.Fatal("out-of-range dst should be Inf")
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(Rack, "a", 0, 0)
	b := g.AddNode(Rack, "b", 1, 0)
	ms := DijkstraFrom(g, []int{a}, DistanceCost)
	if !math.IsInf(ms.Dist(a, b), 1) {
		t.Fatal("disconnected should be Inf")
	}
	if ms.Path(a, b) != nil {
		t.Fatal("disconnected path should be nil")
	}
}

func TestDijkstraSkipsInfEdges(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(Rack, "a", 0, 0)
	s := g.AddNode(Switch, "s", 0, 1)
	b := g.AddNode(Rack, "b", 0, 0)
	if err := g.AddLink(a, s, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(s, b, 1, 1); err != nil {
		t.Fatal(err)
	}
	blocked := func(e Edge) float64 {
		if e.To == b || e.From == b {
			return Inf
		}
		return e.Distance
	}
	ms := DijkstraFrom(g, []int{a}, blocked)
	if !math.IsInf(ms.Dist(a, b), 1) {
		t.Fatal("Inf-cost edge should block the path")
	}
}
