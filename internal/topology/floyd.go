package topology

// EdgeCost maps a link to a scalar cost for shortest-path purposes. The
// migration transform of Sec. V.A.2 uses the per-edge transmission cost
// δ·T(e) + η·P(e); plain distance D(e) is another common choice.
type EdgeCost func(Edge) float64

// DistanceCost returns D(e), the physical distance.
func DistanceCost(e Edge) float64 { return e.Distance }

// AllPairs holds the Floyd–Warshall result: the minimal cost between every
// node pair and the next-hop matrix for path reconstruction.
type AllPairs struct {
	n    int
	dist []float64
	next []int32
}

// FloydWarshall computes all-pairs shortest paths over the graph under the
// given edge cost, as prescribed for collapsing g(v_i, v_p, e_ip) into
// G(v_i, v_p) (Sec. V.A.2). Time complexity O(n³).
func FloydWarshall(g *Graph, cost EdgeCost) *AllPairs {
	n := g.NumNodes()
	ap := &AllPairs{
		n:    n,
		dist: make([]float64, n*n),
		next: make([]int32, n*n),
	}
	for i := range ap.dist {
		ap.dist[i] = Inf
		ap.next[i] = -1
	}
	for v := 0; v < n; v++ {
		ap.dist[v*n+v] = 0
		ap.next[v*n+v] = int32(v)
		for _, e := range g.Edges(v) {
			c := cost(e)
			if c < ap.dist[v*n+e.To] {
				ap.dist[v*n+e.To] = c
				ap.next[v*n+e.To] = int32(e.To)
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			dik := ap.dist[i*n+k]
			if dik == Inf {
				continue
			}
			rowK := ap.dist[k*n : k*n+n]
			rowI := ap.dist[i*n : i*n+n]
			for j := 0; j < n; j++ {
				if d := dik + rowK[j]; d < rowI[j] {
					rowI[j] = d
					ap.next[i*n+j] = ap.next[i*n+k]
				}
			}
		}
	}
	return ap
}

// Dist returns the minimal cost between two nodes (Inf if disconnected).
func (ap *AllPairs) Dist(a, b int) float64 { return ap.dist[a*ap.n+b] }

// Path reconstructs one minimal-cost path a → … → b, inclusive of both
// endpoints. It returns nil if the nodes are disconnected.
func (ap *AllPairs) Path(a, b int) []int {
	if a < 0 || b < 0 || a >= ap.n || b >= ap.n || ap.next[a*ap.n+b] < 0 {
		return nil
	}
	path := []int{a}
	for a != b {
		a = int(ap.next[a*ap.n+b])
		path = append(path, a)
	}
	return path
}

// NumNodes returns the number of nodes the result covers.
func (ap *AllPairs) NumNodes() int { return ap.n }
