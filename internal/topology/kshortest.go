package topology

import (
	"sort"
)

// KShortestPaths returns up to k loopless shortest paths from src to dst
// under the edge cost, in nondecreasing cost order (Yen's algorithm).
// FLOWREROUTE uses the alternatives to route conflict flows around hot
// switches (Sec. III.B "reroute portion of flows to their destinations
// without passing through hot switches").
func KShortestPaths(g *Graph, src, dst, k int, cost EdgeCost) [][]int {
	if k <= 0 || src < 0 || dst < 0 || src >= g.NumNodes() || dst >= g.NumNodes() {
		return nil
	}
	first := shortestPathAvoiding(g, src, dst, cost, nil, nil)
	if first == nil {
		return nil
	}
	paths := [][]int{first}
	var candidates []kspCandidate

	for len(paths) < k {
		prev := paths[len(paths)-1]
		// Spur from every node of the previous path except the last.
		for i := 0; i < len(prev)-1; i++ {
			spurNode := prev[i]
			rootPath := prev[:i+1]

			// Block the edges that would recreate already-found paths
			// sharing this root.
			blockedEdges := make(map[[2]int]bool)
			for _, p := range paths {
				if len(p) > i && equalPrefix(p, rootPath) {
					blockedEdges[[2]int{p[i], p[i+1]}] = true
				}
			}
			// Block root-path nodes (except the spur) to keep paths loopless.
			blockedNodes := make(map[int]bool)
			for _, n := range rootPath[:len(rootPath)-1] {
				blockedNodes[n] = true
			}

			spurPath := shortestPathAvoiding(g, spurNode, dst, cost, blockedNodes, blockedEdges)
			if spurPath == nil {
				continue
			}
			total := append(append([]int(nil), rootPath[:len(rootPath)-1]...), spurPath...)
			if containsPath(paths, total) || containsCandidate(candidates, total) {
				continue
			}
			candidates = append(candidates, kspCandidate{path: total, cost: PathCost(g, total, cost)})
		}
		if len(candidates) == 0 {
			break
		}
		sort.SliceStable(candidates, func(a, b int) bool { return candidates[a].cost < candidates[b].cost })
		paths = append(paths, candidates[0].path)
		candidates = candidates[1:]
	}
	return paths

}

func equalPrefix(p, prefix []int) bool {
	if len(p) < len(prefix) {
		return false
	}
	for i, v := range prefix {
		if p[i] != v {
			return false
		}
	}
	return true
}

func containsPath(paths [][]int, p []int) bool {
	for _, q := range paths {
		if equalPath(p, q) {
			return true
		}
	}
	return false
}

// kspCandidate is a spur path awaiting promotion in Yen's algorithm.
type kspCandidate struct {
	path []int
	cost float64
}

func containsCandidate(cands []kspCandidate, p []int) bool {
	for _, c := range cands {
		if equalPath(p, c.path) {
			return true
		}
	}
	return false
}

func equalPath(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// PathCost sums the edge costs along a node path. It returns Inf when a
// hop has no edge.
func PathCost(g *Graph, path []int, cost EdgeCost) float64 {
	total := 0.0
	for i := 1; i < len(path); i++ {
		e, ok := g.EdgeBetween(path[i-1], path[i])
		if !ok {
			return Inf
		}
		total += cost(e)
	}
	return total
}

// shortestPathAvoiding is Dijkstra with blocked nodes/edges; it returns
// the node path src…dst or nil.
func shortestPathAvoiding(g *Graph, src, dst int, cost EdgeCost, blockedNodes map[int]bool, blockedEdges map[[2]int]bool) []int {
	filtered := func(e Edge) float64 {
		if blockedNodes[e.To] && e.To != dst {
			return Inf
		}
		if blockedEdges[[2]int{e.From, e.To}] {
			return Inf
		}
		return cost(e)
	}
	ms := DijkstraFrom(g, []int{src}, filtered)
	return ms.Path(src, dst)
}

// ShortestPathAvoidingNodes returns one shortest path from src to dst that
// does not pass through any node in avoid (endpoints exempt), or nil.
// This is the direct "avoid the hot switch" primitive of FLOWREROUTE.
func ShortestPathAvoidingNodes(g *Graph, src, dst int, avoid map[int]bool, cost EdgeCost) []int {
	filtered := func(e Edge) float64 {
		if avoid[e.To] && e.To != dst && e.To != src {
			return Inf
		}
		return cost(e)
	}
	ms := DijkstraFrom(g, []int{src}, filtered)
	return ms.Path(src, dst)
}
