package topology

import (
	"sheriff/internal/pool"
)

// kspScratch bundles everything a Yen run (or an avoidance query) needs:
// one sweep scratch whose epoch masks implement the per-spur edge/node
// blocks in O(1) per spur instead of rebuilding filter closures and maps,
// plus reusable dist/parent/weight vectors and path buffers. Instances
// are recycled through the shared cache, so steady-state reroute planning
// stops allocating scratch after warmup.
type kspScratch struct {
	sweepScratch
	tree     []treeNode
	weights  []wEdge
	pathBuf  []int
	totalBuf []int
	cands    []kspCandidate
}

var kspCache = pool.NewCache(func() *kspScratch { return &kspScratch{} })

func (s *kspScratch) prepare(c *csr, cost EdgeCost) {
	n := len(c.rowStart) - 1
	m := len(c.dstID)
	s.ensure(n, m)
	s.tree = ensureTreeNodes(s.tree, n)
	s.weights = ensureWEdges(s.weights, m)
	c.fillWeights(s.weights, cost)
	s.cands = s.cands[:0]
}

// pathInto reconstructs src→dst from the scratch parent row into buf.
func (s *kspScratch) pathInto(src, dst int, buf []int) []int {
	if src == dst {
		return append(buf[:0], src)
	}
	if s.tree[dst].p < 0 {
		return nil
	}
	hops := 0
	cur := dst
	for cur != -1 && cur != src {
		hops++
		cur = int(s.tree[cur].p)
	}
	if cur != src {
		return nil
	}
	if cap(buf) < hops+1 {
		buf = make([]int, hops+1)
	}
	buf = buf[:hops+1]
	i := hops
	for cur := dst; ; cur = int(s.tree[cur].p) {
		buf[i] = cur
		if cur == src {
			break
		}
		i--
	}
	return buf
}

// pathCostW sums the materialized weights along a node path, following
// the same sequential order as PathCost so values stay bit-identical.
func pathCostW(c *csr, w []wEdge, path []int) float64 {
	total := 0.0
	for i := 1; i < len(path); i++ {
		e := c.edgeIndex(int32(path[i-1]), int32(path[i]))
		if e < 0 {
			return Inf
		}
		total += w[e].w
	}
	return total
}

// KShortestPaths returns up to k loopless shortest paths from src to dst
// under the edge cost, in nondecreasing cost order (Yen's algorithm).
// FLOWREROUTE uses the alternatives to route conflict flows around hot
// switches (Sec. III.B "reroute portion of flows to their destinations
// without passing through hot switches"). Spur searches run on a shared
// scratch with epoch-stamped block masks; the candidate list is reused
// across rounds and deduplicated before a spur path is ever copied.
func KShortestPaths(g *Graph, src, dst, k int, cost EdgeCost) [][]int {
	if k <= 0 || src < 0 || dst < 0 || src >= g.NumNodes() || dst >= g.NumNodes() {
		return nil
	}
	c := g.ensureCSR()
	st := kspCache.Get()
	defer kspCache.Put(st)
	st.prepare(c, cost)

	st.sweep(c, int32(src), st.weights, st.tree)
	first := st.pathInto(src, dst, nil)
	if first == nil {
		return nil
	}
	paths := [][]int{first}

	for len(paths) < k {
		prev := paths[len(paths)-1]
		// Spur from every node of the previous path except the last.
		for i := 0; i < len(prev)-1; i++ {
			spurNode := prev[i]
			rootPath := prev[:i+1]

			mep := st.nextMaskEpoch()
			// Block the edges that would recreate already-found paths
			// sharing this root.
			for _, p := range paths {
				if len(p) > i && equalPrefix(p, rootPath) {
					if e := c.edgeIndex(int32(p[i]), int32(p[i+1])); e >= 0 {
						st.edgeMask[e] = mep
					}
				}
			}
			// Block root-path nodes (except the spur) to keep paths
			// loopless. They are interior nodes of a loopless path, so
			// dst is never among them.
			for _, n := range rootPath[:len(rootPath)-1] {
				st.nodeMask[n] = mep
			}

			st.sweepMasked(c, int32(spurNode), st.weights, st.tree)
			spurPath := st.pathInto(spurNode, dst, st.pathBuf)
			if spurPath == nil {
				continue
			}
			st.pathBuf = spurPath
			st.totalBuf = append(st.totalBuf[:0], rootPath[:len(rootPath)-1]...)
			total := append(st.totalBuf, spurPath...)
			st.totalBuf = total
			if containsPath(paths, total) || containsCandidate(st.cands, total) {
				continue
			}
			st.cands = append(st.cands, kspCandidate{
				path: append([]int(nil), total...),
				cost: pathCostW(c, st.weights, total),
			})
		}
		if len(st.cands) == 0 {
			break
		}
		// Promote the cheapest candidate; the strict < keeps the earliest
		// inserted among equal costs, matching the stable-sort promotion
		// of the reference implementation.
		best := 0
		for j := 1; j < len(st.cands); j++ {
			if st.cands[j].cost < st.cands[best].cost {
				best = j
			}
		}
		paths = append(paths, st.cands[best].path)
		st.cands = append(st.cands[:best], st.cands[best+1:]...)
	}
	return paths
}

func equalPrefix(p, prefix []int) bool {
	if len(p) < len(prefix) {
		return false
	}
	for i, v := range prefix {
		if p[i] != v {
			return false
		}
	}
	return true
}

func containsPath(paths [][]int, p []int) bool {
	for _, q := range paths {
		if equalPath(p, q) {
			return true
		}
	}
	return false
}

// kspCandidate is a spur path awaiting promotion in Yen's algorithm.
type kspCandidate struct {
	path []int
	cost float64
}

func containsCandidate(cands []kspCandidate, p []int) bool {
	for _, c := range cands {
		if equalPath(p, c.path) {
			return true
		}
	}
	return false
}

func equalPath(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// PathCost sums the edge costs along a node path. It returns Inf when a
// hop has no edge.
func PathCost(g *Graph, path []int, cost EdgeCost) float64 {
	total := 0.0
	for i := 1; i < len(path); i++ {
		e, ok := g.EdgeBetween(path[i-1], path[i])
		if !ok {
			return Inf
		}
		total += cost(e)
	}
	return total
}

// ShortestPathAvoidingNodes returns one shortest path from src to dst that
// does not pass through any node in avoid (endpoints exempt), or nil.
// This is the direct "avoid the hot switch" primitive of FLOWREROUTE.
func ShortestPathAvoidingNodes(g *Graph, src, dst int, avoid map[int]bool, cost EdgeCost) []int {
	if src < 0 || dst < 0 || src >= g.NumNodes() || dst >= g.NumNodes() {
		return nil
	}
	c := g.ensureCSR()
	st := kspCache.Get()
	defer kspCache.Put(st)
	st.prepare(c, cost)
	mep := st.nextMaskEpoch()
	for n, on := range avoid {
		if on && n != src && n != dst && n >= 0 && n < g.NumNodes() {
			st.nodeMask[n] = mep
		}
	}
	st.sweepMasked(c, int32(src), st.weights, st.tree)
	return st.pathInto(src, dst, nil)
}
