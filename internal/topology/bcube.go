package topology

import "fmt"

// BCubeConfig parameterizes a BCube(n, 1): the two-level server-centric
// topology of the paper's Sec. VI.B simulations, where "the number of
// switches each level of Bcube" is swept along the x-axis of Figs. 13–14.
// BCube(n,1) has n level-0 switches, n level-1 switches, and n² server
// nodes; server (i, j) attaches to level-0 switch i and level-1 switch j.
//
// BCube is server-centric: servers relay traffic and act as the natural
// delegation points, so each server node is modeled as a Rack (a
// delegation unit with its own shim and VM slots). A node's one-hop wired
// region is then the n−1 peers behind its level-0 switch plus the n−1
// peers behind its level-1 switch — a genuinely regional neighborhood,
// unlike the global view of the centralized manager.
type BCubeConfig struct {
	SwitchesPerLevel int // n: switches in each of the two levels

	Level0Capacity float64 // level-0 (group) link capacity (default 1)
	Level1Capacity float64 // level-1 (cross-group) link capacity (default 10)
	Level0Distance float64 // default 1
	Level1Distance float64 // default 2
}

func (c BCubeConfig) withDefaults() BCubeConfig {
	if c.Level0Capacity == 0 {
		c.Level0Capacity = 1
	}
	if c.Level1Capacity == 0 {
		c.Level1Capacity = 10
	}
	if c.Level0Distance == 0 {
		c.Level0Distance = 1
	}
	if c.Level1Distance == 0 {
		c.Level1Distance = 2
	}
	return c
}

// BCube describes a built BCube(n,1) topology.
type BCube struct {
	*Graph
	Config BCubeConfig

	// RackIDs[i][j] is the node ID of server node (group i, position j).
	RackIDs [][]int
	// Level0IDs[i] is the node ID of level-0 switch i.
	Level0IDs []int
	// Level1IDs[j] is the node ID of level-1 switch j.
	Level1IDs []int
}

// NewBCube builds a BCube(n,1) with n² server nodes.
func NewBCube(cfg BCubeConfig) (*BCube, error) {
	n := cfg.SwitchesPerLevel
	if n < 2 {
		return nil, fmt.Errorf("topology: BCube needs >= 2 switches per level, got %d", n)
	}
	cfg = cfg.withDefaults()
	g := NewGraph()
	b := &BCube{Graph: g, Config: cfg}

	b.Level0IDs = make([]int, n)
	b.Level1IDs = make([]int, n)
	for i := 0; i < n; i++ {
		b.Level0IDs[i] = g.AddNode(Switch, fmt.Sprintf("l0-%d", i), i, 0)
	}
	for j := 0; j < n; j++ {
		b.Level1IDs[j] = g.AddNode(Switch, fmt.Sprintf("l1-%d", j), -1, 1)
	}
	b.RackIDs = make([][]int, n)
	for i := 0; i < n; i++ {
		b.RackIDs[i] = make([]int, n)
		for j := 0; j < n; j++ {
			id := g.AddNode(Rack, fmt.Sprintf("srv-%d-%d", i, j), i, 0)
			b.RackIDs[i][j] = id
			if err := g.AddLink(id, b.Level0IDs[i], cfg.Level0Capacity, cfg.Level0Distance); err != nil {
				return nil, err
			}
			if err := g.AddLink(id, b.Level1IDs[j], cfg.Level1Capacity, cfg.Level1Distance); err != nil {
				return nil, err
			}
		}
	}
	return b, nil
}

// NumRacks returns the number of server nodes: n².
func (b *BCube) NumRacks() int {
	n := b.Config.SwitchesPerLevel
	return n * n
}
