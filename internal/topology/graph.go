// Package topology builds the wired network graphs of the paper's Sec. II.C:
// G_r = (V ∪ S, E_r), where V is the set of rack delegation nodes (shims,
// co-located with ToR switches) and S the set of aggregation/core switches.
// It provides Fat-Tree and BCube constructors matching the simulation
// settings of Sec. VI.B, and Floyd–Warshall all-pairs shortest paths used
// to collapse the transmission cost g(v_i, v_p, e_ip) into G(v_i, v_p)
// (Sec. V.A.2).
package topology

import (
	"fmt"
	"math"
	"sync"
)

// NodeKind distinguishes rack delegation nodes from interior switches.
type NodeKind int

const (
	// Rack is a ToR switch + shim delegation node (an element of V).
	Rack NodeKind = iota
	// Switch is an aggregation or core switch (an element of S).
	Switch
)

// String names the node kind.
func (k NodeKind) String() string {
	switch k {
	case Rack:
		return "rack"
	case Switch:
		return "switch"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Node is a vertex of the wired graph.
type Node struct {
	ID    int
	Kind  NodeKind
	Name  string
	Pod   int // pod index (Fat-Tree) or group index (BCube); -1 if n/a
	Level int // 0 = ToR/edge, 1 = aggregation, 2 = core (BCube: switch level)
}

// Edge is a directed half of a physical link. Links are installed in both
// directions with identical attributes.
type Edge struct {
	From, To  int
	Capacity  float64 // C(e): maximum capacity
	Distance  float64 // D(e): physical distance
	Bandwidth float64 // B(e): currently available bandwidth
}

// Graph is a mutable wired-network graph. Shortest-path sweeps run over a
// flattened CSR view built lazily from the adjacency: structural changes
// invalidate it, bandwidth updates patch it in place. Concurrent readers
// (DijkstraFrom and friends) may trigger the build simultaneously, so it
// is guarded by a mutex; mutations are not goroutine-safe, as before.
type Graph struct {
	nodes []Node
	adj   [][]Edge

	structVer uint64 // bumped by AddNode/AddLink
	csrMu     sync.Mutex
	csrRep    *csr
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{} }

// AddNode appends a node and returns its ID.
func (g *Graph) AddNode(kind NodeKind, name string, pod, level int) int {
	id := len(g.nodes)
	g.nodes = append(g.nodes, Node{ID: id, Kind: kind, Name: name, Pod: pod, Level: level})
	g.adj = append(g.adj, nil)
	g.invalidateCSR()
	return id
}

// AddLink installs a bidirectional link between a and b.
func (g *Graph) AddLink(a, b int, capacity, distance float64) error {
	if err := g.check(a); err != nil {
		return err
	}
	if err := g.check(b); err != nil {
		return err
	}
	if a == b {
		return fmt.Errorf("topology: self-loop on node %d", a)
	}
	g.adj[a] = append(g.adj[a], Edge{From: a, To: b, Capacity: capacity, Distance: distance, Bandwidth: capacity})
	g.adj[b] = append(g.adj[b], Edge{From: b, To: a, Capacity: capacity, Distance: distance, Bandwidth: capacity})
	g.invalidateCSR()
	return nil
}

func (g *Graph) invalidateCSR() {
	g.structVer++
	g.csrRep = nil
}

// StructVersion returns a counter bumped by every structural change
// (AddNode/AddLink). Bandwidth updates do not bump it, so callers caching
// structure-only derivations (physical-distance tables) can skip
// recomputation while the wiring is unchanged.
func (g *Graph) StructVersion() uint64 { return g.structVer }

// ensureCSR returns the flattened edge-array view, building it on first
// use after a structural change. Safe for concurrent readers.
func (g *Graph) ensureCSR() *csr {
	g.csrMu.Lock()
	defer g.csrMu.Unlock()
	if g.csrRep == nil {
		g.csrRep = buildCSR(g)
	}
	return g.csrRep
}

func (g *Graph) check(id int) error {
	if id < 0 || id >= len(g.nodes) {
		return fmt.Errorf("topology: node %d out of range [0,%d)", id, len(g.nodes))
	}
	return nil
}

// NumNodes returns the number of vertices.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// Node returns the node with the given ID.
func (g *Graph) Node(id int) Node { return g.nodes[id] }

// Edges returns the outgoing edges of a node. The returned slice is the
// graph's own storage; treat it as read-only.
func (g *Graph) Edges(id int) []Edge { return g.adj[id] }

// EdgeBetween returns the directed edge a→b if a link exists.
func (g *Graph) EdgeBetween(a, b int) (Edge, bool) {
	if a < 0 || a >= len(g.adj) {
		return Edge{}, false
	}
	for _, e := range g.adj[a] {
		if e.To == b {
			return e, true
		}
	}
	return Edge{}, false
}

// SetBandwidth updates the available bandwidth on both directions of the
// link a–b. It returns false if no such link exists.
func (g *Graph) SetBandwidth(a, b int, bw float64) bool {
	found := false
	for dir := 0; dir < 2; dir++ {
		from, to := a, b
		if dir == 1 {
			from, to = b, a
		}
		if from < 0 || from >= len(g.adj) {
			return false
		}
		for i := range g.adj[from] {
			if g.adj[from][i].To == to {
				g.adj[from][i].Bandwidth = bw
				if c := g.csrRep; c != nil {
					// Patch the CSR in place: the i-th edge of the
					// adjacency row is the i-th edge of the CSR row.
					c.bandwidth[int(c.rowStart[from])+i] = bw
				}
				found = true
				break
			}
		}
	}
	return found
}

// Racks returns the IDs of all rack nodes, in creation order.
func (g *Graph) Racks() []int {
	var out []int
	for _, n := range g.nodes {
		if n.Kind == Rack {
			out = append(out, n.ID)
		}
	}
	return out
}

// Switches returns the IDs of all switch nodes, in creation order.
func (g *Graph) Switches() []int {
	var out []int
	for _, n := range g.nodes {
		if n.Kind == Switch {
			out = append(out, n.ID)
		}
	}
	return out
}

// Neighbors returns the IDs adjacent to a node.
func (g *Graph) Neighbors(id int) []int {
	es := g.adj[id]
	out := make([]int, len(es))
	for i, e := range es {
		out[i] = e.To
	}
	return out
}

// RackNeighbors returns the rack nodes reachable from rack id through at
// most maxSwitchHops interior switches (one-hop wired neighbors for
// maxSwitchHops = 1, the paper's "dominating one hop wired neighbors").
// The origin rack is not included.
func (g *Graph) RackNeighbors(id int, maxSwitchHops int) []int {
	type state struct{ node, switchHops int }
	seen := make(map[int]bool, len(g.nodes))
	seen[id] = true
	var out []int
	queue := []state{{id, 0}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range g.adj[cur.node] {
			n := g.nodes[e.To]
			if seen[n.ID] {
				continue
			}
			if n.Kind == Rack {
				seen[n.ID] = true
				out = append(out, n.ID)
				continue // do not traverse through racks
			}
			if cur.switchHops < maxSwitchHops {
				seen[n.ID] = true
				queue = append(queue, state{n.ID, cur.switchHops + 1})
			}
		}
	}
	return out
}

// Inf is the distance reported between disconnected nodes.
var Inf = math.Inf(1)
