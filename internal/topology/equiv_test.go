package topology

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// Equivalence harness for the CSR routing core: results must be
// bit-identical to the seed walkers preserved in reference.go (both sides
// share the smallest-predecessor tie rule, so their shortest-path trees
// are pure functions of the graph), and distances must agree with the
// Floyd–Warshall oracle on the paper's small fabrics.

// randomEquivGraph builds a connected random graph with deliberately few
// distinct distances and capacities, so equal-cost paths (the tie cases)
// are common rather than rare.
func randomEquivGraph(rng *rand.Rand, n int) *Graph {
	g := NewGraph()
	for i := 0; i < n; i++ {
		kind := Rack
		if i%3 == 1 {
			kind = Switch
		}
		g.AddNode(kind, "", i%4, i%3)
	}
	dists := []float64{1, 1, 2, 3}
	caps := []float64{1, 2, 10}
	link := func(a, b int) {
		if err := g.AddLink(a, b, caps[rng.Intn(len(caps))], dists[rng.Intn(len(dists))]); err != nil {
			panic(err)
		}
	}
	for i := 1; i < n; i++ {
		link(i, rng.Intn(i)) // spanning tree: keeps the graph connected
	}
	for e := 0; e < 2*n; e++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		if _, dup := g.EdgeBetween(a, b); dup {
			continue
		}
		link(a, b)
	}
	return g
}

// bandwidthCost exercises every edge attribute, mirroring the cost
// model's transmission metric.
func bandwidthCost(e Edge) float64 {
	if e.Bandwidth <= 0 {
		return Inf
	}
	return 10/e.Bandwidth + e.Bandwidth/e.Capacity + 0.25*e.Distance
}

func assertSameMultiSource(t *testing.T, g *Graph, sources []int, ms *MultiSource, ref *refMultiSource, label string) {
	t.Helper()
	n := g.NumNodes()
	for _, s := range sources {
		for d := 0; d < n; d++ {
			got, want := ms.Dist(s, d), ref.Dist(s, d)
			if got != want && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
				t.Fatalf("%s: Dist(%d,%d) = %v, reference %v", label, s, d, got, want)
			}
			gp, wp := ms.Path(s, d), ref.Path(s, d)
			if !equalPath(gp, wp) {
				t.Fatalf("%s: Path(%d,%d) = %v, reference %v", label, s, d, gp, wp)
			}
		}
	}
}

func TestCSRDijkstraMatchesReferenceOnRandomGraphs(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomEquivGraph(rng, 24+rng.Intn(16))
		var sources []int
		for i := 0; i < g.NumNodes(); i++ {
			sources = append(sources, i)
		}
		ms := DijkstraFrom(g, sources, bandwidthCost)
		ref := referenceDijkstraFrom(g, sources, bandwidthCost)
		assertSameMultiSource(t, g, sources, ms, ref, "fresh")

		// Patch bandwidths in place (the incremental CSR update) and
		// re-sweep into the same tables.
		for i := 0; i < 10; i++ {
			a := rng.Intn(g.NumNodes())
			es := g.Edges(a)
			if len(es) == 0 {
				continue
			}
			e := es[rng.Intn(len(es))]
			g.SetBandwidth(e.From, e.To, float64(rng.Intn(4))/2)
		}
		ms = DijkstraFromInto(g, sources, bandwidthCost, ms)
		ref = referenceDijkstraFrom(g, sources, bandwidthCost)
		assertSameMultiSource(t, g, sources, ms, ref, "patched")

		// Structural change invalidates the CSR; the next sweep rebuilds.
		a, b := 0, g.NumNodes()-1
		if _, dup := g.EdgeBetween(a, b); !dup {
			if err := g.AddLink(a, b, 5, 1); err != nil {
				t.Fatal(err)
			}
		}
		ms = DijkstraFromInto(g, sources, bandwidthCost, ms)
		ref = referenceDijkstraFrom(g, sources, bandwidthCost)
		assertSameMultiSource(t, g, sources, ms, ref, "relinked")
	}
}

func TestCSRDijkstraMatchesFloydOracleExactly(t *testing.T) {
	ft, err := NewFatTree(FatTreeConfig{Pods: 4})
	if err != nil {
		t.Fatal(err)
	}
	bc, err := NewBCube(BCubeConfig{SwitchesPerLevel: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		g    *Graph
	}{{"fattree", ft.Graph}, {"bcube", bc.Graph}} {
		fw := FloydWarshall(tc.g, DistanceCost)
		var all []int
		for i := 0; i < tc.g.NumNodes(); i++ {
			all = append(all, i)
		}
		ms := DijkstraFrom(tc.g, all, DistanceCost)
		for _, a := range all {
			for _, b := range all {
				// Small integral distances: sums are exact, so the oracle
				// comparison can demand bitwise equality.
				if ms.Dist(a, b) != fw.Dist(a, b) {
					t.Fatalf("%s: Dist(%d,%d) = %v, Floyd %v", tc.name, a, b, ms.Dist(a, b), fw.Dist(a, b))
				}
			}
		}
	}
}

func TestKShortestMatchesReference(t *testing.T) {
	ft, err := NewFatTree(FatTreeConfig{Pods: 4})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		g        *Graph
		src, dst int
	}{
		{ft.Graph, ft.RackIDs[0][0], ft.RackIDs[2][1]},
		{ft.Graph, ft.RackIDs[0][0], ft.RackIDs[0][1]},
	}
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		g := randomEquivGraph(rng, 16+rng.Intn(12))
		var racks []int
		for i := 0; i < g.NumNodes(); i++ {
			if g.Node(i).Kind == Rack {
				racks = append(racks, i)
			}
		}
		cases = append(cases, struct {
			g        *Graph
			src, dst int
		}{g, racks[0], racks[len(racks)-1]})
	}
	for i, tc := range cases {
		for _, k := range []int{1, 3, 8} {
			got := KShortestPaths(tc.g, tc.src, tc.dst, k, DistanceCost)
			want := referenceKShortestPaths(tc.g, tc.src, tc.dst, k, DistanceCost)
			if len(got) != len(want) {
				t.Fatalf("case %d k=%d: %d paths, reference %d", i, k, len(got), len(want))
			}
			for j := range got {
				if !equalPath(got[j], want[j]) {
					t.Fatalf("case %d k=%d path %d: %v, reference %v", i, k, j, got[j], want[j])
				}
			}
		}
	}
}

func TestShortestPathAvoidingNodesMatchesReference(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(200 + seed))
		g := randomEquivGraph(rng, 20)
		for trial := 0; trial < 10; trial++ {
			src, dst := rng.Intn(g.NumNodes()), rng.Intn(g.NumNodes())
			avoid := map[int]bool{}
			for j := 0; j < 3; j++ {
				avoid[rng.Intn(g.NumNodes())] = true
			}
			got := ShortestPathAvoidingNodes(g, src, dst, avoid, bandwidthCost)
			want := referenceShortestPathAvoidingNodes(g, src, dst, avoid, bandwidthCost)
			if !equalPath(got, want) {
				t.Fatalf("seed %d avoid %v: %v, reference %v", seed, avoid, got, want)
			}
		}
	}
}

// TestKShortestLooplessProperty is the randomized property test of Yen's
// invariants: loopless paths, nondecreasing costs, no duplicates, correct
// endpoints.
func TestKShortestLooplessProperty(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(300 + seed))
		g := randomEquivGraph(rng, 14+rng.Intn(14))
		src := rng.Intn(g.NumNodes())
		dst := rng.Intn(g.NumNodes())
		if src == dst {
			continue
		}
		paths := KShortestPaths(g, src, dst, 6, DistanceCost)
		prev := -1.0
		for pi, p := range paths {
			if p[0] != src || p[len(p)-1] != dst {
				t.Fatalf("seed %d: bad endpoints %v", seed, p)
			}
			seen := map[int]bool{}
			for _, n := range p {
				if seen[n] {
					t.Fatalf("seed %d: loop in %v", seed, p)
				}
				seen[n] = true
			}
			c := PathCost(g, p, DistanceCost)
			if c < prev {
				t.Fatalf("seed %d: cost %v after %v", seed, c, prev)
			}
			prev = c
			for qi := pi + 1; qi < len(paths); qi++ {
				if equalPath(p, paths[qi]) {
					t.Fatalf("seed %d: duplicate path %v", seed, p)
				}
			}
		}
	}
}

// TestDijkstraSteadyStateZeroAlloc is the CI allocation gate: after
// warmup, a single-source sweep reusing its MultiSource must not allocate
// at all — the CSR, weight vector, heap, and result rows are all reused.
func TestDijkstraSteadyStateZeroAlloc(t *testing.T) {
	ft, err := NewFatTree(FatTreeConfig{Pods: 8})
	if err != nil {
		t.Fatal(err)
	}
	src := []int{ft.RackIDs[0][0]}
	var ms *MultiSource
	ms = DijkstraFromInto(ft.Graph, src, DistanceCost, ms) // warm: builds CSR + tables
	allocs := testing.AllocsPerRun(20, func() {
		ms = DijkstraFromInto(ft.Graph, src, DistanceCost, ms)
	})
	if allocs != 0 {
		t.Fatalf("steady-state sweep allocates %v objects/op, want 0", allocs)
	}
}

func TestDijkstraPairMatchesSeparateSweeps(t *testing.T) {
	ft, err := NewFatTree(FatTreeConfig{Pods: 6})
	if err != nil {
		t.Fatal(err)
	}
	racks := ft.Racks()
	a, b := DijkstraPairInto(ft.Graph, racks, bandwidthCost, DistanceCost, nil, nil)
	sa := DijkstraFrom(ft.Graph, racks, bandwidthCost)
	sb := DijkstraFrom(ft.Graph, racks, DistanceCost)
	for _, s := range racks {
		for d := 0; d < ft.NumNodes(); d++ {
			if a.Dist(s, d) != sa.Dist(s, d) || b.Dist(s, d) != sb.Dist(s, d) {
				t.Fatalf("fused sweep diverges at (%d,%d)", s, d)
			}
			if !equalPath(a.Path(s, d), sa.Path(s, d)) || !equalPath(b.Path(s, d), sb.Path(s, d)) {
				t.Fatalf("fused path diverges at (%d,%d)", s, d)
			}
		}
	}
}

// TestMultiSourceReuseAcrossShapes re-targets one MultiSource across
// different graphs and source sets, which must behave exactly like fresh
// tables each time.
func TestMultiSourceReuseAcrossShapes(t *testing.T) {
	ft, err := NewFatTree(FatTreeConfig{Pods: 4})
	if err != nil {
		t.Fatal(err)
	}
	bc, err := NewBCube(BCubeConfig{SwitchesPerLevel: 3})
	if err != nil {
		t.Fatal(err)
	}
	var ms *MultiSource
	for _, tc := range []struct {
		g       *Graph
		sources []int
	}{
		{ft.Graph, ft.Racks()},
		{ft.Graph, ft.Racks()[:2]},
		{bc.Graph, bc.Racks()},
		{ft.Graph, []int{ft.RackIDs[1][1]}},
	} {
		ms = DijkstraFromInto(tc.g, tc.sources, DistanceCost, ms)
		ref := referenceDijkstraFrom(tc.g, tc.sources, DistanceCost)
		assertSameMultiSource(t, tc.g, tc.sources, ms, ref, "reuse")
		// A node dropped from the source set must report Inf again.
		for i := 0; i < tc.g.NumNodes(); i++ {
			inSources := false
			for _, s := range tc.sources {
				if s == i {
					inSources = true
				}
			}
			if !inSources && !math.IsInf(ms.Dist(i, 0), 1) {
				t.Fatalf("stale source %d still answers", i)
			}
		}
	}
}

// TestConcurrentSweepsShareCSR drives concurrent readers through the lazy
// CSR build and the scratch cache; run under -race in CI.
func TestConcurrentSweepsShareCSR(t *testing.T) {
	ft, err := NewFatTree(FatTreeConfig{Pods: 6})
	if err != nil {
		t.Fatal(err)
	}
	want := DijkstraFrom(ft.Graph, ft.Racks()[:1], DistanceCost).Dist(ft.RackIDs[0][0], ft.RackIDs[2][0])

	fresh, err := NewFatTree(FatTreeConfig{Pods: 6}) // CSR not built yet
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := fresh.RackIDs[w%6][0]
			ms := DijkstraFrom(fresh.Graph, []int{src}, DistanceCost)
			if w%2 == 0 {
				KShortestPaths(fresh.Graph, src, fresh.RackIDs[(w+2)%6][1], 3, DistanceCost)
			}
			if got := ms.Dist(src, src); got != 0 {
				t.Errorf("self distance %v", got)
			}
			if w == 0 {
				if got := ms.Dist(fresh.RackIDs[0][0], fresh.RackIDs[2][0]); got != want {
					t.Errorf("concurrent sweep dist %v, want %v", got, want)
				}
			}
		}(w)
	}
	wg.Wait()
}
