package topology

import "testing"

func TestLeafSpineShape(t *testing.T) {
	ls, err := NewLeafSpine(LeafSpineConfig{Leaves: 100, Spines: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ls.Graph.Racks()); got != 100 {
		t.Fatalf("racks = %d, want 100", got)
	}
	if got := len(ls.Graph.Switches()); got != 8 {
		t.Fatalf("switches = %d, want 8", got)
	}
	// Every leaf reaches every other leaf in exactly two hops via any spine.
	for _, rack := range ls.RackIDs[:5] {
		if got := len(ls.Graph.Edges(rack)); got != 8 {
			t.Fatalf("leaf %d has %d uplinks, want 8", rack, got)
		}
	}
	for _, sp := range ls.SpineIDs {
		if got := len(ls.Graph.Edges(sp)); got != 100 {
			t.Fatalf("spine %d has %d downlinks, want 100", sp, got)
		}
	}
}

func TestLeafSpineDefaultsAndErrors(t *testing.T) {
	if _, err := NewLeafSpine(LeafSpineConfig{}); err == nil {
		t.Fatal("zero leaves accepted")
	}
	ls, err := NewLeafSpine(LeafSpineConfig{Leaves: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ls.SpineIDs); got != 16 {
		t.Fatalf("default spines for 1024 leaves = %d, want 16", got)
	}
	small, err := NewLeafSpine(LeafSpineConfig{Leaves: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(small.SpineIDs); got != 4 {
		t.Fatalf("default spine floor = %d, want 4", got)
	}
}
