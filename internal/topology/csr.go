package topology

// Compressed-sparse-row view of a Graph and the reusable scratch behind
// the shortest-path sweeps. The adjacency is flattened once into parallel
// arrays (rowStart/dstID/capacity/distance/bandwidth) so the Dijkstra hot
// loop walks contiguous memory instead of a pointer-heavy [][]Edge, and
// per-sweep edge costs are materialized into a flat weight vector exactly
// once instead of invoking the EdgeCost closure at every relaxation. The
// graph keeps the CSR alongside the mutable adjacency: structural changes
// (AddNode/AddLink) invalidate it, SetBandwidth patches the bandwidth
// column in place, so steady-state sweeps never rebuild anything.

// csr is the flattened edge array view. Edge order is the adjacency
// order: all outgoing edges of node 0, then node 1, and so on, preserving
// per-node insertion order, so relaxation order matches the seed walker.
type csr struct {
	rowStart  []int32 // len n+1; edges of node u live in [rowStart[u], rowStart[u+1])
	dstID     []int32 // len m
	capacity  []float64
	distance  []float64
	bandwidth []float64
}

func buildCSR(g *Graph) *csr {
	n := len(g.nodes)
	m := 0
	for _, es := range g.adj {
		m += len(es)
	}
	c := &csr{
		rowStart:  make([]int32, n+1),
		dstID:     make([]int32, m),
		capacity:  make([]float64, m),
		distance:  make([]float64, m),
		bandwidth: make([]float64, m),
	}
	idx := int32(0)
	for u := 0; u < n; u++ {
		c.rowStart[u] = idx
		for _, e := range g.adj[u] {
			c.dstID[idx] = int32(e.To)
			c.capacity[idx] = e.Capacity
			c.distance[idx] = e.Distance
			c.bandwidth[idx] = e.Bandwidth
			idx++
		}
	}
	c.rowStart[n] = idx
	return c
}

// edgeIndex returns the index of the first directed edge from→to, or -1.
// Mirrors Graph.EdgeBetween's first-match rule for parallel links.
func (c *csr) edgeIndex(from, to int32) int32 {
	for i := c.rowStart[from]; i < c.rowStart[from+1]; i++ {
		if c.dstID[i] == to {
			return i
		}
	}
	return -1
}

// wEdge is one entry of a materialized weight vector: the edge cost
// interleaved with the destination, so the relaxation loop reads a single
// sequential stream (one bounds check, one cache line) instead of parallel
// weight and dstID arrays.
type wEdge struct {
	w float64
	v int32
}

// fillWeights materializes the edge-cost vector for one sweep: one
// EdgeCost call per directed edge, shared by every source of the sweep.
func (c *csr) fillWeights(w []wEdge, cost EdgeCost) {
	n := len(c.rowStart) - 1
	for u := 0; u < n; u++ {
		for i := c.rowStart[u]; i < c.rowStart[u+1]; i++ {
			w[i] = wEdge{cost(Edge{
				From:      u,
				To:        int(c.dstID[i]),
				Capacity:  c.capacity[i],
				Distance:  c.distance[i],
				Bandwidth: c.bandwidth[i],
			}), c.dstID[i]}
		}
	}
}

// treeNode is one entry of a shortest-path-tree row: tentative distance
// interleaved with the parent, so a relaxation touches a single cache
// line per target node instead of missing on separate dist and parent
// arrays (ties load the parent on the same line the distance came in on).
type treeNode struct {
	d float64
	p int32
}

// heapEnt is one 4-ary heap entry. Distance first: the sift loops compare
// on .d, and the layout keeps both fields in one cache line per slot.
type heapEnt struct {
	d float64
	v int32
}

// maxLevels bounds the bucket-level window of the main sweep's monotone
// queue. Fat-Tree and BCube sweeps keep at most a handful of distinct
// tentative distances pending (three on a pristine 48-pod fabric), so
// nearly every push and pop is an O(1) bucket operation; graphs with many
// distinct path costs overflow into the 4-ary heap and degrade gracefully
// to plain heap behavior.
const maxLevels = 16

// sweepScratch is the per-worker reusable state of one Dijkstra sweep: a
// bounded bucket-level window over an index-based 4-ary overflow heap (no
// container/heap, no interface boxing) plus epoch-stamped settled and
// block masks, so clearing between sweeps is a single counter increment
// rather than an O(n+m) wipe.
type sweepScratch struct {
	heap   []heapEnt
	lvlKey []float64 // len maxLevels; ascending keys of the active window
	lvlBkt [][]int32 // len maxLevels; lvlBkt[i] holds nodes at lvlKey[i];
	// slots beyond the active count park recycled bucket storage

	settled   []uint32 // settled[v] == epoch ⇒ v finalized this sweep
	epoch     uint32
	nodeMask  []uint32 // nodeMask[v] == maskEpoch ⇒ edges into v are blocked
	edgeMask  []uint32 // edgeMask[i] == maskEpoch ⇒ directed edge i is blocked
	maskEpoch uint32
}

// ensure grows the scratch to cover n nodes and m directed edges.
// Resetting maskEpoch to 0 restarts the epoch counter, so any mask array
// retained across the reset must be wiped: its old stamps would otherwise
// collide with the reissued low epochs and spuriously block nodes/edges.
func (s *sweepScratch) ensure(n, m int) {
	if len(s.settled) < n {
		s.settled = make([]uint32, n)
		s.nodeMask = make([]uint32, n)
		s.epoch, s.maskEpoch = 0, 0
		clear(s.edgeMask)
	}
	if len(s.edgeMask) < m {
		s.edgeMask = make([]uint32, m)
		s.maskEpoch = 0
		clear(s.nodeMask)
	}
	if cap(s.heap) < m+1 {
		s.heap = make([]heapEnt, 0, m+1)
	}
	if s.lvlBkt == nil {
		s.lvlKey = make([]float64, maxLevels)
		s.lvlBkt = make([][]int32, maxLevels)
	}
}

// nextEpoch advances the settled epoch, wiping the array on wraparound.
func (s *sweepScratch) nextEpoch() uint32 {
	s.epoch++
	if s.epoch == 0 {
		clear(s.settled)
		s.epoch = 1
	}
	return s.epoch
}

// nextMaskEpoch advances the block-mask epoch, wiping both mask arrays on
// wraparound. Entries from older epochs are dead without being cleared.
func (s *sweepScratch) nextMaskEpoch() uint32 {
	s.maskEpoch++
	if s.maskEpoch == 0 {
		clear(s.nodeMask)
		clear(s.edgeMask)
		s.maskEpoch = 1
	}
	return s.maskEpoch
}

// The 4-ary min-heap with lazy deletion (stale entries skipped via the
// settled epoch on pop) lives inline in the sweep loops below: the sift
// operations are too large for the inliner as methods, and the call
// overhead plus per-access field reloads showed up as ~30% of the sweep
// profile. Both loops work on a local copy of the heap slice and write it
// back (with its grown capacity) on exit.

// sweep runs one single-source Dijkstra over the CSR with the
// materialized weight vector, writing into the caller's dist/parent rows.
// Ties in path cost resolve to the smallest predecessor ID, making the
// shortest-path tree a pure function of the graph and weights rather than
// of heap pop order; the reference walker applies the same rule, so the
// two implementations are bit-identical.
// An Inf edge weight needs no explicit skip here: d is always finite, so
// nd becomes Inf, which can neither improve dist[v] (Inf < x is false for
// every x) nor steal the tie (nd == dv == Inf implies parent[v] == -1,
// and u < -1 is impossible) — exactly the no-op the seed's `continue`
// produced, minus a branch per edge. sweepMasked keeps its skips because
// the epoch masks are not encoded in the weights.
func (s *sweepScratch) sweep(c *csr, src int32, w []wEdge, tree []treeNode) {
	for i := range tree {
		tree[i] = treeNode{Inf, -1}
	}
	ep := s.nextEpoch()
	settled := s.settled
	rowStart := c.rowStart
	lk := s.lvlKey
	lb := s.lvlBkt
	ln := 0
	tree[src].d = 0
	h := s.heap[:0]
	h = append(h, heapEnt{0, src})
	for ln > 0 || len(h) > 0 {
		var u int32
		var d float64
		if ln > 0 && (len(h) == 0 || lk[0] <= h[0].d) {
			// Bucket fast path: the head level is the global minimum.
			b := lb[0]
			u, d = b[len(b)-1], lk[0]
			b = b[:len(b)-1]
			lb[0] = b
			if len(b) == 0 {
				// Retire the level, parking its storage past the window.
				ln--
				copy(lk[:ln], lk[1:ln+1])
				copy(lb[:ln], lb[1:ln+1])
				lb[ln] = b
			}
		} else {
			u, d = h[0].v, h[0].d
			last := len(h) - 1
			e := h[last]
			h = h[:last]
			// Hole sift-down: walk the min-child chain moving children
			// up, and drop the displaced tail entry into the final hole —
			// half the stores of swap-based sifting and one fewer compare
			// per level.
			i := 0
			for {
				c0 := i<<2 + 1
				if c0 >= last {
					break
				}
				min := c0
				if c0+4 <= last {
					if h[c0+1].d < h[min].d {
						min = c0 + 1
					}
					if h[c0+2].d < h[min].d {
						min = c0 + 2
					}
					if h[c0+3].d < h[min].d {
						min = c0 + 3
					}
				} else {
					for c1 := c0 + 1; c1 < last; c1++ {
						if h[c1].d < h[min].d {
							min = c1
						}
					}
				}
				if h[min].d >= e.d {
					break
				}
				h[i] = h[min]
				i = min
			}
			if last > 0 {
				h[i] = e
			}
		}
		if settled[u] == ep {
			continue
		}
		settled[u] = ep
		for _, e := range w[rowStart[u]:rowStart[u+1]] {
			nd := d + e.w
			tv := &tree[e.v]
			if nd < tv.d {
				tv.d = nd
				tv.p = u
				// Push: match or insert a bucket level (scanning from the
				// tail — new keys are almost always at or past it), or
				// overflow into the heap when the window is full.
				p := ln
				for p > 0 && lk[p-1] > nd {
					p--
				}
				if p > 0 && lk[p-1] == nd {
					lb[p-1] = append(lb[p-1], e.v)
				} else if ln < maxLevels {
					fb := lb[ln]
					copy(lk[p+1:ln+1], lk[p:ln])
					copy(lb[p+1:ln+1], lb[p:ln])
					lk[p] = nd
					lb[p] = append(fb[:0], e.v)
					ln++
				} else {
					h = append(h, heapEnt{nd, e.v})
					i := len(h) - 1
					for i > 0 {
						p := (i - 1) >> 2
						if h[i].d >= h[p].d {
							break
						}
						h[i], h[p] = h[p], h[i]
						i = p
					}
				}
			} else if nd == tv.d && u < tv.p && settled[e.v] != ep {
				// Tie updates stop once v settles: with a zero-weight
				// edge between two equal-distance nodes, a post-settle
				// steal lets each adopt the other as parent — a cycle
				// that hangs Path reconstruction. Positive weights are
				// unaffected (every equal-cost predecessor pops strictly
				// before v settles). The reference walker applies the
				// identical guard.
				tv.p = u
			}
		}
	}
	s.heap = h[:0]
}

// sweepMasked is sweep with the epoch block masks active: edges whose
// index is stamped with the current mask epoch and edges into stamped
// nodes are skipped. Used by the Yen spur searches and the hot-switch
// avoidance primitives in place of per-call filter closures and maps.
func (s *sweepScratch) sweepMasked(c *csr, src int32, w []wEdge, tree []treeNode) {
	for i := range tree {
		tree[i] = treeNode{Inf, -1}
	}
	ep := s.nextEpoch()
	mep := s.maskEpoch
	settled := s.settled
	nodeMask := s.nodeMask
	edgeMask := s.edgeMask
	rowStart := c.rowStart
	tree[src].d = 0
	h := append(s.heap[:0], heapEnt{0, src})
	for len(h) > 0 {
		u, d := h[0].v, h[0].d
		last := len(h) - 1
		e := h[last]
		h = h[:last]
		// Hole sift-down: walk the min-child chain moving children up, and
		// drop the displaced tail entry into the final hole — half the
		// stores of swap-based sifting and one fewer compare per level.
		i := 0
		for {
			c0 := i<<2 + 1
			if c0 >= last {
				break
			}
			min := c0
			if c0+4 <= last {
				if h[c0+1].d < h[min].d {
					min = c0 + 1
				}
				if h[c0+2].d < h[min].d {
					min = c0 + 2
				}
				if h[c0+3].d < h[min].d {
					min = c0 + 3
				}
			} else {
				for c1 := c0 + 1; c1 < last; c1++ {
					if h[c1].d < h[min].d {
						min = c1
					}
				}
			}
			if h[min].d >= e.d {
				break
			}
			h[i] = h[min]
			i = min
		}
		if last > 0 {
			h[i] = e
		}
		if settled[u] == ep {
			continue
		}
		settled[u] = ep
		for i := rowStart[u]; i < rowStart[u+1]; i++ {
			if edgeMask[i] == mep {
				continue
			}
			wc := w[i].w
			if wc == Inf {
				continue
			}
			v := w[i].v
			if nodeMask[v] == mep {
				continue
			}
			nd := d + wc
			tv := &tree[v]
			if nd < tv.d {
				tv.d = nd
				tv.p = u
				h = append(h, heapEnt{nd, v})
				i := len(h) - 1
				for i > 0 {
					p := (i - 1) >> 2
					if h[i].d >= h[p].d {
						break
					}
					h[i], h[p] = h[p], h[i]
					i = p
				}
			} else if nd == tv.d && u < tv.p && settled[v] != ep {
				// Same settled guard as sweep: no parent steals after v
				// settles, preventing zero-weight-edge parent cycles.
				tv.p = u
			}
		}
	}
	s.heap = h[:0]
}
