package topology

import "fmt"

// FatTreeConfig parameterizes a k-ary Fat-Tree (Al-Fares et al., the
// paper's reference [27]) with the simulation settings of Sec. VI.B:
// available bandwidth 10 between core and aggregation switches, 1 between
// aggregation switches and ToRs.
type FatTreeConfig struct {
	Pods int // k: number of pods; must be even and >= 2

	EdgeCapacity float64 // ToR–aggregation link capacity (default 1)
	CoreCapacity float64 // aggregation–core link capacity (default 10)
	EdgeDistance float64 // physical distance of a ToR–agg link (default 1)
	CoreDistance float64 // physical distance of an agg–core link (default 2)
}

func (c FatTreeConfig) withDefaults() FatTreeConfig {
	if c.EdgeCapacity == 0 {
		c.EdgeCapacity = 1
	}
	if c.CoreCapacity == 0 {
		c.CoreCapacity = 10
	}
	if c.EdgeDistance == 0 {
		c.EdgeDistance = 1
	}
	if c.CoreDistance == 0 {
		c.CoreDistance = 2
	}
	return c
}

// FatTree describes a built Fat-Tree topology.
type FatTree struct {
	*Graph
	Config FatTreeConfig

	// RackIDs[pod][i] is the node ID of the i-th ToR in the pod.
	RackIDs [][]int
	// AggIDs[pod][i] is the node ID of the i-th aggregation switch.
	AggIDs [][]int
	// CoreIDs[g][i] is the node ID of core switch i in core group g.
	CoreIDs [][]int
}

// NewFatTree builds a k-pod Fat-Tree: each pod has k/2 ToR (edge) racks
// and k/2 aggregation switches; there are (k/2)² core switches arranged
// in k/2 groups of k/2. Every ToR links to every aggregation switch in
// its pod; aggregation switch j links to all core switches of group j.
func NewFatTree(cfg FatTreeConfig) (*FatTree, error) {
	if cfg.Pods < 2 || cfg.Pods%2 != 0 {
		return nil, fmt.Errorf("topology: Fat-Tree pods must be even and >= 2, got %d", cfg.Pods)
	}
	cfg = cfg.withDefaults()
	k := cfg.Pods
	half := k / 2
	g := NewGraph()
	ft := &FatTree{Graph: g, Config: cfg}

	// Core switches: half groups of half switches.
	ft.CoreIDs = make([][]int, half)
	for grp := 0; grp < half; grp++ {
		ft.CoreIDs[grp] = make([]int, half)
		for i := 0; i < half; i++ {
			ft.CoreIDs[grp][i] = g.AddNode(Switch, fmt.Sprintf("core-%d-%d", grp, i), -1, 2)
		}
	}
	ft.RackIDs = make([][]int, k)
	ft.AggIDs = make([][]int, k)
	for pod := 0; pod < k; pod++ {
		ft.AggIDs[pod] = make([]int, half)
		ft.RackIDs[pod] = make([]int, half)
		for j := 0; j < half; j++ {
			ft.AggIDs[pod][j] = g.AddNode(Switch, fmt.Sprintf("agg-%d-%d", pod, j), pod, 1)
		}
		for i := 0; i < half; i++ {
			ft.RackIDs[pod][i] = g.AddNode(Rack, fmt.Sprintf("tor-%d-%d", pod, i), pod, 0)
		}
		// Full bipartite ToR–aggregation wiring within the pod.
		for i := 0; i < half; i++ {
			for j := 0; j < half; j++ {
				if err := g.AddLink(ft.RackIDs[pod][i], ft.AggIDs[pod][j], cfg.EdgeCapacity, cfg.EdgeDistance); err != nil {
					return nil, err
				}
			}
		}
		// Aggregation j connects to every core switch in group j.
		for j := 0; j < half; j++ {
			for i := 0; i < half; i++ {
				if err := g.AddLink(ft.AggIDs[pod][j], ft.CoreIDs[j][i], cfg.CoreCapacity, cfg.CoreDistance); err != nil {
					return nil, err
				}
			}
		}
	}
	return ft, nil
}

// NumRacks returns the total number of racks: k²/2.
func (f *FatTree) NumRacks() int { return f.Config.Pods * f.Config.Pods / 2 }
