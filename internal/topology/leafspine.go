package topology

import "fmt"

// LeafSpineConfig parameterizes a two-tier leaf–spine fabric: every leaf
// (ToR rack) links to every spine. Node and edge counts grow linearly in
// Leaves (× Spines), which is what makes 5,000-rack scale scenarios
// affordable — a Fat-Tree with that many racks carries ~1.5× as many
// switches and a deeper diameter for no benefit to the scale harness.
type LeafSpineConfig struct {
	Leaves int // number of leaf (rack) switches; >= 1
	Spines int // number of spine switches; default max(4, Leaves/64), capped at 64

	LeafCapacity float64 // leaf–spine link capacity (default 1)
	LeafDistance float64 // physical distance of a leaf–spine link (default 1)
}

func (c LeafSpineConfig) withDefaults() LeafSpineConfig {
	if c.Spines == 0 {
		c.Spines = c.Leaves / 64
		if c.Spines < 4 {
			c.Spines = 4
		}
		if c.Spines > 64 {
			c.Spines = 64
		}
	}
	if c.LeafCapacity == 0 {
		c.LeafCapacity = 1
	}
	if c.LeafDistance == 0 {
		c.LeafDistance = 1
	}
	return c
}

// LeafSpine describes a built leaf–spine topology.
type LeafSpine struct {
	*Graph
	Config LeafSpineConfig

	RackIDs  []int // node ID of each leaf, in leaf order
	SpineIDs []int // node ID of each spine
}

// NewLeafSpine builds the fabric: Spines spine switches at level 1 and
// Leaves rack switches at level 0, fully bipartite.
func NewLeafSpine(cfg LeafSpineConfig) (*LeafSpine, error) {
	if cfg.Leaves < 1 {
		return nil, fmt.Errorf("topology: leaf-spine needs at least 1 leaf, got %d", cfg.Leaves)
	}
	if cfg.Spines < 0 {
		return nil, fmt.Errorf("topology: leaf-spine spines must be >= 0 (0 = default), got %d", cfg.Spines)
	}
	cfg = cfg.withDefaults()
	g := NewGraph()
	ls := &LeafSpine{Graph: g, Config: cfg}
	ls.SpineIDs = make([]int, cfg.Spines)
	for i := range ls.SpineIDs {
		ls.SpineIDs[i] = g.AddNode(Switch, fmt.Sprintf("spine-%d", i), -1, 1)
	}
	ls.RackIDs = make([]int, cfg.Leaves)
	for i := range ls.RackIDs {
		ls.RackIDs[i] = g.AddNode(Rack, fmt.Sprintf("leaf-%d", i), i, 0)
		for _, sp := range ls.SpineIDs {
			if err := g.AddLink(ls.RackIDs[i], sp, cfg.LeafCapacity, cfg.LeafDistance); err != nil {
				return nil, err
			}
		}
	}
	return ls, nil
}

// NumRacks returns the number of leaves.
func (l *LeafSpine) NumRacks() int { return l.Config.Leaves }
