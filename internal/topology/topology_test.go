package topology

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAddNodeAndLink(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(Rack, "a", 0, 0)
	b := g.AddNode(Switch, "b", -1, 1)
	if err := g.AddLink(a, b, 10, 2); err != nil {
		t.Fatal(err)
	}
	e, ok := g.EdgeBetween(a, b)
	if !ok || e.Capacity != 10 || e.Distance != 2 || e.Bandwidth != 10 {
		t.Fatalf("edge = %+v, ok=%v", e, ok)
	}
	// Reverse direction must exist too.
	if _, ok := g.EdgeBetween(b, a); !ok {
		t.Fatal("reverse edge missing")
	}
}

func TestAddLinkErrors(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(Rack, "a", 0, 0)
	if err := g.AddLink(a, 5, 1, 1); err == nil {
		t.Error("out-of-range node accepted")
	}
	if err := g.AddLink(a, a, 1, 1); err == nil {
		t.Error("self-loop accepted")
	}
}

func TestSetBandwidth(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(Rack, "a", 0, 0)
	b := g.AddNode(Rack, "b", 0, 0)
	if err := g.AddLink(a, b, 10, 1); err != nil {
		t.Fatal(err)
	}
	if !g.SetBandwidth(a, b, 3) {
		t.Fatal("SetBandwidth failed")
	}
	e, _ := g.EdgeBetween(a, b)
	er, _ := g.EdgeBetween(b, a)
	if e.Bandwidth != 3 || er.Bandwidth != 3 {
		t.Fatalf("bandwidth not updated both ways: %v / %v", e.Bandwidth, er.Bandwidth)
	}
	if g.SetBandwidth(a, 99, 1) {
		t.Error("SetBandwidth on missing link should return false")
	}
}

func TestRacksAndSwitches(t *testing.T) {
	g := NewGraph()
	g.AddNode(Rack, "r0", 0, 0)
	g.AddNode(Switch, "s0", -1, 1)
	g.AddNode(Rack, "r1", 0, 0)
	if len(g.Racks()) != 2 || len(g.Switches()) != 1 {
		t.Fatalf("racks=%v switches=%v", g.Racks(), g.Switches())
	}
}

func TestNodeKindString(t *testing.T) {
	if Rack.String() != "rack" || Switch.String() != "switch" {
		t.Fatal("kind strings wrong")
	}
	if NodeKind(9).String() == "" {
		t.Fatal("unknown kind should still render")
	}
}

func TestFatTreeValidation(t *testing.T) {
	if _, err := NewFatTree(FatTreeConfig{Pods: 3}); err == nil {
		t.Error("odd pods accepted")
	}
	if _, err := NewFatTree(FatTreeConfig{Pods: 0}); err == nil {
		t.Error("zero pods accepted")
	}
}

func TestFatTreeCounts(t *testing.T) {
	for _, k := range []int{4, 8, 16} {
		ft, err := NewFatTree(FatTreeConfig{Pods: k})
		if err != nil {
			t.Fatal(err)
		}
		half := k / 2
		wantRacks := k * half
		if got := len(ft.Racks()); got != wantRacks {
			t.Errorf("k=%d racks = %d, want %d", k, got, wantRacks)
		}
		if ft.NumRacks() != wantRacks {
			t.Errorf("NumRacks = %d, want %d", ft.NumRacks(), wantRacks)
		}
		wantSwitches := k*half + half*half // agg + core
		if got := len(ft.Switches()); got != wantSwitches {
			t.Errorf("k=%d switches = %d, want %d", k, got, wantSwitches)
		}
	}
}

func TestFatTreeWiring(t *testing.T) {
	ft, err := NewFatTree(FatTreeConfig{Pods: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Every ToR connects to every agg in its pod with edge capacity 1.
	for pod := range ft.RackIDs {
		for _, tor := range ft.RackIDs[pod] {
			for _, agg := range ft.AggIDs[pod] {
				e, ok := ft.EdgeBetween(tor, agg)
				if !ok {
					t.Fatalf("missing ToR-agg link pod %d", pod)
				}
				if e.Capacity != 1 {
					t.Fatalf("edge capacity = %v, want 1", e.Capacity)
				}
			}
		}
	}
	// Agg j connects to core group j with capacity 10.
	for pod := range ft.AggIDs {
		for j, agg := range ft.AggIDs[pod] {
			for _, core := range ft.CoreIDs[j] {
				e, ok := ft.EdgeBetween(agg, core)
				if !ok {
					t.Fatalf("missing agg-core link pod %d group %d", pod, j)
				}
				if e.Capacity != 10 {
					t.Fatalf("core capacity = %v, want 10", e.Capacity)
				}
			}
		}
	}
}

func TestFatTreeConnectivity(t *testing.T) {
	ft, err := NewFatTree(FatTreeConfig{Pods: 8})
	if err != nil {
		t.Fatal(err)
	}
	ap := FloydWarshall(ft.Graph, DistanceCost)
	racks := ft.Racks()
	for _, a := range racks {
		for _, b := range racks {
			if math.IsInf(ap.Dist(a, b), 1) {
				t.Fatalf("racks %d and %d disconnected", a, b)
			}
		}
	}
	// Same-pod racks are 2 hops (distance 2); cross-pod are 2+2+2+... via
	// core: tor-agg(1) agg-core(2) core-agg(2) agg-tor(1) = 6.
	samePod := ap.Dist(ft.RackIDs[0][0], ft.RackIDs[0][1])
	crossPod := ap.Dist(ft.RackIDs[0][0], ft.RackIDs[1][0])
	if samePod != 2 {
		t.Errorf("same-pod distance = %v, want 2", samePod)
	}
	if crossPod != 6 {
		t.Errorf("cross-pod distance = %v, want 6", crossPod)
	}
}

func TestBCubeValidation(t *testing.T) {
	if _, err := NewBCube(BCubeConfig{SwitchesPerLevel: 1}); err == nil {
		t.Error("n=1 accepted")
	}
}

func TestBCubeCounts(t *testing.T) {
	for _, n := range []int{4, 8} {
		b, err := NewBCube(BCubeConfig{SwitchesPerLevel: n})
		if err != nil {
			t.Fatal(err)
		}
		if len(b.Racks()) != n*n || b.NumRacks() != n*n {
			t.Errorf("n=%d racks = %d, want %d", n, len(b.Racks()), n*n)
		}
		if len(b.Switches()) != 2*n {
			t.Errorf("n=%d switches = %d, want %d", n, len(b.Switches()), 2*n)
		}
	}
}

func TestBCubeConnectivity(t *testing.T) {
	b, err := NewBCube(BCubeConfig{SwitchesPerLevel: 4})
	if err != nil {
		t.Fatal(err)
	}
	ap := FloydWarshall(b.Graph, DistanceCost)
	// Same group (share level-0 switch): distance 2 (1+1).
	if d := ap.Dist(b.RackIDs[0][0], b.RackIDs[0][1]); d != 2 {
		t.Errorf("same-group distance = %v, want 2", d)
	}
	// Same level-1 switch: distance 4 (2+2).
	if d := ap.Dist(b.RackIDs[0][0], b.RackIDs[1][0]); d != 4 {
		t.Errorf("same-l1 distance = %v, want 4", d)
	}
	// Neither shared: must relay through an intermediate server, e.g.
	// (0,0)→l0→(0,1)→l1→(1,1): 1+1+2+2 = 6.
	if d := ap.Dist(b.RackIDs[0][0], b.RackIDs[1][1]); d != 6 {
		t.Errorf("cross distance = %v, want 6", d)
	}
}

func TestBCubeOneHopRegion(t *testing.T) {
	n := 4
	b, err := NewBCube(BCubeConfig{SwitchesPerLevel: n})
	if err != nil {
		t.Fatal(err)
	}
	// One switch hop from server (0,0): the n−1 peers of level-0 switch 0
	// plus the n−1 peers of level-1 switch 0.
	nb := b.RackNeighbors(b.RackIDs[0][0], 1)
	if len(nb) != 2*(n-1) {
		t.Fatalf("one-hop region = %d nodes, want %d", len(nb), 2*(n-1))
	}
}

func TestFloydWarshallSimpleChain(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(Rack, "a", 0, 0)
	b := g.AddNode(Switch, "b", 0, 1)
	c := g.AddNode(Rack, "c", 0, 0)
	if err := g.AddLink(a, b, 1, 3); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(b, c, 1, 4); err != nil {
		t.Fatal(err)
	}
	ap := FloydWarshall(g, DistanceCost)
	if ap.Dist(a, c) != 7 {
		t.Fatalf("Dist(a,c) = %v, want 7", ap.Dist(a, c))
	}
	path := ap.Path(a, c)
	if len(path) != 3 || path[0] != a || path[1] != b || path[2] != c {
		t.Fatalf("Path = %v", path)
	}
	if ap.Dist(a, a) != 0 {
		t.Fatal("self distance nonzero")
	}
}

func TestFloydWarshallPicksShorterRoute(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(Rack, "a", 0, 0)
	b := g.AddNode(Switch, "b", 0, 1)
	c := g.AddNode(Rack, "c", 0, 0)
	// Direct long link and an indirect short route.
	if err := g.AddLink(a, c, 1, 10); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(a, b, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(b, c, 1, 3); err != nil {
		t.Fatal(err)
	}
	ap := FloydWarshall(g, DistanceCost)
	if ap.Dist(a, c) != 5 {
		t.Fatalf("Dist = %v, want 5 via b", ap.Dist(a, c))
	}
}

func TestFloydWarshallDisconnected(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(Rack, "a", 0, 0)
	b := g.AddNode(Rack, "b", 1, 0)
	ap := FloydWarshall(g, DistanceCost)
	if !math.IsInf(ap.Dist(a, b), 1) {
		t.Fatal("disconnected nodes should be Inf apart")
	}
	if ap.Path(a, b) != nil {
		t.Fatal("path between disconnected nodes should be nil")
	}
}

func TestRackNeighborsOneHop(t *testing.T) {
	ft, err := NewFatTree(FatTreeConfig{Pods: 4})
	if err != nil {
		t.Fatal(err)
	}
	// One switch hop from a ToR reaches the other ToRs in its pod (via agg).
	tor := ft.RackIDs[0][0]
	nb := ft.RackNeighbors(tor, 1)
	want := map[int]bool{}
	for _, r := range ft.RackIDs[0] {
		if r != tor {
			want[r] = true
		}
	}
	if len(nb) != len(want) {
		t.Fatalf("one-hop neighbors = %v, want pod peers %v", nb, want)
	}
	for _, id := range nb {
		if !want[id] {
			t.Fatalf("unexpected neighbor %d", id)
		}
	}
	// Three switch hops (ToR→agg→core→agg→ToR) reach cross-pod racks.
	nb3 := ft.RackNeighbors(tor, 3)
	if len(nb3) != ft.NumRacks()-1 {
		t.Fatalf("three-hop neighbors = %d, want %d", len(nb3), ft.NumRacks()-1)
	}
}

// Property: Floyd–Warshall distances satisfy the triangle inequality.
func TestFloydTriangleInequalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := int(seed%5+3) % 8
		if n < 3 {
			n = 3
		}
		g := NewGraph()
		for i := 0; i < n; i++ {
			g.AddNode(Rack, "", 0, 0)
		}
		s := seed
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			v := float64(((s>>11)%100+100)%100) + 1
			return v
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if (s+int64(i*j))%3 != 0 {
					if err := g.AddLink(i, j, 1, next()); err != nil {
						return false
					}
				}
			}
		}
		ap := FloydWarshall(g, DistanceCost)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				for k := 0; k < n; k++ {
					dij, dik, dkj := ap.Dist(i, j), ap.Dist(i, k), ap.Dist(k, j)
					if dik+dkj < dij-1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: a reconstructed path's summed edge distances equal Dist.
func TestFloydPathConsistencyProperty(t *testing.T) {
	ft, err := NewFatTree(FatTreeConfig{Pods: 6})
	if err != nil {
		t.Fatal(err)
	}
	ap := FloydWarshall(ft.Graph, DistanceCost)
	racks := ft.Racks()
	for _, a := range racks {
		for _, b := range racks {
			p := ap.Path(a, b)
			if p == nil {
				t.Fatalf("nil path %d->%d", a, b)
			}
			sum := 0.0
			for i := 1; i < len(p); i++ {
				e, ok := ft.EdgeBetween(p[i-1], p[i])
				if !ok {
					t.Fatalf("path uses nonexistent edge %d-%d", p[i-1], p[i])
				}
				sum += e.Distance
			}
			if math.Abs(sum-ap.Dist(a, b)) > 1e-9 {
				t.Fatalf("path sum %v != dist %v for %d->%d", sum, ap.Dist(a, b), a, b)
			}
		}
	}
}
