package ingest

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"sheriff/internal/quant"
	"sheriff/internal/traces"
)

func TestParseTriageMode(t *testing.T) {
	for s, want := range map[string]TriageMode{
		"": TriageFloat, "float": TriageFloat, "Float": TriageFloat,
		"quantized": TriageQuant, "quant": TriageQuant, "fixed-point": TriageQuant,
	} {
		got, err := ParseTriageMode(s)
		if err != nil || got != want {
			t.Errorf("ParseTriageMode(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseTriageMode("analog"); err == nil {
		t.Error("unknown mode accepted")
	}
	if TriageFloat.String() != "float" || TriageQuant.String() != "quantized" {
		t.Errorf("mode names: %q %q", TriageFloat, TriageQuant)
	}
}

func TestQuantOptionsValidation(t *testing.T) {
	if _, err := New([][]int{{0}}, Options{Mode: TriageMode(7)}); err == nil {
		t.Error("unknown triage mode accepted")
	}
	if _, err := New([][]int{{0}}, Options{Mode: TriageQuant, Quant: quant.Coeffs{AlphaNum: -1}}); err == nil {
		t.Error("invalid coefficients accepted")
	}
	// Zero coefficients under TriageQuant snap to the float path's α/β.
	s := build(t, Options{Mode: TriageQuant})
	if got, want := s.opts.Quant, quant.Snap(0.5, 0.3, quant.DefaultShift); got != want {
		t.Errorf("defaulted coefficients %+v, want %+v", got, want)
	}
}

// TestQuantTriageAlertFlow runs the edge-trigger scenario on the
// quantized path: same latch discipline as float, alert values carry the
// fixed-point signal.
func TestQuantTriageAlertFlow(t *testing.T) {
	s := build(t, Options{Mode: TriageQuant})
	feed := func(vm int, p traces.Profile, times int) {
		t.Helper()
		for i := 0; i < times; i++ {
			if ok, err := s.Offer(Update{VM: vm, Profile: p}); err != nil || !ok {
				t.Fatalf("offer vm %d: %v %v", vm, ok, err)
			}
		}
	}
	feed(4, hot(), 3)
	feed(1, hot(), 3)
	feed(0, cool(), 3)
	s.ProcessPending()
	alerts := s.Poll()
	if len(alerts) != 2 || alerts[0].VM != 1 || alerts[1].VM != 4 {
		t.Fatalf("quantized alerts %+v, want VMs 1 and 4", alerts)
	}
	if alerts[0].Value <= 0.9 {
		t.Fatalf("alert value %v not above threshold", alerts[0].Value)
	}
	// Edge-triggered: no duplicate while latched, re-alert after recovery.
	feed(1, hot(), 2)
	s.ProcessPending()
	if got := s.Poll(); len(got) != 0 {
		t.Fatalf("duplicate quantized alerts: %+v", got)
	}
	feed(1, cool(), 6)
	s.ProcessPending()
	s.Poll()
	feed(1, hot(), 4)
	s.ProcessPending()
	if got := s.Poll(); len(got) != 1 || got[0].VM != 1 {
		t.Fatalf("re-alert after recovery missing: %+v", got)
	}
}

// TestQuantMatchesFloatAtDefaults pins the approximation quality of the
// default (undistilled) coefficients: on a realistic workload stream the
// two modes raise alerts for the same VMs.
func TestQuantMatchesFloatAtDefaults(t *testing.T) {
	fs := build(t, Options{})
	qs := build(t, Options{Mode: TriageQuant})
	gen := traces.NewWorkloadGen(24, 7)
	seen := map[string]map[int]bool{"float": {}, "quant": {}}
	for step := 0; step < 200; step++ {
		for vm := 0; vm < 5; vm++ {
			p := gen.Next()
			for _, svc := range []*Service{fs, qs} {
				if ok, err := svc.Offer(Update{VM: vm, Profile: p}); err != nil || !ok {
					t.Fatalf("offer: %v %v", ok, err)
				}
			}
		}
		fs.ProcessPending()
		qs.ProcessPending()
		for _, a := range fs.Poll() {
			seen["float"][a.VM] = true
		}
		for _, a := range qs.Poll() {
			seen["quant"][a.VM] = true
		}
	}
	if fmt.Sprint(seen["float"]) != fmt.Sprint(seen["quant"]) {
		t.Fatalf("alerted VM sets diverged:\n float: %v\n quant: %v", seen["float"], seen["quant"])
	}
}

// TestDrainQuantMatchesHolt pins the unrolled drain recursion to
// quant.(*Holt).Observe bit for bit: the service's in-loop integer math
// and the method the distiller grades offline must be the same filter,
// including at the saturation rails (huge Lead drives the signal clamp).
func TestDrainQuantMatchesHolt(t *testing.T) {
	// Several coefficient shapes spanning both drain loops: the
	// (Shift=DefaultShift, Lead=1) case takes the specialized
	// drainQuantDefault path, every other shape the generic loop.
	for _, coeffs := range []quant.Coeffs{
		{AlphaNum: 200, BetaNum: 90, Shift: 8, Lead: 1},
		{AlphaNum: 200, BetaNum: 90, Shift: 8, Lead: 30000},
		{AlphaNum: 700, BetaNum: 150, Shift: 11, Lead: 1},
		{AlphaNum: 1, BetaNum: 65536, Shift: 16, Lead: 4},
	} {
		s, err := New([][]int{{0}}, Options{Mode: TriageQuant, Quant: coeffs, Clock: fixedClock(), HotThreshold: 1e9})
		if err != nil {
			t.Fatal(err)
		}
		var ref quant.Holt
		rng := rand.New(rand.NewSource(21))
		for i := 0; i < 5000; i++ {
			v := rng.Float64() * 2e5 // wide swings: the Lead extrapolation hits the rails
			s.Offer(Update{VM: 0, Profile: traces.Profile{CPU: v}})
			s.ProcessPending()
			ref.Observe(quant.FromFloat(v), coeffs)
			if got := s.shard[0].qslots[0].h; got != ref {
				t.Fatalf("coeffs %+v step %d: drain state %+v, Holt.Observe %+v", coeffs, i, got, ref)
			}
		}
	}
}

// quantState flattens every quantized slot's raw int32 words.
func quantState(s *Service) []quant.Holt {
	var out []quant.Holt
	for _, sh := range s.shard {
		for _, sl := range sh.qslots {
			out = append(out, sl.h)
		}
	}
	return out
}

// TestQuantSnapshotRoundTrip is the same-mode restart contract for the
// quantized path: the restored int32 state is bit-identical, through a
// real JSON encode.
func TestQuantSnapshotRoundTrip(t *testing.T) {
	s := build(t, Options{Mode: TriageQuant})
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		s.Offer(Update{VM: rng.Intn(5), Profile: traces.Profile{CPU: rng.Float64(), Mem: rng.Float64()}})
	}
	s.ProcessPending()
	s.Poll()
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != SnapshotVersion || snap.Mode != "quantized" {
		t.Fatalf("snapshot header: version %d mode %q", snap.Version, snap.Mode)
	}
	blob, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var loaded Snapshot
	if err := json.Unmarshal(blob, &loaded); err != nil {
		t.Fatal(err)
	}
	restored := build(t, Options{Mode: TriageQuant})
	if err := restored.Restore(&loaded); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(quantState(restored)) != fmt.Sprint(quantState(s)) {
		t.Fatalf("restored quantized state not bit-identical:\n want %v\n got  %v", quantState(s), quantState(restored))
	}
}

// TestCrossModeSnapshotRestore pins the conversion contract in both
// directions: float snapshots restore into quantized services
// deterministically, and quantized state survives a quantized → float →
// quantized round trip bit-exactly (Float() is lossless and
// FromFloat(Float(q)) == q).
func TestCrossModeSnapshotRestore(t *testing.T) {
	run := func(s *Service) *Snapshot {
		t.Helper()
		rng := rand.New(rand.NewSource(12))
		for i := 0; i < 300; i++ {
			s.Offer(Update{VM: rng.Intn(5), Profile: traces.Profile{CPU: rng.Float64(), Mem: rng.Float64()}})
		}
		s.ProcessPending()
		s.Poll()
		snap, err := s.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		return snap
	}

	// float → quantized: deterministic (two restores agree) and exact where
	// exactness is possible — each slot equals FromFloat of the float state.
	fsnap := run(build(t, Options{}))
	q1, q2 := build(t, Options{Mode: TriageQuant}), build(t, Options{Mode: TriageQuant})
	if err := q1.Restore(fsnap); err != nil {
		t.Fatal(err)
	}
	if err := q2.Restore(fsnap); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(quantState(q1)) != fmt.Sprint(quantState(q2)) {
		t.Fatal("float → quantized restore is not deterministic")
	}
	i := 0
	for _, ss := range fsnap.Shards {
		for _, sl := range ss.Slots {
			got := quantState(q1)[i]
			if got.Level != quant.FromFloat(sl.Level) || got.Trend != quant.FromFloat(sl.Trend) {
				t.Fatalf("VM %d: float state (%v, %v) quantized to (%v, %v)", sl.VM, sl.Level, sl.Trend, got.Level, got.Trend)
			}
			i++
		}
	}

	// quantized → float → quantized: bit-exact.
	qsnap := run(build(t, Options{Mode: TriageQuant}))
	fsvc := build(t, Options{})
	if err := fsvc.Restore(qsnap); err != nil {
		t.Fatal(err)
	}
	s2, err := fsvc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	back := build(t, Options{Mode: TriageQuant})
	if err := back.Restore(s2); err != nil {
		t.Fatal(err)
	}
	orig := build(t, Options{Mode: TriageQuant})
	if err := orig.Restore(qsnap); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(quantState(back)) != fmt.Sprint(quantState(orig)) {
		t.Fatalf("quant → float → quant round trip not bit-exact:\n want %v\n got  %v", quantState(orig), quantState(back))
	}
}

// TestV1SnapshotRestores pins backward compatibility: a version-1 (float,
// pre-Mode) snapshot restores into both modes.
func TestV1SnapshotRestores(t *testing.T) {
	s := build(t, Options{})
	s.Offer(Update{VM: 0, Profile: cool()})
	s.ProcessPending()
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snap.Version, snap.Mode = 1, ""
	for _, opts := range []Options{{}, {Mode: TriageQuant}} {
		r := build(t, opts)
		if err := r.Restore(snap); err != nil {
			t.Fatalf("v1 restore into %v: %v", opts.Mode, err)
		}
	}
	snap.Version = 2
	snap.Mode = "analog"
	r := build(t, Options{})
	if err := r.Restore(snap); err == nil {
		t.Fatal("v2 snapshot with bad mode accepted")
	}
}
