// The quantized triage path: the integer twin of the float Holt drain
// loop, built on internal/quant. A service in TriageQuant mode keeps one
// quant.Holt (two int32 words) per VM instead of the float level/trend
// pair; offers convert the observed stress to Q16.16 once at the intake
// boundary, and from there the smoothing recursion, the lead
// extrapolation, and the threshold compare are integer-only — the shape
// of a pipeline that drops onto a programmable-switch datapath. The
// coefficients are dyadic rationals distilled offline from the deep
// ARIMA/NARNET pool's alerts (experiments.DistillQuant), so the cheap
// filter front-runs the expensive pool instead of merely approximating
// the float filter.
package ingest

import (
	"fmt"
	"math"
	"strings"
	"time"

	"sheriff/internal/obs"
	"sheriff/internal/quant"
)

// TriageMode selects the per-update triage arithmetic.
type TriageMode int

const (
	// TriageFloat is the float64 Holt smoother — the default, bit-exact
	// with the pre-quantization service.
	TriageFloat TriageMode = iota
	// TriageQuant is the Q16.16 fixed-point smoother with dyadic
	// coefficients (Options.Quant) and saturating arithmetic.
	TriageQuant
)

// String returns the canonical mode name accepted by ParseTriageMode.
func (m TriageMode) String() string {
	switch m {
	case TriageFloat:
		return "float"
	case TriageQuant:
		return "quantized"
	default:
		return fmt.Sprintf("TriageMode(%d)", int(m))
	}
}

// ParseTriageMode resolves a mode name; "" means TriageFloat.
func ParseTriageMode(s string) (TriageMode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "float":
		return TriageFloat, nil
	case "quantized", "quant", "fixed", "fixed-point":
		return TriageQuant, nil
	default:
		return 0, fmt.Errorf("ingest: unknown triage mode %q (want float or quantized)", s)
	}
}

// qslot is one VM's quantized triage state: the integer Holt smoother
// plus the same edge-trigger latch the float slot carries.
type qslot struct {
	vm      int
	h       quant.Holt
	alerted bool
}

// satq clamps an int64 intermediate to the Q16.16 rails — the drain
// loop's local copy of quant's saturation, kept as a leaf function so it
// inlines. min/max compile to branch-free conditional moves, so the three
// clamps per update cost no branch slots in the drain loop.
func satq(v int64) int64 {
	return min(max(v, int64(quant.Min)), int64(quant.Max))
}

// drainQuant is the integer twin of drainFloat: same queue walk, same
// latency bookkeeping, same edge-triggered latch — but the smoothing fold
// and the threshold compare run in saturating int32/int64 arithmetic on
// the Q16.16 value captured at offer time. Like drainFloat it runs under
// the shard lock and performs no allocation in steady state.
//
// The recursion is quant.(*Holt).Observe unrolled into the loop — the
// method is past the inlining budget, and the per-update call costs the
// quantized path its throughput edge over float. Every saturation point
// (both dyadic folds and the signal clamp) must stay bit-identical to the
// method; TestDrainQuantMatchesHolt compares the two word for word on
// random streams.
func (s *Service) drainQuant(sh *shard, now time.Time) {
	c := s.opts.Quant
	// The raw (unclamped) signal compares against the threshold exactly
	// like the clamped one as long as the threshold sits below the rail,
	// so the signal's satq moves into the cold alert branch. At a
	// threshold pinned to the rail itself, a raw signal past Max still
	// alerts — the rail is the hottest representable state.
	thresh := int64(s.qthresh)
	if thresh >= int64(quant.Max) {
		thresh = int64(quant.Max) - 1
	}
	if c.Shift == quant.DefaultShift && c.Lead == 1 {
		s.drainQuantDefault(sh, now, thresh)
		return
	}
	var (
		alphaN = int64(c.AlphaNum)
		betaN  = int64(c.BetaNum)
		shift  = c.Shift
		half   = int64(1) << (c.Shift - 1)
		lead   = int64(c.Lead)
	)
	for i := range sh.queue {
		q := &sh.queue[i]
		sl := &sh.qslots[q.slot]
		level, trend := int64(sl.h.Level), int64(sl.h.Trend)
		if sl.h.Seen == 0 {
			level, trend = int64(q.qv), 0
		} else {
			base := level + trend
			next := satq((alphaN*(int64(q.qv)-base) + base<<shift + half) >> shift)
			trend = satq((betaN*(next-level-trend) + trend<<shift + half) >> shift)
			level = next
		}
		if sl.h.Seen < math.MaxInt32 {
			sl.h.Seen++
		}
		sl.h.Level, sl.h.Trend = quant.Q(level), quant.Q(trend)
		sig := level + trend*lead
		sh.lat = append(sh.lat, now.Sub(q.at).Seconds())
		if sig > thresh {
			if !sl.alerted {
				s.raiseQuantAlert(sh, sl, sig)
			}
		} else {
			sl.alerted = false
		}
	}
}

// drainQuantDefault is drainQuant's loop specialized to the common
// operating point the distiller emits: Shift == DefaultShift and a
// one-step lead. It exists for register pressure, not cleverness: the
// integer loop competes with the queue/latency bookkeeping for the one
// general-purpose register file (the float loop keeps its arithmetic in
// XMM registers), and carrying the shift count, rounding constant, and
// lead as loop-invariant variables pushed the generic loop into
// per-iteration stack spills. With the shift a compile-time constant,
// registers free up and the four shifts drop from three uops each
// (baseline GOAMD64 has no flagless variable shifts) to one; the unit
// lead turns the signal extrapolation into a plain add.
func (s *Service) drainQuantDefault(sh *shard, now time.Time, thresh int64) {
	c := s.opts.Quant
	alphaN, betaN := int64(c.AlphaNum), int64(c.BetaNum)
	const ds, dh = quant.DefaultShift, int64(1) << (quant.DefaultShift - 1)
	for i := range sh.queue {
		q := &sh.queue[i]
		sl := &sh.qslots[q.slot]
		level, trend := int64(sl.h.Level), int64(sl.h.Trend)
		if sl.h.Seen == 0 {
			level, trend = int64(q.qv), 0
		} else {
			base := level + trend
			next := satq((alphaN*(int64(q.qv)-base) + base<<ds + dh) >> ds)
			trend = satq((betaN*(next-level-trend) + trend<<ds + dh) >> ds)
			level = next
		}
		if sl.h.Seen < math.MaxInt32 {
			sl.h.Seen++
		}
		sl.h.Level, sl.h.Trend = quant.Q(level), quant.Q(trend)
		sig := level + trend
		sh.lat = append(sh.lat, now.Sub(q.at).Seconds())
		if sig > thresh {
			if !sl.alerted {
				s.raiseQuantAlert(sh, sl, sig)
			}
		} else {
			sl.alerted = false
		}
	}
}

// raiseQuantAlert latches and publishes one pre-alert. Kept out of the
// drain loops: alerts are rare, and inlining the append/record machinery
// into the loop body costs hot-path registers and icache for code that
// almost never runs.
//
//go:noinline
func (s *Service) raiseQuantAlert(sh *shard, sl *qslot, sig int64) {
	sl.alerted = true
	v := quant.Q(satq(sig)).Float()
	sh.alerts = append(sh.alerts, Alert{Rack: sh.rack, VM: sl.vm, Value: v})
	s.alerts.Add(1)
	s.rec.Record(obs.Event{Kind: obs.KindIngest, Phase: "alert", Shim: sh.rack, VM: sl.vm, Host: -1, Value: v})
}
