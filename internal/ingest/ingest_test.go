package ingest

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"sheriff/internal/obs"
	"sheriff/internal/traces"
)

// fixedClock returns a deterministic clock advancing one millisecond per
// call, so latency numbers are stable in tests.
func fixedClock() func() time.Time {
	base := time.Unix(1700000000, 0)
	n := 0
	var mu sync.Mutex
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		n++
		return base.Add(time.Duration(n) * time.Millisecond)
	}
}

func build(t *testing.T, opts Options) *Service {
	t.Helper()
	if opts.Clock == nil {
		opts.Clock = fixedClock()
	}
	s, err := New([][]int{{0, 1, 2}, {3, 4}, {}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func hot() traces.Profile  { return traces.Profile{CPU: 0.99, Mem: 0.4, IO: 0.2, TRF: 0.1} }
func cool() traces.Profile { return traces.Profile{CPU: 0.2, Mem: 0.2, IO: 0.1, TRF: 0.1} }

func TestOfferValidationAndCounters(t *testing.T) {
	s := build(t, Options{})
	if _, err := s.Offer(Update{VM: 99}); err == nil {
		t.Fatal("unknown VM accepted")
	}
	ok, err := s.Offer(Update{VM: 0, Profile: cool()})
	if err != nil || !ok {
		t.Fatalf("offer = %v, %v", ok, err)
	}
	st := s.Stats()
	if st.Offered != 1 || st.Accepted != 1 || st.Pending != 1 {
		t.Fatalf("stats after one offer: %+v", st)
	}
	if n := s.ProcessPending(); n != 1 {
		t.Fatalf("processed %d, want 1", n)
	}
	st = s.Stats()
	if st.Processed != 1 || st.Pending != 0 {
		t.Fatalf("stats after drain: %+v", st)
	}
	if st.Latency.Count() != 1 {
		t.Fatalf("latency count %d, want 1", st.Latency.Count())
	}
}

// TestBackpressureTailDrop pins the comm.InboxLimit discipline: offers
// beyond the shard queue cap are dropped and counted, accepted updates
// are all processed, and other shards are unaffected.
func TestBackpressureTailDrop(t *testing.T) {
	s := build(t, Options{QueueLimit: 8})
	var batch []Update
	for i := 0; i < 30; i++ {
		batch = append(batch, Update{VM: i % 3, Profile: cool()}) // all rack 0
	}
	batch = append(batch, Update{VM: 3, Profile: cool()}) // rack 1, plenty of room
	accepted, err := s.OfferBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if accepted != 9 { // 8 on the full shard + 1 on rack 1
		t.Fatalf("accepted %d, want 9", accepted)
	}
	st := s.Stats()
	if st.Dropped != 22 {
		t.Fatalf("dropped %d, want 22", st.Dropped)
	}
	if n := s.ProcessPending(); n != 9 {
		t.Fatalf("processed %d, want 9 (every accepted update, no drops of accepted work)", n)
	}
	// The queue is reusable after a drain.
	if ok, _ := s.Offer(Update{VM: 0, Profile: cool()}); !ok {
		t.Fatal("offer after drain rejected")
	}
}

func TestTriageAlertsEdgeTriggeredAndSorted(t *testing.T) {
	s := build(t, Options{})
	feed := func(vm int, p traces.Profile, times int) {
		t.Helper()
		for i := 0; i < times; i++ {
			if ok, err := s.Offer(Update{VM: vm, Profile: p}); err != nil || !ok {
				t.Fatalf("offer vm %d: %v %v", vm, ok, err)
			}
		}
	}
	// Hot VMs on both racks, interleaved with a cool one.
	feed(4, hot(), 3)
	feed(1, hot(), 3)
	feed(0, cool(), 3)
	s.ProcessPending()
	alerts := s.Poll()
	if len(alerts) != 2 {
		t.Fatalf("alerts %+v, want 2 (VMs 1 and 4)", alerts)
	}
	if alerts[0].VM != 1 || alerts[0].Rack != 0 || alerts[1].VM != 4 || alerts[1].Rack != 1 {
		t.Fatalf("alerts not sorted by (rack, vm): %+v", alerts)
	}
	if alerts[0].Value <= 0.9 {
		t.Fatalf("alert value %v not above threshold", alerts[0].Value)
	}
	// Edge-triggered: still hot, no duplicate alert.
	feed(1, hot(), 2)
	s.ProcessPending()
	if got := s.Poll(); len(got) != 0 {
		t.Fatalf("duplicate alerts for a continuously hot VM: %+v", got)
	}
	// Recover, then re-alert.
	feed(1, cool(), 6)
	s.ProcessPending()
	if got := s.Poll(); len(got) != 0 {
		t.Fatalf("cool-down raised alerts: %+v", got)
	}
	feed(1, hot(), 4)
	s.ProcessPending()
	if got := s.Poll(); len(got) != 1 || got[0].VM != 1 {
		t.Fatalf("re-alert after recovery missing: %+v", got)
	}
}

func TestIngestEventsRecorded(t *testing.T) {
	rec, err := obs.New(obs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := build(t, Options{QueueLimit: 2, Recorder: rec})
	for i := 0; i < 5; i++ {
		s.Offer(Update{VM: 0, Profile: hot()})
	}
	s.ProcessPending()
	phases := map[string]int{}
	for _, e := range rec.Events() {
		if e.Kind == obs.KindIngest {
			phases[e.Phase]++
		}
	}
	if phases["drop"] != 3 || phases["drain"] != 1 || phases["alert"] != 1 {
		t.Fatalf("ingest event phases %+v, want drop=3 drain=1 alert=1", phases)
	}
}

func TestSubscriptionAutoDetach(t *testing.T) {
	rec, err := obs.New(obs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := build(t, Options{Recorder: rec})
	var goodN, badN int
	good, err := s.Subscribe(obs.Func(func(obs.Event) error { goodN++; return nil }))
	if err != nil {
		t.Fatal(err)
	}
	bad, err := s.Subscribe(obs.Func(func(obs.Event) error { badN++; return errors.New("hangup") }))
	if err != nil {
		t.Fatal(err)
	}
	s.Offer(Update{VM: 0, Profile: cool()})
	s.ProcessPending() // drain event kills bad, then sweep detaches it
	if bad.Err() == nil {
		t.Fatal("bad subscription has no error")
	}
	badAt := badN
	s.Offer(Update{VM: 0, Profile: cool()})
	s.ProcessPending()
	if badN != badAt {
		t.Fatalf("dead subscription still receiving (%d -> %d)", badAt, badN)
	}
	if goodN < 2 {
		t.Fatalf("live subscription starved: %d events", goodN)
	}
	if rec.Err() != nil {
		t.Fatalf("subscriber hangup poisoned the recorder: %v", rec.Err())
	}
	if !s.Unsubscribe(good) {
		t.Fatal("live subscription not found on unsubscribe")
	}
	if s.Unsubscribe(bad) {
		t.Fatal("swept subscription still attached")
	}
	goodAt := goodN
	s.Offer(Update{VM: 0, Profile: cool()})
	s.ProcessPending()
	if goodN != goodAt {
		t.Fatal("unsubscribed sink still receiving")
	}
}

// TestSnapshotRestoreContinuity is the restart contract: triage resumes
// bit-exactly, so a VM that was already alerted does not re-alert and
// predictions continue from the warm Holt state.
func TestSnapshotRestoreContinuity(t *testing.T) {
	clock := fixedClock()
	s := build(t, Options{Clock: clock})
	script := []struct {
		vm int
		p  traces.Profile
	}{
		{0, cool()}, {0, hot()}, {0, hot()}, {1, hot()}, {3, cool()}, {4, hot()}, {4, hot()},
	}
	for _, step := range script {
		s.Offer(Update{VM: step.vm, Profile: step.p})
	}
	s.ProcessPending()
	s.Poll()

	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var loaded Snapshot
	if err := json.Unmarshal(blob, &loaded); err != nil {
		t.Fatal(err)
	}
	restored := build(t, Options{Clock: clock})
	if err := restored.Restore(&loaded); err != nil {
		t.Fatal(err)
	}

	// Identical subsequent input must produce identical alerts on both.
	next := []Update{{VM: 0, Profile: hot()}, {VM: 1, Profile: hot()}, {VM: 4, Profile: cool()}}
	for _, svc := range []*Service{s, restored} {
		if _, err := svc.OfferBatch(next); err != nil {
			t.Fatal(err)
		}
		svc.ProcessPending()
	}
	a, b := s.Poll(), restored.Poll()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("post-restore alerts diverged:\n original: %+v\n restored: %+v", a, b)
	}
	// Already-alerted VMs (1 and 4 were hot pre-snapshot) must not re-fire.
	for _, al := range b {
		if al.VM == 1 || al.VM == 4 {
			t.Fatalf("restored service re-alerted latched VM %d", al.VM)
		}
	}
	if got, want := restored.Stats().Processed, s.Stats().Processed; got != want {
		t.Fatalf("restored processed counter %d, original %d (counters did not resume)", got, want)
	}
}

func TestSnapshotGuards(t *testing.T) {
	s := build(t, Options{})
	s.Offer(Update{VM: 0, Profile: cool()})
	if _, err := s.Snapshot(); err == nil {
		t.Fatal("snapshot with pending updates accepted")
	}
	s.ProcessPending()
	s.Offer(Update{VM: 0, Profile: hot()})
	s.Offer(Update{VM: 0, Profile: hot()})
	s.ProcessPending()
	if _, err := s.Snapshot(); err == nil {
		t.Fatal("snapshot with unpolled alerts accepted")
	}
	s.Poll()
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Restore(snap); err == nil {
		t.Fatal("restore into a used service accepted")
	}
	fresh := build(t, Options{})
	bad := *snap
	bad.Version = 99
	if err := fresh.Restore(&bad); err == nil {
		t.Fatal("unknown snapshot version accepted")
	}
	other, err := New([][]int{{0, 1}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Restore(snap); err == nil {
		t.Fatal("mismatched shard layout accepted")
	}
	if err := fresh.Restore(snap); err != nil {
		t.Fatal(err)
	}
}

func TestStartStopDrainLoop(t *testing.T) {
	s := build(t, Options{Clock: nil})
	if err := s.Start(0); err == nil {
		t.Fatal("zero interval accepted")
	}
	if err := s.Start(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(time.Millisecond); err == nil {
		t.Fatal("double start accepted")
	}
	for i := 0; i < 50; i++ {
		s.Offer(Update{VM: i % 5, Profile: cool()})
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().Pending > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s.Offer(Update{VM: 0, Profile: cool()})
	s.Stop() // final drain must pick up the straggler
	s.Stop() // idempotent
	if st := s.Stats(); st.Pending != 0 || st.Processed != st.Accepted {
		t.Fatalf("loop left work behind: %+v", st)
	}
}

// TestHotPathZeroAlloc pins the steady-state allocation contract for
// both triage modes: once queues are warm, an offer+drain cycle does not
// allocate.
func TestHotPathZeroAlloc(t *testing.T) {
	for _, mode := range []TriageMode{TriageFloat, TriageQuant} {
		t.Run(mode.String(), func(t *testing.T) {
			s := build(t, Options{Mode: mode})
			u := Update{VM: 0, Profile: cool()}
			// Warm up: populate quantile markers and scratch buffers.
			for i := 0; i < 64; i++ {
				s.Offer(u)
				s.ProcessPending()
			}
			allocs := testing.AllocsPerRun(200, func() {
				if ok, err := s.Offer(u); err != nil || !ok {
					t.Fatalf("offer failed: %v %v", ok, err)
				}
				s.drainShard(s.shard[0], s.opts.Clock())
			})
			if allocs != 0 {
				t.Fatalf("hot path allocates %.1f per offer+drain cycle, want 0", allocs)
			}
		})
	}
}

func TestFromClusterAndNewValidation(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Fatal("empty partition accepted")
	}
	if _, err := New([][]int{{1, 1}}, Options{}); err == nil {
		t.Fatal("duplicate VM accepted")
	}
	if _, err := New([][]int{{-1}}, Options{}); err == nil {
		t.Fatal("negative VM accepted")
	}
	if _, err := New([][]int{{0}}, Options{QueueLimit: -1}); err == nil {
		t.Fatal("negative queue limit accepted")
	}
	if _, err := New([][]int{{0}}, Options{Alpha: 1.5}); err == nil {
		t.Fatal("out-of-range alpha accepted")
	}
}
