// Package ingest is the daemon's metric front end: a batched,
// rack-sharded intake for externally reported VM workload profiles with
// explicit backpressure, a constant-work triage forecaster per VM, and a
// streaming subscription API for the resulting alert/trace events.
//
// The design borrows three disciplines already proven elsewhere in the
// tree. Sharding and drain fan-out reuse the internal/pool worker model
// (one shard per rack, indices claimed dynamically, the caller
// participates). Backpressure is comm.Bus's InboxLimit tail drop: each
// shard's pending queue has a hard cap, an offer beyond it is counted
// and dropped — never blocking the producer and never evicting an
// already accepted update. The accept/drain hot path is allocation-free
// in steady state, CSR-style: queues, scratch buffers, and per-VM triage
// slots are laid out once at construction and reused every cycle, so a
// daemon ingesting millions of updates does not touch the allocator.
//
// Triage is a per-VM Holt (double-exponential) smoother over the
// profile's dominant component, the same α=0.5/β=0.3 filter the runtime
// uses for cheap trend forecasts. A VM whose one-step-ahead prediction
// crosses HotThreshold raises an edge-triggered pre-alert (cleared when
// the prediction recedes), which is exactly the signal the Sheriff shims
// consume — the daemon forwards polled alerts into the migration plane.
package ingest

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sheriff/internal/dcn"
	"sheriff/internal/metrics"
	"sheriff/internal/obs"
	"sheriff/internal/pool"
	"sheriff/internal/quant"
	"sheriff/internal/traces"
)

// Update is one externally reported observation: the VM's workload
// profile for the current collection period.
type Update struct {
	VM      int
	Profile traces.Profile
}

// Alert is one triage pre-alert: the VM's predicted next-period stress
// crossed the hot threshold.
type Alert struct {
	Rack  int
	VM    int
	Value float64 // predicted next-period dominant-component stress
}

// Options configures a Service. Zero values take the defaults.
type Options struct {
	// QueueLimit caps each rack shard's pending-update queue; offers
	// beyond it are dropped (tail drop, the comm.InboxLimit discipline).
	// Zero means the default (4096); negative is an error.
	QueueLimit int
	// HotThreshold is the predicted stress above which a VM raises a
	// pre-alert. Zero means the default (0.9); negative is an error.
	HotThreshold float64
	// Alpha and Beta are the Holt triage smoothing factors. Zero means
	// the defaults (0.5 and 0.3); out of (0,1] is an error.
	Alpha, Beta float64
	// Mode selects the triage arithmetic: TriageFloat (default) runs the
	// float64 Holt smoother, TriageQuant the Q16.16 fixed-point twin with
	// dyadic coefficients and saturating overflow semantics (see
	// internal/quant and quant.go in this package).
	Mode TriageMode
	// Quant supplies the fixed-point coefficients for TriageQuant —
	// typically the output of experiments.DistillQuant, which fits them
	// (plus the alert lead horizon) against the deep pool's alerts. The
	// zero value snaps Alpha and Beta at quant.DefaultShift with Lead 1,
	// mirroring the float filter. Ignored under TriageFloat.
	Quant quant.Coeffs
	// Recorder receives KindIngest events (drains, drops, alerts) and is
	// the hub Subscribe attaches sinks to. Nil disables both.
	Recorder *obs.Recorder
	// Pool bounds the drain fan-out; nil means pool.Shared().
	Pool *pool.Pool
	// Clock stamps offered updates for ingest-to-alert latency; nil
	// means time.Now. Tests inject a fixed clock.
	Clock func() time.Time
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	if o.QueueLimit < 0 {
		return fmt.Errorf("ingest: QueueLimit must be >= 0 (0 = default), got %d", o.QueueLimit)
	}
	if o.HotThreshold < 0 {
		return fmt.Errorf("ingest: HotThreshold must be >= 0 (0 = default), got %v", o.HotThreshold)
	}
	check := func(name string, v float64) error {
		if v < 0 || v > 1 {
			return fmt.Errorf("ingest: %s must be in (0,1] (0 = default), got %v", name, v)
		}
		return nil
	}
	if err := check("Alpha", o.Alpha); err != nil {
		return err
	}
	if err := check("Beta", o.Beta); err != nil {
		return err
	}
	if o.Mode != TriageFloat && o.Mode != TriageQuant {
		return fmt.Errorf("ingest: unknown triage mode %d", int(o.Mode))
	}
	return o.Quant.Validate()
}

func (o Options) withDefaults() Options {
	if o.QueueLimit == 0 {
		o.QueueLimit = 4096
	}
	if o.HotThreshold == 0 {
		o.HotThreshold = 0.9
	}
	if o.Alpha == 0 {
		o.Alpha = 0.5
	}
	if o.Beta == 0 {
		o.Beta = 0.3
	}
	if o.Pool == nil {
		o.Pool = pool.Shared()
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	if o.Mode == TriageQuant {
		if o.Quant == (quant.Coeffs{}) {
			o.Quant = quant.Snap(o.Alpha, o.Beta, quant.DefaultShift)
		}
		o.Quant = o.Quant.WithDefaults()
	}
	return o
}

// Stats is a point-in-time snapshot of the service's counters.
type Stats struct {
	Offered   uint64 // updates handed to Offer/OfferBatch
	Accepted  uint64 // updates enqueued (Offered - Dropped)
	Dropped   uint64 // updates tail-dropped at a full shard queue
	Processed uint64 // updates drained through triage
	Alerts    uint64 // pre-alerts raised
	Pending   int    // updates currently queued across shards
	// Latency summarizes ingest-to-triage latency in seconds; P99 is the
	// P² estimate of its 99th percentile.
	Latency    metrics.Summary
	LatencyP99 float64
}

// queued is one accepted update awaiting triage. qv is the Q16.16 image
// of v, captured at offer time so the quantized drain path never touches
// a float; it is zero (and unused) under TriageFloat.
type queued struct {
	slot int
	v    float64
	qv   quant.Q
	at   time.Time
}

// slot is one VM's triage state: a Holt smoother over the dominant
// profile component plus the edge-trigger latch.
type slot struct {
	vm           int
	level, trend float64
	seen         int
	alerted      bool
}

// shard is one rack's intake lane. All fields past the lock are guarded
// by it; the queue and scratch buffers are allocated once at capacity.
// Exactly one of slots (TriageFloat) and qslots (TriageQuant) is
// populated, depending on the service mode.
type shard struct {
	rack int

	mu     sync.Mutex
	queue  []queued
	slots  []slot
	qslots []qslot
	alerts []Alert   // raised, not yet polled
	lat    []float64 // drain scratch: latencies in seconds
	drains int       // drain cycles with at least one update
}

// numSlots returns the VM count regardless of mode.
func (sh *shard) numSlots() int {
	if sh.qslots != nil {
		return len(sh.qslots)
	}
	return len(sh.slots)
}

// slotVM returns slot j's VM ID regardless of mode.
func (sh *shard) slotVM(j int) int {
	if sh.qslots != nil {
		return sh.qslots[j].vm
	}
	return sh.slots[j].vm
}

// loc addresses one VM's triage slot.
type loc struct {
	shard, slot int
}

// Service is the sharded ingest front end. All methods are safe for
// concurrent use.
type Service struct {
	opts    Options
	rec     *obs.Recorder
	shard   []*shard
	vmLoc   map[int]loc
	qthresh quant.Q // HotThreshold in Q16.16 (TriageQuant only)

	offered   atomic.Uint64
	accepted  atomic.Uint64
	dropped   atomic.Uint64
	processed atomic.Uint64
	alerts    atomic.Uint64

	statsMu sync.Mutex
	latSum  metrics.Summary
	latP99  *metrics.Quantile

	subMu sync.Mutex
	subs  []*Subscription

	loopMu   sync.Mutex
	stopLoop chan struct{}
	loopDone chan struct{}
}

// New builds a service over an explicit rack partition: vmsByRack[i]
// lists the VM IDs ingested through shard i. VM IDs must be unique and
// non-negative; empty racks are fine.
func New(vmsByRack [][]int, opts Options) (*Service, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	p99, err := metrics.NewQuantile(0.99)
	if err != nil {
		return nil, err
	}
	s := &Service{
		opts:    opts,
		rec:     opts.Recorder,
		vmLoc:   make(map[int]loc),
		qthresh: quant.FromFloat(opts.HotThreshold),
		latP99:  p99,
	}
	for i, vms := range vmsByRack {
		sh := &shard{
			rack:  i,
			queue: make([]queued, 0, opts.QueueLimit),
			lat:   make([]float64, 0, opts.QueueLimit),
		}
		if opts.Mode == TriageQuant {
			sh.qslots = make([]qslot, 0, len(vms))
		} else {
			sh.slots = make([]slot, 0, len(vms))
		}
		for _, vm := range vms {
			if vm < 0 {
				return nil, fmt.Errorf("ingest: negative VM id %d in rack %d", vm, i)
			}
			if _, dup := s.vmLoc[vm]; dup {
				return nil, fmt.Errorf("ingest: VM %d assigned to more than one rack", vm)
			}
			s.vmLoc[vm] = loc{shard: i, slot: sh.numSlots()}
			if opts.Mode == TriageQuant {
				sh.qslots = append(sh.qslots, qslot{vm: vm})
			} else {
				sh.slots = append(sh.slots, slot{vm: vm})
			}
		}
		s.shard = append(s.shard, sh)
	}
	if len(s.vmLoc) == 0 {
		return nil, fmt.Errorf("ingest: no VMs to ingest for")
	}
	return s, nil
}

// FromCluster builds a service sharded by the cluster's current rack
// placement (VMs sorted by ID within each rack). The partition is fixed
// at construction: a VM that later migrates keeps its admission shard,
// since triage state is per-VM and shard choice only affects queueing.
func FromCluster(c *dcn.Cluster, opts Options) (*Service, error) {
	vmsByRack := make([][]int, len(c.Racks))
	for i, r := range c.Racks {
		vms := r.VMs()
		ids := make([]int, 0, len(vms))
		for _, vm := range vms {
			ids = append(ids, vm.ID)
		}
		sort.Ints(ids)
		vmsByRack[i] = ids
	}
	return New(vmsByRack, opts)
}

// Shards returns the number of rack shards.
func (s *Service) Shards() int { return len(s.shard) }

// Offer enqueues one update on its VM's rack shard. It returns false
// without error when the shard queue is full (the update is tail-dropped
// and counted), and an error for a VM the service was not built for.
// The accept path performs no allocation.
func (s *Service) Offer(u Update) (bool, error) {
	return s.offerAt(u, s.opts.Clock())
}

func (s *Service) offerAt(u Update, at time.Time) (bool, error) {
	l, ok := s.vmLoc[u.VM]
	if !ok {
		return false, fmt.Errorf("ingest: unknown VM %d", u.VM)
	}
	s.offered.Add(1)
	sh := s.shard[l.shard]
	sh.mu.Lock()
	if len(sh.queue) >= s.opts.QueueLimit {
		sh.mu.Unlock()
		s.dropped.Add(1)
		s.rec.Record(obs.Event{Kind: obs.KindIngest, Phase: "drop", Shim: sh.rack, VM: u.VM, Host: -1, Value: 1})
		return false, nil
	}
	q := queued{slot: l.slot, at: at}
	if s.opts.Mode == TriageQuant {
		// The one float→fixed conversion on the quantized path: everything
		// downstream of the intake boundary is integer arithmetic. Only the
		// fixed-point image is queued — the drain never reads the float.
		q.qv = quant.FromFloat(u.Profile.Max())
	} else {
		q.v = u.Profile.Max()
	}
	sh.queue = append(sh.queue, q)
	sh.mu.Unlock()
	s.accepted.Add(1)
	return true, nil
}

// OfferBatch offers each update in order and returns how many were
// accepted. Overflow drops are not errors; an unknown VM is, and stops
// the batch. The whole batch shares one arrival stamp — the updates
// arrived together, and a single clock read per batch keeps the
// per-update accept cost to the queue append itself (time.Now dominated
// the ingest cycle when read per offer).
func (s *Service) OfferBatch(updates []Update) (int, error) {
	at := s.opts.Clock()
	accepted := 0
	for _, u := range updates {
		ok, err := s.offerAt(u, at)
		if err != nil {
			return accepted, err
		}
		if ok {
			accepted++
		}
	}
	return accepted, nil
}

// ProcessPending drains every shard queue through triage, fanning the
// shards out over the worker pool, and returns the number of updates
// processed. Newly raised alerts accumulate for Poll. Dead
// subscriptions (sinks that returned an error) are detached.
func (s *Service) ProcessPending() int {
	now := s.opts.Clock()
	var total atomic.Int64
	s.opts.Pool.ForEach(len(s.shard), func(i int) {
		if n := s.drainShard(s.shard[i], now); n > 0 {
			total.Add(int64(n))
		}
	})
	s.sweepSubscriptions()
	return int(total.Load())
}

// drainShard runs triage over one shard's queue, dispatching to the
// mode's drain loop. The shard lock is held for the whole drain, so
// offers to this shard wait — that is the backpressure contract:
// accepted updates are processed exactly once, in order, before anything
// newer.
func (s *Service) drainShard(sh *shard, now time.Time) int {
	sh.mu.Lock()
	n := len(sh.queue)
	if n == 0 {
		sh.mu.Unlock()
		return 0
	}
	sh.lat = sh.lat[:0]
	if s.opts.Mode == TriageQuant {
		s.drainQuant(sh, now)
	} else {
		s.drainFloat(sh, now)
	}
	sh.queue = sh.queue[:0]
	sh.drains++
	sh.mu.Unlock()

	s.processed.Add(uint64(n))
	s.statsMu.Lock()
	for _, l := range sh.lat {
		s.latSum.Observe(l)
		s.latP99.Observe(l)
	}
	s.statsMu.Unlock()
	s.rec.Record(obs.Event{Kind: obs.KindIngest, Phase: "drain", Shim: sh.rack, VM: -1, Host: -1, Value: float64(n)})
	return n
}

// drainFloat is the float64 triage loop — the seed path, bit-exact with
// the pre-quantization service. It runs under the shard lock and is
// allocation-free in steady state.
func (s *Service) drainFloat(sh *shard, now time.Time) {
	for i := range sh.queue {
		q := &sh.queue[i]
		sl := &sh.slots[q.slot]
		pred := sl.observe(q.v, s.opts.Alpha, s.opts.Beta)
		sh.lat = append(sh.lat, now.Sub(q.at).Seconds())
		if pred > s.opts.HotThreshold {
			if !sl.alerted {
				sl.alerted = true
				sh.alerts = append(sh.alerts, Alert{Rack: sh.rack, VM: sl.vm, Value: pred})
				s.alerts.Add(1)
				s.rec.Record(obs.Event{Kind: obs.KindIngest, Phase: "alert", Shim: sh.rack, VM: sl.vm, Host: -1, Value: pred})
			}
		} else {
			sl.alerted = false
		}
	}
}

// observe folds one observation into the Holt state and returns the
// one-step-ahead prediction.
func (sl *slot) observe(v, alpha, beta float64) float64 {
	switch sl.seen {
	case 0:
		sl.level, sl.trend = v, 0
	default:
		prev := sl.level
		sl.level = alpha*v + (1-alpha)*(sl.level+sl.trend)
		sl.trend = beta*(sl.level-prev) + (1-beta)*sl.trend
	}
	sl.seen++
	return sl.level + sl.trend
}

// Poll returns the alerts raised since the previous Poll, sorted by
// (rack, VM), and clears them.
func (s *Service) Poll() []Alert {
	var out []Alert
	for _, sh := range s.shard {
		sh.mu.Lock()
		out = append(out, sh.alerts...)
		sh.alerts = sh.alerts[:0]
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rack != out[j].Rack {
			return out[i].Rack < out[j].Rack
		}
		return out[i].VM < out[j].VM
	})
	return out
}

// Stats returns the current counters.
func (s *Service) Stats() Stats {
	st := Stats{
		Offered:   s.offered.Load(),
		Accepted:  s.accepted.Load(),
		Dropped:   s.dropped.Load(),
		Processed: s.processed.Load(),
		Alerts:    s.alerts.Load(),
	}
	for _, sh := range s.shard {
		sh.mu.Lock()
		st.Pending += len(sh.queue)
		sh.mu.Unlock()
	}
	s.statsMu.Lock()
	st.Latency = s.latSum
	if s.latSum.Count() > 0 {
		st.LatencyP99 = s.latP99.Value()
	}
	s.statsMu.Unlock()
	return st
}

// Start launches a background drain loop that calls ProcessPending
// every interval. It errors if the loop is already running.
func (s *Service) Start(interval time.Duration) error {
	if interval <= 0 {
		return fmt.Errorf("ingest: drain interval must be > 0, got %v", interval)
	}
	s.loopMu.Lock()
	defer s.loopMu.Unlock()
	if s.stopLoop != nil {
		return fmt.Errorf("ingest: drain loop already running")
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	s.stopLoop, s.loopDone = stop, done
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				s.ProcessPending()
			}
		}
	}()
	return nil
}

// Stop halts the drain loop and runs one final synchronous drain so no
// accepted update is left unprocessed. It is a no-op when not running.
func (s *Service) Stop() {
	s.loopMu.Lock()
	stop, done := s.stopLoop, s.loopDone
	s.stopLoop, s.loopDone = nil, nil
	s.loopMu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
	s.ProcessPending()
}

// Subscription is a live event stream handle returned by Subscribe. The
// wrapped sink receives every recorder event until it returns an error
// (auto-detach) or Unsubscribe is called.
type Subscription struct {
	sink obs.Sink
	dead atomic.Bool

	errMu sync.Mutex
	err   error
}

// Emit implements obs.Sink. A sink error marks the subscription dead —
// later events are skipped and the next drain detaches it — and is kept
// for Err. The error is not propagated: a subscriber hanging up is that
// subscriber's problem, not a recorder-level trace failure.
func (sub *Subscription) Emit(e obs.Event) error {
	if sub.dead.Load() {
		return nil
	}
	if err := sub.sink.Emit(e); err != nil {
		sub.dead.Store(true)
		sub.errMu.Lock()
		if sub.err == nil {
			sub.err = err
		}
		sub.errMu.Unlock()
	}
	return nil
}

// Err returns the sink error that killed the subscription, if any.
func (sub *Subscription) Err() error {
	sub.errMu.Lock()
	defer sub.errMu.Unlock()
	return sub.err
}

// Subscribe attaches a sink to the service's recorder as a live event
// stream. The sink starts receiving every subsequent event (ingest
// events and anything else recorded, e.g. runtime phases sharing the
// recorder). A sink error detaches the subscription automatically on
// the next drain instead of wedging the recorder.
func (s *Service) Subscribe(sink obs.Sink) (*Subscription, error) {
	if s.rec == nil {
		return nil, fmt.Errorf("ingest: no recorder configured; nothing to subscribe to")
	}
	if sink == nil {
		return nil, fmt.Errorf("ingest: nil sink")
	}
	sub := &Subscription{sink: sink}
	s.subMu.Lock()
	s.subs = append(s.subs, sub)
	s.subMu.Unlock()
	s.rec.AddSink(sub)
	return sub, nil
}

// Unsubscribe detaches a subscription immediately and reports whether
// it was still attached.
func (s *Service) Unsubscribe(sub *Subscription) bool {
	if sub == nil {
		return false
	}
	sub.dead.Store(true)
	s.subMu.Lock()
	found := false
	for i, have := range s.subs {
		if have == sub {
			s.subs = append(s.subs[:i], s.subs[i+1:]...)
			found = true
			break
		}
	}
	s.subMu.Unlock()
	if found {
		s.rec.RemoveSink(sub)
	}
	return found
}

// sweepSubscriptions detaches subscriptions whose sinks have errored.
// Removal happens here, outside the recorder's emit path, because
// RemoveSink takes the recorder lock that Emit runs under.
func (s *Service) sweepSubscriptions() {
	s.subMu.Lock()
	var dead []*Subscription
	live := s.subs[:0]
	for _, sub := range s.subs {
		if sub.dead.Load() {
			dead = append(dead, sub)
		} else {
			live = append(live, sub)
		}
	}
	s.subs = live
	s.subMu.Unlock()
	for _, sub := range dead {
		s.rec.RemoveSink(sub)
	}
}
