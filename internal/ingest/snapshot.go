package ingest

import (
	"fmt"

	"sheriff/internal/quant"
)

// SnapshotVersion is the ingest snapshot format version. Version 2 added
// the triage mode and the fixed-point state mirror; version 1 snapshots
// (float-only) are still restored, into either mode.
const SnapshotVersion = 2

// SlotSnap is one VM's serialized triage state. Level/Trend always carry
// the float view of the state; under TriageQuant they are the exact
// float64 image of the int32 words (quant.Q.Float is lossless), and
// QLevel/QTrend carry the words themselves so a same-mode restore is
// bit-exact without any float round trip.
type SlotSnap struct {
	VM      int     `json:"vm"`
	Level   float64 `json:"level"`
	Trend   float64 `json:"trend"`
	Seen    int     `json:"seen"`
	Alerted bool    `json:"alerted"`
	QLevel  int32   `json:"qlevel,omitempty"`
	QTrend  int32   `json:"qtrend,omitempty"`
}

// ShardSnap is one rack shard's serialized triage state.
type ShardSnap struct {
	Rack  int        `json:"rack"`
	Slots []SlotSnap `json:"slots"`
}

// Snapshot is the service's serializable state: every VM's triage
// smoother and alert latch, plus the lifetime counters. Pending queue
// contents and latency statistics are transient and not carried —
// callers drain (ProcessPending) before snapshotting.
//
// Cross-mode restores are deterministic in both directions. A float
// snapshot restores into a quantized service by quantizing each state
// word once (quant.FromFloat — the only lossy, deterministic step); a
// quantized snapshot restores into a float service through the exact
// float mirror, and because quant.FromFloat(q.Float()) == q, quantized
// state survives a quantized → float → quantized round trip bit-exactly.
type Snapshot struct {
	Version int `json:"version"`
	// Mode records the triage arithmetic the state was captured under
	// ("float" or "quantized"; "" in version-1 snapshots means float).
	Mode      string      `json:"mode,omitempty"`
	Shards    []ShardSnap `json:"shards"`
	Offered   uint64      `json:"offered"`
	Accepted  uint64      `json:"accepted"`
	Dropped   uint64      `json:"dropped"`
	Processed uint64      `json:"processed"`
	Alerts    uint64      `json:"alerts"`
}

// Snapshot captures the triage state. It errors while updates are still
// pending (drain first: a snapshot must not silently forget accepted
// updates) or alerts are unpolled.
func (s *Service) Snapshot() (*Snapshot, error) {
	snap := &Snapshot{
		Version:   SnapshotVersion,
		Mode:      s.opts.Mode.String(),
		Offered:   s.offered.Load(),
		Accepted:  s.accepted.Load(),
		Dropped:   s.dropped.Load(),
		Processed: s.processed.Load(),
		Alerts:    s.alerts.Load(),
	}
	for _, sh := range s.shard {
		sh.mu.Lock()
		if n := len(sh.queue); n != 0 {
			sh.mu.Unlock()
			return nil, fmt.Errorf("ingest: snapshot with %d pending updates on shard %d (ProcessPending first)", n, sh.rack)
		}
		if n := len(sh.alerts); n != 0 {
			sh.mu.Unlock()
			return nil, fmt.Errorf("ingest: snapshot with %d unpolled alerts on shard %d (Poll first)", n, sh.rack)
		}
		ss := ShardSnap{Rack: sh.rack, Slots: make([]SlotSnap, 0, sh.numSlots())}
		if s.opts.Mode == TriageQuant {
			for _, sl := range sh.qslots {
				ss.Slots = append(ss.Slots, SlotSnap{
					VM:     sl.vm,
					Level:  sl.h.Level.Float(),
					Trend:  sl.h.Trend.Float(),
					Seen:   int(sl.h.Seen),
					QLevel: int32(sl.h.Level), QTrend: int32(sl.h.Trend),
					Alerted: sl.alerted,
				})
			}
		} else {
			for _, sl := range sh.slots {
				ss.Slots = append(ss.Slots, SlotSnap{VM: sl.vm, Level: sl.level, Trend: sl.trend, Seen: sl.seen, Alerted: sl.alerted})
			}
		}
		sh.mu.Unlock()
		snap.Shards = append(snap.Shards, ss)
	}
	return snap, nil
}

// FromSnapshot builds a service over the snapshot's own rack partition
// and restores it. This is the daemon restart path: VMs may have
// migrated since the service was built, so the live cluster's current
// placement is the wrong partition — the snapshot's admission partition
// is authoritative. The restored service runs in opts.Mode, which need
// not match the snapshot's (cross-mode restores convert deterministically).
func FromSnapshot(snap *Snapshot, opts Options) (*Service, error) {
	if snap == nil {
		return nil, fmt.Errorf("ingest: restore from nil snapshot")
	}
	vmsByRack := make([][]int, len(snap.Shards))
	for i, ss := range snap.Shards {
		if ss.Rack != i {
			return nil, fmt.Errorf("ingest: snapshot shard %d claims rack %d", i, ss.Rack)
		}
		for _, sl := range ss.Slots {
			vmsByRack[i] = append(vmsByRack[i], sl.VM)
		}
	}
	s, err := New(vmsByRack, opts)
	if err != nil {
		return nil, err
	}
	if err := s.Restore(snap); err != nil {
		return nil, err
	}
	return s, nil
}

// snapMode resolves a snapshot's recorded triage mode. Version-1
// snapshots predate the field and are always float.
func snapMode(snap *Snapshot) (TriageMode, error) {
	if snap.Version == 1 {
		return TriageFloat, nil
	}
	return ParseTriageMode(snap.Mode)
}

// Restore installs a snapshot into a freshly built service with the
// same rack partition. A same-mode restore continues bit-exactly (same
// smoother state, same alert latches, so no spurious re-alerts after a
// restart); a cross-mode restore converts each state word once,
// deterministically (float → quantized via quant.FromFloat, quantized →
// float via the exact mirror). Counters resume from their saved values
// either way.
func (s *Service) Restore(snap *Snapshot) error {
	if snap == nil {
		return fmt.Errorf("ingest: restore from nil snapshot")
	}
	if snap.Version < 1 || snap.Version > SnapshotVersion {
		return fmt.Errorf("ingest: snapshot version %d not supported (want 1..%d)", snap.Version, SnapshotVersion)
	}
	mode, err := snapMode(snap)
	if err != nil {
		return fmt.Errorf("ingest: snapshot %w", err)
	}
	if s.offered.Load() != 0 || s.processed.Load() != 0 {
		return fmt.Errorf("ingest: restore into a service that has already ingested")
	}
	if len(snap.Shards) != len(s.shard) {
		return fmt.Errorf("ingest: snapshot covers %d shards, service has %d", len(snap.Shards), len(s.shard))
	}
	for i, ss := range snap.Shards {
		sh := s.shard[i]
		if ss.Rack != sh.rack {
			return fmt.Errorf("ingest: snapshot shard %d is rack %d, service shard is rack %d", i, ss.Rack, sh.rack)
		}
		if len(ss.Slots) != sh.numSlots() {
			return fmt.Errorf("ingest: snapshot rack %d covers %d VMs, service has %d", ss.Rack, len(ss.Slots), sh.numSlots())
		}
		for j, sl := range ss.Slots {
			if sl.VM != sh.slotVM(j) {
				return fmt.Errorf("ingest: snapshot rack %d slot %d is VM %d, service has VM %d", ss.Rack, j, sl.VM, sh.slotVM(j))
			}
			if sl.Seen < 0 {
				return fmt.Errorf("ingest: snapshot VM %d has negative observation count", sl.VM)
			}
		}
	}
	for i, ss := range snap.Shards {
		sh := s.shard[i]
		sh.mu.Lock()
		for j, sl := range ss.Slots {
			if s.opts.Mode == TriageQuant {
				h := quant.Holt{Level: quant.Q(sl.QLevel), Trend: quant.Q(sl.QTrend), Seen: clampSeen(sl.Seen)}
				if mode == TriageFloat {
					// The one lossy, deterministic conversion: quantize the
					// float state at the restore boundary.
					h.Level, h.Trend = quant.FromFloat(sl.Level), quant.FromFloat(sl.Trend)
				}
				sh.qslots[j] = qslot{vm: sl.VM, h: h, alerted: sl.Alerted}
			} else {
				sh.slots[j] = slot{vm: sl.VM, level: sl.Level, trend: sl.Trend, seen: sl.Seen, alerted: sl.Alerted}
			}
		}
		sh.mu.Unlock()
	}
	s.offered.Store(snap.Offered)
	s.accepted.Store(snap.Accepted)
	s.dropped.Store(snap.Dropped)
	s.processed.Store(snap.Processed)
	s.alerts.Store(snap.Alerts)
	return nil
}

// clampSeen narrows a snapshot observation count into the int32 the
// quantized smoother keeps (the count only gates the cold-start branch,
// so pinning at the rail preserves behavior).
func clampSeen(n int) int32 {
	const maxInt32 = 1<<31 - 1
	if n > maxInt32 {
		return maxInt32
	}
	return int32(n)
}
