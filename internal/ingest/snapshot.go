package ingest

import "fmt"

// SnapshotVersion is the ingest snapshot format version.
const SnapshotVersion = 1

// SlotSnap is one VM's serialized triage state.
type SlotSnap struct {
	VM      int     `json:"vm"`
	Level   float64 `json:"level"`
	Trend   float64 `json:"trend"`
	Seen    int     `json:"seen"`
	Alerted bool    `json:"alerted"`
}

// ShardSnap is one rack shard's serialized triage state.
type ShardSnap struct {
	Rack  int        `json:"rack"`
	Slots []SlotSnap `json:"slots"`
}

// Snapshot is the service's serializable state: every VM's Holt triage
// smoother and alert latch, plus the lifetime counters. Pending queue
// contents and latency statistics are transient and not carried —
// callers drain (ProcessPending) before snapshotting.
type Snapshot struct {
	Version   int         `json:"version"`
	Shards    []ShardSnap `json:"shards"`
	Offered   uint64      `json:"offered"`
	Accepted  uint64      `json:"accepted"`
	Dropped   uint64      `json:"dropped"`
	Processed uint64      `json:"processed"`
	Alerts    uint64      `json:"alerts"`
}

// Snapshot captures the triage state. It errors while updates are still
// pending (drain first: a snapshot must not silently forget accepted
// updates) or alerts are unpolled.
func (s *Service) Snapshot() (*Snapshot, error) {
	snap := &Snapshot{
		Version:   SnapshotVersion,
		Offered:   s.offered.Load(),
		Accepted:  s.accepted.Load(),
		Dropped:   s.dropped.Load(),
		Processed: s.processed.Load(),
		Alerts:    s.alerts.Load(),
	}
	for _, sh := range s.shard {
		sh.mu.Lock()
		if n := len(sh.queue); n != 0 {
			sh.mu.Unlock()
			return nil, fmt.Errorf("ingest: snapshot with %d pending updates on shard %d (ProcessPending first)", n, sh.rack)
		}
		if n := len(sh.alerts); n != 0 {
			sh.mu.Unlock()
			return nil, fmt.Errorf("ingest: snapshot with %d unpolled alerts on shard %d (Poll first)", n, sh.rack)
		}
		ss := ShardSnap{Rack: sh.rack, Slots: make([]SlotSnap, 0, len(sh.slots))}
		for _, sl := range sh.slots {
			ss.Slots = append(ss.Slots, SlotSnap{VM: sl.vm, Level: sl.level, Trend: sl.trend, Seen: sl.seen, Alerted: sl.alerted})
		}
		sh.mu.Unlock()
		snap.Shards = append(snap.Shards, ss)
	}
	return snap, nil
}

// FromSnapshot builds a service over the snapshot's own rack partition
// and restores it. This is the daemon restart path: VMs may have
// migrated since the service was built, so the live cluster's current
// placement is the wrong partition — the snapshot's admission partition
// is authoritative.
func FromSnapshot(snap *Snapshot, opts Options) (*Service, error) {
	if snap == nil {
		return nil, fmt.Errorf("ingest: restore from nil snapshot")
	}
	vmsByRack := make([][]int, len(snap.Shards))
	for i, ss := range snap.Shards {
		if ss.Rack != i {
			return nil, fmt.Errorf("ingest: snapshot shard %d claims rack %d", i, ss.Rack)
		}
		for _, sl := range ss.Slots {
			vmsByRack[i] = append(vmsByRack[i], sl.VM)
		}
	}
	s, err := New(vmsByRack, opts)
	if err != nil {
		return nil, err
	}
	if err := s.Restore(snap); err != nil {
		return nil, err
	}
	return s, nil
}

// Restore installs a snapshot into a freshly built service with the
// same rack partition: per-VM triage continues bit-exactly (same Holt
// state, same alert latches, so no spurious re-alerts after a restart)
// and counters resume from their saved values.
func (s *Service) Restore(snap *Snapshot) error {
	if snap == nil {
		return fmt.Errorf("ingest: restore from nil snapshot")
	}
	if snap.Version != SnapshotVersion {
		return fmt.Errorf("ingest: snapshot version %d not supported (want %d)", snap.Version, SnapshotVersion)
	}
	if s.offered.Load() != 0 || s.processed.Load() != 0 {
		return fmt.Errorf("ingest: restore into a service that has already ingested")
	}
	if len(snap.Shards) != len(s.shard) {
		return fmt.Errorf("ingest: snapshot covers %d shards, service has %d", len(snap.Shards), len(s.shard))
	}
	for i, ss := range snap.Shards {
		sh := s.shard[i]
		if ss.Rack != sh.rack {
			return fmt.Errorf("ingest: snapshot shard %d is rack %d, service shard is rack %d", i, ss.Rack, sh.rack)
		}
		if len(ss.Slots) != len(sh.slots) {
			return fmt.Errorf("ingest: snapshot rack %d covers %d VMs, service has %d", ss.Rack, len(ss.Slots), len(sh.slots))
		}
		for j, sl := range ss.Slots {
			if sl.VM != sh.slots[j].vm {
				return fmt.Errorf("ingest: snapshot rack %d slot %d is VM %d, service has VM %d", ss.Rack, j, sl.VM, sh.slots[j].vm)
			}
			if sl.Seen < 0 {
				return fmt.Errorf("ingest: snapshot VM %d has negative observation count", sl.VM)
			}
		}
	}
	for i, ss := range snap.Shards {
		sh := s.shard[i]
		sh.mu.Lock()
		for j, sl := range ss.Slots {
			sh.slots[j] = slot{vm: sl.VM, level: sl.Level, trend: sl.Trend, seen: sl.Seen, alerted: sl.Alerted}
		}
		sh.mu.Unlock()
	}
	s.offered.Store(snap.Offered)
	s.accepted.Store(snap.Accepted)
	s.dropped.Store(snap.Dropped)
	s.processed.Store(snap.Processed)
	s.alerts.Store(snap.Alerts)
	return nil
}
