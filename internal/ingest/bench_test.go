package ingest

import (
	"fmt"
	"testing"

	"sheriff/internal/traces"
)

// benchService builds a racks×vmsPerRack service.
func benchService(b *testing.B, racks, vmsPerRack, queueLimit int) (*Service, []Update) {
	b.Helper()
	vmsByRack := make([][]int, racks)
	id := 0
	for r := range vmsByRack {
		for v := 0; v < vmsPerRack; v++ {
			vmsByRack[r] = append(vmsByRack[r], id)
			id++
		}
	}
	s, err := New(vmsByRack, Options{QueueLimit: queueLimit})
	if err != nil {
		b.Fatal(err)
	}
	// One realistic update per VM, varied profiles so triage does real work.
	gen := traces.NewWorkloadGen(24, 1)
	updates := make([]Update, id)
	for i := range updates {
		updates[i] = Update{VM: i, Profile: gen.Next()}
	}
	return s, updates
}

// BenchmarkOfferProcess is the sustained-ingest benchmark behind
// BENCH_ingest.json: one op offers every VM's update and drains all
// shards, so updates/s is the end-to-end ingest-to-triage throughput.
func BenchmarkOfferProcess(b *testing.B) {
	for _, cfg := range []struct{ racks, vms int }{{8, 16}, {32, 32}} {
		b.Run(fmt.Sprintf("racks=%d/vms=%d", cfg.racks, cfg.vms), func(b *testing.B) {
			s, updates := benchService(b, cfg.racks, cfg.vms, cfg.racks*cfg.vms)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.OfferBatch(updates); err != nil {
					b.Fatal(err)
				}
				s.ProcessPending()
			}
			b.StopTimer()
			st := s.Stats()
			b.ReportMetric(float64(st.Processed)/b.Elapsed().Seconds(), "updates/s")
			b.ReportMetric(st.LatencyP99*1e6, "p99-µs")
		})
	}
}

// BenchmarkOfferOnly isolates the producer-side accept path.
func BenchmarkOfferOnly(b *testing.B) {
	s, upd := benchService(b, 8, 16, 1<<20)
	u := upd[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Offer(u); err != nil {
			b.Fatal(err)
		}
		if i%4096 == 4095 {
			b.StopTimer()
			s.ProcessPending()
			b.StartTimer()
		}
	}
}
